package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzRead pins the frame decoder against corrupt streams: no panic and no
// unbounded allocation on a hostile length prefix, and the owning decoder
// (Read) must agree with the scratch-reusing one (Reader.Next) on both
// acceptance and decoded frame.
func FuzzRead(f *testing.F) {
	f.Add(Append(nil, 1, 2, []byte("payload")))
	f.Add(Append(Append(nil, 1, 2, []byte("first")), 2, 3, []byte("second")))
	f.Add(Append(nil, 0, 0, nil))
	full := Append(nil, 9, 4, []byte("truncate me"))
	f.Add(full[:len(full)-4]) // truncated body
	f.Add(full[:2])           // truncated length prefix
	// Corrupt length prefixes: over the frame cap, and under the minimum.
	f.Add(binary.LittleEndian.AppendUint32(nil, MaxFrameSize+1))
	f.Add(binary.LittleEndian.AppendUint32(nil, 3))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := Read(bytes.NewReader(data))
		rd := NewReader(bytes.NewReader(data))
		fr2, err2 := rd.Next()
		if (err == nil) != (err2 == nil) {
			t.Fatalf("Read err=%v but Reader.Next err=%v", err, err2)
		}
		if err != nil {
			return
		}
		if fr.ReqID != fr2.ReqID || fr.Type != fr2.Type || !bytes.Equal(fr.Payload, fr2.Payload) {
			t.Fatalf("Read %+v disagrees with Reader.Next %+v", fr, fr2)
		}
		// Re-encoding the decoded frame reproduces the consumed prefix.
		reenc := Append(nil, fr.ReqID, fr.Type, fr.Payload)
		if !bytes.Equal(reenc, data[:len(reenc)]) {
			t.Fatal("re-encoded frame differs from consumed input")
		}
		// A second frame behind the first must decode identically too.
		frB, errB := Read(bytes.NewReader(data[len(reenc):]))
		fr2B, err2B := rd.Next()
		if (errB == nil) != (err2B == nil) {
			t.Fatalf("second frame: Read err=%v but Reader.Next err=%v", errB, err2B)
		}
		if errB == nil && (frB.ReqID != fr2B.ReqID || frB.Type != fr2B.Type || !bytes.Equal(frB.Payload, fr2B.Payload)) {
			t.Fatalf("second frame disagrees: %+v vs %+v", frB, fr2B)
		}
	})
}
