// Package wire implements the framed binary message format every Chariots
// component speaks on the network: a length-prefixed frame carrying a
// request id (for pipelined request/response matching), a message type,
// and an opaque payload.
//
// Frame layout (little-endian):
//
//	u32 frameLen (bytes after this field) | u64 reqID | u8 msgType | payload
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// MaxFrameSize bounds a single frame to guard against corrupt length
// prefixes; batches larger than this must be split by the sender.
const MaxFrameSize = 64 << 20

const frameOverhead = 8 + 1 // reqID + msgType

// ErrFrameTooLarge is returned when a frame exceeds MaxFrameSize.
var ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")

// Frame is one decoded message.
type Frame struct {
	ReqID   uint64
	Type    uint8
	Payload []byte
}

// Append encodes the frame to dst and returns the extended slice.
func Append(dst []byte, reqID uint64, msgType uint8, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(frameOverhead+len(payload)))
	dst = binary.LittleEndian.AppendUint64(dst, reqID)
	dst = append(dst, msgType)
	dst = append(dst, payload...)
	return dst
}

// maxPooledBuf bounds the capacity of buffers kept in the frame pool so a
// single jumbo frame cannot pin megabytes behind every pool slot.
const maxPooledBuf = 1 << 20

// bufPool recycles frame scratch buffers across Write calls (and any
// caller using GetBuf/PutBuf): frame encoding is the hottest allocation
// site in the system, one buffer per message in both directions.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// GetBuf returns a zero-length pooled scratch buffer. Callers hand it back
// with PutBuf once the bytes are no longer referenced.
func GetBuf() *[]byte {
	b := bufPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

// PutBuf returns a buffer obtained from GetBuf to the pool. Oversized
// buffers are dropped so the pool's steady-state footprint stays small.
func PutBuf(b *[]byte) {
	if cap(*b) > maxPooledBuf {
		return
	}
	bufPool.Put(b)
}

// WriteBuf encodes the frame into *scratch (reusing its capacity, growing
// it if needed) and writes it to w in one call. The caller retains
// ownership of the scratch buffer; Write uses this with pooled buffers.
func WriteBuf(w io.Writer, scratch *[]byte, reqID uint64, msgType uint8, payload []byte) error {
	if frameOverhead+len(payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	*scratch = Append((*scratch)[:0], reqID, msgType, payload)
	_, err := w.Write(*scratch)
	return err
}

// Write encodes and writes one frame to w using a pooled scratch buffer —
// zero allocations per frame in steady state.
func Write(w io.Writer, reqID uint64, msgType uint8, payload []byte) error {
	buf := GetBuf()
	err := WriteBuf(w, buf, reqID, msgType, payload)
	PutBuf(buf)
	return err
}

// readInto reads one frame body into scratch (grown as needed) and decodes
// it; the returned frame's payload aliases the scratch buffer.
func readInto(r io.Reader, scratch []byte) (Frame, []byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return Frame{}, scratch, err
	}
	frameLen := binary.LittleEndian.Uint32(lenBuf[:])
	if frameLen < frameOverhead {
		return Frame{}, scratch, fmt.Errorf("wire: frame length %d below minimum", frameLen)
	}
	if frameLen > MaxFrameSize {
		return Frame{}, scratch, ErrFrameTooLarge
	}
	if uint32(cap(scratch)) < frameLen {
		scratch = make([]byte, frameLen)
	}
	body := scratch[:frameLen]
	if _, err := io.ReadFull(r, body); err != nil {
		return Frame{}, scratch, fmt.Errorf("wire: reading frame body: %w", err)
	}
	return Frame{
		ReqID:   binary.LittleEndian.Uint64(body),
		Type:    body[8],
		Payload: body[9:frameLen],
	}, scratch, nil
}

// Read reads one frame from r. The returned payload is freshly allocated
// and owned by the caller; connection loops that process one frame at a
// time should use Reader instead, which reuses one scratch buffer.
func Read(r io.Reader) (Frame, error) {
	f, _, err := readInto(r, nil)
	return f, err
}

// Reader reads frames from a stream reusing one grow-only scratch buffer:
// the allocation-free counterpart of Write's pooled path. Not safe for
// concurrent use; one Reader per connection.
type Reader struct {
	r       io.Reader
	scratch []byte
}

// NewReader returns a frame reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: r, scratch: make([]byte, 0, 4096)}
}

// Next reads one frame. The returned Payload ALIASES the reader's scratch
// buffer and is valid only until the next call to Next; a consumer that
// retains it (or any sub-slice, including decoded zero-copy record views)
// past that point must copy first.
func (rd *Reader) Next() (Frame, error) {
	f, scratch, err := readInto(rd.r, rd.scratch)
	rd.scratch = scratch
	return f, err
}

// --- small payload-building helpers shared by subsystem message schemas ---

// AppendString appends a u16-length-prefixed string.
func AppendString(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

// DecodeString decodes a string written by AppendString, returning the
// string and bytes consumed.
func DecodeString(buf []byte) (string, int, error) {
	if len(buf) < 2 {
		return "", 0, errors.New("wire: short buffer for string")
	}
	n := int(binary.LittleEndian.Uint16(buf))
	if len(buf) < 2+n {
		return "", 0, errors.New("wire: short buffer for string body")
	}
	return string(buf[2 : 2+n]), 2 + n, nil
}

// AppendBytes appends a u32-length-prefixed byte slice.
func AppendBytes(dst, b []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b)))
	return append(dst, b...)
}

// DecodeBytes decodes a slice written by AppendBytes. The result is a copy.
func DecodeBytes(buf []byte) ([]byte, int, error) {
	if len(buf) < 4 {
		return nil, 0, errors.New("wire: short buffer for bytes")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	if len(buf) < 4+n {
		return nil, 0, errors.New("wire: short buffer for bytes body")
	}
	out := make([]byte, n)
	copy(out, buf[4:4+n])
	return out, 4 + n, nil
}
