// Package wire implements the framed binary message format every Chariots
// component speaks on the network: a length-prefixed frame carrying a
// request id (for pipelined request/response matching), a message type,
// and an opaque payload.
//
// Frame layout (little-endian):
//
//	u32 frameLen (bytes after this field) | u64 reqID | u8 msgType | payload
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MaxFrameSize bounds a single frame to guard against corrupt length
// prefixes; batches larger than this must be split by the sender.
const MaxFrameSize = 64 << 20

const frameOverhead = 8 + 1 // reqID + msgType

// ErrFrameTooLarge is returned when a frame exceeds MaxFrameSize.
var ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")

// Frame is one decoded message.
type Frame struct {
	ReqID   uint64
	Type    uint8
	Payload []byte
}

// Append encodes the frame to dst and returns the extended slice.
func Append(dst []byte, reqID uint64, msgType uint8, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(frameOverhead+len(payload)))
	dst = binary.LittleEndian.AppendUint64(dst, reqID)
	dst = append(dst, msgType)
	dst = append(dst, payload...)
	return dst
}

// Write encodes and writes one frame to w.
func Write(w io.Writer, reqID uint64, msgType uint8, payload []byte) error {
	if frameOverhead+len(payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	buf := Append(make([]byte, 0, 4+frameOverhead+len(payload)), reqID, msgType, payload)
	_, err := w.Write(buf)
	return err
}

// Read reads one frame from r. The returned payload is freshly allocated.
func Read(r io.Reader) (Frame, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return Frame{}, err
	}
	frameLen := binary.LittleEndian.Uint32(lenBuf[:])
	if frameLen < frameOverhead {
		return Frame{}, fmt.Errorf("wire: frame length %d below minimum", frameLen)
	}
	if frameLen > MaxFrameSize {
		return Frame{}, ErrFrameTooLarge
	}
	body := make([]byte, frameLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return Frame{}, fmt.Errorf("wire: reading frame body: %w", err)
	}
	return Frame{
		ReqID:   binary.LittleEndian.Uint64(body),
		Type:    body[8],
		Payload: body[9:],
	}, nil
}

// --- small payload-building helpers shared by subsystem message schemas ---

// AppendString appends a u16-length-prefixed string.
func AppendString(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

// DecodeString decodes a string written by AppendString, returning the
// string and bytes consumed.
func DecodeString(buf []byte) (string, int, error) {
	if len(buf) < 2 {
		return "", 0, errors.New("wire: short buffer for string")
	}
	n := int(binary.LittleEndian.Uint16(buf))
	if len(buf) < 2+n {
		return "", 0, errors.New("wire: short buffer for string body")
	}
	return string(buf[2 : 2+n]), 2 + n, nil
}

// AppendBytes appends a u32-length-prefixed byte slice.
func AppendBytes(dst, b []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b)))
	return append(dst, b...)
}

// DecodeBytes decodes a slice written by AppendBytes. The result is a copy.
func DecodeBytes(buf []byte) ([]byte, int, error) {
	if len(buf) < 4 {
		return nil, 0, errors.New("wire: short buffer for bytes")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	if len(buf) < 4+n {
		return nil, 0, errors.New("wire: short buffer for bytes body")
	}
	out := make([]byte, n)
	copy(out, buf[4:4+n])
	return out, 4 + n, nil
}
