package wire

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello world")
	if err := Write(&buf, 42, 7, payload); err != nil {
		t.Fatal(err)
	}
	f, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.ReqID != 42 || f.Type != 7 || !bytes.Equal(f.Payload, payload) {
		t.Errorf("frame = %+v", f)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, 1, 2, nil); err != nil {
		t.Fatal(err)
	}
	f, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.ReqID != 1 || f.Type != 2 || len(f.Payload) != 0 {
		t.Errorf("frame = %+v", f)
	}
}

func TestFrameSequence(t *testing.T) {
	var buf bytes.Buffer
	for i := uint64(0); i < 10; i++ {
		Write(&buf, i, uint8(i), []byte{byte(i)})
	}
	for i := uint64(0); i < 10; i++ {
		f, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if f.ReqID != i || f.Type != uint8(i) || f.Payload[0] != byte(i) {
			t.Errorf("frame %d = %+v", i, f)
		}
	}
	if _, err := Read(&buf); err != io.EOF {
		t.Errorf("Read at end = %v, want EOF", err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	huge := make([]byte, MaxFrameSize)
	if err := Write(io.Discard, 0, 0, huge); err != ErrFrameTooLarge {
		t.Errorf("Write oversized = %v, want ErrFrameTooLarge", err)
	}
	// Reader side: corrupt length prefix claiming a huge frame.
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := Read(&buf); err != ErrFrameTooLarge {
		t.Errorf("Read oversized = %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameBelowMinimum(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{3, 0, 0, 0, 1, 2, 3})
	if _, err := Read(&buf); err == nil {
		t.Error("accepted frame shorter than header")
	}
}

func TestFrameTruncatedBody(t *testing.T) {
	var full bytes.Buffer
	Write(&full, 9, 9, []byte("payload"))
	data := full.Bytes()
	r := bytes.NewReader(data[:len(data)-3])
	if _, err := Read(r); err == nil {
		t.Error("accepted truncated frame body")
	}
}

func TestStringHelpers(t *testing.T) {
	buf := AppendString(nil, "chariots")
	s, used, err := DecodeString(buf)
	if err != nil || s != "chariots" || used != len(buf) {
		t.Errorf("DecodeString = %q, %d, %v", s, used, err)
	}
	if _, _, err := DecodeString(buf[:1]); err == nil {
		t.Error("accepted truncated string header")
	}
	if _, _, err := DecodeString(buf[:4]); err == nil {
		t.Error("accepted truncated string body")
	}
	long := strings.Repeat("x", 1000)
	s2, _, err := DecodeString(AppendString(nil, long))
	if err != nil || s2 != long {
		t.Error("long string round trip failed")
	}
}

func TestBytesHelpers(t *testing.T) {
	src := []byte{1, 2, 3}
	buf := AppendBytes(nil, src)
	got, used, err := DecodeBytes(buf)
	if err != nil || used != len(buf) || !bytes.Equal(got, src) {
		t.Errorf("DecodeBytes = %v, %d, %v", got, used, err)
	}
	buf[4] = 0xEE
	if got[0] != 1 {
		t.Error("DecodeBytes aliases input")
	}
	if _, _, err := DecodeBytes([]byte{1}); err == nil {
		t.Error("accepted truncated bytes header")
	}
	if _, _, err := DecodeBytes([]byte{5, 0, 0, 0, 1}); err == nil {
		t.Error("accepted truncated bytes body")
	}
}

func TestReaderSequenceReusesScratch(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{
		[]byte("first frame payload"),
		[]byte("2nd"),
		bytes.Repeat([]byte{0xAB}, 8192), // forces scratch growth
		nil,
	}
	for i, p := range payloads {
		if err := Write(&buf, uint64(i), uint8(i), p); err != nil {
			t.Fatal(err)
		}
	}
	rd := NewReader(&buf)
	for i, p := range payloads {
		f, err := rd.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.ReqID != uint64(i) || f.Type != uint8(i) || !bytes.Equal(f.Payload, p) {
			t.Fatalf("frame %d = %+v", i, f)
		}
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("Next at end = %v, want EOF", err)
	}
}

func TestReaderPayloadInvalidatedByNext(t *testing.T) {
	var buf bytes.Buffer
	Write(&buf, 1, 1, []byte("AAAA"))
	Write(&buf, 2, 2, []byte("BBBB"))
	rd := NewReader(&buf)
	f1, err := rd.Next()
	if err != nil {
		t.Fatal(err)
	}
	first := f1.Payload
	if _, err := rd.Next(); err != nil {
		t.Fatal(err)
	}
	// The documented contract: the first payload aliases the reader's
	// scratch, so after the next call it holds the second frame's bytes.
	if string(first) != "BBBB" {
		t.Fatalf("scratch not reused: first payload now %q", first)
	}
}

func TestReaderErrors(t *testing.T) {
	rd := NewReader(bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF}))
	if _, err := rd.Next(); err != ErrFrameTooLarge {
		t.Fatalf("Next oversized = %v, want ErrFrameTooLarge", err)
	}
	rd = NewReader(bytes.NewReader([]byte{3, 0, 0, 0, 1, 2, 3}))
	if _, err := rd.Next(); err == nil {
		t.Fatal("accepted frame below minimum")
	}
}

func TestWriteBufReuse(t *testing.T) {
	var buf bytes.Buffer
	scratch := make([]byte, 0, 8)
	if err := WriteBuf(&buf, &scratch, 7, 3, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	grown := cap(scratch)
	if err := WriteBuf(&buf, &scratch, 8, 3, []byte("pay")); err != nil {
		t.Fatal(err)
	}
	if cap(scratch) != grown {
		t.Fatal("WriteBuf reallocated a sufficient scratch buffer")
	}
	for i, want := range []struct {
		id uint64
		p  string
	}{{7, "payload"}, {8, "pay"}} {
		f, err := Read(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.ReqID != want.id || string(f.Payload) != want.p {
			t.Fatalf("frame %d = %+v", i, f)
		}
	}
}

func TestWriteSteadyStateAllocs(t *testing.T) {
	payload := bytes.Repeat([]byte{1}, 256)
	// Warm the pool, then require the pooled write path to be
	// allocation-free.
	Write(io.Discard, 0, 0, payload)
	allocs := testing.AllocsPerRun(200, func() {
		if err := Write(io.Discard, 1, 2, payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("Write allocates %.1f/op, want 0", allocs)
	}
}
