package wire

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello world")
	if err := Write(&buf, 42, 7, payload); err != nil {
		t.Fatal(err)
	}
	f, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.ReqID != 42 || f.Type != 7 || !bytes.Equal(f.Payload, payload) {
		t.Errorf("frame = %+v", f)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, 1, 2, nil); err != nil {
		t.Fatal(err)
	}
	f, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.ReqID != 1 || f.Type != 2 || len(f.Payload) != 0 {
		t.Errorf("frame = %+v", f)
	}
}

func TestFrameSequence(t *testing.T) {
	var buf bytes.Buffer
	for i := uint64(0); i < 10; i++ {
		Write(&buf, i, uint8(i), []byte{byte(i)})
	}
	for i := uint64(0); i < 10; i++ {
		f, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if f.ReqID != i || f.Type != uint8(i) || f.Payload[0] != byte(i) {
			t.Errorf("frame %d = %+v", i, f)
		}
	}
	if _, err := Read(&buf); err != io.EOF {
		t.Errorf("Read at end = %v, want EOF", err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	huge := make([]byte, MaxFrameSize)
	if err := Write(io.Discard, 0, 0, huge); err != ErrFrameTooLarge {
		t.Errorf("Write oversized = %v, want ErrFrameTooLarge", err)
	}
	// Reader side: corrupt length prefix claiming a huge frame.
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := Read(&buf); err != ErrFrameTooLarge {
		t.Errorf("Read oversized = %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameBelowMinimum(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{3, 0, 0, 0, 1, 2, 3})
	if _, err := Read(&buf); err == nil {
		t.Error("accepted frame shorter than header")
	}
}

func TestFrameTruncatedBody(t *testing.T) {
	var full bytes.Buffer
	Write(&full, 9, 9, []byte("payload"))
	data := full.Bytes()
	r := bytes.NewReader(data[:len(data)-3])
	if _, err := Read(r); err == nil {
		t.Error("accepted truncated frame body")
	}
}

func TestStringHelpers(t *testing.T) {
	buf := AppendString(nil, "chariots")
	s, used, err := DecodeString(buf)
	if err != nil || s != "chariots" || used != len(buf) {
		t.Errorf("DecodeString = %q, %d, %v", s, used, err)
	}
	if _, _, err := DecodeString(buf[:1]); err == nil {
		t.Error("accepted truncated string header")
	}
	if _, _, err := DecodeString(buf[:4]); err == nil {
		t.Error("accepted truncated string body")
	}
	long := strings.Repeat("x", 1000)
	s2, _, err := DecodeString(AppendString(nil, long))
	if err != nil || s2 != long {
		t.Error("long string round trip failed")
	}
}

func TestBytesHelpers(t *testing.T) {
	src := []byte{1, 2, 3}
	buf := AppendBytes(nil, src)
	got, used, err := DecodeBytes(buf)
	if err != nil || used != len(buf) || !bytes.Equal(got, src) {
		t.Errorf("DecodeBytes = %v, %d, %v", got, used, err)
	}
	buf[4] = 0xEE
	if got[0] != 1 {
		t.Error("DecodeBytes aliases input")
	}
	if _, _, err := DecodeBytes([]byte{1}); err == nil {
		t.Error("accepted truncated bytes header")
	}
	if _, _, err := DecodeBytes([]byte{5, 0, 0, 0, 1}); err == nil {
		t.Error("accepted truncated bytes body")
	}
}
