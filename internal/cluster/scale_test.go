package cluster

import (
	"fmt"
	"math"
	"testing"
	"time"
)

// TestScaleInvariance validates the simulation methodology itself: the
// reproduced quantities are capacity ratios, so running the same
// experiment at two different simulation scales must produce the same
// paper-unit numbers. If this ever breaks, the scale knob is distorting
// results rather than just slowing them down.
func TestScaleInvariance(t *testing.T) {
	checkShape(t, "scale invariance", func() error {
		measure := func(scale float64) (float64, error) {
			p := PrivateCloud()
			p.Scale = scale
			res, err := RunFLStore(FLStoreOptions{
				Profile:         p,
				Maintainers:     2,
				TargetPerClient: 125_000,
				Duration:        500 * time.Millisecond,
			})
			if err != nil {
				return 0, err
			}
			return res.AchievedTotal, nil
		}
		atLow, err := measure(10)
		if err != nil {
			return err
		}
		atHigh, err := measure(40)
		if err != nil {
			return err
		}
		ratio := atLow / atHigh
		if math.Abs(ratio-1) > 0.15 {
			return fmt.Errorf("scale 10 measured %.0f, scale 40 measured %.0f (ratio %.2f, want ≈1)",
				atLow, atHigh, ratio)
		}
		return nil
	})
}

// TestScaleInvariancePipeline does the same for the pipeline bottleneck
// experiment: the bottlenecked client total must be scale-independent.
func TestScaleInvariancePipeline(t *testing.T) {
	checkShape(t, "pipeline scale invariance", func() error {
		measure := func(scale float64) (float64, error) {
			p := PrivateCloud()
			p.Scale = scale
			res, err := RunPipeline(PipelineOptions{
				Profile: p,
				Clients: 2, Batchers: 1, Filters: 1, Queues: 1, Maintainers: 1,
				Duration: 500 * time.Millisecond,
			})
			if err != nil {
				return 0, err
			}
			return res.StageTotals()["Client"], nil
		}
		atLow, err := measure(10)
		if err != nil {
			return err
		}
		atHigh, err := measure(40)
		if err != nil {
			return err
		}
		ratio := atLow / atHigh
		if math.Abs(ratio-1) > 0.2 {
			return fmt.Errorf("scale 10 clients %.0f, scale 40 clients %.0f (ratio %.2f, want ≈1)",
				atLow, atHigh, ratio)
		}
		return nil
	})
}
