package cluster

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/chariots"
	"repro/internal/hyksos"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// HyksosOptions configures the application-level benchmark: concurrent
// sessions running a put/get mix over a Zipf-distributed key space on one
// Chariots datacenter.
type HyksosOptions struct {
	Sessions int
	Keys     int
	// PutFraction in [0,1]; the rest are gets.
	PutFraction float64
	Duration    time.Duration
	// ZipfSkew > 1 skews toward hot keys (0 = uniform).
	ZipfSkew float64
}

// HyksosResult summarizes the run.
type HyksosResult struct {
	Puts, Gets       uint64
	OpsPerSec        float64
	PutMean, PutP99  time.Duration
	GetMean, GetP99  time.Duration
	TxnMean, TxnP99  time.Duration
	TxnsPerSnapshots uint64
}

// RunHyksos drives the key-value store case study (§4.1): each session
// interleaves puts and gets, then runs get-transactions over a key group,
// measuring operation latencies and total throughput.
func RunHyksos(opts HyksosOptions) (*HyksosResult, error) {
	if opts.Sessions < 1 {
		opts.Sessions = 1
	}
	if opts.Keys < 1 {
		opts.Keys = 100
	}
	if opts.Duration <= 0 {
		opts.Duration = time.Second
	}
	dc, err := chariots.New(chariots.Config{
		Self:           0,
		NumDCs:         1,
		Maintainers:    2,
		Indexers:       2,
		FlushThreshold: 1,
		FlushInterval:  200 * time.Microsecond,
		TokenIdleWait:  50 * time.Microsecond,
	})
	if err != nil {
		return nil, err
	}
	dc.Start()
	defer dc.Stop()
	store := hyksos.NewStore(dc)

	var chooser workload.KeyChooser
	if opts.ZipfSkew > 0 {
		chooser = workload.NewZipfKeys(opts.Keys, opts.ZipfSkew, 1)
	} else {
		chooser = workload.NewUniformKeys(opts.Keys, 1)
	}

	res := &HyksosResult{}
	putHist := metrics.NewHistogram(0)
	getHist := metrics.NewHistogram(0)
	txnHist := metrics.NewHistogram(0)
	var mu sync.Mutex // guards histograms and counters

	// Seed every key so gets never miss.
	seed := store.NewSession()
	for k := 0; k < opts.Keys; k++ {
		if err := seed.Put(fmt.Sprintf("k%d", k), "0"); err != nil {
			return nil, err
		}
	}

	var wg sync.WaitGroup
	watch := metrics.NewStopwatch()
	for s := 0; s < opts.Sessions; s++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			sess := store.NewSession()
			for i := 0; watch.Elapsed() < opts.Duration; i++ {
				key := chooser.Key()
				if float64(i%100)/100 < opts.PutFraction {
					start := time.Now()
					if err := sess.Put(key, fmt.Sprint(i)); err != nil {
						return
					}
					mu.Lock()
					putHist.Observe(time.Since(start))
					res.Puts++
					mu.Unlock()
				} else {
					start := time.Now()
					if _, err := sess.Get(key); err != nil {
						return
					}
					mu.Lock()
					getHist.Observe(time.Since(start))
					res.Gets++
					mu.Unlock()
				}
				// Periodic get-transaction over a small key group.
				if i%50 == 49 {
					start := time.Now()
					if _, err := sess.GetTxn(chooser.Key(), chooser.Key(), chooser.Key()); err != nil {
						return
					}
					mu.Lock()
					txnHist.Observe(time.Since(start))
					res.TxnsPerSnapshots++
					mu.Unlock()
				}
			}
		}(s)
	}
	wg.Wait()
	watch.Stop()

	res.OpsPerSec = float64(res.Puts+res.Gets) / watch.Elapsed().Seconds()
	res.PutMean, res.PutP99 = putHist.Mean(), putHist.Quantile(0.99)
	res.GetMean, res.GetP99 = getHist.Mean(), getHist.Quantile(0.99)
	res.TxnMean, res.TxnP99 = txnHist.Mean(), txnHist.Quantile(0.99)
	return res, nil
}
