package cluster

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/flstore"
	"repro/internal/metrics"
	"repro/internal/ratelimit"
	"repro/internal/workload"
)

// FLStoreOptions configures one FLStore scaling run (Figures 7–8): n
// maintainers, n open-loop client machines offering TargetPerClient
// records/second each (client i appends to maintainer i, the paper's
// "identical number of client machines").
type FLStoreOptions struct {
	Profile         Profile
	Maintainers     int
	TargetPerClient float64
	Duration        time.Duration
	RecordSize      int
}

// FLStoreResult is one measured point.
type FLStoreResult struct {
	Maintainers     int
	TargetPerClient float64
	// AchievedTotal is the cumulative append throughput (records/s).
	AchievedTotal float64
	// PerMaintainer is each maintainer's achieved rate.
	PerMaintainer []float64
	// OfferedTotal is the cumulative offered load.
	OfferedTotal float64
}

// RunFLStore executes one scaling point.
func RunFLStore(opts FLStoreOptions) (FLStoreResult, error) {
	if opts.Maintainers < 1 {
		return FLStoreResult{}, fmt.Errorf("cluster: need >= 1 maintainer")
	}
	if opts.Duration <= 0 {
		opts.Duration = time.Second
	}
	scale := opts.Profile.scale()
	p := flstore.Placement{NumMaintainers: opts.Maintainers, BatchSize: 1000}
	maintainers := make([]*flstore.Maintainer, opts.Maintainers)
	for i := range maintainers {
		m, err := flstore.NewMaintainer(flstore.MaintainerConfig{
			Index:         i,
			Placement:     p,
			Limiter:       newSimLimiter(opts.Profile.down(opts.Profile.MaintainerCap)),
			RejectPenalty: opts.Profile.RejectPenalty,
		})
		if err != nil {
			return FLStoreResult{}, err
		}
		maintainers[i] = m
	}

	gens := make([]*workload.OpenLoopGen, opts.Maintainers)
	var wg sync.WaitGroup
	watch := metrics.NewStopwatch()
	for i := range gens {
		gens[i] = &workload.OpenLoopGen{
			TargetPerSec: opts.TargetPerClient / scale,
			RecordSize:   opts.RecordSize,
			BatchSize:    64,
		}
		m := maintainers[i]
		wg.Add(1)
		go func(g *workload.OpenLoopGen) {
			defer wg.Done()
			g.Run(func(recs []*core.Record) int {
				if _, err := m.Append(recs); err != nil {
					return 0 // overloaded: offered load dropped
				}
				return len(recs)
			}, opts.Duration)
		}(gens[i])
	}
	wg.Wait()
	watch.Stop()

	res := FLStoreResult{
		Maintainers:     opts.Maintainers,
		TargetPerClient: opts.TargetPerClient,
		PerMaintainer:   make([]float64, opts.Maintainers),
	}
	// Measurements scale back to paper units.
	elapsed := watch.Elapsed().Seconds()
	for i, m := range maintainers {
		rate := float64(m.Appended.Value()) / elapsed * scale
		res.PerMaintainer[i] = rate
		res.AchievedTotal += rate
	}
	for _, g := range gens {
		res.OfferedTotal += float64(g.Offered.Value()) / elapsed * scale
	}
	return res, nil
}

// newSimLimiter builds a machine-capacity limiter for the FLStore
// experiments: the burst is generous enough to absorb the generators'
// batch granularity near the saturation boundary (where acceptance is
// otherwise scheduling-noise sensitive), but the bucket starts nearly
// empty so short measurement windows see the steady rate rather than the
// initial burst.
func newSimLimiter(rate float64) *ratelimit.Limiter {
	b := int(rate / 10)
	if b < 192 {
		b = 192
	}
	l := ratelimit.New(rate, b)
	l.Penalize(float64(b) - 128)
	return l
}

// Figure7Point is one x/y pair of the Figure 7 load curve.
type Figure7Point struct {
	Target   float64
	Achieved float64
}

// RunFigure7 sweeps the offered load on a single maintainer (Figure 7:
// throughput rises with the target, peaks at the machine's capacity, then
// declines slightly as rejection work eats into it).
func RunFigure7(profile Profile, targets []float64, duration time.Duration) ([]Figure7Point, error) {
	var points []Figure7Point
	for _, target := range targets {
		res, err := RunFLStore(FLStoreOptions{
			Profile:         profile,
			Maintainers:     1,
			TargetPerClient: target,
			Duration:        duration,
		})
		if err != nil {
			return nil, err
		}
		points = append(points, Figure7Point{Target: target, Achieved: res.AchievedTotal})
	}
	return points, nil
}

// Figure8Series is one line of Figure 8: cumulative throughput as the
// maintainer count grows, for a fixed profile and per-client target.
type Figure8Series struct {
	Label  string
	Points []FLStoreResult
}

// RunFigure8 produces the three series of Figure 8.
func RunFigure8(maintainerCounts []int, duration time.Duration) ([]Figure8Series, error) {
	configs := []struct {
		label   string
		profile Profile
		target  float64
	}{
		{"public cloud target = 125K", PublicCloud(), 125_000},
		{"public cloud target = 250K", PublicCloud(), 250_000},
		{"private cloud", PrivateCloud(), 250_000},
	}
	var out []Figure8Series
	for _, cfg := range configs {
		series := Figure8Series{Label: cfg.label}
		for _, n := range maintainerCounts {
			res, err := RunFLStore(FLStoreOptions{
				Profile:         cfg.profile,
				Maintainers:     n,
				TargetPerClient: cfg.target,
				Duration:        duration,
			})
			if err != nil {
				return nil, err
			}
			series.Points = append(series.Points, res)
		}
		out = append(out, series)
	}
	return out, nil
}

// ScalingEfficiency returns achieved/(n × single-maintainer-achieved) for
// the last point of a series — the "99.3% of perfect scaling" number.
func ScalingEfficiency(s Figure8Series) float64 {
	if len(s.Points) < 2 {
		return 1
	}
	first := s.Points[0]
	last := s.Points[len(s.Points)-1]
	perfect := first.AchievedTotal / float64(first.Maintainers) * float64(last.Maintainers)
	if perfect == 0 {
		return 0
	}
	return last.AchievedTotal / perfect
}
