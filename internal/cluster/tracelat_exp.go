package cluster

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/chariots"
	"repro/internal/core"
	"repro/internal/flstore"
	"repro/internal/replica"
	"repro/internal/rpc"
	"repro/internal/trace"
)

// This file is the stage-latency attribution experiment behind
// `repro -exp tracelat` and the trace smoke test: it force-samples every
// operation, drives appends through the two deployments that together
// exercise the full record lifecycle, and checks that the recorded spans
// account for (attribute) at least 90% of the latency the client actually
// measured — the tracing layer's accuracy bar.
//
// Two legs are needed because the repo's deployments split the lifecycle:
//
//   - a replicated FLStore wired over RPC covers client.append → rpc.call
//     → maintainer admission/assign/store → store.write/fsync →
//     replica.ack (the measured, budgeted leg);
//   - one chariots datacenter covers dc.append → pipe.batch → pipe.filter
//     → pipe.queue → the embedded maintainers (the pipeline leg, asserted
//     for stage coverage).

// TraceLatOptions configures the tracing-accuracy experiment.
type TraceLatOptions struct {
	// Maintainers and Replication shape the FLStore leg (defaults 3, 2).
	Maintainers int
	Replication int
	// Appends is the number of measured client appends (default 150).
	Appends int
}

// StageBudget is one row of the per-stage latency budget: how much of the
// covered end-to-end time was attributed to this stage.
type StageBudget struct {
	Stage   string  `json:"stage"`
	TotalNs int64   `json:"total_ns"`
	QueueNs int64   `json:"queue_ns,omitempty"`
	Share   float64 `json:"share"`
}

// TraceLatResult is one tracelat run.
type TraceLatResult struct {
	// Appends counts measured client appends on the FLStore leg;
	// MeasuredNs sums their client-observed wall-clock latency.
	Appends    int   `json:"appends"`
	MeasuredNs int64 `json:"measured_e2e_ns"`
	// CoveredNs is the span-attributed time across those appends' traces;
	// Coverage is CoveredNs/MeasuredNs — the ≥0.90 acceptance bar.
	CoveredNs int64   `json:"covered_ns"`
	Coverage  float64 `json:"coverage"`
	// Traces is how many complete append traces the budget aggregated.
	Traces int `json:"traces"`
	// Stages is the per-stage budget, largest share first.
	Stages []StageBudget `json:"stages"`
	// AppendStages / PipelineStages are the distinct stage names reached
	// by the FLStore append traces and the chariots pipeline traces — the
	// smoke test asserts the lifecycle legs all appear.
	AppendStages   []string `json:"append_stages"`
	PipelineStages []string `json:"pipeline_stages"`
}

// RunTraceLat executes the experiment against in-process deployments.
// It force-samples every operation for the duration of the run and
// restores the prior sampling rate (and clears the flight recorder) on
// return.
func RunTraceLat(opts TraceLatOptions) (TraceLatResult, error) {
	var res TraceLatResult
	n, r := opts.Maintainers, opts.Replication
	if n <= 0 {
		n = 3
	}
	if r <= 0 {
		r = 2
	}
	if r > n {
		r = n
	}
	appends := opts.Appends
	if appends <= 0 {
		appends = 150
	}

	prev := trace.SamplingRate()
	rec := trace.Default()
	defer func() {
		trace.SetSampling(prev)
		rec.Reset()
	}()

	// --- FLStore leg: replicated deployment over local RPC. ---
	p := flstore.Placement{NumMaintainers: n, BatchSize: 8}
	apis := make([]flstore.MaintainerAPI, n)
	for i := 0; i < n; i++ {
		m, err := flstore.NewMaintainer(flstore.MaintainerConfig{Index: i, Placement: p, Replication: r})
		if err != nil {
			return res, err
		}
		srv := rpc.NewServer()
		flstore.ServeMaintainer(srv, m)
		apis[i] = flstore.NewMaintainerClient(rpc.NewLocalClient(srv))
	}
	client, err := flstore.NewReplicatedDirectClient(p, apis, nil, r, replica.AckMajority)
	if err != nil {
		return res, err
	}

	// Warm up unsampled so lazy initialization stays out of the budget.
	trace.SetSampling(0)
	for i := 0; i < 16; i++ {
		if _, err := client.Append([]byte(fmt.Sprintf("warm-%d", i)), nil); err != nil {
			return res, fmt.Errorf("cluster: tracelat warmup: %w", err)
		}
	}
	trace.SetSampling(1)
	rec.Reset()

	// Measured appends are small batches built ahead of the timed loop, so
	// the client-side wall clock brackets the traced call as tightly as the
	// root span does.
	const batchLen = 4
	body := make([]byte, 512)
	batches := make([][]*core.Record, appends)
	for i := range batches {
		batch := make([]*core.Record, batchLen)
		for j := range batch {
			batch[j] = &core.Record{Body: body}
		}
		batches[i] = batch
	}

	var measured int64
	for i, batch := range batches {
		start := time.Now()
		if _, err := client.AppendBatch(batch); err != nil {
			return res, fmt.Errorf("cluster: tracelat append %d: %w", i, err)
		}
		measured += time.Since(start).Nanoseconds()
	}
	// Straggler replica acks may record just after the client returns.
	time.Sleep(20 * time.Millisecond)

	appendSpans := spansOfRootStage(rec.Snapshot(trace.Filter{}), "client.append")
	b := trace.ComputeBudget(appendSpans)
	res.Appends = appends
	res.MeasuredNs = measured
	res.CoveredNs = b.CoveredNs
	res.Traces = b.Traces
	if measured > 0 {
		res.Coverage = float64(b.CoveredNs) / float64(measured)
	}
	res.Stages = budgetRows(b)
	res.AppendStages = stageSet(appendSpans)

	// --- Pipeline leg: one chariots datacenter. ---
	rec.Reset()
	dc, err := chariots.New(chariots.Config{
		Self:           0,
		NumDCs:         1,
		Batchers:       1,
		Filters:        1,
		Queues:         1,
		Maintainers:    2,
		Indexers:       1,
		PlacementBatch: 4,
		FlushThreshold: 1,
		FlushInterval:  100 * time.Microsecond,
		SendThreshold:  1,
		SendInterval:   100 * time.Microsecond,
		TokenIdleWait:  50 * time.Microsecond,
	})
	if err != nil {
		return res, err
	}
	dc.Start()
	defer dc.Stop()

	pipeAppends := appends / 3
	if pipeAppends < 20 {
		pipeAppends = 20
	}
	for i := 0; i < pipeAppends; i++ {
		if _, err := dc.Append([]byte(fmt.Sprintf("pl-%d", i)), nil); err != nil {
			return res, fmt.Errorf("cluster: tracelat pipeline append %d: %w", i, err)
		}
	}
	time.Sleep(20 * time.Millisecond)
	res.PipelineStages = stageSet(spansOfRootStage(rec.Snapshot(trace.Filter{}), "dc.append"))
	return res, nil
}

// HasStages reports whether every named stage appears in the set (a
// sorted stageSet result).
func HasStages(set []string, want ...string) bool {
	have := make(map[string]bool, len(set))
	for _, s := range set {
		have[s] = true
	}
	for _, w := range want {
		if !have[w] {
			return false
		}
	}
	return true
}

// spansOfRootStage keeps only spans of traces containing a span of the
// given root stage — dropping unrelated traffic (gossip heartbeats,
// reads) and traces whose root was evicted from the ring.
func spansOfRootStage(spans []trace.Span, stage string) []trace.Span {
	keep := make(map[trace.TraceID]bool)
	for _, s := range spans {
		if s.Stage == stage {
			keep[s.Trace] = true
		}
	}
	var out []trace.Span
	for _, s := range spans {
		if keep[s.Trace] {
			out = append(out, s)
		}
	}
	return out
}

// stageSet returns the sorted distinct stage names in spans.
func stageSet(spans []trace.Span) []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range spans {
		if !seen[s.Stage] {
			seen[s.Stage] = true
			out = append(out, s.Stage)
		}
	}
	sort.Strings(out)
	return out
}

// budgetRows flattens a Budget into display rows, largest share first.
func budgetRows(b trace.Budget) []StageBudget {
	rows := make([]StageBudget, 0, len(b.StageNs))
	for stage, ns := range b.StageNs {
		row := StageBudget{Stage: stage, TotalNs: ns, QueueNs: b.QueueNs[stage]}
		if b.CoveredNs > 0 {
			row.Share = float64(ns) / float64(b.CoveredNs)
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].TotalNs != rows[j].TotalNs {
			return rows[i].TotalNs > rows[j].TotalNs
		}
		return rows[i].Stage < rows[j].Stage
	})
	return rows
}
