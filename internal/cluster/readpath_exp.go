package cluster

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/flstore"
	"repro/internal/rpc"
)

// ReadPathOptions configures the read-path experiment: a closed-loop tail
// (each record is appended only after the tailing consumer has seen the
// previous one — the append→visible latency expressed as a rate) measured
// on the push-subscription path and on the legacy poll path, plus a bulk
// read of the resulting log via one scatter-gather ReadRange versus
// single-record round trips.
type ReadPathOptions struct {
	Maintainers int
	BatchSize   uint64
	Records     int
	RecordSize  int
	// Budget caps the wall clock per measured mode; a mode that does not
	// reach Records within the budget reports the rate it sustained.
	Budget time.Duration
}

// ReadPathResult is the measured comparison. Rates are records/second.
type ReadPathResult struct {
	Maintainers     int     `json:"maintainers"`
	Records         int     `json:"records"`
	TailPushRecords int     `json:"tail_push_records"`
	TailPushPerSec  float64 `json:"tail_push_recs_per_sec"`
	TailPollRecords int     `json:"tail_poll_records"`
	TailPollPerSec  float64 `json:"tail_poll_recs_per_sec"`
	// TailSpeedup is push/poll — the acceptance bar is ≥ 5×.
	TailSpeedup      float64 `json:"tail_speedup"`
	RangeReadPerSec  float64 `json:"range_read_recs_per_sec"`
	SingleReadPerSec float64 `json:"single_read_recs_per_sec"`
	RangeSpeedup     float64 `json:"range_speedup"`
	// ReadScaling is the replica-count sweep: aggregate hot-range read
	// throughput as the group size R grows, every replica serving valid
	// reads locally under the invalidation protocol. Filled by the repro
	// driver from RunReadScaling, not by RunReadPath.
	ReadScaling []ReadScalingPoint `json:"read_scaling,omitempty"`
	// ReadScalingX is the largest-R/smallest-R aggregate throughput ratio
	// — the acceptance bar is ≥ 2× for R 1→3.
	ReadScalingX float64 `json:"read_scaling_x,omitempty"`
}

// ReadScalingPoint is one point of the replica read-scaling sweep.
type ReadScalingPoint struct {
	Replication int     `json:"replication"`
	Records     int     `json:"records"`
	ReadsPerSec float64 `json:"reads_per_sec"`
}

// newReadPathStack wires client→rpc→maintainers in-process: real dispatch
// and codec work on every hop, so the poll/push difference reflects the
// protocol, not the transport.
func newReadPathStack(opts ReadPathOptions) (*flstore.Client, error) {
	p := flstore.Placement{NumMaintainers: opts.Maintainers, BatchSize: opts.BatchSize}
	apis := make([]flstore.MaintainerAPI, opts.Maintainers)
	for i := range apis {
		m, err := flstore.NewMaintainer(flstore.MaintainerConfig{Index: i, Placement: p})
		if err != nil {
			return nil, err
		}
		srv := rpc.NewServer()
		flstore.ServeMaintainer(srv, m)
		apis[i] = flstore.NewMaintainerClient(rpc.NewLocalClient(srv))
	}
	return flstore.NewDirectClient(p, apis, nil)
}

// runClosedLoopTail appends up to opts.Records records one at a time and,
// after each append, waits until the tailing consumer has delivered every
// record the head of the log now covers. Placement is post-assignment —
// the dense prefix lags the append count by up to a round-robin cycle — so
// the producer gates on HeadExact rather than on its own count; waiting
// for its exact append to surface could deadlock on a not-yet-dense LId.
// On the poll path every head advance pays the poll tick before the
// consumer sees it; on the push path the consumer is woken directly by the
// maintainer's frontier advance.
func runClosedLoopTail(c *flstore.Client, opts ReadPathOptions) (int, time.Duration, error) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	acks := make(chan uint64, opts.Records)
	tailErr := make(chan error, 1)
	go func() {
		tailErr <- c.Tail(ctx, 1, func(r *core.Record) bool {
			acks <- r.LId
			return true
		})
	}()
	body := make([]byte, opts.RecordSize)
	start := time.Now()
	deadline := start.Add(opts.Budget)
	seen := uint64(0) // highest LId the consumer has delivered
	appended := 0
	for appended < opts.Records && time.Now().Before(deadline) {
		if _, err := c.Append(body, nil); err != nil {
			return int(seen), time.Since(start), err
		}
		appended++
		head, err := c.HeadExact()
		if err != nil {
			return int(seen), time.Since(start), err
		}
		for seen < head {
			select {
			case lid := <-acks:
				seen = lid
			case err := <-tailErr:
				return int(seen), time.Since(start), fmt.Errorf("cluster: tail exited early: %v", err)
			case <-time.After(5 * time.Second):
				return int(seen), time.Since(start), fmt.Errorf("cluster: LId %d never became visible (head %d)", seen+1, head)
			}
		}
	}
	elapsed := time.Since(start)
	cancel()
	<-tailErr // consumer exits on context cancellation
	return int(seen), elapsed, nil
}

// RunReadPath measures the four read-path rates.
func RunReadPath(opts ReadPathOptions) (ReadPathResult, error) {
	if opts.Maintainers <= 0 {
		opts.Maintainers = 3
	}
	if opts.BatchSize == 0 {
		opts.BatchSize = 8
	}
	if opts.Records <= 0 {
		opts.Records = 10_000
	}
	if opts.RecordSize <= 0 {
		opts.RecordSize = 128
	}
	if opts.Budget <= 0 {
		opts.Budget = 2 * time.Second
	}
	res := ReadPathResult{Maintainers: opts.Maintainers, Records: opts.Records}

	// Closed-loop tail, push then poll, each on a fresh log.
	push, err := newReadPathStack(opts)
	if err != nil {
		return res, err
	}
	n, elapsed, err := runClosedLoopTail(push, opts)
	if err != nil {
		return res, err
	}
	res.TailPushRecords = n
	res.TailPushPerSec = float64(n) / elapsed.Seconds()

	poll, err := newReadPathStack(opts)
	if err != nil {
		return res, err
	}
	poll.DisableRangeRead = true
	n, elapsed, err = runClosedLoopTail(poll, opts)
	if err != nil {
		return res, err
	}
	res.TailPollRecords = n
	res.TailPollPerSec = float64(n) / elapsed.Seconds()
	if res.TailPollPerSec > 0 {
		res.TailSpeedup = res.TailPushPerSec / res.TailPollPerSec
	}

	// Bulk read of the push run's log: one scatter-gather window versus
	// one round trip per record, both capped by the budget.
	head, err := push.HeadExact()
	if err != nil {
		return res, err
	}
	start := time.Now()
	recs, err := push.ReadRange(1, head)
	if err != nil {
		return res, err
	}
	if uint64(len(recs)) != head {
		return res, fmt.Errorf("cluster: range read returned %d of %d records", len(recs), head)
	}
	res.RangeReadPerSec = float64(len(recs)) / time.Since(start).Seconds()

	start = time.Now()
	deadline := start.Add(opts.Budget)
	read := 0
	for lid := uint64(1); lid <= head && time.Now().Before(deadline); lid++ {
		if _, err := push.ReadLId(lid); err != nil {
			return res, err
		}
		read++
	}
	res.SingleReadPerSec = float64(read) / time.Since(start).Seconds()
	if res.SingleReadPerSec > 0 {
		res.RangeSpeedup = res.RangeReadPerSec / res.SingleReadPerSec
	}
	return res, nil
}
