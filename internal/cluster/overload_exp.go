package cluster

// Overload experiment: the same 2×-saturating open-loop offered load is
// driven into a datacenter whose maintainer stage is the bottleneck, once
// with admission control on (a small pipeline credit bound and the shed
// ingress policy) and once with it off (the credit gate in counting-only
// mode — the seed's behaviour, where ingress queues everything the stage
// channels can hold). The comparison behind the acceptance bars: with
// admission on, both the records in flight inside the pipeline and the
// latency of an admitted append stay bounded; with it off, the pipeline
// fills every buffer and an append entering it waits behind all of them.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chariots"
	"repro/internal/core"
	"repro/internal/flstore"
	"repro/internal/scale"
	"repro/internal/workload"
)

// OverloadOptions configures the overload comparison.
type OverloadOptions struct {
	// MaintainerRate is the bottleneck stage's capacity (records/second).
	MaintainerRate float64
	// OverloadFactor scales the offered load relative to MaintainerRate
	// (the acceptance scenario is 2×).
	OverloadFactor float64
	// Credits is the admission arm's pipeline credit bound (records).
	Credits int
	// Duration is the measured window per arm (after warmup).
	Duration time.Duration
	// RecordSize is the record body size.
	RecordSize int
}

// OverloadArm is one measured arm of the comparison.
type OverloadArm struct {
	Admission bool `json:"admission"`
	// Offered/Accepted/Shed count the open-loop generator's records.
	Offered  uint64 `json:"offered"`
	Accepted uint64 `json:"accepted"`
	Shed     uint64 `json:"shed"`
	// CreditHighWater is the most records the pipeline held between
	// ingress and apply at any point.
	CreditHighWater int `json:"credit_high_water"`
	// Probe latencies are measured from each probe's intended start on a
	// fixed schedule to its AppendAck — shed rejections retry first and
	// their pacing sleeps accrue to the same probe's latency
	// (coordinated-omission-safe; ProbeSheds counts the rejections).
	ProbeCount int     `json:"probe_count"`
	ProbeSheds uint64  `json:"probe_sheds"`
	ProbeP50Ms float64 `json:"probe_p50_ms"`
	ProbeP99Ms float64 `json:"probe_p99_ms"`
	// Accept latencies are the open-loop generator's offered-vs-accepted
	// measurement: intended offer time per the fixed schedule to the
	// batch's acceptance at ingress. With admission off and the stage
	// buffers full, ingress queues behind the saturated pipeline and this
	// grows without bound; with it on, batches are accepted or shed
	// promptly.
	AcceptP50Ms float64 `json:"accept_p50_ms"`
	AcceptP99Ms float64 `json:"accept_p99_ms"`
	// AppliedPerSec is the log's achieved apply throughput.
	AppliedPerSec float64 `json:"applied_per_sec"`
}

// OverloadResult is the two-arm comparison plus the derived ratios the
// acceptance bars are stated over.
type OverloadResult struct {
	MaintainerRate float64     `json:"maintainer_rate"`
	OfferedRate    float64     `json:"offered_rate"`
	Credits        int         `json:"credits"`
	On             OverloadArm `json:"admission_on"`
	Off            OverloadArm `json:"admission_off"`
	// HighWaterRatio is Off/On in-flight high water (bounding evidence).
	HighWaterRatio float64 `json:"high_water_ratio"`
	// P99Ratio is Off/On probe p99 (latency-bounding evidence).
	P99Ratio float64 `json:"p99_ratio"`
}

// runOverloadArm builds one single-DC pipeline with the maintainer stage
// capped at opts.MaintainerRate, saturates it at OverloadFactor× with an
// open-loop generator, and probes admitted-append latency closed-loop.
func runOverloadArm(opts OverloadOptions, admission bool) (OverloadArm, error) {
	arm := OverloadArm{Admission: admission}
	cfg := chariots.Config{
		Self:   0,
		NumDCs: 1,
		Rates:  chariots.StageRates{Maintainer: opts.MaintainerRate},
	}
	if admission {
		cfg.PipelineCredits = opts.Credits
		cfg.ShedOnSaturation = true
	} else {
		cfg.PipelineCredits = -1 // counting-only: the seed's unbounded ingress
	}
	dc, err := chariots.New(cfg)
	if err != nil {
		return arm, err
	}
	dc.Start()
	defer dc.Stop()

	// Open-loop offered load at OverloadFactor× the bottleneck capacity.
	gen := &workload.OpenLoopGen{
		TargetPerSec: opts.MaintainerRate * opts.OverloadFactor,
		RecordSize:   opts.RecordSize,
		BatchSize:    64,
	}
	var acceptHist scale.Hist
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		gen.RunTimed(func(intended time.Time, recs []*core.Record) int {
			if err := dc.TryInject(recs); err != nil {
				return 0 // shed (or, admission off, never: credits unbounded)
			}
			// Accepted: offered-vs-accepted latency against the schedule's
			// intended offer time. With admission off TryInject blocks on
			// the pipeline's full buffers; that wait — and the wait of
			// every batch scheduled behind it — is exactly the latency the
			// re-anchoring generator used to forgive.
			acceptHist.Record(time.Since(intended))
			return len(recs)
		}, opts.Duration+opts.Duration/4)
	}()

	// Let the pipeline reach its saturated steady state before probing.
	time.Sleep(opts.Duration / 4)

	// Open-loop probe: 50 concurrent sessions offer appends on a fixed
	// aggregate 200/s schedule, and every probe's latency runs from its
	// intended start to the AppendAck — shed-retry pacing and queueing
	// behind a slow earlier probe on the same session both accrue to the
	// probe they delayed (coordinated-omission-safe). The closed-loop
	// predecessor restarted its clock on every retry, reporting only the
	// final admitted attempt.
	var probeSheds atomic.Uint64
	probe := scale.NewEngine(scale.Config{
		Sessions:     50,
		TargetPerSec: 200,
		Duration:     opts.Duration,
		Seed:         1,
		RetryFor:     30 * time.Second,
		Op: func(int, time.Time) error {
			_, err := dc.Append([]byte("probe"), nil)
			return err
		},
		Retry: func(err error) (time.Duration, bool) {
			if !flstore.IsRetryable(err) {
				return 0, false
			}
			probeSheds.Add(1)
			return flstore.RetryAfter(err), true
		},
	})
	probeStats := probe.Run()
	if probeStats.Errors > 0 {
		wg.Wait()
		return arm, fmt.Errorf("cluster: %d probe appends failed", probeStats.Errors)
	}
	wg.Wait()

	stats := dc.CreditStats()
	arm.Offered = gen.Offered.Value()
	arm.Accepted = gen.Accepted.Value()
	arm.Shed = stats.Sheds
	arm.CreditHighWater = stats.MaxInUse
	arm.ProbeCount = int(probeStats.Completed)
	arm.ProbeSheds = probeSheds.Load()
	if probeStats.Completed > 0 {
		arm.ProbeP50Ms = float64(probeStats.Hist.Quantile(0.50)) / float64(time.Millisecond)
		arm.ProbeP99Ms = float64(probeStats.Hist.Quantile(0.99)) / float64(time.Millisecond)
	}
	if acceptHist.Count() > 0 {
		arm.AcceptP50Ms = float64(acceptHist.Quantile(0.50)) / float64(time.Millisecond)
		arm.AcceptP99Ms = float64(acceptHist.Quantile(0.99)) / float64(time.Millisecond)
	}
	arm.AppliedPerSec = float64(dc.AppliedCount()) / (opts.Duration + opts.Duration/4).Seconds()
	// Drain what the pipeline still holds so Stop does not race the
	// forwarders mid-batch (and the off arm's backlog empties).
	dc.Quiesce(50*time.Millisecond, 30*time.Second)
	return arm, nil
}

// RunOverload executes both arms and derives the comparison ratios.
func RunOverload(opts OverloadOptions) (OverloadResult, error) {
	if opts.MaintainerRate <= 0 {
		opts.MaintainerRate = 20_000
	}
	if opts.OverloadFactor <= 0 {
		opts.OverloadFactor = 2
	}
	if opts.Credits <= 0 {
		opts.Credits = 2048
	}
	if opts.Duration <= 0 {
		opts.Duration = time.Second
	}
	if opts.RecordSize <= 0 {
		opts.RecordSize = 128
	}
	res := OverloadResult{
		MaintainerRate: opts.MaintainerRate,
		OfferedRate:    opts.MaintainerRate * opts.OverloadFactor,
		Credits:        opts.Credits,
	}
	var err error
	if res.On, err = runOverloadArm(opts, true); err != nil {
		return res, fmt.Errorf("cluster: admission-on arm: %w", err)
	}
	if res.Off, err = runOverloadArm(opts, false); err != nil {
		return res, fmt.Errorf("cluster: admission-off arm: %w", err)
	}
	if res.On.CreditHighWater > 0 {
		res.HighWaterRatio = float64(res.Off.CreditHighWater) / float64(res.On.CreditHighWater)
	}
	if res.On.ProbeP99Ms > 0 {
		res.P99Ratio = res.Off.ProbeP99Ms / res.On.ProbeP99Ms
	}
	return res, nil
}
