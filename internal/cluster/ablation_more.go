package cluster

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/chariots"
	"repro/internal/core"
	"repro/internal/flstore"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// RunFLStoreWithBatch is RunFLStore with an explicit placement round size
// (the §5.2 batch-size ablation).
func RunFLStoreWithBatch(opts FLStoreOptions, placementBatch uint64) (FLStoreResult, error) {
	if opts.Maintainers < 1 {
		return FLStoreResult{}, fmt.Errorf("cluster: need >= 1 maintainer")
	}
	if opts.Duration <= 0 {
		opts.Duration = time.Second
	}
	scale := opts.Profile.scale()
	p := flstore.Placement{NumMaintainers: opts.Maintainers, BatchSize: placementBatch}
	maintainers := make([]*flstore.Maintainer, opts.Maintainers)
	for i := range maintainers {
		m, err := flstore.NewMaintainer(flstore.MaintainerConfig{
			Index:         i,
			Placement:     p,
			Limiter:       newSimLimiter(opts.Profile.down(opts.Profile.MaintainerCap)),
			RejectPenalty: opts.Profile.RejectPenalty,
		})
		if err != nil {
			return FLStoreResult{}, err
		}
		maintainers[i] = m
	}
	var wg sync.WaitGroup
	watch := metrics.NewStopwatch()
	var offered metrics.Counter
	for i := range maintainers {
		m := maintainers[i]
		g := &workload.OpenLoopGen{TargetPerSec: opts.TargetPerClient / scale, BatchSize: 64}
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.Run(func(recs []*core.Record) int {
				offered.Add(uint64(len(recs)))
				if _, err := m.Append(recs); err != nil {
					return 0
				}
				return len(recs)
			}, opts.Duration)
		}()
	}
	wg.Wait()
	watch.Stop()
	res := FLStoreResult{Maintainers: opts.Maintainers, TargetPerClient: opts.TargetPerClient}
	elapsed := watch.Elapsed().Seconds()
	for _, m := range maintainers {
		rate := float64(m.Appended.Value()) / elapsed * scale
		res.PerMaintainer = append(res.PerMaintainer, rate)
		res.AchievedTotal += rate
	}
	res.OfferedTotal = float64(offered.Value()) / elapsed * scale
	return res, nil
}

// RunGossipAblation measures how the gossip interval (§5.4) affects the
// reader-visible head of the log while appends run at a fixed rate: the
// mean lag (in records) between the true head and what a maintainer's
// gossiped view exposes, plus the achieved throughput (which gossip must
// not affect — the fixed-size-gossip claim).
func RunGossipAblation(profile Profile, maintainers int, targetPerClient float64, interval, dur time.Duration) (meanLag uint64, throughput float64, err error) {
	p := flstore.Placement{NumMaintainers: maintainers, BatchSize: 1000}
	scale := profile.scale()
	ms := make([]*flstore.Maintainer, maintainers)
	for i := range ms {
		m, err := flstore.NewMaintainer(flstore.MaintainerConfig{
			Index:     i,
			Placement: p,
			Limiter:   newSimLimiter(profile.down(profile.MaintainerCap)),
		})
		if err != nil {
			return 0, 0, err
		}
		ms[i] = m
	}
	apis := make([]flstore.MaintainerAPI, maintainers)
	for i, m := range ms {
		apis[i] = m
	}
	var gossipers []*flstore.Gossiper
	for i, m := range ms {
		peers := make([]flstore.MaintainerAPI, maintainers)
		for j := range peers {
			if j != i {
				peers[j] = apis[j]
			}
		}
		g := flstore.NewGossiper(m, peers, interval)
		g.Start()
		gossipers = append(gossipers, g)
	}
	defer func() {
		for _, g := range gossipers {
			g.Stop()
		}
	}()

	stop := make(chan struct{})
	var lagSamples, lagTotal uint64
	go func() {
		ticker := time.NewTicker(time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				// True head from fresh next-unfilled values.
				next := make([]uint64, maintainers)
				for i, m := range ms {
					next[i], _ = m.NextUnfilled()
				}
				trueHead := flstore.Head(next)
				gossiped, _ := ms[0].Head()
				if trueHead > gossiped {
					lagTotal += trueHead - gossiped
				}
				lagSamples++
			}
		}
	}()

	var wg sync.WaitGroup
	watch := metrics.NewStopwatch()
	for i := range ms {
		m := ms[i]
		g := &workload.OpenLoopGen{TargetPerSec: targetPerClient / scale, BatchSize: 64}
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.Run(func(recs []*core.Record) int {
				if _, err := m.Append(recs); err != nil {
					return 0
				}
				return len(recs)
			}, dur)
		}()
	}
	wg.Wait()
	watch.Stop()
	close(stop)

	var total uint64
	for _, m := range ms {
		total += m.Appended.Value()
	}
	if lagSamples > 0 {
		// Lag in records scales with the rate; convert to paper units.
		meanLag = uint64(float64(lagTotal) / float64(lagSamples) * scale)
	}
	return meanLag, float64(total) / watch.Elapsed().Seconds() * scale, nil
}

// RunTokenCarryAblation measures the apply latency of dependency-blocked
// records under the two deferred-record policies of §6.2: carried with the
// token (reconsidered at every queue) or parked at the first queue that
// saw them (reconsidered once per token revolution).
func RunTokenCarryAblation(carry bool, dur time.Duration) (time.Duration, error) {
	dc, err := chariots.New(chariots.Config{
		Self:           0,
		NumDCs:         2, // external records with dependencies
		Queues:         4,
		Maintainers:    2,
		PlacementBatch: 100,
		FlushThreshold: 4,
		FlushInterval:  200 * time.Microsecond,
		TokenIdleWait:  300 * time.Microsecond,
		CarryDeferred:  carry,
	})
	if err != nil {
		return 0, err
	}
	dc.Start()
	defer dc.Stop()

	// Inject remote-host records with a gap: TOId t+1 arrives before
	// TOId t, so it defers until t lands; measure the defer latency.
	hist := metrics.NewHistogram(0)
	rounds := int(dur / (5 * time.Millisecond))
	if rounds < 20 {
		rounds = 20
	}
	toid := uint64(1)
	for i := 0; i < rounds; i++ {
		blocked := &core.Record{Host: 1, TOId: toid + 1, Body: []byte("dependent")}
		unblocker := &core.Record{Host: 1, TOId: toid, Body: []byte("first")}
		start := time.Now()
		dc.Inject([]*core.Record{blocked})
		time.Sleep(time.Millisecond) // let it reach a queue and defer
		dc.Inject([]*core.Record{unblocker})
		if !dc.WaitForTOId(1, toid+1, 5*time.Second) {
			return 0, fmt.Errorf("cluster: dependent record never applied")
		}
		hist.Observe(time.Since(start))
		toid += 2
	}
	return hist.Mean(), nil
}

// RunFlushLatency measures end-to-end append latency under a given batcher
// flush policy at negligible load: with a threshold of 1 a record is
// forwarded immediately; with larger thresholds a lone record waits for
// the flush interval — the §6.2 batching trade-off (throughput-side
// batching buys amortization and costs latency).
func RunFlushLatency(thresh int, interval time.Duration, appends int) (time.Duration, error) {
	dc, err := chariots.New(chariots.Config{
		Self:           0,
		NumDCs:         1,
		FlushThreshold: thresh,
		FlushInterval:  interval,
		TokenIdleWait:  50 * time.Microsecond,
	})
	if err != nil {
		return 0, err
	}
	dc.Start()
	defer dc.Stop()
	hist := metrics.NewHistogram(0)
	for i := 0; i < appends; i++ {
		start := time.Now()
		if _, err := dc.Append([]byte("latency-probe"), nil); err != nil {
			return 0, err
		}
		hist.Observe(time.Since(start))
	}
	return hist.Mean(), nil
}
