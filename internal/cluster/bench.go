package cluster

import (
	"encoding/json"
	"fmt"
	"os"
)

// BenchSchema versions the envelope every BENCH_*.json artifact shares.
// Bump only when the envelope itself changes shape; the per-bench payload
// under "data" is versioned by the schema-golden test instead.
const BenchSchema = "repro/bench/v1"

// BenchDoc is the shared envelope: which bench produced the artifact and
// its typed payload. Downstream tooling dispatches on Bench without
// guessing from filenames, and a schema bump is a visible diff in every
// artifact at once.
type BenchDoc struct {
	Schema string `json:"schema"`
	Bench  string `json:"bench"`
	Data   any    `json:"data"`
}

// WriteBench emits one benchmark artifact: the payload wrapped in the
// BenchDoc envelope, indented, newline-terminated, written atomically-ish
// (truncate+write) to path. Every experiment that previously hand-rolled
// its own MarshalIndent+WriteFile goes through here so the artifacts stay
// structurally identical.
func WriteBench(path, bench string, data any) error {
	buf, err := json.MarshalIndent(BenchDoc{Schema: BenchSchema, Bench: bench, Data: data}, "", "  ")
	if err != nil {
		return fmt.Errorf("cluster: marshal %s bench: %w", bench, err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return fmt.Errorf("cluster: write %s: %w", path, err)
	}
	return nil
}
