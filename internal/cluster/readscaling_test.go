package cluster

import (
	"testing"
	"time"
)

// TestReadScalingSweepSmoke runs a miniature replica read-scaling sweep
// end to end — real TCP, replicated preload, spread reads — asserting the
// sweep's correctness properties (every point measured, hot set found,
// throughput positive), not the throughput ratio: CI machines are too
// noisy to gate a perf bar in a unit test, so the ratio is enforced by
// `repro -exp readpath` with full budgets.
func TestReadScalingSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up TCP stacks")
	}
	opts := ReadScalingOptions{
		Maintainers: 3,
		BatchSize:   4,
		Records:     120,
		Readers:     4,
		Budget:      150 * time.Millisecond,
		Replicas:    []int{1, 3},
	}
	points, err := RunReadScaling(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points, want 2", len(points))
	}
	for i, want := range []int{1, 3} {
		pt := points[i]
		if pt.Replication != want {
			t.Errorf("point %d replication = %d, want %d", i, pt.Replication, want)
		}
		if pt.Records == 0 {
			t.Errorf("R=%d: empty hot set", pt.Replication)
		}
		if pt.ReadsPerSec <= 0 {
			t.Errorf("R=%d: no reads measured", pt.Replication)
		}
	}
}
