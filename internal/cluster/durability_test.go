package cluster

import (
	"testing"
	"time"
)

// TestDurabilitySmoke runs a reduced durability experiment end to end: both
// fsync policies at two appender counts plus all three quorum arms, with a
// short horizon and a cheap injected disk. It asserts the shape of the
// artifact and the invariants the full run's acceptance bars rely on, not
// the performance ratios themselves (those need the full horizon).
func TestDurabilitySmoke(t *testing.T) {
	res, err := RunDurability(DurabilityOptions{
		Appenders:         []int{1, 8},
		PerAppenderPerSec: 40,
		Duration:          300 * time.Millisecond,
		FsyncDelay:        200 * time.Microsecond,
		SlowFactor:        10,
		Seed:              7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FsyncArms) != 4 {
		t.Fatalf("fsync arms = %d, want 4", len(res.FsyncArms))
	}
	for _, a := range res.FsyncArms {
		if a.Offered == 0 || a.Offered != a.Completed+a.Errors {
			t.Fatalf("arm %d/%s ledger: offered=%d completed=%d errors=%d",
				a.Appenders, a.Policy, a.Offered, a.Completed, a.Errors)
		}
		if a.Errors != 0 {
			t.Fatalf("arm %d/%s saw %d append errors", a.Appenders, a.Policy, a.Errors)
		}
		if a.Fsyncs == 0 {
			t.Fatalf("arm %d/%s recorded no fsyncs", a.Appenders, a.Policy)
		}
		if a.Policy == "each" && a.FsyncsPerOp < 1 {
			t.Fatalf("per-batch policy fsyncs/op = %.2f, want >= 1", a.FsyncsPerOp)
		}
		if a.Policy == "group" && a.Appenders >= 8 && a.FsyncsPerOp >= 1 {
			t.Fatalf("group commit at %d appenders did not collapse fsyncs: %.2f/op",
				a.Appenders, a.FsyncsPerOp)
		}
	}
	if len(res.QuorumArms) != 3 {
		t.Fatalf("quorum arms = %d, want 3", len(res.QuorumArms))
	}
	for _, a := range res.QuorumArms {
		if a.Offered == 0 || a.Completed == 0 {
			t.Fatalf("quorum arm %s moved no load: offered=%d completed=%d", a.Name, a.Offered, a.Completed)
		}
		if a.Errors != 0 {
			t.Fatalf("quorum arm %s saw %d errors", a.Name, a.Errors)
		}
	}
	if res.GroupP99Ratio64 <= 0 {
		t.Fatalf("group p99 ratio = %v, want > 0", res.GroupP99Ratio64)
	}
	if res.QuorumSlowP99Ratio <= 0 || res.AllAckSlowP99Ratio <= 0 {
		t.Fatalf("quorum ratios = %v / %v, want > 0",
			res.QuorumSlowP99Ratio, res.AllAckSlowP99Ratio)
	}
}
