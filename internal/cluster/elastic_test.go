package cluster

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/chariots"
	"repro/internal/metrics"
)

// TestElasticSmoke runs a shortened elasticity experiment end to end:
// load doubles past the old member set's capacity, the autoscaler fires
// the epoch switchover, and the run must finish with an intact log and
// bounded post-flip p99.
func TestElasticSmoke(t *testing.T) {
	res, err := RunElastic(ElasticOptions{
		MaintainersBefore: 2,
		MaintainersAfter:  4,
		PerMaintainerRate: 600,
		BaseRate:          800,
		PhaseA:            500 * time.Millisecond,
		PhaseB:            900 * time.Millisecond,
		PhaseC:            500 * time.Millisecond,
		Sessions:          4,
		AutoscaleTick:     50 * time.Millisecond,
		AutoscaleTicks:    2,
	})
	if err != nil {
		t.Fatalf("RunElastic: %v (result %+v)", err, res)
	}
	if !res.GrowTriggered {
		t.Fatal("autoscaler never fired")
	}
	if res.Epochs != 2 {
		t.Fatalf("epochs = %d, want 2", res.Epochs)
	}
	if !res.MigrationDone {
		t.Fatal("migration incomplete")
	}
	if res.DuplicateLIds != 0 || res.LostLIds != 0 {
		t.Fatalf("integrity: %d dups, %d lost", res.DuplicateLIds, res.LostLIds)
	}
	if !res.P99Bounded {
		t.Fatalf("post-flip p99 %.1fms unbounded (pre %.1fms)", res.P99AfterMs, res.P99BeforeMs)
	}
	if res.UniqueLIds == 0 || res.AppendsAfter == 0 {
		t.Fatalf("no traffic measured: %+v", res)
	}
}

// snapshotWith builds a synthetic registry snapshot out of plain series.
func snapshotWith(series ...metrics.SeriesSnapshot) metrics.Snapshot {
	return metrics.Snapshot{Series: series}
}

func gaugeSeries(name string, v float64, labels map[string]string) metrics.SeriesSnapshot {
	return metrics.SeriesSnapshot{Name: name, Labels: labels, Kind: "gauge", Value: v}
}

// TestAutoscalerStreakAndLatch drives Observe with synthetic snapshots:
// the hook must fire only after K consecutive breaching ticks, fire once
// per episode, and re-arm after the pressure clears.
func TestAutoscalerStreakAndLatch(t *testing.T) {
	grew := 0
	a := NewAutoscaler(AutoscaleConfig{
		Ticks:   2,
		GrowLog: func() error { grew++; return nil },
	})
	calm := snapshotWith(gaugeSeries("flstore_rejected_total", 0, nil))
	hot := func(n float64) metrics.Snapshot {
		return snapshotWith(gaugeSeries("flstore_rejected_total", n, nil))
	}

	// First tick seeds the rejects counter — even a hot snapshot reads as
	// no delta.
	if dec := a.Observe(hot(100)); dec.LogPressure {
		t.Fatal("first tick must seed, not breach")
	}
	// One breaching tick is below the streak.
	if dec := a.Observe(hot(150)); !dec.LogPressure || dec.GrewLog {
		t.Fatalf("tick 2: pressure without grow expected, got %+v", dec)
	}
	// Second consecutive breach fires the hook.
	if dec := a.Observe(hot(200)); !dec.GrewLog {
		t.Fatalf("tick 3: grow expected, got %+v", dec)
	}
	// Latched: continued pressure must not re-fire.
	if dec := a.Observe(hot(250)); dec.GrewLog {
		t.Fatal("latched hook re-fired under sustained pressure")
	}
	// Pressure clears, then returns: the hook re-arms.
	a.Observe(calm) // rejects total regressing => delta <= 0, no pressure
	a.Observe(hot(300))
	if dec := a.Observe(hot(400)); !dec.GrewLog {
		t.Fatalf("re-armed hook did not fire, got %+v", dec)
	}
	if grew != 2 {
		t.Fatalf("grew %d times, want 2", grew)
	}
}

// TestAutoscalerHookErrorRearms verifies a failing hook re-arms so a
// later tick can retry the grow.
func TestAutoscalerHookErrorRearms(t *testing.T) {
	calls := 0
	a := NewAutoscaler(AutoscaleConfig{
		Ticks: 1,
		GrowLog: func() error {
			calls++
			if calls == 1 {
				return fmt.Errorf("factory down")
			}
			return nil
		},
	})
	hot := func(n float64) metrics.Snapshot {
		return snapshotWith(gaugeSeries("flstore_rejected_total", n, nil))
	}
	a.Observe(hot(1)) // seed
	if dec := a.Observe(hot(10)); dec.Err == "" || dec.GrewLog {
		t.Fatalf("failing hook should surface Err, got %+v", dec)
	}
	if dec := a.Observe(hot(20)); !dec.GrewLog {
		t.Fatalf("retry after hook error should grow, got %+v", dec)
	}
	if calls != 2 {
		t.Fatalf("hook called %d times, want 2", calls)
	}
}

// TestAutoscalerSignals checks SignalsFrom derives each signal from the
// metric families the deployment actually exports.
func TestAutoscalerSignals(t *testing.T) {
	sn := snapshotWith(
		gaugeSeries("flstore_admission_backlog_records", 80, map[string]string{"maintainer": "0"}),
		gaugeSeries("flstore_admission_backlog_budget_records", 100, map[string]string{"maintainer": "0"}),
		gaugeSeries("chariots_credit_high_water_records", 90, map[string]string{"dc": "A"}),
		gaugeSeries("chariots_credit_capacity_records", 100, map[string]string{"dc": "A"}),
		gaugeSeries("flstore_head_lid", 60000, nil),
		gaugeSeries("replica_durable_watermark", 1000, map[string]string{"member": "1"}),
		gaugeSeries("replica_durable_watermark", 0, map[string]string{"member": "2"}),
	)
	sig := SignalsFrom(sn)
	if sig.BacklogRatio != 0.8 {
		t.Fatalf("BacklogRatio = %v, want 0.8", sig.BacklogRatio)
	}
	if sig.CreditRatio != 0.9 {
		t.Fatalf("CreditRatio = %v, want 0.9", sig.CreditRatio)
	}
	// The zero watermark (member 2 not reporting) must be ignored.
	if sig.DurableLag != 59000 {
		t.Fatalf("DurableLag = %v, want 59000", sig.DurableLag)
	}
}

// TestAutoscalerGrowsPipeline checks the pipeline dimension end to end
// against a live Datacenter: sustained credit pressure adds a queue and
// a filter.
func TestAutoscalerGrowsPipeline(t *testing.T) {
	dc, err := chariots.New(chariots.Config{
		Self:   0,
		NumDCs: 1,
		Batchers: 1, Filters: 1, Queues: 1, Maintainers: 1,
		PlacementBatch: 100,
		FlushThreshold: 8,
		FlushInterval:  time.Millisecond,
		TokenIdleWait:  100 * time.Microsecond,
		Rates: chariots.StageRates{
			Batcher: 1e6, Filter: 1e6, Queue: 1e6, Maintainer: 1e6,
			Store: 1e6, Sender: 1e6, Receiver: 1e6,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	dc.Start()
	defer dc.Stop()
	before := dc.Stages()
	grew := false
	a := NewAutoscaler(AutoscaleConfig{
		Ticks: 2,
		GrowPipeline: func() error {
			if _, err := dc.AddQueue(0, 1e6); err != nil {
				return err
			}
			if _, err := dc.AddFilter(1e6); err != nil {
				return err
			}
			grew = true
			return nil
		},
	})
	hot := snapshotWith(
		gaugeSeries("chariots_credit_high_water_records", 95, map[string]string{"dc": "A"}),
		gaugeSeries("chariots_credit_capacity_records", 100, map[string]string{"dc": "A"}),
	)
	a.Observe(hot)
	dec := a.Observe(hot)
	if !dec.GrewPipeline || !grew {
		t.Fatalf("pipeline grow did not fire: %+v", dec)
	}
	after := dc.Stages()
	if after.Queues != before.Queues+1 || after.Filters != before.Filters+1 {
		t.Fatalf("stages before %+v after %+v: want +1 queue, +1 filter", before, after)
	}
}
