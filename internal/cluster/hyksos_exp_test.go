package cluster

import (
	"testing"
	"time"
)

func TestRunHyksosSmoke(t *testing.T) {
	res, err := RunHyksos(HyksosOptions{
		Sessions:    2,
		Keys:        20,
		PutFraction: 0.3,
		Duration:    300 * time.Millisecond,
		ZipfSkew:    1.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Puts == 0 || res.Gets == 0 {
		t.Errorf("puts=%d gets=%d; want both nonzero", res.Puts, res.Gets)
	}
	if res.OpsPerSec <= 0 {
		t.Error("no throughput measured")
	}
	if res.GetMean <= 0 || res.PutMean <= 0 {
		t.Error("latencies not measured")
	}
}
