package cluster

import (
	"fmt"
	"time"

	"repro/internal/chariots"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// PipelineOptions configures one Chariots pipeline run (Tables 2–5,
// Figure 9): the number of machines per stage and either a duration
// (steady-state throughput tables) or a fixed record count (the Figure 9
// drain study).
type PipelineOptions struct {
	Profile  Profile
	Clients  int
	Batchers int
	Filters  int
	Queues   int
	// Maintainers defaults to Queues (the paper's tables pair them).
	Maintainers int

	// Duration runs the generators for a fixed time (tables), while
	// Records pushes a fixed record count and waits for the pipeline to
	// drain (Figure 9). Exactly one must be set.
	Duration time.Duration
	Records  uint64

	// Warmup excludes the buffer-fill transient from duration-based
	// measurements (defaults to max(Duration/3, 200ms)). Counters are
	// snapshotted after the warmup; rates use only the steady window.
	Warmup time.Duration

	// SampleWindow, when > 0, records a per-machine throughput
	// timeseries at this granularity (Figure 9).
	SampleWindow time.Duration

	// FlushThreshold overrides the batcher flush threshold (default
	// 512) — the §6.2 batching ablation.
	FlushThreshold int

	// ChannelDepth overrides the inter-stage buffer depth in records
	// (default 1<<15). The Figure 9 drain study uses a deep buffer so
	// the filter-stage backlog (and the end-of-run egress spike) is
	// visible, as in the paper's 40-second drain tail.
	ChannelDepth int
}

// MachineRow is one row of a Table 2–5-style report.
type MachineRow struct {
	Name    string
	PerSec  float64
	Records uint64
}

// PipelineResult is one pipeline run's measurements.
type PipelineResult struct {
	Rows       []MachineRow
	Applied    uint64
	Elapsed    time.Duration
	Samples    map[string][]metrics.Sample
	Bottleneck string
}

// RunPipeline executes one pipeline experiment.
func RunPipeline(opts PipelineOptions) (*PipelineResult, error) {
	if opts.Clients < 1 {
		return nil, fmt.Errorf("cluster: need >= 1 client")
	}
	if (opts.Duration == 0) == (opts.Records == 0) {
		return nil, fmt.Errorf("cluster: set exactly one of Duration or Records")
	}
	if opts.Maintainers == 0 {
		opts.Maintainers = opts.Queues
	}
	// Buffer and batch sizes scale with the rates so buffering *time*
	// (records ÷ rate) matches the unscaled system: backpressure and
	// drain-tail shapes depend on it.
	scale0 := opts.Profile.scale()
	dc, err := chariots.New(chariots.Config{
		Self:           0,
		NumDCs:         1,
		Batchers:       opts.Batchers,
		Filters:        opts.Filters,
		Queues:         opts.Queues,
		Maintainers:    opts.Maintainers,
		PlacementBatch: 1000,
		FlushThreshold: scaledSize(flushThreshold(opts.FlushThreshold), scale0, 8),
		FlushInterval:  time.Millisecond,
		TokenIdleWait:  100 * time.Microsecond,
		Rates:          opts.Profile.stageRates(),
		FilterNICRate:  opts.Profile.down(opts.Profile.FilterNICRate),
		ChannelDepth:   scaledSize(channelDepth(opts.ChannelDepth), scale0, 512),
	})
	if err != nil {
		return nil, err
	}
	dc.Start()
	defer dc.Stop()

	// Client machines: closed-loop generators bounded by the client
	// machine's own capacity and by pipeline backpressure.
	scale := opts.Profile.scale()
	gens := make([]*workload.ClosedLoopGen, opts.Clients)
	for i := range gens {
		gens[i] = &workload.ClosedLoopGen{
			RatePerSec: opts.Profile.down(opts.Profile.ClientRate),
			BatchSize:  scaledSize(256, scale, 8),
		}
	}

	// Samplers (Figure 9): one per machine plus one per client.
	var samplers map[string]*metrics.ThroughputSampler
	if opts.SampleWindow > 0 {
		samplers = make(map[string]*metrics.ThroughputSampler)
		for i, g := range gens {
			name := clientName(i, opts.Clients)
			samplers[name] = metrics.NewThroughputSampler(&g.Sent, opts.SampleWindow)
		}
		for _, m := range dc.Machines() {
			samplers[m.Name] = metrics.NewThroughputSampler(&m.Processed, opts.SampleWindow)
		}
		for _, s := range samplers {
			s.Start()
		}
	}

	stop := make(chan struct{})
	done := make(chan struct{}, opts.Clients)
	var perClientQuota uint64
	if opts.Records > 0 {
		perClientQuota = opts.Records / uint64(opts.Clients)
	}
	watch := metrics.NewStopwatch()
	for _, g := range gens {
		g := g
		go func() {
			defer func() { done <- struct{}{} }()
			if perClientQuota > 0 {
				// Fixed record count: generate the quota then stop.
				g.Run(func(recs []*core.Record) {
					dc.Inject(recs)
				}, stopWhen(func() bool { return g.Sent.Value() >= perClientQuota }, stop))
			} else {
				g.Run(func(recs []*core.Record) { dc.Inject(recs) }, stop)
			}
		}()
	}

	var base map[string]uint64
	if opts.Duration > 0 {
		warmup := opts.Warmup
		if warmup == 0 {
			warmup = opts.Duration / 3
			if warmup < 200*time.Millisecond {
				warmup = 200 * time.Millisecond
			}
		}
		time.Sleep(warmup)
		base = snapshotCounters(gens, dc, opts.Clients)
		watch = metrics.NewStopwatch()
		time.Sleep(opts.Duration)
		close(stop)
		for range gens {
			<-done
		}
	} else {
		for range gens {
			<-done
		}
		close(stop)
		// Wait for the pipeline to drain every injected record.
		var sentTotal uint64
		for _, g := range gens {
			sentTotal += g.Sent.Value()
		}
		deadline := time.Now().Add(2 * time.Minute)
		for dc.AppliedCount() < sentTotal {
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("cluster: pipeline drained %d of %d records",
					dc.AppliedCount(), sentTotal)
			}
			time.Sleep(time.Millisecond)
		}
	}
	watch.Stop()
	for _, s := range samplers {
		s.Stop()
	}

	res := &PipelineResult{
		Applied: dc.AppliedCount(),
		Elapsed: watch.Elapsed(),
	}
	elapsed := watch.Elapsed().Seconds()
	delta := func(name string, now uint64) uint64 {
		if base == nil {
			return now
		}
		return now - base[name]
	}
	for i, g := range gens {
		name := clientName(i, opts.Clients)
		n := delta(name, g.Sent.Value())
		res.Rows = append(res.Rows, MachineRow{Name: name, PerSec: float64(n) / elapsed * scale, Records: n})
	}
	for _, m := range dc.Machines() {
		n := delta(m.Name, m.Processed.Value())
		res.Rows = append(res.Rows, MachineRow{Name: m.Name, PerSec: float64(n) / elapsed * scale, Records: n})
	}
	// The bottleneck is the non-client stage with the lowest cumulative
	// throughput (stage capacity is the sum of its machines).
	minRate := -1.0
	for stage, rate := range res.StageTotals() {
		if stage == "Client" || rate == 0 {
			continue
		}
		if minRate < 0 || rate < minRate {
			minRate = rate
			res.Bottleneck = stage
		}
	}
	if samplers != nil {
		res.Samples = make(map[string][]metrics.Sample, len(samplers))
		for name, s := range samplers {
			samples := s.Samples()
			for i := range samples {
				samples[i].Rate *= scale
			}
			res.Samples[name] = samples
		}
	}
	return res, nil
}

func flushThreshold(v int) int {
	if v > 0 {
		return v
	}
	return 512
}

func channelDepth(v int) int {
	if v > 0 {
		return v
	}
	return 1 << 15
}

// scaledSize divides a record-count-denominated size by the simulation
// scale, bounded below by min.
func scaledSize(v int, scale float64, min int) int {
	out := int(float64(v) / scale)
	if out < min {
		out = min
	}
	return out
}

// snapshotCounters captures every machine's counter for warmup exclusion.
func snapshotCounters(gens []*workload.ClosedLoopGen, dc *chariots.Datacenter, nClients int) map[string]uint64 {
	base := make(map[string]uint64)
	for i, g := range gens {
		base[clientName(i, nClients)] = g.Sent.Value()
	}
	for _, m := range dc.Machines() {
		base[m.Name] = m.Processed.Value()
	}
	return base
}

func clientName(i, total int) string {
	if total == 1 {
		return "Client"
	}
	return fmt.Sprintf("Client %d", i+1)
}

// stopWhen derives a stop channel that closes when cond becomes true or
// parent closes, polled at 500µs.
func stopWhen(cond func() bool, parent <-chan struct{}) <-chan struct{} {
	ch := make(chan struct{})
	go func() {
		defer close(ch)
		for {
			select {
			case <-parent:
				return
			case <-time.After(500 * time.Microsecond):
				if cond() {
					return
				}
			}
		}
	}()
	return ch
}

// Table renders the result the way the paper prints Tables 2–5.
func (r *PipelineResult) Table() string {
	tb := &metrics.Table{Header: []string{"Machine", "Throughput (Kappends/s)"}}
	for _, row := range r.Rows {
		tb.AddRow(row.Name, fmt.Sprintf("%.1f", row.PerSec/1000))
	}
	return tb.String()
}

// StageTotals sums per-stage throughput across machines of the same kind.
func (r *PipelineResult) StageTotals() map[string]float64 {
	totals := make(map[string]float64)
	for _, row := range r.Rows {
		totals[stageOf(row.Name)] += row.PerSec
	}
	return totals
}

func stageOf(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == ' ' {
			return name[:i]
		}
	}
	return name
}
