package cluster

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/scale"
)

func TestWriteBenchEnvelope(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	if err := WriteBench(path, "x", map[string]int{"v": 7}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if raw[len(raw)-1] != '\n' {
		t.Error("artifact not newline-terminated")
	}
	var doc struct {
		Schema string         `json:"schema"`
		Bench  string         `json:"bench"`
		Data   map[string]int `json:"data"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != BenchSchema || doc.Bench != "x" || doc.Data["v"] != 7 {
		t.Fatalf("envelope = %+v", doc)
	}
}

// jsonKeys returns the sorted top-level JSON keys of v's zero value.
func jsonKeys(t *testing.T, v any) []string {
	t.Helper()
	buf, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	m := map[string]json.RawMessage{}
	if err := json.Unmarshal(buf, &m); err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TestBenchSchemaGolden pins the top-level JSON keys of every BENCH_*
// payload. A failing diff here means a published artifact changed shape:
// either revert the rename, or update the golden AND whatever dashboards
// consume the artifact.
func TestBenchSchemaGolden(t *testing.T) {
	golden := map[string]struct {
		payload any
		keys    []string
	}{
		"overload": {OverloadResult{}, []string{
			"admission_off", "admission_on", "credits", "high_water_ratio",
			"maintainer_rate", "offered_rate", "p99_ratio",
		}},
		"overload-arm": {OverloadArm{}, []string{
			"accept_p50_ms", "accept_p99_ms", "accepted", "admission",
			"applied_per_sec", "credit_high_water", "offered",
			"probe_count", "probe_p50_ms", "probe_p99_ms", "probe_sheds", "shed",
		}},
		"readpath": {ReadPathResult{}, []string{
			"maintainers", "range_read_recs_per_sec", "range_speedup", "records",
			"single_read_recs_per_sec", "tail_poll_records", "tail_poll_recs_per_sec",
			"tail_push_records", "tail_push_recs_per_sec", "tail_speedup",
		}},
		"trace": {TraceLatResult{}, []string{
			"append_stages", "appends", "coverage", "covered_ns",
			"measured_e2e_ns", "pipeline_stages", "stages", "traces",
		}},
		"scale": {scale.Result{}, []string{
			"achieved_per_sec", "completed", "converge_ms", "dcs", "duration_sec",
			"errors", "event_log", "event_log_fingerprint", "max_ms", "mean_ms",
			"note", "offered", "offered_per_sec", "p50_ms", "p999_ms", "p99_ms",
			"scenario", "seed", "sessions", "shed_client", "shed_server",
			"target_per_sec", "wan_events",
		}},
		"scale-bench": {ScaleBench{}, []string{"scenarios", "seed"}},
		"durability": {DurabilityResult{}, []string{
			"all_ack_slow_p99_ratio", "fsync_arms", "fsync_delay_ms",
			"group_p99_ratio_64", "quorum_arms", "quorum_slow_p99_ratio",
			"slow_factor",
		}},
		"durability-fsync-arm": {FsyncArm{}, []string{
			"achieved_per_sec", "appenders", "completed", "errors", "fsyncs",
			"fsyncs_per_op", "max_ms", "offered", "offered_per_sec",
			"p50_ms", "p99_ms", "policy",
		}},
		"elastic": {ElasticResult{}, []string{
			"appends_after", "appends_before", "appends_during", "autoscale_ticks",
			"boundary_lid", "duplicate_lids", "epochs", "grow_triggered",
			"lost_lids", "maintainers_after", "maintainers_before",
			"migration_done", "p99_after_ms", "p99_before_ms", "p99_bounded",
			"p99_during_ms", "records_migrated", "seal_retries", "unique_lids",
		}},
		"durability-quorum-arm": {QuorumArm{}, []string{
			"achieved_per_sec", "ack", "completed", "errors", "name",
			"offered", "p50_ms", "p99_ms", "quorum_fanout",
			"slow_durable_lag", "slow_member",
		}},
	}
	for name, g := range golden {
		if got := jsonKeys(t, g.payload); !reflect.DeepEqual(got, g.keys) {
			t.Errorf("%s payload keys changed:\n got  %v\n want %v", name, got, g.keys)
		}
	}
}
