package cluster

// Scale experiment: run entries of the internal/scale scenario matrix —
// open-loop sessions over emulated WAN links with scripted faults — and
// collect their BENCH_scale.json rows. The cluster layer adds the
// replay-contract check: the executed event log must equal the scenario's
// precomputed expansion, or the artifact's determinism claim is void.

import (
	"fmt"
	"reflect"

	"repro/internal/metrics"
	"repro/internal/scale"
)

// ScaleBench is the BENCH_scale.json payload: one row per scenario run.
type ScaleBench struct {
	Seed      uint64         `json:"seed"`
	Scenarios []scale.Result `json:"scenarios"`
}

// RunScaleScenario runs one named scenario and verifies the replay
// contract on the way out.
func RunScaleScenario(name string, opt scale.Options) (scale.Result, error) {
	sc, ok := scale.Lookup(name)
	if !ok {
		return scale.Result{}, fmt.Errorf("cluster: unknown scale scenario %q (known: %v)", name, scale.Names())
	}
	res, err := scale.Run(sc, opt)
	if err != nil {
		return res, err
	}
	want := scale.RenderScript(sc.With(opt).Expand())
	if !reflect.DeepEqual(res.EventLog, want) {
		return res, fmt.Errorf("cluster: scenario %s executed event log %v != precomputed expansion %v", name, res.EventLog, want)
	}
	if fp := scale.LogFingerprint(want); fp != res.EventLogFingerprint {
		return res, fmt.Errorf("cluster: scenario %s event-log fingerprint %s != expansion's %s", name, res.EventLogFingerprint, fp)
	}
	return res, nil
}

// RunScaleMatrix runs the named scenarios (all of them when names is
// empty) with one seed and shared options, registering each run's scale_*
// series on a fresh metrics registry.
func RunScaleMatrix(names []string, opt scale.Options) (ScaleBench, error) {
	if len(names) == 0 {
		names = scale.Names()
	}
	seed := opt.Seed
	if seed == 0 {
		seed = 1
		opt.Seed = 1
	}
	bench := ScaleBench{Seed: seed}
	for _, name := range names {
		o := opt
		o.Registry = metrics.NewRegistry()
		res, err := RunScaleScenario(name, o)
		if err != nil {
			return bench, err
		}
		if snap := o.Registry.Snapshot().Find("scale_offered_total", nil); snap == nil || uint64(snap.Value) != res.Offered {
			return bench, fmt.Errorf("cluster: scenario %s scale_offered_total metric disagrees with ledger", name)
		}
		bench.Scenarios = append(bench.Scenarios, res)
	}
	return bench, nil
}
