package cluster

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/chariots"
	"repro/internal/core"
)

func TestGeoClusterConvergence(t *testing.T) {
	g, err := NewGeoCluster(3, 2*time.Millisecond, chariots.Config{
		Maintainers:    2,
		FlushThreshold: 4,
		FlushInterval:  200 * time.Microsecond,
		SendThreshold:  4,
		SendInterval:   200 * time.Microsecond,
		TokenIdleWait:  100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Stop()

	const n = 30
	for i := 0; i < n; i++ {
		for _, dc := range g.DCs {
			dc.AppendAsync([]byte(fmt.Sprintf("%s-%d", dc.Self(), i)), nil)
		}
	}
	deadline := time.Now().Add(20 * time.Second)
	for _, dc := range g.DCs {
		for d := 0; d < 3; d++ {
			for dc.Applied().Get(core.DCID(d)) < n {
				if time.Now().After(deadline) {
					t.Fatalf("%s never converged: %v", dc.Self(), dc.Applied())
				}
				time.Sleep(time.Millisecond)
			}
		}
	}
	for _, dc := range g.DCs {
		dc.Quiesce(30*time.Millisecond, 5*time.Second)
		recs, err := dc.LogRecords()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 3*n {
			t.Errorf("%s has %d records, want %d", dc.Self(), len(recs), 3*n)
		}
		if err := chariots.CheckCausalInvariant(recs); err != nil {
			t.Error(err)
		}
	}
}

func TestGeoClusterValidation(t *testing.T) {
	if _, err := NewGeoCluster(0, 0, chariots.Config{}); err == nil {
		t.Error("0 datacenters accepted")
	}
}

func TestGeoVisibilityScalesWithDelay(t *testing.T) {
	checkShape(t, "geo visibility", func() error {
		near, err := RunGeoVisibility(2*time.Millisecond, 15)
		if err != nil {
			return err
		}
		far, err := RunGeoVisibility(25*time.Millisecond, 15)
		if err != nil {
			return err
		}
		// Visibility lag tracks the one-way delay: the far link must be
		// substantially slower than the near one, and neither can beat
		// the physical delay... minus the measurement epsilon (the
		// probe starts timing after the local ack, which the pipeline
		// may already have shipped).
		if far.Mean < 15*time.Millisecond {
			return fmt.Errorf("far visibility %v beats the 25ms one-way delay", far.Mean)
		}
		if far.Mean < 2*near.Mean {
			return fmt.Errorf("far %v not clearly above near %v", far.Mean, near.Mean)
		}
		return nil
	})
}
