// Package cluster assembles multi-process-on-one-box simulations of the
// paper's testbeds and runs the evaluation's experiments (§7): the FLStore
// scaling study (Figures 7 and 8), the Chariots pipeline bottleneck study
// (Tables 2–5, Figure 9), and the ablations DESIGN.md calls out.
//
// Each simulated "machine" carries an explicit capacity limiter standing
// in for the NIC/CPU bound of the paper's cluster nodes (see DESIGN.md
// §3.6): the claims under reproduction are *relative* — scaling slopes,
// saturation plateaus, and bottleneck hand-offs — and those shapes are
// functions of the sharing structure plus per-machine capacity, not of
// absolute hardware speed.
package cluster

import (
	"runtime"

	"repro/internal/chariots"
)

// Profile is one machine-capacity profile (records/second per machine).
// Rates are in *paper units* (the real machines' records/second); when the
// host running the simulation cannot sustain the aggregate paper-unit
// load (the paper used up to 20 real machines), Scale divides every
// simulated rate and measurements are multiplied back, preserving every
// relative shape — scaling slopes, saturation points, bottleneck
// hand-offs are ratios of machine capacities and are invariant under a
// common scale factor.
type Profile struct {
	Name string

	// Scale divides all simulated rates (≥ 1; see autoScale).
	Scale float64

	// FLStore experiments (Figures 7–8).
	//
	// MaintainerCap is a log maintainer's sustainable append rate; the
	// offered-load sweep of Figure 7 saturates against it.
	// RejectPenalty is the fraction of a record's work a saturated
	// maintainer still spends refusing an append — it produces the
	// slight throughput decline past the saturation peak.
	MaintainerCap float64
	RejectPenalty float64

	// Chariots pipeline experiments (Tables 2–5, Figure 9).
	//
	// ClientRate bounds one client (generator) machine. FilterNICRate
	// is the filter machine's shared network interface (steady-state
	// filter throughput is half of it; see chariots.Config).
	ClientRate    float64
	BatcherRate   float64
	FilterNICRate float64
	QueueRate     float64
	MaintRate     float64
	StoreRate     float64
}

// PrivateCloud models the paper's in-house cluster (Intel Xeon E5620,
// 10 GbE): a maintainer sustains ≈131K appends/s (Figure 8) and peaks
// ≈150K before degrading toward ≈120K under heavy overload (Figure 7);
// pipeline machines process ≈124–132K records/s (Table 2).
func PrivateCloud() Profile {
	return Profile{
		Name:          "private",
		Scale:         autoScale(),
		MaintainerCap: 150_000,
		RejectPenalty: 0.15,
		ClientRate:    129_000,
		BatcherRate:   126_000,
		FilterNICRate: 256_000, // effective filter throughput ≈128K
		QueueRate:     132_000,
		MaintRate:     130_000,
		StoreRate:     140_000,
	}
}

// PublicCloud models the paper's AWS c3.large machines: lower and noisier
// per-machine capacity (a maintainer achieves ≈97–119K appends/s).
func PublicCloud() Profile {
	return Profile{
		Name:          "public",
		Scale:         autoScale(),
		MaintainerCap: 135_000,
		RejectPenalty: 0.15,
		ClientRate:    120_000,
		BatcherRate:   118_000,
		FilterNICRate: 236_000,
		QueueRate:     124_000,
		MaintRate:     122_000,
		StoreRate:     130_000,
	}
}

// Unlimited removes every capacity limiter: the raw throughput of this Go
// implementation on the host machine (not a reproduction profile — used
// to measure implementation overhead).
func Unlimited() Profile { return Profile{Name: "unlimited"} }

// autoScale picks a simulation scale the host can sustain: the paper's
// largest configurations aggregate ≈2.5M records/s across what were 20
// physical machines, which a many-core host can simulate at full rate but
// a small one cannot. Rates divide by the scale; measurements multiply
// back (see Profile).
func autoScale() float64 {
	switch cpus := runtime.NumCPU(); {
	case cpus >= 16:
		return 1
	case cpus >= 8:
		return 2
	case cpus >= 4:
		return 5
	default:
		return 20
	}
}

// ScaleFactor returns the effective simulation scale divisor (≥ 1).
// Callers sizing fixed workloads (record counts) divide by it so run
// times stay comparable across hosts.
func (p Profile) ScaleFactor() float64 { return p.scale() }

// scale returns the effective divisor (≥ 1).
func (p Profile) scale() float64 {
	if p.Scale < 1 {
		return 1
	}
	return p.Scale
}

// down converts a paper-unit rate to the simulated rate.
func (p Profile) down(rate float64) float64 { return rate / p.scale() }

// stageRates converts the profile to the chariots per-stage limits, in
// simulated (scaled-down) units.
func (p Profile) stageRates() chariots.StageRates {
	return chariots.StageRates{
		Batcher:    p.down(p.BatcherRate),
		Queue:      p.down(p.QueueRate),
		Maintainer: p.down(p.MaintRate),
		Store:      p.down(p.StoreRate),
	}
}
