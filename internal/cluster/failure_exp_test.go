package cluster

import (
	"testing"

	"repro/internal/replica"
)

func TestRunFailoverSurvivesKill(t *testing.T) {
	res, err := RunFailover(FailoverOptions{
		Maintainers:     3,
		Replication:     3,
		Ack:             replica.AckMajority,
		Seed:            1,
		AppendsPerPhase: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	for ph, failed := range res.FailedAppends {
		if failed != 0 {
			t.Errorf("phase %d: %d failed appends, want 0", ph, failed)
		}
	}
	if !res.Evicted {
		t.Error("killed maintainer was never evicted")
	}
	if res.CatchUpRecords == 0 {
		t.Error("restart transferred no catch-up records")
	}
	if res.HeadFinal <= res.HeadAfterKill || res.HeadAfterKill == 0 {
		t.Errorf("head did not keep advancing: %d → %d", res.HeadAfterKill, res.HeadFinal)
	}
	if res.ReadFailures != 0 {
		t.Errorf("%d of %d reads failed", res.ReadFailures, res.ReadsChecked)
	}
}
