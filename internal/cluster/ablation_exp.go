package cluster

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sequencer"
	"repro/internal/workload"
)

// SequencerOptions configures the CORFU-baseline ablation: the same
// storage substrate as FLStore but with pre-assigned positions handed out
// by a central, capacity-limited sequencer.
type SequencerOptions struct {
	// SequencerCap bounds the sequencer machine (reservations/second).
	SequencerCap float64
	// UnitCap bounds each storage unit (writes/second).
	UnitCap float64
	// Units is the stripe width.
	Units int
	// Clients drive the client-driven protocol, each offering
	// TargetPerClient appends/second.
	Clients         int
	TargetPerClient float64
	Duration        time.Duration
	// Scale divides simulated rates, as in Profile.Scale.
	Scale float64
}

// SequencerResult is one measured point of the baseline.
type SequencerResult struct {
	Units         int
	AchievedTotal float64
	// SequencerRejects is the rate of reservations refused at
	// saturation — the bottleneck made visible.
	SequencerRejects float64
}

// RunSequencer measures the baseline's append throughput.
func RunSequencer(opts SequencerOptions) (SequencerResult, error) {
	if opts.Duration <= 0 {
		opts.Duration = time.Second
	}
	scale := opts.Scale
	if scale < 1 {
		scale = 1
	}
	seq := sequencer.NewSequencer(newSimLimiter(opts.SequencerCap / scale))
	units := make([]*sequencer.StorageUnit, opts.Units)
	for i := range units {
		units[i] = sequencer.NewStorageUnit(nil, newSimLimiter(opts.UnitCap/scale))
	}
	log, err := sequencer.NewLog(seq, units)
	if err != nil {
		return SequencerResult{}, err
	}

	var accepted metrics.Counter
	var wg sync.WaitGroup
	watch := metrics.NewStopwatch()
	for c := 0; c < opts.Clients; c++ {
		g := &workload.OpenLoopGen{TargetPerSec: opts.TargetPerClient / scale, BatchSize: 64}
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.Run(func(recs []*core.Record) int {
				ok := 0
				for _, r := range recs {
					if _, err := log.Append(r); err == nil {
						ok++
					}
				}
				accepted.Add(uint64(ok))
				return ok
			}, opts.Duration)
		}()
	}
	wg.Wait()
	watch.Stop()
	elapsed := watch.Elapsed().Seconds()
	return SequencerResult{
		Units:            opts.Units,
		AchievedTotal:    float64(accepted.Value()) / elapsed * scale,
		SequencerRejects: float64(seq.Rejected.Value()) / elapsed * scale,
	}, nil
}

// AblationPoint pairs the baseline and FLStore at the same scale.
type AblationPoint struct {
	Machines  int
	Sequencer float64 // baseline achieved appends/s
	FLStore   float64 // post-assignment achieved appends/s
}

// RunSequencerVsFLStore sweeps storage-machine counts, driving both
// designs with the same per-machine profile and offered load — the
// motivating claim of §1/§5.2: pre-assignment plateaus at the sequencer's
// capacity, post-assignment scales with machines.
func RunSequencerVsFLStore(profile Profile, machineCounts []int, targetPerClient float64, duration time.Duration) ([]AblationPoint, error) {
	var out []AblationPoint
	for _, n := range machineCounts {
		seqRes, err := RunSequencer(SequencerOptions{
			// The sequencer runs on the same class of machine as a
			// maintainer: its reservation capacity equals one
			// machine's record-processing capacity.
			SequencerCap:    profile.MaintainerCap,
			UnitCap:         profile.MaintainerCap,
			Units:           n,
			Clients:         n,
			TargetPerClient: targetPerClient,
			Duration:        duration,
			Scale:           profile.scale(),
		})
		if err != nil {
			return nil, err
		}
		flRes, err := RunFLStore(FLStoreOptions{
			Profile:         profile,
			Maintainers:     n,
			TargetPerClient: targetPerClient,
			Duration:        duration,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, AblationPoint{
			Machines:  n,
			Sequencer: seqRes.AchievedTotal,
			FLStore:   flRes.AchievedTotal,
		})
	}
	return out, nil
}
