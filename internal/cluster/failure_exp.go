package cluster

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/faultinject"
	"repro/internal/flstore"
	"repro/internal/replica"
	"repro/internal/rpc"
)

// FailoverOptions configures the replicated-FLStore failure experiment: a
// three-phase run (healthy → one maintainer severed → restarted and caught
// up) that measures what the client sees through the failure. Faults come
// from a seeded schedule, so a run is reproducible by (Seed, phase sizes).
type FailoverOptions struct {
	Maintainers     int
	Replication     int
	Ack             replica.AckPolicy
	Seed            uint64
	AppendsPerPhase int
	// KillIndex is the maintainer severed in phase two (default 1).
	KillIndex int
}

// FailoverResult is one failure-experiment run.
type FailoverResult struct {
	// Appends and FailedAppends count client appends per phase
	// (healthy, killed, rejoined).
	Appends       [3]int
	FailedAppends [3]int
	// Evicted reports whether the session evicted the killed maintainer.
	Evicted bool
	// CatchUpRecords is how many records the restarted maintainer pulled.
	CatchUpRecords int
	// HeadAfterKill and HeadFinal are the exact head of the log at the end
	// of phases two and three — the paper's HL must keep advancing through
	// the failure.
	HeadAfterKill, HeadFinal uint64
	// ReadsChecked / ReadFailures cover every position up to HeadFinal read
	// back through the client (failover path included).
	ReadsChecked, ReadFailures int
	// AppendP99 is the client-observed p99 append latency over all phases.
	AppendP99 time.Duration
}

// RunFailover executes one kill/restart scenario against an in-process
// replicated deployment wired over RPC with every link behind the fault
// controller.
func RunFailover(opts FailoverOptions) (FailoverResult, error) {
	var res FailoverResult
	n, r := opts.Maintainers, opts.Replication
	if n < 2 || r < 2 || r > n {
		return res, fmt.Errorf("cluster: failover needs 2 <= R <= N, got N=%d R=%d", n, r)
	}
	if opts.AppendsPerPhase <= 0 {
		opts.AppendsPerPhase = 300
	}
	kill := opts.KillIndex
	if kill <= 0 || kill >= n {
		kill = 1
	}
	p := flstore.Placement{NumMaintainers: n, BatchSize: 8}
	ctl := faultinject.New(faultinject.Options{Seed: opts.Seed})
	ms := make([]*flstore.Maintainer, n)
	srvs := make([]*rpc.Server, n)
	for i := 0; i < n; i++ {
		m, err := flstore.NewMaintainer(flstore.MaintainerConfig{Index: i, Placement: p, Replication: r})
		if err != nil {
			return res, err
		}
		srv := rpc.NewServer()
		flstore.ServeMaintainer(srv, m)
		ms[i], srvs[i] = m, srv
	}
	wire := func(i int) flstore.MaintainerAPI {
		return flstore.NewMaintainerClient(ctl.Wrap(fmt.Sprintf("c->m%d", i), rpc.NewLocalClient(srvs[i])))
	}
	apis := make([]flstore.MaintainerAPI, n)
	for i := range apis {
		apis[i] = wire(i)
	}
	client, err := flstore.NewReplicatedDirectClient(p, apis, nil, r, opts.Ack)
	if err != nil {
		return res, err
	}

	var latencies []time.Duration
	phase := func(idx int) {
		for i := 0; i < opts.AppendsPerPhase; i++ {
			start := time.Now()
			_, err := client.Append([]byte(fmt.Sprintf("p%d-%d", idx, i)), nil)
			latencies = append(latencies, time.Since(start))
			res.Appends[idx]++
			if err != nil {
				res.FailedAppends[idx]++
			}
		}
	}

	phase(0)
	ctl.Sever(fmt.Sprintf("c->m%d", kill))
	phase(1)
	res.Evicted = client.Session().Health().State(kill) == replica.Evicted
	if res.HeadAfterKill, err = client.HeadExact(); err != nil {
		return res, fmt.Errorf("cluster: head after kill: %w", err)
	}

	// Restart: heal the link and run the rejoin sequence (catch-up, then
	// readmission). The maintainer's in-memory state survived — only its
	// links were cut — so catch-up transfers exactly the missed records.
	ctl.Heal(fmt.Sprintf("c->m%d", kill))
	if err := client.SetMaintainer(kill, wire(kill)); err != nil {
		return res, err
	}
	if res.CatchUpRecords, err = client.Session().Rejoin(kill, 0); err != nil {
		return res, fmt.Errorf("cluster: rejoin: %w", err)
	}
	phase(2)
	if res.HeadFinal, err = client.HeadExact(); err != nil {
		return res, fmt.Errorf("cluster: final head: %w", err)
	}

	for lid := uint64(1); lid <= res.HeadFinal; lid++ {
		res.ReadsChecked++
		if _, err := client.ReadLId(lid); err != nil {
			res.ReadFailures++
		}
	}
	if len(latencies) > 0 {
		sorted := append([]time.Duration(nil), latencies...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		res.AppendP99 = sorted[(len(sorted)*99)/100]
	}
	return res, nil
}
