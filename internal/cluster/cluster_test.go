package cluster

import (
	"fmt"
	"testing"
	"time"
)

// The experiments here measure throughput over sub-second wall-clock
// windows, which on small or virtualized CI hosts can be perturbed by
// scheduler noise (a single 50 ms deschedule skews a 300 ms window by
// ~15%). Shape assertions therefore run under checkShape: a condition
// must hold on some attempt out of three, which filters noise while still
// failing deterministically when the shape itself is wrong. The
// full-length runs live in cmd/repro and EXPERIMENTS.md.
const testDur = 300 * time.Millisecond

func checkShape(t *testing.T, name string, attempt func() error) {
	t.Helper()
	var err error
	for i := 0; i < 3; i++ {
		if err = attempt(); err == nil {
			return
		}
	}
	t.Errorf("%s (3 attempts): %v", name, err)
}

func TestFLStoreSinglePointBelowCapacity(t *testing.T) {
	checkShape(t, "below-capacity point", func() error {
		res, err := RunFLStore(FLStoreOptions{
			Profile:         PrivateCloud(),
			Maintainers:     1,
			TargetPerClient: 50_000,
			Duration:        testDur,
		})
		if err != nil {
			return err
		}
		// Below capacity, achieved ≈ offered.
		if res.AchievedTotal < 35_000 || res.AchievedTotal > 65_000 {
			return fmt.Errorf("achieved %.0f/s at 50K target, want ≈50K", res.AchievedTotal)
		}
		return nil
	})
}

func TestFigure7Shape(t *testing.T) {
	checkShape(t, "figure 7 load curve", func() error {
		points, err := RunFigure7(PrivateCloud(), []float64{50_000, 150_000, 300_000}, testDur)
		if err != nil {
			return err
		}
		low, atCap, over := points[0], points[1], points[2]
		// Rising region: achieved tracks the target below capacity.
		if low.Achieved < 0.7*low.Target {
			return fmt.Errorf("under-capacity point achieved %.0f of %.0f target", low.Achieved, low.Target)
		}
		// The observed peak sits near the machine capacity (150K).
		peak := low.Achieved
		for _, p := range points[1:] {
			if p.Achieved > peak {
				peak = p.Achieved
			}
		}
		if peak < 115_000 || peak > 170_000 {
			return fmt.Errorf("peak achieved %.0f, want ≈150K", peak)
		}
		if atCap.Achieved < 100_000 {
			return fmt.Errorf("at-capacity point collapsed to %.0f", atCap.Achieved)
		}
		// Deep overload declines below the peak (reject work) but stays
		// well above zero — the paper's ≈120K plateau-with-droop.
		if over.Achieved >= peak {
			return fmt.Errorf("no decline past saturation: peak %.0f, overload %.0f", peak, over.Achieved)
		}
		if over.Achieved < 90_000 {
			return fmt.Errorf("overload throughput collapsed to %.0f", over.Achieved)
		}
		return nil
	})
}

func TestFigure8NearLinearScaling(t *testing.T) {
	checkShape(t, "figure 8 scaling", func() error {
		series, err := RunFigure8([]int{1, 4}, 700*time.Millisecond)
		if err != nil {
			return err
		}
		if len(series) != 3 {
			return fmt.Errorf("got %d series, want 3", len(series))
		}
		for _, s := range series {
			eff := ScalingEfficiency(s)
			if eff < 0.8 || eff > 1.2 {
				return fmt.Errorf("%s: scaling efficiency %.2f, want ≈1.0 (n=1: %.0f, n=4: %.0f)",
					s.Label, eff, s.Points[0].AchievedTotal, s.Points[1].AchievedTotal)
			}
			// Cumulative throughput must actually grow.
			if s.Points[1].AchievedTotal < 2*s.Points[0].AchievedTotal {
				return fmt.Errorf("%s: 4 maintainers only %.0f vs %.0f for 1",
					s.Label, s.Points[1].AchievedTotal, s.Points[0].AchievedTotal)
			}
		}
		return nil
	})
}

func TestPipelineTable2Shape(t *testing.T) {
	checkShape(t, "table 2 balance", func() error {
		res, err := RunPipeline(PipelineOptions{
			Profile: PrivateCloud(),
			Clients: 1, Batchers: 1, Filters: 1, Queues: 1, Maintainers: 1,
			Duration: 500 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		// Every stage within the same ballpark (paper: 124–132K).
		for stage, rate := range res.StageTotals() {
			if rate < 95_000 || rate > 160_000 {
				return fmt.Errorf("stage %s at %.0f/s, want ≈110-130K", stage, rate)
			}
		}
		if res.Applied == 0 {
			return fmt.Errorf("nothing applied")
		}
		return nil
	})
}

func TestPipelineTable3ClientsHalve(t *testing.T) {
	checkShape(t, "table 3 client halving", func() error {
		res, err := RunPipeline(PipelineOptions{
			Profile: PrivateCloud(),
			Clients: 2, Batchers: 1, Filters: 1, Queues: 1, Maintainers: 1,
			Duration: 500 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		totals := res.StageTotals()
		// Two clients share the single-batcher bottleneck: each ≈64K,
		// sum ≈ batcher capacity.
		if totals["Client"] < 95_000 || totals["Client"] > 150_000 {
			return fmt.Errorf("client total %.0f, want ≈126K (bottleneck-shared)", totals["Client"])
		}
		for _, row := range res.Rows {
			if stageOf(row.Name) == "Client" && row.PerSec > 95_000 {
				return fmt.Errorf("client at %.0f/s did not feel backpressure", row.PerSec)
			}
		}
		return nil
	})
}

func TestPipelineTable5Doubles(t *testing.T) {
	checkShape(t, "table 5 doubling", func() error {
		single, err := RunPipeline(PipelineOptions{
			Profile: PrivateCloud(),
			Clients: 1, Batchers: 1, Filters: 1, Queues: 1, Maintainers: 1,
			Duration: 400 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		double, err := RunPipeline(PipelineOptions{
			Profile: PrivateCloud(),
			Clients: 2, Batchers: 2, Filters: 2, Queues: 2, Maintainers: 2,
			Duration: 400 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		ratio := double.StageTotals()["Client"] / single.StageTotals()["Client"]
		if ratio < 1.6 || ratio > 2.4 {
			return fmt.Errorf("doubling every stage scaled clients %.2fx, want ≈2x", ratio)
		}
		return nil
	})
}

func TestPipelineFigure9Timeseries(t *testing.T) {
	checkShape(t, "figure 9 drain tail", func() error {
		profile := PrivateCloud()
		res, err := RunPipeline(PipelineOptions{
			Profile: profile,
			Clients: 2, Batchers: 2, Filters: 1, Queues: 1, Maintainers: 1,
			Records:      uint64(60_000 / profile.ScaleFactor()),
			SampleWindow: 25 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		want := uint64(60_000 / profile.ScaleFactor())
		if res.Applied < want-512 {
			return fmt.Errorf("drained only %d of ≈%d records", res.Applied, want)
		}
		// Clients finish before the queue does (the drain tail).
		lastActive := func(name string) time.Duration {
			var last time.Duration
			for _, s := range res.Samples[name] {
				if s.Count > 0 {
					last = s.Elapsed
				}
			}
			return last
		}
		clientEnd := lastActive("Client 1")
		queueEnd := lastActive("Queue")
		if clientEnd == 0 || queueEnd == 0 {
			return fmt.Errorf("missing samples: client=%v queue=%v", clientEnd, queueEnd)
		}
		if queueEnd <= clientEnd {
			return fmt.Errorf("queue finished at %v, not after clients at %v", queueEnd, clientEnd)
		}
		return nil
	})
}

func TestSequencerBaselinePlateaus(t *testing.T) {
	checkShape(t, "sequencer plateau", func() error {
		points, err := RunSequencerVsFLStore(PrivateCloud(), []int{1, 4}, 200_000, testDur)
		if err != nil {
			return err
		}
		p1, p4 := points[0], points[1]
		flRatio := p4.FLStore / p1.FLStore
		seqRatio := p4.Sequencer / p1.Sequencer
		if flRatio < 3 {
			return fmt.Errorf("FLStore scaled only %.2fx over 4 machines", flRatio)
		}
		if seqRatio > 1.5 {
			return fmt.Errorf("sequencer baseline scaled %.2fx despite central bottleneck", seqRatio)
		}
		if p4.FLStore < 2*p4.Sequencer {
			return fmt.Errorf("at 4 machines FLStore %.0f vs sequencer %.0f: expected a clear win", p4.FLStore, p4.Sequencer)
		}
		return nil
	})
}

func TestRunPipelineValidation(t *testing.T) {
	if _, err := RunPipeline(PipelineOptions{Clients: 0, Duration: time.Second}); err == nil {
		t.Error("0 clients accepted")
	}
	if _, err := RunPipeline(PipelineOptions{Clients: 1}); err == nil {
		t.Error("neither Duration nor Records rejected")
	}
	if _, err := RunPipeline(PipelineOptions{Clients: 1, Duration: time.Second, Records: 5}); err == nil {
		t.Error("both Duration and Records accepted")
	}
}

func TestProfiles(t *testing.T) {
	for _, p := range []Profile{PrivateCloud(), PublicCloud()} {
		if p.MaintainerCap <= 0 || p.ClientRate <= 0 || p.FilterNICRate <= 0 {
			t.Errorf("%s profile has zero capacities", p.Name)
		}
		if p.ScaleFactor() < 1 {
			t.Errorf("%s scale factor %v < 1", p.Name, p.ScaleFactor())
		}
	}
	u := Unlimited()
	if u.MaintainerCap != 0 {
		t.Error("unlimited profile has limits")
	}
	if u.ScaleFactor() != 1 {
		t.Errorf("unlimited scale = %v", u.ScaleFactor())
	}
}
