package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/flstore"
	"repro/internal/replica"
	"repro/internal/rpc"
)

// ReadScalingOptions configures the replica read-scaling sweep: the same
// hot range read under growing replica-group sizes. Every point runs over
// real loopback TCP with one shared connection per maintainer, so each
// member models a fixed serving capacity (the server handles one
// connection's requests in order); the sweep measures how much aggregate
// read throughput the invalidation protocol unlocks by letting any valid
// replica answer locally instead of funneling every read to the owner.
type ReadScalingOptions struct {
	Maintainers int
	BatchSize   uint64
	// Records is the preloaded log size per point.
	Records    int
	RecordSize int
	// Readers is the number of concurrent reader goroutines per point.
	Readers int
	// Budget caps the measured wall clock per point.
	Budget time.Duration
	// Replicas are the R values swept, ascending (default 1, 2, 3).
	Replicas []int
	// ServiceDelay is each member's per-read service time (default
	// 100µs): the serving loop holds the connection for this long per
	// request, modeling a member whose reads cost real work (storage,
	// WAN hop) rather than a loopback cache hit. Sleeping instead of
	// spinning keeps the model honest on small machines — per-member
	// capacity is 1/ServiceDelay regardless of host core count, so the
	// sweep measures protocol-level read spreading, not scheduler noise.
	ServiceDelay time.Duration
}

// pacedMember fronts a maintainer with a fixed per-read service time. It
// embeds the maintainer, so ServeMaintainer's type assertions see the full
// replica/range-read/invalidation surface; only Read — the swept call — is
// paced. Reads are served inline in connection order, so the delay bounds
// one connection's read throughput exactly like a busy member would.
type pacedMember struct {
	*flstore.Maintainer
	delay time.Duration
}

func (p *pacedMember) Read(lid uint64) (*core.Record, error) {
	if p.delay > 0 {
		time.Sleep(p.delay)
	}
	return p.Maintainer.Read(lid)
}

// RunReadScaling measures aggregate single-record read throughput against
// one hot range for each configured replica-group size.
func RunReadScaling(opts ReadScalingOptions) ([]ReadScalingPoint, error) {
	if opts.Maintainers <= 0 {
		opts.Maintainers = 3
	}
	if opts.BatchSize == 0 {
		opts.BatchSize = 8
	}
	if opts.Records <= 0 {
		opts.Records = 3_000
	}
	if opts.RecordSize <= 0 {
		opts.RecordSize = 128
	}
	if opts.Readers <= 0 {
		opts.Readers = 16
	}
	if opts.Budget <= 0 {
		opts.Budget = time.Second
	}
	if opts.ServiceDelay == 0 {
		opts.ServiceDelay = 100 * time.Microsecond
	}
	if len(opts.Replicas) == 0 {
		opts.Replicas = []int{1, 2, 3}
	}
	points := make([]ReadScalingPoint, 0, len(opts.Replicas))
	for _, r := range opts.Replicas {
		if r < 1 || r > opts.Maintainers {
			return nil, fmt.Errorf("cluster: replication %d out of range [1,%d]", r, opts.Maintainers)
		}
		pt, err := runReadScalingPoint(opts, r)
		if err != nil {
			return nil, fmt.Errorf("cluster: read scaling R=%d: %w", r, err)
		}
		points = append(points, pt)
	}
	return points, nil
}

func runReadScalingPoint(opts ReadScalingOptions, r int) (ReadScalingPoint, error) {
	pt := ReadScalingPoint{Replication: r}
	p := flstore.Placement{NumMaintainers: opts.Maintainers, BatchSize: opts.BatchSize}

	// Real TCP stack, one shared pipelined connection per maintainer: the
	// server serves a connection's requests in order, so per-member
	// throughput is bounded no matter how many client goroutines pile on —
	// the capacity model that makes replica spreading measurable. (The
	// in-process LocalClient dispatches on the caller's goroutine and would
	// show no scaling at all.)
	servers := make([]*rpc.Server, opts.Maintainers)
	conns := make([]*rpc.TCPClient, opts.Maintainers)
	defer func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
		for _, s := range servers {
			if s != nil {
				s.Close()
			}
		}
	}()
	apis := make([]flstore.MaintainerAPI, opts.Maintainers)
	for i := range apis {
		m, err := flstore.NewMaintainer(flstore.MaintainerConfig{Index: i, Placement: p, Replication: r})
		if err != nil {
			return pt, err
		}
		srv := rpc.NewServer()
		flstore.ServeMaintainer(srv, &pacedMember{Maintainer: m, delay: opts.ServiceDelay})
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return pt, err
		}
		servers[i] = srv
		conn, err := rpc.Dial(addr.String())
		if err != nil {
			return pt, err
		}
		conns[i] = conn
		apis[i] = flstore.NewMaintainerClient(conn)
	}

	// AckAll preloading: every group member holds every payload before the
	// measurement starts, so reads never block on an in-flight
	// invalidation and the sweep isolates read-path capacity.
	client, err := flstore.NewReplicatedDirectClientWith(p, apis, nil, r, replica.AckAll,
		flstore.WithReadPolicy(replica.SpreadReads()))
	if err != nil {
		return pt, err
	}
	body := make([]byte, opts.RecordSize)
	for appended := 0; appended < opts.Records; appended++ {
		if _, err := client.Append(body, nil); err != nil {
			return pt, err
		}
	}

	// The hot set is range 0's positions: with R=1 only maintainer 0 can
	// answer them; with R=3 all three members serve them from local store.
	head, err := client.HeadExact()
	if err != nil {
		return pt, err
	}
	hot := make([]uint64, 0, int(head)/opts.Maintainers+1)
	for lid := uint64(1); lid <= head; lid++ {
		if p.Owner(lid) == 0 {
			hot = append(hot, lid)
		}
	}
	if len(hot) == 0 {
		return pt, fmt.Errorf("no records landed in range 0 (head %d)", head)
	}
	pt.Records = len(hot)

	var (
		next  atomic.Uint64 // round-robin cursor over the hot set
		reads atomic.Uint64
		stop  atomic.Bool
		fail  atomic.Pointer[error]
	)
	var wg sync.WaitGroup
	for w := 0; w < opts.Readers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				lid := hot[next.Add(1)%uint64(len(hot))]
				if _, err := client.ReadLId(lid); err != nil {
					err := fmt.Errorf("read LId %d: %w", lid, err)
					fail.CompareAndSwap(nil, &err)
					return
				}
				reads.Add(1)
			}
		}()
	}
	start := time.Now()
	time.Sleep(opts.Budget)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	if ep := fail.Load(); ep != nil {
		return pt, *ep
	}
	pt.ReadsPerSec = float64(reads.Load()) / elapsed.Seconds()
	return pt, nil
}
