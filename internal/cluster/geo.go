package cluster

import (
	"fmt"
	"time"

	"repro/internal/chariots"
	"repro/internal/core"
	"repro/internal/metrics"
)

// GeoCluster is a set of Chariots datacenters wired all-to-all through
// latency links — the multi-datacenter deployments of the examples and of
// the visibility experiment, packaged.
type GeoCluster struct {
	DCs   []*chariots.Datacenter
	links []*chariots.LatencyLink
}

// NewGeoCluster builds and starts n datacenters with the given one-way
// inter-datacenter delay. cfg customizes the per-DC configuration (Self
// and NumDCs are overwritten).
func NewGeoCluster(n int, oneWay time.Duration, cfg chariots.Config) (*GeoCluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: need >= 1 datacenter")
	}
	g := &GeoCluster{}
	for i := 0; i < n; i++ {
		c := cfg
		c.Self = core.DCID(i)
		c.NumDCs = n
		dc, err := chariots.New(c)
		if err != nil {
			g.Stop()
			return nil, err
		}
		dc.Start()
		g.DCs = append(g.DCs, dc)
	}
	for i, from := range g.DCs {
		for j, to := range g.DCs {
			if i == j {
				continue
			}
			rxs := to.Receivers()
			wrapped := make([]chariots.ReceiverAPI, len(rxs))
			for k, rx := range rxs {
				if oneWay > 0 {
					l := chariots.NewLatencyLink(rx, oneWay)
					g.links = append(g.links, l)
					wrapped[k] = l
				} else {
					wrapped[k] = rx
				}
			}
			from.ConnectTo(core.DCID(j), wrapped)
		}
	}
	return g, nil
}

// Stop halts every datacenter and link.
func (g *GeoCluster) Stop() {
	for _, l := range g.links {
		l.Close()
	}
	for _, dc := range g.DCs {
		dc.Stop()
	}
}

// VisibilityResult is one point of the geo-visibility experiment.
type VisibilityResult struct {
	OneWay time.Duration
	// Mean/P99 time from a local append's acknowledgement to the record
	// being applied at the remote datacenter.
	Mean time.Duration
	P99  time.Duration
}

// RunGeoVisibility measures causal replication lag: how long after a
// record is ordered at its home datacenter it becomes visible at a peer,
// as a function of the one-way WAN delay. (An extension experiment — the
// paper motivates geo-replication but does not quantify visibility; the
// expected shape is lag ≈ one-way delay + pipeline time.)
func RunGeoVisibility(oneWay time.Duration, appends int) (VisibilityResult, error) {
	g, err := NewGeoCluster(2, oneWay, chariots.Config{
		Maintainers:    2,
		FlushThreshold: 1,
		FlushInterval:  200 * time.Microsecond,
		SendThreshold:  1,
		SendInterval:   200 * time.Microsecond,
		TokenIdleWait:  100 * time.Microsecond,
	})
	if err != nil {
		return VisibilityResult{}, err
	}
	defer g.Stop()

	hist := metrics.NewHistogram(0)
	a, b := g.DCs[0], g.DCs[1]
	for i := 0; i < appends; i++ {
		ack, err := a.Append([]byte(fmt.Sprintf("v%d", i)), nil)
		if err != nil {
			return VisibilityResult{}, err
		}
		start := time.Now()
		if !b.WaitForTOId(0, ack.TOId, 30*time.Second) {
			return VisibilityResult{}, fmt.Errorf("cluster: record %d never became visible", i)
		}
		hist.Observe(time.Since(start))
	}
	return VisibilityResult{
		OneWay: oneWay,
		Mean:   hist.Mean(),
		P99:    hist.Quantile(0.99),
	}, nil
}
