package cluster

// Autoscaler closes the elasticity loop: it watches the deployment's
// metrics registry — the same series operators scrape — and, when
// saturation signals persist, fires the grow hooks (an epoch switchover
// through the flstore Orchestrator for the log tier, queue/filter stage
// additions for the Chariots pipeline). Detection is deliberately plain:
// a signal must breach its threshold for K consecutive ticks before a
// hook fires, and each hook is one-shot per breach episode (latched until
// the signal clears), so a slow switchover is never re-triggered by the
// pressure it is busy relieving.

import (
	"context"
	"time"

	"repro/internal/metrics"
)

// AutoscaleSignals are the saturation measurements of one tick, derived
// from a registry snapshot.
type AutoscaleSignals struct {
	// BacklogRatio is the worst maintainer's ingress backlog as a
	// fraction of its admission budget (flstore_admission_backlog_records
	// over flstore_admission_backlog_budget_records).
	BacklogRatio float64 `json:"backlog_ratio"`
	// AppendP99 is the worst maintainer's p99 append service time.
	AppendP99 time.Duration `json:"append_p99_ns"`
	// CreditRatio is the worst pipeline credit high-water mark as a
	// fraction of its capacity (chariots_credit_high_water_records over
	// chariots_credit_capacity_records).
	CreditRatio float64 `json:"credit_ratio"`
	// DurableLag is the spread between the head of the log and the lowest
	// positive durable watermark, in records (0 when no watermark is
	// exported — unreplicated or pre-durability deployments).
	DurableLag float64 `json:"durable_lag"`
	// RejectsDelta is how many appends the log tier turned away since the
	// previous tick (flstore_rejected_total, summed), 0 on the first tick.
	// Sustained rejects are the crispest grow signal: the deployment is
	// refusing offered load its capacity model cannot admit.
	RejectsDelta float64 `json:"rejects_delta"`
}

// AutoscaleDecision is the outcome of one Observe tick.
type AutoscaleDecision struct {
	Signals AutoscaleSignals `json:"signals"`
	// LogPressure/PipePressure report whether the tick breached the log
	// tier's / pipeline's thresholds.
	LogPressure  bool `json:"log_pressure"`
	PipePressure bool `json:"pipe_pressure"`
	// GrewLog/GrewPipeline report that this tick fired the hook.
	GrewLog      bool `json:"grew_log"`
	GrewPipeline bool `json:"grew_pipeline"`
	// Err carries a hook failure (the hook re-arms so a later tick can
	// retry).
	Err string `json:"err,omitempty"`
}

// AutoscaleConfig wires an Autoscaler.
type AutoscaleConfig struct {
	// Snapshot samples the deployment's registry (required for Run;
	// Observe can be driven with explicit snapshots instead).
	Snapshot func() metrics.Snapshot

	// Thresholds; zero values take the defaults in parentheses.
	BacklogRatioHigh float64       // log tier: backlog/budget (0.5)
	AppendP99High    time.Duration // log tier: append p99 (10ms)
	DurableLagHigh   float64       // log tier: head − durable watermark, records (50000)
	RejectsHigh      float64       // log tier: rejected appends per tick (1)
	CreditRatioHigh  float64       // pipeline: high-water/capacity (0.8)

	// Ticks is how many consecutive breaching ticks arm a hook (3).
	Ticks int

	// GrowLog and GrowPipeline are the one-shot-per-episode grow hooks;
	// nil disables the corresponding dimension.
	GrowLog      func() error
	GrowPipeline func() error
}

// Autoscaler is a deterministic stepper (Observe) with an optional
// wall-clock loop (Run) on top.
type Autoscaler struct {
	cfg        AutoscaleConfig
	logStreak  int
	pipeStreak int
	logLatch   bool // hook fired; re-arms when pressure clears
	pipeLatch  bool
	// rejects is the previous tick's flstore_rejected_total sum; seeded
	// on the first tick so a warm registry doesn't read as pressure.
	rejects       float64
	rejectsSeeded bool
}

// NewAutoscaler returns an autoscaler with defaults applied.
func NewAutoscaler(cfg AutoscaleConfig) *Autoscaler {
	if cfg.BacklogRatioHigh <= 0 {
		cfg.BacklogRatioHigh = 0.5
	}
	if cfg.AppendP99High <= 0 {
		cfg.AppendP99High = 10 * time.Millisecond
	}
	if cfg.DurableLagHigh <= 0 {
		cfg.DurableLagHigh = 50000
	}
	if cfg.RejectsHigh <= 0 {
		cfg.RejectsHigh = 1
	}
	if cfg.CreditRatioHigh <= 0 {
		cfg.CreditRatioHigh = 0.8
	}
	if cfg.Ticks <= 0 {
		cfg.Ticks = 3
	}
	return &Autoscaler{cfg: cfg}
}

// maxRatio returns the largest num/den over series of the num family,
// pairing each with the den series carrying identical labels.
func maxRatio(sn metrics.Snapshot, num, den string) float64 {
	best := 0.0
	for i := range sn.Series {
		s := &sn.Series[i]
		if s.Name != num {
			continue
		}
		d := sn.Find(den, s.Labels)
		if d == nil || d.Value <= 0 {
			continue
		}
		if r := s.Value / d.Value; r > best {
			best = r
		}
	}
	return best
}

// SignalsFrom derives the saturation signals from a registry snapshot.
func SignalsFrom(sn metrics.Snapshot) AutoscaleSignals {
	var sig AutoscaleSignals
	sig.BacklogRatio = maxRatio(sn, "flstore_admission_backlog_records", "flstore_admission_backlog_budget_records")
	sig.CreditRatio = maxRatio(sn, "chariots_credit_high_water_records", "chariots_credit_capacity_records")
	var p99 float64
	var head float64
	lowDur := -1.0
	for i := range sn.Series {
		s := &sn.Series[i]
		switch s.Name {
		case "flstore_append_seconds":
			if q := s.Quantile(0.99); q > p99 {
				p99 = q
			}
		case "flstore_head_lid":
			if s.Value > head {
				head = s.Value
			}
		case "replica_durable_watermark":
			// A zero watermark means the durability tier hasn't reported
			// yet; counting it would read as a full-head lag.
			if s.Value > 0 && (lowDur < 0 || s.Value < lowDur) {
				lowDur = s.Value
			}
		}
	}
	sig.AppendP99 = time.Duration(p99 * float64(time.Second))
	if lowDur >= 0 && head > lowDur {
		sig.DurableLag = head - lowDur
	}
	return sig
}

// Observe runs one tick against the given snapshot and returns the
// decision. Exported as the deterministic test surface; Run drives it on
// a ticker.
func (a *Autoscaler) Observe(sn metrics.Snapshot) AutoscaleDecision {
	dec := AutoscaleDecision{Signals: SignalsFrom(sn)}
	var rejects float64
	for i := range sn.Series {
		if sn.Series[i].Name == "flstore_rejected_total" {
			rejects += sn.Series[i].Value
		}
	}
	if a.rejectsSeeded {
		dec.Signals.RejectsDelta = rejects - a.rejects
	}
	a.rejects, a.rejectsSeeded = rejects, true
	sig := dec.Signals

	dec.LogPressure = sig.BacklogRatio >= a.cfg.BacklogRatioHigh ||
		sig.AppendP99 >= a.cfg.AppendP99High ||
		sig.DurableLag >= a.cfg.DurableLagHigh ||
		sig.RejectsDelta >= a.cfg.RejectsHigh
	dec.PipePressure = sig.CreditRatio >= a.cfg.CreditRatioHigh

	if dec.LogPressure {
		a.logStreak++
	} else {
		a.logStreak = 0
		a.logLatch = false
	}
	if dec.PipePressure {
		a.pipeStreak++
	} else {
		a.pipeStreak = 0
		a.pipeLatch = false
	}

	if a.cfg.GrowLog != nil && !a.logLatch && a.logStreak >= a.cfg.Ticks {
		a.logLatch = true
		if err := a.cfg.GrowLog(); err != nil {
			dec.Err = err.Error()
			a.logLatch = false // re-arm: the grow didn't happen
		} else {
			dec.GrewLog = true
		}
	}
	if a.cfg.GrowPipeline != nil && !a.pipeLatch && a.pipeStreak >= a.cfg.Ticks {
		a.pipeLatch = true
		if err := a.cfg.GrowPipeline(); err != nil {
			if dec.Err == "" {
				dec.Err = err.Error()
			}
			a.pipeLatch = false
		} else {
			dec.GrewPipeline = true
		}
	}
	return dec
}

// Run ticks the autoscaler every interval until ctx is done, invoking
// onDecision (when non-nil) after each tick.
func (a *Autoscaler) Run(ctx context.Context, interval time.Duration, onDecision func(AutoscaleDecision)) {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			dec := a.Observe(a.cfg.Snapshot())
			if onDecision != nil {
				onDecision(dec)
			}
		}
	}
}
