package cluster

// The elasticity experiment (§6.3 end-to-end): a loopback-TCP FLStore
// deployment serves an open-loop append load; mid-run the offered rate
// doubles past the old member set's admission capacity, the autoscaler
// sees sustained rejects and drives an epoch switchover through the
// Orchestrator (seal → drain → pad → flip → background migration), and
// the load finishes against the doubled member set. The run verifies the
// log survived the flip intact — every acknowledged LId unique and
// readable, the old epoch dense to the boundary, migration complete —
// and that append p99 after the flip returns to the pre-pressure band.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/flstore"
	"repro/internal/metrics"
	"repro/internal/ratelimit"
	"repro/internal/rpc"
	"repro/internal/scale"
)

// ElasticOptions configures the elasticity experiment.
type ElasticOptions struct {
	// MaintainersBefore/After are the placement widths on either side of
	// the switchover (2 → 4).
	MaintainersBefore int
	MaintainersAfter  int
	BatchSize         uint64
	// PerMaintainerRate is each maintainer's admission capacity in
	// records/sec (the limiter modeling machine capacity).
	PerMaintainerRate float64
	// BaseRate is phase A's aggregate offered rate; phases B and C offer
	// 2×BaseRate. Pick BaseRate < Before×PerMaintainerRate < 2×BaseRate
	// < After×PerMaintainerRate so only the doubled load saturates the
	// old set.
	BaseRate float64
	// PhaseA/PhaseB/PhaseC are the three phase durations: steady state,
	// doubled load (the autoscaler fires in here), and post-flip steady
	// state.
	PhaseA, PhaseB, PhaseC time.Duration
	// Sessions is the concurrent client-session count per phase.
	Sessions int
	// RecordSize is the append payload size in bytes.
	RecordSize int
	// AutoscaleTick/AutoscaleTicks configure the autoscaler loop.
	AutoscaleTick  time.Duration
	AutoscaleTicks int
	Seed           uint64
}

// ElasticResult is the measured outcome.
type ElasticResult struct {
	MaintainersBefore int    `json:"maintainers_before"`
	MaintainersAfter  int    `json:"maintainers_after"`
	BoundaryLId       uint64 `json:"boundary_lid"`
	Epochs            int    `json:"epochs"`
	GrowTriggered     bool   `json:"grow_triggered"`
	AutoscaleTicks    int    `json:"autoscale_ticks"`
	MigrationDone     bool   `json:"migration_done"`
	RecordsMigrated   uint64 `json:"records_migrated"`
	// SealRetries counts appends that hit the sealed old epoch and
	// succeeded after a controller re-poll (§5.1 session refresh).
	SealRetries uint64 `json:"seal_retries"`
	// Per-phase completions and CO-safe p99s (intended-start latency).
	AppendsBefore uint64  `json:"appends_before"`
	AppendsDuring uint64  `json:"appends_during"`
	AppendsAfter  uint64  `json:"appends_after"`
	P99BeforeMs   float64 `json:"p99_before_ms"`
	P99DuringMs   float64 `json:"p99_during_ms"`
	P99AfterMs    float64 `json:"p99_after_ms"`
	// Integrity over every acknowledged append across all phases.
	UniqueLIds    int `json:"unique_lids"`
	DuplicateLIds int `json:"duplicate_lids"`
	LostLIds      int `json:"lost_lids"`
	// P99Bounded is the acceptance predicate: post-flip p99 within
	// max(50ms, 10× pre-flip p99).
	P99Bounded bool `json:"p99_bounded"`
}

// elasticStack is the running deployment the experiment drives.
type elasticStack struct {
	reg      *metrics.Registry
	ctrl     *flstore.Controller
	orch     *flstore.Orchestrator
	ctrlAddr string
	servers  []*rpc.Server
	conns    []*rpc.TCPClient
	gossips  []*flstore.Gossiper
}

func (st *elasticStack) close() {
	for _, g := range st.gossips {
		g.Stop()
	}
	for _, c := range st.conns {
		c.Close()
	}
	for _, s := range st.servers {
		s.Close()
	}
}

// startMembers builds, serves, and gossips one epoch's maintainers.
func (st *elasticStack) startMembers(p flstore.Placement, firstLId uint64, rate float64, epoch string) (flstore.MemberSet, error) {
	ms := flstore.MemberSet{
		Maintainers: make([]*flstore.Maintainer, p.NumMaintainers),
		Addrs:       make([]string, p.NumMaintainers),
	}
	for i := 0; i < p.NumMaintainers; i++ {
		m, err := flstore.NewMaintainer(flstore.MaintainerConfig{
			Index:     i,
			Placement: p,
			FirstLId: firstLId,
			// A small burst keeps the capacity model crisp: offering more
			// than the aggregate rate must produce rejects within a fraction
			// of a second, not after draining a deep token bucket.
			Limiter: ratelimit.New(rate, 32),
		})
		if err != nil {
			return ms, err
		}
		m.EnableMetrics(st.reg, metrics.L("epoch", epoch))
		srv := rpc.NewServer()
		flstore.ServeMaintainer(srv, m)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return ms, err
		}
		st.servers = append(st.servers, srv)
		ms.Maintainers[i] = m
		ms.Addrs[i] = addr.String()
	}
	for i, m := range ms.Maintainers {
		peers := make([]flstore.MaintainerAPI, p.NumMaintainers)
		for j, pm := range ms.Maintainers {
			if j != i {
				peers[j] = pm
			}
		}
		g := flstore.NewGossiper(m, peers, time.Millisecond)
		g.Start()
		st.gossips = append(st.gossips, g)
	}
	return ms, nil
}

// newElasticStack stands the deployment up: old members, controller with
// admin surface, and an orchestrator whose grow factory starts the new
// member set on demand.
func newElasticStack(opts ElasticOptions) (*elasticStack, error) {
	st := &elasticStack{reg: metrics.NewRegistry()}
	pOld := flstore.Placement{NumMaintainers: opts.MaintainersBefore, BatchSize: opts.BatchSize}
	old, err := st.startMembers(pOld, 1, opts.PerMaintainerRate, "1")
	if err != nil {
		st.close()
		return nil, err
	}
	st.ctrl, err = flstore.NewController(flstore.Config{Placement: pOld, MaintainerAddrs: old.Addrs})
	if err != nil {
		st.close()
		return nil, err
	}
	st.orch, err = flstore.NewOrchestrator(flstore.OrchestratorConfig{
		Controller: st.ctrl,
		Current:    old,
		Grow: func(p flstore.Placement, firstLId uint64) (flstore.MemberSet, error) {
			return st.startMembers(p, firstLId, opts.PerMaintainerRate, "2")
		},
	})
	if err != nil {
		st.close()
		return nil, err
	}
	ctrlSrv := rpc.NewServer()
	flstore.ServeController(ctrlSrv, st.ctrl)
	flstore.ServeStats(ctrlSrv, st.reg)
	flstore.ServeAdmin(ctrlSrv, st.orch)
	addr, err := ctrlSrv.Listen("127.0.0.1:0")
	if err != nil {
		st.close()
		return nil, err
	}
	st.servers = append(st.servers, ctrlSrv)
	st.ctrlAddr = addr.String()
	return st, nil
}

// dialCtrl opens a fresh controller connection.
func (st *elasticStack) dialCtrl() (*rpc.TCPClient, error) {
	c, err := rpc.Dial(st.ctrlAddr)
	if err != nil {
		return nil, err
	}
	st.conns = append(st.conns, c)
	return c, nil
}

// elasticSessions is a bank of per-session clients that re-poll the
// controller when their epoch is sealed under them — the §5.1 "after
// problems" session refresh.
type elasticSessions struct {
	ctrlAddr string
	mu       sync.Mutex
	clients  []*flstore.Client
	conns    []*rpc.TCPClient

	lidMu       sync.Mutex
	lids        map[uint64]int
	dups        int
	sealRetries uint64
}

func newElasticSessions(ctrlAddr string, n int) (*elasticSessions, error) {
	es := &elasticSessions{
		ctrlAddr: ctrlAddr,
		clients:  make([]*flstore.Client, n),
		lids:     make(map[uint64]int),
	}
	for i := range es.clients {
		if err := es.refresh(i); err != nil {
			es.close()
			return nil, err
		}
	}
	return es, nil
}

func (es *elasticSessions) refresh(i int) error {
	conn, err := rpc.Dial(es.ctrlAddr)
	if err != nil {
		return err
	}
	c, err := flstore.NewClient(flstore.NewControllerClient(conn))
	if err != nil {
		conn.Close()
		return err
	}
	es.mu.Lock()
	es.clients[i] = c
	es.conns = append(es.conns, conn)
	es.mu.Unlock()
	return nil
}

func (es *elasticSessions) client(i int) *flstore.Client {
	es.mu.Lock()
	defer es.mu.Unlock()
	return es.clients[i]
}

func (es *elasticSessions) close() {
	es.mu.Lock()
	defer es.mu.Unlock()
	for _, c := range es.conns {
		if c != nil {
			c.Close()
		}
	}
}

// op issues one append for session i, refreshing the session on a sealed
// epoch before surfacing the (retryable) error to the engine.
func (es *elasticSessions) op(i int, body []byte) error {
	lid, err := es.client(i).Append(body, nil)
	if err != nil {
		if errors.Is(err, flstore.ErrEpochSealed) {
			es.lidMu.Lock()
			es.sealRetries++
			es.lidMu.Unlock()
			if rerr := es.refresh(i); rerr != nil {
				return rerr
			}
		}
		return err
	}
	es.lidMu.Lock()
	es.lids[lid]++
	if es.lids[lid] > 1 {
		es.dups++
	}
	es.lidMu.Unlock()
	return nil
}

// runPhase drives one open-loop phase and returns its stats.
func runPhase(es *elasticSessions, opts ElasticOptions, rate float64, d time.Duration, seed uint64) scale.Stats {
	body := make([]byte, opts.RecordSize)
	eng := scale.NewEngine(scale.Config{
		Sessions:     opts.Sessions,
		TargetPerSec: rate,
		Duration:     d,
		Seed:         seed,
		RetryFor:     2 * time.Second,
		Op: func(session int, intended time.Time) error {
			return es.op(session, body)
		},
		Retry: func(err error) (time.Duration, bool) {
			if errors.Is(err, flstore.ErrEpochSealed) {
				// The session was refreshed inside op; go straight back.
				return time.Millisecond, true
			}
			if flstore.IsRetryable(err) {
				hint := flstore.RetryAfter(err)
				if hint <= 0 {
					hint = time.Millisecond
				}
				return hint, true
			}
			return 0, false
		},
	})
	return eng.Run()
}

// RunElastic executes the elasticity experiment.
func RunElastic(opts ElasticOptions) (ElasticResult, error) {
	if opts.MaintainersBefore <= 0 {
		opts.MaintainersBefore = 2
	}
	if opts.MaintainersAfter <= 0 {
		opts.MaintainersAfter = 2 * opts.MaintainersBefore
	}
	if opts.BatchSize == 0 {
		opts.BatchSize = 4
	}
	if opts.PerMaintainerRate <= 0 {
		opts.PerMaintainerRate = 1200
	}
	if opts.BaseRate <= 0 {
		opts.BaseRate = 1600
	}
	if opts.PhaseA <= 0 {
		opts.PhaseA = 1500 * time.Millisecond
	}
	if opts.PhaseB <= 0 {
		opts.PhaseB = 2500 * time.Millisecond
	}
	if opts.PhaseC <= 0 {
		opts.PhaseC = 1500 * time.Millisecond
	}
	if opts.Sessions <= 0 {
		opts.Sessions = 8
	}
	if opts.RecordSize <= 0 {
		opts.RecordSize = 128
	}
	if opts.AutoscaleTick <= 0 {
		opts.AutoscaleTick = 100 * time.Millisecond
	}
	if opts.AutoscaleTicks <= 0 {
		opts.AutoscaleTicks = 2
	}
	if opts.Seed == 0 {
		opts.Seed = 42
	}
	res := ElasticResult{
		MaintainersBefore: opts.MaintainersBefore,
		MaintainersAfter:  opts.MaintainersAfter,
	}

	st, err := newElasticStack(opts)
	if err != nil {
		return res, err
	}
	defer st.close()

	// The autoscaler watches the registry and fires the switchover once
	// rejects persist. It runs for the whole experiment; phase A must not
	// trigger it.
	pNew := flstore.Placement{NumMaintainers: opts.MaintainersAfter, BatchSize: opts.BatchSize}
	var decMu sync.Mutex
	ticks, grew := 0, false
	as := NewAutoscaler(AutoscaleConfig{
		Snapshot: st.reg.Snapshot,
		Ticks:    opts.AutoscaleTicks,
		GrowLog: func() error {
			_, gerr := st.orch.Grow(pNew)
			return gerr
		},
	})
	asCtx, asCancel := context.WithCancel(context.Background())
	asDone := make(chan struct{})
	go func() {
		defer close(asDone)
		as.Run(asCtx, opts.AutoscaleTick, func(d AutoscaleDecision) {
			decMu.Lock()
			ticks++
			if d.GrewLog {
				grew = true
			}
			decMu.Unlock()
		})
	}()

	es, err := newElasticSessions(st.ctrlAddr, opts.Sessions)
	if err != nil {
		asCancel()
		<-asDone
		return res, err
	}
	defer es.close()

	statsA := runPhase(es, opts, opts.BaseRate, opts.PhaseA, opts.Seed)
	statsB := runPhase(es, opts, 2*opts.BaseRate, opts.PhaseB, opts.Seed+1)
	statsC := runPhase(es, opts, 2*opts.BaseRate, opts.PhaseC, opts.Seed+2)
	asCancel()
	<-asDone

	decMu.Lock()
	res.AutoscaleTicks, res.GrowTriggered = ticks, grew
	decMu.Unlock()
	if !res.GrowTriggered {
		return res, errors.New("cluster: autoscaler never triggered the epoch flip")
	}
	if err := st.orch.WaitMigration(); err != nil {
		return res, err
	}

	// Inspect the epoch journal through the typed admin surface — the
	// same path logctl epochs takes.
	conn, err := st.dialCtrl()
	if err != nil {
		return res, err
	}
	admin := flstore.NewAdmin(conn)
	eps, err := admin.Epochs(context.Background())
	if err != nil {
		return res, err
	}
	res.Epochs = len(eps)
	if len(eps) != 2 {
		return res, fmt.Errorf("cluster: expected 2 epochs after flip, journal has %d", len(eps))
	}
	res.BoundaryLId = eps[1].FirstLId
	res.MigrationDone = eps[0].MigrationDone
	res.RecordsMigrated = eps[0].RecordsStreamed
	if !res.MigrationDone {
		return res, errors.New("cluster: migration not complete after WaitMigration")
	}
	if want := res.BoundaryLId - 1; res.RecordsMigrated != want {
		return res, fmt.Errorf("cluster: migrated %d records, want the whole old epoch (%d)",
			res.RecordsMigrated, want)
	}

	// Integrity: every acknowledged LId unique and readable through the
	// epoch-routed read path (old-epoch positions hit the old members,
	// new-epoch positions the new).
	es.lidMu.Lock()
	res.UniqueLIds = len(es.lids)
	res.DuplicateLIds = es.dups
	res.SealRetries = es.sealRetries
	lids := make([]uint64, 0, len(es.lids))
	for lid := range es.lids {
		lids = append(lids, lid)
	}
	es.lidMu.Unlock()
	reader := es.client(0)
	for _, lid := range lids {
		if _, rerr := reader.ReadLId(lid); rerr != nil {
			res.LostLIds++
		}
	}
	if res.DuplicateLIds > 0 || res.LostLIds > 0 {
		return res, fmt.Errorf("cluster: log integrity broken across flip: %d duplicate, %d lost",
			res.DuplicateLIds, res.LostLIds)
	}

	res.AppendsBefore = statsA.Completed
	res.AppendsDuring = statsB.Completed
	res.AppendsAfter = statsC.Completed
	res.P99BeforeMs = float64(statsA.Hist.Quantile(0.99)) / float64(time.Millisecond)
	res.P99DuringMs = float64(statsB.Hist.Quantile(0.99)) / float64(time.Millisecond)
	res.P99AfterMs = float64(statsC.Hist.Quantile(0.99)) / float64(time.Millisecond)
	bound := 10 * res.P99BeforeMs
	if bound < 50 {
		bound = 50
	}
	res.P99Bounded = res.P99AfterMs <= bound
	if !res.P99Bounded {
		return res, fmt.Errorf("cluster: post-flip p99 %.1fms exceeds bound %.1fms (pre-flip %.1fms)",
			res.P99AfterMs, bound, res.P99BeforeMs)
	}
	return res, nil
}
