package cluster

import "testing"

// TestTraceSmoke is the trace smoke test (`make trace-smoke`): a reduced
// tracelat run whose joined span trees must cover the full record
// lifecycle — client → pipeline → maintainer → replica ack — and whose
// per-stage budget must attribute at least 90% of the latency the client
// measured end to end.
func TestTraceSmoke(t *testing.T) {
	res, err := RunTraceLat(TraceLatOptions{Maintainers: 3, Replication: 2, Appends: 60})
	if err != nil {
		t.Fatal(err)
	}
	if res.Traces == 0 {
		t.Fatal("no append traces recorded")
	}
	if res.Coverage < 0.90 {
		t.Errorf("span coverage = %.3f of measured e2e latency, want >= 0.90\nstages: %+v",
			res.Coverage, res.Stages)
	}
	// FLStore leg: client entry, RPC wire hop, maintainer assignment and
	// persistence, replica fan-out ack.
	if want := []string{"client.append", "rpc.call", "maint.assign", "maint.store", "replica.ack"}; !HasStages(res.AppendStages, want...) {
		t.Errorf("append trace stages = %v, want superset of %v", res.AppendStages, want)
	}
	// Chariots leg: datacenter entry plus every pipeline stage down to the
	// embedded maintainer's ingest/store.
	if want := []string{"dc.append", "pipe.batch", "pipe.filter", "pipe.queue", "maint.ingest", "maint.store"}; !HasStages(res.PipelineStages, want...) {
		t.Errorf("pipeline trace stages = %v, want superset of %v", res.PipelineStages, want)
	}
	// The budget's stage rows must be populated and internally consistent.
	var sum int64
	for _, row := range res.Stages {
		sum += row.TotalNs
	}
	if sum != res.CoveredNs {
		t.Errorf("stage rows sum to %d ns, covered = %d ns", sum, res.CoveredNs)
	}
}
