package cluster

import (
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/flstore"
	"repro/internal/replica"
	"repro/internal/scale"
	"repro/internal/storage"
)

// DurabilityOptions configures the durability-tier experiment: the
// group-commit fsync-collapse sweep (phase A) and the quorum-ack
// degraded-disk comparison (phase B). Disk cost is injected through a
// seeded faultinject controller — one named link per store's fsync path —
// so the experiment measures the durability protocols, not the host
// filesystem, and a run is reproducible by seed.
type DurabilityOptions struct {
	// Appenders are the concurrency points of the fsync sweep
	// (default 1, 8, 64).
	Appenders []int
	// PerAppenderPerSec is each session's offered arrival rate
	// (default 25/s).
	PerAppenderPerSec float64
	// Duration is the arrival-schedule horizon per arm (default 2s).
	Duration time.Duration
	// FsyncDelay is the injected cost of one healthy fsync (default 1ms).
	FsyncDelay time.Duration
	// SlowFactor multiplies FsyncDelay on the degraded member's disk in
	// phase B (default 20).
	SlowFactor int
	// GroupWindow is the group-commit window (0 = storage default).
	GroupWindow time.Duration
	// Seed drives the arrival schedules and the fault schedule.
	Seed uint64
}

func (o *DurabilityOptions) defaults() {
	if len(o.Appenders) == 0 {
		o.Appenders = []int{1, 8, 64}
	}
	if o.PerAppenderPerSec <= 0 {
		o.PerAppenderPerSec = 25
	}
	if o.Duration <= 0 {
		o.Duration = 2 * time.Second
	}
	if o.FsyncDelay <= 0 {
		o.FsyncDelay = time.Millisecond
	}
	if o.SlowFactor <= 0 {
		o.SlowFactor = 20
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// FsyncArm is one point of the phase-A sweep: a fixed appender count
// driven open-loop against one segment store under one fsync policy.
type FsyncArm struct {
	Appenders      int     `json:"appenders"`
	Policy         string  `json:"policy"`
	Offered        uint64  `json:"offered"`
	Completed      uint64  `json:"completed"`
	Errors         uint64  `json:"errors"`
	OfferedPerSec  float64 `json:"offered_per_sec"`
	AchievedPerSec float64 `json:"achieved_per_sec"`
	P50Ms          float64 `json:"p50_ms"`
	P99Ms          float64 `json:"p99_ms"`
	MaxMs          float64 `json:"max_ms"`
	Fsyncs         uint64  `json:"fsyncs"`
	FsyncsPerOp    float64 `json:"fsyncs_per_op"`
}

// QuorumArm is one phase-B cluster run: a 3-member replica group with a
// given ack/fan-out mode and optionally one member's disk slowed.
type QuorumArm struct {
	Name           string  `json:"name"`
	Ack            string  `json:"ack"`
	QuorumFanout   bool    `json:"quorum_fanout"`
	SlowMember     int     `json:"slow_member"` // -1 = all disks healthy
	Offered        uint64  `json:"offered"`
	Completed      uint64  `json:"completed"`
	Errors         uint64  `json:"errors"`
	AchievedPerSec float64 `json:"achieved_per_sec"`
	P50Ms          float64 `json:"p50_ms"`
	P99Ms          float64 `json:"p99_ms"`
	// SlowDurableLag is how many of the range's positions the slow (or
	// last) member's local durable watermark trails the primary's at the
	// end of the run — the detached stragglers' catch-up debt.
	SlowDurableLag uint64 `json:"slow_durable_lag"`
}

// DurabilityResult is the BENCH_durability.json payload.
type DurabilityResult struct {
	FsyncArms []FsyncArm `json:"fsync_arms"`
	// GroupP99Ratio64 is group-commit p99 / per-batch-fsync p99 at the
	// largest appender count (the <= 0.5 acceptance bar).
	GroupP99Ratio64 float64     `json:"group_p99_ratio_64"`
	QuorumArms      []QuorumArm `json:"quorum_arms"`
	// QuorumSlowP99Ratio is slow-disk quorum p99 / healthy quorum p99
	// (the <= 2x acceptance bar).
	QuorumSlowP99Ratio float64 `json:"quorum_slow_p99_ratio"`
	// AllAckSlowP99Ratio is slow-disk wait-all p99 / healthy quorum p99 —
	// the degradation quorum fan-out avoids.
	AllAckSlowP99Ratio float64 `json:"all_ack_slow_p99_ratio"`
	FsyncDelayMs       float64 `json:"fsync_delay_ms"`
	SlowFactor         int     `json:"slow_factor"`
}

// diskHook returns an fsync hook that charges the named link's injected
// delay on every physical fsync — the experiment's model of disk cost,
// drawn from the controller's seeded per-link stream.
func diskHook(ctl *faultinject.Controller, link string) func() {
	return func() {
		if o := ctl.Next(link); o.Action == faultinject.ActionDelay && o.Delay > 0 {
			time.Sleep(o.Delay)
		}
	}
}

// runFsyncArm drives one phase-A point: appenders concurrent open-loop
// sessions against a fresh segment store under the given policy.
func runFsyncArm(opts DurabilityOptions, appenders int, policy storage.SyncPolicy, name string) (FsyncArm, error) {
	arm := FsyncArm{Appenders: appenders, Policy: name}
	dir, err := os.MkdirTemp("", "durability-fsync-*")
	if err != nil {
		return arm, err
	}
	defer os.RemoveAll(dir)
	ctl := faultinject.New(faultinject.Options{Seed: opts.Seed})
	ctl.SetLink("disk", faultinject.LinkOptions{DelayP: 1, Delay: opts.FsyncDelay})
	st, err := storage.OpenSegmentStore(dir, storage.SegmentStoreOptions{
		Sync:        policy,
		GroupWindow: opts.GroupWindow,
		FsyncHook:   diskHook(ctl, "disk"),
	})
	if err != nil {
		return arm, err
	}
	var nextLId atomic.Uint64
	eng := scale.NewEngine(scale.Config{
		Sessions:     appenders,
		TargetPerSec: float64(appenders) * opts.PerAppenderPerSec,
		Duration:     opts.Duration,
		Seed:         opts.Seed,
		Op: func(session int, intended time.Time) error {
			lid := nextLId.Add(1)
			return st.AppendBatch([]*core.Record{{LId: lid, TOId: lid, Body: []byte("d")}})
		},
	})
	stats := eng.Run()
	if err := st.Close(); err != nil {
		return arm, err
	}
	if got := stats.Completed + stats.ShedServer + stats.ShedClient + stats.Errors; got != stats.Offered {
		return arm, fmt.Errorf("cluster: durability ledger violated: offered %d != accounted %d", stats.Offered, got)
	}
	arm.Offered = stats.Offered
	arm.Completed = stats.Completed
	arm.Errors = stats.Errors
	arm.OfferedPerSec = float64(appenders) * opts.PerAppenderPerSec
	if stats.Elapsed > 0 {
		arm.AchievedPerSec = float64(stats.Completed) / stats.Elapsed.Seconds()
	}
	arm.P50Ms = float64(stats.Hist.Quantile(0.50)) / float64(time.Millisecond)
	arm.P99Ms = float64(stats.Hist.Quantile(0.99)) / float64(time.Millisecond)
	arm.MaxMs = float64(stats.Hist.Max()) / float64(time.Millisecond)
	arm.Fsyncs = st.FsyncCount()
	if stats.Completed > 0 {
		arm.FsyncsPerOp = float64(arm.Fsyncs) / float64(stats.Completed)
	}
	return arm, nil
}

// runQuorumArm drives one phase-B cluster: a 3-maintainer R=3 group over
// real segment stores, the append stream pinned to range 0 so the
// optionally-degraded member 2 is always a fan-out follower, never the
// acting primary.
func runQuorumArm(opts DurabilityOptions, name string, ack replica.AckPolicy, quorumFanout bool, slowMember int) (QuorumArm, error) {
	arm := QuorumArm{Name: name, Ack: ack.String(), QuorumFanout: quorumFanout, SlowMember: slowMember}
	const n, r = 3, 3
	dir, err := os.MkdirTemp("", "durability-quorum-*")
	if err != nil {
		return arm, err
	}
	defer os.RemoveAll(dir)
	ctl := faultinject.New(faultinject.Options{Seed: opts.Seed})
	p := flstore.Placement{NumMaintainers: n, BatchSize: 8}
	ms := make([]*flstore.Maintainer, n)
	for i := 0; i < n; i++ {
		link := fmt.Sprintf("m%d.disk", i)
		delay := opts.FsyncDelay
		if i == slowMember {
			delay = opts.FsyncDelay * time.Duration(opts.SlowFactor)
		}
		ctl.SetLink(link, faultinject.LinkOptions{DelayP: 1, Delay: delay})
		st, err := storage.OpenSegmentStore(fmt.Sprintf("%s/m%d", dir, i), storage.SegmentStoreOptions{
			Sync:        storage.SyncGroupCommit,
			GroupWindow: opts.GroupWindow,
			FsyncHook:   diskHook(ctl, link),
		})
		if err != nil {
			return arm, err
		}
		m, err := flstore.NewMaintainer(flstore.MaintainerConfig{
			Index: i, Placement: p, Replication: r, Store: st,
		})
		if err != nil {
			return arm, err
		}
		ms[i] = m
	}
	members := make([]replica.Member, n)
	for i, m := range ms {
		members[i] = m
	}
	sess, err := replica.NewSession(members, replica.SessionConfig{
		Layout:       replica.Layout{N: n, R: r},
		Ack:          ack,
		Owner:        func(lid uint64) int { return p.Owner(lid) },
		QuorumFanout: quorumFanout,
	})
	if err != nil {
		return arm, err
	}
	// A handful of concurrent sessions: enough for group commit to
	// coalesce, few enough that the wait-all arm's serialized slow disk
	// stays inside the schedule horizon.
	sessions := 8
	eng := scale.NewEngine(scale.Config{
		Sessions:     sessions,
		TargetPerSec: float64(sessions) * opts.PerAppenderPerSec,
		Duration:     opts.Duration,
		Seed:         opts.Seed,
		Op: func(session int, intended time.Time) error {
			_, err := sess.AppendRange(0, []*core.Record{{Body: []byte("q")}})
			return err
		},
	})
	stats := eng.Run()
	if got := stats.Completed + stats.ShedServer + stats.ShedClient + stats.Errors; got != stats.Offered {
		return arm, fmt.Errorf("cluster: durability ledger violated: offered %d != accounted %d", stats.Offered, got)
	}
	arm.Offered = stats.Offered
	arm.Completed = stats.Completed
	arm.Errors = stats.Errors
	if stats.Elapsed > 0 {
		arm.AchievedPerSec = float64(stats.Completed) / stats.Elapsed.Seconds()
	}
	arm.P50Ms = float64(stats.Hist.Quantile(0.50)) / float64(time.Millisecond)
	arm.P99Ms = float64(stats.Hist.Quantile(0.99)) / float64(time.Millisecond)
	// Detached stragglers: give the slow member a moment to drain, then
	// measure how far its durable watermark still trails the primary's.
	lagMember := slowMember
	if lagMember < 0 {
		lagMember = n - 1
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		primaryWM, _ := ms[0].DurableWatermark(0)
		memberWM, _ := ms[lagMember].DurableWatermark(0)
		if memberWM >= primaryWM || time.Now().After(deadline) {
			if primaryWM > memberWM && memberWM > 0 {
				arm.SlowDurableLag = p.SlotOf(primaryWM) - p.SlotOf(memberWM)
			}
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, m := range ms {
		if err := m.Store().Close(); err != nil {
			return arm, err
		}
	}
	return arm, nil
}

// RunDurability executes both phases and returns the artifact payload.
func RunDurability(opts DurabilityOptions) (*DurabilityResult, error) {
	opts.defaults()
	res := &DurabilityResult{
		FsyncDelayMs: float64(opts.FsyncDelay) / float64(time.Millisecond),
		SlowFactor:   opts.SlowFactor,
	}
	// Phase A: fsync collapse. Per-batch fsync is the baseline; group
	// commit must beat its tail at high concurrency by coalescing the
	// burst into shared windows.
	var eachP99, groupP99 float64
	maxAppenders := 0
	for _, a := range opts.Appenders {
		each, err := runFsyncArm(opts, a, storage.SyncEachBatch, "each")
		if err != nil {
			return nil, err
		}
		group, err := runFsyncArm(opts, a, storage.SyncGroupCommit, "group")
		if err != nil {
			return nil, err
		}
		res.FsyncArms = append(res.FsyncArms, each, group)
		if a >= maxAppenders {
			maxAppenders = a
			eachP99, groupP99 = each.P99Ms, group.P99Ms
		}
	}
	if eachP99 > 0 {
		res.GroupP99Ratio64 = groupP99 / eachP99
	}
	// Phase B: quorum acks vs a degraded follower disk.
	healthy, err := runQuorumArm(opts, "healthy-quorum", replica.AckMajority, true, -1)
	if err != nil {
		return nil, err
	}
	slowAll, err := runQuorumArm(opts, "slow-all-ack", replica.AckAll, false, 2)
	if err != nil {
		return nil, err
	}
	slowQuorum, err := runQuorumArm(opts, "slow-quorum", replica.AckMajority, true, 2)
	if err != nil {
		return nil, err
	}
	res.QuorumArms = []QuorumArm{healthy, slowAll, slowQuorum}
	if healthy.P99Ms > 0 {
		res.QuorumSlowP99Ratio = slowQuorum.P99Ms / healthy.P99Ms
		res.AllAckSlowP99Ratio = slowAll.P99Ms / healthy.P99Ms
	}
	return res, nil
}
