// Package vclock provides the causality-tracking primitives of Chariots:
// per-datacenter version vectors and the n×n Awareness Table (ATable) of
// §6.1, inspired by the Replicated Dictionary of Wuu & Bernstein.
package vclock

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/core"
)

// Vector maps each datacenter (by dense DCID index) to the highest TOId of
// that datacenter's records covered by the vector. A Vector with value v[d]
// = t asserts knowledge of every record of datacenter d with TOId ≤ t.
type Vector []uint64

// NewVector returns a zero vector over n datacenters.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector { return append(Vector(nil), v...) }

// Get returns the entry for dc, tolerating out-of-range ids as 0.
func (v Vector) Get(dc core.DCID) uint64 {
	if int(dc) >= len(v) {
		return 0
	}
	return v[dc]
}

// Set updates the entry for dc. It panics if dc is out of range, which
// indicates a configuration error (vectors are sized at cluster creation).
func (v Vector) Set(dc core.DCID, toid uint64) { v[dc] = toid }

// Advance raises the entry for dc to toid if toid is larger, and reports
// whether the vector changed.
func (v Vector) Advance(dc core.DCID, toid uint64) bool {
	if int(dc) >= len(v) || v[dc] >= toid {
		return false
	}
	v[dc] = toid
	return true
}

// Merge raises every entry of v to at least the corresponding entry of o.
func (v Vector) Merge(o Vector) {
	for i := range v {
		if i < len(o) && o[i] > v[i] {
			v[i] = o[i]
		}
	}
}

// Covers reports whether v dominates o in every component: v is at least
// as knowledgeable as o.
func (v Vector) Covers(o Vector) bool {
	for i := range o {
		if o[i] > v.Get(core.DCID(i)) {
			return false
		}
	}
	return true
}

// CoversDeps reports whether every dependency in deps is satisfied by v.
func (v Vector) CoversDeps(deps []core.Dep) bool {
	for _, d := range deps {
		if v.Get(d.DC) < d.TOId {
			return false
		}
	}
	return true
}

// Deps converts the vector to an explicit dependency list, omitting zero
// entries. Clients stamp this onto records at append time.
func (v Vector) Deps() []core.Dep {
	var deps []core.Dep
	for i, t := range v {
		if t > 0 {
			deps = append(deps, core.Dep{DC: core.DCID(i), TOId: t})
		}
	}
	return deps
}

// String renders the vector as "[3 0 7]".
func (v Vector) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, t := range v {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", t)
	}
	b.WriteByte(']')
	return b.String()
}

// AppendBinary appends a fixed-width encoding of v to dst.
func (v Vector) AppendBinary(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(v)))
	for _, t := range v {
		dst = binary.LittleEndian.AppendUint64(dst, t)
	}
	return dst
}

// DecodeVector decodes a vector from the front of buf, returning the
// vector and bytes consumed.
func DecodeVector(buf []byte) (Vector, int, error) {
	if len(buf) < 2 {
		return nil, 0, errors.New("vclock: short buffer")
	}
	n := int(binary.LittleEndian.Uint16(buf))
	if len(buf) < 2+8*n {
		return nil, 0, errors.New("vclock: short buffer")
	}
	v := NewVector(n)
	for i := 0; i < n; i++ {
		v[i] = binary.LittleEndian.Uint64(buf[2+8*i:])
	}
	return v, 2 + 8*n, nil
}

// ATable is the Awareness Table of §6.1: an n×n matrix of TOIds where, at
// datacenter A, entry [B][C] is A's certainty about B's knowledge of C's
// records — "A is certain B knows all records hosted at C up to TOId
// T[B][C]". Row [self] is the datacenter's own knowledge vector.
//
// ATable is safe for concurrent use.
type ATable struct {
	mu   sync.RWMutex
	self core.DCID
	t    []Vector // row per datacenter
}

// NewATable returns a zeroed table over n datacenters, owned by self.
func NewATable(self core.DCID, n int) *ATable {
	t := make([]Vector, n)
	for i := range t {
		t[i] = NewVector(n)
	}
	return &ATable{self: self, t: t}
}

// Self returns the owning datacenter.
func (a *ATable) Self() core.DCID { return a.self }

// N returns the number of datacenters the table tracks.
func (a *ATable) N() int { return len(a.t) }

// Get returns entry [row][col].
func (a *ATable) Get(row, col core.DCID) uint64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.t[row].Get(col)
}

// Advance raises entry [row][col] to toid if larger.
func (a *ATable) Advance(row, col core.DCID, toid uint64) {
	a.mu.Lock()
	a.t[row].Advance(col, toid)
	a.mu.Unlock()
}

// RecordApplied notes that the owning datacenter has applied record (host,
// toid) to its log: it advances the self row.
func (a *ATable) RecordApplied(host core.DCID, toid uint64) {
	a.Advance(a.self, host, toid)
}

// SelfVector returns a copy of the owning datacenter's knowledge row.
func (a *ATable) SelfVector() Vector {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.t[a.self].Clone()
}

// Row returns a copy of a row.
func (a *ATable) Row(row core.DCID) Vector {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.t[row].Clone()
}

// Snapshot returns a deep copy of the whole table, used when shipping the
// table alongside a log delta (§6.1 "Propagate").
func (a *ATable) Snapshot() []Vector {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]Vector, len(a.t))
	for i, row := range a.t {
		out[i] = row.Clone()
	}
	return out
}

// MergeSnapshot folds a table snapshot received from another datacenter
// into this one: every entry becomes the max of the two. The self row is
// merged too — a peer may legitimately know more about what we were sent
// than our last local update (e.g. after recovery) — but local application
// remains the primary driver of the self row via RecordApplied.
func (a *ATable) MergeSnapshot(snap []Vector) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i := range a.t {
		if i < len(snap) {
			a.t[i].Merge(snap[i])
		}
	}
}

// KnownBy reports A's certainty that datacenter dc knows record (host,
// toid): used to skip already-replicated records when propagating.
func (a *ATable) KnownBy(dc, host core.DCID, toid uint64) bool {
	return a.Get(dc, host) >= toid
}

// GCSafe reports whether record (host, toid) is known by every datacenter
// and may therefore be garbage collected (§6.1): ∀j, T[j][host] ≥ toid.
func (a *ATable) GCSafe(host core.DCID, toid uint64) bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	for _, row := range a.t {
		if row.Get(host) < toid {
			return false
		}
	}
	return true
}

// GCFrontier returns, for each host datacenter, the highest TOId known by
// every datacenter — the prefix of each host's records that is safe to
// garbage collect everywhere.
func (a *ATable) GCFrontier() Vector {
	a.mu.RLock()
	defer a.mu.RUnlock()
	n := len(a.t)
	f := NewVector(n)
	for host := 0; host < n; host++ {
		min := a.t[0].Get(core.DCID(host))
		for _, row := range a.t[1:] {
			if v := row.Get(core.DCID(host)); v < min {
				min = v
			}
		}
		f[host] = min
	}
	return f
}

// AppendBinary appends a snapshot encoding of the table to dst.
func (a *ATable) AppendBinary(dst []byte) []byte {
	snap := a.Snapshot()
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(snap)))
	for _, row := range snap {
		dst = row.AppendBinary(dst)
	}
	return dst
}

// DecodeATableSnapshot decodes a table snapshot from buf.
func DecodeATableSnapshot(buf []byte) ([]Vector, int, error) {
	if len(buf) < 2 {
		return nil, 0, errors.New("vclock: short buffer")
	}
	n := int(binary.LittleEndian.Uint16(buf))
	off := 2
	snap := make([]Vector, n)
	for i := 0; i < n; i++ {
		v, used, err := DecodeVector(buf[off:])
		if err != nil {
			return nil, 0, err
		}
		snap[i] = v
		off += used
	}
	return snap, off, nil
}
