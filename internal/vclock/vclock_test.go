package vclock

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestVectorBasics(t *testing.T) {
	v := NewVector(3)
	if got := v.Get(5); got != 0 {
		t.Errorf("out-of-range Get = %d, want 0", got)
	}
	v.Set(1, 10)
	if got := v.Get(1); got != 10 {
		t.Errorf("Get(1) = %d, want 10", got)
	}
	if v.Advance(1, 5) {
		t.Error("Advance to lower value reported change")
	}
	if !v.Advance(1, 20) {
		t.Error("Advance to higher value reported no change")
	}
	if v.Advance(9, 1) {
		t.Error("Advance out of range reported change")
	}
	if got, want := v.String(), "[0 20 0]"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestVectorMergeAndCovers(t *testing.T) {
	a := Vector{5, 0, 3}
	b := Vector{2, 7, 3}
	a.Merge(b)
	if want := (Vector{5, 7, 3}); !reflect.DeepEqual(a, want) {
		t.Errorf("Merge = %v, want %v", a, want)
	}
	if !a.Covers(b) {
		t.Error("merged vector must cover operand")
	}
	if b.Covers(a) {
		t.Error("b should not cover a")
	}
	if !a.Covers(Vector{}) {
		t.Error("any vector covers the empty vector")
	}
	// Covers with longer operand and nonzero tail.
	if (Vector{1}).Covers(Vector{1, 2}) {
		t.Error("short vector cannot cover longer nonzero vector")
	}
}

func TestVectorCoversDeps(t *testing.T) {
	v := Vector{5, 2}
	if !v.CoversDeps([]core.Dep{{DC: 0, TOId: 5}, {DC: 1, TOId: 1}}) {
		t.Error("satisfied deps reported unsatisfied")
	}
	if v.CoversDeps([]core.Dep{{DC: 1, TOId: 3}}) {
		t.Error("unsatisfied dep reported satisfied")
	}
	if v.CoversDeps([]core.Dep{{DC: 7, TOId: 1}}) {
		t.Error("dep on unknown DC must be unsatisfied")
	}
	if !v.CoversDeps(nil) {
		t.Error("empty deps must be satisfied")
	}
}

func TestVectorDeps(t *testing.T) {
	v := Vector{0, 4, 0, 9}
	want := []core.Dep{{DC: 1, TOId: 4}, {DC: 3, TOId: 9}}
	if got := v.Deps(); !reflect.DeepEqual(got, want) {
		t.Errorf("Deps = %v, want %v", got, want)
	}
	if got := NewVector(2).Deps(); got != nil {
		t.Errorf("zero vector Deps = %v, want nil", got)
	}
}

func TestVectorBinaryRoundTrip(t *testing.T) {
	v := Vector{1, 0, 1 << 40}
	buf := v.AppendBinary(nil)
	got, used, err := DecodeVector(buf)
	if err != nil {
		t.Fatal(err)
	}
	if used != len(buf) || !reflect.DeepEqual(got, v) {
		t.Errorf("round trip: got %v (used %d), want %v (%d)", got, used, v, len(buf))
	}
	for n := 0; n < len(buf); n++ {
		if _, _, err := DecodeVector(buf[:n]); err == nil {
			t.Fatalf("accepted truncation to %d bytes", n)
		}
	}
}

func TestVectorMergeIdempotentCommutative(t *testing.T) {
	f := func(a, b []uint64) bool {
		if len(a) > 8 {
			a = a[:8]
		}
		if len(b) > 8 {
			b = b[:8]
		}
		// pad to same length for commutativity check
		n := len(a)
		if len(b) > n {
			n = len(b)
		}
		av, bv := NewVector(n), NewVector(n)
		copy(av, a)
		copy(bv, b)

		m1 := av.Clone()
		m1.Merge(bv)
		m2 := bv.Clone()
		m2.Merge(av)
		if !reflect.DeepEqual(m1, m2) {
			return false
		}
		m3 := m1.Clone()
		m3.Merge(bv) // idempotent
		return reflect.DeepEqual(m1, m3) && m1.Covers(av) && m1.Covers(bv)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestATableBasics(t *testing.T) {
	a := NewATable(0, 3)
	if a.Self() != 0 || a.N() != 3 {
		t.Fatalf("Self/N = %v/%d", a.Self(), a.N())
	}
	a.RecordApplied(1, 5)
	if got := a.Get(0, 1); got != 5 {
		t.Errorf("Get(0,1) = %d, want 5", got)
	}
	if !a.KnownBy(0, 1, 5) || a.KnownBy(0, 1, 6) {
		t.Error("KnownBy boundary wrong")
	}
	if got := a.SelfVector(); !reflect.DeepEqual(got, Vector{0, 5, 0}) {
		t.Errorf("SelfVector = %v", got)
	}
}

func TestATableGCSafe(t *testing.T) {
	a := NewATable(0, 2)
	a.Advance(0, 0, 3)
	if a.GCSafe(0, 1) {
		t.Error("record not yet known by DC1 reported GC-safe")
	}
	a.Advance(1, 0, 2)
	if !a.GCSafe(0, 2) {
		t.Error("record known everywhere not GC-safe")
	}
	if a.GCSafe(0, 3) {
		t.Error("record beyond DC1's knowledge reported GC-safe")
	}
	if got := a.GCFrontier(); !reflect.DeepEqual(got, Vector{2, 0}) {
		t.Errorf("GCFrontier = %v, want [2 0]", got)
	}
}

func TestATableMergeSnapshot(t *testing.T) {
	a := NewATable(0, 2)
	a.Advance(0, 0, 5)
	b := NewATable(1, 2)
	b.Advance(1, 0, 3)
	b.Advance(1, 1, 7)
	b.Advance(0, 0, 9) // B's (possibly stale or fresher) view of A

	a.MergeSnapshot(b.Snapshot())
	if got := a.Get(1, 1); got != 7 {
		t.Errorf("merged [1][1] = %d, want 7", got)
	}
	if got := a.Get(0, 0); got != 9 {
		t.Errorf("merged self row = %d, want max(5,9)=9", got)
	}
}

func TestATableBinaryRoundTrip(t *testing.T) {
	a := NewATable(1, 3)
	a.Advance(0, 1, 4)
	a.Advance(2, 2, 8)
	buf := a.AppendBinary(nil)
	snap, used, err := DecodeATableSnapshot(buf)
	if err != nil {
		t.Fatal(err)
	}
	if used != len(buf) {
		t.Errorf("consumed %d of %d", used, len(buf))
	}
	if !reflect.DeepEqual(snap, a.Snapshot()) {
		t.Error("snapshot round trip mismatch")
	}
	if _, _, err := DecodeATableSnapshot(buf[:1]); err == nil {
		t.Error("accepted truncated table")
	}
}

func TestATableConcurrency(t *testing.T) {
	a := NewATable(0, 4)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(dc core.DCID) {
			defer func() { done <- struct{}{} }()
			for i := uint64(1); i <= 1000; i++ {
				a.RecordApplied(dc, i)
				a.GCSafe(dc, i)
				a.Snapshot()
			}
		}(core.DCID(g))
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	for dc := core.DCID(0); dc < 4; dc++ {
		if got := a.Get(0, dc); got != 1000 {
			t.Errorf("Get(0,%d) = %d, want 1000", dc, got)
		}
	}
}

func BenchmarkVectorCoversDeps(b *testing.B) {
	v := Vector{100, 200, 300, 400, 500}
	deps := []core.Dep{{DC: 0, TOId: 50}, {DC: 3, TOId: 400}}
	for i := 0; i < b.N; i++ {
		if !v.CoversDeps(deps) {
			b.Fatal("unexpected")
		}
	}
}

func BenchmarkATableSnapshotMerge(b *testing.B) {
	a := NewATable(0, 5)
	c := NewATable(1, 5)
	for i := core.DCID(0); i < 5; i++ {
		a.Advance(i, i, 100)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.MergeSnapshot(a.Snapshot())
	}
}
