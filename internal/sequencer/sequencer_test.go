package sequencer

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/ratelimit"
)

func TestSequencerIssuesUniqueMonotonic(t *testing.T) {
	s := NewSequencer(nil)
	first, err := s.Next(1)
	if err != nil || first != 1 {
		t.Fatalf("first = %d, %v", first, err)
	}
	second, _ := s.Next(5)
	if second != 2 {
		t.Errorf("second reservation = %d, want 2", second)
	}
	third, _ := s.Next(1)
	if third != 7 {
		t.Errorf("third = %d, want 7", third)
	}
	if s.Tail() != 8 {
		t.Errorf("Tail = %d, want 8", s.Tail())
	}
	if s.Issued.Value() != 7 {
		t.Errorf("Issued = %d, want 7", s.Issued.Value())
	}
}

func TestSequencerInvalidReservation(t *testing.T) {
	s := NewSequencer(nil)
	if _, err := s.Next(0); err == nil {
		t.Error("Next(0) accepted")
	}
	if _, err := s.Next(-3); err == nil {
		t.Error("Next(-3) accepted")
	}
}

func TestSequencerConcurrentUnique(t *testing.T) {
	s := NewSequencer(nil)
	var wg sync.WaitGroup
	ch := make(chan uint64, 800)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				lid, err := s.Next(1)
				if err != nil {
					t.Error(err)
					return
				}
				ch <- lid
			}
		}()
	}
	wg.Wait()
	close(ch)
	seen := map[uint64]bool{}
	for lid := range ch {
		if seen[lid] {
			t.Fatalf("duplicate position %d", lid)
		}
		seen[lid] = true
	}
	if len(seen) != 800 {
		t.Errorf("issued %d unique positions, want 800", len(seen))
	}
}

func TestSequencerOverload(t *testing.T) {
	s := NewSequencer(ratelimit.New(10, 2))
	var rejected int
	for i := 0; i < 100; i++ {
		if _, err := s.Next(1); errors.Is(err, ErrSequencerOverloaded) {
			rejected++
		}
	}
	if rejected == 0 {
		t.Error("limited sequencer never rejected")
	}
	if s.Rejected.Value() != uint64(rejected) {
		t.Errorf("Rejected counter = %d, want %d", s.Rejected.Value(), rejected)
	}
}

func TestLogAppendStripesAcrossUnits(t *testing.T) {
	units := []*StorageUnit{NewStorageUnit(nil, nil), NewStorageUnit(nil, nil), NewStorageUnit(nil, nil)}
	log, err := NewLog(NewSequencer(nil), units)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if _, err := log.Append(&core.Record{Body: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	for i, u := range units {
		if u.Len() != 3 {
			t.Errorf("unit %d has %d records, want 3", i, u.Len())
		}
	}
	// Position p lives on unit (p-1) mod 3.
	rec, err := log.Read(5)
	if err != nil {
		t.Fatal(err)
	}
	if rec.LId != 5 {
		t.Errorf("Read(5).LId = %d", rec.LId)
	}
	if _, err := log.Read(0); !errors.Is(err, core.ErrNoSuchRecord) {
		t.Errorf("Read(0) = %v", err)
	}
	if _, err := log.Read(100); !errors.Is(err, core.ErrNoSuchRecord) {
		t.Errorf("Read(100) = %v", err)
	}
}

func TestLogRejectsBadAssembly(t *testing.T) {
	if _, err := NewLog(nil, []*StorageUnit{NewStorageUnit(nil, nil)}); err == nil {
		t.Error("nil sequencer accepted")
	}
	if _, err := NewLog(NewSequencer(nil), nil); err == nil {
		t.Error("no units accepted")
	}
}

func TestStorageUnitWriteValidation(t *testing.T) {
	u := NewStorageUnit(nil, nil)
	if err := u.Write(&core.Record{TOId: 1}); err == nil {
		t.Error("write without position accepted")
	}
	if err := u.Write(&core.Record{LId: 1, TOId: 1}); err != nil {
		t.Fatal(err)
	}
	if err := u.Write(&core.Record{LId: 1, TOId: 1}); err == nil {
		t.Error("duplicate position accepted")
	}
}

func TestStorageUnitOverload(t *testing.T) {
	u := NewStorageUnit(nil, ratelimit.New(5, 1))
	u.Write(&core.Record{LId: 1, TOId: 1})
	if err := u.Write(&core.Record{LId: 2, TOId: 2}); !errors.Is(err, ErrUnitOverloaded) {
		t.Errorf("overload err = %v", err)
	}
}

// TestSequencerBottleneckShape is the qualitative claim of §2.1: with a
// rate-limited sequencer, adding storage units does not increase append
// throughput once the sequencer saturates.
func TestSequencerBottleneckShape(t *testing.T) {
	run := func(nUnits int) int {
		seq := NewSequencer(ratelimit.New(2000, 50))
		var units []*StorageUnit
		for i := 0; i < nUnits; i++ {
			units = append(units, NewStorageUnit(nil, nil)) // unlimited units
		}
		log, _ := NewLog(seq, units)
		ok := 0
		for i := 0; i < 3000; i++ {
			if _, err := log.Append(&core.Record{Body: []byte("x")}); err == nil {
				ok++
			}
		}
		return ok
	}
	one := run(1)
	ten := run(10)
	// Both runs are sequencer-bound; ten units must not beat one unit by
	// more than noise.
	if one == 0 || ten == 0 {
		t.Fatal("no appends succeeded")
	}
	ratio := float64(ten) / float64(one)
	if ratio > 1.5 {
		t.Errorf("10 units scaled %.2fx over 1 unit despite sequencer bottleneck", ratio)
	}
}
