// Package sequencer implements the CORFU-style shared log the paper uses
// as its point of comparison (§2.1, §5.2): a client-driven protocol where a
// centralized sequencer pre-assigns log positions and clients then write
// records directly to the storage unit owning each position.
//
// The sequencer is off the data path — it hands out offsets, not data — so
// the log's aggregate throughput exceeds one machine's I/O bandwidth. But
// every append still costs one sequencer interaction, so total throughput
// plateaus at the sequencer's request rate no matter how many storage
// units are added. FLStore's post-assignment removes exactly this
// bottleneck; the ablation bench puts the two side by side.
package sequencer

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/ratelimit"
	"repro/internal/storage"
)

// ErrSequencerOverloaded is returned when the sequencer's capacity limiter
// rejects a reservation — the saturation regime of the baseline.
var ErrSequencerOverloaded = errors.New("sequencer: overloaded")

// ErrUnitOverloaded is returned when a storage unit's limiter rejects a
// write.
var ErrUnitOverloaded = errors.New("sequencer: storage unit overloaded")

// Sequencer is the centralized position-assignment service. It is a single
// logical machine: one counter behind one capacity limiter.
type Sequencer struct {
	next    atomic.Uint64
	limiter *ratelimit.Limiter

	// Issued counts positions handed out (instrumentation).
	Issued metrics.Counter
	// Rejected counts reservations refused at saturation.
	Rejected metrics.Counter
}

// NewSequencer returns a sequencer whose request capacity is bounded by
// limiter (nil = unlimited).
func NewSequencer(limiter *ratelimit.Limiter) *Sequencer {
	return &Sequencer{limiter: limiter}
}

// Next reserves n consecutive log positions and returns the first. Each
// call is one sequencer interaction regardless of n, which is why CORFU
// clients batch; the evaluation's clients use n=1 to match the paper's
// per-record append costs.
func (s *Sequencer) Next(n int) (uint64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("sequencer: invalid reservation size %d", n)
	}
	if !s.limiter.Allow(1) {
		s.Rejected.Inc()
		return 0, ErrSequencerOverloaded
	}
	end := s.next.Add(uint64(n))
	s.Issued.Add(uint64(n))
	return end - uint64(n) + 1, nil
}

// Tail returns the next unissued position (the current log tail + 1).
func (s *Sequencer) Tail() uint64 { return s.next.Load() + 1 }

// StorageUnit is one flash-unit-like store: it accepts writes at
// pre-assigned positions and serves reads. Unlike an FLStore maintainer it
// performs no position assignment.
type StorageUnit struct {
	mu      sync.Mutex
	store   storage.Store
	limiter *ratelimit.Limiter
	written uint64

	// Written counts records accepted (instrumentation).
	Written metrics.Counter
}

// NewStorageUnit returns a unit backed by st (MemStore if nil) with the
// given capacity limiter.
func NewStorageUnit(st storage.Store, limiter *ratelimit.Limiter) *StorageUnit {
	if st == nil {
		st = storage.NewMemStore()
	}
	return &StorageUnit{store: st, limiter: limiter}
}

// Write stores a record at its pre-assigned position.
func (u *StorageUnit) Write(r *core.Record) error {
	if r.LId == 0 {
		return errors.New("sequencer: write without position")
	}
	if !u.limiter.Allow(1) {
		return ErrUnitOverloaded
	}
	if err := u.store.Append(r); err != nil {
		return err
	}
	u.Written.Inc()
	return nil
}

// Read returns the record at the given position.
func (u *StorageUnit) Read(lid uint64) (*core.Record, error) {
	return u.store.Get(lid)
}

// Len returns the number of records stored.
func (u *StorageUnit) Len() int { return u.store.Len() }

// Log is a CORFU-style deployment: one sequencer plus a stripe of storage
// units. Positions are striped round-robin across units (position p lives
// on unit (p-1) mod N).
type Log struct {
	seq   *Sequencer
	units []*StorageUnit
}

// NewLog assembles a deployment.
func NewLog(seq *Sequencer, units []*StorageUnit) (*Log, error) {
	if seq == nil || len(units) == 0 {
		return nil, errors.New("sequencer: need a sequencer and at least one unit")
	}
	return &Log{seq: seq, units: units}, nil
}

// UnitFor returns the storage unit owning a position.
func (l *Log) UnitFor(lid uint64) *StorageUnit {
	return l.units[int((lid-1)%uint64(len(l.units)))]
}

// Append runs the client-driven CORFU append: reserve a position at the
// sequencer, then write the record directly to the owning unit.
func (l *Log) Append(r *core.Record) (uint64, error) {
	lid, err := l.seq.Next(1)
	if err != nil {
		return 0, err
	}
	rec := r
	rec.LId = lid
	if rec.TOId == 0 {
		rec.TOId = lid
	}
	if err := l.UnitFor(lid).Write(rec); err != nil {
		return 0, err
	}
	return lid, nil
}

// Read fetches the record at lid from the owning unit.
func (l *Log) Read(lid uint64) (*core.Record, error) {
	if lid == 0 {
		return nil, core.ErrNoSuchRecord
	}
	return l.UnitFor(lid).Read(lid)
}

// Sequencer exposes the deployment's sequencer (instrumentation).
func (l *Log) Sequencer() *Sequencer { return l.seq }

// Units exposes the deployment's storage units (instrumentation).
func (l *Log) Units() []*StorageUnit { return l.units }
