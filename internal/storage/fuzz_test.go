package storage

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"repro/internal/core"
)

// encodeVolume frames recs with the archive's checksummed entry framing —
// the same bytes Archive.Put writes.
func encodeVolume(recs []*core.Record) []byte {
	var buf []byte
	for _, r := range recs {
		start := len(buf)
		buf = append(buf, make([]byte, entryHeaderSize)...)
		buf = core.AppendRecord(buf, r)
		payload := buf[start+entryHeaderSize:]
		binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, castagnoli))
	}
	return buf
}

// FuzzArchiveVolumeDecode drives the compacted-volume reader over
// arbitrary bytes: it must never panic or over-allocate, must accept
// exactly the volumes the writer produces, and must reject every torn or
// bit-flipped mutation with an error rather than yielding records past
// the corruption.
func FuzzArchiveVolumeDecode(f *testing.F) {
	seed := []*core.Record{
		{LId: 1, TOId: 3, Host: 1, Body: []byte("a")},
		{LId: 2, TOId: 6, Host: 0, Tags: []core.Tag{{Key: "k", Value: "v"}}, Body: []byte("bb")},
		{LId: 7, TOId: 9, Host: 2, Deps: []core.Dep{{DC: 1, TOId: 4}}, Body: bytes.Repeat([]byte("c"), 100)},
	}
	full := encodeVolume(seed)
	f.Add(full)
	f.Add([]byte{})
	f.Add(full[:len(full)-3])  // torn mid-payload
	f.Add(full[:5])            // torn mid-header
	corrupt := append([]byte(nil), full...)
	corrupt[entryHeaderSize+1] ^= 0x40 // payload bit flip → CRC mismatch
	f.Add(corrupt)
	huge := make([]byte, entryHeaderSize)
	binary.LittleEndian.PutUint32(huge, 0xFFFFFFF0) // absurd length prefix
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		var recs []*core.Record
		err := decodeArchiveVolume(bytes.NewReader(data), func(r *core.Record) bool {
			recs = append(recs, r)
			return true
		})
		if err != nil {
			return
		}
		// A cleanly decoded stream must round-trip: re-framing the decoded
		// records reproduces the input exactly (framing has one canonical
		// form), so the decoder cannot have silently skipped bytes.
		if got := encodeVolume(recs); !bytes.Equal(got, data) {
			t.Fatalf("accepted stream does not round-trip: %d in, %d out", len(data), len(got))
		}
	})
}
