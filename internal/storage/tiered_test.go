package storage

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

func openTiered(t *testing.T, dir string, opts SegmentStoreOptions) *TieredStore {
	t.Helper()
	s, err := OpenTieredStore(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func fullRec(lid uint64) *core.Record {
	return &core.Record{
		LId:  lid,
		TOId: lid * 3,
		Host: core.DCID(lid % 5),
		Tags: []core.Tag{{Key: "t", Value: fmt.Sprintf("v-%d", lid%7)}},
		Deps: []core.Dep{{DC: 1, TOId: lid}},
		Body: []byte(fmt.Sprintf("body-%d-%s", lid, strings.Repeat("x", int(lid%50)))),
	}
}

func encodeAll(t *testing.T, recs []*core.Record) [][]byte {
	t.Helper()
	out := make([][]byte, len(recs))
	for i, r := range recs {
		out[i] = core.AppendRecord(nil, r)
	}
	return out
}

// TestTieredBoundaryReadsByteIdentical is the hot/cold transparency bar:
// a scan and point reads spanning the compaction boundary must return
// byte-identical records before and after the prefix moves to the cold
// tier. Runs with concurrent appends so -race exercises the tier handoff.
func TestTieredBoundaryReadsByteIdentical(t *testing.T) {
	dir := t.TempDir()
	s := openTiered(t, dir, SegmentStoreOptions{
		Sync:            SyncGroupCommit,
		GroupWindow:     time.Millisecond,
		MaxSegmentBytes: 1024, // several sealed segments below the watermark
	})
	defer s.Close()

	const total = 120
	for lid := uint64(1); lid <= total; lid++ {
		if err := s.Append(fullRec(lid)); err != nil {
			t.Fatal(err)
		}
	}

	readAll := func() []*core.Record {
		var got []*core.Record
		if err := s.Scan(0, 0, func(r *core.Record) bool {
			got = append(got, r)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		return got
	}
	before := readAll()
	if len(before) != total {
		t.Fatalf("pre-compaction scan returned %d records, want %d", len(before), total)
	}
	beforeBytes := encodeAll(t, before)

	// Compact the first half while appenders keep the hot tier moving.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for lid := uint64(total + 1); lid <= total+40; lid++ {
			if err := s.Append(fullRec(lid)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	const boundary = total / 2
	n, err := s.Compact(boundary)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if n != boundary {
		t.Fatalf("Compact archived %d records, want %d", n, boundary)
	}
	if s.Cold().Volumes() == 0 {
		t.Fatal("no archive volume written")
	}
	if got := s.Compacted(); got != boundary {
		t.Fatalf("Compacted = %d, want %d", got, boundary)
	}

	after := readAll()
	if len(after) != total+40 {
		t.Fatalf("post-compaction scan returned %d records, want %d", len(after), total+40)
	}
	afterBytes := encodeAll(t, after[:total])
	for i := range beforeBytes {
		if !bytes.Equal(beforeBytes[i], afterBytes[i]) {
			t.Fatalf("record %d differs across the hot/cold boundary:\n pre %x\npost %x",
				before[i].LId, beforeBytes[i], afterBytes[i])
		}
	}

	// Point reads on both sides of the boundary, and the boundary itself.
	for _, lid := range []uint64{1, boundary - 1, boundary, boundary + 1, total} {
		r, err := s.Get(lid)
		if err != nil {
			t.Fatalf("Get(%d): %v", lid, err)
		}
		want := core.AppendRecord(nil, fullRec(lid))
		if got := core.AppendRecord(nil, r); !bytes.Equal(got, want) {
			t.Fatalf("Get(%d) not byte-identical across tiers", lid)
		}
	}

	// A bounded scan that starts cold and ends hot.
	var span []uint64
	if err := s.Scan(boundary-5, boundary+5, func(r *core.Record) bool {
		span = append(span, r.LId)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(span) != 11 {
		t.Fatalf("boundary span returned %d records, want 11 (%v)", len(span), span)
	}
	for i, lid := range span {
		if lid != boundary-5+uint64(i) {
			t.Fatalf("boundary span out of order: %v", span)
		}
	}
}

// TestTieredSurvivesReopen: compaction state (watermark, counts, both
// tiers) must recover from disk alone.
func TestTieredSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s := openTiered(t, dir, SegmentStoreOptions{Sync: SyncEachBatch, MaxSegmentBytes: 512})
	for lid := uint64(1); lid <= 60; lid++ {
		if err := s.Append(fullRec(lid)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Compact(30); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openTiered(t, dir, SegmentStoreOptions{Sync: SyncEachBatch, MaxSegmentBytes: 512})
	defer s2.Close()
	if got := s2.Compacted(); got != 30 {
		t.Fatalf("recovered watermark = %d, want 30", got)
	}
	if got := s2.Len(); got != 60 {
		t.Fatalf("recovered Len = %d, want 60", got)
	}
	for lid := uint64(1); lid <= 60; lid++ {
		want := core.AppendRecord(nil, fullRec(lid))
		r, err := s2.Get(lid)
		if err != nil {
			t.Fatalf("Get(%d) after reopen: %v", lid, err)
		}
		if got := core.AppendRecord(nil, r); !bytes.Equal(got, want) {
			t.Fatalf("record %d not byte-identical after reopen", lid)
		}
	}
	if got := s2.MaxLId(); got != 60 {
		t.Fatalf("recovered MaxLId = %d, want 60", got)
	}
}

// TestTieredCrashMidCompaction kills the process (simulated at the file
// level) between the archive Put starting and completing: recovery must
// discard the torn volume and read the exact same record set from the
// surviving hot segments.
func TestTieredCrashMidCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openTiered(t, dir, SegmentStoreOptions{Sync: SyncEachBatch, MaxSegmentBytes: 512})
	const total = 50
	for lid := uint64(1); lid <= total; lid++ {
		if err := s.Append(fullRec(lid)); err != nil {
			t.Fatal(err)
		}
	}
	var wantBytes [][]byte
	if err := s.Scan(0, 0, func(r *core.Record) bool {
		wantBytes = append(wantBytes, core.AppendRecord(nil, r))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Forge the crash remnants a mid-compaction kill leaves behind. The
	// compaction protocol is: write volume to .tmp, fsync, rename, THEN
	// GC the hot tier. A kill in the middle leaves either (a) a stale
	// .tmp spool, or (b) a renamed but torn volume — and in both cases
	// the hot tier untouched. Build (b) by archiving to a scratch
	// archive, truncating the volume mid-entry, and planting it in the
	// real cold dir; plant a stale .tmp alongside.
	scratch := t.TempDir()
	sc, err := OpenArchive(scratch)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := OpenSegmentStore(filepath.Join(dir, "hot"), SegmentStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var batch []*core.Record
	if err := hs.Scan(1, 25, func(r *core.Record) bool {
		batch = append(batch, r)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if err := sc.Put(batch); err != nil {
		t.Fatal(err)
	}
	if err := hs.Close(); err != nil {
		t.Fatal(err)
	}
	vols, err := filepath.Glob(filepath.Join(scratch, "*"+archiveSuffix))
	if err != nil || len(vols) != 1 {
		t.Fatalf("scratch volumes: %v %v", vols, err)
	}
	raw, err := os.ReadFile(vols[0])
	if err != nil {
		t.Fatal(err)
	}
	coldDir := filepath.Join(dir, "cold")
	if err := os.MkdirAll(coldDir, 0o755); err != nil {
		t.Fatal(err)
	}
	// Torn mid-entry: cut the volume off partway through its bytes.
	torn := filepath.Join(coldDir, filepath.Base(vols[0]))
	if err := os.WriteFile(torn, raw[:len(raw)-len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(coldDir, filepath.Base(vols[0])+".tmp")
	if err := os.WriteFile(stale, raw[:16], 0o644); err != nil {
		t.Fatal(err)
	}

	// Recovery: torn volume discarded, .tmp removed, full record set
	// still served from the hot tier.
	s2 := openTiered(t, dir, SegmentStoreOptions{Sync: SyncEachBatch, MaxSegmentBytes: 512})
	defer s2.Close()
	if got := s2.Cold().Volumes(); got != 0 {
		t.Fatalf("torn volume survived recovery: %d volumes", got)
	}
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Fatalf("torn volume file still on disk: %v", err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale .tmp still on disk: %v", err)
	}
	if got := s2.Compacted(); got != 0 {
		t.Fatalf("watermark advanced past a discarded volume: %d", got)
	}
	var gotBytes [][]byte
	if err := s2.Scan(0, 0, func(r *core.Record) bool {
		gotBytes = append(gotBytes, core.AppendRecord(nil, r))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(gotBytes) != total {
		t.Fatalf("recovered %d records, want %d", len(gotBytes), total)
	}
	for i := range wantBytes {
		if !bytes.Equal(wantBytes[i], gotBytes[i]) {
			t.Fatalf("record %d differs after crash recovery", i+1)
		}
	}
	// And the interrupted compaction simply re-runs.
	if n, err := s2.Compact(25); err != nil || n != 25 {
		t.Fatalf("re-run compaction: n=%d err=%v", n, err)
	}
	if got := s2.Len(); got != total {
		t.Fatalf("Len after re-compaction = %d, want %d", got, total)
	}
}

// TestTieredCorruptVolumeDiscarded: a CRC-corrupt (not merely torn)
// volume is also discarded at open.
func TestTieredCorruptVolumeDiscarded(t *testing.T) {
	dir := t.TempDir()
	s := openTiered(t, dir, SegmentStoreOptions{Sync: SyncEachBatch, MaxSegmentBytes: 256})
	for lid := uint64(1); lid <= 30; lid++ {
		if err := s.Append(fullRec(lid)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Compact(15); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	vols, err := filepath.Glob(filepath.Join(dir, "cold", "*"+archiveSuffix))
	if err != nil || len(vols) != 1 {
		t.Fatalf("volumes: %v %v", vols, err)
	}
	raw, err := os.ReadFile(vols[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(vols[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openTiered(t, dir, SegmentStoreOptions{Sync: SyncEachBatch, MaxSegmentBytes: 256})
	defer s2.Close()
	if got := s2.Cold().Volumes(); got != 0 {
		t.Fatalf("corrupt volume survived recovery: %d volumes", got)
	}
	// Records 1..15 were GC'd from the hot tier after the (then-intact)
	// volume landed, so the corruption genuinely lost them — what must
	// NOT happen is serving corrupt bytes: reads fail cleanly instead.
	if _, err := s2.Get(1); err == nil {
		t.Fatal("Get(1) served a record from a corrupt volume")
	}
	for lid := uint64(16); lid <= 30; lid++ {
		if _, err := s2.Get(lid); err != nil {
			t.Fatalf("hot-tier Get(%d): %v", lid, err)
		}
	}
}
