package storage

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"

	"repro/internal/core"
)

// TieredStore is the log-structured two-tier Store of the durability
// rebuild: a hot SegmentStore absorbs appends (group-commit fsync
// windows), and sealed history compacts in LId order into the cold
// Archive. Reads and scans span both tiers transparently; GC is driven by
// the compaction watermark — "collecting" a prefix means archiving it,
// not deleting it, so the full history stays readable (§6.1's archive
// policy) while the hot tier stays small enough to recover fast.
//
// Crash-safety invariant: Compact archives (durable tmp+rename Put) and
// only then trims the hot tier. A crash between the two leaves records in
// both tiers — reads filter the hot tier to LId > compacted so nothing is
// served twice — and a crash mid-Put leaves a torn volume that OpenArchive
// discards, with every record still in the hot tier.
type TieredStore struct {
	mu        sync.Mutex
	compactMu sync.Mutex // serializes Compact; acquired before mu
	hot       *SegmentStore
	cold      *Archive
	compacted uint64 // every LId <= compacted is durably archived
	coldLen   int
	hotLive   int // hot records with LId > compacted
	closed    bool
}

// OpenTieredStore opens (creating if needed) a tiered store rooted at dir:
// hot segments under dir/hot, archive volumes under dir/cold. opts applies
// to the hot tier. The compaction watermark recovers as the highest
// archived LId; hot records at or below it (a crash landed between archive
// Put and hot GC) are masked from reads and trimmed by the next Compact.
func OpenTieredStore(dir string, opts SegmentStoreOptions) (*TieredStore, error) {
	hot, err := OpenSegmentStore(filepath.Join(dir, "hot"), opts)
	if err != nil {
		return nil, err
	}
	cold, err := OpenArchive(filepath.Join(dir, "cold"))
	if err != nil {
		hot.Close()
		return nil, err
	}
	t := &TieredStore{hot: hot, cold: cold}
	t.compacted = cold.MaxArchived()
	t.coldLen = cold.Count()
	t.hotLive = t.countHotLive()
	return t, nil
}

// countHotLive counts hot records above the compaction watermark.
func (t *TieredStore) countHotLive() int {
	if t.compacted == 0 {
		return t.hot.Len()
	}
	n := 0
	t.hot.Scan(t.compacted+1, 0, func(*core.Record) bool { n++; return true })
	return n
}

// Hot exposes the hot tier (metrics, fsync accounting).
func (t *TieredStore) Hot() *SegmentStore { return t.hot }

// Cold exposes the archive tier (introspection).
func (t *TieredStore) Cold() *Archive { return t.cold }

// Compacted returns the compaction watermark: every LId at or below it is
// durably archived in the cold tier.
func (t *TieredStore) Compacted() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.compacted
}

// Durable reports whether appends imply stable storage on return, same as
// the hot tier's policy.
func (t *TieredStore) Durable() bool { return t.hot.Durable() }

// Append implements Store.
func (t *TieredStore) Append(r *core.Record) error {
	return t.AppendBatch([]*core.Record{r})
}

// AppendBatch implements Store. New records land in the hot tier; records
// at or below the compaction watermark are already archived and rejected
// as duplicates.
func (t *TieredStore) AppendBatch(rs []*core.Record) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	compacted := t.compacted
	t.mu.Unlock()
	for _, r := range rs {
		if r.LId != 0 && r.LId <= compacted {
			return fmt.Errorf("%w: %d (archived)", ErrDuplicate, r.LId)
		}
	}
	if err := t.hot.AppendBatch(rs); err != nil {
		return err
	}
	t.mu.Lock()
	t.hotLive += len(rs)
	t.mu.Unlock()
	return nil
}

// Get implements Store: archived positions are served from the cold tier,
// everything newer from the hot tier.
func (t *TieredStore) Get(lid uint64) (*core.Record, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	compacted := t.compacted
	t.mu.Unlock()
	if lid != 0 && lid <= compacted {
		r, err := t.cold.Get(lid)
		if errors.Is(err, ErrNotArchived) {
			return nil, core.ErrNoSuchRecord
		}
		return r, err
	}
	return t.hot.Get(lid)
}

// Scan implements Store: the cold tier serves LIds up to the compaction
// watermark, the hot tier everything above it, in one ascending pass.
// Records the hot tier still holds below the watermark (crash before GC)
// are masked so no position is visited twice.
func (t *TieredStore) Scan(minLId, maxLId uint64, fn func(*core.Record) bool) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	compacted := t.compacted
	t.mu.Unlock()
	stopped := false
	if minLId <= compacted {
		coldMax := compacted
		if maxLId != 0 && maxLId < coldMax {
			coldMax = maxLId
		}
		err := t.cold.Scan(minLId, coldMax, func(r *core.Record) bool {
			if !fn(r) {
				stopped = true
				return false
			}
			return true
		})
		if err != nil || stopped {
			return err
		}
	}
	if maxLId != 0 && maxLId <= compacted {
		return nil
	}
	hotMin := minLId
	if hotMin <= compacted {
		hotMin = compacted + 1
	}
	return t.hot.Scan(hotMin, maxLId, fn)
}

// MaxLId implements Store.
func (t *TieredStore) MaxLId() uint64 {
	hot := t.hot.MaxLId()
	t.mu.Lock()
	compacted := t.compacted
	t.mu.Unlock()
	if hot > compacted {
		return hot
	}
	return compacted
}

// Len implements Store: archived records plus live (unmasked) hot records.
func (t *TieredStore) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.coldLen + t.hotLive
}

// GC implements Store by compacting: records with LId <= upTo move from
// the hot tier into the archive (if not already there), then the hot tier
// trims whole sealed segments. The returned count is the number of records
// newly archived — nothing is deleted from history.
func (t *TieredStore) GC(upTo uint64) (int, error) {
	return t.Compact(upTo)
}

// Compact archives the hot prefix (compacted, upTo] and advances the
// compaction watermark, then lets the hot tier drop fully-covered sealed
// segments. Safe to call concurrently with appends and reads; compactions
// themselves serialize.
func (t *TieredStore) Compact(upTo uint64) (int, error) {
	t.compactMu.Lock()
	defer t.compactMu.Unlock()
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return 0, ErrClosed
	}
	compacted := t.compacted
	t.mu.Unlock()
	if upTo <= compacted {
		return 0, nil
	}
	var batch []*core.Record
	if err := t.hot.Scan(compacted+1, upTo, func(r *core.Record) bool {
		batch = append(batch, r)
		return true
	}); err != nil {
		return 0, err
	}
	if len(batch) > 0 {
		// Durability point: the archive volume is fsynced and renamed into
		// place before any hot record is dropped.
		if err := t.cold.Put(batch); err != nil {
			return 0, err
		}
	}
	if _, err := t.hot.GC(upTo); err != nil {
		return len(batch), fmt.Errorf("storage: archived but hot GC failed: %w", err)
	}
	t.mu.Lock()
	if upTo > t.compacted {
		t.compacted = upTo
	}
	t.coldLen += len(batch)
	t.hotLive = t.countHotLive()
	t.mu.Unlock()
	return len(batch), nil
}

// Close implements Store.
func (t *TieredStore) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	return t.hot.Close()
}
