package storage

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// TestGroupCommitFsyncBudget is the tier-1 fsync-collapse budget: 64
// concurrent appenders must complete at least 64 batches with at most 8
// physical fsyncs total. Per-batch fsync would spend 64; group commit
// coalesces the burst into 1-2 windows.
func TestGroupCommitFsyncBudget(t *testing.T) {
	const appenders = 64
	s := openSeg(t, t.TempDir(), SegmentStoreOptions{
		Sync:        SyncGroupCommit,
		GroupWindow: 20 * time.Millisecond,
		GroupBytes:  64 << 20, // never cut early on bytes
	})
	defer s.Close()

	start := make(chan struct{})
	var ready, done sync.WaitGroup
	errs := make([]error, appenders)
	for i := 0; i < appenders; i++ {
		i := i
		ready.Add(1)
		done.Add(1)
		go func() {
			defer done.Done()
			ready.Done()
			<-start
			errs[i] = s.AppendBatch([]*core.Record{rec(uint64(i + 1))})
		}()
	}
	ready.Wait()
	close(start)
	done.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("appender %d: %v", i, err)
		}
	}
	if got := s.Len(); got != appenders {
		t.Fatalf("Len = %d, want %d", got, appenders)
	}
	if n := s.FsyncCount(); n > 8 {
		t.Fatalf("%d concurrent appends issued %d fsyncs, budget is 8", appenders, n)
	}
	if n := s.FsyncCount(); n == 0 {
		t.Fatal("group commit completed with zero fsyncs")
	}
}

// TestGroupCommitDurableOnReturn: AppendBatch under SyncGroupCommit must
// not return before its window fsynced, and the data must survive reopen.
func TestGroupCommitDurableOnReturn(t *testing.T) {
	dir := t.TempDir()
	s := openSeg(t, dir, SegmentStoreOptions{Sync: SyncGroupCommit, GroupWindow: time.Millisecond})
	if err := s.AppendBatch([]*core.Record{rec(1), rec(2)}); err != nil {
		t.Fatal(err)
	}
	if n := s.FsyncCount(); n != 1 {
		t.Fatalf("fsyncs after first returned batch = %d, want 1", n)
	}
	if err := s.AppendBatch([]*core.Record{rec(3)}); err != nil {
		t.Fatal(err)
	}
	if n := s.FsyncCount(); n != 2 {
		t.Fatalf("fsyncs after two sequential batches = %d, want 2", n)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openSeg(t, dir, SegmentStoreOptions{})
	defer s2.Close()
	if got := s2.Len(); got != 3 {
		t.Fatalf("recovered Len = %d, want 3", got)
	}
}

// TestSealSkipsRedundantFsync is the rotation double-fsync regression
// test: under SyncEachBatch every batch syncs inline, so the seal path
// (rotation and Close) must not fsync the old file again with no
// intervening data — fsync count stays exactly one per batch.
func TestSealSkipsRedundantFsync(t *testing.T) {
	s := openSeg(t, t.TempDir(), SegmentStoreOptions{
		Sync:            SyncEachBatch,
		MaxSegmentBytes: 64, // rotate on nearly every batch
	})
	const batches = 10
	for lid := uint64(1); lid <= batches; lid++ {
		if err := s.Append(rec(lid)); err != nil {
			t.Fatal(err)
		}
	}
	segs, _ := s.DiskStats()
	if segs < 3 {
		t.Fatalf("expected several rotations, got %d segments", segs)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if n := s.FsyncCount(); n != batches {
		t.Fatalf("fsyncs = %d, want exactly %d (one per batch, none at seal)", n, batches)
	}
}

// TestGroupCommitRotationMidStream: rotation under SyncGroupCommit seals
// the open window on the old file (windows never span segment files) and
// every record still lands durably and readable.
func TestGroupCommitRotationMidStream(t *testing.T) {
	dir := t.TempDir()
	s := openSeg(t, dir, SegmentStoreOptions{
		Sync:            SyncGroupCommit,
		MaxSegmentBytes: 256,
		GroupWindow:     time.Millisecond,
	})
	var wg sync.WaitGroup
	const goroutines, perG = 8, 25
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				lid := uint64(g*perG + i + 1)
				if err := s.Append(rec(lid)); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	total := goroutines * perG
	if got := s.Len(); got != total {
		t.Fatalf("Len = %d, want %d", got, total)
	}
	segs, _ := s.DiskStats()
	if segs < 2 {
		t.Fatalf("expected rotation, got %d segments", segs)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openSeg(t, dir, SegmentStoreOptions{})
	defer s2.Close()
	if got := s2.Len(); got != total {
		t.Fatalf("recovered Len = %d, want %d", got, total)
	}
	for lid := uint64(1); lid <= uint64(total); lid++ {
		if _, err := s2.Get(lid); err != nil {
			t.Fatalf("Get(%d) after recovery: %v", lid, err)
		}
	}
}

// TestGroupCommitCloseWakesParkedWindow: a batch parked on a long window
// must be woken (durably) by Close instead of hanging until the window
// timer fires.
func TestGroupCommitCloseWakesParkedWindow(t *testing.T) {
	dir := t.TempDir()
	s := openSeg(t, dir, SegmentStoreOptions{
		Sync:        SyncGroupCommit,
		GroupWindow: 10 * time.Second, // would park "forever" without the seal
	})
	res := make(chan error, 1)
	go func() { res <- s.AppendBatch([]*core.Record{rec(1)}) }()
	// The index is updated under mu before the batch parks on its window,
	// so Len()==1 means the appender is enqueued (or about to be).
	deadline := time.Now().Add(5 * time.Second)
	for s.Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("append never reached the store")
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-res:
		if err != nil {
			t.Fatalf("parked append after Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("append still parked after Close")
	}
	if n := s.FsyncCount(); n != 1 {
		t.Fatalf("fsyncs = %d, want 1 (the seal's)", n)
	}
	s2 := openSeg(t, dir, SegmentStoreOptions{})
	defer s2.Close()
	if got := s2.Len(); got != 1 {
		t.Fatalf("recovered Len = %d, want 1", got)
	}
}

// TestGroupCommitRejectsAfterClose: appends racing Close either commit
// durably or fail with ErrClosed — never hang, never a third outcome.
func TestGroupCommitRejectsAfterClose(t *testing.T) {
	s := openSeg(t, t.TempDir(), SegmentStoreOptions{Sync: SyncGroupCommit, GroupWindow: time.Millisecond})
	var wg sync.WaitGroup
	outcomes := make([]error, 32)
	for i := range outcomes {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			outcomes[i] = s.Append(rec(uint64(i + 1)))
		}()
	}
	time.Sleep(2 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, err := range outcomes {
		if err != nil && !errors.Is(err, ErrClosed) {
			t.Fatalf("append %d: unexpected error %v", i, err)
		}
	}
}

// TestGroupCommitDuplicateRejectedImmediately: validation errors surface
// without waiting a window and leave the window path consistent.
func TestGroupCommitDuplicateRejectedImmediately(t *testing.T) {
	s := openSeg(t, t.TempDir(), SegmentStoreOptions{Sync: SyncGroupCommit, GroupWindow: time.Millisecond})
	defer s.Close()
	if err := s.Append(rec(7)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := s.Append(rec(7)); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate append: %v", err)
	}
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Fatalf("duplicate rejection took %v, should not wait for a window", d)
	}
}
