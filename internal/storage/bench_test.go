package storage

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func benchRecords(n, size int) []*core.Record {
	body := workload.NewBody(size, 1)
	recs := make([]*core.Record, n)
	for i := range recs {
		recs[i] = &core.Record{LId: uint64(i + 1), TOId: uint64(i + 1), Body: body}
	}
	return recs
}

func BenchmarkMemStoreAppend(b *testing.B) {
	body := workload.NewBody(512, 1)
	s := NewMemStore()
	defer s.Close()
	b.ReportAllocs()
	b.SetBytes(512)
	for i := 0; i < b.N; i++ {
		if err := s.Append(&core.Record{LId: uint64(i + 1), TOId: uint64(i + 1), Body: body}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMemStoreGet(b *testing.B) {
	s := NewMemStore()
	defer s.Close()
	s.AppendBatch(benchRecords(10000, 512))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(uint64(i%10000 + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSegmentStoreAppend(b *testing.B) {
	for _, sync := range []SyncPolicy{SyncNever, SyncEachBatch} {
		name := "nosync"
		if sync == SyncEachBatch {
			name = "fsync"
		}
		b.Run(name, func(b *testing.B) {
			s, err := OpenSegmentStore(b.TempDir(), SegmentStoreOptions{Sync: sync})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			body := workload.NewBody(512, 1)
			b.ReportAllocs()
			b.SetBytes(512)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Append(&core.Record{LId: uint64(i + 1), TOId: uint64(i + 1), Body: body}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSegmentStoreAppendBatch(b *testing.B) {
	for _, batch := range []int{16, 256} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			s, err := OpenSegmentStore(b.TempDir(), SegmentStoreOptions{Sync: SyncEachBatch})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			body := workload.NewBody(512, 1)
			b.ReportAllocs()
			b.SetBytes(int64(512 * batch))
			lid := uint64(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				recs := make([]*core.Record, batch)
				for j := range recs {
					recs[j] = &core.Record{LId: lid, TOId: lid, Body: body}
					lid++
				}
				if err := s.AppendBatch(recs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSegmentStoreRecovery(b *testing.B) {
	dir := b.TempDir()
	s, _ := OpenSegmentStore(dir, SegmentStoreOptions{})
	s.AppendBatch(benchRecords(20000, 512))
	s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s2, err := OpenSegmentStore(dir, SegmentStoreOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if s2.Len() != 20000 {
			b.Fatalf("recovered %d records", s2.Len())
		}
		s2.Close()
	}
}
