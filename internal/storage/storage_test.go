package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

// storeFactory lets every Store implementation share one conformance suite.
type storeFactory struct {
	name string
	make func(t *testing.T) Store
}

func factories() []storeFactory {
	return []storeFactory{
		{"MemStore", func(t *testing.T) Store { return NewMemStore() }},
		{"SegmentStore", func(t *testing.T) Store {
			s, err := OpenSegmentStore(t.TempDir(), SegmentStoreOptions{})
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
		{"TieredStore", func(t *testing.T) Store {
			s, err := OpenTieredStore(t.TempDir(), SegmentStoreOptions{})
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
	}
}

func rec(lid uint64) *core.Record {
	return &core.Record{LId: lid, TOId: lid, Host: 0, Body: []byte(fmt.Sprintf("body-%d", lid))}
}

func TestStoreConformance(t *testing.T) {
	for _, f := range factories() {
		t.Run(f.name, func(t *testing.T) {
			t.Run("AppendGet", func(t *testing.T) {
				s := f.make(t)
				defer s.Close()
				if err := s.Append(rec(5)); err != nil {
					t.Fatal(err)
				}
				got, err := s.Get(5)
				if err != nil {
					t.Fatal(err)
				}
				if string(got.Body) != "body-5" {
					t.Errorf("body = %q", got.Body)
				}
				if _, err := s.Get(6); !errors.Is(err, core.ErrNoSuchRecord) {
					t.Errorf("missing Get err = %v", err)
				}
			})
			t.Run("DuplicateRejected", func(t *testing.T) {
				s := f.make(t)
				defer s.Close()
				if err := s.Append(rec(1)); err != nil {
					t.Fatal(err)
				}
				if err := s.Append(rec(1)); !errors.Is(err, ErrDuplicate) {
					t.Errorf("duplicate err = %v", err)
				}
			})
			t.Run("NoLIdRejected", func(t *testing.T) {
				s := f.make(t)
				defer s.Close()
				if err := s.Append(&core.Record{TOId: 1}); err == nil {
					t.Error("append without LId succeeded")
				}
			})
			t.Run("ScanOrderAndBounds", func(t *testing.T) {
				s := f.make(t)
				defer s.Close()
				// Out-of-order arrival (sparse LIds, like a
				// maintainer owning round-robin ranges).
				for _, lid := range []uint64{10, 2, 7, 30, 4} {
					if err := s.Append(rec(lid)); err != nil {
						t.Fatal(err)
					}
				}
				var got []uint64
				if err := s.Scan(3, 10, func(r *core.Record) bool {
					got = append(got, r.LId)
					return true
				}); err != nil {
					t.Fatal(err)
				}
				want := []uint64{4, 7, 10}
				if len(got) != len(want) {
					t.Fatalf("Scan = %v, want %v", got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("Scan = %v, want %v", got, want)
					}
				}
			})
			t.Run("ScanEarlyStop", func(t *testing.T) {
				s := f.make(t)
				defer s.Close()
				for lid := uint64(1); lid <= 10; lid++ {
					if err := s.Append(rec(lid)); err != nil {
						t.Fatal(err)
					}
				}
				n := 0
				s.Scan(0, 0, func(*core.Record) bool {
					n++
					return n < 3
				})
				if n != 3 {
					t.Errorf("visited %d records, want 3", n)
				}
			})
			t.Run("MaxLIdLen", func(t *testing.T) {
				s := f.make(t)
				defer s.Close()
				if s.MaxLId() != 0 || s.Len() != 0 {
					t.Error("empty store not empty")
				}
				s.AppendBatch([]*core.Record{rec(3), rec(9), rec(6)})
				if got := s.MaxLId(); got != 9 {
					t.Errorf("MaxLId = %d, want 9", got)
				}
				if got := s.Len(); got != 3 {
					t.Errorf("Len = %d, want 3", got)
				}
			})
			t.Run("ClosedOps", func(t *testing.T) {
				s := f.make(t)
				s.Close()
				if err := s.Append(rec(1)); !errors.Is(err, ErrClosed) {
					t.Errorf("append after close: %v", err)
				}
				if _, err := s.Get(1); !errors.Is(err, ErrClosed) {
					t.Errorf("get after close: %v", err)
				}
				if err := s.Scan(0, 0, func(*core.Record) bool { return true }); !errors.Is(err, ErrClosed) {
					t.Errorf("scan after close: %v", err)
				}
			})
		})
	}
}

func TestMemStoreGC(t *testing.T) {
	s := NewMemStore()
	defer s.Close()
	for lid := uint64(1); lid <= 10; lid++ {
		s.Append(rec(lid))
	}
	n, err := s.GC(4)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("GC removed %d, want 4", n)
	}
	if _, err := s.Get(4); !errors.Is(err, core.ErrNoSuchRecord) {
		t.Error("GC'd record still present")
	}
	if _, err := s.Get(5); err != nil {
		t.Errorf("surviving record lost: %v", err)
	}
	if s.Len() != 6 {
		t.Errorf("Len = %d, want 6", s.Len())
	}
}

func TestMemStoreEquivalentToModelProperty(t *testing.T) {
	// Property: after any sequence of appends with distinct LIds, Scan
	// returns exactly the appended records in ascending LId order.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewMemStore()
		defer s.Close()
		model := map[uint64]bool{}
		for i := 0; i < 200; i++ {
			lid := uint64(1 + rng.Intn(500))
			err := s.Append(rec(lid))
			if model[lid] {
				if !errors.Is(err, ErrDuplicate) {
					return false
				}
				continue
			}
			if err != nil {
				return false
			}
			model[lid] = true
		}
		var prev uint64
		count := 0
		s.Scan(0, 0, func(r *core.Record) bool {
			if r.LId <= prev || !model[r.LId] {
				count = -1 << 30
				return false
			}
			prev = r.LId
			count++
			return true
		})
		return count == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
