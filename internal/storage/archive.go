package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
)

// Archive is the cold-storage tier of §6.1: "If the user chooses not to
// garbage collect the records then they may employ a cold storage solution
// to archive older records." Records move out of the hot segment store in
// LId order into compressed-away append-only archive volumes; reads of
// archived positions are served (slowly) from the archive, so the full
// history — audit trails, time travel, debugging — remains available even
// after the hot tier is trimmed.
//
// Volume format: one file per archived LId range, named
// "<firstLId>-<lastLId>.arch", containing the same checksummed entry
// framing as hot segments.
type Archive struct {
	mu      sync.Mutex
	dir     string
	volumes []archVolume // sorted by first LId
}

type archVolume struct {
	path  string
	first uint64
	last  uint64
	count int // records in the volume (validated at open / known at Put)
}

const archiveSuffix = ".arch"

// ErrNotArchived is returned when a read names a position no archive
// volume covers.
var ErrNotArchived = errors.New("storage: position not archived")

// OpenArchive opens (creating if needed) an archive rooted at dir.
//
// Open is the archive's recovery point: stale ".tmp" spool files from an
// interrupted Put are deleted, and every candidate volume is fully decoded
// and CRC-checked — a torn or corrupt volume is discarded (removed), not
// served. Discarding is safe because compaction orders Put (durable
// tmp+rename) strictly before the hot tier's GC: a volume that fails
// validation never had its records trimmed from the hot segments, so no
// data is lost by dropping it.
func OpenArchive(dir string) (*Archive, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: creating archive dir: %w", err)
	}
	a := &Archive{dir: dir}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(dir, name)) // interrupted Put spool
			continue
		}
		if !strings.HasSuffix(name, archiveSuffix) {
			continue
		}
		base := strings.TrimSuffix(name, archiveSuffix)
		firstStr, lastStr, ok := strings.Cut(base, "-")
		if !ok {
			continue
		}
		first, err1 := strconv.ParseUint(firstStr, 10, 64)
		last, err2 := strconv.ParseUint(lastStr, 10, 64)
		if err1 != nil || err2 != nil {
			continue
		}
		vol := archVolume{path: filepath.Join(dir, name), first: first, last: last}
		n, verr := validateVolume(vol)
		if verr != nil {
			os.Remove(vol.path)
			continue
		}
		vol.count = n
		a.volumes = append(a.volumes, vol)
	}
	sort.Slice(a.volumes, func(i, j int) bool { return a.volumes[i].first < a.volumes[j].first })
	return a, nil
}

// validateVolume decodes vol end to end and checks its invariants: strictly
// ascending LIds bracketed exactly by the [first, last] the filename
// claims. Returns the record count, or an error for a volume that must be
// discarded.
func validateVolume(vol archVolume) (int, error) {
	f, err := os.Open(vol.path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var invariant error
	n, prev := 0, uint64(0)
	err = decodeArchiveVolume(f, func(r *core.Record) bool {
		if n == 0 && r.LId != vol.first {
			invariant = fmt.Errorf("storage: archive %s first LId %d != %d", vol.path, r.LId, vol.first)
		}
		if r.LId <= prev {
			invariant = fmt.Errorf("storage: archive %s LIds not ascending at %d", vol.path, r.LId)
		}
		prev = r.LId
		n++
		return invariant == nil
	})
	if err == nil {
		err = invariant
	}
	if err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, fmt.Errorf("storage: archive %s empty", vol.path)
	}
	if prev != vol.last {
		return 0, fmt.Errorf("storage: archive %s last LId %d != %d", vol.path, prev, vol.last)
	}
	return n, nil
}

// Put archives a batch of records as one volume. Records must be sorted by
// LId and non-empty; the volume is fsynced before Put returns.
func (a *Archive) Put(recs []*core.Record) error {
	if len(recs) == 0 {
		return errors.New("storage: empty archive batch")
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].LId <= recs[i-1].LId {
			return errors.New("storage: archive batch not sorted by LId")
		}
	}
	first, last := recs[0].LId, recs[len(recs)-1].LId
	path := filepath.Join(a.dir, fmt.Sprintf("%020d-%020d%s", first, last, archiveSuffix))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("storage: creating archive volume: %w", err)
	}
	// Frame the whole volume in one exactly-presized buffer (header
	// reserved, record encoded in place, length+CRC patched) and write it
	// with a single Write before the fsync.
	total := 0
	for _, r := range recs {
		total += entryHeaderSize + core.EncodedSize(r)
	}
	buf := make([]byte, 0, total)
	for _, r := range recs {
		start := len(buf)
		buf = append(buf, make([]byte, entryHeaderSize)...)
		buf = core.AppendRecord(buf, r)
		payload := buf[start+entryHeaderSize:]
		binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, castagnoli))
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	a.mu.Lock()
	a.volumes = append(a.volumes, archVolume{path: path, first: first, last: last, count: len(recs)})
	sort.Slice(a.volumes, func(i, j int) bool { return a.volumes[i].first < a.volumes[j].first })
	a.mu.Unlock()
	return nil
}

// volumeFor locates the volume that may contain lid.
func (a *Archive) volumeFor(lid uint64) (archVolume, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	i := sort.Search(len(a.volumes), func(i int) bool { return a.volumes[i].last >= lid })
	if i == len(a.volumes) || a.volumes[i].first > lid {
		return archVolume{}, false
	}
	return a.volumes[i], true
}

// Get reads one archived record by LId (a sequential scan of its volume —
// the cold tier trades read speed for storage economy).
func (a *Archive) Get(lid uint64) (*core.Record, error) {
	vol, ok := a.volumeFor(lid)
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNotArchived, lid)
	}
	var found *core.Record
	err := a.scanVolume(vol, func(r *core.Record) bool {
		if r.LId == lid {
			found = r
			return false
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if found == nil {
		return nil, fmt.Errorf("%w: %d (volume gap)", ErrNotArchived, lid)
	}
	return found, nil
}

// Scan iterates archived records with minLId ≤ LId ≤ maxLId (0 = open) in
// ascending order.
func (a *Archive) Scan(minLId, maxLId uint64, fn func(*core.Record) bool) error {
	a.mu.Lock()
	vols := append([]archVolume(nil), a.volumes...)
	a.mu.Unlock()
	for _, vol := range vols {
		if maxLId != 0 && vol.first > maxLId {
			break
		}
		if vol.last < minLId {
			continue
		}
		stop := false
		err := a.scanVolume(vol, func(r *core.Record) bool {
			if r.LId < minLId {
				return true
			}
			if maxLId != 0 && r.LId > maxLId {
				stop = true
				return false
			}
			if !fn(r) {
				stop = true
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

func (a *Archive) scanVolume(vol archVolume, fn func(*core.Record) bool) error {
	f, err := os.Open(vol.path)
	if err != nil {
		return fmt.Errorf("storage: opening archive volume: %w", err)
	}
	defer f.Close()
	if err := decodeArchiveVolume(f, fn); err != nil {
		return fmt.Errorf("storage: archive %s: %w", vol.path, err)
	}
	return nil
}

// maxArchiveEntry caps a single decoded entry's claimed payload length so a
// corrupt length prefix cannot force a giant allocation before the CRC
// check runs. Volumes are written whole from validated records, so a
// legitimate entry is one encoded record — far under this bound.
const maxArchiveEntry = 64 << 20

// decodeArchiveVolume streams the checksummed entry framing of one archive
// volume from r, calling fn for each decoded record until fn returns false
// or the stream ends. A clean EOF on an entry boundary ends the decode; a
// partial header or payload (torn write), a CRC mismatch, an oversized
// length prefix, or an undecodable record is an error — the caller decides
// whether to discard the volume. This is the single decode path for reads,
// open-time validation, and the fuzz target.
func decodeArchiveVolume(r io.Reader, fn func(*core.Record) bool) error {
	hdr := make([]byte, entryHeaderSize)
	// The payload scratch grows but is never handed out: DecodeRecord
	// copies, because fn may retain the record (Get does) after the
	// scratch is overwritten by the next entry.
	var payload []byte
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("torn entry header: %w", err)
		}
		length := binary.LittleEndian.Uint32(hdr)
		wantCRC := binary.LittleEndian.Uint32(hdr[4:])
		if length > maxArchiveEntry {
			return fmt.Errorf("entry length %d exceeds limit", length)
		}
		if uint32(cap(payload)) < length {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(r, payload); err != nil {
			return fmt.Errorf("torn entry payload: %w", err)
		}
		if crc32.Checksum(payload, castagnoli) != wantCRC {
			return errors.New("entry CRC mismatch")
		}
		rec, used, err := core.DecodeRecord(payload)
		if err != nil {
			return err
		}
		if used != len(payload) {
			return fmt.Errorf("entry payload has %d trailing bytes", len(payload)-used)
		}
		if !fn(rec) {
			return nil
		}
	}
}

// Volumes returns the number of archive volumes (introspection).
func (a *Archive) Volumes() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.volumes)
}

// Count returns the total number of archived records.
func (a *Archive) Count() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, v := range a.volumes {
		n += v.count
	}
	return n
}

// MaxArchived returns the highest archived LId (0 if the archive is
// empty) — the tiered store's compaction watermark on recovery.
func (a *Archive) MaxArchived() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var max uint64
	for _, v := range a.volumes {
		if v.last > max {
			max = v.last
		}
	}
	return max
}

// ArchiveThenGC moves the GC-eligible prefix of a store into the archive
// before trimming the hot tier: the §6.1 "keep the log, archive old
// records" policy. It archives records with LId ≤ upTo, then GCs them from
// the store, returning how many were archived.
func ArchiveThenGC(st Store, a *Archive, upTo uint64) (int, error) {
	var batch []*core.Record
	if err := st.Scan(0, upTo, func(r *core.Record) bool {
		batch = append(batch, r)
		return true
	}); err != nil {
		return 0, err
	}
	if len(batch) == 0 {
		return 0, nil
	}
	if err := a.Put(batch); err != nil {
		return 0, err
	}
	if _, err := st.GC(upTo); err != nil {
		return len(batch), fmt.Errorf("storage: archived but GC failed: %w", err)
	}
	return len(batch), nil
}
