package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

func openSeg(t *testing.T, dir string, opts SegmentStoreOptions) *SegmentStore {
	t.Helper()
	s, err := OpenSegmentStore(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSegmentStorePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := openSeg(t, dir, SegmentStoreOptions{Sync: SyncEachBatch})
	for lid := uint64(1); lid <= 20; lid++ {
		if err := s.Append(rec(lid)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openSeg(t, dir, SegmentStoreOptions{})
	defer s2.Close()
	if got := s2.Len(); got != 20 {
		t.Fatalf("recovered Len = %d, want 20", got)
	}
	if got := s2.MaxLId(); got != 20 {
		t.Errorf("recovered MaxLId = %d, want 20", got)
	}
	r, err := s2.Get(13)
	if err != nil {
		t.Fatal(err)
	}
	if string(r.Body) != "body-13" {
		t.Errorf("recovered body = %q", r.Body)
	}
	// New appends after reopen must not collide with recovered state.
	if err := s2.Append(rec(21)); err != nil {
		t.Fatal(err)
	}
	if err := s2.Append(rec(13)); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate after reopen: %v", err)
	}
}

func TestSegmentStoreRotation(t *testing.T) {
	dir := t.TempDir()
	s := openSeg(t, dir, SegmentStoreOptions{MaxSegmentBytes: 256})
	for lid := uint64(1); lid <= 50; lid++ {
		if err := s.Append(rec(lid)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	files, _ := os.ReadDir(dir)
	nseg := 0
	for _, f := range files {
		if strings.HasSuffix(f.Name(), segmentSuffix) {
			nseg++
		}
	}
	if nseg < 2 {
		t.Fatalf("expected rotation to create multiple segments, got %d", nseg)
	}
	// All records must still be readable after rotation + reopen.
	s2 := openSeg(t, dir, SegmentStoreOptions{})
	defer s2.Close()
	if got := s2.Len(); got != 50 {
		t.Errorf("Len after rotation reopen = %d, want 50", got)
	}
}

func TestSegmentStoreTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s := openSeg(t, dir, SegmentStoreOptions{Sync: SyncEachBatch})
	for lid := uint64(1); lid <= 5; lid++ {
		s.Append(rec(lid))
	}
	s.Close()

	// Simulate a crash mid-write: append garbage half-entry to the
	// segment file.
	files, _ := filepath.Glob(filepath.Join(dir, "*"+segmentSuffix))
	if len(files) == 0 {
		t.Fatal("no segment file found")
	}
	f, err := os.OpenFile(files[len(files)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad}) // claims 64-byte entry, truncated
	f.Close()

	s2 := openSeg(t, dir, SegmentStoreOptions{})
	defer s2.Close()
	if got := s2.Len(); got != 5 {
		t.Fatalf("after torn-tail recovery Len = %d, want 5", got)
	}
	// The store must be appendable after truncation.
	if err := s2.Append(rec(6)); err != nil {
		t.Fatal(err)
	}
	if r, err := s2.Get(6); err != nil || string(r.Body) != "body-6" {
		t.Errorf("post-recovery append unreadable: %v", err)
	}
}

func TestSegmentStoreCorruptCRCTruncated(t *testing.T) {
	dir := t.TempDir()
	s := openSeg(t, dir, SegmentStoreOptions{Sync: SyncEachBatch})
	s.Append(rec(1))
	s.Append(rec(2))
	s.Close()

	files, _ := filepath.Glob(filepath.Join(dir, "*"+segmentSuffix))
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the last entry's payload: CRC check must reject it
	// and recovery truncates from there.
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openSeg(t, dir, SegmentStoreOptions{})
	defer s2.Close()
	if got := s2.Len(); got != 1 {
		t.Fatalf("after CRC-corruption recovery Len = %d, want 1", got)
	}
	if _, err := s2.Get(1); err != nil {
		t.Errorf("first record lost: %v", err)
	}
}

// TestSegmentStoreTornBatchFrame crashes the store mid-batch: AppendBatch
// frames the whole batch into one buffer and one Write, so a power cut can
// leave a prefix of that frame on disk — intact entries for the first
// records of the batch, then a torn final entry. Recovery must keep the
// intact prefix (batches are NOT all-or-nothing; the durable unit is the
// entry) and truncate the tear so the position can be rewritten, e.g. by a
// replica catch-up stream replaying the same LIds.
func TestSegmentStoreTornBatchFrame(t *testing.T) {
	// The batch on disk: entries for LIds 4,5,6 appended as one frame after
	// an earlier batch of 1,2,3.
	entrySize := func(lid uint64) int64 { return int64(entryHeaderSize + core.EncodedSize(rec(lid))) }
	for _, tc := range []struct {
		name string
		// tear returns how many bytes of record 6's entry survive the crash.
		tear func() int64
	}{
		{"mid-header", func() int64 { return 3 }},                    // length field itself torn
		{"mid-payload", func() int64 { return entryHeaderSize + 3 }}, // header intact, payload short
		{"payload-minus-one", func() int64 { return entrySize(6) - 1 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s := openSeg(t, dir, SegmentStoreOptions{Sync: SyncEachBatch})
			if err := s.AppendBatch([]*core.Record{rec(1), rec(2), rec(3)}); err != nil {
				t.Fatal(err)
			}
			if err := s.AppendBatch([]*core.Record{rec(4), rec(5), rec(6)}); err != nil {
				t.Fatal(err)
			}
			s.Close()

			files, _ := filepath.Glob(filepath.Join(dir, "*"+segmentSuffix))
			if len(files) != 1 {
				t.Fatalf("expected one segment, got %v", files)
			}
			st, err := os.Stat(files[0])
			if err != nil {
				t.Fatal(err)
			}
			// Cut inside record 6's entry, keeping tc.tear() bytes of it.
			keep := st.Size() - entrySize(6) + tc.tear()
			if err := os.Truncate(files[0], keep); err != nil {
				t.Fatal(err)
			}

			s2 := openSeg(t, dir, SegmentStoreOptions{Sync: SyncEachBatch})
			defer s2.Close()
			// The intact prefix of the torn batch survives...
			if got := s2.Len(); got != 5 {
				t.Fatalf("Len after torn-batch recovery = %d, want 5", got)
			}
			for lid := uint64(1); lid <= 5; lid++ {
				r, err := s2.Get(lid)
				if err != nil {
					t.Fatalf("record %d lost: %v", lid, err)
				}
				if want := fmt.Sprintf("body-%d", lid); string(r.Body) != want {
					t.Errorf("record %d body = %q, want %q", lid, r.Body, want)
				}
			}
			// ...the torn record is gone, and its position is writable again.
			if _, err := s2.Get(6); !errors.Is(err, core.ErrNoSuchRecord) {
				t.Fatalf("Get(6) after tear = %v, want ErrNoSuchRecord", err)
			}
			if err := s2.Append(rec(6)); err != nil {
				t.Fatalf("rewriting torn position: %v", err)
			}
			s2.Close()

			// The rewrite itself must be durable across another reopen.
			s3 := openSeg(t, dir, SegmentStoreOptions{})
			defer s3.Close()
			if got := s3.Len(); got != 6 {
				t.Fatalf("Len after rewrite+reopen = %d, want 6", got)
			}
			if r, err := s3.Get(6); err != nil || string(r.Body) != "body-6" {
				t.Errorf("rewritten record 6 = %v, %v", r, err)
			}
		})
	}
}

func TestSegmentStoreGCWholeSegments(t *testing.T) {
	dir := t.TempDir()
	s := openSeg(t, dir, SegmentStoreOptions{MaxSegmentBytes: 200})
	for lid := uint64(1); lid <= 40; lid++ {
		s.Append(rec(lid))
	}
	removed, err := s.GC(20)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("GC removed nothing despite full segments below frontier")
	}
	// Records above the frontier survive.
	for lid := uint64(21); lid <= 40; lid++ {
		if _, err := s.Get(lid); err != nil {
			t.Fatalf("record %d lost by GC: %v", lid, err)
		}
	}
	// Removed records are really gone.
	if _, err := s.Get(1); !errors.Is(err, core.ErrNoSuchRecord) {
		t.Errorf("Get(1) after GC = %v, want ErrNoSuchRecord", err)
	}
	s.Close()

	// Reopen must tolerate the removed segments.
	s2 := openSeg(t, dir, SegmentStoreOptions{})
	defer s2.Close()
	if _, err := s2.Get(40); err != nil {
		t.Errorf("record 40 lost after GC+reopen: %v", err)
	}
}

func TestSegmentStoreEmptyDirOpens(t *testing.T) {
	s := openSeg(t, t.TempDir(), SegmentStoreOptions{})
	defer s.Close()
	if s.Len() != 0 || s.MaxLId() != 0 {
		t.Error("fresh store not empty")
	}
}

func TestSegmentStoreIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "README.txt"), []byte("hi"), 0o644)
	os.WriteFile(filepath.Join(dir, "junk.seg"), []byte("nonnumeric"), 0o644)
	s := openSeg(t, dir, SegmentStoreOptions{})
	defer s.Close()
	if s.Len() != 0 {
		t.Error("foreign files contaminated recovery")
	}
}

func TestSegmentStoreDoubleCloseIdempotent(t *testing.T) {
	s := openSeg(t, t.TempDir(), SegmentStoreOptions{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}
