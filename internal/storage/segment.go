package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Segment file format: a sequence of entries, each
//
//	u32 length | u32 crc32c(payload) | payload (encoded core.Record)
//
// A torn final entry (crash mid-write) is detected by length/CRC mismatch
// at open time and truncated away. Segment files are named
// "<firstWriteSeq>.seg" where firstWriteSeq is the arrival sequence number
// of the first entry, so lexicographic-by-number order is arrival order.

const (
	entryHeaderSize    = 8
	defaultSegmentSize = 8 << 20 // rotate after 8 MiB
	segmentSuffix      = ".seg"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy controls when the segment store flushes to stable storage.
type SyncPolicy int

const (
	// SyncNever leaves flushing to the OS (fastest; used by the
	// simulation benches where durability is not under test).
	SyncNever SyncPolicy = iota
	// SyncEachBatch fsyncs once per AppendBatch (the paper's maintainers
	// persist records before acknowledging).
	SyncEachBatch
	// SyncGroupCommit coalesces concurrent AppendBatch calls into commit
	// windows: callers enqueue on the open window and a single committer
	// goroutine issues one fsync per window (bounded by GroupWindow and
	// GroupBytes), waking every waiter. N concurrent appenders pay ~1
	// fsync instead of N; AppendBatch still returns only after the
	// caller's records are on stable storage.
	SyncGroupCommit
)

// Group-commit window defaults: a window closes when it has either
// collected defaultGroupBytes of framed entries or aged defaultGroupWindow
// since its first batch, whichever comes first.
const (
	defaultGroupWindow = 2 * time.Millisecond
	defaultGroupBytes  = 1 << 20
)

// windowByteBuckets bound the storage_commit_window_bytes histogram:
// 256 B .. 4 MiB in powers of four.
var windowByteBuckets = []float64{256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304}

// SegmentStoreOptions configures a SegmentStore.
type SegmentStoreOptions struct {
	// MaxSegmentBytes triggers rotation to a new segment file; 0 uses a
	// default of 8 MiB.
	MaxSegmentBytes int64
	// Sync selects the durability policy.
	Sync SyncPolicy
	// GroupWindow is the maximum age of a SyncGroupCommit window: the
	// longest any enqueued batch waits for its group fsync. 0 uses 2ms.
	GroupWindow time.Duration
	// GroupBytes closes a commit window early once it holds this many
	// framed bytes. 0 uses 1 MiB.
	GroupBytes int64
	// FsyncHook, when set, runs immediately before every physical fsync
	// (still holding the store's sync serialization, so the injected
	// latency sits exactly where a slow disk's would). The fault-injection
	// harness uses it to model a degraded disk deterministically.
	FsyncHook func()
}

type segment struct {
	path    string
	first   uint64 // arrival sequence of first entry
	size    int64
	maxLId  uint64 // highest LId stored in this segment
	deleted bool
}

type indexEntry struct {
	seg    *segment
	offset int64
	length int32
}

// recPlacement records where one batch member will land in the active
// segment, so the index is updated only after the write succeeds.
type recPlacement struct {
	rec    *core.Record
	off    int64
	length int32
}

// commitWindow is one SyncGroupCommit fsync group: every AppendBatch that
// lands while the window is open parks on done and resolves with the
// window's single fsync outcome.
type commitWindow struct {
	done    chan struct{} // closed once the window's fsync resolved
	full    chan struct{} // closed when bytes reach GroupBytes (early cut)
	err     error         // fsync outcome; read after done closes
	bytes   int64         // framed bytes enqueued (guarded by store mu)
	waiters int           // batches enqueued (guarded by store mu)
	tc      trace.Ctx     // first sampled batch's context, for the fsync span
}

// SegmentStore is a disk-backed Store: records are appended to rolling
// segment files and located through an in-memory LId index rebuilt on open.
type SegmentStore struct {
	mu       sync.Mutex
	dir      string
	opts     SegmentStoreOptions
	segments []*segment
	active   *os.File
	actSeg   *segment
	index    map[uint64]indexEntry
	lids     []uint64
	sorted   bool
	writeSeq uint64
	max      uint64
	closed   bool

	// dirty marks the active file as holding writes not yet fsynced. The
	// seal path (rotation and Close) syncs only when dirty, so a file
	// whose last batch already synced is never fsynced a second time with
	// no intervening data.
	dirty bool

	// win is the open group-commit window (nil between windows); winKick
	// wakes the committer when a window opens. commStop/commDone manage
	// the committer goroutine's lifetime. syncMu serializes physical
	// fsyncs against the seal path closing the file under them.
	win      *commitWindow
	winKick  chan struct{}
	commStop chan struct{}
	commDone chan struct{}
	syncMu   sync.Mutex

	// fsyncs counts physical fsyncs issued (windows, per-batch syncs, and
	// seals) — the denominator of the fsyncs-per-op budget.
	fsyncs atomic.Uint64

	// encScratch/placeScratch are grow-only batch-encode buffers reused
	// across AppendBatch calls (guarded by mu): the whole batch is framed
	// into one contiguous buffer and written with a single Write.
	encScratch   []byte
	placeScratch []recPlacement

	// fsyncLatency is set by EnableMetrics (nil until then); every
	// physical fsync observes it. winBytesH/winWaitersH record each
	// committed window's size in bytes and batches.
	fsyncLatency *metrics.BucketHistogram
	winBytesH    *metrics.BucketHistogram
	winWaitersH  *metrics.BucketHistogram
}

// FsyncCount returns how many physical fsyncs the store has issued since
// open — the fsync-collapse budget tests and the durability experiment
// read it to compute fsyncs per appended batch.
func (s *SegmentStore) FsyncCount() uint64 { return s.fsyncs.Load() }

// Durable reports whether AppendBatch implies stable storage on return
// (any policy but SyncNever). The maintainer's durable watermark only
// advances over stores that report true.
func (s *SegmentStore) Durable() bool { return s.opts.Sync != SyncNever }

// DiskStats reports the store's on-disk footprint: live (non-deleted)
// segment files and the bytes they hold.
func (s *SegmentStore) DiskStats() (segments int, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, seg := range s.segments {
		segments++
		bytes += seg.size
	}
	return segments, bytes
}

// EnableMetrics registers this store's disk instrumentation with reg: fsync
// latency (the durability cost the paper's maintainers pay before acking),
// live segment count, and bytes on disk. Call before serving traffic; extra
// labels distinguish stores when one process hosts several.
func (s *SegmentStore) EnableMetrics(reg *metrics.Registry, extra ...metrics.Label) {
	s.mu.Lock()
	s.fsyncLatency = reg.Histogram("storage_fsync_seconds", metrics.LatencyBuckets, extra...)
	s.winBytesH = reg.Histogram("storage_commit_window_bytes", windowByteBuckets, extra...)
	s.winWaitersH = reg.Histogram("storage_commit_window_waiters", metrics.BatchBuckets, extra...)
	s.mu.Unlock()
	reg.CounterFunc("storage_fsync_total", func() float64 { return float64(s.fsyncs.Load()) }, extra...)
	reg.GaugeFunc("storage_segments", func() float64 {
		n, _ := s.DiskStats()
		return float64(n)
	}, extra...)
	reg.GaugeFunc("storage_disk_bytes", func() float64 {
		_, b := s.DiskStats()
		return float64(b)
	}, extra...)
	reg.GaugeFunc("storage_records", func() float64 { return float64(s.Len()) }, extra...)
}

// OpenSegmentStore opens (creating if needed) a segment store in dir and
// recovers its index by scanning existing segments, truncating any torn
// tail entry in the most recent segment.
func OpenSegmentStore(dir string, opts SegmentStoreOptions) (*SegmentStore, error) {
	if opts.MaxSegmentBytes <= 0 {
		opts.MaxSegmentBytes = defaultSegmentSize
	}
	if opts.GroupWindow <= 0 {
		opts.GroupWindow = defaultGroupWindow
	}
	if opts.GroupBytes <= 0 {
		opts.GroupBytes = defaultGroupBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: creating dir: %w", err)
	}
	s := &SegmentStore{
		dir:    dir,
		opts:   opts,
		index:  make(map[uint64]indexEntry),
		sorted: true,
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	if opts.Sync == SyncGroupCommit {
		s.winKick = make(chan struct{}, 1)
		s.commStop = make(chan struct{})
		s.commDone = make(chan struct{})
		go s.committer()
	}
	return s, nil
}

func (s *SegmentStore) recover() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("storage: reading dir: %w", err)
	}
	var segs []*segment
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		first, err := strconv.ParseUint(strings.TrimSuffix(name, segmentSuffix), 10, 64)
		if err != nil {
			continue // foreign file; ignore
		}
		segs = append(segs, &segment{path: filepath.Join(s.dir, name), first: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })

	for i, seg := range segs {
		lastSegment := i == len(segs)-1
		if err := s.scanSegment(seg, lastSegment); err != nil {
			return err
		}
		s.segments = append(s.segments, seg)
	}
	return nil
}

// scanSegment reads a segment, populating the index. If truncateTorn is
// set, a malformed tail is truncated rather than treated as corruption.
func (s *SegmentStore) scanSegment(seg *segment, truncateTorn bool) error {
	f, err := os.Open(seg.path)
	if err != nil {
		return fmt.Errorf("storage: opening segment: %w", err)
	}
	defer f.Close()

	var offset int64
	hdr := make([]byte, entryHeaderSize)
	count := seg.first
	// One grow-only payload scratch and one reused Record for the whole
	// scan: indexing needs only the decoded LId, so a zero-copy view into
	// the scratch is enough — nothing past the loop iteration retains it.
	var payload []byte
	var rec core.Record
	finish := func(truncate bool) error {
		seg.size = offset
		if count > s.writeSeq {
			s.writeSeq = count
		}
		if truncate {
			return os.Truncate(seg.path, offset)
		}
		return nil
	}
	for {
		if _, err := io.ReadFull(f, hdr); err != nil {
			if err == io.EOF {
				break
			}
			if errors.Is(err, io.ErrUnexpectedEOF) && truncateTorn {
				return finish(true)
			}
			return fmt.Errorf("storage: segment %s torn header at %d: %w", seg.path, offset, err)
		}
		length := binary.LittleEndian.Uint32(hdr)
		wantCRC := binary.LittleEndian.Uint32(hdr[4:])
		if uint32(cap(payload)) < length {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(f, payload); err != nil {
			if truncateTorn {
				return finish(true)
			}
			return fmt.Errorf("storage: segment %s torn payload at %d: %w", seg.path, offset, err)
		}
		if crc32.Checksum(payload, castagnoli) != wantCRC {
			if truncateTorn {
				return finish(true)
			}
			return fmt.Errorf("storage: segment %s CRC mismatch at %d", seg.path, offset)
		}
		if _, err := core.DecodeRecordView(&rec, payload); err != nil {
			return fmt.Errorf("storage: segment %s undecodable record at %d: %w", seg.path, offset, err)
		}
		s.indexRecord(&rec, seg, offset+entryHeaderSize, int32(length))
		offset += entryHeaderSize + int64(length)
		count++
	}
	return finish(false)
}

func (s *SegmentStore) indexRecord(r *core.Record, seg *segment, off int64, length int32) {
	s.index[r.LId] = indexEntry{seg: seg, offset: off, length: length}
	s.lids = append(s.lids, r.LId)
	if len(s.lids) > 1 && r.LId < s.lids[len(s.lids)-2] {
		s.sorted = false
	}
	if r.LId > s.max {
		s.max = r.LId
	}
	if r.LId > seg.maxLId {
		seg.maxLId = r.LId
	}
}

// fsyncActiveLocked issues one physical fsync on the active file. Caller
// holds mu; the fsync itself is additionally serialized with syncMu so a
// committer-side sync of a detached window never races the file's close.
func (s *SegmentStore) fsyncActiveLocked(tc trace.Ctx) error {
	return s.doFsync(s.active, tc)
}

// doFsync performs the physical fsync on f with full accounting: the
// FsyncHook (fault injection), the fsync counter, and the latency
// histogram. Callers must guarantee f stays open across the call — either
// by holding mu (seal path) or by seal taking syncMu before Close.
func (s *SegmentStore) doFsync(f *os.File, tc trace.Ctx) error {
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	return s.doFsyncSerialized(f, tc)
}

// doFsyncSerialized is doFsync's body; caller holds syncMu.
func (s *SegmentStore) doFsyncSerialized(f *os.File, tc trace.Ctx) error {
	if s.opts.FsyncHook != nil {
		s.opts.FsyncHook()
	}
	fs := trace.Begin(tc, "store.fsync")
	start := time.Now()
	err := f.Sync()
	fs.End(trace.Default(), "", 0, 0)
	s.fsyncs.Add(1)
	if s.fsyncLatency != nil {
		s.fsyncLatency.ObserveSinceEx(start, uint64(tc.T))
	}
	if err != nil {
		return fmt.Errorf("storage: fsync: %w", err)
	}
	return nil
}

// sealWindowLocked completes the open commit window against the active
// file: one fsync if the file is dirty, then every waiter wakes with the
// outcome. Caller holds mu. Used by the seal path (rotation, Close) so a
// window never spans segment files.
func (s *SegmentStore) sealWindowLocked() error {
	w := s.win
	if w == nil {
		return nil
	}
	s.win = nil
	var err error
	if s.dirty && s.active != nil {
		err = s.fsyncActiveLocked(w.tc)
		if err == nil {
			s.dirty = false
		}
	}
	w.err = err
	s.observeWindowLocked(w)
	close(w.done)
	return err
}

// observeWindowLocked records a committed window's size. Caller holds mu.
func (s *SegmentStore) observeWindowLocked(w *commitWindow) {
	if s.winBytesH != nil {
		s.winBytesH.Observe(float64(w.bytes))
	}
	if s.winWaitersH != nil {
		s.winWaitersH.Observe(float64(w.waiters))
	}
}

// sealActiveLocked makes the active file durable (if it holds unsynced
// writes), completes any open commit window, and closes the file — leaving
// the store ready to open the next segment clean, with no redundant fsync
// left for the window committer or the next AppendBatch to repeat.
// Caller holds mu.
func (s *SegmentStore) sealActiveLocked() error {
	if s.active == nil {
		return nil
	}
	err := s.sealWindowLocked()
	if err == nil && s.dirty && s.opts.Sync != SyncNever {
		if err = s.fsyncActiveLocked(trace.Ctx{}); err == nil {
			s.dirty = false
		}
	}
	// Wait out any committer fsync in flight on this handle before
	// closing it (doFsync holds syncMu for the duration).
	s.syncMu.Lock()
	cerr := s.active.Close()
	s.syncMu.Unlock()
	s.active = nil
	if err != nil {
		return err
	}
	return cerr
}

// rotateLocked seals the current active segment and opens a fresh one.
// Caller holds mu.
func (s *SegmentStore) rotateLocked() error {
	if err := s.sealActiveLocked(); err != nil {
		return err
	}
	seg := &segment{
		path:  filepath.Join(s.dir, fmt.Sprintf("%020d%s", s.writeSeq, segmentSuffix)),
		first: s.writeSeq,
	}
	f, err := os.OpenFile(seg.path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("storage: creating segment: %w", err)
	}
	s.active = f
	s.actSeg = seg
	s.dirty = false
	s.segments = append(s.segments, seg)
	return nil
}

// committer is the SyncGroupCommit scheduler: it sleeps until a window
// opens, lets the window collect batches until it is GroupWindow old or
// GroupBytes full, then detaches it and issues the group's single fsync
// outside the store lock — window N's fsync overlaps window N+1's writes.
func (s *SegmentStore) committer() {
	defer close(s.commDone)
	for {
		select {
		case <-s.commStop:
			return
		case <-s.winKick:
		}
		s.mu.Lock()
		w := s.win
		s.mu.Unlock()
		if w == nil {
			continue // sealed by rotation or Close before we woke
		}
		timer := time.NewTimer(s.opts.GroupWindow)
		select {
		case <-timer.C:
		case <-w.full:
			timer.Stop()
		case <-w.done:
			timer.Stop() // seal path committed it
			continue
		case <-s.commStop:
			timer.Stop() // commit what's pending before exiting
		}
		s.commitWindow(w)
	}
}

// commitWindow detaches w (if still open) and fsyncs the active file,
// waking every batch parked on the window. syncMu is acquired before mu
// is released so the seal path (which closes the file under syncMu)
// cannot close the handle between the detach and the fsync; meanwhile
// batches for the *next* window keep appending under mu — window N's
// fsync overlaps window N+1's writes.
func (s *SegmentStore) commitWindow(w *commitWindow) {
	s.mu.Lock()
	if s.win != w {
		s.mu.Unlock()
		return // already completed by the seal path
	}
	s.win = nil
	f := s.active
	dirty := s.dirty
	// Everything written so far is covered by the imminent fsync; batches
	// landing after this point re-dirty the file and join a new window.
	s.dirty = false
	s.observeWindowLocked(w)
	if dirty && f != nil {
		s.syncMu.Lock() // mu → syncMu: same order as the seal path
		s.mu.Unlock()
		w.err = s.doFsyncSerialized(f, w.tc)
		s.syncMu.Unlock()
	} else {
		s.mu.Unlock()
	}
	close(w.done)
}

// joinWindowLocked enqueues a batch of n framed bytes on the open commit
// window (opening one if needed) and returns the window to wait on.
// Caller holds mu.
func (s *SegmentStore) joinWindowLocked(n int64, tc trace.Ctx) *commitWindow {
	w := s.win
	if w == nil {
		w = &commitWindow{done: make(chan struct{}), full: make(chan struct{})}
		s.win = w
		select {
		case s.winKick <- struct{}{}:
		default:
		}
	}
	if !w.tc.Sampled() && tc.Sampled() {
		w.tc = tc
	}
	w.bytes += n
	w.waiters++
	if w.bytes >= s.opts.GroupBytes {
		select {
		case <-w.full:
		default:
			close(w.full)
		}
	}
	return w
}

// Append implements Store.
func (s *SegmentStore) Append(r *core.Record) error {
	return s.AppendBatch([]*core.Record{r})
}

// AppendBatch implements Store. Under SyncGroupCommit the records are
// written and indexed inline but the call returns only after the batch's
// commit window fsyncs, so durability-on-return holds under every sync
// policy except SyncNever.
func (s *SegmentStore) AppendBatch(rs []*core.Record) error {
	s.mu.Lock()
	w, err := s.appendBatchLocked(rs)
	s.mu.Unlock()
	if err != nil || w == nil {
		return err
	}
	<-w.done
	return w.err
}

func (s *SegmentStore) appendBatchLocked(rs []*core.Record) (*commitWindow, error) {
	if s.closed {
		return nil, ErrClosed
	}
	// One trace context covers the whole batch: the first sampled record's
	// (batches are stored together, so their durability cost is shared).
	var tc trace.Ctx
	for _, r := range rs {
		if r.LId == 0 {
			return nil, errors.New("storage: record has no LId")
		}
		if _, ok := s.index[r.LId]; ok {
			return nil, fmt.Errorf("%w: %d", ErrDuplicate, r.LId)
		}
		if !tc.Sampled() && r.Trace.Sampled() {
			tc = r.Trace
		}
	}
	if s.active == nil || s.actSeg.size >= s.opts.MaxSegmentBytes {
		if err := s.rotateLocked(); err != nil {
			return nil, err
		}
	}
	// Frame the whole batch into one reusable buffer: reserve each entry
	// header, encode the record in place behind it, then patch length and
	// CRC — one group write (and at most one fsync) per batch.
	total := 0
	for _, r := range rs {
		total += entryHeaderSize + core.EncodedSize(r)
	}
	if cap(s.encScratch) < total {
		s.encScratch = make([]byte, 0, total)
	}
	if cap(s.placeScratch) < len(rs) {
		s.placeScratch = make([]recPlacement, 0, len(rs))
	}
	buf := s.encScratch[:0]
	placements := s.placeScratch[:0]
	off := s.actSeg.size
	for _, r := range rs {
		start := len(buf)
		buf = append(buf, make([]byte, entryHeaderSize)...)
		buf = core.AppendRecord(buf, r)
		payload := buf[start+entryHeaderSize:]
		binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, castagnoli))
		placements = append(placements, recPlacement{rec: r, off: off + entryHeaderSize, length: int32(len(payload))})
		off += entryHeaderSize + int64(len(payload))
	}
	s.encScratch, s.placeScratch = buf, placements
	wr := trace.Begin(tc, "store.write")
	if _, err := s.active.Write(buf); err != nil {
		return nil, fmt.Errorf("storage: writing batch: %w", err)
	}
	wr.End(trace.Default(), "", rs[0].LId, len(rs))
	if s.opts.Sync == SyncEachBatch {
		if err := s.fsyncActiveLocked(tc); err != nil {
			return nil, err
		}
		s.dirty = false
	} else {
		s.dirty = true
	}
	s.actSeg.size = off
	for _, p := range placements {
		s.indexRecord(p.rec, s.actSeg, p.off, p.length)
	}
	s.writeSeq += uint64(len(rs))
	if s.opts.Sync == SyncGroupCommit {
		return s.joinWindowLocked(int64(len(buf)), tc), nil
	}
	return nil, nil
}

// readAt fetches and decodes one indexed entry.
func (s *SegmentStore) readAt(e indexEntry) (*core.Record, error) {
	f, err := os.Open(e.seg.path)
	if err != nil {
		return nil, fmt.Errorf("storage: opening segment for read: %w", err)
	}
	defer f.Close()
	payload := make([]byte, e.length)
	if _, err := f.ReadAt(payload, e.offset); err != nil {
		return nil, fmt.Errorf("storage: reading entry: %w", err)
	}
	rec, _, err := core.DecodeRecord(payload)
	return rec, err
}

// Get implements Store.
func (s *SegmentStore) Get(lid uint64) (*core.Record, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	e, ok := s.index[lid]
	s.mu.Unlock()
	if !ok {
		return nil, core.ErrNoSuchRecord
	}
	return s.readAt(e)
}

// Scan implements Store.
func (s *SegmentStore) Scan(minLId, maxLId uint64, fn func(*core.Record) bool) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if !s.sorted {
		sort.Slice(s.lids, func(i, j int) bool { return s.lids[i] < s.lids[j] })
		s.sorted = true
	}
	i := sort.Search(len(s.lids), func(i int) bool { return s.lids[i] >= minLId })
	var window []indexEntry
	for ; i < len(s.lids); i++ {
		lid := s.lids[i]
		if maxLId != 0 && lid > maxLId {
			break
		}
		window = append(window, s.index[lid])
	}
	s.mu.Unlock()
	for _, e := range window {
		rec, err := s.readAt(e)
		if err != nil {
			return err
		}
		if !fn(rec) {
			return nil
		}
	}
	return nil
}

// MaxLId implements Store.
func (s *SegmentStore) MaxLId() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.max
}

// Len implements Store.
func (s *SegmentStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// GC implements Store. Removal is whole-segment: a segment is deleted only
// when every record in it has LId ≤ upTo and it is not the active segment.
func (s *SegmentStore) GC(upTo uint64) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	keep := s.segments[:0]
	for _, seg := range s.segments {
		if seg != s.actSeg && seg.maxLId != 0 && seg.maxLId <= upTo {
			if err := os.Remove(seg.path); err != nil {
				return 0, fmt.Errorf("storage: removing segment: %w", err)
			}
			seg.deleted = true
			continue
		}
		keep = append(keep, seg)
	}
	s.segments = keep
	return s.dropDeletedFromIndex(), nil
}

// dropDeletedFromIndex prunes index entries whose segment was deleted.
// Caller holds mu.
func (s *SegmentStore) dropDeletedFromIndex() int {
	removed := 0
	keep := s.lids[:0]
	for _, lid := range s.lids {
		if e := s.index[lid]; e.seg.deleted {
			delete(s.index, lid)
			removed++
			continue
		}
		keep = append(keep, lid)
	}
	s.lids = keep
	return removed
}

// Close implements Store. Any open commit window is completed (durably)
// before the committer goroutine is stopped, so no AppendBatch caller is
// left parked on a window that will never fsync.
func (s *SegmentStore) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.sealActiveLocked()
	s.mu.Unlock()
	if s.commStop != nil {
		close(s.commStop)
		<-s.commDone
	}
	return err
}
