package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Segment file format: a sequence of entries, each
//
//	u32 length | u32 crc32c(payload) | payload (encoded core.Record)
//
// A torn final entry (crash mid-write) is detected by length/CRC mismatch
// at open time and truncated away. Segment files are named
// "<firstWriteSeq>.seg" where firstWriteSeq is the arrival sequence number
// of the first entry, so lexicographic-by-number order is arrival order.

const (
	entryHeaderSize    = 8
	defaultSegmentSize = 8 << 20 // rotate after 8 MiB
	segmentSuffix      = ".seg"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy controls when the segment store flushes to stable storage.
type SyncPolicy int

const (
	// SyncNever leaves flushing to the OS (fastest; used by the
	// simulation benches where durability is not under test).
	SyncNever SyncPolicy = iota
	// SyncEachBatch fsyncs once per AppendBatch (the paper's maintainers
	// persist records before acknowledging).
	SyncEachBatch
)

// SegmentStoreOptions configures a SegmentStore.
type SegmentStoreOptions struct {
	// MaxSegmentBytes triggers rotation to a new segment file; 0 uses a
	// default of 8 MiB.
	MaxSegmentBytes int64
	// Sync selects the durability policy.
	Sync SyncPolicy
}

type segment struct {
	path    string
	first   uint64 // arrival sequence of first entry
	size    int64
	maxLId  uint64 // highest LId stored in this segment
	deleted bool
}

type indexEntry struct {
	seg    *segment
	offset int64
	length int32
}

// recPlacement records where one batch member will land in the active
// segment, so the index is updated only after the write succeeds.
type recPlacement struct {
	rec    *core.Record
	off    int64
	length int32
}

// SegmentStore is a disk-backed Store: records are appended to rolling
// segment files and located through an in-memory LId index rebuilt on open.
type SegmentStore struct {
	mu       sync.Mutex
	dir      string
	opts     SegmentStoreOptions
	segments []*segment
	active   *os.File
	actSeg   *segment
	index    map[uint64]indexEntry
	lids     []uint64
	sorted   bool
	writeSeq uint64
	max      uint64
	closed   bool

	// encScratch/placeScratch are grow-only batch-encode buffers reused
	// across AppendBatch calls (guarded by mu): the whole batch is framed
	// into one contiguous buffer and written with a single Write.
	encScratch   []byte
	placeScratch []recPlacement

	// fsyncLatency is set by EnableMetrics (nil until then); AppendBatch
	// observes each Sync when present.
	fsyncLatency *metrics.BucketHistogram
}

// DiskStats reports the store's on-disk footprint: live (non-deleted)
// segment files and the bytes they hold.
func (s *SegmentStore) DiskStats() (segments int, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, seg := range s.segments {
		segments++
		bytes += seg.size
	}
	return segments, bytes
}

// EnableMetrics registers this store's disk instrumentation with reg: fsync
// latency (the durability cost the paper's maintainers pay before acking),
// live segment count, and bytes on disk. Call before serving traffic; extra
// labels distinguish stores when one process hosts several.
func (s *SegmentStore) EnableMetrics(reg *metrics.Registry, extra ...metrics.Label) {
	s.mu.Lock()
	s.fsyncLatency = reg.Histogram("storage_fsync_seconds", metrics.LatencyBuckets, extra...)
	s.mu.Unlock()
	reg.GaugeFunc("storage_segments", func() float64 {
		n, _ := s.DiskStats()
		return float64(n)
	}, extra...)
	reg.GaugeFunc("storage_disk_bytes", func() float64 {
		_, b := s.DiskStats()
		return float64(b)
	}, extra...)
	reg.GaugeFunc("storage_records", func() float64 { return float64(s.Len()) }, extra...)
}

// OpenSegmentStore opens (creating if needed) a segment store in dir and
// recovers its index by scanning existing segments, truncating any torn
// tail entry in the most recent segment.
func OpenSegmentStore(dir string, opts SegmentStoreOptions) (*SegmentStore, error) {
	if opts.MaxSegmentBytes <= 0 {
		opts.MaxSegmentBytes = defaultSegmentSize
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: creating dir: %w", err)
	}
	s := &SegmentStore{
		dir:    dir,
		opts:   opts,
		index:  make(map[uint64]indexEntry),
		sorted: true,
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *SegmentStore) recover() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("storage: reading dir: %w", err)
	}
	var segs []*segment
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		first, err := strconv.ParseUint(strings.TrimSuffix(name, segmentSuffix), 10, 64)
		if err != nil {
			continue // foreign file; ignore
		}
		segs = append(segs, &segment{path: filepath.Join(s.dir, name), first: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })

	for i, seg := range segs {
		lastSegment := i == len(segs)-1
		if err := s.scanSegment(seg, lastSegment); err != nil {
			return err
		}
		s.segments = append(s.segments, seg)
	}
	return nil
}

// scanSegment reads a segment, populating the index. If truncateTorn is
// set, a malformed tail is truncated rather than treated as corruption.
func (s *SegmentStore) scanSegment(seg *segment, truncateTorn bool) error {
	f, err := os.Open(seg.path)
	if err != nil {
		return fmt.Errorf("storage: opening segment: %w", err)
	}
	defer f.Close()

	var offset int64
	hdr := make([]byte, entryHeaderSize)
	count := seg.first
	// One grow-only payload scratch and one reused Record for the whole
	// scan: indexing needs only the decoded LId, so a zero-copy view into
	// the scratch is enough — nothing past the loop iteration retains it.
	var payload []byte
	var rec core.Record
	finish := func(truncate bool) error {
		seg.size = offset
		if count > s.writeSeq {
			s.writeSeq = count
		}
		if truncate {
			return os.Truncate(seg.path, offset)
		}
		return nil
	}
	for {
		if _, err := io.ReadFull(f, hdr); err != nil {
			if err == io.EOF {
				break
			}
			if errors.Is(err, io.ErrUnexpectedEOF) && truncateTorn {
				return finish(true)
			}
			return fmt.Errorf("storage: segment %s torn header at %d: %w", seg.path, offset, err)
		}
		length := binary.LittleEndian.Uint32(hdr)
		wantCRC := binary.LittleEndian.Uint32(hdr[4:])
		if uint32(cap(payload)) < length {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(f, payload); err != nil {
			if truncateTorn {
				return finish(true)
			}
			return fmt.Errorf("storage: segment %s torn payload at %d: %w", seg.path, offset, err)
		}
		if crc32.Checksum(payload, castagnoli) != wantCRC {
			if truncateTorn {
				return finish(true)
			}
			return fmt.Errorf("storage: segment %s CRC mismatch at %d", seg.path, offset)
		}
		if _, err := core.DecodeRecordView(&rec, payload); err != nil {
			return fmt.Errorf("storage: segment %s undecodable record at %d: %w", seg.path, offset, err)
		}
		s.indexRecord(&rec, seg, offset+entryHeaderSize, int32(length))
		offset += entryHeaderSize + int64(length)
		count++
	}
	return finish(false)
}

func (s *SegmentStore) indexRecord(r *core.Record, seg *segment, off int64, length int32) {
	s.index[r.LId] = indexEntry{seg: seg, offset: off, length: length}
	s.lids = append(s.lids, r.LId)
	if len(s.lids) > 1 && r.LId < s.lids[len(s.lids)-2] {
		s.sorted = false
	}
	if r.LId > s.max {
		s.max = r.LId
	}
	if r.LId > seg.maxLId {
		seg.maxLId = r.LId
	}
}

// rotateLocked opens a fresh active segment. Caller holds mu.
func (s *SegmentStore) rotateLocked() error {
	if s.active != nil {
		if err := s.active.Close(); err != nil {
			return err
		}
		s.active = nil
	}
	seg := &segment{
		path:  filepath.Join(s.dir, fmt.Sprintf("%020d%s", s.writeSeq, segmentSuffix)),
		first: s.writeSeq,
	}
	f, err := os.OpenFile(seg.path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("storage: creating segment: %w", err)
	}
	s.active = f
	s.actSeg = seg
	s.segments = append(s.segments, seg)
	return nil
}

// Append implements Store.
func (s *SegmentStore) Append(r *core.Record) error {
	return s.AppendBatch([]*core.Record{r})
}

// AppendBatch implements Store.
func (s *SegmentStore) AppendBatch(rs []*core.Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	// One trace context covers the whole batch: the first sampled record's
	// (batches are stored together, so their durability cost is shared).
	var tc trace.Ctx
	for _, r := range rs {
		if r.LId == 0 {
			return errors.New("storage: record has no LId")
		}
		if _, ok := s.index[r.LId]; ok {
			return fmt.Errorf("%w: %d", ErrDuplicate, r.LId)
		}
		if !tc.Sampled() && r.Trace.Sampled() {
			tc = r.Trace
		}
	}
	if s.active == nil || s.actSeg.size >= s.opts.MaxSegmentBytes {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	// Frame the whole batch into one reusable buffer: reserve each entry
	// header, encode the record in place behind it, then patch length and
	// CRC — one group write (and at most one fsync) per batch.
	total := 0
	for _, r := range rs {
		total += entryHeaderSize + core.EncodedSize(r)
	}
	if cap(s.encScratch) < total {
		s.encScratch = make([]byte, 0, total)
	}
	if cap(s.placeScratch) < len(rs) {
		s.placeScratch = make([]recPlacement, 0, len(rs))
	}
	buf := s.encScratch[:0]
	placements := s.placeScratch[:0]
	off := s.actSeg.size
	for _, r := range rs {
		start := len(buf)
		buf = append(buf, make([]byte, entryHeaderSize)...)
		buf = core.AppendRecord(buf, r)
		payload := buf[start+entryHeaderSize:]
		binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, castagnoli))
		placements = append(placements, recPlacement{rec: r, off: off + entryHeaderSize, length: int32(len(payload))})
		off += entryHeaderSize + int64(len(payload))
	}
	s.encScratch, s.placeScratch = buf, placements
	wr := trace.Begin(tc, "store.write")
	if _, err := s.active.Write(buf); err != nil {
		return fmt.Errorf("storage: writing batch: %w", err)
	}
	wr.End(trace.Default(), "", rs[0].LId, len(rs))
	if s.opts.Sync == SyncEachBatch {
		fs := trace.Begin(tc, "store.fsync")
		start := time.Now()
		if err := s.active.Sync(); err != nil {
			return fmt.Errorf("storage: fsync: %w", err)
		}
		fs.End(trace.Default(), "", rs[0].LId, len(rs))
		if s.fsyncLatency != nil {
			s.fsyncLatency.ObserveSinceEx(start, uint64(tc.T))
		}
	}
	s.actSeg.size = off
	for _, p := range placements {
		s.indexRecord(p.rec, s.actSeg, p.off, p.length)
	}
	s.writeSeq += uint64(len(rs))
	return nil
}

// readAt fetches and decodes one indexed entry.
func (s *SegmentStore) readAt(e indexEntry) (*core.Record, error) {
	f, err := os.Open(e.seg.path)
	if err != nil {
		return nil, fmt.Errorf("storage: opening segment for read: %w", err)
	}
	defer f.Close()
	payload := make([]byte, e.length)
	if _, err := f.ReadAt(payload, e.offset); err != nil {
		return nil, fmt.Errorf("storage: reading entry: %w", err)
	}
	rec, _, err := core.DecodeRecord(payload)
	return rec, err
}

// Get implements Store.
func (s *SegmentStore) Get(lid uint64) (*core.Record, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	e, ok := s.index[lid]
	s.mu.Unlock()
	if !ok {
		return nil, core.ErrNoSuchRecord
	}
	return s.readAt(e)
}

// Scan implements Store.
func (s *SegmentStore) Scan(minLId, maxLId uint64, fn func(*core.Record) bool) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if !s.sorted {
		sort.Slice(s.lids, func(i, j int) bool { return s.lids[i] < s.lids[j] })
		s.sorted = true
	}
	i := sort.Search(len(s.lids), func(i int) bool { return s.lids[i] >= minLId })
	var window []indexEntry
	for ; i < len(s.lids); i++ {
		lid := s.lids[i]
		if maxLId != 0 && lid > maxLId {
			break
		}
		window = append(window, s.index[lid])
	}
	s.mu.Unlock()
	for _, e := range window {
		rec, err := s.readAt(e)
		if err != nil {
			return err
		}
		if !fn(rec) {
			return nil
		}
	}
	return nil
}

// MaxLId implements Store.
func (s *SegmentStore) MaxLId() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.max
}

// Len implements Store.
func (s *SegmentStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// GC implements Store. Removal is whole-segment: a segment is deleted only
// when every record in it has LId ≤ upTo and it is not the active segment.
func (s *SegmentStore) GC(upTo uint64) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	keep := s.segments[:0]
	for _, seg := range s.segments {
		if seg != s.actSeg && seg.maxLId != 0 && seg.maxLId <= upTo {
			if err := os.Remove(seg.path); err != nil {
				return 0, fmt.Errorf("storage: removing segment: %w", err)
			}
			seg.deleted = true
			continue
		}
		keep = append(keep, seg)
	}
	s.segments = keep
	return s.dropDeletedFromIndex(), nil
}

// dropDeletedFromIndex prunes index entries whose segment was deleted.
// Caller holds mu.
func (s *SegmentStore) dropDeletedFromIndex() int {
	removed := 0
	keep := s.lids[:0]
	for _, lid := range s.lids {
		if e := s.index[lid]; e.seg.deleted {
			delete(s.index, lid)
			removed++
			continue
		}
		keep = append(keep, lid)
	}
	s.lids = keep
	return removed
}

// Close implements Store.
func (s *SegmentStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.active != nil {
		if s.opts.Sync != SyncNever {
			if err := s.active.Sync(); err != nil {
				s.active.Close()
				return err
			}
		}
		return s.active.Close()
	}
	return nil
}
