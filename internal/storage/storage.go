// Package storage implements the persistence substrate of a log
// maintainer: an append-only, segment-file store of log records keyed by
// LId, with checksummed entries, torn-write recovery, and whole-segment
// garbage collection.
//
// A maintainer owns sparse, deterministic ranges of the datacenter's log
// (round-robin rounds of BatchSize positions, §5.2), so the store indexes
// records by LId rather than assuming contiguity: entries are written in
// arrival order and an in-memory index maps LId → (segment, offset).
package storage

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
)

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("storage: store is closed")

// ErrDuplicate is returned when appending a record whose LId is already
// present. Log records are immutable; a duplicate append is a protocol
// error upstream.
var ErrDuplicate = errors.New("storage: duplicate LId")

// Store is the persistence interface a log maintainer programs against.
// Implementations must be safe for concurrent use.
type Store interface {
	// Append durably adds a record (the record must carry a nonzero
	// LId). Appending an LId that already exists fails with
	// ErrDuplicate.
	Append(r *core.Record) error
	// AppendBatch adds many records with one durability point.
	AppendBatch(rs []*core.Record) error
	// Get returns the record at lid, or core.ErrNoSuchRecord.
	Get(lid uint64) (*core.Record, error)
	// Scan calls fn for each stored record with minLId ≤ LId ≤ maxLId
	// (maxLId 0 = unbounded) in ascending LId order; fn returning false
	// stops the scan.
	Scan(minLId, maxLId uint64, fn func(*core.Record) bool) error
	// MaxLId returns the highest LId stored, or 0 if empty.
	MaxLId() uint64
	// Len returns the number of stored records.
	Len() int
	// GC removes records with LId ≤ upTo that are safe to drop,
	// returning how many were removed. Implementations may retain more
	// than asked (e.g. whole-segment granularity).
	GC(upTo uint64) (int, error)
	// Close releases resources; further operations fail with ErrClosed.
	Close() error
}

// MemStore is an in-memory Store used by simulations and as the index tier
// of the segment store. The zero value is not ready; use NewMemStore.
type MemStore struct {
	mu     sync.RWMutex
	byLId  map[uint64]*core.Record
	lids   []uint64 // sorted
	sorted bool
	closed bool
	max    uint64
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{byLId: make(map[uint64]*core.Record), sorted: true}
}

// Append implements Store.
func (s *MemStore) Append(r *core.Record) error {
	return s.AppendBatch([]*core.Record{r})
}

// AppendBatch implements Store.
func (s *MemStore) AppendBatch(rs []*core.Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	for _, r := range rs {
		if r.LId == 0 {
			return errors.New("storage: record has no LId")
		}
		if _, ok := s.byLId[r.LId]; ok {
			return fmt.Errorf("%w: %d", ErrDuplicate, r.LId)
		}
	}
	for _, r := range rs {
		s.byLId[r.LId] = r
		s.lids = append(s.lids, r.LId)
		if len(s.lids) > 1 && r.LId < s.lids[len(s.lids)-2] {
			s.sorted = false
		}
		if r.LId > s.max {
			s.max = r.LId
		}
	}
	return nil
}

// Get implements Store.
func (s *MemStore) Get(lid uint64) (*core.Record, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	r, ok := s.byLId[lid]
	if !ok {
		return nil, core.ErrNoSuchRecord
	}
	return r, nil
}

// ensureSortedLocked sorts the lid slice if appends arrived out of order.
// Caller must hold the write lock or guarantee exclusion.
func (s *MemStore) ensureSorted() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.sorted {
		sort.Slice(s.lids, func(i, j int) bool { return s.lids[i] < s.lids[j] })
		s.sorted = true
	}
}

// Scan implements Store.
func (s *MemStore) Scan(minLId, maxLId uint64, fn func(*core.Record) bool) error {
	s.ensureSorted()
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrClosed
	}
	// Copy the window so fn runs without the lock held.
	i := sort.Search(len(s.lids), func(i int) bool { return s.lids[i] >= minLId })
	var window []*core.Record
	for ; i < len(s.lids); i++ {
		lid := s.lids[i]
		if maxLId != 0 && lid > maxLId {
			break
		}
		window = append(window, s.byLId[lid])
	}
	s.mu.RUnlock()
	for _, r := range window {
		if !fn(r) {
			return nil
		}
	}
	return nil
}

// MaxLId implements Store.
func (s *MemStore) MaxLId() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.max
}

// Len implements Store.
func (s *MemStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byLId)
}

// GC implements Store.
func (s *MemStore) GC(upTo uint64) (int, error) {
	s.ensureSorted()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	n := sort.Search(len(s.lids), func(i int) bool { return s.lids[i] > upTo })
	for _, lid := range s.lids[:n] {
		delete(s.byLId, lid)
	}
	s.lids = append([]uint64(nil), s.lids[n:]...)
	return n, nil
}

// Close implements Store.
func (s *MemStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}
