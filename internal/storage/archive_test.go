package storage

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
)

func archRecs(from, to uint64) []*core.Record {
	var out []*core.Record
	for lid := from; lid <= to; lid++ {
		out = append(out, rec(lid))
	}
	return out
}

func TestArchivePutGet(t *testing.T) {
	a, err := OpenArchive(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Put(archRecs(1, 10)); err != nil {
		t.Fatal(err)
	}
	r, err := a.Get(7)
	if err != nil {
		t.Fatal(err)
	}
	if string(r.Body) != "body-7" {
		t.Errorf("body = %q", r.Body)
	}
	if _, err := a.Get(11); !errors.Is(err, ErrNotArchived) {
		t.Errorf("Get(11) = %v, want ErrNotArchived", err)
	}
	if _, err := a.Get(0); !errors.Is(err, ErrNotArchived) {
		t.Errorf("Get(0) = %v", err)
	}
}

func TestArchiveMultipleVolumes(t *testing.T) {
	a, _ := OpenArchive(t.TempDir())
	a.Put(archRecs(1, 5))
	a.Put(archRecs(6, 12))
	a.Put(archRecs(13, 20))
	if a.Volumes() != 3 {
		t.Fatalf("Volumes = %d", a.Volumes())
	}
	for lid := uint64(1); lid <= 20; lid++ {
		if _, err := a.Get(lid); err != nil {
			t.Fatalf("Get(%d): %v", lid, err)
		}
	}
}

func TestArchiveScanRange(t *testing.T) {
	a, _ := OpenArchive(t.TempDir())
	a.Put(archRecs(1, 10))
	a.Put(archRecs(11, 20))
	var got []uint64
	if err := a.Scan(8, 14, func(r *core.Record) bool {
		got = append(got, r.LId)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 || got[0] != 8 || got[6] != 14 {
		t.Errorf("Scan(8,14) = %v", got)
	}
	// Early stop.
	n := 0
	a.Scan(0, 0, func(*core.Record) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestArchiveSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	a, _ := OpenArchive(dir)
	a.Put(archRecs(1, 8))

	a2, err := OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	if a2.Volumes() != 1 {
		t.Fatalf("recovered %d volumes", a2.Volumes())
	}
	r, err := a2.Get(3)
	if err != nil || string(r.Body) != "body-3" {
		t.Errorf("Get after reopen: %v %v", r, err)
	}
}

func TestArchivePutValidation(t *testing.T) {
	a, _ := OpenArchive(t.TempDir())
	if err := a.Put(nil); err == nil {
		t.Error("empty batch accepted")
	}
	if err := a.Put([]*core.Record{rec(5), rec(3)}); err == nil {
		t.Error("unsorted batch accepted")
	}
	if err := a.Put([]*core.Record{rec(5), rec(5)}); err == nil {
		t.Error("duplicate LIds accepted")
	}
}

func TestArchiveThenGC(t *testing.T) {
	st := NewMemStore()
	defer st.Close()
	for lid := uint64(1); lid <= 30; lid++ {
		st.Append(rec(lid))
	}
	a, _ := OpenArchive(t.TempDir())
	n, err := ArchiveThenGC(st, a, 20)
	if err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Errorf("archived %d, want 20", n)
	}
	// Hot tier keeps the tail only.
	if st.Len() != 10 {
		t.Errorf("hot tier has %d records, want 10", st.Len())
	}
	// History remains readable through the archive.
	for lid := uint64(1); lid <= 20; lid++ {
		r, err := a.Get(lid)
		if err != nil {
			t.Fatalf("archived record %d lost: %v", lid, err)
		}
		if want := fmt.Sprintf("body-%d", lid); string(r.Body) != want {
			t.Errorf("archived %d body = %q", lid, r.Body)
		}
	}
	// Archiving nothing is a no-op.
	if n, err := ArchiveThenGC(st, a, 20); err != nil || n != 0 {
		t.Errorf("re-archive = %d, %v", n, err)
	}
}

func TestArchiveWithSegmentStore(t *testing.T) {
	dir := t.TempDir()
	st := openSeg(t, dir+"/hot", SegmentStoreOptions{MaxSegmentBytes: 256})
	defer st.Close()
	for lid := uint64(1); lid <= 40; lid++ {
		st.Append(rec(lid))
	}
	a, _ := OpenArchive(dir + "/cold")
	n, err := ArchiveThenGC(st, a, 25)
	if err != nil {
		t.Fatal(err)
	}
	if n != 25 {
		t.Fatalf("archived %d", n)
	}
	// Segment GC is whole-segment so some of the prefix may survive in
	// the hot tier; every position must be readable from one tier or
	// the other.
	for lid := uint64(1); lid <= 40; lid++ {
		if _, err := st.Get(lid); err == nil {
			continue
		}
		if _, err := a.Get(lid); err != nil {
			t.Fatalf("record %d lost from both tiers: %v", lid, err)
		}
	}
}
