package scale

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/chariots"
	"repro/internal/core"
	"repro/internal/faultinject"
)

// LinkProfile describes one direction of an emulated WAN path between two
// datacenters: a base one-way propagation delay, a deterministic uniform
// jitter component on top of it, and an independent per-delivery loss
// probability. A lost delivery surfaces to the sender as an error (the
// TCP-session-died model faultinject uses), so the awareness table never
// advances past it and a later Resync re-ships the records.
type LinkProfile struct {
	OneWay time.Duration `json:"one_way"`
	Jitter time.Duration `json:"jitter"`
	LossP  float64       `json:"loss_p"`
}

// Topology is the per-DC-pair link matrix: Default applies to every
// ordered pair unless an override is present.
type Topology struct {
	DCs       int
	Default   LinkProfile
	Overrides map[[2]int]LinkProfile
}

// Profile returns the link profile for the ordered pair (from, to).
func (t Topology) Profile(from, to int) LinkProfile {
	if p, ok := t.Overrides[[2]int{from, to}]; ok {
		return p
	}
	return t.Default
}

// LinkName is the canonical faultinject link name for the ordered
// datacenter pair — "dc0->dc1" — shared by the schedule, the event log,
// and the delay sequences.
func LinkName(from, to int) string { return fmt.Sprintf("dc%d->dc%d", from, to) }

// WAN layers a topology's LinkProfiles over one faultinject.Controller:
// every inter-datacenter delivery asks the controller for its seeded
// outcome (delay+jitter, loss, severed), so the whole emulation — the
// probabilistic schedule AND the scripted partition/heal events — lands on
// one replayable event log with one Fingerprint.
type WAN struct {
	ctl   *faultinject.Controller
	topo  Topology
	links []*wanLink
}

// NewWAN builds the controller and installs every ordered pair's link
// options. The same (seed, topology) yields the same per-link delay and
// loss sequences on every run.
func NewWAN(seed uint64, topo Topology) *WAN {
	ctl := faultinject.New(faultinject.Options{Seed: seed})
	for i := 0; i < topo.DCs; i++ {
		for j := 0; j < topo.DCs; j++ {
			if i == j {
				continue
			}
			p := topo.Profile(i, j)
			lo := faultinject.LinkOptions{DropP: p.LossP}
			if p.OneWay > 0 || p.Jitter > 0 {
				lo.DelayP = 1
				lo.Delay = p.OneWay
				lo.Jitter = p.Jitter
			}
			ctl.SetLink(LinkName(i, j), lo)
		}
	}
	return &WAN{ctl: ctl, topo: topo}
}

// Controller exposes the underlying faultinject controller (event log,
// Fingerprint, Delays, scripted Sever/Heal).
func (w *WAN) Controller() *faultinject.Controller { return w.ctl }

// Connect wires started datacenters all-to-all through emulated links,
// replacing the direct receiver handles chariots would otherwise use.
func (w *WAN) Connect(dcs []*chariots.Datacenter) {
	for i, from := range dcs {
		for j, to := range dcs {
			if i == j {
				continue
			}
			rxs := to.Receivers()
			wrapped := make([]chariots.ReceiverAPI, len(rxs))
			for k, rx := range rxs {
				l := newWANLink(w.ctl, LinkName(i, j), rx)
				w.links = append(w.links, l)
				wrapped[k] = l
			}
			from.ConnectTo(core.DCID(j), wrapped)
		}
	}
}

// Partition severs both directions between a DC pair.
func (w *WAN) Partition(a, b int) {
	w.ctl.Sever(LinkName(a, b))
	w.ctl.Sever(LinkName(b, a))
}

// HealPair restores both directions between a DC pair.
func (w *WAN) HealPair(a, b int) {
	w.ctl.Heal(LinkName(a, b))
	w.ctl.Heal(LinkName(b, a))
}

// Close stops every link pump, dropping undelivered snapshots.
func (w *WAN) Close() {
	for _, l := range w.links {
		l.close()
	}
}

// wanLink applies one link's schedule to the chariots delivery path. Like
// a TCP connection, delivery is FIFO: a serial pump holds each snapshot
// for its resolved delay before handing it to the real receiver, so a
// short delay behind a long one queues (head-of-line) rather than
// reordering.
type wanLink struct {
	ctl  *faultinject.Controller
	name string
	dst  chariots.ReceiverAPI
	ch   chan delayedSnap
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

type delayedSnap struct {
	at   time.Time
	snap chariots.Snapshot
}

func newWANLink(ctl *faultinject.Controller, name string, dst chariots.ReceiverAPI) *wanLink {
	l := &wanLink{
		ctl:  ctl,
		name: name,
		dst:  dst,
		ch:   make(chan delayedSnap, 1<<12),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go l.pump()
	return l
}

// Deliver implements chariots.ReceiverAPI.
func (l *wanLink) Deliver(snap chariots.Snapshot) error {
	out := l.ctl.Next(l.name)
	switch out.Action {
	case faultinject.ActionReject:
		return fmt.Errorf("%w: %s", faultinject.ErrSevered, l.name)
	case faultinject.ActionDrop:
		return fmt.Errorf("%w: %s", faultinject.ErrDropped, l.name)
	}
	ds := delayedSnap{at: time.Now().Add(out.Delay), snap: snap}
	sends := 1
	if out.Action == faultinject.ActionDup {
		sends = 2
	}
	for i := 0; i < sends; i++ {
		select {
		case l.ch <- ds:
		case <-l.stop:
			return nil
		}
	}
	return nil
}

func (l *wanLink) pump() {
	defer close(l.done)
	for {
		select {
		case <-l.stop:
			return
		case ds := <-l.ch:
			if wait := time.Until(ds.at); wait > 0 {
				t := time.NewTimer(wait)
				select {
				case <-l.stop:
					t.Stop()
					return
				case <-t.C:
				}
			}
			l.dst.Deliver(ds.snap)
		}
	}
}

func (l *wanLink) close() {
	l.once.Do(func() { close(l.stop) })
	<-l.done
}
