package scale

import (
	"fmt"
	"hash/fnv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/chariots"
	"repro/internal/core"
	"repro/internal/flstore"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Options resizes a scenario for a particular invocation (smoke runs
// shrink Sessions/TargetPerSec/Duration; zero fields keep the scenario's
// declared values) and selects the seed.
type Options struct {
	Seed         uint64
	Sessions     int
	TargetPerSec float64
	Duration     time.Duration
	// Registry, when non-nil, receives the engine's scale_* series.
	Registry *metrics.Registry
}

// Result is one scenario's BENCH_scale.json row.
type Result struct {
	Scenario     string  `json:"scenario"`
	Note         string  `json:"note"`
	Seed         uint64  `json:"seed"`
	DCs          int     `json:"dcs"`
	Sessions     int     `json:"sessions"`
	TargetPerSec float64 `json:"target_per_sec"`
	DurationSec  float64 `json:"duration_sec"`

	Offered    uint64 `json:"offered"`
	Completed  uint64 `json:"completed"`
	ShedServer uint64 `json:"shed_server"`
	ShedClient uint64 `json:"shed_client"`
	Errors     uint64 `json:"errors"`

	OfferedPerSec  float64 `json:"offered_per_sec"`
	AchievedPerSec float64 `json:"achieved_per_sec"`

	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
	MeanMs float64 `json:"mean_ms"`

	// WANEvents is the number of entries on the faultinject event log
	// (delays, drops, scripted sever/heal) — 0 for single-DC scenarios.
	WANEvents int `json:"wan_events"`
	// EventLog is the executed scripted-event log, one canonical line per
	// event. Because lines carry scheduled offsets (never wall-clock), the
	// log is byte-identical across runs of the same seed and scenario.
	EventLog []string `json:"event_log"`
	// EventLogFingerprint is the FNV-1a hash of the joined EventLog.
	EventLogFingerprint string `json:"event_log_fingerprint"`

	// ConvergeMs is how long after load stopped every DC took to apply
	// every other DC's final record (multi-DC only; includes post-heal
	// resyncs).
	ConvergeMs float64 `json:"converge_ms"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// LogFingerprint hashes an event log the way Result does.
func LogFingerprint(lines []string) string {
	h := fnv.New64a()
	h.Write([]byte(strings.Join(lines, "\n")))
	return fmt.Sprintf("%016x", h.Sum64())
}

// Run executes one scenario end to end: build the DCs (shed-on-saturation
// admission at the scenario's credit bound), wire them through the seeded
// WAN, drive the open-loop engine while the script scheduler fires
// partition/heal/pause/resume at their scheduled offsets, then measure
// cross-DC convergence and tear everything down.
func Run(sc Scenario, opt Options) (Result, error) {
	sc = sc.With(opt)
	seed := opt.Seed
	if seed == 0 {
		seed = 1
	}

	dcs := make([]*chariots.Datacenter, sc.DCs)
	for i := range dcs {
		dc, err := chariots.New(chariots.Config{
			Self:             core.DCID(i),
			NumDCs:           sc.DCs,
			PipelineCredits:  sc.Credits,
			ShedOnSaturation: true,
			Rates:            chariots.StageRates{Maintainer: sc.MaintainerRate},
		})
		if err != nil {
			return Result{}, err
		}
		dcs[i] = dc
	}

	var wan *WAN
	if sc.DCs > 1 {
		wan = NewWAN(seed, Topology{DCs: sc.DCs, Default: sc.Link})
		wan.Connect(dcs)
	}
	for _, dc := range dcs {
		dc.Start()
	}

	body := workload.NewBody(sc.RecordSize, int64(seed))
	var keys *workload.ZipfKeys
	if sc.Keys > 0 {
		keys = workload.NewZipfKeys(sc.Keys, sc.ZipfSkew, int64(seed))
	}

	// maxTO tracks the highest acked TOId per origin DC; convergence means
	// every peer has applied it.
	maxTO := make([]atomic.Uint64, sc.DCs)
	eng := NewEngine(Config{
		Sessions:     sc.Sessions,
		TargetPerSec: sc.TargetPerSec,
		Duration:     sc.Duration,
		Seed:         seed,
		Shape:        sc.Shape(),
		Op: func(session int, _ time.Time) error {
			dc := dcs[session%len(dcs)]
			var tags []core.Tag
			if keys != nil {
				tags = []core.Tag{{Key: "k", Value: keys.Key()}}
			}
			ack, err := dc.Append(body, tags)
			if err != nil {
				return err
			}
			slot := &maxTO[session%len(dcs)]
			for {
				cur := slot.Load()
				if ack.TOId <= cur || slot.CompareAndSwap(cur, ack.TOId) {
					return nil
				}
			}
		},
		Retry: func(err error) (time.Duration, bool) {
			if flstore.IsRetryable(err) {
				return flstore.RetryAfter(err), true
			}
			return 0, false
		},
	})
	if opt.Registry != nil {
		eng.EnableMetrics(opt.Registry)
	}

	// The script scheduler executes the precomputed expansion. The logged
	// lines carry the scheduled offsets, so the executed log is exactly
	// RenderScript(sc.Expand()) — byte-identical by construction across
	// runs of the same seed and scenario.
	script := sc.Expand()
	executed := make([]string, 0, len(script))
	scriptDone := make(chan struct{})
	start := time.Now()
	go func() {
		defer close(scriptDone)
		for _, ev := range script {
			if wait := time.Until(start.Add(ev.At)); wait > 0 {
				time.Sleep(wait)
			}
			switch ev.Action {
			case ActPartition:
				if wan != nil {
					wan.Partition(ev.From, ev.To)
				}
			case ActHeal:
				if wan != nil {
					wan.HealPair(ev.From, ev.To)
					resyncPair(dcs, ev.From, ev.To)
				}
			case ActPause:
				eng.Pause()
			case ActResume:
				eng.Resume()
			}
			executed = append(executed, ev.String())
		}
	}()

	stats := eng.Run()
	<-scriptDone

	// Convergence: every DC applies every other DC's final acked record.
	// Loss and partitions stall the awareness table, so the loop nudges
	// stalled pairs with incremental resyncs until the deadline.
	var converge time.Duration
	if sc.DCs > 1 {
		t0 := time.Now()
		deadline := t0.Add(30 * time.Second)
		for i := range dcs {
			want := maxTO[i].Load()
			if want == 0 {
				continue
			}
			for j := range dcs {
				if j == i {
					continue
				}
				for !dcs[j].WaitForTOId(core.DCID(i), want, 250*time.Millisecond) {
					if time.Now().After(deadline) {
						return Result{}, fmt.Errorf("scale: %s: dc%d never converged to dc%d toid %d", sc.Name, j, i, want)
					}
					// Re-ship from every origin, not just i: records carry
					// causal deps on third datacenters, so dc j may be
					// parked on a record dc k lost to link loss.
					for k := range dcs {
						if k != j {
							dcs[k].Resync(core.DCID(j), dcs[k].Senders()[0])
						}
					}
				}
			}
		}
		converge = time.Since(t0)
	}

	for _, dc := range dcs {
		dc.Quiesce(50*time.Millisecond, 10*time.Second)
	}
	for _, dc := range dcs {
		dc.Stop()
	}
	wanEvents := 0
	if wan != nil {
		wanEvents = len(wan.Controller().Events())
		wan.Close()
	}

	elapsed := stats.Elapsed.Seconds()
	if elapsed <= 0 {
		elapsed = sc.Duration.Seconds()
	}
	res := Result{
		Scenario:     sc.Name,
		Note:         sc.Note,
		Seed:         seed,
		DCs:          sc.DCs,
		Sessions:     sc.Sessions,
		TargetPerSec: sc.TargetPerSec,
		DurationSec:  sc.Duration.Seconds(),

		Offered:    stats.Offered,
		Completed:  stats.Completed,
		ShedServer: stats.ShedServer,
		ShedClient: stats.ShedClient,
		Errors:     stats.Errors,

		OfferedPerSec:  float64(stats.Offered) / sc.Duration.Seconds(),
		AchievedPerSec: float64(stats.Completed) / elapsed,

		P50Ms:  ms(stats.Hist.Quantile(0.50)),
		P99Ms:  ms(stats.Hist.Quantile(0.99)),
		P999Ms: ms(stats.Hist.Quantile(0.999)),
		MaxMs:  ms(stats.Hist.Max()),
		MeanMs: ms(stats.Hist.Mean()),

		WANEvents:           wanEvents,
		EventLog:            executed,
		EventLogFingerprint: LogFingerprint(executed),
		ConvergeMs:          ms(converge),
	}
	return res, nil
}

// resyncPair re-ships unacknowledged records in both directions after a
// heal: the partition made each side's deliveries fail, so the awareness
// tables stopped advancing and the live feed alone won't close the gap.
func resyncPair(dcs []*chariots.Datacenter, a, b int) {
	if a < len(dcs) && b < len(dcs) {
		dcs[a].Resync(core.DCID(b), dcs[a].Senders()[0])
		dcs[b].Resync(core.DCID(a), dcs[b].Senders()[0])
	}
}
