package scale

import (
	"math"
	"time"
)

// Shape modulates the offered arrival rate over a run. Mul returns the
// rate multiplier at frac ∈ [0,1) of the run's duration; Peak is the
// maximum multiplier, used as the thinning envelope when generating
// arrivals.
type Shape interface {
	Mul(frac float64) float64
	Peak() float64
}

// Steady is a constant arrival rate.
type Steady struct{}

// Mul implements Shape.
func (Steady) Mul(float64) float64 { return 1 }

// Peak implements Shape.
func (Steady) Peak() float64 { return 1 }

// Diurnal is a raised-cosine daily wave compressed into the run: the rate
// swings between Floor×target and target, completing Waves full periods.
// The target rate is the wave's peak.
type Diurnal struct {
	// Waves is the number of full day-cycles in the run (default 1).
	Waves float64 `json:"waves"`
	// Floor is the trough as a fraction of the peak (default 0.2).
	Floor float64 `json:"floor"`
}

// Mul implements Shape.
func (s Diurnal) Mul(frac float64) float64 {
	floor := s.Floor
	if floor <= 0 || floor > 1 {
		floor = 0.2
	}
	w := s.Waves
	if w <= 0 {
		w = 1
	}
	return floor + (1-floor)*0.5*(1-math.Cos(2*math.Pi*w*frac))
}

// Peak implements Shape.
func (Diurnal) Peak() float64 { return 1 }

// rng is the same splitmix64 stream internal/faultinject uses: tiny,
// seedable, and stable across Go versions, which schedule replayability
// depends on (math/rand's stream is not guaranteed).
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// Arrivals precomputes one session's intended-start offsets: a seeded
// Poisson process at rate arrivals/second, thinned by shape — the
// open-loop arrival schedule. The offsets are strictly increasing, within
// [0, d), and a pure function of (seed, session, rate, d, shape): the
// same inputs replay the same schedule on every run and host.
func Arrivals(seed uint64, session int, rate float64, d time.Duration, shape Shape) []time.Duration {
	if rate <= 0 || d <= 0 {
		return nil
	}
	if shape == nil {
		shape = Steady{}
	}
	r := rng{state: seed ^ (uint64(session)+1)*0x9E3779B97F4A7C15}
	peak := shape.Peak()
	if peak <= 0 {
		peak = 1
	}
	env := rate * peak
	dd := d.Seconds()
	out := make([]time.Duration, 0, int(rate*dd)+1)
	t := 0.0
	for {
		u := r.float64()
		if u <= 0 {
			u = 1.0 / (1 << 53)
		}
		t += -math.Log(u) / env
		if t >= dd {
			return out
		}
		// Thinning: keep a candidate with probability Mul(t)/Peak, from the
		// same seeded stream so acceptance replays too.
		if shape.Mul(t/dd) >= peak*r.float64() {
			out = append(out, time.Duration(t*float64(time.Second)))
		}
	}
}
