package scale

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/chariots"
	"repro/internal/faultinject"
)

// wanTrace drives every link of a WAN through a fixed per-link script —
// fixed call counts with sever/heal at fixed steps — and returns the
// controller's canonical fingerprint plus every link's resolved delay
// sequence. Links run concurrently (one goroutine per link, mirroring one
// TCP connection per DC pair), which is exactly the regime the replay
// property must hold under: per-link streams are pure functions of
// (seed, link, step) no matter how the links interleave.
func wanTrace(t *testing.T, seed uint64, topo Topology, steps int) (string, map[string][]time.Duration) {
	t.Helper()
	w := NewWAN(seed, topo)
	ctl := w.Controller()
	var wg sync.WaitGroup
	for i := 0; i < topo.DCs; i++ {
		for j := 0; j < topo.DCs; j++ {
			if i == j {
				continue
			}
			name := LinkName(i, j)
			sever := i == 0 // links out of dc0 flap mid-script
			wg.Add(1)
			go func(name string, sever bool) {
				defer wg.Done()
				for s := 0; s < steps; s++ {
					if sever && s == steps/4 {
						ctl.Sever(name)
					}
					if sever && s == steps/2 {
						ctl.Heal(name)
					}
					ctl.Next(name)
				}
			}(name, sever)
		}
	}
	wg.Wait()
	delays := make(map[string][]time.Duration)
	for i := 0; i < topo.DCs; i++ {
		for j := 0; j < topo.DCs; j++ {
			if i != j {
				name := LinkName(i, j)
				delays[name] = ctl.Delays(name)
			}
		}
	}
	return ctl.Fingerprint(), delays
}

// TestWANDeterministicReplay is the WAN-emulation determinism contract:
// same seed + same scenario script ⇒ identical faultinject fingerprint and
// identical per-link delay sequences across two full runs (run under -race
// in make check: the concurrent link goroutines are the point).
func TestWANDeterministicReplay(t *testing.T) {
	topo := Topology{
		DCs:     3,
		Default: LinkProfile{OneWay: 2 * time.Millisecond, Jitter: time.Millisecond, LossP: 0.05},
	}
	const steps = 400
	fp1, d1 := wanTrace(t, 99, topo, steps)
	fp2, d2 := wanTrace(t, 99, topo, steps)
	if fp1 == "" {
		t.Fatal("empty fingerprint: no events recorded")
	}
	if fp1 != fp2 {
		t.Fatalf("fingerprints differ across identical runs:\n--- run1 ---\n%s--- run2 ---\n%s", fp1, fp2)
	}
	for name, seq1 := range d1 {
		if len(seq1) == 0 {
			t.Fatalf("link %s recorded no delays", name)
		}
		if !equalDurations(seq1, d2[name]) {
			t.Fatalf("delay sequence for %s differs across identical runs", name)
		}
	}
	fp3, _ := wanTrace(t, 100, topo, steps)
	if fp3 == fp1 {
		t.Fatal("different seed produced identical fingerprint")
	}
}

type captureRx struct {
	mu    sync.Mutex
	snaps []chariots.Snapshot
}

func (c *captureRx) Deliver(s chariots.Snapshot) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.snaps = append(c.snaps, s)
	return nil
}

func TestWANLinkDelaySeverDrop(t *testing.T) {
	ctl := faultinject.New(faultinject.Options{Seed: 1})
	const name = "dc0->dc1"
	ctl.SetLink(name, faultinject.LinkOptions{DelayP: 1, Delay: 5 * time.Millisecond})
	rx := &captureRx{}
	l := newWANLink(ctl, name, rx)
	defer l.close()

	mark := func(i byte) chariots.Snapshot {
		return chariots.Snapshot{From: 0, ATable: nil, Records: nil, Owned: i%2 == 0}
	}
	start := time.Now()
	if err := l.Deliver(mark(0)); err != nil {
		t.Fatalf("Deliver: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		rx.mu.Lock()
		n := len(rx.snaps)
		rx.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("snapshot never delivered")
		}
		time.Sleep(time.Millisecond)
	}
	if e := time.Since(start); e < 4*time.Millisecond {
		t.Fatalf("delivered after %v, want ≥ ~5ms link delay", e)
	}

	ctl.Sever(name)
	if err := l.Deliver(mark(1)); !errors.Is(err, faultinject.ErrSevered) {
		t.Fatalf("Deliver on severed link: %v, want ErrSevered", err)
	}
	ctl.Heal(name)

	ctl.SetLink(name, faultinject.LinkOptions{DropP: 1})
	if err := l.Deliver(mark(2)); !errors.Is(err, faultinject.ErrDropped) {
		t.Fatalf("Deliver on lossy link: %v, want ErrDropped", err)
	}
}
