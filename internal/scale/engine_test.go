package scale

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
)

// TestEngineCoordinatedOmissionSafe is the CO contract: one stalled op at
// the head of a session's schedule must inflate the measured latency of
// the arrivals queued behind it, because they are measured from their
// intended starts, not from when the session finally got to them.
func TestEngineCoordinatedOmissionSafe(t *testing.T) {
	var calls atomic.Uint64
	eng := NewEngine(Config{
		Sessions:     1,
		TargetPerSec: 200, // 5ms inter-arrival
		Duration:     300 * time.Millisecond,
		Seed:         3,
		Op: func(int, time.Time) error {
			if calls.Add(1) == 1 {
				time.Sleep(100 * time.Millisecond) // the stall
			}
			return nil
		},
	})
	stats := eng.Run()
	if stats.Offered == 0 || stats.Completed != stats.Offered {
		t.Fatalf("ledger: %+v", stats.Ledger)
	}
	// ~20 arrivals landed during the stall; the ones nearest its start
	// waited almost the full 100ms. A closed-loop (or re-anchoring)
	// generator would report all of them as instant.
	if max := stats.Hist.Max(); max < 60*time.Millisecond {
		t.Fatalf("max latency %v; queued arrivals did not accrue the stall", max)
	}
}

func TestEngineLedgerAccountsEveryArrival(t *testing.T) {
	retryable := errors.New("transient")
	var n atomic.Uint64
	eng := NewEngine(Config{
		Sessions:     4,
		TargetPerSec: 400,
		Duration:     250 * time.Millisecond,
		Seed:         11,
		RetryFor:     20 * time.Millisecond,
		Op: func(int, time.Time) error {
			switch n.Add(1) % 3 {
			case 0:
				return retryable
			case 1:
				return errors.New("permanent")
			}
			return nil
		},
		Retry: func(err error) (time.Duration, bool) {
			return time.Millisecond, errors.Is(err, retryable)
		},
	})
	s := eng.Run()
	if s.Offered == 0 {
		t.Fatal("no arrivals offered")
	}
	if got := s.Completed + s.ShedServer + s.ShedClient + s.Errors; got != s.Offered {
		t.Fatalf("ledger leak: offered %d != completed %d + shedServer %d + shedClient %d + errors %d",
			s.Offered, s.Completed, s.ShedServer, s.ShedClient, s.Errors)
	}
	if s.Errors == 0 {
		t.Fatal("permanent failures not accounted as errors")
	}
	if uint64(s.Hist.Count()) != s.Completed {
		t.Fatalf("hist count %d != completed %d", s.Hist.Count(), s.Completed)
	}
}

func TestEngineMaxLagSheds(t *testing.T) {
	eng := NewEngine(Config{
		Sessions:     1,
		TargetPerSec: 500,
		Duration:     200 * time.Millisecond,
		Seed:         5,
		MaxLag:       10 * time.Millisecond,
		Op: func(int, time.Time) error {
			time.Sleep(20 * time.Millisecond) // every op overruns the inter-arrival
			return nil
		},
	})
	s := eng.Run()
	if s.ShedClient == 0 {
		t.Fatalf("no client sheds despite 2ms arrivals vs 20ms ops: %+v", s.Ledger)
	}
	if got := s.Completed + s.ShedServer + s.ShedClient + s.Errors; got != s.Offered {
		t.Fatalf("ledger leak: %+v", s.Ledger)
	}
}

// TestEnginePauseResumeHerd: pausing closes every session's connection
// while arrivals keep accruing; resume releases them all at once and the
// backlog shows up in the tail.
func TestEnginePauseResumeHerd(t *testing.T) {
	eng := NewEngine(Config{
		Sessions:     8,
		TargetPerSec: 800,
		Duration:     300 * time.Millisecond,
		Seed:         7,
		Op:           func(int, time.Time) error { return nil },
	})
	go func() {
		time.Sleep(50 * time.Millisecond)
		eng.Pause()
		time.Sleep(120 * time.Millisecond)
		eng.Resume()
	}()
	s := eng.Run()
	if s.Completed != s.Offered {
		t.Fatalf("ledger: %+v", s.Ledger)
	}
	if max := s.Hist.Max(); max < 80*time.Millisecond {
		t.Fatalf("max latency %v; pause backlog did not accrue to paused arrivals", max)
	}
}

func TestEngineMetricsRegistered(t *testing.T) {
	reg := metrics.NewRegistry()
	eng := NewEngine(Config{
		Sessions:     2,
		TargetPerSec: 200,
		Duration:     100 * time.Millisecond,
		Seed:         1,
		Op:           func(int, time.Time) error { return nil },
	})
	eng.EnableMetrics(reg)
	eng.Run()
	snap := reg.Snapshot()
	found := map[string]bool{}
	for _, s := range snap.Series {
		found[s.Name] = true
	}
	for _, name := range []string{"scale_sessions_active", "scale_offered_total", "scale_shed_total"} {
		if !found[name] {
			t.Errorf("series %s not registered", name)
		}
	}
}
