package scale

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/metrics"
)

func smokeOpt(seed uint64) Options {
	return Options{
		Seed:         seed,
		Sessions:     200,
		TargetPerSec: 2000,
		Duration:     600 * time.Millisecond,
	}
}

func checkLedger(t *testing.T, r Result) {
	t.Helper()
	if r.Offered == 0 || r.Completed == 0 {
		t.Fatalf("no load driven: %+v", r)
	}
	if got := r.Completed + r.ShedServer + r.ShedClient + r.Errors; got != r.Offered {
		t.Fatalf("ledger leak: offered %d, accounted %d", r.Offered, got)
	}
	if r.P50Ms <= 0 || r.P99Ms < r.P50Ms || r.P999Ms < r.P99Ms {
		t.Fatalf("quantiles not ordered: p50 %v p99 %v p999 %v", r.P50Ms, r.P99Ms, r.P999Ms)
	}
}

func TestScaleSteadySmoke(t *testing.T) {
	sc, ok := Lookup("steady")
	if !ok {
		t.Fatal("steady scenario missing")
	}
	reg := metrics.NewRegistry()
	opt := smokeOpt(7)
	opt.Registry = reg
	r, err := Run(sc, opt)
	if err != nil {
		t.Fatal(err)
	}
	checkLedger(t, r)
	if r.DCs != 2 || r.Sessions != 200 {
		t.Fatalf("sizing not applied: %+v", r)
	}
	if r.WANEvents == 0 {
		t.Fatal("two-DC run recorded no WAN events")
	}
	if r.ConvergeMs < 0 {
		t.Fatalf("converge %v", r.ConvergeMs)
	}
	if s := reg.Snapshot().Find("scale_offered_total", nil); s == nil || s.Value != float64(r.Offered) {
		t.Fatalf("scale_offered_total = %+v, want %d", s, r.Offered)
	}
}

func TestScaleDiurnalHotkeyHerdSmoke(t *testing.T) {
	for _, name := range []string{"diurnal", "hotkey", "herd"} {
		sc, _ := Lookup(name)
		r, err := Run(sc, smokeOpt(11))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkLedger(t, r)
		if name == "herd" && len(r.EventLog) != 2 {
			t.Fatalf("herd event log = %v, want pause+resume", r.EventLog)
		}
	}
}

// TestScalePartitionHealReplay runs the partition+heal scenario twice with
// one seed: the executed event logs must be byte-identical, equal to the
// scenario's precomputed expansion, and carry the same fingerprint — and
// both runs must converge after the heal.
func TestScalePartitionHealReplay(t *testing.T) {
	sc, ok := Lookup("partition")
	if !ok {
		t.Fatal("partition scenario missing")
	}
	opt := smokeOpt(42)
	opt.Duration = 1200 * time.Millisecond // scripted events land at 360ms/720ms

	r1, err := Run(sc, opt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(sc, opt)
	if err != nil {
		t.Fatal(err)
	}
	checkLedger(t, r1)
	checkLedger(t, r2)

	wantLog := RenderScript(sc.With(opt).Expand())
	if !reflect.DeepEqual(r1.EventLog, wantLog) {
		t.Fatalf("executed log %v != expansion %v", r1.EventLog, wantLog)
	}
	if !reflect.DeepEqual(r1.EventLog, r2.EventLog) {
		t.Fatalf("event logs differ across same-seed runs:\n%v\n%v", r1.EventLog, r2.EventLog)
	}
	if r1.EventLogFingerprint != r2.EventLogFingerprint || r1.EventLogFingerprint == "" {
		t.Fatalf("fingerprints: %q vs %q", r1.EventLogFingerprint, r2.EventLogFingerprint)
	}
	if r1.ConvergeMs <= 0 || r2.ConvergeMs <= 0 {
		t.Fatalf("multi-DC runs must measure convergence: %v, %v", r1.ConvergeMs, r2.ConvergeMs)
	}
	if r1.WANEvents == 0 {
		t.Fatal("no WAN events recorded through partition+heal")
	}
}
