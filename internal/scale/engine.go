package scale

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Config drives one Engine run.
type Config struct {
	// Sessions is the number of concurrent client sessions. Each session
	// is one serial logical client (a connection): its own arrivals are
	// issued in order, while the population is open-loop — an arrival's
	// intended start never moves because the system is slow.
	Sessions int
	// TargetPerSec is the aggregate offered arrival rate at the shape's
	// peak, split evenly across sessions.
	TargetPerSec float64
	// Duration is the arrival-schedule horizon; the run ends when every
	// session has worked through its schedule (which can take longer than
	// Duration when the system is saturated).
	Duration time.Duration
	// Seed derives every session's arrival schedule.
	Seed uint64
	// Shape modulates the arrival rate over the run (nil = Steady).
	Shape Shape
	// Op issues one request for the session — called serially per session,
	// concurrently across sessions. The engine measures the op against the
	// arrival's intended start.
	Op func(session int, intended time.Time) error
	// Retry classifies an op error: retryable errors return a pacing hint
	// and true, and the engine retries the same arrival (the retries and
	// pacing sleeps all accrue to the arrival's latency). nil = never
	// retry.
	Retry func(err error) (time.Duration, bool)
	// RetryFor bounds how long one arrival keeps retrying, measured from
	// its intended start; past it the arrival lands in the shed ledger
	// (default 1s).
	RetryFor time.Duration
	// MaxLag, when > 0, sheds arrivals whose intended start is already
	// more than MaxLag in the past when the session reaches them — the
	// client-side give-up of a collapsing connection. Shed arrivals are
	// counted, never silently skipped. 0 disables the guard: every arrival
	// is attempted no matter how late (pure open-loop accounting).
	MaxLag time.Duration
}

// Ledger accounts for the fate of every offered arrival:
// Offered = Completed + ShedServer + ShedClient + Errors.
type Ledger struct {
	// Offered arrivals per the schedule (paused time included — the
	// schedule does not stop when sessions do).
	Offered uint64 `json:"offered"`
	// Completed ops, recorded in the latency histogram.
	Completed uint64 `json:"completed"`
	// ShedServer counts arrivals rejected with a retryable error past the
	// retry budget — load the system explicitly refused.
	ShedServer uint64 `json:"shed_server"`
	// ShedClient counts arrivals dropped by the MaxLag guard — load the
	// harness gave up on before issuing.
	ShedClient uint64 `json:"shed_client"`
	// Errors counts non-retryable op failures.
	Errors uint64 `json:"errors"`
}

// Stats is the outcome of one Engine run.
type Stats struct {
	Ledger
	// Elapsed is issue of the first arrival to completion of the last.
	Elapsed time.Duration
	// Hist holds the completed ops' intended-start-based latencies.
	Hist *Hist
}

// Engine drives Config.Sessions concurrent sessions through their
// precomputed arrival schedules, recording coordinated-omission-safe
// latency: every op is measured from the schedule's intended start, so
// queueing behind a stalled session, retry pacing, and pause windows all
// show up in the tail instead of vanishing into a generator that politely
// waited.
type Engine struct {
	cfg  Config
	hist Hist

	offered    atomic.Uint64
	completed  atomic.Uint64
	shedServer atomic.Uint64
	shedClient atomic.Uint64
	errs       atomic.Uint64
	active     atomic.Int64

	gateMu sync.Mutex
	gateCh chan struct{}
	paused bool
}

// NewEngine returns an engine for the given config.
func NewEngine(cfg Config) *Engine {
	if cfg.RetryFor <= 0 {
		cfg.RetryFor = time.Second
	}
	if cfg.Shape == nil {
		cfg.Shape = Steady{}
	}
	e := &Engine{cfg: cfg, gateCh: make(chan struct{})}
	close(e.gateCh) // gate starts open
	return e
}

// EnableMetrics registers the engine's session-scale series on reg:
// scale_sessions_active (sessions with an op in flight),
// scale_offered_total, and scale_shed_total (client + server sheds).
func (e *Engine) EnableMetrics(reg *metrics.Registry) {
	reg.GaugeFunc("scale_sessions_active", func() float64 {
		return float64(e.active.Load())
	})
	reg.CounterFunc("scale_offered_total", func() float64 {
		return float64(e.offered.Load())
	})
	reg.CounterFunc("scale_shed_total", func() float64 {
		return float64(e.shedServer.Load() + e.shedClient.Load())
	})
}

// Pause closes the connection gate: sessions finish their in-flight op
// and then block before issuing the next one. Arrivals keep accruing on
// the schedule — the backlog is the point.
func (e *Engine) Pause() {
	e.gateMu.Lock()
	defer e.gateMu.Unlock()
	if !e.paused {
		e.paused = true
		e.gateCh = make(chan struct{})
	}
}

// Resume reopens the gate, releasing every blocked session at once — the
// thundering-herd reconnect.
func (e *Engine) Resume() {
	e.gateMu.Lock()
	defer e.gateMu.Unlock()
	if e.paused {
		e.paused = false
		close(e.gateCh)
	}
}

func (e *Engine) gateWait() {
	e.gateMu.Lock()
	ch := e.gateCh
	e.gateMu.Unlock()
	<-ch
}

// Run executes every session's schedule and blocks until the last op
// resolves.
func (e *Engine) Run() Stats {
	start := time.Now()
	perSession := e.cfg.TargetPerSec / float64(e.cfg.Sessions)
	var wg sync.WaitGroup
	for s := 0; s < e.cfg.Sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			e.runSession(s, start, perSession)
		}(s)
	}
	wg.Wait()
	return Stats{
		Ledger: Ledger{
			Offered:    e.offered.Load(),
			Completed:  e.completed.Load(),
			ShedServer: e.shedServer.Load(),
			ShedClient: e.shedClient.Load(),
			Errors:     e.errs.Load(),
		},
		Elapsed: time.Since(start),
		Hist:    &e.hist,
	}
}

func (e *Engine) runSession(s int, start time.Time, rate float64) {
	sch := Arrivals(e.cfg.Seed, s, rate, e.cfg.Duration, e.cfg.Shape)
	for _, off := range sch {
		intended := start.Add(off)
		if wait := time.Until(intended); wait > 0 {
			time.Sleep(wait)
		}
		e.gateWait()
		e.offered.Add(1)
		if e.cfg.MaxLag > 0 && time.Since(intended) > e.cfg.MaxLag {
			e.shedClient.Add(1)
			continue
		}
		e.active.Add(1)
		e.runOp(s, intended)
		e.active.Add(-1)
	}
}

func (e *Engine) runOp(s int, intended time.Time) {
	for {
		err := e.cfg.Op(s, intended)
		if err == nil {
			e.hist.Record(time.Since(intended))
			e.completed.Add(1)
			return
		}
		if e.cfg.Retry != nil {
			if hint, ok := e.cfg.Retry(err); ok {
				if time.Since(intended) < e.cfg.RetryFor {
					if hint <= 0 {
						hint = time.Millisecond
					}
					time.Sleep(hint)
					continue
				}
				e.shedServer.Add(1)
				return
			}
		}
		e.errs.Add(1)
		return
	}
}
