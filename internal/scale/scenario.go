package scale

import (
	"fmt"
	"sort"
	"time"
)

// ScriptAction is one kind of scripted scenario event.
type ScriptAction string

const (
	// ActPartition severs both directions between a DC pair.
	ActPartition ScriptAction = "partition"
	// ActHeal restores both directions and resyncs unacknowledged records.
	ActHeal ScriptAction = "heal"
	// ActPause closes every session's connection (sessions stop issuing;
	// arrivals keep accruing on the schedule).
	ActPause ScriptAction = "pause"
	// ActResume reconnects every session at once — the thundering herd.
	ActResume ScriptAction = "resume"
)

// ScriptEvent is one scripted event at a fixed offset into the run.
type ScriptEvent struct {
	At     time.Duration `json:"at"`
	Action ScriptAction  `json:"action"`
	// From/To name the DC pair for partition/heal (ignored for
	// pause/resume).
	From int `json:"from"`
	To   int `json:"to"`
}

// String renders the event's canonical event-log line.
func (e ScriptEvent) String() string {
	switch e.Action {
	case ActPause, ActResume:
		return fmt.Sprintf("%v %s all-sessions", e.At, e.Action)
	default:
		return fmt.Sprintf("%v %s dc%d<->dc%d", e.At, e.Action, e.From, e.To)
	}
}

// Flap is a compact scripted flapping link: starting at Start, the pair
// severs, heals half a Period later, and repeats Count times.
type Flap struct {
	From, To int
	Start    time.Duration
	Period   time.Duration
	Count    int
}

// Scenario is one declarative entry of the scale matrix. Everything that
// shapes the run — topology, load, keys, script — is data, so a scenario
// plus a seed fully determines the arrival schedules, the WAN schedule,
// and the scripted event log.
type Scenario struct {
	Name string `json:"name"`
	Note string `json:"note"`

	// DCs and Link describe the topology: DCs datacenters all-to-all with
	// Link as every ordered pair's profile.
	DCs  int         `json:"dcs"`
	Link LinkProfile `json:"link"`

	// Sessions, TargetPerSec, Duration size the offered load; Diurnal (if
	// non-nil) shapes it, otherwise the rate is steady.
	Sessions     int           `json:"sessions"`
	TargetPerSec float64       `json:"target_per_sec"`
	Duration     time.Duration `json:"duration"`
	Diurnal      *Diurnal      `json:"diurnal,omitempty"`

	// Keys/ZipfSkew, when set, tag every record with a key drawn from a
	// Zipf distribution over Keys keys — the hot-key workload.
	Keys     int     `json:"keys,omitempty"`
	ZipfSkew float64 `json:"zipf_skew,omitempty"`

	// RecordSize is the record body size (default workload.DefaultRecordSize).
	RecordSize int `json:"record_size"`

	// Credits bounds each DC's pipeline in-flight records (admission on,
	// shed policy — the production posture from DESIGN.md §8).
	Credits int `json:"credits"`
	// MaintainerRate caps the bottleneck stage (0 = unlimited).
	MaintainerRate float64 `json:"maintainer_rate,omitempty"`

	// Script and Flap are the scripted events.
	Script []ScriptEvent `json:"script,omitempty"`
	Flap   *Flap         `json:"-"`
}

// Shape returns the scenario's arrival-rate shape.
func (sc Scenario) Shape() Shape {
	if sc.Diurnal != nil {
		return *sc.Diurnal
	}
	return Steady{}
}

// Expand returns the fully expanded, time-ordered script: Flap unrolled
// into sever/heal alternation, merged with Script. It is a pure function
// of the scenario — no clock, no randomness — which is what makes the
// executed event log byte-identical across runs of the same seed and
// scenario.
func (sc Scenario) Expand() []ScriptEvent {
	evs := append([]ScriptEvent(nil), sc.Script...)
	if f := sc.Flap; f != nil {
		for i := 0; i < f.Count; i++ {
			at := f.Start + time.Duration(i)*f.Period
			evs = append(evs,
				ScriptEvent{At: at, Action: ActPartition, From: f.From, To: f.To},
				ScriptEvent{At: at + f.Period/2, Action: ActHeal, From: f.From, To: f.To})
		}
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	return evs
}

// RenderScript renders an expanded script as canonical event-log lines.
func RenderScript(evs []ScriptEvent) []string {
	out := make([]string, len(evs))
	for i, e := range evs {
		out[i] = e.String()
	}
	return out
}

// With returns a copy of the scenario resized by the non-zero fields of
// opt. When opt.Duration rescales the run, every scripted time (Script,
// Flap) scales proportionally so a shortened smoke run still exercises
// the same phases.
func (sc Scenario) With(opt Options) Scenario {
	out := sc
	if opt.Sessions > 0 {
		out.Sessions = opt.Sessions
	}
	if opt.TargetPerSec > 0 {
		out.TargetPerSec = opt.TargetPerSec
	}
	if opt.Duration > 0 && sc.Duration > 0 && opt.Duration != sc.Duration {
		f := float64(opt.Duration) / float64(sc.Duration)
		out.Duration = opt.Duration
		out.Script = make([]ScriptEvent, len(sc.Script))
		for i, e := range sc.Script {
			e.At = time.Duration(float64(e.At) * f)
			out.Script[i] = e
		}
		if sc.Flap != nil {
			fl := *sc.Flap
			fl.Start = time.Duration(float64(fl.Start) * f)
			fl.Period = time.Duration(float64(fl.Period) * f)
			out.Flap = &fl
		}
	}
	return out
}

// Scenarios returns the matrix at full (acceptance) size. Every scenario
// drives at least 10k concurrent sessions; smoke tests shrink them with
// With.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name:         "steady",
			Note:         "two DCs over a lossy 25ms WAN, constant open-loop offered load",
			DCs:          2,
			Link:         LinkProfile{OneWay: 25 * time.Millisecond, Jitter: 3 * time.Millisecond, LossP: 0.0005},
			Sessions:     12000,
			TargetPerSec: 24000,
			Duration:     6 * time.Second,
			RecordSize:   512,
			Credits:      32768,
		},
		{
			Name:         "diurnal",
			Note:         "single DC, raised-cosine daily wave (two compressed days, 5x swing)",
			DCs:          1,
			Sessions:     10000,
			TargetPerSec: 30000,
			Duration:     6 * time.Second,
			Diurnal:      &Diurnal{Waves: 2, Floor: 0.2},
			RecordSize:   512,
			Credits:      32768,
		},
		{
			Name:         "hotkey",
			Note:         "single DC, Zipf(1.3) keys over 1000 tags — hot-key skew through filter+indexers",
			DCs:          1,
			Sessions:     10000,
			TargetPerSec: 20000,
			Duration:     6 * time.Second,
			Keys:         1000,
			ZipfSkew:     1.3,
			RecordSize:   512,
			Credits:      32768,
		},
		{
			Name:         "herd",
			Note:         "all sessions disconnect for 20% of the run, then reconnect at once into a bounded pipeline",
			DCs:          1,
			Sessions:     12000,
			TargetPerSec: 15000,
			Duration:     6 * time.Second,
			RecordSize:   512,
			Credits:      8192,
			Script: []ScriptEvent{
				{At: 2 * time.Second, Action: ActPause},
				{At: 3200 * time.Millisecond, Action: ActResume},
			},
		},
		{
			Name:         "partition",
			Note:         "three DCs over a 30ms WAN; dc0<->dc1 partitions mid-run and heals with resync",
			DCs:          3,
			Link:         LinkProfile{OneWay: 30 * time.Millisecond, Jitter: 5 * time.Millisecond, LossP: 0.001},
			Sessions:     12000,
			TargetPerSec: 18000,
			Duration:     6 * time.Second,
			RecordSize:   512,
			Credits:      32768,
			Script: []ScriptEvent{
				{At: 1800 * time.Millisecond, Action: ActPartition, From: 0, To: 1},
				{At: 3600 * time.Millisecond, Action: ActHeal, From: 0, To: 1},
			},
		},
	}
}

// Lookup finds a scenario by name.
func Lookup(name string) (Scenario, bool) {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// Names lists the matrix in declaration order.
func Names() []string {
	all := Scenarios()
	out := make([]string, len(all))
	for i, sc := range all {
		out[i] = sc.Name
	}
	return out
}
