package scale

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistQuantileAccuracy(t *testing.T) {
	var h Hist
	// 1..10000 µs uniformly: the true q-quantile is q*10000 µs.
	for i := 1; i <= 10000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 10000 {
		t.Fatalf("Count = %d, want 10000", h.Count())
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 5000 * time.Microsecond},
		{0.99, 9900 * time.Microsecond},
		{0.999, 9990 * time.Microsecond},
	} {
		got := h.Quantile(tc.q)
		rel := math.Abs(float64(got-tc.want)) / float64(tc.want)
		if rel > 0.01 {
			t.Errorf("Quantile(%v) = %v, want %v ±1%%", tc.q, got, tc.want)
		}
	}
	if h.Max() != 10000*time.Microsecond {
		t.Errorf("Max = %v, want exact 10ms", h.Max())
	}
	wantMean := time.Duration(5000500) * time.Microsecond / 1000
	if got := h.Mean(); got < wantMean-10*time.Microsecond || got > wantMean+10*time.Microsecond {
		t.Errorf("Mean = %v, want ≈%v", got, wantMean)
	}
}

func TestHistQuantileClampedToMax(t *testing.T) {
	var h Hist
	h.Record(time.Second) // one sample: every quantile is the sample
	if got := h.Quantile(0.999); got != time.Second {
		t.Fatalf("Quantile(0.999) = %v, want clamped to recorded max 1s", got)
	}
}

func TestHistMerge(t *testing.T) {
	var a, b Hist
	a.Record(time.Millisecond)
	b.Record(3 * time.Millisecond)
	b.Record(5 * time.Millisecond)
	a.Merge(&b)
	if a.Count() != 3 {
		t.Fatalf("merged Count = %d, want 3", a.Count())
	}
	if a.Max() != 5*time.Millisecond {
		t.Fatalf("merged Max = %v, want 5ms", a.Max())
	}
}

func TestHistConcurrentRecord(t *testing.T) {
	var h Hist
	var wg sync.WaitGroup
	const gs, per = 32, 1000
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(time.Duration(g*per+i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != gs*per {
		t.Fatalf("Count = %d, want %d", h.Count(), gs*per)
	}
	if h.Max() != time.Duration(gs*per-1)*time.Microsecond {
		t.Fatalf("Max = %v", h.Max())
	}
}

func TestHistIndexValueRoundTrip(t *testing.T) {
	// Every bucket's representative value must map back to that bucket, and
	// the bucket error must stay within one part in histSubCount.
	for _, u := range []uint64{0, 1, 127, 128, 129, 1 << 20, 1<<40 + 12345, math.MaxInt64} {
		i := histIndex(u)
		if i < 0 || i >= histBuckets {
			t.Fatalf("histIndex(%d) = %d out of range", u, i)
		}
		v := histValue(i)
		if v > 0 && u > 0 {
			rel := math.Abs(float64(v)-float64(u)) / float64(u)
			if rel > 1.0/histSubCount {
				t.Errorf("bucket error for %d: repr %d (rel %g)", u, v, rel)
			}
		}
	}
}
