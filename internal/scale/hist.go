// Package scale is the million-client load harness: an open-loop workload
// engine that drives tens of thousands of concurrent client sessions from
// a precomputed arrival schedule, records coordinated-omission-safe
// latency against the schedule's intended-start timestamps, and composes
// with a seeded WAN emulation (per-DC-pair latency/jitter/loss profiles
// layered over internal/faultinject) plus a declarative scenario matrix —
// steady state, diurnal wave, hot-key skew, thundering-herd reconnect,
// DC partition + heal — each emitting one stable BENCH_scale.json row.
package scale

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram geometry: values (nanoseconds) below 2^histSubBits land in
// linear unit buckets; above that, each power-of-two octave is split into
// histSubCount linear sub-buckets, HdrHistogram-style, giving a relative
// error of at most 1/histSubCount (≈0.8%) at every magnitude. The bucket
// count covers the full uint64 range: the top index is
// (64-histSubBits-1)*histSubCount + (histSubCount*2 - 1).
const (
	histSubBits  = 7
	histSubCount = 1 << histSubBits
	histBuckets  = (64-histSubBits-1)*histSubCount + 2*histSubCount
)

// Hist is an HDR-style latency histogram safe for tens of thousands of
// concurrent recorders: every bucket is an independent atomic counter, so
// Record takes no lock and never allocates. The zero value is ready to
// use.
type Hist struct {
	counts [histBuckets]uint64
	total  atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
}

// histIndex maps a non-negative nanosecond value to its bucket.
func histIndex(u uint64) int {
	if u < histSubCount {
		return int(u)
	}
	k := bits.Len64(u) - histSubBits - 1
	return k*histSubCount + int(u>>uint(k))
}

// histValue returns the representative (midpoint) value of a bucket.
func histValue(i int) int64 {
	if i < histSubCount {
		return int64(i)
	}
	k := i/histSubCount - 1
	s := int64(i - k*histSubCount)
	return s<<uint(k) + int64(1)<<uint(k)/2
}

// Record adds one latency observation.
func (h *Hist) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	atomic.AddUint64(&h.counts[histIndex(uint64(v))], 1)
	h.total.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of recorded observations.
func (h *Hist) Count() uint64 { return h.total.Load() }

// Max returns the largest recorded value exactly (not bucket-rounded).
func (h *Hist) Max() time.Duration { return time.Duration(h.max.Load()) }

// Mean returns the arithmetic mean of all recorded values.
func (h *Hist) Mean() time.Duration {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(uint64(h.sum.Load()) / n)
}

// Quantile returns the value at or below which a fraction q of the
// observations fall, to the histogram's bucket precision. q outside (0,1]
// is clamped; an empty histogram returns 0.
func (h *Hist) Quantile(q float64) time.Duration {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	if q <= 0 {
		q = 1e-9
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i := 0; i < histBuckets; i++ {
		seen += atomic.LoadUint64(&h.counts[i])
		if seen >= rank {
			v := histValue(i)
			if m := h.max.Load(); v > m {
				v = m // the top bucket's midpoint can overshoot the true max
			}
			return time.Duration(v)
		}
	}
	return h.Max()
}

// Merge folds o's observations into h (not linearizable against
// concurrent writers; merge after recording is done).
func (h *Hist) Merge(o *Hist) {
	for i := 0; i < histBuckets; i++ {
		if n := atomic.LoadUint64(&o.counts[i]); n > 0 {
			atomic.AddUint64(&h.counts[i], n)
		}
	}
	h.total.Add(o.total.Load())
	h.sum.Add(o.sum.Load())
	for {
		cur, ov := h.max.Load(), o.max.Load()
		if ov <= cur || h.max.CompareAndSwap(cur, ov) {
			return
		}
	}
}
