package scale

import (
	"testing"
	"time"
)

func TestArrivalsDeterministic(t *testing.T) {
	a := Arrivals(42, 7, 500, time.Second, Steady{})
	b := Arrivals(42, 7, 500, time.Second, Steady{})
	if len(a) == 0 {
		t.Fatal("no arrivals generated")
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("offset %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c := Arrivals(43, 7, 500, time.Second, Steady{})
	d := Arrivals(42, 8, 500, time.Second, Steady{})
	if equalDurations(a, c) || equalDurations(a, d) {
		t.Fatal("different seed/session produced identical schedule")
	}
}

func equalDurations(a, b []time.Duration) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestArrivalsRateAndBounds(t *testing.T) {
	const rate, sessions = 100.0, 50
	d := 2 * time.Second
	total := 0
	for s := 0; s < sessions; s++ {
		sch := Arrivals(9, s, rate, d, Steady{})
		total += len(sch)
		last := time.Duration(-1)
		for _, off := range sch {
			if off <= last {
				t.Fatalf("session %d: offsets not strictly increasing (%v after %v)", s, off, last)
			}
			if off < 0 || off >= d {
				t.Fatalf("session %d: offset %v outside [0, %v)", s, off, d)
			}
			last = off
		}
	}
	want := rate * sessions * d.Seconds() // 10000 expected; sd = 100
	if f := float64(total); f < want*0.9 || f > want*1.1 {
		t.Fatalf("total arrivals %d, want %v ±10%%", total, want)
	}
}

func TestDiurnalShapesArrivals(t *testing.T) {
	sh := Diurnal{Waves: 1, Floor: 0.2}
	d := 10 * time.Second
	var trough, peak int
	for s := 0; s < 50; s++ {
		for _, off := range Arrivals(5, s, 100, d, sh) {
			frac := off.Seconds() / d.Seconds()
			switch {
			case frac < 0.1: // start of the wave: rate ≈ floor
				trough++
			case frac >= 0.45 && frac < 0.55: // crest: rate ≈ peak
				peak++
			}
		}
	}
	// Rate ratio crest:trough is ≈ 1:0.2; demand at least 3x to stay far
	// from noise.
	if peak < 3*trough {
		t.Fatalf("diurnal shape not visible: trough-decile %d vs crest-decile %d arrivals", trough, peak)
	}
}

func TestDiurnalMulBounds(t *testing.T) {
	sh := Diurnal{Waves: 2, Floor: 0.2}
	for f := 0.0; f < 1.0; f += 0.01 {
		m := sh.Mul(f)
		if m < 0.2-1e-9 || m > 1.0+1e-9 {
			t.Fatalf("Mul(%v) = %v outside [0.2, 1]", f, m)
		}
	}
	if sh.Mul(0) > 0.21 {
		t.Fatalf("Mul(0) = %v, want ≈ floor", sh.Mul(0))
	}
}
