package scale

import (
	"reflect"
	"testing"
	"time"
)

func TestScenarioMatrix(t *testing.T) {
	want := []string{"steady", "diurnal", "hotkey", "herd", "partition"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for _, name := range want {
		sc, ok := Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) missing", name)
		}
		if sc.Sessions < 10000 {
			t.Errorf("%s: %d sessions at full size, acceptance floor is 10000", name, sc.Sessions)
		}
		if sc.TargetPerSec <= 0 || sc.Duration <= 0 || sc.Credits <= 0 {
			t.Errorf("%s: incomplete sizing %+v", name, sc)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup of unknown scenario succeeded")
	}
}

func TestExpandIsPure(t *testing.T) {
	sc := Scenario{
		Duration: 4 * time.Second,
		Script:   []ScriptEvent{{At: 3 * time.Second, Action: ActPause}},
		Flap:     &Flap{From: 0, To: 1, Start: time.Second, Period: time.Second, Count: 2},
	}
	a, b := sc.Expand(), sc.Expand()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Expand not deterministic")
	}
	want := []ScriptEvent{
		{At: time.Second, Action: ActPartition, From: 0, To: 1},
		{At: 1500 * time.Millisecond, Action: ActHeal, From: 0, To: 1},
		{At: 2 * time.Second, Action: ActPartition, From: 0, To: 1},
		{At: 2500 * time.Millisecond, Action: ActHeal, From: 0, To: 1},
		{At: 3 * time.Second, Action: ActPause},
	}
	if !reflect.DeepEqual(a, want) {
		t.Fatalf("Expand = %v, want %v", a, want)
	}
	if len(sc.Script) != 1 {
		t.Fatal("Expand mutated the scenario's script")
	}
}

func TestWithScalesScriptTimes(t *testing.T) {
	sc, _ := Lookup("partition")
	half := sc.With(Options{Duration: sc.Duration / 2, Sessions: 100, TargetPerSec: 500})
	if half.Sessions != 100 || half.TargetPerSec != 500 || half.Duration != sc.Duration/2 {
		t.Fatalf("With sizing: %+v", half)
	}
	for i, e := range half.Script {
		if want := sc.Script[i].At / 2; e.At != want {
			t.Fatalf("script[%d].At = %v, want %v (scaled)", i, e.At, want)
		}
	}
	// The original is untouched.
	if sc.Script[0].At != 1800*time.Millisecond {
		t.Fatal("With mutated the source scenario")
	}
}

func TestRenderScriptCanonical(t *testing.T) {
	evs := []ScriptEvent{
		{At: 500 * time.Millisecond, Action: ActPartition, From: 0, To: 1},
		{At: time.Second, Action: ActResume},
	}
	want := []string{"500ms partition dc0<->dc1", "1s resume all-sessions"}
	if got := RenderScript(evs); !reflect.DeepEqual(got, want) {
		t.Fatalf("RenderScript = %v, want %v", got, want)
	}
	if LogFingerprint(want) == LogFingerprint(want[:1]) {
		t.Fatal("fingerprint insensitive to log content")
	}
}
