package rpc

import (
	"sync"
	"time"
)

// ReconnectingClient is a Client that dials lazily and re-dials after
// transport failures — the hardening a WAN-facing connection (sender →
// remote receiver) needs, where links flap.
//
// If RetryOnce is set, a call that failed in transport is retried one time
// on a fresh connection. Retrying can duplicate a non-idempotent request
// (an FLStore Append would take a second log position), so it should be
// enabled only for idempotent traffic — Chariots replication is (filters
// deduplicate by TOId), as are reads and control-plane calls.
type ReconnectingClient struct {
	addr      string
	retryOnce bool
	backoff   time.Duration

	mu     sync.Mutex
	conn   *TCPClient
	closed bool
}

// NewReconnecting returns a reconnecting client for addr. No connection is
// attempted until the first call.
func NewReconnecting(addr string, retryOnce bool) *ReconnectingClient {
	return &ReconnectingClient{
		addr:      addr,
		retryOnce: retryOnce,
		backoff:   100 * time.Millisecond,
	}
}

// current returns a live connection, dialing if needed.
func (r *ReconnectingClient) current() (*TCPClient, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	if r.conn != nil {
		return r.conn, nil
	}
	conn, err := Dial(r.addr)
	if err != nil {
		return nil, err
	}
	r.conn = conn
	return conn, nil
}

// drop discards a connection after a transport failure, so the next call
// re-dials. Only the connection that failed is dropped (a concurrent call
// may already have re-dialed).
func (r *ReconnectingClient) drop(failed *TCPClient) {
	r.mu.Lock()
	if r.conn == failed {
		r.conn = nil
	}
	r.mu.Unlock()
	failed.Close()
}

// Call implements Client.
func (r *ReconnectingClient) Call(msgType uint8, payload []byte) ([]byte, error) {
	conn, err := r.current()
	if err == nil {
		var resp []byte
		resp, err = conn.Call(msgType, payload)
		if err == nil || IsRemote(err) {
			return resp, err
		}
		r.drop(conn)
	}
	if !r.retryOnce {
		return nil, err
	}
	time.Sleep(r.backoff)
	conn, derr := r.current()
	if derr != nil {
		return nil, derr
	}
	resp, err := conn.Call(msgType, payload)
	if err != nil && !IsRemote(err) {
		r.drop(conn)
	}
	return resp, err
}

// Close implements Client.
func (r *ReconnectingClient) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	if r.conn != nil {
		err := r.conn.Close()
		r.conn = nil
		return err
	}
	return nil
}
