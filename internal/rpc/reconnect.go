package rpc

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Backoff is a capped exponential redial schedule with multiplicative
// jitter: the k-th consecutive failure waits Base·Factor^(k−1) capped at
// Max, scaled by a uniform factor in [1−Jitter, 1+Jitter] so a fleet of
// clients that lost the same server doesn't re-dial in lockstep.
type Backoff struct {
	Base   time.Duration // first delay; 0 means 100ms
	Max    time.Duration // cap; 0 means 5s
	Factor float64       // growth per failure; <1 means 2
	Jitter float64       // ± fraction of the delay; 0 disables jitter
}

// Delay returns the wait before attempt streak (1-based; streak <= 0 is
// 0). rnd supplies uniform [0,1) samples for jitter; nil disables jitter.
func (b Backoff) Delay(streak int, rnd func() float64) time.Duration {
	if streak <= 0 {
		return 0
	}
	base, max, factor := b.Base, b.Max, b.Factor
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 5 * time.Second
	}
	if factor < 1 {
		factor = 2
	}
	d := float64(base)
	for i := 1; i < streak && d < float64(max); i++ {
		d *= factor
	}
	if d > float64(max) {
		d = float64(max)
	}
	if b.Jitter > 0 && rnd != nil {
		d *= 1 - b.Jitter + 2*b.Jitter*rnd()
	}
	return time.Duration(d)
}

// ReconnectingClient is a Client that dials lazily and re-dials after
// transport failures — the hardening a WAN-facing connection (sender →
// remote receiver) needs, where links flap. Consecutive transport
// failures back off exponentially (see Backoff), so a dead peer costs a
// bounded, decreasing dial rate instead of a tight retry loop.
//
// If RetryOnce is set, a call that failed in transport is retried one time
// on a fresh connection. Retrying can duplicate a non-idempotent request
// (an FLStore Append would take a second log position), so it should be
// enabled only for idempotent traffic — Chariots replication is (filters
// deduplicate by TOId), as are reads and control-plane calls.
type ReconnectingClient struct {
	addr      string
	retryOnce bool

	// Backoff is the redial schedule. Mutate only before the first call.
	Backoff Backoff

	// sleep and rnd are injectable for deterministic schedule tests;
	// defaults are time.Sleep and a seeded splitmix64 stream.
	sleep func(time.Duration)
	rnd   func() float64

	mu     sync.Mutex
	conn   *TCPClient
	closed bool
	// streak counts consecutive transport failures since the last
	// successful exchange; it indexes the backoff schedule.
	streak int

	// curBackoff is the delay (ns) the next re-dial will wait; 0 while the
	// link is healthy. Exported as the rpc_client_backoff_seconds gauge.
	curBackoff atomic.Int64

	// dials counts TCP connection attempts (successful or not); redials
	// those after the first; dialFailures the attempts that failed;
	// retries the retry-once second calls. Always maintained (they are
	// single atomics), so a retry storm is visible even without a
	// registry; EnableMetrics additionally exports them for scrapes.
	dials        metrics.Counter
	redials      metrics.Counter
	dialFailures metrics.Counter
	retries      metrics.Counter
}

// NewReconnecting returns a reconnecting client for addr. No connection is
// attempted until the first call.
func NewReconnecting(addr string, retryOnce bool) *ReconnectingClient {
	var state atomic.Uint64
	state.Store(uint64(time.Now().UnixNano()))
	return &ReconnectingClient{
		addr:      addr,
		retryOnce: retryOnce,
		Backoff:   Backoff{Base: 100 * time.Millisecond, Max: 5 * time.Second, Factor: 2, Jitter: 0.2},
		sleep:     time.Sleep,
		rnd: func() float64 {
			// splitmix64: tiny, lock-free, good enough for jitter.
			z := state.Add(0x9E3779B97F4A7C15)
			z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
			z = (z ^ (z >> 27)) * 0x94D049BB133111EB
			return float64((z^(z>>31))>>11) / (1 << 53)
		},
	}
}

// current returns a live connection, dialing if needed.
func (r *ReconnectingClient) current() (*TCPClient, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	if r.conn != nil {
		return r.conn, nil
	}
	if r.dials.Value() > 0 {
		r.redials.Inc()
	}
	r.dials.Inc()
	conn, err := Dial(r.addr)
	if err != nil {
		r.dialFailures.Inc()
		return nil, err
	}
	r.conn = conn
	return conn, nil
}

// drop discards a connection after a transport failure, so the next call
// re-dials. Only the connection that failed is dropped (a concurrent call
// may already have re-dialed).
func (r *ReconnectingClient) drop(failed *TCPClient) {
	r.mu.Lock()
	if r.conn == failed {
		r.conn = nil
	}
	r.mu.Unlock()
	failed.Close()
}

// noteFailure extends the failure streak and publishes the next delay.
func (r *ReconnectingClient) noteFailure() {
	r.mu.Lock()
	r.streak++
	d := r.Backoff.Delay(r.streak, r.rnd)
	r.mu.Unlock()
	r.curBackoff.Store(int64(d))
}

// noteSuccess resets the streak after a successful exchange.
func (r *ReconnectingClient) noteSuccess() {
	r.mu.Lock()
	r.streak = 0
	r.mu.Unlock()
	r.curBackoff.Store(0)
}

// awaitBackoff sleeps the published delay when the link is down and at
// least one failure has been observed; healthy-link calls pass through
// with no delay.
func (r *ReconnectingClient) awaitBackoff() {
	r.mu.Lock()
	wait := time.Duration(0)
	if r.conn == nil && r.streak > 0 {
		wait = time.Duration(r.curBackoff.Load())
	}
	r.mu.Unlock()
	if wait > 0 {
		r.sleep(wait)
	}
}

// Call implements Client.
func (r *ReconnectingClient) Call(msgType uint8, payload []byte) ([]byte, error) {
	r.awaitBackoff()
	conn, err := r.current()
	if err == nil {
		var resp []byte
		resp, err = conn.Call(msgType, payload)
		if err == nil || IsRemote(err) {
			r.noteSuccess()
			return resp, err
		}
		r.drop(conn)
	} else if errors.Is(err, ErrClosed) {
		return nil, err
	}
	r.noteFailure()
	if !r.retryOnce {
		return nil, err
	}
	r.retries.Inc()
	r.awaitBackoff()
	conn, derr := r.current()
	if derr != nil {
		r.noteFailure()
		return nil, derr
	}
	resp, err := conn.Call(msgType, payload)
	if err != nil && !IsRemote(err) {
		r.drop(conn)
		r.noteFailure()
		return resp, err
	}
	r.noteSuccess()
	return resp, err
}

// Stats reports the client's connection-churn counters: total dial
// attempts, re-dials after the first connection, failed dials, and
// retry-once second calls. Tests and ops tooling use this to assert that a
// flapping link produced bounded churn rather than a retry storm.
func (r *ReconnectingClient) Stats() (dials, redials, dialFailures, retries uint64) {
	return r.dials.Value(), r.redials.Value(), r.dialFailures.Value(), r.retries.Value()
}

// CurrentBackoff returns the delay the next re-dial will wait (0 while the
// link is healthy).
func (r *ReconnectingClient) CurrentBackoff() time.Duration {
	return time.Duration(r.curBackoff.Load())
}

// EnableMetrics exports the connection-churn counters and the live backoff
// gauge to reg, labeled by peer (the remote address or a
// deployment-chosen name).
func (r *ReconnectingClient) EnableMetrics(reg *metrics.Registry, peer string) {
	lbl := metrics.L("peer", peer)
	reg.CounterFunc("rpc_client_dials_total", func() float64 { return float64(r.dials.Value()) }, lbl)
	reg.CounterFunc("rpc_client_redials_total", func() float64 { return float64(r.redials.Value()) }, lbl)
	reg.CounterFunc("rpc_client_dial_failures_total", func() float64 { return float64(r.dialFailures.Value()) }, lbl)
	reg.CounterFunc("rpc_client_retries_total", func() float64 { return float64(r.retries.Value()) }, lbl)
	reg.GaugeFunc("rpc_client_backoff_seconds", func() float64 { return r.CurrentBackoff().Seconds() }, lbl)
}

// Close implements Client.
func (r *ReconnectingClient) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	if r.conn != nil {
		err := r.conn.Close()
		r.conn = nil
		return err
	}
	return nil
}
