package rpc

import (
	"sync"
	"time"

	"repro/internal/metrics"
)

// ReconnectingClient is a Client that dials lazily and re-dials after
// transport failures — the hardening a WAN-facing connection (sender →
// remote receiver) needs, where links flap.
//
// If RetryOnce is set, a call that failed in transport is retried one time
// on a fresh connection. Retrying can duplicate a non-idempotent request
// (an FLStore Append would take a second log position), so it should be
// enabled only for idempotent traffic — Chariots replication is (filters
// deduplicate by TOId), as are reads and control-plane calls.
type ReconnectingClient struct {
	addr      string
	retryOnce bool
	backoff   time.Duration

	mu     sync.Mutex
	conn   *TCPClient
	closed bool

	// dials counts TCP connection attempts (successful or not); redials
	// those after the first; dialFailures the attempts that failed;
	// retries the retry-once second calls. Always maintained (they are
	// single atomics), so a retry storm is visible even without a
	// registry; EnableMetrics additionally exports them for scrapes.
	dials        metrics.Counter
	redials      metrics.Counter
	dialFailures metrics.Counter
	retries      metrics.Counter
}

// NewReconnecting returns a reconnecting client for addr. No connection is
// attempted until the first call.
func NewReconnecting(addr string, retryOnce bool) *ReconnectingClient {
	return &ReconnectingClient{
		addr:      addr,
		retryOnce: retryOnce,
		backoff:   100 * time.Millisecond,
	}
}

// current returns a live connection, dialing if needed.
func (r *ReconnectingClient) current() (*TCPClient, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	if r.conn != nil {
		return r.conn, nil
	}
	if r.dials.Value() > 0 {
		r.redials.Inc()
	}
	r.dials.Inc()
	conn, err := Dial(r.addr)
	if err != nil {
		r.dialFailures.Inc()
		return nil, err
	}
	r.conn = conn
	return conn, nil
}

// drop discards a connection after a transport failure, so the next call
// re-dials. Only the connection that failed is dropped (a concurrent call
// may already have re-dialed).
func (r *ReconnectingClient) drop(failed *TCPClient) {
	r.mu.Lock()
	if r.conn == failed {
		r.conn = nil
	}
	r.mu.Unlock()
	failed.Close()
}

// Call implements Client.
func (r *ReconnectingClient) Call(msgType uint8, payload []byte) ([]byte, error) {
	conn, err := r.current()
	if err == nil {
		var resp []byte
		resp, err = conn.Call(msgType, payload)
		if err == nil || IsRemote(err) {
			return resp, err
		}
		r.drop(conn)
	}
	if !r.retryOnce {
		return nil, err
	}
	r.retries.Inc()
	time.Sleep(r.backoff)
	conn, derr := r.current()
	if derr != nil {
		return nil, derr
	}
	resp, err := conn.Call(msgType, payload)
	if err != nil && !IsRemote(err) {
		r.drop(conn)
	}
	return resp, err
}

// Stats reports the client's connection-churn counters: total dial
// attempts, re-dials after the first connection, failed dials, and
// retry-once second calls. Tests and ops tooling use this to assert that a
// flapping link produced bounded churn rather than a retry storm.
func (r *ReconnectingClient) Stats() (dials, redials, dialFailures, retries uint64) {
	return r.dials.Value(), r.redials.Value(), r.dialFailures.Value(), r.retries.Value()
}

// EnableMetrics exports the connection-churn counters to reg, labeled by
// peer (the remote address or a deployment-chosen name).
func (r *ReconnectingClient) EnableMetrics(reg *metrics.Registry, peer string) {
	lbl := metrics.L("peer", peer)
	reg.CounterFunc("rpc_client_dials_total", func() float64 { return float64(r.dials.Value()) }, lbl)
	reg.CounterFunc("rpc_client_redials_total", func() float64 { return float64(r.redials.Value()) }, lbl)
	reg.CounterFunc("rpc_client_dial_failures_total", func() float64 { return float64(r.dialFailures.Value()) }, lbl)
	reg.CounterFunc("rpc_client_retries_total", func() float64 { return float64(r.retries.Value()) }, lbl)
}

// Close implements Client.
func (r *ReconnectingClient) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	if r.conn != nil {
		err := r.conn.Close()
		r.conn = nil
		return err
	}
	return nil
}
