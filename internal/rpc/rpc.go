// Package rpc is the request/response substrate connecting Chariots
// components: a small framed-message RPC over TCP with pipelining, plus an
// in-process transport with identical semantics for simulations that
// measure algorithmic (not kernel-networking) behaviour.
//
// Servers register a handler per message type. Requests on one connection
// are served in order (FIFO), which upper layers rely on for the
// "send appends to the same maintainer in the desired order" form of
// explicit ordering (§5.4); concurrency comes from multiple connections.
package rpc

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/trace"
	"repro/internal/wire"
)

// msgError is the reserved response type carrying a handler error string.
const msgError uint8 = 0xFF

// ErrClosed is returned by calls on a closed client or server.
var ErrClosed = errors.New("rpc: closed")

// Handler serves one request payload and returns the response payload.
//
// The payload is BORROWED: it aliases the connection's reusable read
// buffer and is valid only for the duration of the call. A handler that
// needs any part of it afterwards must copy (the record codec's
// materializing decoders — core.DecodeRecords / core.DecodeRecordsShared
// — already do). The returned response is owned by the RPC layer only
// until the frame is written, so handlers may return freshly built or
// long-lived slices alike.
type Handler func(payload []byte) ([]byte, error)

// Client is the calling side of the RPC substrate. Implementations are
// safe for concurrent use.
type Client interface {
	// Call sends a request of the given type and waits for its response.
	// The request payload is borrowed only for the duration of the call
	// (callers may reuse or pool it afterwards); the returned response
	// is owned by the caller.
	Call(msgType uint8, payload []byte) ([]byte, error)
	Close() error
}

// Server dispatches framed requests to registered handlers.
type Server struct {
	mu       sync.Mutex
	handlers map[uint8]Handler
	traced   map[uint8]TracedHandler
	detached map[uint8]bool
	listener net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   bool
	metrics  *serverMetrics // nil until EnableMetrics
}

// NewServer returns a server with no handlers registered.
func NewServer() *Server {
	return &Server{
		handlers: make(map[uint8]Handler),
		traced:   make(map[uint8]TracedHandler),
		detached: make(map[uint8]bool),
		conns:    make(map[net.Conn]struct{}),
	}
}

// Handle registers h for msgType. Registration must complete before the
// server starts serving; re-registering a type replaces the handler.
func (s *Server) Handle(msgType uint8, h Handler) {
	if msgType == msgError || msgType == msgTraced {
		panic("rpc: message types 0xFE and 0xFF are reserved")
	}
	s.mu.Lock()
	s.handlers[msgType] = h
	s.mu.Unlock()
}

// HandleDetached registers h like Handle, but frames of this type are
// served in their own goroutine instead of the connection's in-order
// serving loop. This is for handlers that may park (long-polls): a
// detached request does not head-of-line-block the pipelined requests
// behind it on the same connection — clients match responses by ReqID, so
// out-of-order completion is already part of the protocol. Detached
// handlers receive a private copy of the payload (the connection's read
// scratch moves on underneath them) and therefore lose the FIFO ordering
// guarantee relative to other requests on the connection.
func (s *Server) HandleDetached(msgType uint8, h Handler) {
	s.Handle(msgType, h)
	s.mu.Lock()
	s.detached[msgType] = true
	s.mu.Unlock()
}

// dispatch runs the handler for one frame and returns the response frame's
// type and payload. Traced envelope frames are unwrapped here: metrics and
// handler lookup use the inner type, and the decoded context reaches
// handlers registered with HandleTraced.
func (s *Server) dispatch(f wire.Frame) (uint8, []byte) {
	var tc trace.Ctx
	innerType, payload := f.Type, f.Payload
	if f.Type == msgTraced {
		var err error
		tc, innerType, payload, err = decodeTraced(f.Payload)
		if err != nil {
			return msgError, []byte("rpc: " + err.Error())
		}
	}
	s.mu.Lock()
	h, ok := s.handlers[innerType]
	th := s.traced[innerType]
	m := s.metrics
	s.mu.Unlock()
	if !ok {
		return msgError, []byte(fmt.Sprintf("rpc: no handler for message type %d", innerType))
	}
	invoke := func() ([]byte, error) {
		if th != nil {
			return th(&tc, payload)
		}
		return h(payload)
	}
	// The server-side rpc.serve span covers queueing plus handler time for
	// sampled requests; handler-recorded hops nest inside it on the
	// timeline, so budget attribution charges rpc.serve only for time the
	// handler didn't itself account for.
	sp := trace.Begin(tc, "rpc.serve")
	if m == nil {
		resp, err := invoke()
		sp.End(trace.Default(), trace.Outcome(err, "error"), 0, 0)
		if err != nil {
			return msgError, errorPayload(err)
		}
		return innerType, resp
	}
	m.inflight.Inc()
	start := time.Now()
	resp, err := invoke()
	sp.End(trace.Default(), trace.Outcome(err, "error"), 0, 0)
	respType := innerType
	if err != nil {
		respType, resp = msgError, errorPayload(err)
	}
	m.observe(innerType, len(payload), len(resp), start, err != nil)
	m.inflight.Dec()
	return respType, resp
}

// Listen binds to addr ("host:port"; ":0" for an ephemeral port) and starts
// serving in background goroutines. It returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return nil, ErrClosed
	}
	s.listener = l
	s.mu.Unlock()

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return // listener closed
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				conn.Close()
				return
			}
			s.conns[conn] = struct{}{}
			s.mu.Unlock()
			s.wg.Add(1)
			go s.serveConn(conn)
		}
	}()
	return l.Addr(), nil
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	// One reusable read buffer and one reusable write buffer per
	// connection: requests are served in order, so the request frame is
	// fully consumed (handlers copy what they keep) before the next read
	// overwrites the scratch.
	rd := wire.NewReader(conn)
	wbuf := wire.GetBuf()
	defer wire.PutBuf(wbuf)
	writeMu := &sync.Mutex{}
	for {
		f, err := rd.Next()
		if err != nil {
			return
		}
		// Detachment is a property of the inner message type, so a traced
		// envelope around a long-poll must be peeked before dispatch.
		dtype, _ := TracedInnerType(f.Type, f.Payload)
		s.mu.Lock()
		detached := s.detached[dtype]
		s.mu.Unlock()
		if detached {
			// The read scratch is reused by the next Next(), so the
			// detached goroutine gets its own copy of the payload and its
			// own write buffer; only the connection write lock is shared.
			g := f
			g.Payload = append([]byte(nil), f.Payload...)
			go func() {
				respType, resp := s.dispatch(g)
				dbuf := wire.GetBuf()
				writeMu.Lock()
				// A write error here also poisons the serving loop's next
				// write, which tears the connection down.
				_ = wire.WriteBuf(conn, dbuf, g.ReqID, respType, resp)
				writeMu.Unlock()
				wire.PutBuf(dbuf)
			}()
			continue
		}
		respType, resp := s.dispatch(f)
		writeMu.Lock()
		err = wire.WriteBuf(conn, wbuf, f.ReqID, respType, resp)
		writeMu.Unlock()
		if err != nil {
			return
		}
	}
}

// Close stops the listener, closes live connections, and waits for all
// connection goroutines to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	l := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}
	s.wg.Wait()
	return nil
}

// TCPClient is a Client over one TCP connection with pipelined calls.
type TCPClient struct {
	conn    net.Conn
	writeMu sync.Mutex

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan wire.Frame
	closed  bool
	readErr error
}

// Dial connects to a Server at addr.
func Dial(addr string) (*TCPClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &TCPClient{conn: conn, pending: make(map[uint64]chan wire.Frame)}
	go c.readLoop()
	return c, nil
}

func (c *TCPClient) readLoop() {
	// Responses cross a channel into the waiting Call goroutine, which
	// owns the payload after Call returns — so this loop must hand over
	// freshly allocated payloads (wire.Read), not a reused scratch.
	for {
		f, err := wire.Read(c.conn)
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			for id, ch := range c.pending {
				close(ch)
				delete(c.pending, id)
			}
			c.closed = true
			c.mu.Unlock()
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[f.ReqID]
		if ok {
			delete(c.pending, f.ReqID)
		}
		c.mu.Unlock()
		if ok {
			ch <- f
		}
	}
}

// Call implements Client.
func (c *TCPClient) Call(msgType uint8, payload []byte) ([]byte, error) {
	ch := make(chan wire.Frame, 1)
	c.mu.Lock()
	if c.closed {
		err := c.readErr
		c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return nil, err
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.mu.Unlock()

	c.writeMu.Lock()
	err := wire.Write(c.conn, id, msgType, payload)
	c.writeMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, err
	}

	f, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.readErr
		c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return nil, fmt.Errorf("rpc: connection lost: %w", err)
	}
	if f.Type == msgError {
		return nil, &RemoteError{Message: string(f.Payload)}
	}
	return f.Payload, nil
}

// Close implements Client.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	return c.conn.Close()
}

// RemoteError is an error returned by the remote handler (as opposed to a
// transport failure).
type RemoteError struct {
	Message string
}

func (e *RemoteError) Error() string { return e.Message }

// IsRemote reports whether err is an error produced by the remote handler.
func IsRemote(err error) bool {
	var re *RemoteError
	return errors.As(err, &re)
}

// retryHinter is implemented by handler errors that carry an admission
// retry-after hint (e.g. flstore's overload rejection). Errors stay string
// frames on the wire, so the hint rides as a machine-readable suffix on the
// error message and is recovered on the client side by RetryAfterHint.
type retryHinter interface {
	RetryAfterHint() time.Duration
}

// retryHintMark frames the hint suffix appended to msgError payloads:
// "<message> [retry-after-ns=<int64>]".
const retryHintMark = " [retry-after-ns="

// errorPayload renders a handler error for the msgError frame, appending
// the retry-after suffix when the error carries a hint.
func errorPayload(err error) []byte {
	msg := err.Error()
	var h retryHinter
	if errors.As(err, &h) {
		if d := h.RetryAfterHint(); d > 0 {
			return []byte(msg + retryHintMark + strconv.FormatInt(int64(d), 10) + "]")
		}
	}
	return []byte(msg)
}

// RetryAfterHint implements the hint interface on the receiving side: it
// parses the suffix errorPayload appended, so a RemoteError exposes the
// same hint the handler's error carried. Returns 0 when none was encoded.
func (e *RemoteError) RetryAfterHint() time.Duration {
	i := strings.LastIndex(e.Message, retryHintMark)
	if i < 0 || !strings.HasSuffix(e.Message, "]") {
		return 0
	}
	ns, err := strconv.ParseInt(e.Message[i+len(retryHintMark):len(e.Message)-1], 10, 64)
	if err != nil || ns <= 0 {
		return 0
	}
	return time.Duration(ns)
}

// LocalClient is a Client that invokes a Server's handlers directly in
// process — same dispatch semantics, no sockets. Simulations use it when
// the experiment measures the algorithms rather than kernel networking.
type LocalClient struct {
	srv    *Server
	mu     sync.Mutex
	closed bool
}

// NewLocalClient returns an in-process client for s.
func NewLocalClient(s *Server) *LocalClient { return &LocalClient{srv: s} }

// Call implements Client.
func (c *LocalClient) Call(msgType uint8, payload []byte) ([]byte, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	respType, resp := c.srv.dispatch(wire.Frame{Type: msgType, Payload: payload})
	if respType == msgError {
		return nil, &RemoteError{Message: string(resp)}
	}
	return resp, nil
}

// Close implements Client.
func (c *LocalClient) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return nil
}
