package rpc

import (
	"strconv"
	"sync"
	"time"

	"repro/internal/metrics"
)

// serverMetrics instruments one Server's dispatch path. All series carry a
// component label (e.g. "maintainer", "controller", "ingest") so one
// process hosting several RPC servers exports distinguishable streams.
type serverMetrics struct {
	reg       *metrics.Registry
	component string

	inflight *metrics.Gauge
	bytesIn  *metrics.Counter
	bytesOut *metrics.Counter
	errors   *metrics.Counter

	mu      sync.Mutex
	latency map[uint8]*metrics.BucketHistogram // per message type
}

// EnableMetrics registers this server's dispatch instrumentation with reg:
// per-message-type call latency histograms, an in-flight requests gauge,
// payload bytes in/out, and a handler-error counter. Call before Listen;
// the instruments are shared by all connections.
func (s *Server) EnableMetrics(reg *metrics.Registry, component string) {
	lbl := metrics.L("component", component)
	m := &serverMetrics{
		reg:       reg,
		component: component,
		inflight:  reg.Gauge("rpc_server_inflight_requests", lbl),
		bytesIn:   reg.Counter("rpc_server_bytes_in_total", lbl),
		bytesOut:  reg.Counter("rpc_server_bytes_out_total", lbl),
		errors:    reg.Counter("rpc_server_errors_total", lbl),
		latency:   make(map[uint8]*metrics.BucketHistogram),
	}
	s.mu.Lock()
	s.metrics = m
	s.mu.Unlock()
}

// histFor returns (lazily creating) the latency histogram for one message
// type. Message types are a small fixed space, so per-type series are
// bounded cardinality.
func (m *serverMetrics) histFor(msgType uint8) *metrics.BucketHistogram {
	m.mu.Lock()
	h, ok := m.latency[msgType]
	if !ok {
		h = m.reg.Histogram("rpc_server_call_seconds", metrics.LatencyBuckets,
			metrics.L("component", m.component),
			metrics.L("msg_type", strconv.Itoa(int(msgType))))
		m.latency[msgType] = h
	}
	m.mu.Unlock()
	return h
}

// observe wraps one dispatch: in-flight accounting, latency, byte and error
// counts. respLen/isErr describe the response frame.
func (m *serverMetrics) observe(msgType uint8, reqLen, respLen int, start time.Time, isErr bool) {
	m.histFor(msgType).ObserveSince(start)
	m.bytesIn.Add(uint64(reqLen))
	m.bytesOut.Add(uint64(respLen))
	if isErr {
		m.errors.Inc()
	}
}
