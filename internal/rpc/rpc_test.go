package rpc

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

const (
	msgEcho  uint8 = 1
	msgFail  uint8 = 2
	msgUpper uint8 = 3
)

func newEchoServer(t *testing.T) (*Server, string) {
	t.Helper()
	s := NewServer()
	s.Handle(msgEcho, func(p []byte) ([]byte, error) { return p, nil })
	s.Handle(msgFail, func(p []byte) ([]byte, error) { return nil, errors.New("boom") })
	s.Handle(msgUpper, func(p []byte) ([]byte, error) { return bytes.ToUpper(p), nil })
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, addr.String()
}

func TestTCPCallRoundTrip(t *testing.T) {
	_, addr := newEchoServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Call(msgEcho, []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "ping" {
		t.Errorf("resp = %q", resp)
	}
	up, err := c.Call(msgUpper, []byte("abc"))
	if err != nil {
		t.Fatal(err)
	}
	if string(up) != "ABC" {
		t.Errorf("upper = %q", up)
	}
}

func TestTCPRemoteError(t *testing.T) {
	_, addr := newEchoServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Call(msgFail, nil)
	if err == nil || !IsRemote(err) {
		t.Fatalf("err = %v, want remote error", err)
	}
	if err.Error() != "boom" {
		t.Errorf("message = %q", err.Error())
	}
	// Connection must remain usable after a handler error.
	if _, err := c.Call(msgEcho, []byte("x")); err != nil {
		t.Errorf("call after remote error: %v", err)
	}
}

func TestTCPUnknownType(t *testing.T) {
	_, addr := newEchoServer(t)
	c, _ := Dial(addr)
	defer c.Close()
	_, err := c.Call(200, nil)
	if err == nil || !IsRemote(err) {
		t.Fatalf("err = %v, want remote error for unknown type", err)
	}
}

func TestTCPConcurrentCalls(t *testing.T) {
	_, addr := newEchoServer(t)
	c, _ := Dial(addr)
	defer c.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				msg := []byte(fmt.Sprintf("g%d-i%d", g, i))
				resp, err := c.Call(msgEcho, msg)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(resp, msg) {
					errs <- fmt.Errorf("response mismatch: %q != %q", resp, msg)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestTCPMultipleClients(t *testing.T) {
	_, addr := newEchoServer(t)
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			msg := []byte{byte(i)}
			resp, err := c.Call(msgEcho, msg)
			if err != nil || !bytes.Equal(resp, msg) {
				t.Errorf("client %d: %v %v", i, resp, err)
			}
		}(i)
	}
	wg.Wait()
}

func TestCallAfterClientClose(t *testing.T) {
	_, addr := newEchoServer(t)
	c, _ := Dial(addr)
	c.Close()
	if _, err := c.Call(msgEcho, nil); err == nil {
		t.Error("Call after Close succeeded")
	}
	if err := c.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}

func TestCallAfterServerClose(t *testing.T) {
	s, addr := newEchoServer(t)
	c, _ := Dial(addr)
	defer c.Close()
	if _, err := c.Call(msgEcho, []byte("warm")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := c.Call(msgEcho, nil); err == nil {
		t.Error("Call after server close succeeded")
	}
}

func TestServerDoubleCloseIdempotent(t *testing.T) {
	s, _ := newEchoServer(t)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestReservedTypePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Handle(0xFF) did not panic")
		}
	}()
	NewServer().Handle(0xFF, func(p []byte) ([]byte, error) { return nil, nil })
}

func TestLocalClient(t *testing.T) {
	s := NewServer()
	s.Handle(msgEcho, func(p []byte) ([]byte, error) { return p, nil })
	s.Handle(msgFail, func(p []byte) ([]byte, error) { return nil, errors.New("local boom") })
	c := NewLocalClient(s)
	resp, err := c.Call(msgEcho, []byte("in-proc"))
	if err != nil || string(resp) != "in-proc" {
		t.Errorf("local call = %q, %v", resp, err)
	}
	if _, err := c.Call(msgFail, nil); !IsRemote(err) {
		t.Errorf("local remote error = %v", err)
	}
	if _, err := c.Call(99, nil); !IsRemote(err) {
		t.Errorf("local unknown type = %v", err)
	}
	c.Close()
	if _, err := c.Call(msgEcho, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("call after close = %v", err)
	}
}

func BenchmarkLocalCall(b *testing.B) {
	s := NewServer()
	s.Handle(msgEcho, func(p []byte) ([]byte, error) { return p, nil })
	c := NewLocalClient(s)
	payload := make([]byte, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call(msgEcho, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTCPCall(b *testing.B) {
	s := NewServer()
	s.Handle(msgEcho, func(p []byte) ([]byte, error) { return p, nil })
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(addr.String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	payload := make([]byte, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call(msgEcho, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDetachedHandlerDoesNotBlockPipeline pins the property the flstore
// tail subscription depends on: a long-poll handler registered with
// HandleDetached parks on its own goroutine, so a pipelined request on the
// same connection is served while the long-poll is still outstanding.
func TestDetachedHandlerDoesNotBlockPipeline(t *testing.T) {
	const msgPark uint8 = 4
	s := NewServer()
	s.Handle(msgEcho, func(p []byte) ([]byte, error) { return p, nil })
	entered := make(chan struct{})
	release := make(chan struct{})
	s.HandleDetached(msgPark, func(p []byte) ([]byte, error) {
		close(entered)
		<-release
		return append([]byte("woke:"), p...), nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	parked := make(chan error, 1)
	var parkedResp []byte
	go func() {
		resp, err := c.Call(msgPark, []byte("tail"))
		parkedResp = resp
		parked <- err
	}()
	// Only proceed once the server has dispatched the long-poll, so the
	// echo below genuinely shares the connection with a parked handler.
	<-entered
	resp, err := c.Call(msgEcho, []byte("ping"))
	if err != nil {
		t.Fatalf("pipelined echo behind parked long-poll: %v", err)
	}
	if string(resp) != "ping" {
		t.Errorf("echo = %q", resp)
	}
	select {
	case err := <-parked:
		t.Fatalf("long-poll completed before release (err=%v)", err)
	default:
	}
	close(release)
	if err := <-parked; err != nil {
		t.Fatal(err)
	}
	if string(parkedResp) != "woke:tail" {
		t.Errorf("long-poll response = %q", parkedResp)
	}
}
