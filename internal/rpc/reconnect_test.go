package rpc

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/metrics"
)

// restartableServer lets a test kill and revive a server on a fixed port.
type restartableServer struct {
	t    *testing.T
	addr string
	srv  *Server
}

func newRestartable(t *testing.T) *restartableServer {
	t.Helper()
	// Reserve a port by listening and closing.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	rs := &restartableServer{t: t, addr: addr}
	rs.start()
	return rs
}

func (rs *restartableServer) start() {
	rs.t.Helper()
	srv := NewServer()
	srv.Handle(msgEcho, func(p []byte) ([]byte, error) { return p, nil })
	srv.Handle(msgFail, func(p []byte) ([]byte, error) { return nil, errors.New("boom") })
	// The freed port may linger in TIME_WAIT briefly; retry.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := srv.Listen(rs.addr); err == nil {
			break
		} else if time.Now().After(deadline) {
			rs.t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	rs.srv = srv
	rs.t.Cleanup(func() { srv.Close() })
}

func (rs *restartableServer) stop() { rs.srv.Close() }

func TestReconnectingClientBasicCall(t *testing.T) {
	rs := newRestartable(t)
	c := NewReconnecting(rs.addr, true)
	defer c.Close()
	resp, err := c.Call(msgEcho, []byte("hi"))
	if err != nil || string(resp) != "hi" {
		t.Fatalf("call = %q, %v", resp, err)
	}
	// Remote errors pass through without reconnecting.
	if _, err := c.Call(msgFail, nil); !IsRemote(err) {
		t.Errorf("remote error = %v", err)
	}
}

func TestReconnectingClientSurvivesRestart(t *testing.T) {
	rs := newRestartable(t)
	c := NewReconnecting(rs.addr, true)
	c.Backoff = Backoff{Base: 5 * time.Millisecond, Max: 5 * time.Millisecond}
	defer c.Close()
	if _, err := c.Call(msgEcho, []byte("warm")); err != nil {
		t.Fatal(err)
	}
	rs.stop()
	rs.start()
	// The old connection is dead; the retry path must re-dial.
	resp, err := c.Call(msgEcho, []byte("after-restart"))
	if err != nil {
		t.Fatalf("call after restart: %v", err)
	}
	if string(resp) != "after-restart" {
		t.Errorf("resp = %q", resp)
	}
	// One flap must cost exactly one retry and one re-dial — a retry
	// storm here would multiply WAN traffic invisibly in production.
	dials, redials, dialFailures, retries := c.Stats()
	if dials != 2 || redials != 1 || retries != 1 {
		t.Errorf("stats after one flap: dials=%d redials=%d retries=%d, want 2/1/1", dials, redials, retries)
	}
	if dialFailures != 0 {
		t.Errorf("dialFailures = %d, want 0 (server was back before the retry)", dialFailures)
	}
}

func TestReconnectingClientNoRetry(t *testing.T) {
	rs := newRestartable(t)
	c := NewReconnecting(rs.addr, false)
	defer c.Close()
	if _, err := c.Call(msgEcho, []byte("x")); err != nil {
		t.Fatal(err)
	}
	rs.stop()
	if _, err := c.Call(msgEcho, []byte("y")); err == nil {
		t.Error("call through dead server succeeded without retry")
	}
	// After the server returns, the NEXT call re-dials even without the
	// retry-once policy (reconnection is lazy, retry is per-call).
	rs.start()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := c.Call(msgEcho, []byte("z")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never reconnected")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestReconnectingClientClosed(t *testing.T) {
	rs := newRestartable(t)
	c := NewReconnecting(rs.addr, true)
	c.Close()
	if _, err := c.Call(msgEcho, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("call after close = %v", err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestReconnectingClientDialFailure(t *testing.T) {
	c := NewReconnecting("127.0.0.1:1", false) // nothing listens on port 1
	defer c.Close()
	if _, err := c.Call(msgEcho, nil); err == nil {
		t.Error("call to dead address succeeded")
	}
	dials, _, dialFailures, retries := c.Stats()
	if dials != 1 || dialFailures != 1 || retries != 0 {
		t.Errorf("stats = dials %d, failures %d, retries %d; want 1/1/0", dials, dialFailures, retries)
	}
}

// TestBackoffScheduleDoublesAndCaps pins the redial schedule itself: pure
// function of the failure streak, no wall clock involved.
func TestBackoffScheduleDoublesAndCaps(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 800 * time.Millisecond, Factor: 2}
	want := []time.Duration{0,
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, 800 * time.Millisecond, 800 * time.Millisecond}
	for streak, w := range want {
		if got := b.Delay(streak, nil); got != w {
			t.Errorf("Delay(%d) = %v, want %v", streak, got, w)
		}
	}
	// The zero value falls back to sane defaults rather than a zero sleep
	// (which would spin-dial a dead peer).
	var zero Backoff
	if got := zero.Delay(1, nil); got != 100*time.Millisecond {
		t.Errorf("zero-value Delay(1) = %v, want 100ms default", got)
	}
	if got := zero.Delay(20, nil); got != 5*time.Second {
		t.Errorf("zero-value Delay(20) = %v, want 5s cap", got)
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0.2}
	lo := b.Delay(1, func() float64 { return 0 })
	hi := b.Delay(1, func() float64 { return 0.999999 })
	mid := b.Delay(1, func() float64 { return 0.5 })
	if lo != 80*time.Millisecond {
		t.Errorf("jitter floor = %v, want 80ms (1-J)", lo)
	}
	if hi <= 119*time.Millisecond || hi > 120*time.Millisecond {
		t.Errorf("jitter ceiling = %v, want ~120ms (1+J)", hi)
	}
	if mid != 100*time.Millisecond {
		t.Errorf("jitter midpoint = %v, want 100ms", mid)
	}
}

// TestReconnectBackoffGrowsAndResets drives a client against a flapping
// server with an injected (fake) clock: the recorded sleeps must follow the
// exponential schedule while the server is down and the streak must reset
// to zero on the first successful exchange.
func TestReconnectBackoffGrowsAndResets(t *testing.T) {
	rs := newRestartable(t)
	c := NewReconnecting(rs.addr, false)
	c.Backoff = Backoff{Base: 100 * time.Millisecond, Max: 400 * time.Millisecond, Factor: 2}
	var slept []time.Duration
	c.sleep = func(d time.Duration) { slept = append(slept, d) }
	c.rnd = nil // jitter off: the schedule must be exact
	defer c.Close()

	if _, err := c.Call(msgEcho, []byte("warm")); err != nil {
		t.Fatal(err)
	}
	if got := c.CurrentBackoff(); got != 0 {
		t.Fatalf("backoff while healthy = %v, want 0", got)
	}
	rs.stop()
	// Six failing calls: the first fails with no sleep (streak was 0), each
	// later one waits the delay published by the previous failure.
	for i := 0; i < 6; i++ {
		if _, err := c.Call(msgEcho, []byte("down")); err == nil {
			t.Fatalf("call %d against stopped server succeeded", i)
		}
	}
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond,
		400 * time.Millisecond, 400 * time.Millisecond, 400 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Errorf("sleep %d = %v, want %v", i, slept[i], want[i])
		}
	}
	if got := c.CurrentBackoff(); got != 400*time.Millisecond {
		t.Errorf("backoff after 6 failures = %v, want 400ms cap", got)
	}

	rs.start()
	if _, err := c.Call(msgEcho, []byte("back")); err != nil {
		t.Fatalf("call after restart: %v", err)
	}
	if got := c.CurrentBackoff(); got != 0 {
		t.Errorf("backoff after recovery = %v, want 0 (streak reset)", got)
	}
	// A fresh flap restarts the schedule from Base, not from the cap.
	rs.stop()
	slept = nil
	c.Call(msgEcho, []byte("down-again"))
	c.Call(msgEcho, []byte("down-again"))
	if len(slept) != 1 || slept[0] != 100*time.Millisecond {
		t.Errorf("post-reset sleeps = %v, want [100ms]", slept)
	}
	rs.start()
}

// TestBackoffGaugeExported verifies the live backoff is visible to scrapes
// and returns to zero once the link heals.
func TestBackoffGaugeExported(t *testing.T) {
	rs := newRestartable(t)
	c := NewReconnecting(rs.addr, false)
	c.Backoff = Backoff{Base: 250 * time.Millisecond, Max: time.Second, Factor: 2}
	c.sleep = func(time.Duration) {}
	c.rnd = nil
	defer c.Close()
	reg := metrics.NewRegistry()
	c.EnableMetrics(reg, "peer0")
	find := func() float64 {
		s := reg.Snapshot().Find("rpc_client_backoff_seconds", map[string]string{"peer": "peer0"})
		if s == nil {
			t.Fatal("rpc_client_backoff_seconds not exported")
		}
		return s.Value
	}
	if _, err := c.Call(msgEcho, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if v := find(); v != 0 {
		t.Errorf("gauge while healthy = %v, want 0", v)
	}
	rs.stop()
	c.Call(msgEcho, []byte("b"))
	if v := find(); v != 0.25 {
		t.Errorf("gauge after first failure = %v, want 0.25", v)
	}
	rs.start()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := c.Call(msgEcho, []byte("c")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never reconnected")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if v := find(); v != 0 {
		t.Errorf("gauge after recovery = %v, want 0", v)
	}
}

// TestReconnectCountersExported verifies the registry view of the churn
// counters matches Stats, so dashboards see the same numbers tests assert.
func TestReconnectCountersExported(t *testing.T) {
	rs := newRestartable(t)
	c := NewReconnecting(rs.addr, true)
	c.Backoff = Backoff{Base: 5 * time.Millisecond, Max: 5 * time.Millisecond}
	defer c.Close()
	reg := metrics.NewRegistry()
	c.EnableMetrics(reg, rs.addr)
	if _, err := c.Call(msgEcho, []byte("a")); err != nil {
		t.Fatal(err)
	}
	rs.stop()
	rs.start()
	if _, err := c.Call(msgEcho, []byte("b")); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	want := map[string]uint64{}
	want["rpc_client_dials_total"], want["rpc_client_redials_total"], want["rpc_client_dial_failures_total"], want["rpc_client_retries_total"] = c.Stats()
	for name, v := range want {
		s := snap.Find(name, map[string]string{"peer": rs.addr})
		if s == nil {
			t.Errorf("%s not exported", name)
			continue
		}
		if s.Value != float64(v) {
			t.Errorf("%s = %v, Stats says %d", name, s.Value, v)
		}
	}
}
