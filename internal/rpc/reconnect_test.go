package rpc

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/metrics"
)

// restartableServer lets a test kill and revive a server on a fixed port.
type restartableServer struct {
	t    *testing.T
	addr string
	srv  *Server
}

func newRestartable(t *testing.T) *restartableServer {
	t.Helper()
	// Reserve a port by listening and closing.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	rs := &restartableServer{t: t, addr: addr}
	rs.start()
	return rs
}

func (rs *restartableServer) start() {
	rs.t.Helper()
	srv := NewServer()
	srv.Handle(msgEcho, func(p []byte) ([]byte, error) { return p, nil })
	srv.Handle(msgFail, func(p []byte) ([]byte, error) { return nil, errors.New("boom") })
	// The freed port may linger in TIME_WAIT briefly; retry.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := srv.Listen(rs.addr); err == nil {
			break
		} else if time.Now().After(deadline) {
			rs.t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	rs.srv = srv
	rs.t.Cleanup(func() { srv.Close() })
}

func (rs *restartableServer) stop() { rs.srv.Close() }

func TestReconnectingClientBasicCall(t *testing.T) {
	rs := newRestartable(t)
	c := NewReconnecting(rs.addr, true)
	defer c.Close()
	resp, err := c.Call(msgEcho, []byte("hi"))
	if err != nil || string(resp) != "hi" {
		t.Fatalf("call = %q, %v", resp, err)
	}
	// Remote errors pass through without reconnecting.
	if _, err := c.Call(msgFail, nil); !IsRemote(err) {
		t.Errorf("remote error = %v", err)
	}
}

func TestReconnectingClientSurvivesRestart(t *testing.T) {
	rs := newRestartable(t)
	c := NewReconnecting(rs.addr, true)
	c.backoff = 5 * time.Millisecond
	defer c.Close()
	if _, err := c.Call(msgEcho, []byte("warm")); err != nil {
		t.Fatal(err)
	}
	rs.stop()
	rs.start()
	// The old connection is dead; the retry path must re-dial.
	resp, err := c.Call(msgEcho, []byte("after-restart"))
	if err != nil {
		t.Fatalf("call after restart: %v", err)
	}
	if string(resp) != "after-restart" {
		t.Errorf("resp = %q", resp)
	}
	// One flap must cost exactly one retry and one re-dial — a retry
	// storm here would multiply WAN traffic invisibly in production.
	dials, redials, dialFailures, retries := c.Stats()
	if dials != 2 || redials != 1 || retries != 1 {
		t.Errorf("stats after one flap: dials=%d redials=%d retries=%d, want 2/1/1", dials, redials, retries)
	}
	if dialFailures != 0 {
		t.Errorf("dialFailures = %d, want 0 (server was back before the retry)", dialFailures)
	}
}

func TestReconnectingClientNoRetry(t *testing.T) {
	rs := newRestartable(t)
	c := NewReconnecting(rs.addr, false)
	defer c.Close()
	if _, err := c.Call(msgEcho, []byte("x")); err != nil {
		t.Fatal(err)
	}
	rs.stop()
	if _, err := c.Call(msgEcho, []byte("y")); err == nil {
		t.Error("call through dead server succeeded without retry")
	}
	// After the server returns, the NEXT call re-dials even without the
	// retry-once policy (reconnection is lazy, retry is per-call).
	rs.start()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := c.Call(msgEcho, []byte("z")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never reconnected")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestReconnectingClientClosed(t *testing.T) {
	rs := newRestartable(t)
	c := NewReconnecting(rs.addr, true)
	c.Close()
	if _, err := c.Call(msgEcho, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("call after close = %v", err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestReconnectingClientDialFailure(t *testing.T) {
	c := NewReconnecting("127.0.0.1:1", false) // nothing listens on port 1
	defer c.Close()
	if _, err := c.Call(msgEcho, nil); err == nil {
		t.Error("call to dead address succeeded")
	}
	dials, _, dialFailures, retries := c.Stats()
	if dials != 1 || dialFailures != 1 || retries != 0 {
		t.Errorf("stats = dials %d, failures %d, retries %d; want 1/1/0", dials, dialFailures, retries)
	}
}

// TestReconnectCountersExported verifies the registry view of the churn
// counters matches Stats, so dashboards see the same numbers tests assert.
func TestReconnectCountersExported(t *testing.T) {
	rs := newRestartable(t)
	c := NewReconnecting(rs.addr, true)
	c.backoff = 5 * time.Millisecond
	defer c.Close()
	reg := metrics.NewRegistry()
	c.EnableMetrics(reg, rs.addr)
	if _, err := c.Call(msgEcho, []byte("a")); err != nil {
		t.Fatal(err)
	}
	rs.stop()
	rs.start()
	if _, err := c.Call(msgEcho, []byte("b")); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	want := map[string]uint64{}
	want["rpc_client_dials_total"], want["rpc_client_redials_total"], want["rpc_client_dial_failures_total"], want["rpc_client_retries_total"] = c.Stats()
	for name, v := range want {
		s := snap.Find(name, map[string]string{"peer": rs.addr})
		if s == nil {
			t.Errorf("%s not exported", name)
			continue
		}
		if s.Value != float64(v) {
			t.Errorf("%s = %v, Stats says %d", name, s.Value, v)
		}
	}
}
