package rpc

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/metrics"
)

func TestServerMetricsDispatch(t *testing.T) {
	srv := NewServer()
	srv.Handle(msgEcho, func(p []byte) ([]byte, error) { return p, nil })
	srv.Handle(msgFail, func(p []byte) ([]byte, error) { return nil, errors.New("boom") })
	reg := metrics.NewRegistry()
	srv.EnableMetrics(reg, "test")
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	payload := []byte("0123456789")
	for i := 0; i < 5; i++ {
		if _, err := c.Call(msgEcho, payload); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Call(msgFail, nil); !IsRemote(err) {
		t.Fatalf("want remote error, got %v", err)
	}

	snap := reg.Snapshot()
	lat := snap.Find("rpc_server_call_seconds", map[string]string{"component": "test", "msg_type": "1"})
	if lat == nil || lat.Count != 5 {
		t.Errorf("echo latency series = %+v, want count 5", lat)
	}
	if s := snap.Find("rpc_server_bytes_in_total", nil); s == nil || s.Value < 50 {
		t.Errorf("bytes_in = %+v, want >= 50", s)
	}
	if s := snap.Find("rpc_server_bytes_out_total", nil); s == nil || s.Value < 50 {
		t.Errorf("bytes_out = %+v, want >= 50", s)
	}
	if s := snap.Find("rpc_server_errors_total", nil); s == nil || s.Value != 1 {
		t.Errorf("errors = %+v, want 1", s)
	}
	if s := snap.Find("rpc_server_inflight_requests", nil); s == nil || s.Value != 0 {
		t.Errorf("inflight after quiesce = %+v, want 0", s)
	}

	// The series also render in exposition format.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `rpc_server_call_seconds_count{component="test",msg_type="1"} 5`) {
		t.Errorf("exposition missing call count:\n%s", b.String())
	}
}
