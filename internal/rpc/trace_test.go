package rpc

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

func TestTracedHeaderRoundtrip(t *testing.T) {
	tc := trace.Ctx{T: 0xabc, S: 0xdef, F: trace.FlagSampled | trace.FlagForced}
	p := appendTracedHeader(nil, tc, 42)
	p = append(p, "hello"...)

	got, inner, body, err := decodeTraced(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.T != tc.T || got.S != tc.S || got.F != tc.F {
		t.Fatalf("roundtrip: %+v vs %+v", got, tc)
	}
	if got.At == 0 {
		t.Fatal("decode did not restamp At")
	}
	if inner != 42 || string(body) != "hello" {
		t.Fatalf("inner=%d body=%q", inner, body)
	}

	if _, _, _, err := decodeTraced(p[:10]); err == nil {
		t.Fatal("short header decoded")
	}
}

func TestCallTracedOverTCP(t *testing.T) {
	trace.Default().Reset()
	srv := NewServer()
	var gotCtx trace.Ctx
	srv.HandleTraced(7, func(tc *trace.Ctx, p []byte) ([]byte, error) {
		gotCtx = *tc
		tc.Hop(trace.Default(), "handler.work", 0, "", 0, 1)
		return append([]byte("ok:"), p...), nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	tc := trace.Forced()
	rootS := tc.Hop(trace.Default(), "client.send", 0, "", 0, 1)
	resp, err := CallTraced(c, &tc, 7, []byte("ping"))
	if err != nil || string(resp) != "ok:ping" {
		t.Fatalf("resp=%q err=%v", resp, err)
	}
	if gotCtx.T != tc.T {
		t.Fatalf("server saw trace %v, want %v", gotCtx.T, tc.T)
	}
	if gotCtx.S != rootS {
		t.Fatalf("server parent span %v, want client span %v", gotCtx.S, rootS)
	}
	if !gotCtx.Sampled() {
		t.Fatal("server ctx not sampled")
	}

	spans := trace.Default().Snapshot(trace.Filter{Trace: tc.T})
	stages := make(map[string]bool)
	for _, s := range spans {
		stages[s.Stage] = true
	}
	for _, want := range []string{"client.send", "rpc.call", "rpc.serve", "handler.work"} {
		if !stages[want] {
			t.Fatalf("missing stage %q in %v", want, spans)
		}
	}
}

func TestCallTracedUnsampledUsesPlainFrame(t *testing.T) {
	srv := NewServer()
	srv.HandleTraced(7, func(tc *trace.Ctx, p []byte) ([]byte, error) {
		if tc.Sampled() {
			return nil, errors.New("unexpectedly sampled")
		}
		return []byte("plain"), nil
	})
	c := NewLocalClient(srv)
	defer c.Close()

	var tc trace.Ctx
	resp, err := CallTraced(c, &tc, 7, []byte("x"))
	if err != nil || string(resp) != "plain" {
		t.Fatalf("resp=%q err=%v", resp, err)
	}
	// nil ctx degrades too
	if _, err := CallTraced(c, nil, 7, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTracedEnvelopeToPlainHandler(t *testing.T) {
	srv := NewServer()
	srv.Handle(9, func(p []byte) ([]byte, error) { return []byte("legacy"), nil })
	c := NewLocalClient(srv)
	defer c.Close()
	tc := trace.Forced()
	resp, err := CallTraced(c, &tc, 9, nil)
	if err != nil || string(resp) != "legacy" {
		t.Fatalf("resp=%q err=%v", resp, err)
	}
}

func TestTracedErrorPropagation(t *testing.T) {
	srv := NewServer()
	srv.HandleTraced(9, func(tc *trace.Ctx, p []byte) ([]byte, error) {
		return nil, errors.New("boom")
	})
	c := NewLocalClient(srv)
	defer c.Close()
	tc := trace.Forced()
	_, err := CallTraced(c, &tc, 9, nil)
	if !IsRemote(err) || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err=%v", err)
	}
}

func TestTracedDetachedPeek(t *testing.T) {
	srv := NewServer()
	release := make(chan struct{})
	srv.HandleTracedDetached(11, func(tc *trace.Ctx, p []byte) ([]byte, error) {
		<-release
		return []byte("late"), nil
	})
	srv.Handle(12, func(p []byte) ([]byte, error) { return []byte("fast"), nil })
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// A traced long-poll must not head-of-line-block the plain request
	// pipelined behind it on the same connection.
	done := make(chan error, 1)
	go func() {
		tc := trace.Forced()
		resp, err := CallTraced(c, &tc, 11, nil)
		if err == nil && string(resp) != "late" {
			err = errors.New("bad detached resp")
		}
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	resp, err := c.Call(12, nil)
	if err != nil || string(resp) != "fast" {
		t.Fatalf("pipelined call blocked: resp=%q err=%v", resp, err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestTracedInnerTypePeek(t *testing.T) {
	tc := trace.Forced()
	p := appendTracedHeader(nil, tc, 33)
	if it, ok := TracedInnerType(msgTraced, p); !ok || it != 33 {
		t.Fatalf("peek: %d %v", it, ok)
	}
	if it, ok := TracedInnerType(5, p); ok || it != 5 {
		t.Fatalf("plain peek: %d %v", it, ok)
	}
	if got, ok := TracedContext(msgTraced, p); !ok || got.T != tc.T {
		t.Fatalf("ctx peek: %+v %v", got, ok)
	}
	if _, ok := TracedContext(4, nil); ok {
		t.Fatal("plain frame yielded ctx")
	}
}

func TestHandleReservedPanics(t *testing.T) {
	srv := NewServer()
	for _, typ := range []uint8{msgError, msgTraced} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("registering type %#x did not panic", typ)
				}
			}()
			srv.Handle(typ, func(p []byte) ([]byte, error) { return nil, nil })
		}()
	}
}
