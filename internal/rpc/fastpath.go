package rpc

import (
	"encoding/binary"

	"repro/internal/wire"
)

// CallU64s issues a fixed-word control call: the words are encoded
// little-endian into a pooled wire buffer, the call is made, and the
// buffer is returned to the pool. This is the allocation-free fast path
// for tiny control frames that ride the append hot path — replica
// invalidation announcements, frontier/watermark probes — where an
// encode-side allocation per append would show up in the alloc budgets.
// The response (if any) is owned by the caller, as with Client.Call.
func CallU64s(c Client, msgType uint8, words ...uint64) ([]byte, error) {
	req := wire.GetBuf()
	for _, w := range words {
		*req = binary.LittleEndian.AppendUint64(*req, w)
	}
	resp, err := c.Call(msgType, *req)
	wire.PutBuf(req)
	return resp, err
}
