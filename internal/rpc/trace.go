package rpc

import (
	"encoding/binary"
	"errors"
	"time"

	"repro/internal/trace"
	"repro/internal/wire"
)

// Trace propagation over the wire: a sampled call is wrapped in a
// reserved envelope frame (msgTraced) whose payload prefixes the inner
// message with the 17-byte trace header, so the framed protocol itself
// is unchanged and unsampled traffic never pays for the header. The
// server unwraps the envelope, reconstructs the trace context, and hands
// it to the handler when one was registered with HandleTraced (plain
// handlers still work — they just can't record spans).
//
// Envelope payload layout (little-endian):
//
//	u64 traceID | u64 spanID | u8 flags | u8 innerType | inner payload
//
// Only (T, S, F) cross the wire. The receiver restamps the context's At
// at arrival, so network transit shows up as the queue component of the
// first server-side hop rather than being misattributed to the sender.

// msgTraced is the reserved envelope type for trace-carrying requests.
const msgTraced uint8 = 0xFE

// tracedHeaderLen is the envelope prefix: trace id, span id, flags,
// inner message type.
const tracedHeaderLen = 8 + 8 + 1 + 1

var errShortTraced = errors.New("rpc: traced frame shorter than header")

// appendTracedHeader prefixes dst with the envelope header for tc/inner.
func appendTracedHeader(dst []byte, tc trace.Ctx, inner uint8) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(tc.T))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(tc.S))
	dst = append(dst, tc.F, inner)
	return dst
}

// decodeTraced unwraps an envelope payload into the trace context
// (restamped at now), the inner message type, and the inner payload
// (aliasing p).
func decodeTraced(p []byte) (trace.Ctx, uint8, []byte, error) {
	if len(p) < tracedHeaderLen {
		return trace.Ctx{}, 0, nil, errShortTraced
	}
	tc := trace.Ctx{
		T:  trace.TraceID(binary.LittleEndian.Uint64(p)),
		S:  trace.SpanID(binary.LittleEndian.Uint64(p[8:])),
		F:  p[16],
		At: time.Now().UnixNano(),
	}
	return tc, p[17], p[tracedHeaderLen:], nil
}

// TracedHandler is a Handler that also receives the caller's trace
// context. The context is the zero Ctx (unsampled) when the request
// arrived without an envelope; handlers record spans only through it, so
// the unsampled path stays branch-and-return. Handlers may advance the
// context (Hop) freely — it is private to the request.
type TracedHandler func(tc *trace.Ctx, payload []byte) ([]byte, error)

// HandleTraced registers h for msgType for both plain and traced
// requests: envelope frames reach it with the decoded context, plain
// frames with the zero context.
func (s *Server) HandleTraced(msgType uint8, h TracedHandler) {
	s.Handle(msgType, func(p []byte) ([]byte, error) {
		tc := trace.Ctx{}
		return h(&tc, p)
	})
	s.mu.Lock()
	s.traced[msgType] = h
	s.mu.Unlock()
}

// HandleTracedDetached is HandleTraced plus the detached (own-goroutine)
// serving of HandleDetached.
func (s *Server) HandleTracedDetached(msgType uint8, h TracedHandler) {
	s.HandleTraced(msgType, h)
	s.mu.Lock()
	s.detached[msgType] = true
	s.mu.Unlock()
}

// CallTraced issues a call carrying tc's trace context to the server.
// Unsampled contexts (or nil) degrade to a plain c.Call — one branch, no
// envelope, no allocation. Sampled calls record an "rpc.call" span
// around the exchange and advance tc's hop timestamp past it, so the
// caller's next hop doesn't re-cover the server's time.
//
// Works over any Client (TCP, local, reconnecting, fault-injecting
// wrappers) since the envelope is ordinary payload bytes to them.
func CallTraced(c Client, tc *trace.Ctx, msgType uint8, payload []byte) ([]byte, error) {
	if tc == nil || !tc.Sampled() {
		return c.Call(msgType, payload)
	}
	st := trace.Begin(*tc, "rpc.call")
	buf := wire.GetBuf()
	*buf = appendTracedHeader(*buf, *tc, msgType)
	*buf = append(*buf, payload...)
	resp, err := c.Call(msgTraced, *buf)
	wire.PutBuf(buf)
	st.End(trace.Default(), trace.Outcome(err, "error"), 0, 0)
	tc.At = time.Now().UnixNano()
	return resp, err
}

// TracedInnerType peeks the inner message type of a traced envelope
// payload (fault injectors use it to apply per-type fault rules to the
// wrapped request). Returns (msgType, false) unchanged for plain frames.
func TracedInnerType(msgType uint8, payload []byte) (uint8, bool) {
	if msgType != msgTraced || len(payload) < tracedHeaderLen {
		return msgType, false
	}
	return payload[tracedHeaderLen-1], true
}

// TracedContext peeks the trace context of a traced envelope payload
// without consuming it; ok is false for plain frames.
func TracedContext(msgType uint8, payload []byte) (trace.Ctx, bool) {
	if msgType != msgTraced || len(payload) < tracedHeaderLen {
		return trace.Ctx{}, false
	}
	tc, _, _, err := decodeTraced(payload)
	return tc, err == nil
}
