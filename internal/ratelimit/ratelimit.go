// Package ratelimit provides a token-bucket limiter used to model the
// per-machine capacity of simulated cluster nodes.
//
// The paper's evaluation runs on machines whose NIC and CPU bound how many
// record-appends per second each component can absorb (~120-150K appends/s
// per maintainer, Figure 7). When the whole cluster is simulated as
// processes on one box, those physical bounds disappear — so each simulated
// machine is given an explicit Limiter. This makes "one machine's
// bandwidth" a first-class, reproducible quantity, and the saturation and
// plateau shapes of the paper's figures re-emerge from the same causes:
// a stage that receives more than its limiter admits falls behind.
package ratelimit

import (
	"context"
	"math"
	"sync"
	"time"
)

// Limiter is a token-bucket rate limiter. A nil *Limiter is valid and
// imposes no limit, which lets callers write "machine profiles" where some
// components are unbounded.
type Limiter struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

// New returns a limiter admitting rate events per second with the given
// burst. A rate <= 0 returns nil (unlimited).
func New(rate float64, burst int) *Limiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &Limiter{rate: rate, burst: float64(burst), tokens: float64(burst), last: time.Now()}
}

// Rate returns the configured rate, or +Inf for an unlimited limiter.
func (l *Limiter) Rate() float64 {
	if l == nil {
		return math.Inf(1)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rate
}

// refillLocked adds tokens accrued since the last refill. Caller holds mu.
func (l *Limiter) refillLocked(now time.Time) {
	elapsed := now.Sub(l.last).Seconds()
	if elapsed <= 0 {
		return
	}
	l.tokens += elapsed * l.rate
	if l.tokens > l.burst {
		l.tokens = l.burst
	}
	l.last = now
}

// Allow reports whether n events may proceed immediately, consuming the
// tokens if so.
func (l *Limiter) Allow(n int) bool {
	if l == nil {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.refillLocked(time.Now())
	if l.tokens < float64(n) {
		return false
	}
	l.tokens -= float64(n)
	return true
}

// reserve consumes n tokens (going negative if needed) and returns how long
// the caller must wait for the deficit to be repaid.
func (l *Limiter) reserve(n int) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.refillLocked(time.Now())
	l.tokens -= float64(n)
	if l.tokens >= 0 {
		return 0
	}
	return time.Duration(-l.tokens / l.rate * float64(time.Second))
}

// Wait blocks until n events may proceed, or until ctx is done. Unlike
// Allow, Wait always admits the events eventually (it reserves tokens and
// sleeps off the deficit), so total admitted throughput converges to the
// configured rate under sustained load.
func (l *Limiter) Wait(ctx context.Context, n int) error {
	if l == nil {
		return nil
	}
	d := l.reserve(n)
	if d <= 0 {
		return nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// WaitN is shorthand for Wait with a background context, for components
// whose shutdown is handled at a coarser granularity.
func (l *Limiter) WaitN(n int) {
	_ = l.Wait(context.Background(), n)
}

// Delay reports how long a caller should wait before n events are likely
// to be admitted, without consuming any tokens. It is the admission-control
// companion to Allow: a server that rejects a request can attach Delay(n)
// as a retry-after hint so clients pace themselves to the configured rate
// instead of hammering a saturated bucket. Returns 0 for a nil (unlimited)
// limiter or when the bucket already holds n tokens.
func (l *Limiter) Delay(n int) time.Duration {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.refillLocked(time.Now())
	deficit := float64(n) - l.tokens
	if deficit <= 0 {
		return 0
	}
	return time.Duration(deficit / l.rate * float64(time.Second))
}

// Penalize unconditionally consumes frac tokens (which may drive the bucket
// negative), modelling work wasted on requests that were ultimately
// rejected: a saturated server still spends cycles reading and refusing
// them, which is why measured throughput dips slightly past the saturation
// point rather than holding at the peak (paper Figure 7).
func (l *Limiter) Penalize(frac float64) {
	if l == nil || frac <= 0 {
		return
	}
	l.mu.Lock()
	l.refillLocked(time.Now())
	l.tokens -= frac
	l.mu.Unlock()
}
