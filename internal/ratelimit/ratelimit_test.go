package ratelimit

import (
	"context"
	"math"
	"testing"
	"time"
)

func TestNilLimiterUnlimited(t *testing.T) {
	var l *Limiter
	if !l.Allow(1 << 20) {
		t.Error("nil limiter must allow everything")
	}
	if err := l.Wait(context.Background(), 1<<20); err != nil {
		t.Errorf("nil limiter Wait: %v", err)
	}
	if !math.IsInf(l.Rate(), 1) {
		t.Errorf("nil limiter Rate = %v, want +Inf", l.Rate())
	}
}

func TestNewZeroRateIsUnlimited(t *testing.T) {
	if New(0, 10) != nil {
		t.Error("New(0) must return nil (unlimited)")
	}
	if New(-5, 10) != nil {
		t.Error("New(negative) must return nil")
	}
}

func TestAllowBurstThenDeny(t *testing.T) {
	l := New(10, 5) // slow refill, burst 5
	if !l.Allow(5) {
		t.Fatal("burst should be allowed")
	}
	if l.Allow(3) {
		t.Error("tokens exhausted; Allow should deny")
	}
}

func TestAllowRefills(t *testing.T) {
	l := New(1000, 1)
	l.Allow(1)
	time.Sleep(10 * time.Millisecond) // ~10 tokens accrue, capped at burst 1
	if !l.Allow(1) {
		t.Error("limiter did not refill")
	}
}

func TestWaitConvergesToRate(t *testing.T) {
	const rate = 5000.0
	l := New(rate, 50)
	start := time.Now()
	const n = 1000
	for i := 0; i < n; i++ {
		l.WaitN(1)
	}
	elapsed := time.Since(start).Seconds()
	got := float64(n) / elapsed
	// Burst lets the first 50 through instantly, so observed rate is a
	// bit above the configured rate over short runs; allow a wide band.
	if got < rate*0.7 || got > rate*1.6 {
		t.Errorf("observed rate %.0f/s, want ≈%.0f/s", got, rate)
	}
}

func TestWaitContextCancel(t *testing.T) {
	l := New(1, 1)
	l.Allow(1) // drain
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	err := l.Wait(ctx, 10) // needs ~10s of tokens
	if err == nil {
		t.Error("Wait should fail when context is cancelled")
	}
}

func TestRate(t *testing.T) {
	l := New(123, 1)
	if got := l.Rate(); got != 123 {
		t.Errorf("Rate = %v, want 123", got)
	}
}
