package flstore

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/rpc"
)

// Client is the linked library application clients use to talk to FLStore
// (§3, §5.1): it learns the cluster layout from the controller once at
// session start, then appends to and reads from the log maintainers
// directly, consulting indexers only for tag-based reads.
type Client struct {
	placement   Placement
	epochs      []Epoch
	maintainers []MaintainerAPI
	indexers    []IndexerAPI
	rr          atomic.Uint64 // round-robin append target

	// ReadRetry configures how long reads wait for the head of the log
	// to pass the requested position before giving up.
	ReadRetries  int
	RetryBackoff time.Duration
}

// NewClient starts a session: it polls the controller for the cluster
// configuration and dials every maintainer and indexer over TCP.
func NewClient(ctrl ControllerAPI) (*Client, error) {
	cfg, err := ctrl.GetConfig()
	if err != nil {
		return nil, fmt.Errorf("flstore: session init: %w", err)
	}
	c := &Client{
		placement:    cfg.Placement,
		epochs:       cfg.Epochs,
		ReadRetries:  50,
		RetryBackoff: 2 * time.Millisecond,
	}
	for _, addr := range cfg.MaintainerAddrs {
		rc, err := rpc.Dial(addr)
		if err != nil {
			return nil, fmt.Errorf("flstore: dialing maintainer %s: %w", addr, err)
		}
		c.maintainers = append(c.maintainers, NewMaintainerClient(rc))
	}
	for _, addr := range cfg.IndexerAddrs {
		rc, err := rpc.Dial(addr)
		if err != nil {
			return nil, fmt.Errorf("flstore: dialing indexer %s: %w", addr, err)
		}
		c.indexers = append(c.indexers, NewIndexerClient(rc))
	}
	return c, nil
}

// NewDirectClient wires a client to in-process (or pre-dialed) component
// APIs — the path used by simulations and tests.
func NewDirectClient(p Placement, maintainers []MaintainerAPI, indexers []IndexerAPI) (*Client, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(maintainers) != p.NumMaintainers {
		return nil, fmt.Errorf("flstore: %d maintainers for placement of %d", len(maintainers), p.NumMaintainers)
	}
	return &Client{
		placement:    p,
		epochs:       []Epoch{{FirstLId: 1, Placement: p}},
		maintainers:  maintainers,
		indexers:     indexers,
		ReadRetries:  50,
		RetryBackoff: 2 * time.Millisecond,
	}, nil
}

// Placement returns the placement the client is operating under.
func (c *Client) Placement() Placement { return c.placement }

// pickMaintainer selects the append target round-robin.
func (c *Client) pickMaintainer() MaintainerAPI {
	i := c.rr.Add(1) - 1
	return c.maintainers[int(i%uint64(len(c.maintainers)))]
}

// Append inserts a record with the given body and tags into the shared log
// (§3's Append(record, tags)) and returns the assigned LId. The record is
// sent to a round-robin-selected maintainer, which post-assigns the
// position.
func (c *Client) Append(body []byte, tags []core.Tag) (uint64, error) {
	rec := &core.Record{Tags: tags, Body: body}
	lids, err := c.pickMaintainer().Append([]*core.Record{rec})
	if err != nil {
		return 0, err
	}
	return lids[0], nil
}

// AppendBatch inserts many records in one round trip to one maintainer;
// their assigned LIds preserve the batch order (§5.4's same-maintainer
// explicit ordering).
func (c *Client) AppendBatch(recs []*core.Record) ([]uint64, error) {
	return c.pickMaintainer().Append(recs)
}

// AppendAfter inserts records constrained to positions after minLId at the
// given maintainer index (§5.4's cross-maintainer explicit ordering).
func (c *Client) AppendAfter(maintainer int, minLId uint64, recs []*core.Record) ([]uint64, error) {
	if maintainer < 0 || maintainer >= len(c.maintainers) {
		return nil, fmt.Errorf("flstore: maintainer %d out of range", maintainer)
	}
	return c.maintainers[maintainer].AppendAfter(minLId, recs)
}

// Head returns the head of the log as known by one maintainer — every
// position at or below it is gap-free and readable.
func (c *Client) Head() (uint64, error) {
	return c.pickMaintainer().Head()
}

// HeadExact polls every maintainer's next-unfilled position and computes
// the precise head, bypassing gossip staleness. Get-transactions use this
// to pin their snapshot (Algorithm 1 line 2).
func (c *Client) HeadExact() (uint64, error) {
	next := make([]uint64, len(c.maintainers))
	for i, m := range c.maintainers {
		n, err := m.NextUnfilled()
		if err != nil {
			return 0, err
		}
		next[i] = n
	}
	return Head(next), nil
}

// ownerOf routes an LId to its maintainer under the epoch journal.
func (c *Client) ownerOf(lid uint64) (MaintainerAPI, error) {
	p, err := PlacementAt(c.epochs, lid)
	if err != nil {
		return nil, err
	}
	idx := p.Owner(lid)
	if idx >= len(c.maintainers) {
		return nil, fmt.Errorf("flstore: owner %d of LId %d not in session", idx, lid)
	}
	return c.maintainers[idx], nil
}

// ReadLId returns the record at lid, retrying while the position is beyond
// the gossiped head (§5.4: a read at i must wait until no gap exists below
// i).
func (c *Client) ReadLId(lid uint64) (*core.Record, error) {
	m, err := c.ownerOf(lid)
	if err != nil {
		return nil, err
	}
	var lastErr error
	for attempt := 0; attempt <= c.ReadRetries; attempt++ {
		rec, err := m.Read(lid)
		if err == nil {
			return rec, nil
		}
		lastErr = err
		if !errors.Is(err, core.ErrPastHead) {
			return nil, err
		}
		time.Sleep(c.RetryBackoff)
	}
	return nil, lastErr
}

// Read returns the records matching the rule (§3's Read(rules)). Rules
// with a tag key are resolved through the indexers; others fan out as
// scans to every maintainer and merge.
func (c *Client) Read(rule core.Rule) ([]*core.Record, error) {
	if rule.TagKey != "" && len(c.indexers) > 0 {
		return c.readByTag(rule)
	}
	return c.readByScan(rule)
}

func (c *Client) readByTag(rule core.Rule) ([]*core.Record, error) {
	// Reads must not cross the head of the log (§5.4): a tagged record
	// above HL may exist at a maintainer while an earlier position is
	// still a gap, so cap the lookup at the head.
	head, err := c.HeadExact()
	if err != nil {
		return nil, err
	}
	if head == 0 {
		return nil, nil
	}
	q := LookupQuery{
		Key:             rule.TagKey,
		Cmp:             rule.TagCmp,
		Value:           rule.TagValue,
		MaxLIdExclusive: rule.MaxLIdExclusive,
		Limit:           rule.Limit,
		MostRecent:      rule.MostRecent,
	}
	if rule.MaxLId != 0 && (q.MaxLIdExclusive == 0 || rule.MaxLId+1 < q.MaxLIdExclusive) {
		q.MaxLIdExclusive = rule.MaxLId + 1
	}
	if q.MaxLIdExclusive == 0 || q.MaxLIdExclusive > head+1 {
		q.MaxLIdExclusive = head + 1
	}
	ix := c.indexers[IndexerFor(rule.TagKey, len(c.indexers))]
	lids, err := ix.Lookup(q)
	if err != nil {
		return nil, err
	}
	recs := make([]*core.Record, 0, len(lids))
	for _, lid := range lids {
		if lid < rule.MinLId {
			continue
		}
		rec, err := c.ReadLId(lid)
		if err != nil {
			return nil, err
		}
		// The indexer prunes by tag and LId; re-check the full rule
		// (host/TOId constraints) before returning.
		if rule.Match(rec) {
			recs = append(recs, rec)
		}
	}
	return recs, nil
}

func (c *Client) readByScan(rule core.Rule) ([]*core.Record, error) {
	// Reads must not cross the head of the log: cap the scan at HL.
	head, err := c.HeadExact()
	if err != nil {
		return nil, err
	}
	capped := rule
	if capped.MaxLId == 0 || capped.MaxLId > head {
		capped.MaxLId = head
	}
	if head == 0 {
		return nil, nil
	}
	var all []*core.Record
	for _, m := range c.maintainers {
		recs, err := m.Scan(capped)
		if err != nil {
			return nil, err
		}
		all = append(all, recs...)
	}
	sort.Slice(all, func(i, j int) bool {
		if rule.MostRecent {
			return all[i].LId > all[j].LId
		}
		return all[i].LId < all[j].LId
	})
	if rule.Limit > 0 && len(all) > rule.Limit {
		all = all[:rule.Limit]
	}
	return all, nil
}

// Maintainers exposes the session's maintainer handles (used by layered
// systems such as stream readers that partition work across maintainers).
func (c *Client) Maintainers() []MaintainerAPI { return c.maintainers }

// Tail streams the log in LId order starting at fromLId (≥1): fn is
// called for every record at or below the advancing head of the log, in
// position order with no gaps, until ctx is cancelled or fn returns
// false. The poll interval is RetryBackoff (bounded below at 1ms).
func (c *Client) Tail(ctx context.Context, fromLId uint64, fn func(*core.Record) bool) error {
	if fromLId == 0 {
		fromLId = 1
	}
	poll := c.RetryBackoff
	if poll < time.Millisecond {
		poll = time.Millisecond
	}
	cursor := fromLId
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		head, err := c.HeadExact()
		if err != nil {
			return err
		}
		if head >= cursor {
			var window []*core.Record
			for _, m := range c.maintainers {
				recs, err := m.Scan(core.Rule{MinLId: cursor, MaxLId: head})
				if err != nil {
					return err
				}
				window = append(window, recs...)
			}
			sort.Slice(window, func(i, j int) bool { return window[i].LId < window[j].LId })
			for _, rec := range window {
				if !fn(rec) {
					return nil
				}
			}
			cursor = head + 1
		}
		timer := time.NewTimer(poll)
		select {
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		case <-timer.C:
		}
	}
}
