package flstore

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/replica"
	"repro/internal/rpc"
	"repro/internal/storage"
	"repro/internal/trace"
)

// Client is the linked library application clients use to talk to FLStore
// (§3, §5.1): it learns the cluster layout from the controller once at
// session start, then appends to and reads from the log maintainers
// directly, consulting indexers only for tag-based reads. Under
// replication (R > 1) the client drives a replica.Session: appends go to
// each range's acting primary and fan out to its group, reads fail over
// across the group, and head computation takes each range's group-wide
// maximum so a dead maintainer doesn't freeze the head of the log.
type Client struct {
	placement   Placement
	epochs      []Epoch
	maintainers []MaintainerAPI
	indexers    []IndexerAPI
	rr          atomic.Uint64 // round-robin append target (session == nil)

	// epochMembers holds per-epoch maintainer handles, index-aligned with
	// epochs — the routing side of epoch-carried topology (§6.3). The last
	// entry is the same slice as maintainers (so SetMaintainer keeps both
	// views coherent); earlier entries serve reads below their epoch's
	// successor boundary until the old members retire. Nil entries fall
	// back to the current member set (pre-topology journals).
	epochMembers [][]MaintainerAPI

	// session is the replication layer; nil when R == 1 and the wired
	// maintainers don't expose the replica surface (legacy fakes).
	session *replica.Session

	// rangeCapable records whether every wired maintainer implements
	// RangeReadAPI (recomputed on SetMaintainer); when false the client
	// stays on the single-record/scan paths.
	rangeCapable bool

	// DisableRangeRead forces the legacy read paths even when every
	// maintainer supports batched reads — the comparison knob the
	// read-path experiment and benchmarks flip.
	//
	// Deprecated: set at construction via NewClientWith and
	// WithRangeReadDisabled instead of mutating the field.
	DisableRangeRead bool

	// ReadRetry configures how long reads wait for the head of the log
	// to pass the requested position before giving up: up to ReadRetries
	// attempts on a capped-exponential schedule seeded at RetryBackoff.
	//
	// Deprecated: set at construction via NewClientWith and
	// WithReadRetries / WithRetryBackoff instead of mutating the fields.
	ReadRetries  int
	RetryBackoff time.Duration

	// appendRetries/appendBackoff bound the overload-retry loop on the
	// append path (0 retries = surface ErrOverloaded to the caller, the
	// pre-admission-control behavior open-loop generators rely on);
	// configured via WithAppendRetries / WithAppendBackoff.
	appendRetries int
	appendBackoff time.Duration
	// pace is the AIMD governor honoring server retry-after hints; nil
	// (the default) sends at the caller's rate. Enabled by
	// WithAdaptivePacing.
	pace *pacer
}

// readJitter is the shared jitter stream for read-retry backoff.
var readJitter atomic.Uint64

func init() { readJitter.Store(uint64(time.Now().UnixNano()) | 1) }

// jitterRnd returns uniform [0,1) samples (splitmix64, lock-free).
func jitterRnd() float64 {
	z := readJitter.Add(0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return float64((z^(z>>31))>>11) / (1 << 53)
}

// isLogicError classifies FLStore errors that must propagate to the caller
// rather than trigger replica failover: they describe the request or the
// log's state, not the health of the member that served them.
func isLogicError(err error) bool {
	return errors.Is(err, core.ErrNoSuchRecord) ||
		errors.Is(err, core.ErrPastHead) ||
		errors.Is(err, ErrOverloaded) ||
		errors.Is(err, ErrWrongMaintainer) ||
		errors.Is(err, ErrNotReplica) ||
		errors.Is(err, ErrOrderBacklog) ||
		errors.Is(err, ErrEpochSealed) ||
		errors.Is(err, storage.ErrDuplicate)
}

// NewClient starts a session: it polls the controller for the cluster
// configuration and dials every maintainer and indexer over TCP.
func NewClient(ctrl ControllerAPI) (*Client, error) {
	cfg, err := ctrl.GetConfig()
	if err != nil {
		return nil, fmt.Errorf("flstore: session init: %w", err)
	}
	c := &Client{
		placement:    cfg.Placement,
		epochs:       cfg.Epochs,
		ReadRetries:  50,
		RetryBackoff: 2 * time.Millisecond,
	}
	if len(c.epochs) == 0 {
		// A controller normalizes its journal; tolerate a bare Config.
		c.epochs = []Epoch{{FirstLId: 1, Placement: cfg.Placement}}
	}
	// Dial every epoch's member set, sharing connections by address: a
	// maintainer that survives a reassignment (or a pre-topology journal
	// where every epoch inherits the top-level list) is dialed once.
	dialed := make(map[string]MaintainerAPI)
	dial := func(addr string) (MaintainerAPI, error) {
		if m, ok := dialed[addr]; ok {
			return m, nil
		}
		rc, err := rpc.Dial(addr)
		if err != nil {
			return nil, fmt.Errorf("flstore: dialing maintainer %s: %w", addr, err)
		}
		m := NewMaintainerClient(rc)
		dialed[addr] = m
		return m, nil
	}
	c.epochMembers = make([][]MaintainerAPI, len(c.epochs))
	for i, e := range c.epochs {
		addrs := e.MaintainerAddrs
		if len(addrs) == 0 {
			addrs = cfg.MaintainerAddrs
		}
		if len(addrs) != e.Placement.NumMaintainers {
			return nil, fmt.Errorf("flstore: epoch %d has %d addrs for placement of %d",
				i, len(addrs), e.Placement.NumMaintainers)
		}
		members := make([]MaintainerAPI, len(addrs))
		for j, addr := range addrs {
			if members[j], err = dial(addr); err != nil {
				return nil, err
			}
		}
		c.epochMembers[i] = members
	}
	c.maintainers = c.epochMembers[len(c.epochMembers)-1]
	for _, addr := range cfg.IndexerAddrs {
		rc, err := rpc.Dial(addr)
		if err != nil {
			return nil, fmt.Errorf("flstore: dialing indexer %s: %w", addr, err)
		}
		c.indexers = append(c.indexers, NewIndexerClient(rc))
	}
	ack := replica.AckMajority
	if cfg.AckPolicy != "" {
		if ack, err = replica.ParseAckPolicy(cfg.AckPolicy); err != nil {
			return nil, err
		}
	}
	if err := c.initSession(cfg.Replication, ack); err != nil {
		return nil, err
	}
	c.updateRangeCapable()
	return c, nil
}

// NewDirectClient wires a client to in-process (or pre-dialed) component
// APIs — the path used by simulations and tests. Replication is off
// (R = 1); use NewReplicatedDirectClient for replica groups.
func NewDirectClient(p Placement, maintainers []MaintainerAPI, indexers []IndexerAPI) (*Client, error) {
	return NewReplicatedDirectClient(p, maintainers, indexers, 1, replica.AckOne)
}

// NewReplicatedDirectClient wires a client to in-process (or pre-dialed)
// component APIs with a replica layout of R copies per range under the
// given ack policy. Every maintainer handle must expose the replica
// surface when R > 1.
func NewReplicatedDirectClient(p Placement, maintainers []MaintainerAPI, indexers []IndexerAPI, r int, ack replica.AckPolicy) (*Client, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(maintainers) != p.NumMaintainers {
		return nil, fmt.Errorf("flstore: %d maintainers for placement of %d", len(maintainers), p.NumMaintainers)
	}
	c := &Client{
		placement:    p,
		epochs:       []Epoch{{FirstLId: 1, Placement: p}},
		maintainers:  maintainers,
		epochMembers: [][]MaintainerAPI{maintainers},
		indexers:     indexers,
		ReadRetries:  50,
		RetryBackoff: 2 * time.Millisecond,
	}
	if err := c.initSession(r, ack); err != nil {
		return nil, err
	}
	c.updateRangeCapable()
	return c, nil
}

// initSession builds the replica session over the wired maintainers. With
// R <= 1 and maintainers that don't expose the replica surface (legacy
// fakes), the client silently stays on the unreplicated paths; with R > 1
// every member must support it.
func (c *Client) initSession(r int, ack replica.AckPolicy) error {
	if r < 1 {
		r = 1
	}
	members := make([]replica.Member, len(c.maintainers))
	for i, m := range c.maintainers {
		rm, ok := m.(replica.Member)
		if !ok {
			if r > 1 {
				return fmt.Errorf("flstore: maintainer %d does not support replication (R=%d)", i, r)
			}
			return nil
		}
		members[i] = rm
	}
	p := c.placement
	s, err := replica.NewSession(members, replica.SessionConfig{
		Layout:      replica.Layout{N: p.NumMaintainers, R: r},
		Ack:         ack,
		Owner:       func(lid uint64) int { return p.Owner(lid) },
		IsFatal:     isLogicError,
		IsRetryable: IsRetryable,
	})
	if err != nil {
		return err
	}
	c.session = s
	return nil
}

// Placement returns the placement the client is operating under.
func (c *Client) Placement() Placement { return c.placement }

// Session exposes the replication layer (nil on legacy unreplicated
// wiring): tests and operators use it for health, catch-up, and rejoin.
func (c *Client) Session() *replica.Session { return c.session }

// pickMaintainer selects the append target round-robin (legacy path).
func (c *Client) pickMaintainer() MaintainerAPI {
	i := c.rr.Add(1) - 1
	return c.maintainers[int(i%uint64(len(c.maintainers)))]
}

// Append inserts a record with the given body and tags into the shared log
// (§3's Append(record, tags)) and returns the assigned LId. The record is
// sent to a round-robin-selected range's acting primary, which
// post-assigns the position (and, under replication, fans copies out to
// the range's group before acknowledging per the ack policy).
func (c *Client) Append(body []byte, tags []core.Tag) (uint64, error) {
	return c.AppendCtx(context.Background(), body, tags)
}

// AppendCtx is Append with cancellation: ctx aborts pacing delays and the
// overload-retry backoff between attempts (a request already in flight is
// not interrupted — the RPC substrate has no cancel frame).
func (c *Client) AppendCtx(ctx context.Context, body []byte, tags []core.Tag) (uint64, error) {
	rec := &core.Record{Tags: tags, Body: body}
	lids, err := c.AppendBatchCtx(ctx, []*core.Record{rec})
	if err != nil {
		return 0, err
	}
	return lids[0], nil
}

// AppendBatch inserts many records in one round trip to one maintainer;
// their assigned LIds preserve the batch order (§5.4's same-maintainer
// explicit ordering).
func (c *Client) AppendBatch(recs []*core.Record) ([]uint64, error) {
	return c.AppendBatchCtx(context.Background(), recs)
}

// AppendBatchCtx is AppendBatch with cancellation and admission handling:
// when the maintainer rejects the batch with a retryable overload, the
// client waits out the server's RetryAfter hint (or its own capped-jittered
// backoff, whichever is longer) and retries up to WithAppendRetries times,
// while the AIMD pacer (WithAdaptivePacing) spaces subsequent sends. With
// the default options (no retries, no pacing) behavior is unchanged: one
// attempt, errors surface to the caller.
func (c *Client) AppendBatchCtx(ctx context.Context, recs []*core.Record) ([]uint64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := len(recs)
	// The root span covers the whole client-visible append; its
	// pre-allocated id parents every downstream hop via the records'
	// trace contexts. Unsampled appends pay one branch here (plus the
	// slow-op arm) and skip every stamping loop below.
	root, rtc := trace.BeginRoot(trace.New(), "client.append")
	if root.Sampled() {
		for _, r := range recs {
			r.Trace = rtc
		}
	}
	for attempt := 0; ; attempt++ {
		if d := c.pace.delay(n); d > 0 {
			if err := sleepCtx(ctx, d); err != nil {
				root.Finish(trace.Default(), "cancel", 0, n)
				return nil, err
			}
			if root.Sampled() {
				rtc.Hop(trace.Default(), "client.pace", int64(d), "", 0, n)
				for _, r := range recs {
					r.Trace = rtc
				}
			}
		}
		lids, err := c.appendOnce(recs)
		if err == nil {
			c.pace.onSuccess(n)
			var lid0 uint64
			if len(lids) > 0 {
				lid0 = lids[0]
			}
			if root.Sampled() {
				// Restamp the records' contexts at completion: a caller
				// chaining a visibility-wait hop from rec.Trace then
				// covers [append done, visible], not the append again.
				end := time.Now().UnixNano()
				for _, r := range recs {
					r.Trace = rtc
					r.Trace.At = end
				}
			}
			root.Finish(trace.Default(), "", lid0, n)
			return lids, nil
		}
		if attempt >= c.appendRetries || !IsRetryable(err) {
			root.Finish(trace.Default(), appendOutcome(err), 0, n)
			return nil, err
		}
		hint := RetryAfter(err)
		c.pace.onOverload(n, hint)
		base := c.appendBackoff
		if base <= 0 {
			base = 2 * time.Millisecond
		}
		bo := rpc.Backoff{Base: base, Max: 16 * base, Factor: 2, Jitter: 0.2}
		d := bo.Delay(attempt+1, jitterRnd)
		if hint > d {
			d = hint
		}
		if err := sleepCtx(ctx, d); err != nil {
			root.Finish(trace.Default(), "cancel", 0, n)
			return nil, err
		}
		if root.Sampled() {
			rtc.Hop(trace.Default(), "client.backoff", int64(d), "overload", 0, n)
			for _, r := range recs {
				r.Trace = rtc
			}
		}
	}
}

// appendOnce performs one append attempt over the session (replicated) or
// the round-robin direct path.
func (c *Client) appendOnce(recs []*core.Record) ([]uint64, error) {
	if c.session != nil {
		return c.session.Append(recs)
	}
	return c.pickMaintainer().Append(recs)
}

// AppendAfter inserts records constrained to positions after minLId at the
// given maintainer index (§5.4's cross-maintainer explicit ordering).
func (c *Client) AppendAfter(maintainer int, minLId uint64, recs []*core.Record) ([]uint64, error) {
	if maintainer < 0 || maintainer >= len(c.maintainers) {
		return nil, fmt.Errorf("flstore: maintainer %d out of range", maintainer)
	}
	return c.maintainers[maintainer].AppendAfter(minLId, recs)
}

// Head returns the head of the log as known by one maintainer — every
// position at or below it is gap-free and readable.
func (c *Client) Head() (uint64, error) {
	if c.session != nil {
		// Ask any usable member; gossip keeps their estimates close.
		for i := range c.maintainers {
			if !c.session.Health().Usable(i) {
				continue
			}
			h, err := c.maintainers[i].Head()
			if err == nil {
				return h, nil
			}
			if isLogicError(err) {
				return 0, err
			}
		}
		return 0, replica.ErrNoUsableGroup
	}
	return c.pickMaintainer().Head()
}

// HeadExact polls every range's next-unfilled position and computes the
// precise head, bypassing gossip staleness. Under replication each range's
// frontier is the maximum over its group's usable members, so the head
// keeps advancing while a maintainer is down. Get-transactions use this to
// pin their snapshot (Algorithm 1 line 2).
func (c *Client) HeadExact() (uint64, error) {
	if c.session != nil {
		next, err := c.session.Frontiers()
		if err != nil {
			return 0, err
		}
		return Head(next), nil
	}
	next := make([]uint64, len(c.maintainers))
	for i, m := range c.maintainers {
		n, err := m.NextUnfilled()
		if err != nil {
			return 0, err
		}
		next[i] = n
	}
	return Head(next), nil
}

// epochIndexOf resolves the epoch journal entry in force at lid.
func epochIndexOf(epochs []Epoch, lid uint64) (int, error) {
	if len(epochs) == 0 {
		return 0, errors.New("flstore: empty epoch journal")
	}
	i := sort.Search(len(epochs), func(i int) bool { return epochs[i].FirstLId > lid })
	if i == 0 {
		return 0, fmt.Errorf("flstore: LId %d precedes first epoch", lid)
	}
	return i - 1, nil
}

// ownerOf routes an LId to its maintainer under the epoch journal, using
// the owning epoch's own member set when the journal carries topology.
func (c *Client) ownerOf(lid uint64) (MaintainerAPI, error) {
	ei, err := epochIndexOf(c.epochs, lid)
	if err != nil {
		return nil, err
	}
	p := c.epochs[ei].Placement
	members := c.maintainers
	if ei < len(c.epochMembers) && c.epochMembers[ei] != nil {
		members = c.epochMembers[ei]
	}
	idx := p.Owner(lid)
	if idx >= len(members) {
		return nil, fmt.Errorf("flstore: owner %d of LId %d not in session", idx, lid)
	}
	return members[idx], nil
}

// ReadLId returns the record at lid, retrying while the position is beyond
// the gossiped head (§5.4: a read at i must wait until no gap exists below
// i). Under replication the read fails over across the owning group.
func (c *Client) ReadLId(lid uint64) (*core.Record, error) {
	return c.ReadLIdCtx(context.Background(), lid)
}

// ReadLIdCtx is ReadLId with cancellation: ctx aborts the past-head retry
// loop between attempts, returning ctx.Err().
func (c *Client) ReadLIdCtx(ctx context.Context, lid uint64) (*core.Record, error) {
	var read func() (*core.Record, error)
	if c.session != nil {
		ei, err := epochIndexOf(c.epochs, lid)
		if err != nil {
			return nil, err
		}
		// Failover routing knows only the latest epoch's groups; records
		// written under an earlier epoch route directly to that epoch's
		// members via the journal.
		if ei == len(c.epochs)-1 {
			read = func() (*core.Record, error) { return c.session.Read(lid) }
		}
	}
	if read == nil {
		m, err := c.ownerOf(lid)
		if err != nil {
			return nil, err
		}
		read = func() (*core.Record, error) { return m.Read(lid) }
	}
	// Past-head waits resolve as soon as the gap below the position fills,
	// so retry on a capped-exponential schedule with jitter (the PR-3
	// redial schedule): early attempts are cheap and tight, later ones
	// back off instead of hammering a stalled head. Reads blocked on an
	// unresolved invalidation (every group member knows the position is
	// assigned but none has the payload yet — e.g. mid-failover) retry on
	// the same schedule, stretched to the server's pacing hint.
	bo := rpc.Backoff{Base: c.RetryBackoff, Max: 8 * c.RetryBackoff, Factor: 2, Jitter: 0.2}
	var lastErr error
	for attempt := 0; attempt <= c.ReadRetries; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rec, err := read()
		if err == nil {
			return rec, nil
		}
		lastErr = err
		if !errors.Is(err, core.ErrPastHead) && !errors.Is(err, ErrReadBlocked) {
			return nil, err
		}
		if c.RetryBackoff > 0 {
			d := bo.Delay(attempt+1, jitterRnd)
			if hint := RetryAfter(err); hint > d {
				d = hint
			}
			if err := sleepCtx(ctx, d); err != nil {
				return nil, err
			}
		}
	}
	return nil, lastErr
}

// Read returns the records matching the rule (§3's Read(rules)). Rules
// with a tag key are resolved through the indexers; others fan out as
// scans to every maintainer and merge.
func (c *Client) Read(rule core.Rule) ([]*core.Record, error) {
	if rule.TagKey != "" && len(c.indexers) > 0 {
		return c.readByTag(rule)
	}
	return c.readByScan(rule)
}

func (c *Client) readByTag(rule core.Rule) ([]*core.Record, error) {
	// Reads must not cross the head of the log (§5.4): a tagged record
	// above HL may exist at a maintainer while an earlier position is
	// still a gap, so cap the lookup at the head.
	head, err := c.HeadExact()
	if err != nil {
		return nil, err
	}
	if head == 0 {
		return nil, nil
	}
	q := LookupQuery{
		Key:             rule.TagKey,
		Cmp:             rule.TagCmp,
		Value:           rule.TagValue,
		MaxLIdExclusive: rule.MaxLIdExclusive,
		Limit:           rule.Limit,
		MostRecent:      rule.MostRecent,
	}
	if rule.MaxLId != 0 && (q.MaxLIdExclusive == 0 || rule.MaxLId+1 < q.MaxLIdExclusive) {
		q.MaxLIdExclusive = rule.MaxLId + 1
	}
	if q.MaxLIdExclusive == 0 || q.MaxLIdExclusive > head+1 {
		q.MaxLIdExclusive = head + 1
	}
	ix := c.indexers[IndexerFor(rule.TagKey, len(c.indexers))]
	lids, err := ix.Lookup(q)
	if err != nil {
		return nil, err
	}
	wanted := lids[:0]
	for _, lid := range lids {
		if lid >= rule.MinLId {
			wanted = append(wanted, lid)
		}
	}
	// One batched fetch per owning maintainer instead of a serial
	// round trip per position.
	fetched, err := c.ReadLIds(wanted)
	if err != nil {
		return nil, err
	}
	recs := make([]*core.Record, 0, len(fetched))
	for _, rec := range fetched {
		// The indexer prunes by tag and LId; re-check the full rule
		// (host/TOId constraints) before returning.
		if rule.Match(rec) {
			recs = append(recs, rec)
		}
	}
	return recs, nil
}

// scanMerged fans a scan out to every maintainer, deduplicates by LId
// (replica copies appear at up to R maintainers), and reports whether at
// least one maintainer answered. Under replication an unreachable or
// evicted maintainer is skipped — its records are served by its group
// peers.
func (c *Client) scanMerged(rule core.Rule) ([]*core.Record, error) {
	var all []*core.Record
	seen := make(map[uint64]struct{})
	answered := 0
	var lastErr error
	for i, m := range c.maintainers {
		if c.session != nil && !c.session.Health().Usable(i) {
			continue
		}
		recs, err := m.Scan(rule)
		if err != nil {
			if c.session == nil || isLogicError(err) {
				return nil, err
			}
			c.session.Health().ReportFailure(i)
			lastErr = err
			continue
		}
		answered++
		for _, r := range recs {
			if _, dup := seen[r.LId]; dup {
				continue
			}
			seen[r.LId] = struct{}{}
			all = append(all, r)
		}
	}
	if answered == 0 {
		if lastErr == nil {
			lastErr = replica.ErrNoUsableGroup
		}
		return nil, lastErr
	}
	return all, nil
}

func (c *Client) readByScan(rule core.Rule) ([]*core.Record, error) {
	// Reads must not cross the head of the log: cap the scan at HL.
	head, err := c.HeadExact()
	if err != nil {
		return nil, err
	}
	capped := rule
	if capped.MaxLId == 0 || capped.MaxLId > head {
		capped.MaxLId = head
	}
	if head == 0 {
		return nil, nil
	}
	all, err := c.scanMerged(capped)
	if err != nil {
		return nil, err
	}
	sort.Slice(all, func(i, j int) bool {
		if rule.MostRecent {
			return all[i].LId > all[j].LId
		}
		return all[i].LId < all[j].LId
	})
	if rule.Limit > 0 && len(all) > rule.Limit {
		all = all[:rule.Limit]
	}
	return all, nil
}

// Maintainers exposes the session's maintainer handles (used by layered
// systems such as stream readers that partition work across maintainers).
func (c *Client) Maintainers() []MaintainerAPI { return c.maintainers }

// SetMaintainer replaces the handle at index i — the rewiring done after a
// maintainer restarts on a fresh connection. The replica session (when
// present) is updated in lockstep; the handle must expose the replica
// surface if the session does.
func (c *Client) SetMaintainer(i int, m MaintainerAPI) error {
	if i < 0 || i >= len(c.maintainers) {
		return fmt.Errorf("flstore: maintainer %d out of range", i)
	}
	if c.session != nil {
		rm, ok := m.(replica.Member)
		if !ok {
			return fmt.Errorf("flstore: maintainer %d does not support replication", i)
		}
		c.session.SetMember(i, rm)
	}
	c.maintainers[i] = m
	c.updateRangeCapable()
	return nil
}

// Tail streams the log in LId order starting at fromLId (≥1): fn is
// called for every record at or below the advancing head of the log, in
// position order with no gaps, until ctx is cancelled or fn returns
// false. On range-capable wiring this is a push subscription: the client
// parks on the laggard range's TailWait long-poll and drains each newly
// covered window with scatter-gather range reads merged by placement — no
// poll tick, no rescans, no sort. Legacy wiring degrades to a bounded
// poll (interval RetryBackoff, ≥1ms).
func (c *Client) Tail(ctx context.Context, fromLId uint64, fn func(*core.Record) bool) error {
	if fromLId == 0 {
		fromLId = 1
	}
	if !c.rangeOK() {
		return c.tailPoll(ctx, fromLId, fn)
	}
	cursor := fromLId
	for {
		head, err := c.waitHead(ctx, cursor, time.Time{})
		if err != nil {
			return err
		}
		for cursor <= head {
			hi := cursor + tailChunk - 1
			if hi > head {
				hi = head
			}
			// Each tail window gets its own sampling decision, so a
			// long-lived subscription contributes traces at the sample
			// rate rather than one trace at start.
			window, err := c.readRange(ctx, trace.New(), cursor, hi)
			if err != nil {
				return err
			}
			for _, rec := range window {
				if !fn(rec) {
					return nil
				}
			}
			cursor = hi + 1
		}
	}
}

// tailPoll is the legacy tail loop for wiring without the batched read
// surface. The window is merged by placement (position lid at index
// lid−cursor) rather than sorted; §5.4 makes it gap-free below the head,
// and any straggler a scan missed is fetched via ReadLId.
func (c *Client) tailPoll(ctx context.Context, fromLId uint64, fn func(*core.Record) bool) error {
	poll := c.RetryBackoff
	if poll < time.Millisecond {
		poll = time.Millisecond
	}
	cursor := fromLId
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		head, err := c.HeadExact()
		if err != nil {
			return err
		}
		if head >= cursor {
			window, err := c.readRange(ctx, trace.Ctx{}, cursor, head)
			if err != nil {
				return err
			}
			for _, rec := range window {
				if !fn(rec) {
					return nil
				}
			}
			cursor = head + 1
		}
		timer := time.NewTimer(poll)
		select {
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		case <-timer.C:
		}
	}
}
