package flstore

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/ratelimit"
)

func TestIndexerPostAndLookup(t *testing.T) {
	ix := NewIndexer(nil)
	ix.Post([]Posting{
		{Key: "x", Value: "10", LId: 1},
		{Key: "x", Value: "30", LId: 4},
		{Key: "y", Value: "20", LId: 2},
	})
	lids, err := ix.Lookup(LookupQuery{Key: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if len(lids) != 2 || lids[0] != 1 || lids[1] != 4 {
		t.Errorf("Lookup(x) = %v", lids)
	}
	if ix.Keys() != 2 {
		t.Errorf("Keys = %d", ix.Keys())
	}
}

func TestIndexerMostRecentAndLimit(t *testing.T) {
	ix := NewIndexer(nil)
	for i := uint64(1); i <= 100; i++ {
		ix.Post([]Posting{{Key: "k", Value: fmt.Sprint(i), LId: i}})
	}
	lids, _ := ix.Lookup(LookupQuery{Key: "k", MostRecent: true, Limit: 3})
	if len(lids) != 3 || lids[0] != 100 || lids[2] != 98 {
		t.Errorf("most recent 3 = %v", lids)
	}
	lids, _ = ix.Lookup(LookupQuery{Key: "k", Limit: 2})
	if len(lids) != 2 || lids[0] != 1 {
		t.Errorf("oldest 2 = %v", lids)
	}
}

func TestIndexerMaxLIdExclusive(t *testing.T) {
	ix := NewIndexer(nil)
	for i := uint64(1); i <= 10; i++ {
		ix.Post([]Posting{{Key: "k", Value: "v", LId: i}})
	}
	// The get-transaction pattern: most recent below a pinned head.
	lids, _ := ix.Lookup(LookupQuery{Key: "k", MaxLIdExclusive: 7, MostRecent: true, Limit: 1})
	if len(lids) != 1 || lids[0] != 6 {
		t.Errorf("snapshot lookup = %v, want [6]", lids)
	}
}

func TestIndexerValuePredicates(t *testing.T) {
	ix := NewIndexer(nil)
	ix.Post([]Posting{
		{Key: "n", Value: "5", LId: 1},
		{Key: "n", Value: "50", LId: 2},
		{Key: "n", Value: "500", LId: 3},
	})
	lids, _ := ix.Lookup(LookupQuery{Key: "n", Cmp: core.CmpGT, Value: "10"})
	if len(lids) != 2 || lids[0] != 2 || lids[1] != 3 {
		t.Errorf("n>10 = %v", lids)
	}
	lids, _ = ix.Lookup(LookupQuery{Key: "n", Cmp: core.CmpEQ, Value: "5"})
	if len(lids) != 1 || lids[0] != 1 {
		t.Errorf("n==5 = %v", lids)
	}
}

func TestIndexerOutOfOrderPostings(t *testing.T) {
	ix := NewIndexer(nil)
	// Different maintainers progress at different speeds, so postings
	// can arrive out of LId order; lookups must still come back sorted.
	ix.Post([]Posting{{Key: "k", Value: "c", LId: 30}})
	ix.Post([]Posting{{Key: "k", Value: "a", LId: 10}})
	ix.Post([]Posting{{Key: "k", Value: "b", LId: 20}})
	ix.Post([]Posting{{Key: "k", Value: "a", LId: 10}}) // duplicate: idempotent
	lids, _ := ix.Lookup(LookupQuery{Key: "k"})
	want := []uint64{10, 20, 30}
	if len(lids) != 3 {
		t.Fatalf("Lookup = %v, want %v", lids, want)
	}
	for i := range want {
		if lids[i] != want[i] {
			t.Fatalf("Lookup = %v, want %v", lids, want)
		}
	}
}

func TestIndexerUnknownKey(t *testing.T) {
	ix := NewIndexer(nil)
	lids, err := ix.Lookup(LookupQuery{Key: "missing"})
	if err != nil || len(lids) != 0 {
		t.Errorf("Lookup(missing) = %v, %v", lids, err)
	}
}

func TestIndexerEmptyPost(t *testing.T) {
	ix := NewIndexer(nil)
	if err := ix.Post(nil); err != nil {
		t.Errorf("empty post: %v", err)
	}
}

func TestIndexerOverload(t *testing.T) {
	ix := NewIndexer(ratelimit.New(1, 1))
	ix.Post([]Posting{{Key: "k", Value: "v", LId: 1}})
	err := ix.Post([]Posting{{Key: "k", Value: "v", LId: 2}})
	if err != ErrOverloaded {
		t.Errorf("overload err = %v", err)
	}
}

func TestIndexerForStable(t *testing.T) {
	a := IndexerFor("balance", 4)
	for i := 0; i < 10; i++ {
		if IndexerFor("balance", 4) != a {
			t.Fatal("IndexerFor not deterministic")
		}
	}
	if a < 0 || a >= 4 {
		t.Errorf("IndexerFor out of range: %d", a)
	}
	// Different keys should spread (not a strict requirement, but the
	// chosen hash should not collapse everything to one partition).
	seen := map[int]bool{}
	for i := 0; i < 50; i++ {
		seen[IndexerFor(fmt.Sprintf("key-%d", i), 4)] = true
	}
	if len(seen) < 2 {
		t.Error("hash partitioning collapsed to a single indexer")
	}
}
