package flstore

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/replica"
	"repro/internal/rpc"
	"repro/internal/storage"
)

// TestSeededKillRestartCatchUp is the acceptance scenario for replicated
// maintainers: a 3-member replica group under a seeded fault schedule loses
// maintainer 1 (its links severed mid-run), ack-majority appends keep
// succeeding through the survivors, reads of the dead member's range fail
// over, and the restarted maintainer — reopened on the same on-disk segment
// store — catches up over the pull protocol and serves reads again. The
// whole run is deterministic: the same seed replays the same per-link event
// sequence byte for byte.
func TestSeededKillRestartCatchUp(t *testing.T) {
	fpA := runKillRestartScenario(t, 42)
	fpB := runKillRestartScenario(t, 42)
	if fpA != fpB {
		t.Errorf("same seed diverged:\nrun A:\n%srun B:\n%s", fpA, fpB)
	}
	if fpA == "" {
		t.Error("scenario produced no fault events")
	}
	if fpC := runKillRestartScenario(t, 43); fpC == fpA {
		t.Error("different seeds produced identical event logs; schedule is not seed-driven")
	}
}

// runKillRestartScenario executes one full kill → degraded service →
// restart → catch-up pass and returns the controller's canonical event
// fingerprint. Maintainer 1 runs on a real segment store in a temp dir so
// the restart exercises disk recovery, not just in-memory state.
func runKillRestartScenario(t *testing.T, seed uint64) string {
	t.Helper()
	const n, r = 3, 3
	p := Placement{NumMaintainers: n, BatchSize: 2}
	// DelayP seasons the schedule with seed-dependent (but no-op: Sleep is
	// stubbed) events so fingerprints actually vary by seed without
	// perturbing behavior; drops are off to keep counts exact.
	ctl := faultinject.New(faultinject.Options{
		Seed: seed, DelayP: 0.3, Delay: time.Microsecond, Sleep: func(time.Duration) {},
	})
	dir := t.TempDir()
	openStore := func() *storage.SegmentStore {
		s, err := storage.OpenSegmentStore(dir, storage.SegmentStoreOptions{Sync: storage.SyncEachBatch})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	mk := func(i int, st storage.Store) (*Maintainer, *rpc.Server) {
		cfg := MaintainerConfig{Index: i, Placement: p, Replication: r, Store: st}
		m, err := NewMaintainer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		srv := rpc.NewServer()
		ServeMaintainer(srv, m)
		return m, srv
	}
	seg := openStore()
	ms := make([]*Maintainer, n)
	srvs := make([]*rpc.Server, n)
	for i := 0; i < n; i++ {
		var st storage.Store
		if i == 1 {
			st = seg
		}
		ms[i], srvs[i] = mk(i, st)
	}
	wire := func(i int) MaintainerAPI {
		return NewMaintainerClient(ctl.Wrap(fmt.Sprintf("c->m%d", i), rpc.NewLocalClient(srvs[i])))
	}
	client, err := NewReplicatedDirectClient(p, []MaintainerAPI{wire(0), wire(1), wire(2)}, nil, r, replica.AckMajority)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	appendN := func(tag string, count int) {
		t.Helper()
		for i := 0; i < count; i++ {
			if _, err := client.Append([]byte(fmt.Sprintf("%s-%d", tag, i)), nil); err != nil {
				t.Fatalf("append %s-%d: %v", tag, i, err)
			}
		}
		total += count
	}

	appendN("pre", 9)

	// Kill: sever the client's link to maintainer 1 mid-run. Ack-majority
	// appends must keep succeeding — the session evicts the member and
	// retargets its range to the group's next acting primary.
	ctl.Sever("c->m1")
	appendN("during", 15)
	if st := client.Session().Health().State(1); st != replica.Evicted {
		t.Fatalf("maintainer 1 state after kill = %v, want evicted", st)
	}
	// Every acknowledged position stays readable; range-1 reads fail over.
	head, err := client.HeadExact()
	if err != nil {
		t.Fatal(err)
	}
	if head == 0 {
		t.Fatal("head did not advance")
	}
	rangeOneReads := 0
	for lid := uint64(1); lid <= head; lid++ {
		if _, err := client.ReadLId(lid); err != nil {
			t.Errorf("read of lid %d with maintainer 1 dead: %v", lid, err)
		}
		if p.Owner(lid) == 1 {
			rangeOneReads++
		}
	}
	if rangeOneReads == 0 {
		t.Fatal("no range-1 positions below head; scenario never exercised failover reads")
	}

	// Restart: reopen the same directory (disk recovery), rebuild the
	// maintainer and its server, heal the link, and rewire the client.
	if err := seg.Close(); err != nil {
		t.Fatal(err)
	}
	seg2 := openStore()
	ms[1], srvs[1] = mk(1, seg2)
	ctl.Heal("c->m1")
	if err := client.SetMaintainer(1, wire(1)); err != nil {
		t.Fatal(err)
	}

	// Catch up and readmit. The member missed exactly the 15 "during"
	// records (its pre-kill state survived on disk).
	moved, err := client.Session().Rejoin(1, 4)
	if err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	if moved != 15 {
		t.Errorf("catch-up transferred %d records, want 15", moved)
	}
	if st := client.Session().Health().State(1); st != replica.Healthy {
		t.Errorf("maintainer 1 state after rejoin = %v, want healthy", st)
	}
	// The restarted member serves reads for its own range directly.
	for lid := uint64(1); lid <= head; lid++ {
		if p.Owner(lid) != 1 {
			continue
		}
		if _, err := ms[1].Read(lid); err != nil {
			t.Errorf("restarted maintainer read of lid %d: %v", lid, err)
		}
	}

	// Post-rejoin appends fan out to the readmitted member again; with
	// R = N every member ends up holding every record.
	appendN("post", 6)
	if got := ms[1].Store().Len(); got != total {
		t.Errorf("restarted maintainer stores %d records, want %d (catch-up + resumed fan-out)", got, total)
	}
	for _, m := range ms {
		if got := m.Store().Len(); got != total {
			t.Errorf("maintainer %d stores %d records, want %d", m.Index(), got, total)
		}
	}
	return ctl.Fingerprint()
}
