package flstore

import (
	"container/heap"
	"errors"
	"fmt"
	"hash/fnv"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/ratelimit"
	"repro/internal/replica"
	"repro/internal/storage"
	"repro/internal/trace"
)

// The package's error sentinels (ErrOverloaded, ErrWrongMaintainer,
// ErrNotReplica, ErrOrderBacklog) live in errors.go together with the
// typed OverloadError and the IsRetryable/RetryAfter helpers.

// MaintainerConfig configures one log maintainer.
type MaintainerConfig struct {
	// Index is this maintainer's position in the placement (0-based).
	Index     int
	Placement Placement

	// FirstLId is the first log position this maintainer's epoch covers
	// (§6.3 elasticity): a maintainer constructed for a newly announced
	// placement starts assigning at the epoch boundary instead of at LId 1.
	// Positions below it belong to earlier epochs and reach this maintainer
	// only through migration (SetLegacy/IngestLegacy). 0 and 1 both mean
	// the epoch starts at the beginning of the log. FirstLId−1 must be a
	// whole number of placement rounds (divisible by NumMaintainers ×
	// BatchSize) so every range's first owned slot sits exactly at the
	// boundary.
	FirstLId uint64

	// Replication is the replica-group size R: besides its own LId range,
	// the maintainer stores follower copies of the R−1 preceding ranges
	// (mod N) and can act as their primary during failover. 0 and 1 both
	// mean unreplicated.
	Replication int

	// Store persists the records; NewMemStore is used when nil.
	Store storage.Store

	// Limiter models the machine's append capacity; nil = unlimited.
	Limiter *ratelimit.Limiter
	// RejectPenalty is the token cost of turning away one record when
	// saturated (models wasted ingress work; see ratelimit.Penalize).
	RejectPenalty float64

	// Indexers receive tag postings for stored records. May be nil.
	Indexers []IndexerAPI

	// EnforceHead makes Read fail with core.ErrPastHead for positions
	// above the gossiped head of the log — the §5.4 requirement that a
	// record at position i is only readable once no gap exists below i.
	EnforceHead bool

	// MaxOrderBuffer bounds the records parked by AppendAfter; 0 uses a
	// default of 4096.
	MaxOrderBuffer int

	// MaxIngressBacklog bounds the total ingestion backlog — explicit-order
	// records plus out-of-order buffered slots across hosted ranges — above
	// which client-facing appends (Append/AppendFor) are rejected with a
	// retryable OverloadError instead of growing memory without bound. The
	// replica and assigned-LId paths are exempt: rejecting them could
	// deadlock the very drains that shrink the backlog. 0 uses a default of
	// 65536 records; negative disables the bound.
	MaxIngressBacklog int

	// TailCacheSize is the capacity (records) of the tail ring serving
	// range reads near the append frontier from memory. 0 uses a default
	// of 4096; negative disables the cache.
	TailCacheSize int

	// ReadBlockWait bounds how long Read parks on a locally-invalid
	// position — one an invalidation announced but whose payload has not
	// resolved here — before returning a retryable ReadBlockedError so
	// the session fails over to a fresher replica. The fan-out payload
	// normally lands within a round trip, so the default (2ms) resolves
	// the common race in place without stalling the serving goroutine.
	// 0 uses the default; negative disables blocking (immediate
	// ReadBlockedError).
	ReadBlockWait time.Duration
}

// rangeState is the per-hosted-range ingestion state: the dense slot
// frontier plus the out-of-order buffer feeding it. The store only ever
// holds the dense prefix of every hosted range, which is what makes
// restart recovery and catch-up gap-free.
type rangeState struct {
	// filled is the number of slots of this range filled so far; the next
	// LId assigned or accepted for the range is LIdOfSlot(range, filled).
	filled uint64
	// pending holds records that arrived ahead of the dense frontier,
	// keyed by slot.
	pending map[uint64][]*core.Record
	// durable is the contiguous count of this range's slots whose records
	// the local store has confirmed on stable storage (AppendBatch
	// returned, which for a durable store means fsynced — a group-commit
	// window resolved, not merely buffered). durable <= filled always:
	// filled advances at assignment, durable when the disk catches up.
	durable uint64
	// durDone holds store batches that completed out of order, ahead of
	// the contiguous durable frontier: start slot → end slot (exclusive).
	durDone map[uint64]uint64
}

// Maintainer is one FLStore log maintainer (§5.2): it owns the deterministic
// round-robin LId ranges of its index, assigns positions to records after
// they arrive, persists them, answers reads, and gossips its progress so
// every maintainer can compute the head of the log. Under replication it
// additionally follows the R−1 preceding ranges: it ingests copies via
// ReplicaAppend, serves failover reads for them, and can assign their
// positions (AppendFor) while acting as primary.
type Maintainer struct {
	cfg    MaintainerConfig
	store  storage.Store
	layout replica.Layout

	mu sync.Mutex
	// hosted maps each range this maintainer stores (own + followed) to
	// its ingestion state. The key set is fixed at construction.
	hosted map[int]*rangeState
	// nextVec[j] is the latest known next-unfilled LId of range j
	// (nextVec[Index] is maintained locally; hosted followers' entries
	// advance from replica ingestion, the rest from gossip).
	nextVec []uint64
	// durVec[j] is the highest known durable watermark of range j
	// anywhere in the cluster (LId form, exclusive): some member has
	// fsynced every position of range j below it. Hosted entries fold in
	// from the local durable frontiers; the rest ride the gossip vector
	// exchange exactly like nextVec.
	durVec []uint64
	// storeDurable caches whether the store reports durability-on-return
	// (storage.SegmentStore/TieredStore with a sync policy); stores that
	// don't (MemStore, SyncNever) never advance the durable watermark.
	storeDurable bool
	// orderBuf parks AppendAfter batches whose minimum-LId bound is not
	// yet satisfiable.
	orderBuf orderHeap
	// pendingCount mirrors the number of records buffered ahead of the
	// dense frontiers (Σ over hosted ranges of buffered slots) so the
	// admission check reads the backlog in O(1) under mu.
	pendingCount int
	// sealLId, when non-zero, is the first LId of the epoch that
	// supersedes this maintainer: appends that would assign at or past it
	// are rejected whole with an EpochSealedError. sealCaps caps each
	// hosted range's fill at its slot count below the boundary.
	sealLId  uint64
	sealCaps map[int]uint64
	// legacy, when non-nil, tracks old-epoch ranges migrated onto this
	// maintainer: records below cfg.FirstLId ingested under the previous
	// placement's geometry.
	legacy *legacyState

	// tail caches recently appended records for the batched read path;
	// nil when disabled.
	tail *tailRing
	// waitMu guards waitCh, the broadcast channel notifyProgressLocked
	// closes (and replaces) whenever a next-unfilled entry advances.
	// Always taken after mu when both are held.
	waitMu sync.Mutex
	waitCh chan struct{}

	// Appended counts records durably stored (exported for experiment
	// instrumentation).
	Appended metrics.Counter
	// Rejected counts records turned away by the capacity limiter.
	Rejected metrics.Counter
	// BacklogRejects counts records turned away because the ingestion
	// backlog was at MaxIngressBacklog (the admission-control companion to
	// the limiter-driven Rejected).
	BacklogRejects metrics.Counter
	// Read-path counters: range/multi-read calls and records served,
	// tail long-polls, tail-ring hits/misses, ring-miss store scans, and
	// full Scan calls (the legacy read path — a caught-up tail issues
	// none).
	RangeReads      metrics.Counter
	RangeRecords    metrics.Counter
	MultiReads      metrics.Counter
	TailWaits       metrics.Counter
	TailCacheHits   metrics.Counter
	TailCacheMisses metrics.Counter
	StoreScans      metrics.Counter
	ScanCalls       metrics.Counter
	// LocalReadHits counts single reads served from the local store (the
	// invalidation protocol's payoff: any valid replica answers without
	// an owner round trip); LocalReadBlocks counts reads that parked on a
	// locally-invalid position (announced, payload not yet resolved).
	LocalReadHits   metrics.Counter
	LocalReadBlocks metrics.Counter

	// appendLatency/readLatency are set by EnableMetrics (nil until then;
	// the serving paths skip observation when unset). EnableMetrics must
	// run before the maintainer serves traffic.
	appendLatency *metrics.BucketHistogram
	readLatency   *metrics.BucketHistogram
	rangeBatch    *metrics.BucketHistogram
	tailWake      *metrics.BucketHistogram
}

// EnableMetrics registers this maintainer's serving-path instrumentation
// with reg: append/read latency histograms, append/rejection counters, the
// explicit-order and out-of-order buffer depths, and the head-of-log and
// next-LId gauges. Every series carries maintainer=<index> plus any extra
// labels (deployments embedding several placements add e.g. dc=<id>).
// Call before the maintainer starts serving.
func (m *Maintainer) EnableMetrics(reg *metrics.Registry, extra ...metrics.Label) {
	lbls := append([]metrics.Label{metrics.L("maintainer", strconv.Itoa(m.cfg.Index))}, extra...)
	m.appendLatency = reg.Histogram("flstore_append_seconds", metrics.LatencyBuckets, lbls...)
	m.readLatency = reg.Histogram("flstore_read_seconds", metrics.LatencyBuckets, lbls...)
	reg.CounterFunc("flstore_appends_total", func() float64 { return float64(m.Appended.Value()) }, lbls...)
	reg.CounterFunc("flstore_rejected_total", func() float64 { return float64(m.Rejected.Value()) }, lbls...)
	reg.CounterFunc("flstore_admission_limiter_rejected_total", func() float64 { return float64(m.Rejected.Value()) }, lbls...)
	reg.CounterFunc("flstore_admission_backlog_rejected_total", func() float64 { return float64(m.BacklogRejects.Value()) }, lbls...)
	reg.GaugeFunc("flstore_admission_backlog_records", func() float64 { return float64(m.IngressBacklog()) }, lbls...)
	reg.GaugeFunc("flstore_admission_backlog_budget_records", func() float64 { return float64(m.cfg.MaxIngressBacklog) }, lbls...)
	reg.GaugeFunc("flstore_order_buffer_records", func() float64 { return float64(m.OrderBuffered()) }, lbls...)
	reg.GaugeFunc("flstore_pending_assigned_slots", func() float64 { return float64(m.PendingAssigned()) }, lbls...)
	reg.GaugeFunc("flstore_head_lid", func() float64 { return float64(m.currentHead()) }, lbls...)
	reg.GaugeFunc("flstore_next_lid", func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return float64(m.nextVec[m.cfg.Index])
	}, lbls...)
	reg.GaugeFunc("flstore_stored_records", func() float64 { return float64(m.store.Len()) }, lbls...)
	reg.GaugeFunc("flstore_hosted_ranges", func() float64 { return float64(len(m.hosted)) }, lbls...)
	m.rangeBatch = reg.Histogram("flstore_range_batch_records", metrics.BatchBuckets, lbls...)
	m.tailWake = reg.Histogram("flstore_tail_wake_seconds", metrics.LatencyBuckets, lbls...)
	reg.CounterFunc("flstore_range_reads_total", func() float64 { return float64(m.RangeReads.Value()) }, lbls...)
	reg.CounterFunc("flstore_range_records_total", func() float64 { return float64(m.RangeRecords.Value()) }, lbls...)
	reg.CounterFunc("flstore_multi_reads_total", func() float64 { return float64(m.MultiReads.Value()) }, lbls...)
	reg.CounterFunc("flstore_tail_waits_total", func() float64 { return float64(m.TailWaits.Value()) }, lbls...)
	reg.CounterFunc("flstore_tail_cache_hits_total", func() float64 { return float64(m.TailCacheHits.Value()) }, lbls...)
	reg.CounterFunc("flstore_tail_cache_misses_total", func() float64 { return float64(m.TailCacheMisses.Value()) }, lbls...)
	reg.CounterFunc("flstore_store_scans_total", func() float64 { return float64(m.StoreScans.Value()) }, lbls...)
	reg.CounterFunc("flstore_scan_calls_total", func() float64 { return float64(m.ScanCalls.Value()) }, lbls...)
	reg.CounterFunc("replica_local_read_hits_total", func() float64 { return float64(m.LocalReadHits.Value()) }, lbls...)
	reg.CounterFunc("replica_local_read_blocks_total", func() float64 { return float64(m.LocalReadBlocks.Value()) }, lbls...)
	// Per hosted range: the validity watermark (dense-prefix frontier LId
	// below which reads are served locally) and the invalidation backlog
	// (positions announced as assigned but not yet resolved here).
	for r := range m.hosted {
		r := r
		rl := append([]metrics.Label{metrics.L("range", strconv.Itoa(r))}, lbls...)
		reg.GaugeFunc("replica_valid_watermark", func() float64 {
			wm, _, _ := m.ValidityWatermark(r)
			return float64(wm)
		}, rl...)
		reg.GaugeFunc("replica_invalidation_backlog", func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return float64(m.invalBacklogLocked(r))
		}, rl...)
		reg.GaugeFunc("replica_durable_watermark", func() float64 {
			wm, _ := m.DurableWatermark(r)
			return float64(wm)
		}, rl...)
	}
}

// NewMaintainer returns a ready maintainer.
func NewMaintainer(cfg MaintainerConfig) (*Maintainer, error) {
	if err := cfg.Placement.Validate(); err != nil {
		return nil, err
	}
	if cfg.Index < 0 || cfg.Index >= cfg.Placement.NumMaintainers {
		return nil, fmt.Errorf("flstore: maintainer index %d out of range [0,%d)", cfg.Index, cfg.Placement.NumMaintainers)
	}
	if cfg.FirstLId == 0 {
		cfg.FirstLId = 1
	}
	if rl := uint64(cfg.Placement.NumMaintainers) * cfg.Placement.BatchSize; (cfg.FirstLId-1)%rl != 0 {
		return nil, fmt.Errorf("flstore: epoch FirstLId %d is not round-aligned (round length %d)", cfg.FirstLId, rl)
	}
	if cfg.Replication < 1 {
		cfg.Replication = 1
	}
	layout := replica.Layout{N: cfg.Placement.NumMaintainers, R: cfg.Replication}
	if err := layout.Validate(); err != nil {
		return nil, err
	}
	if cfg.Store == nil {
		cfg.Store = storage.NewMemStore()
	}
	if cfg.MaxOrderBuffer == 0 {
		cfg.MaxOrderBuffer = 4096
	}
	if cfg.MaxIngressBacklog == 0 {
		cfg.MaxIngressBacklog = 65536
	}
	if cfg.TailCacheSize == 0 {
		cfg.TailCacheSize = defaultTailCacheSize
	}
	if cfg.ReadBlockWait == 0 {
		cfg.ReadBlockWait = defaultReadBlockWait
	}
	m := &Maintainer{
		cfg:     cfg,
		store:   cfg.Store,
		layout:  layout,
		hosted:  make(map[int]*rangeState, cfg.Replication),
		nextVec: make([]uint64, cfg.Placement.NumMaintainers),
		durVec:  make([]uint64, cfg.Placement.NumMaintainers),
	}
	if d, ok := cfg.Store.(interface{ Durable() bool }); ok {
		m.storeDurable = d.Durable()
	}
	if cfg.TailCacheSize > 0 {
		m.tail = newTailRing(cfg.TailCacheSize)
	}
	// Hosted ranges start their dense frontiers at the epoch's base slot:
	// slot 0 for an epoch beginning the log, the boundary's slot count for
	// a grown placement's maintainer (everything below the boundary is the
	// previous epoch's, reachable here only via migration). Because the
	// boundary is round-aligned the base is a whole number of rounds.
	for _, r := range layout.Hosts(cfg.Index) {
		base := slotsBelowP(cfg.Placement, r, cfg.FirstLId)
		m.hosted[r] = &rangeState{
			filled:  base,
			durable: base,
			pending: make(map[uint64][]*core.Record),
			durDone: make(map[uint64]uint64),
		}
	}
	// Initialize every entry to the corresponding maintainer's first owned
	// LId of this epoch, so the new member set's Head() starts exactly at
	// FirstLId−1 (head continuity across a switchover) and at 0 for an
	// epoch-0 set, until real gossip arrives.
	for j := range m.nextVec {
		m.nextVec[j] = cfg.Placement.LIdOfSlot(j, slotsBelowP(cfg.Placement, j, cfg.FirstLId))
		m.durVec[j] = m.nextVec[j]
	}
	// Recover the dense frontiers from a pre-populated store (restart).
	// The store may hold several hosted ranges' records, so every record
	// is attributed to its range; a non-dense range (possible only after a
	// torn batch tail) keeps its frontier at the dense prefix, and the
	// remainder is re-fetched by catch-up.
	if max := cfg.Store.MaxLId(); max > 0 {
		seen := make(map[int]map[uint64]bool)
		err := cfg.Store.Scan(1, max, func(r *core.Record) bool {
			if r.LId < cfg.FirstLId {
				// Previous-epoch records (a restart mid-migration): they
				// belong to the legacy geometry, not this epoch's frontiers.
				// SetLegacy re-derives their dense prefix from the store.
				return true
			}
			rangeIdx := cfg.Placement.Owner(r.LId)
			if _, ok := m.hosted[rangeIdx]; ok {
				if seen[rangeIdx] == nil {
					seen[rangeIdx] = make(map[uint64]bool)
				}
				seen[rangeIdx][cfg.Placement.SlotOf(r.LId)] = true
			}
			return true
		})
		if err != nil {
			return nil, fmt.Errorf("flstore: recovering frontiers: %w", err)
		}
		for rangeIdx, slots := range seen {
			st := m.hosted[rangeIdx]
			for slots[st.filled] {
				st.filled++
			}
			m.advanceNextLocked(rangeIdx, st)
			// Whatever the recovery scan read back came off stable
			// storage, so the durable frontier restarts at the dense
			// prefix — no re-fsync needed for survivors. A volatile
			// store's contents are not durable, so its frontier must
			// not feed the gossiped durability vector.
			if m.storeDurable {
				st.durable = st.filled
				m.advanceDurableLocked(rangeIdx, st)
			}
		}
	}
	return m, nil
}

// Index returns the maintainer's placement index.
func (m *Maintainer) Index() int { return m.cfg.Index }

// advanceNextLocked folds a hosted range's local frontier into nextVec.
// Caller holds mu (or is still constructing the maintainer).
func (m *Maintainer) advanceNextLocked(rangeIdx int, st *rangeState) {
	if next := m.cfg.Placement.LIdOfSlot(rangeIdx, st.filled); next > m.nextVec[rangeIdx] {
		m.nextVec[rangeIdx] = next
		m.notifyProgressLocked()
	}
}

// advanceDurableLocked folds a hosted range's local durable frontier into
// durVec. Caller holds mu (or is still constructing the maintainer).
func (m *Maintainer) advanceDurableLocked(rangeIdx int, st *rangeState) {
	if lid := m.cfg.Placement.LIdOfSlot(rangeIdx, st.durable); lid > m.durVec[rangeIdx] {
		m.durVec[rangeIdx] = lid
	}
}

// markDurable records that the local store confirmed rangeIdx's slots
// [start, end) on stable storage (its AppendBatch returned) and advances
// the range's contiguous durable frontier. Store batches for one range
// are disjoint slot intervals but may *complete* out of order — two
// appends can reach the store in either order, and group-commit windows
// resolve when their fsync does — so completions ahead of the frontier
// park in durDone until the gap closes. Stores without durability-on-
// return never advance the watermark.
func (m *Maintainer) markDurable(rangeIdx int, start, end uint64) {
	if !m.storeDurable || end <= start {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.hosted[rangeIdx]
	if !ok {
		return
	}
	if end <= st.durable {
		return
	}
	if start <= st.durable {
		st.durable = end
	} else {
		st.durDone[start] = end
	}
	for {
		advanced := false
		for s, e := range st.durDone {
			if s <= st.durable {
				if e > st.durable {
					st.durable = e
				}
				delete(st.durDone, s)
				advanced = true
			}
		}
		if !advanced {
			break
		}
	}
	m.advanceDurableLocked(rangeIdx, st)
}

// DurableWatermark returns a hosted range's local durable watermark: the
// LId below which every position of the range is on THIS member's stable
// storage (fsynced, not merely buffered), in next-unfilled form like
// RangeFrontier. It reports 0 when the member's store is volatile — the
// watermark would be meaningless. The quorum-durability status view probes
// it per member; contrast ValidityWatermark, which tracks what is locally
// readable.
func (m *Maintainer) DurableWatermark(rangeIdx int) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.hosted[rangeIdx]
	if !ok {
		return 0, fmt.Errorf("%w: range %d at maintainer %d", ErrNotReplica, rangeIdx, m.cfg.Index)
	}
	if !m.storeDurable {
		return 0, nil
	}
	return m.cfg.Placement.LIdOfSlot(rangeIdx, st.durable), nil
}

// DurableVec returns a copy of the cluster-durability vector: per range,
// the highest durable watermark any member is known (via gossip) to have.
func (m *Maintainer) DurableVec() []uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]uint64, len(m.durVec))
	copy(out, m.durVec)
	return out
}

// admit applies the capacity limiter to n records. The success path is
// allocation-free; on rejection the error carries the limiter's token
// deficit as the retry-after hint.
func (m *Maintainer) admit(n int) error {
	if m.cfg.Limiter.Allow(n) {
		return nil
	}
	m.cfg.Limiter.Penalize(m.cfg.RejectPenalty * float64(n))
	m.Rejected.Add(uint64(n))
	return &OverloadError{RetryAfter: m.cfg.Limiter.Delay(n)}
}

// backlogOverloadLocked applies the ingestion-backlog budget to an n-record
// client-facing append. Caller holds mu; returns nil when within budget.
// The retry-after hint is the limiter's deficit when one is configured,
// else a fixed drain guess — the backlog shrinks as replica/assigned
// drains land, which admission cannot time precisely.
func (m *Maintainer) backlogOverloadLocked(n int) error {
	max := m.cfg.MaxIngressBacklog
	if max <= 0 || m.orderBuf.size+m.pendingCount+n <= max {
		return nil
	}
	m.BacklogRejects.Add(uint64(n))
	hint := m.cfg.Limiter.Delay(n)
	if hint <= 0 {
		hint = time.Millisecond
	}
	return &OverloadError{RetryAfter: hint}
}

// IngressBacklog returns the current ingestion backlog the admission budget
// is charged against: explicit-order records plus out-of-order buffered
// slots.
func (m *Maintainer) IngressBacklog() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.orderBuf.size + m.pendingCount
}

// Append implements MaintainerAPI: post-assignment of log positions in the
// maintainer's own range.
func (m *Maintainer) Append(recs []*core.Record) ([]uint64, error) {
	return m.AppendFor(m.cfg.Index, recs)
}

// AppendFor post-assigns positions in any hosted range — rangeIdx equal to
// the maintainer's own index is the normal append path, other hosted
// ranges are the failover path where this maintainer acts as primary for a
// dead owner's range.
func (m *Maintainer) AppendFor(rangeIdx int, recs []*core.Record) ([]uint64, error) {
	if len(recs) == 0 {
		return nil, nil
	}
	tc := batchTrace(recs)
	if h := m.appendLatency; h != nil {
		defer h.ObserveSinceEx(time.Now(), uint64(tc.T))
	}
	if err := m.admit(len(recs)); err != nil {
		tc.Hop(trace.Default(), "maint.admit", 0, "overload", 0, len(recs))
		return nil, err
	}
	m.mu.Lock()
	st, ok := m.hosted[rangeIdx]
	if !ok {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: range %d at maintainer %d", ErrNotReplica, rangeIdx, m.cfg.Index)
	}
	if err := m.backlogOverloadLocked(len(recs)); err != nil {
		m.mu.Unlock()
		tc.Hop(trace.Default(), "maint.admit", 0, "overload", 0, len(recs))
		return nil, err
	}
	for i, r := range recs {
		if r.LId != 0 {
			m.mu.Unlock()
			return nil, fmt.Errorf("flstore: Append record %d already has LId %d", i, r.LId)
		}
	}
	// A sealed epoch caps every hosted range at its slot count below the
	// announced boundary. Batches that would cross the cap are rejected
	// whole — splitting one would hand part of an atomic batch to each
	// epoch — with the typed error carrying the boundary so the client
	// refreshes its configuration and resumes against the new owners.
	if m.sealLId != 0 {
		if cap := m.sealCaps[rangeIdx]; st.filled+uint64(len(recs)) > cap {
			boundary := m.sealLId
			m.mu.Unlock()
			tc.Hop(trace.Default(), "maint.assign", 0, "sealed", 0, len(recs))
			return nil, &EpochSealedError{FirstLId: boundary}
		}
	}
	// One range assignment for the whole batch: the range fills its slots
	// densely, so the batch occupies slots [filled, filled+len).
	startSlot := st.filled
	lids := make([]uint64, len(recs))
	m.cfg.Placement.LIdsOfSlots(rangeIdx, st.filled, lids)
	for i, r := range recs {
		r.LId = lids[i]
		if r.TOId == 0 {
			// Standalone FLStore deployments have a single total
			// order, so the LId doubles as the TOId. Chariots
			// deployments assign TOIds upstream and use
			// AppendAssigned instead.
			r.TOId = lids[i]
		}
	}
	st.filled += uint64(len(recs))
	m.advanceNextLocked(rangeIdx, st)
	var released []orderBatch
	if rangeIdx == m.cfg.Index {
		released = m.releasableOrderBatchesLocked()
	}
	m.mu.Unlock()

	// The assign hop covers arrival (transit restamped by the wire
	// handler, or the in-process hand-off) through position assignment;
	// the store span wraps persistence, with fsync nested inside it by
	// the segment store.
	tc.Hop(trace.Default(), "maint.assign", 0, "", lids[0], len(recs))
	sw := trace.Begin(tc, "maint.store")
	if err := m.store.AppendBatch(recs); err != nil {
		sw.End(trace.Default(), "error", lids[0], len(recs))
		return nil, err
	}
	sw.End(trace.Default(), "", lids[0], len(recs))
	m.markDurable(rangeIdx, startSlot, startSlot+uint64(len(recs)))
	m.cacheAppended(recs)
	m.Appended.Add(uint64(len(recs)))
	if err := m.postTags(recs); err != nil {
		return nil, err
	}
	for _, b := range released {
		if _, err := m.Append(b.recs); err != nil {
			return nil, fmt.Errorf("flstore: releasing ordered batch: %w", err)
		}
	}
	return lids, nil
}

// AppendAfter implements MaintainerAPI: explicit cross-maintainer ordering
// (§5.4). If the next LId this maintainer would assign already exceeds
// minLId the records are appended immediately; otherwise they are buffered
// and released once the maintainer's frontier passes the bound.
func (m *Maintainer) AppendAfter(minLId uint64, recs []*core.Record) ([]uint64, error) {
	if len(recs) == 0 {
		return nil, nil
	}
	m.mu.Lock()
	next := m.cfg.Placement.LIdOfSlot(m.cfg.Index, m.hosted[m.cfg.Index].filled)
	if next > minLId {
		m.mu.Unlock()
		return m.Append(recs)
	}
	if m.orderBuf.size+len(recs) > m.cfg.MaxOrderBuffer {
		m.mu.Unlock()
		return nil, ErrOrderBacklog
	}
	heap.Push(&m.orderBuf, orderBatch{minLId: minLId, recs: recs})
	m.orderBuf.size += len(recs)
	m.mu.Unlock()
	return nil, nil // buffered; LIds assigned on release
}

// releasableOrderBatchesLocked pops buffered batches whose bound is now
// below the frontier. Caller holds mu.
func (m *Maintainer) releasableOrderBatchesLocked() []orderBatch {
	var out []orderBatch
	next := m.cfg.Placement.LIdOfSlot(m.cfg.Index, m.hosted[m.cfg.Index].filled)
	for m.orderBuf.Len() > 0 && m.orderBuf.batches[0].minLId < next {
		b := heap.Pop(&m.orderBuf).(orderBatch)
		m.orderBuf.size -= len(b.recs)
		out = append(out, b)
	}
	return out
}

// AppendAssigned implements MaintainerAPI: ingestion of records whose LIds
// were assigned upstream by Chariots' queues (§6.2). Records ahead of the
// dense frontier are buffered so the frontier only advances contiguously,
// keeping the head-of-log computation exact.
func (m *Maintainer) AppendAssigned(recs []*core.Record) error {
	if len(recs) == 0 {
		return nil
	}
	tc := batchTrace(recs)
	if h := m.appendLatency; h != nil {
		defer h.ObserveSinceEx(time.Now(), uint64(tc.T))
	}
	if err := m.admit(len(recs)); err != nil {
		tc.Hop(trace.Default(), "maint.admit", 0, "overload", 0, len(recs))
		return err
	}
	m.mu.Lock()
	st := m.hosted[m.cfg.Index]
	for _, r := range recs {
		if r.LId == 0 {
			m.mu.Unlock()
			return errors.New("flstore: AppendAssigned record without LId")
		}
		if m.cfg.Placement.Owner(r.LId) != m.cfg.Index {
			m.mu.Unlock()
			return fmt.Errorf("%w: %d", ErrWrongMaintainer, r.LId)
		}
		if m.sealLId != 0 && r.LId >= m.sealLId {
			boundary := m.sealLId
			m.mu.Unlock()
			return &EpochSealedError{FirstLId: boundary}
		}
		slot := m.cfg.Placement.SlotOf(r.LId)
		if slot < st.filled {
			m.mu.Unlock()
			return fmt.Errorf("%w: %d", storage.ErrDuplicate, r.LId)
		}
		st.pending[slot] = append(st.pending[slot], r)
		m.pendingCount++
	}
	// Drain the contiguous prefix.
	drainStart := st.filled
	var ready []*core.Record
	for {
		rs, ok := st.pending[st.filled]
		if !ok {
			break
		}
		if len(rs) > 1 {
			m.mu.Unlock()
			return fmt.Errorf("%w: slot %d assigned twice", storage.ErrDuplicate, st.filled)
		}
		ready = append(ready, rs[0])
		delete(st.pending, st.filled)
		m.pendingCount--
		st.filled++
	}
	drainEnd := st.filled
	m.advanceNextLocked(m.cfg.Index, st)
	m.mu.Unlock()

	if len(ready) == 0 {
		// Parked ahead of the dense frontier: the batch is buffered, not
		// stored — its store span is recorded by whichever later batch
		// drains it.
		tc.Hop(trace.Default(), "maint.ingest", 0, "buffered", recs[0].LId, len(recs))
		return nil
	}
	tc.Hop(trace.Default(), "maint.ingest", 0, "", recs[0].LId, len(ready))
	sw := trace.Begin(tc, "maint.store")
	if err := m.store.AppendBatch(ready); err != nil {
		sw.End(trace.Default(), "error", recs[0].LId, len(ready))
		return err
	}
	sw.End(trace.Default(), "", recs[0].LId, len(ready))
	m.markDurable(m.cfg.Index, drainStart, drainEnd)
	m.cacheAppended(ready)
	m.Appended.Add(uint64(len(ready)))
	return m.postTags(ready)
}

// ReplicaAppend ingests copies of records whose positions were assigned by
// a range's acting primary; the range is derived from each record's LId,
// and every named range must be hosted here. Delivery is idempotent:
// records at or below the dense frontier (and duplicates of buffered
// slots) are silently skipped, so fan-out retries and duplicated network
// frames are harmless. Tag postings are not re-sent — the acting primary
// already streamed them to the indexers.
func (m *Maintainer) ReplicaAppend(recs []*core.Record) error {
	if len(recs) == 0 {
		return nil
	}
	tc := batchTrace(recs)
	if h := m.appendLatency; h != nil {
		defer h.ObserveSinceEx(time.Now(), uint64(tc.T))
	}
	if err := m.admit(len(recs)); err != nil {
		tc.Hop(trace.Default(), "maint.admit", 0, "overload", 0, len(recs))
		return err
	}
	m.mu.Lock()
	touched := make(map[int]*rangeState)
	for _, r := range recs {
		if r.LId == 0 {
			m.mu.Unlock()
			return errors.New("flstore: ReplicaAppend record without LId")
		}
		rangeIdx := m.cfg.Placement.Owner(r.LId)
		st, ok := m.hosted[rangeIdx]
		if !ok {
			m.mu.Unlock()
			return fmt.Errorf("%w: range %d at maintainer %d", ErrNotReplica, rangeIdx, m.cfg.Index)
		}
		slot := m.cfg.Placement.SlotOf(r.LId)
		if slot < st.filled {
			continue // already stored
		}
		if _, buffered := st.pending[slot]; buffered {
			continue // duplicate of an in-flight copy
		}
		st.pending[slot] = []*core.Record{r}
		m.pendingCount++
		touched[rangeIdx] = st
	}
	var ready []*core.Record
	drained := make(map[int][2]uint64, len(touched))
	for rangeIdx, st := range touched {
		start := st.filled
		for {
			rs, ok := st.pending[st.filled]
			if !ok {
				break
			}
			ready = append(ready, rs[0])
			delete(st.pending, st.filled)
			m.pendingCount--
			st.filled++
		}
		drained[rangeIdx] = [2]uint64{start, st.filled}
		m.advanceNextLocked(rangeIdx, st)
	}
	m.mu.Unlock()

	if len(ready) == 0 {
		tc.Hop(trace.Default(), "replica.ingest", 0, "buffered", recs[0].LId, len(recs))
		return nil
	}
	tc.Hop(trace.Default(), "replica.ingest", 0, "", recs[0].LId, len(ready))
	sw := trace.Begin(tc, "maint.store")
	if err := m.store.AppendBatch(ready); err != nil {
		sw.End(trace.Default(), "error", recs[0].LId, len(ready))
		return err
	}
	sw.End(trace.Default(), "", recs[0].LId, len(ready))
	for rangeIdx, span := range drained {
		m.markDurable(rangeIdx, span[0], span[1])
	}
	m.cacheAppended(ready)
	m.Appended.Add(uint64(len(ready)))
	return nil
}

// RangeFrontier returns the next-unfilled LId of a hosted range as known
// locally: for the own range this is the assignment frontier, for followed
// ranges the replicated frontier (everything below it is durably stored
// here).
func (m *Maintainer) RangeFrontier(rangeIdx int) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.hosted[rangeIdx]
	if !ok {
		return 0, fmt.Errorf("%w: range %d at maintainer %d", ErrNotReplica, rangeIdx, m.cfg.Index)
	}
	return m.cfg.Placement.LIdOfSlot(rangeIdx, st.filled), nil
}

// PullRange streams up to limit stored records of a hosted range with
// LId >= fromLId, in ascending LId order — the catch-up feed a restarted
// peer drains to rebuild its copy.
func (m *Maintainer) PullRange(rangeIdx int, fromLId uint64, limit int) ([]*core.Record, error) {
	m.mu.Lock()
	_, ok := m.hosted[rangeIdx]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: range %d at maintainer %d", ErrNotReplica, rangeIdx, m.cfg.Index)
	}
	if fromLId == 0 {
		fromLId = 1
	}
	var out []*core.Record
	err := m.store.Scan(fromLId, 0, func(r *core.Record) bool {
		if m.cfg.Placement.Owner(r.LId) != rangeIdx {
			return true
		}
		out = append(out, r)
		return limit <= 0 || len(out) < limit
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// postTags streams this batch's tag postings to the owning indexers.
func (m *Maintainer) postTags(recs []*core.Record) error {
	if len(m.cfg.Indexers) == 0 {
		return nil
	}
	batches := make(map[int][]Posting)
	for _, r := range recs {
		for _, t := range r.Tags {
			idx := IndexerFor(t.Key, len(m.cfg.Indexers))
			batches[idx] = append(batches[idx], Posting{Key: t.Key, Value: t.Value, LId: r.LId})
		}
	}
	for idx, b := range batches {
		if err := m.cfg.Indexers[idx].Post(b); err != nil {
			return fmt.Errorf("flstore: posting to indexer %d: %w", idx, err)
		}
	}
	return nil
}

// IndexerFor returns the indexer partition owning a tag key.
func IndexerFor(key string, numIndexers int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(numIndexers))
}

// defaultReadBlockWait bounds Read's park on a locally-invalid position;
// readBlockHint is the pacing hint attached when the wait expires (the
// payload is one fan-out round trip behind the announcement, so a
// millisecond is normally enough for a retry to land after it).
const (
	defaultReadBlockWait = 2 * time.Millisecond
	readBlockHint        = time.Millisecond
)

// Invalidate implements the Hermes-style announcement: every position of
// rangeIdx strictly below upTo has been assigned by the range's acting
// primary. The bound folds into nextVec — the same vector gossip and
// replica ingestion advance — so the head of the log sees the assignment
// immediately while the positions between the local frontier and the
// bound become locally *invalid*: Read blocks or fails over for them
// instead of reporting them absent. Idempotent and monotone; stale
// announcements are no-ops.
func (m *Maintainer) Invalidate(rangeIdx int, upTo uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.hosted[rangeIdx]; !ok {
		return fmt.Errorf("%w: range %d at maintainer %d", ErrNotReplica, rangeIdx, m.cfg.Index)
	}
	// Normalize the bound to frontier form (the next-unfilled LId of the
	// range given the announced slot count) so nextVec stays comparable
	// with the values local fills and gossip write.
	bound := m.cfg.Placement.LIdOfSlot(rangeIdx, m.slotsBelow(rangeIdx, upTo))
	if bound > m.nextVec[rangeIdx] {
		m.nextVec[rangeIdx] = bound
		m.notifyProgressLocked()
	}
	return nil
}

// slotsBelow counts how many of rangeIdx's positions lie strictly below
// bound — the slot-space form of an announced LId bound.
func (m *Maintainer) slotsBelow(rangeIdx int, bound uint64) uint64 {
	return slotsBelowP(m.cfg.Placement, rangeIdx, bound)
}

// slotsBelowP counts how many of rangeIdx's positions lie strictly below
// bound under placement p. Besides normalizing invalidation bounds, this
// is the switchover arithmetic: an epoch boundary F caps each old range at
// slotsBelowP(oldP, r, F) slots, and a new maintainer's ranges base at
// slotsBelowP(newP, r, F).
func slotsBelowP(p Placement, rangeIdx int, bound uint64) uint64 {
	if bound <= 1 {
		return 0
	}
	lid := bound - 1 // last position the bound covers
	chunk := (lid - 1) / p.BatchSize
	round := chunk / uint64(p.NumMaintainers)
	switch cpos := int(chunk % uint64(p.NumMaintainers)); {
	case cpos > rangeIdx:
		return (round + 1) * p.BatchSize
	case cpos < rangeIdx:
		return round * p.BatchSize
	default:
		return round*p.BatchSize + (lid-1)%p.BatchSize + 1
	}
}

// ValidityWatermark implements InvalidationAPI: a hosted range's validity
// watermark (the dense-prefix frontier LId — every position below it is
// resolved and served locally) and its announced assignment bound (every
// position below it is assigned somewhere in the group). The span between
// the two is this member's invalidation backlog.
func (m *Maintainer) ValidityWatermark(rangeIdx int) (watermark, announced uint64, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.hosted[rangeIdx]
	if !ok {
		return 0, 0, fmt.Errorf("%w: range %d at maintainer %d", ErrNotReplica, rangeIdx, m.cfg.Index)
	}
	watermark = m.cfg.Placement.LIdOfSlot(rangeIdx, st.filled)
	announced = m.nextVec[rangeIdx]
	if announced < watermark {
		announced = watermark
	}
	return watermark, announced, nil
}

// invalBacklogLocked returns how many of rangeIdx's positions are
// announced but unresolved here. Caller holds mu.
func (m *Maintainer) invalBacklogLocked(rangeIdx int) uint64 {
	st, ok := m.hosted[rangeIdx]
	if !ok {
		return 0
	}
	if ann := m.slotsBelow(rangeIdx, m.nextVec[rangeIdx]); ann > st.filled {
		return ann - st.filled
	}
	return 0
}

// Read implements MaintainerAPI. It serves every hosted range: below the
// range's validity watermark the record comes straight from the local
// store (any valid replica answers, no owner round trip); between the
// watermark and the announced assignment bound the position is invalid
// here — Read parks up to ReadBlockWait for the in-flight payload, then
// returns a retryable ReadBlockedError so the caller fails over to a
// fresher replica; above the announced bound the position does not exist
// yet and the legacy core.ErrNoSuchRecord semantics apply.
func (m *Maintainer) Read(lid uint64) (*core.Record, error) {
	if h := m.readLatency; h != nil {
		defer h.ObserveSince(time.Now())
	}
	if lid == 0 {
		return nil, core.ErrNoSuchRecord
	}
	// Positions below the epoch boundary belong to a previous placement's
	// geometry: they are served from the migrated legacy copy, not routed
	// by this epoch's layout.
	if lid < m.cfg.FirstLId {
		return m.legacyRead(lid)
	}
	if !m.layout.Replicas(m.cfg.Index, m.cfg.Placement.Owner(lid)) {
		return nil, fmt.Errorf("%w: %d", ErrWrongMaintainer, lid)
	}
	if m.cfg.EnforceHead {
		if head := m.currentHead(); lid > head {
			return nil, fmt.Errorf("%w: LId %d > head %d", core.ErrPastHead, lid, head)
		}
	}
	rec, err := m.store.Get(lid)
	if err == nil {
		m.LocalReadHits.Inc()
		return rec, nil
	}
	if !errors.Is(err, core.ErrNoSuchRecord) {
		return nil, err
	}
	return m.blockedRead(lid)
}

// blockedRead resolves a store miss against the invalidation state: a
// position below the announced bound is assigned — locally invalid, not
// absent — so the read parks on the progress channel for the in-flight
// payload (bounded by ReadBlockWait) rather than serving a stale
// no-such-record. Positions at or above the bound keep the legacy absent
// semantics.
func (m *Maintainer) blockedRead(lid uint64) (*core.Record, error) {
	rangeIdx := m.cfg.Placement.Owner(lid)
	var deadline time.Time
	blocked := false
	for {
		// Grab the channel before checking state: progress between the
		// check and the select closes this channel, so no wakeup is lost.
		ch := m.waitChan()
		m.mu.Lock()
		announced := m.nextVec[rangeIdx]
		m.mu.Unlock()
		if lid >= announced {
			return nil, core.ErrNoSuchRecord
		}
		// Assigned but missed above: either the payload is still in
		// flight, or it resolved (frontier advance → store write) between
		// the miss and now — re-check the store each pass.
		if rec, err := m.store.Get(lid); err == nil {
			m.LocalReadHits.Inc()
			return rec, nil
		}
		if !blocked {
			blocked = true
			m.LocalReadBlocks.Inc()
			if m.cfg.ReadBlockWait < 0 {
				return nil, &ReadBlockedError{LId: lid, RetryAfter: readBlockHint}
			}
			deadline = time.Now().Add(m.cfg.ReadBlockWait)
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, &ReadBlockedError{LId: lid, RetryAfter: readBlockHint}
		}
		timer := time.NewTimer(remain)
		select {
		case <-ch:
			timer.Stop()
		case <-timer.C:
		}
	}
}

// Scan implements MaintainerAPI. It serves only this maintainer's stored
// records (including follower copies); the client library merges scans
// across maintainers, deduplicates by LId, and applies head-of-log bounds.
func (m *Maintainer) Scan(rule core.Rule) ([]*core.Record, error) {
	m.ScanCalls.Inc()
	var out []*core.Record
	err := m.store.Scan(rule.MinLId, rule.EffectiveMaxLId(), func(r *core.Record) bool {
		if rule.Match(r) {
			out = append(out, r)
			// For ascending scans the limit can stop the scan
			// early; descending ("most recent") needs the full
			// window before trimming.
			if !rule.MostRecent && rule.Limit > 0 && len(out) == rule.Limit {
				return false
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if rule.MostRecent {
		for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
			out[i], out[j] = out[j], out[i]
		}
		if rule.Limit > 0 && len(out) > rule.Limit {
			out = out[:rule.Limit]
		}
	}
	return out, nil
}

func (m *Maintainer) currentHead() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Head(m.nextVec)
}

// Head implements MaintainerAPI.
func (m *Maintainer) Head() (uint64, error) { return m.currentHead(), nil }

// NextUnfilled implements MaintainerAPI.
func (m *Maintainer) NextUnfilled() (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.nextVec[m.cfg.Index], nil
}

// Gossip implements MaintainerAPI: absorb a peer's next-unfilled value and
// return our own (§5.4's fixed-size gossip).
func (m *Maintainer) Gossip(from int, next uint64) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if from < 0 || from >= len(m.nextVec) {
		return 0, fmt.Errorf("flstore: gossip from unknown maintainer %d", from)
	}
	if next > m.nextVec[from] {
		m.nextVec[from] = next
		m.notifyProgressLocked()
	}
	return m.nextVec[m.cfg.Index], nil
}

// GossipVec merges a peer's whole next-unfilled vector element-wise and
// returns a copy of ours — the replication-aware gossip: a follower (or
// acting primary) advances a dead owner's entry from its replicated
// frontier, and the vector exchange spreads that progress so the head of
// the log keeps moving without the owner. The message stays fixed-size
// (N LIds), preserving §5.4's throughput-independence.
func (m *Maintainer) GossipVec(vec []uint64) ([]uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	changed := false
	for j, v := range vec {
		if j < len(m.nextVec) && v > m.nextVec[j] {
			m.nextVec[j] = v
			changed = true
		}
	}
	// Fold hosted frontiers in before replying so followers advertise
	// replicated progress for ranges whose owner may be dead.
	for rangeIdx, st := range m.hosted {
		m.advanceNextLocked(rangeIdx, st)
	}
	if changed {
		m.notifyProgressLocked()
	}
	out := make([]uint64, len(m.nextVec))
	copy(out, m.nextVec)
	return out, nil
}

// GossipVecs is GossipVec extended with the durable-watermark vector: a
// second fixed-size (N LIds) vector whose entry j is the highest LId of
// range j known fsynced on this member's quorum view. Both vectors merge
// element-wise max; both replies fold in local hosted progress first. The
// durable vector is monotone and advisory — it never gates appends, it
// tells readers and operators how far behind the fsync horizon trails the
// assignment frontier.
func (m *Maintainer) GossipVecs(next, dur []uint64) ([]uint64, []uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	changed := false
	for j, v := range next {
		if j < len(m.nextVec) && v > m.nextVec[j] {
			m.nextVec[j] = v
			changed = true
		}
	}
	for j, v := range dur {
		if j < len(m.durVec) && v > m.durVec[j] {
			m.durVec[j] = v
		}
	}
	for rangeIdx, st := range m.hosted {
		m.advanceNextLocked(rangeIdx, st)
		if m.storeDurable {
			m.advanceDurableLocked(rangeIdx, st)
		}
	}
	if changed {
		m.notifyProgressLocked()
	}
	outNext := make([]uint64, len(m.nextVec))
	copy(outNext, m.nextVec)
	outDur := make([]uint64, len(m.durVec))
	copy(outDur, m.durVec)
	return outNext, outDur, nil
}

// NextVec returns a copy of the maintainer's next-unfilled vector.
func (m *Maintainer) NextVec() []uint64 {
	out, _ := m.GossipVec(nil)
	return out
}

// PendingAssigned returns how many out-of-order records are buffered
// across hosted ranges (test/ops introspection).
func (m *Maintainer) PendingAssigned() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, st := range m.hosted {
		n += len(st.pending)
	}
	return n
}

// OrderBuffered returns how many explicit-order records are parked.
func (m *Maintainer) OrderBuffered() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.orderBuf.size
}

// Store exposes the underlying store (used by senders and tests).
func (m *Maintainer) Store() storage.Store { return m.store }

// orderBatch is an AppendAfter batch waiting for its LId lower bound.
type orderBatch struct {
	minLId uint64
	recs   []*core.Record
}

// orderHeap is a min-heap of orderBatches by minLId.
type orderHeap struct {
	batches []orderBatch
	size    int
}

func (h orderHeap) Len() int            { return len(h.batches) }
func (h orderHeap) Less(i, j int) bool  { return h.batches[i].minLId < h.batches[j].minLId }
func (h orderHeap) Swap(i, j int)       { h.batches[i], h.batches[j] = h.batches[j], h.batches[i] }
func (h *orderHeap) Push(x interface{}) { h.batches = append(h.batches, x.(orderBatch)) }
func (h *orderHeap) Pop() interface{} {
	old := h.batches
	n := len(old)
	x := old[n-1]
	h.batches = old[:n-1]
	return x
}
