package flstore

import (
	"container/heap"
	"errors"
	"fmt"
	"hash/fnv"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/ratelimit"
	"repro/internal/storage"
)

// ErrOverloaded is returned when a maintainer's capacity limiter rejects an
// append; open-loop workload generators count these as dropped offered load
// (the region past the saturation point in Figure 7).
var ErrOverloaded = errors.New("flstore: maintainer overloaded")

// ErrWrongMaintainer is returned when an operation names an LId owned by a
// different maintainer; the client library routes by Placement, so seeing
// this indicates a stale configuration.
var ErrWrongMaintainer = errors.New("flstore: LId not owned by this maintainer")

// ErrOrderBacklog is returned when the explicit-order buffer (§5.4) would
// exceed its configured bound.
var ErrOrderBacklog = errors.New("flstore: explicit-order buffer full")

// MaintainerConfig configures one log maintainer.
type MaintainerConfig struct {
	// Index is this maintainer's position in the placement (0-based).
	Index     int
	Placement Placement

	// Store persists the records; NewMemStore is used when nil.
	Store storage.Store

	// Limiter models the machine's append capacity; nil = unlimited.
	Limiter *ratelimit.Limiter
	// RejectPenalty is the token cost of turning away one record when
	// saturated (models wasted ingress work; see ratelimit.Penalize).
	RejectPenalty float64

	// Indexers receive tag postings for stored records. May be nil.
	Indexers []IndexerAPI

	// EnforceHead makes Read fail with core.ErrPastHead for positions
	// above the gossiped head of the log — the §5.4 requirement that a
	// record at position i is only readable once no gap exists below i.
	EnforceHead bool

	// MaxOrderBuffer bounds the records parked by AppendAfter; 0 uses a
	// default of 4096.
	MaxOrderBuffer int
}

// Maintainer is one FLStore log maintainer (§5.2): it owns the deterministic
// round-robin LId ranges of its index, assigns positions to records after
// they arrive, persists them, answers reads, and gossips its progress so
// every maintainer can compute the head of the log.
type Maintainer struct {
	cfg   MaintainerConfig
	store storage.Store

	mu sync.Mutex
	// filled is the number of owned slots filled so far; the maintainer
	// fills its slots densely in order, so the next LId it will assign
	// or accept is LIdOfSlot(Index, filled).
	filled uint64
	// nextVec[j] is the latest gossiped next-unfilled LId of maintainer
	// j (nextVec[Index] is maintained locally).
	nextVec []uint64
	// pending holds AppendAssigned records that arrived ahead of the
	// dense frontier, keyed by slot.
	pending map[uint64][]*core.Record
	// orderBuf parks AppendAfter batches whose minimum-LId bound is not
	// yet satisfiable.
	orderBuf orderHeap

	// Appended counts records durably stored (exported for experiment
	// instrumentation).
	Appended metrics.Counter
	// Rejected counts records turned away by the capacity limiter.
	Rejected metrics.Counter

	// appendLatency/readLatency are set by EnableMetrics (nil until then;
	// the serving paths skip observation when unset). EnableMetrics must
	// run before the maintainer serves traffic.
	appendLatency *metrics.BucketHistogram
	readLatency   *metrics.BucketHistogram
}

// EnableMetrics registers this maintainer's serving-path instrumentation
// with reg: append/read latency histograms, append/rejection counters, the
// explicit-order and out-of-order buffer depths, and the head-of-log and
// next-LId gauges. Every series carries maintainer=<index> plus any extra
// labels (deployments embedding several placements add e.g. dc=<id>).
// Call before the maintainer starts serving.
func (m *Maintainer) EnableMetrics(reg *metrics.Registry, extra ...metrics.Label) {
	lbls := append([]metrics.Label{metrics.L("maintainer", strconv.Itoa(m.cfg.Index))}, extra...)
	m.appendLatency = reg.Histogram("flstore_append_seconds", metrics.LatencyBuckets, lbls...)
	m.readLatency = reg.Histogram("flstore_read_seconds", metrics.LatencyBuckets, lbls...)
	reg.CounterFunc("flstore_appends_total", func() float64 { return float64(m.Appended.Value()) }, lbls...)
	reg.CounterFunc("flstore_rejected_total", func() float64 { return float64(m.Rejected.Value()) }, lbls...)
	reg.GaugeFunc("flstore_order_buffer_records", func() float64 { return float64(m.OrderBuffered()) }, lbls...)
	reg.GaugeFunc("flstore_pending_assigned_slots", func() float64 { return float64(m.PendingAssigned()) }, lbls...)
	reg.GaugeFunc("flstore_head_lid", func() float64 { return float64(m.currentHead()) }, lbls...)
	reg.GaugeFunc("flstore_next_lid", func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return float64(m.nextVec[m.cfg.Index])
	}, lbls...)
	reg.GaugeFunc("flstore_stored_records", func() float64 { return float64(m.store.Len()) }, lbls...)
}

// NewMaintainer returns a ready maintainer.
func NewMaintainer(cfg MaintainerConfig) (*Maintainer, error) {
	if err := cfg.Placement.Validate(); err != nil {
		return nil, err
	}
	if cfg.Index < 0 || cfg.Index >= cfg.Placement.NumMaintainers {
		return nil, fmt.Errorf("flstore: maintainer index %d out of range [0,%d)", cfg.Index, cfg.Placement.NumMaintainers)
	}
	if cfg.Store == nil {
		cfg.Store = storage.NewMemStore()
	}
	if cfg.MaxOrderBuffer == 0 {
		cfg.MaxOrderBuffer = 4096
	}
	m := &Maintainer{
		cfg:     cfg,
		store:   cfg.Store,
		nextVec: make([]uint64, cfg.Placement.NumMaintainers),
		pending: make(map[uint64][]*core.Record),
	}
	// Initialize every entry to the corresponding maintainer's first
	// owned LId so Head() is 0 until real gossip arrives.
	for j := range m.nextVec {
		m.nextVec[j] = cfg.Placement.LIdOfSlot(j, 0)
	}
	// Recover the dense frontier from a pre-populated store (restart).
	if max := cfg.Store.MaxLId(); max > 0 {
		m.filled = cfg.Placement.SlotOf(max) + 1
		m.nextVec[cfg.Index] = cfg.Placement.LIdOfSlot(cfg.Index, m.filled)
	}
	return m, nil
}

// Index returns the maintainer's placement index.
func (m *Maintainer) Index() int { return m.cfg.Index }

// admit applies the capacity limiter to n records.
func (m *Maintainer) admit(n int) error {
	if m.cfg.Limiter.Allow(n) {
		return nil
	}
	m.cfg.Limiter.Penalize(m.cfg.RejectPenalty * float64(n))
	m.Rejected.Add(uint64(n))
	return ErrOverloaded
}

// Append implements MaintainerAPI: post-assignment of log positions.
func (m *Maintainer) Append(recs []*core.Record) ([]uint64, error) {
	if len(recs) == 0 {
		return nil, nil
	}
	if h := m.appendLatency; h != nil {
		defer h.ObserveSince(time.Now())
	}
	if err := m.admit(len(recs)); err != nil {
		return nil, err
	}
	m.mu.Lock()
	for i, r := range recs {
		if r.LId != 0 {
			m.mu.Unlock()
			return nil, fmt.Errorf("flstore: Append record %d already has LId %d", i, r.LId)
		}
	}
	// One range assignment for the whole batch: the maintainer fills its
	// slots densely, so the batch occupies slots [filled, filled+len).
	lids := make([]uint64, len(recs))
	m.cfg.Placement.LIdsOfSlots(m.cfg.Index, m.filled, lids)
	for i, r := range recs {
		r.LId = lids[i]
		if r.TOId == 0 {
			// Standalone FLStore deployments have a single total
			// order, so the LId doubles as the TOId. Chariots
			// deployments assign TOIds upstream and use
			// AppendAssigned instead.
			r.TOId = lids[i]
		}
	}
	m.filled += uint64(len(recs))
	m.nextVec[m.cfg.Index] = m.cfg.Placement.LIdOfSlot(m.cfg.Index, m.filled)
	released := m.releasableOrderBatchesLocked()
	m.mu.Unlock()

	if err := m.store.AppendBatch(recs); err != nil {
		return nil, err
	}
	m.Appended.Add(uint64(len(recs)))
	if err := m.postTags(recs); err != nil {
		return nil, err
	}
	for _, b := range released {
		if _, err := m.Append(b.recs); err != nil {
			return nil, fmt.Errorf("flstore: releasing ordered batch: %w", err)
		}
	}
	return lids, nil
}

// AppendAfter implements MaintainerAPI: explicit cross-maintainer ordering
// (§5.4). If the next LId this maintainer would assign already exceeds
// minLId the records are appended immediately; otherwise they are buffered
// and released once the maintainer's frontier passes the bound.
func (m *Maintainer) AppendAfter(minLId uint64, recs []*core.Record) ([]uint64, error) {
	if len(recs) == 0 {
		return nil, nil
	}
	m.mu.Lock()
	next := m.cfg.Placement.LIdOfSlot(m.cfg.Index, m.filled)
	if next > minLId {
		m.mu.Unlock()
		return m.Append(recs)
	}
	if m.orderBuf.size+len(recs) > m.cfg.MaxOrderBuffer {
		m.mu.Unlock()
		return nil, ErrOrderBacklog
	}
	heap.Push(&m.orderBuf, orderBatch{minLId: minLId, recs: recs})
	m.orderBuf.size += len(recs)
	m.mu.Unlock()
	return nil, nil // buffered; LIds assigned on release
}

// releasableOrderBatchesLocked pops buffered batches whose bound is now
// below the frontier. Caller holds mu.
func (m *Maintainer) releasableOrderBatchesLocked() []orderBatch {
	var out []orderBatch
	next := m.cfg.Placement.LIdOfSlot(m.cfg.Index, m.filled)
	for m.orderBuf.Len() > 0 && m.orderBuf.batches[0].minLId < next {
		b := heap.Pop(&m.orderBuf).(orderBatch)
		m.orderBuf.size -= len(b.recs)
		out = append(out, b)
	}
	return out
}

// AppendAssigned implements MaintainerAPI: ingestion of records whose LIds
// were assigned upstream by Chariots' queues (§6.2). Records ahead of the
// dense frontier are buffered so the frontier only advances contiguously,
// keeping the head-of-log computation exact.
func (m *Maintainer) AppendAssigned(recs []*core.Record) error {
	if len(recs) == 0 {
		return nil
	}
	if h := m.appendLatency; h != nil {
		defer h.ObserveSince(time.Now())
	}
	if err := m.admit(len(recs)); err != nil {
		return err
	}
	m.mu.Lock()
	for _, r := range recs {
		if r.LId == 0 {
			m.mu.Unlock()
			return errors.New("flstore: AppendAssigned record without LId")
		}
		if m.cfg.Placement.Owner(r.LId) != m.cfg.Index {
			m.mu.Unlock()
			return fmt.Errorf("%w: %d", ErrWrongMaintainer, r.LId)
		}
		slot := m.cfg.Placement.SlotOf(r.LId)
		if slot < m.filled {
			m.mu.Unlock()
			return fmt.Errorf("%w: %d", storage.ErrDuplicate, r.LId)
		}
		m.pending[slot] = append(m.pending[slot], r)
	}
	// Drain the contiguous prefix.
	var ready []*core.Record
	for {
		rs, ok := m.pending[m.filled]
		if !ok {
			break
		}
		if len(rs) > 1 {
			m.mu.Unlock()
			return fmt.Errorf("%w: slot %d assigned twice", storage.ErrDuplicate, m.filled)
		}
		ready = append(ready, rs[0])
		delete(m.pending, m.filled)
		m.filled++
	}
	m.nextVec[m.cfg.Index] = m.cfg.Placement.LIdOfSlot(m.cfg.Index, m.filled)
	m.mu.Unlock()

	if len(ready) == 0 {
		return nil
	}
	if err := m.store.AppendBatch(ready); err != nil {
		return err
	}
	m.Appended.Add(uint64(len(ready)))
	return m.postTags(ready)
}

// postTags streams this batch's tag postings to the owning indexers.
func (m *Maintainer) postTags(recs []*core.Record) error {
	if len(m.cfg.Indexers) == 0 {
		return nil
	}
	batches := make(map[int][]Posting)
	for _, r := range recs {
		for _, t := range r.Tags {
			idx := IndexerFor(t.Key, len(m.cfg.Indexers))
			batches[idx] = append(batches[idx], Posting{Key: t.Key, Value: t.Value, LId: r.LId})
		}
	}
	for idx, b := range batches {
		if err := m.cfg.Indexers[idx].Post(b); err != nil {
			return fmt.Errorf("flstore: posting to indexer %d: %w", idx, err)
		}
	}
	return nil
}

// IndexerFor returns the indexer partition owning a tag key.
func IndexerFor(key string, numIndexers int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(numIndexers))
}

// Read implements MaintainerAPI.
func (m *Maintainer) Read(lid uint64) (*core.Record, error) {
	if h := m.readLatency; h != nil {
		defer h.ObserveSince(time.Now())
	}
	if lid == 0 {
		return nil, core.ErrNoSuchRecord
	}
	if m.cfg.Placement.Owner(lid) != m.cfg.Index {
		return nil, fmt.Errorf("%w: %d", ErrWrongMaintainer, lid)
	}
	if m.cfg.EnforceHead {
		if head := m.currentHead(); lid > head {
			return nil, fmt.Errorf("%w: LId %d > head %d", core.ErrPastHead, lid, head)
		}
	}
	return m.store.Get(lid)
}

// Scan implements MaintainerAPI. It serves only this maintainer's stored
// records; the client library merges scans across maintainers and applies
// head-of-log bounds.
func (m *Maintainer) Scan(rule core.Rule) ([]*core.Record, error) {
	var out []*core.Record
	err := m.store.Scan(rule.MinLId, rule.EffectiveMaxLId(), func(r *core.Record) bool {
		if rule.Match(r) {
			out = append(out, r)
			// For ascending scans the limit can stop the scan
			// early; descending ("most recent") needs the full
			// window before trimming.
			if !rule.MostRecent && rule.Limit > 0 && len(out) == rule.Limit {
				return false
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if rule.MostRecent {
		for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
			out[i], out[j] = out[j], out[i]
		}
		if rule.Limit > 0 && len(out) > rule.Limit {
			out = out[:rule.Limit]
		}
	}
	return out, nil
}

func (m *Maintainer) currentHead() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Head(m.nextVec)
}

// Head implements MaintainerAPI.
func (m *Maintainer) Head() (uint64, error) { return m.currentHead(), nil }

// NextUnfilled implements MaintainerAPI.
func (m *Maintainer) NextUnfilled() (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.nextVec[m.cfg.Index], nil
}

// Gossip implements MaintainerAPI: absorb a peer's next-unfilled value and
// return our own (§5.4's fixed-size gossip).
func (m *Maintainer) Gossip(from int, next uint64) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if from < 0 || from >= len(m.nextVec) {
		return 0, fmt.Errorf("flstore: gossip from unknown maintainer %d", from)
	}
	if next > m.nextVec[from] {
		m.nextVec[from] = next
	}
	return m.nextVec[m.cfg.Index], nil
}

// PendingAssigned returns how many out-of-order assigned records are
// buffered (test/ops introspection).
func (m *Maintainer) PendingAssigned() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pending)
}

// OrderBuffered returns how many explicit-order records are parked.
func (m *Maintainer) OrderBuffered() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.orderBuf.size
}

// Store exposes the underlying store (used by senders and tests).
func (m *Maintainer) Store() storage.Store { return m.store }

// orderBatch is an AppendAfter batch waiting for its LId lower bound.
type orderBatch struct {
	minLId uint64
	recs   []*core.Record
}

// orderHeap is a min-heap of orderBatches by minLId.
type orderHeap struct {
	batches []orderBatch
	size    int
}

func (h orderHeap) Len() int            { return len(h.batches) }
func (h orderHeap) Less(i, j int) bool  { return h.batches[i].minLId < h.batches[j].minLId }
func (h orderHeap) Swap(i, j int)       { h.batches[i], h.batches[j] = h.batches[j], h.batches[i] }
func (h *orderHeap) Push(x interface{}) { h.batches = append(h.batches, x.(orderBatch)) }
func (h *orderHeap) Pop() interface{} {
	old := h.batches
	n := len(old)
	x := old[n-1]
	h.batches = old[:n-1]
	return x
}
