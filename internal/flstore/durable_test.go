package flstore

import (
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/storage"
)

// openDurableMaintainer builds a maintainer over a real segment store in
// dir (durability-on-return) with the given replication factor.
func openDurableMaintainer(t *testing.T, dir string, idx, n, r int) *Maintainer {
	t.Helper()
	st, err := storage.OpenSegmentStore(dir, storage.SegmentStoreOptions{Sync: storage.SyncEachBatch})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMaintainer(MaintainerConfig{
		Index:       idx,
		Placement:   Placement{NumMaintainers: n, BatchSize: 2},
		Replication: r,
		Store:       st,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestDurableWatermarkTracksAppends: on a durable store the watermark
// follows the frontier — every acknowledged append is fsynced before
// AppendBatch returns — and it survives restart on the same directory.
func TestDurableWatermarkTracksAppends(t *testing.T) {
	dir := t.TempDir()
	m := openDurableMaintainer(t, dir, 0, 3, 1)
	for i := 0; i < 5; i++ {
		if _, err := m.Append([]*core.Record{{Body: []byte("d")}}); err != nil {
			t.Fatal(err)
		}
	}
	front, err := m.RangeFrontier(0)
	if err != nil {
		t.Fatal(err)
	}
	wm, err := m.DurableWatermark(0)
	if err != nil {
		t.Fatal(err)
	}
	if wm != front {
		t.Fatalf("durable watermark %d != frontier %d on a durable store", wm, front)
	}
	if err := m.Store().Close(); err != nil {
		t.Fatal(err)
	}
	// Restart: the recovery scan read everything back off stable storage,
	// so the durable frontier resumes at the dense prefix.
	m2 := openDurableMaintainer(t, dir, 0, 3, 1)
	defer m2.Store().Close()
	wm2, err := m2.DurableWatermark(0)
	if err != nil {
		t.Fatal(err)
	}
	if wm2 != front {
		t.Fatalf("durable watermark after restart = %d, want %d", wm2, front)
	}
}

// TestDurableWatermarkVolatileStoreReportsZero: a MemStore-backed
// maintainer never advances (or advertises) a durable watermark.
func TestDurableWatermarkVolatileStoreReportsZero(t *testing.T) {
	m, err := NewMaintainer(MaintainerConfig{Index: 0, Placement: Placement{NumMaintainers: 3, BatchSize: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Append([]*core.Record{{Body: []byte("v")}}); err != nil {
		t.Fatal(err)
	}
	wm, err := m.DurableWatermark(0)
	if err != nil {
		t.Fatal(err)
	}
	if wm != 0 {
		t.Fatalf("volatile store reported durable watermark %d, want 0", wm)
	}
	if _, err := m.DurableWatermark(1); err == nil {
		t.Fatal("DurableWatermark for an unhosted range succeeded")
	}
}

// TestGossipVecsSpreadsDurability: the dual-vector gossip RPC carries each
// member's durable frontier to its peers, so every maintainer learns how
// far the others' fsync horizons reach — over the same wire path the
// next-unfilled gossip uses.
func TestGossipVecsSpreadsDurability(t *testing.T) {
	dir := t.TempDir()
	const n = 3
	ms := make([]*Maintainer, n)
	for i := 0; i < n; i++ {
		ms[i] = openDurableMaintainer(t, filepath.Join(dir, "m"+string(rune('0'+i))), i, n, 1)
		defer ms[i].Store().Close()
	}
	// Uneven progress: maintainer 0 appends 4, maintainer 2 appends 1.
	for i := 0; i < 4; i++ {
		if _, err := ms[0].Append([]*core.Record{{Body: []byte("a")}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ms[2].Append([]*core.Record{{Body: []byte("c")}}); err != nil {
		t.Fatal(err)
	}
	// Serve each maintainer over in-process RPC and gossip one round from
	// every node, as the Gossiper would.
	peers := make([]MaintainerAPI, n)
	for i := 0; i < n; i++ {
		srv := rpc.NewServer()
		ServeMaintainer(srv, ms[i])
		peers[i] = NewMaintainerClient(rpc.NewLocalClient(srv))
	}
	for i := 0; i < n; i++ {
		g := NewGossiper(ms[i], peers, 0)
		g.Round()
	}
	want0, _ := ms[0].DurableWatermark(0)
	want2, _ := ms[2].DurableWatermark(2)
	for i := 0; i < n; i++ {
		dv := ms[i].DurableVec()
		if dv[0] != want0 {
			t.Errorf("maintainer %d durVec[0] = %d, want %d", i, dv[0], want0)
		}
		if dv[2] != want2 {
			t.Errorf("maintainer %d durVec[2] = %d, want %d", i, dv[2], want2)
		}
	}
}

// TestReplicaAppendAdvancesDurableWatermark: a follower's durable
// watermark for a followed range advances as replica copies land on its
// own durable store — the per-member signal the quorum-durability status
// view aggregates.
func TestReplicaAppendAdvancesDurableWatermark(t *testing.T) {
	dir := t.TempDir()
	// Maintainer 1 follows range 0 (R=2 groups are {owner, owner+1}).
	m := openDurableMaintainer(t, filepath.Join(dir, "m1"), 1, 3, 2)
	defer m.Store().Close()
	// Copies arrive out of order: slot 1 first (parks), then slot 0
	// (drains both).
	p := Placement{NumMaintainers: 3, BatchSize: 2}
	lid0 := p.LIdOfSlot(0, 0)
	lid1 := p.LIdOfSlot(0, 1)
	if err := m.ReplicaAppend([]*core.Record{{LId: lid1, TOId: lid1, Body: []byte("b")}}); err != nil {
		t.Fatal(err)
	}
	if wm, _ := m.DurableWatermark(0); wm != lid0 {
		t.Fatalf("parked copy advanced durable watermark to %d, want %d", wm, lid0)
	}
	if err := m.ReplicaAppend([]*core.Record{{LId: lid0, TOId: lid0, Body: []byte("a")}}); err != nil {
		t.Fatal(err)
	}
	if wm, _ := m.DurableWatermark(0); wm != p.LIdOfSlot(0, 2) {
		t.Fatalf("durable watermark = %d after both copies, want %d", wm, p.LIdOfSlot(0, 2))
	}
}
