package flstore

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/storage"
)

// The allocation benchmarks measure the full append hot path — client
// adapter encode → RPC dispatch → maintainer → segment-store disk write —
// in allocations per batch rather than nanoseconds: the Fig. 7 scaling
// claim depends on the pipeline moving batches with O(1) buffer management,
// and a time-based bench on a laptop disk would mostly measure the kernel.
//
// The stack uses rpc.LocalClient (identical dispatch and codec work to the
// TCP path, no kernel sockets) so allocation counts are deterministic, and
// a real SegmentStore so the disk encode path is included.

const (
	hotPathBatchSize = 64
	hotPathBodyBytes = 128
)

// newHotPathStack builds client→rpc→maintainer→disk with a real segment
// store in a temp dir. Sync is left at SyncNever: fsync cost is time, not
// allocations, and tier-1 runs on shared machines.
func newHotPathStack(tb testing.TB) *Client {
	tb.Helper()
	st, err := storage.OpenSegmentStore(tb.TempDir(), storage.SegmentStoreOptions{Sync: storage.SyncNever})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { st.Close() })
	m, err := NewMaintainer(MaintainerConfig{
		Index:     0,
		Placement: Placement{NumMaintainers: 1, BatchSize: 1000},
		Store:     st,
	})
	if err != nil {
		tb.Fatal(err)
	}
	srv := rpc.NewServer()
	ServeMaintainer(srv, m)
	cli := NewMaintainerClient(rpc.NewLocalClient(srv))
	c, err := NewDirectClient(Placement{NumMaintainers: 1, BatchSize: 1000}, []MaintainerAPI{cli}, nil)
	if err != nil {
		tb.Fatal(err)
	}
	return c
}

// hotPathBatch builds one reusable batch of records shaped like log
// traffic: a payload body plus a couple of indexable tags.
func hotPathBatch() []*core.Record {
	recs := make([]*core.Record, hotPathBatchSize)
	body := make([]byte, hotPathBodyBytes)
	for i := range body {
		body[i] = byte(i)
	}
	for i := range recs {
		recs[i] = &core.Record{
			Tags: []core.Tag{
				{Key: "stream", Value: "orders"},
				{Key: "shard", Value: fmt.Sprintf("s%02d", i%8)},
			},
			Body: body,
		}
	}
	return recs
}

// resetBatch makes the records appendable again (the maintainer
// post-assigns LId/TOId and refuses records that already carry them).
func resetBatch(recs []*core.Record) {
	for _, r := range recs {
		r.LId, r.TOId = 0, 0
	}
}

// BenchmarkAppendHotPathAllocs appends one 64-record batch per iteration
// through the full client→maintainer→disk path. Watch allocs/op and B/op.
func BenchmarkAppendHotPathAllocs(b *testing.B) {
	c := newHotPathStack(b)
	recs := hotPathBatch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resetBatch(recs)
		if _, err := c.AppendBatch(recs); err != nil {
			b.Fatal(err)
		}
	}
}

// TestAppendHotPathAllocBudget is the tier-1 regression gate for the
// batch-native hot path: appending a 64-record batch end to end must stay
// within an allocation budget. The path measures ~78 allocs/op (down from
// 552 before batch-granular buffer management); the bound leaves ~2x
// headroom for toolchain drift while still failing loudly if a
// per-record allocation sneaks back in (which would add ≥64 at once).
func TestAppendHotPathAllocBudget(t *testing.T) {
	const budget = 160
	c := newHotPathStack(t)
	recs := hotPathBatch()
	// Warm the pools and grow-only scratch buffers first.
	for i := 0; i < 5; i++ {
		resetBatch(recs)
		if _, err := c.AppendBatch(recs); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(50, func() {
		resetBatch(recs)
		if _, err := c.AppendBatch(recs); err != nil {
			t.Fatal(err)
		}
	})
	if avg > budget {
		t.Fatalf("append hot path: %.1f allocs per %d-record batch, budget %d", avg, hotPathBatchSize, budget)
	}
}
