package flstore

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/replica"
	"repro/internal/rpc"
)

// follower returns maintainer 1 of a 3-maintainer/R=3 deployment: it owns
// range 1 and follows ranges 0 and 2, so reads of range 0 exercise the
// non-owner invalidation paths.
func follower(t *testing.T, readBlockWait time.Duration) *Maintainer {
	t.Helper()
	m, err := NewMaintainer(MaintainerConfig{
		Index:         1,
		Placement:     Placement{NumMaintainers: 3, BatchSize: 2},
		Replication:   3,
		ReadBlockWait: readBlockWait,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestInvalidateBlocksReads pins the watermark invariant at one member:
// a position is absent until announced, invalid (retryable) once announced,
// and locally served the moment its payload resolves.
func TestInvalidateBlocksReads(t *testing.T) {
	m := follower(t, -1) // fail blocked reads immediately; no parking
	// Unannounced: the legacy absent semantics.
	if _, err := m.Read(1); !errors.Is(err, core.ErrNoSuchRecord) {
		t.Fatalf("unannounced read = %v, want ErrNoSuchRecord", err)
	}
	// Announce range 0's positions 1..2 (bound 3, exclusive).
	if err := m.Invalidate(0, 3); err != nil {
		t.Fatal(err)
	}
	_, err := m.Read(1)
	if !errors.Is(err, ErrReadBlocked) {
		t.Fatalf("announced read = %v, want ErrReadBlocked", err)
	}
	if !IsRetryable(err) || RetryAfter(err) <= 0 {
		t.Errorf("blocked read not retryable with hint: retryable=%v hint=%v", IsRetryable(err), RetryAfter(err))
	}
	if m.LocalReadBlocks.Value() != 1 {
		t.Errorf("LocalReadBlocks = %d, want 1", m.LocalReadBlocks.Value())
	}
	// A different range is untouched by the announcement.
	if _, err := m.Read(3); !errors.Is(err, core.ErrNoSuchRecord) {
		t.Errorf("other-range read = %v, want ErrNoSuchRecord", err)
	}
	// Payload lands: the read is served locally.
	if err := m.ReplicaAppend([]*core.Record{{LId: 1, Body: []byte("a")}}); err != nil {
		t.Fatal(err)
	}
	rec, err := m.Read(1)
	if err != nil || string(rec.Body) != "a" {
		t.Fatalf("resolved read = %v, %v; want body %q", rec, err, "a")
	}
	if m.LocalReadHits.Value() == 0 {
		t.Error("LocalReadHits did not advance on a locally served read")
	}
	// Watermark: position 1 resolved, position 2 still announced-only.
	wm, ann, err := m.ValidityWatermark(0)
	if err != nil {
		t.Fatal(err)
	}
	if wm != 2 || ann != 7 {
		t.Errorf("watermark/announced = %d/%d, want 2/7 (bound 3 normalizes to frontier 7)", wm, ann)
	}
	m.mu.Lock()
	backlog := m.invalBacklogLocked(0)
	m.mu.Unlock()
	if backlog != 1 {
		t.Errorf("invalidation backlog = %d, want 1", backlog)
	}
	// Idempotent and monotone: re-announcing or announcing a stale bound
	// changes nothing.
	if err := m.Invalidate(0, 3); err != nil {
		t.Fatal(err)
	}
	if err := m.Invalidate(0, 2); err != nil {
		t.Fatal(err)
	}
	if _, ann2, _ := m.ValidityWatermark(0); ann2 != ann {
		t.Errorf("announced bound moved on stale re-announcement: %d -> %d", ann, ann2)
	}
}

// TestSlotsBelow pins the slot-space normalization of announced bounds,
// including chunk and round boundaries of the round-robin placement.
func TestSlotsBelow(t *testing.T) {
	m := follower(t, 0)
	cases := []struct {
		rangeIdx int
		bound    uint64
		want     uint64
	}{
		{0, 0, 0}, {0, 1, 0}, // empty bounds
		{0, 2, 1},            // mid-chunk
		{0, 3, 2},            // exact chunk end
		{0, 5, 2},            // bound inside another range's chunk
		{0, 7, 2},            // up to the next round's first own position
		{0, 8, 3},            // into the next round
		{0, 9, 4},            // exact end of round-1 chunk
		{1, 3, 0},            // before this range's first chunk
		{1, 5, 2},            // exact own chunk end
		{2, 13, 4},           // two full rounds for the last range
	}
	for _, c := range cases {
		if got := m.slotsBelow(c.rangeIdx, c.bound); got != c.want {
			t.Errorf("slotsBelow(range %d, bound %d) = %d, want %d", c.rangeIdx, c.bound, got, c.want)
		}
	}
}

// TestBlockedReadWakesOnArrival: a read parked on an invalidated position
// is released by the payload's arrival, not by the timeout.
func TestBlockedReadWakesOnArrival(t *testing.T) {
	m := follower(t, 2*time.Second)
	if err := m.Invalidate(0, 2); err != nil {
		t.Fatal(err)
	}
	type res struct {
		rec *core.Record
		err error
	}
	done := make(chan res, 1)
	go func() {
		rec, err := m.Read(1)
		done <- res{rec, err}
	}()
	time.Sleep(5 * time.Millisecond) // let the read park
	if err := m.ReplicaAppend([]*core.Record{{LId: 1, Body: []byte("late")}}); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-done:
		if r.err != nil || string(r.rec.Body) != "late" {
			t.Fatalf("parked read = %v, %v; want body %q", r.rec, r.err, "late")
		}
	case <-time.After(time.Second):
		t.Fatal("parked read did not wake on payload arrival")
	}
	if m.LocalReadBlocks.Value() != 1 {
		t.Errorf("LocalReadBlocks = %d, want 1", m.LocalReadBlocks.Value())
	}
}

// TestReadBlockedOverRPC: the blocked-read rejection survives the wire —
// the remote error maps back to a typed ReadBlockedError with its pacing
// hint, and the replica-session retry classification still applies. Also
// pins the under-acked append taxonomy satellite: a replica.AckError is
// retryable with a hint through the same flstore helpers.
func TestReadBlockedOverRPC(t *testing.T) {
	m := follower(t, -1)
	if err := m.Invalidate(0, 2); err != nil {
		t.Fatal(err)
	}
	srv := rpc.NewServer()
	ServeMaintainer(srv, m)
	mc := NewMaintainerClient(rpc.NewLocalClient(srv))
	_, err := mc.Read(1)
	if !errors.Is(err, ErrReadBlocked) {
		t.Fatalf("remote blocked read = %v, want ErrReadBlocked", err)
	}
	if !IsRetryable(err) {
		t.Error("remote blocked read not retryable")
	}
	if RetryAfter(err) != readBlockHint {
		t.Errorf("remote RetryAfter = %v, want %v", RetryAfter(err), readBlockHint)
	}
	// Remote invalidation surface: the client wrapper reaches Invalidate
	// and ValidityWatermark through the fast-path envelope. The session
	// discovers the capability exactly this way — by type assertion.
	inv, ok := mc.(replica.Invalidator)
	if !ok {
		t.Fatal("maintainer client does not implement replica.Invalidator")
	}
	if err := inv.Invalidate(0, 3); err != nil {
		t.Fatal(err)
	}
	wr, ok := mc.(replica.WatermarkReporter)
	if !ok {
		t.Fatal("maintainer client does not implement replica.WatermarkReporter")
	}
	wm, ann, err := wr.ValidityWatermark(0)
	if err != nil {
		t.Fatal(err)
	}
	if wm != 1 || ann != 7 {
		t.Errorf("remote watermark/announced = %d/%d, want 1/7", wm, ann)
	}
	ackErr := &replica.AckError{Acked: 1, Required: 2, RetryAfter: 2 * time.Millisecond}
	if !IsRetryable(ackErr) || RetryAfter(ackErr) != 2*time.Millisecond {
		t.Errorf("AckError classification: retryable=%v hint=%v, want true/2ms", IsRetryable(ackErr), RetryAfter(ackErr))
	}
}
