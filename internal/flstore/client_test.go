package flstore

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
)

// buildDirect wires a direct (in-process) deployment for client unit
// tests: n maintainers, optional indexers, no gossip (tests drive
// Gossip/Round explicitly when heads matter).
func buildDirect(t *testing.T, n, indexers int, batch uint64) (*Client, []*Maintainer) {
	t.Helper()
	p := Placement{NumMaintainers: n, BatchSize: batch}
	var ixAPIs []IndexerAPI
	for i := 0; i < indexers; i++ {
		ixAPIs = append(ixAPIs, NewIndexer(nil))
	}
	var ms []*Maintainer
	var apis []MaintainerAPI
	for i := 0; i < n; i++ {
		m, err := NewMaintainer(MaintainerConfig{Index: i, Placement: p, Indexers: ixAPIs})
		if err != nil {
			t.Fatal(err)
		}
		ms = append(ms, m)
		apis = append(apis, m)
	}
	c, err := NewDirectClient(p, apis, ixAPIs)
	if err != nil {
		t.Fatal(err)
	}
	return c, ms
}

func TestDirectClientValidation(t *testing.T) {
	if _, err := NewDirectClient(Placement{}, nil, nil); err == nil {
		t.Error("invalid placement accepted")
	}
	p := Placement{NumMaintainers: 2, BatchSize: 1}
	if _, err := NewDirectClient(p, make([]MaintainerAPI, 1), nil); err == nil {
		t.Error("maintainer count mismatch accepted")
	}
}

func TestClientAppendBatchPreservesOrder(t *testing.T) {
	c, _ := buildDirect(t, 2, 0, 100)
	recs := []*core.Record{
		{Body: []byte("first")}, {Body: []byte("second")}, {Body: []byte("third")},
	}
	lids, err := c.AppendBatch(recs)
	if err != nil {
		t.Fatal(err)
	}
	// Same maintainer, so LIds strictly ascend in batch order (§5.4's
	// same-maintainer explicit ordering).
	for i := 1; i < len(lids); i++ {
		if lids[i] <= lids[i-1] {
			t.Fatalf("batch LIds out of order: %v", lids)
		}
	}
	// The records themselves carry the assigned LIds.
	for i, r := range recs {
		if r.LId != lids[i] {
			t.Errorf("record %d LId %d != returned %d", i, r.LId, lids[i])
		}
	}
}

func TestClientAppendAfterValidation(t *testing.T) {
	c, _ := buildDirect(t, 2, 0, 10)
	if _, err := c.AppendAfter(5, 1, []*core.Record{{Body: []byte("x")}}); err == nil {
		t.Error("out-of-range maintainer accepted")
	}
	if _, err := c.AppendAfter(-1, 1, nil); err == nil {
		t.Error("negative maintainer accepted")
	}
}

func TestClientReadScanMostRecent(t *testing.T) {
	c, _ := buildDirect(t, 2, 0, 3)
	for i := 0; i < 12; i++ {
		if _, err := c.Append([]byte(fmt.Sprintf("r%d", i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	head, _ := c.HeadExact()
	recs, err := c.Read(core.Rule{MostRecent: true, Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].LId != head {
		t.Errorf("most recent LId = %d, want head %d", recs[0].LId, head)
	}
	if recs[0].LId < recs[1].LId || recs[1].LId < recs[2].LId {
		t.Error("most-recent scan not descending")
	}
}

func TestClientReadEmptyLog(t *testing.T) {
	c, _ := buildDirect(t, 2, 1, 3)
	recs, err := c.Read(core.Rule{})
	if err != nil || len(recs) != 0 {
		t.Errorf("empty scan = %v, %v", recs, err)
	}
	recs, err = c.Read(core.Rule{TagKey: "anything"})
	if err != nil || len(recs) != 0 {
		t.Errorf("empty tag read = %v, %v", recs, err)
	}
}

func TestClientReadByTagWithoutIndexersFallsBackToScan(t *testing.T) {
	c, _ := buildDirect(t, 1, 0, 100)
	c.Append([]byte("tagged"), []core.Tag{{Key: "k", Value: "v"}})
	c.Append([]byte("untagged"), nil)
	recs, err := c.Read(core.Rule{TagKey: "k"})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0].Body) != "tagged" {
		t.Errorf("scan-fallback tag read = %+v", recs)
	}
}

func TestClientReadLIdRoutesAcrossMaintainers(t *testing.T) {
	c, ms := buildDirect(t, 3, 0, 2)
	var lids []uint64
	for i := 0; i < 12; i++ {
		lid, err := c.Append([]byte(fmt.Sprintf("r%d", i)), nil)
		if err != nil {
			t.Fatal(err)
		}
		lids = append(lids, lid)
	}
	head, _ := c.HeadExact()
	for i, lid := range lids {
		if lid > head {
			continue
		}
		rec, err := c.ReadLId(lid)
		if err != nil {
			t.Fatalf("ReadLId(%d): %v", lid, err)
		}
		if want := fmt.Sprintf("r%d", i); string(rec.Body) != want {
			t.Errorf("body = %q, want %q", rec.Body, want)
		}
	}
	// Every maintainer served some appends (round-robin).
	for i, m := range ms {
		if m.Store().Len() == 0 {
			t.Errorf("maintainer %d got no appends", i)
		}
	}
}

func TestClientReadLIdUnknownEpoch(t *testing.T) {
	c, _ := buildDirect(t, 2, 0, 5)
	if _, err := c.ReadLId(0); err == nil {
		t.Error("ReadLId(0) accepted")
	}
	// An LId owned by a maintainer index beyond the session's set.
	c.epochs = []Epoch{{FirstLId: 1, Placement: Placement{NumMaintainers: 4, BatchSize: 5}}}
	if _, err := c.ReadLId(11); err == nil {
		t.Error("owner outside session accepted")
	}
}

func TestClientHeadVsHeadExact(t *testing.T) {
	c, ms := buildDirect(t, 2, 0, 5)
	for i := 0; i < 10; i++ {
		c.Append([]byte("x"), nil)
	}
	exact, err := c.HeadExact()
	if err != nil {
		t.Fatal(err)
	}
	if exact != 10 {
		t.Fatalf("HeadExact = %d, want 10", exact)
	}
	// Without gossip, a maintainer's own Head is a lower bound.
	h, err := c.Head()
	if err != nil {
		t.Fatal(err)
	}
	if h > exact {
		t.Errorf("gossiped head %d exceeds exact %d", h, exact)
	}
	// After a gossip exchange, both agree.
	ms[0].Gossip(1, mustNext(t, ms[1]))
	ms[1].Gossip(0, mustNext(t, ms[0]))
	h0, _ := ms[0].Head()
	h1, _ := ms[1].Head()
	if h0 != exact || h1 != exact {
		t.Errorf("post-gossip heads %d/%d, want %d", h0, h1, exact)
	}
}

func mustNext(t *testing.T, m *Maintainer) uint64 {
	t.Helper()
	n, err := m.NextUnfilled()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestGossiperRoundDirect(t *testing.T) {
	_, ms := buildDirect(t, 3, 0, 4)
	for i := 0; i < 12; i++ {
		ms[i%3].Append([]*core.Record{{Body: []byte("x")}})
	}
	apis := make([]MaintainerAPI, 3)
	for i, m := range ms {
		apis[i] = m
	}
	g := NewGossiper(ms[0], apis, 0)
	g.Round() // one synchronous exchange
	h, _ := ms[0].Head()
	if h != 12 {
		t.Errorf("head after one round = %d, want 12", h)
	}
	// Start/Stop lifecycle.
	g.Start()
	g.Start() // idempotent
	g.Stop()
	g.Stop() // idempotent
	// A gossiper that was never started stops cleanly.
	g2 := NewGossiper(ms[1], apis, 0)
	g2.Stop()
}

func TestClientConcurrentTagAndScanReads(t *testing.T) {
	c, _ := buildDirect(t, 2, 2, 4)
	for i := 0; i < 40; i++ {
		c.Append([]byte(fmt.Sprintf("%d", i)), []core.Tag{{Key: "parity", Value: fmt.Sprint(i % 2)}})
	}
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			var err error
			if g%2 == 0 {
				_, err = c.Read(core.Rule{TagKey: "parity", TagCmp: core.CmpEQ, TagValue: "0", Limit: 5, MostRecent: true})
			} else {
				_, err = c.Read(core.Rule{MinLId: 1, MaxLId: 20})
			}
			errs <- err
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-errs; err != nil && !errors.Is(err, core.ErrPastHead) {
			t.Error(err)
		}
	}
}
