package flstore

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/replica"
	"repro/internal/trace"
)

// tailChunk bounds one scatter-gather window a tailing reader requests per
// wake, so a reader far behind the head catches up in bounded batches.
const tailChunk = 4096

// clientTailWait bounds one long-poll round issued by Tail/WaitHead. It is
// shorter than the server's default so context cancellation and failover
// re-routing are observed promptly; a parked reader simply re-parks.
const clientTailWait = 25 * time.Millisecond

// errNoRangeRead reports a maintainer handle that doesn't implement
// RangeReadAPI despite the capability check — only possible after a
// mid-flight SetMaintainer swap to a legacy handle.
var errNoRangeRead = errors.New("flstore: maintainer does not support range reads")

// rangeOK reports whether the batched read path is usable for this call:
// every wired maintainer exposes RangeReadAPI, the caller didn't force the
// legacy path, and the log has a single placement epoch (the scatter-gather
// merge routes by one placement's math; elastic histories fall back).
func (c *Client) rangeOK() bool {
	return c.rangeCapable && !c.DisableRangeRead && len(c.epochs) <= 1
}

// updateRangeCapable recomputes whether every maintainer handle implements
// the batched read surface. Called at session init and on SetMaintainer.
func (c *Client) updateRangeCapable() {
	for _, m := range c.maintainers {
		if _, ok := m.(RangeReadAPI); !ok {
			c.rangeCapable = false
			return
		}
	}
	c.rangeCapable = len(c.maintainers) > 0
}

// ReadRange returns the records at positions [lo, hi] in LId order, with hi
// clamped to the head of the log (hi 0 means "up to the head"). One
// range-read RPC goes to each owning maintainer concurrently and the
// responses merge into the result by placement arithmetic alone — position
// lid lands at index lid−lo — with no sort and no per-record routing. §5.4
// guarantees positions at or below the head are gap-free, so the merged
// window has no holes once every owner has answered.
func (c *Client) ReadRange(lo, hi uint64) ([]*core.Record, error) {
	return c.ReadRangeCtx(context.Background(), lo, hi)
}

// ReadRangeCtx is ReadRange with cancellation: ctx aborts the per-owner
// continuation loops and the single-record safety net (including its
// past-head backoff) between round trips, returning ctx.Err().
func (c *Client) ReadRangeCtx(ctx context.Context, lo, hi uint64) ([]*core.Record, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if lo == 0 {
		lo = 1
	}
	// The root span covers head resolution plus the scatter-gather fan-out;
	// the child context rides each RangeQuery so maintainer-side spans
	// parent to it.
	root, rtc := trace.BeginRoot(trace.New(), "client.read")
	head, err := c.HeadExact()
	if err != nil {
		root.Finish(trace.Default(), "error", 0, 0)
		return nil, err
	}
	if hi == 0 || hi > head {
		hi = head
	}
	if hi < lo {
		root.Finish(trace.Default(), "", hi, 0)
		return nil, nil
	}
	recs, err := c.readRange(ctx, rtc, lo, hi)
	root.Finish(trace.Default(), trace.Outcome(err, "error"), hi, len(recs))
	return recs, err
}

// readRange is ReadRange after head clamping: hi must not exceed the head
// of the log.
func (c *Client) readRange(ctx context.Context, tc trace.Ctx, lo, hi uint64) ([]*core.Record, error) {
	out := make([]*core.Record, hi-lo+1)
	if c.rangeOK() {
		owners := c.ownersIn(lo, hi)
		if len(owners) == 1 {
			// Single-owner windows (small ranges, per-partition readers)
			// stay on the caller's goroutine.
			if err := c.rangeFromOwner(ctx, tc, owners[0], lo, hi, out); err != nil {
				return nil, err
			}
		} else {
			// One worker per extra owner; the first owner's share drains on
			// the caller's goroutine while the others run.
			var wg sync.WaitGroup
			errs := make([]error, len(owners)-1)
			for i, owner := range owners[1:] {
				wg.Add(1)
				go func(i, owner int) {
					defer wg.Done()
					errs[i] = c.rangeFromOwner(ctx, tc, owner, lo, hi, out)
				}(i, owner)
			}
			err := c.rangeFromOwner(ctx, tc, owners[0], lo, hi, out)
			wg.Wait()
			if err != nil {
				return nil, err
			}
			for _, err := range errs {
				if err != nil {
					return nil, err
				}
			}
		}
	} else if err := c.readRangeScan(lo, hi, out); err != nil {
		return nil, err
	}
	// Safety net: any position still missing (a lagging follower answered
	// for an evicted owner, or a legacy scan raced the head) is fetched
	// through the single-record path with its own failover and past-head
	// waiting. Positions ≤ head exist somewhere, so this terminates.
	for i, r := range out {
		if r == nil {
			rec, err := c.ReadLIdCtx(ctx, lo+uint64(i))
			if err != nil {
				return nil, err
			}
			out[i] = rec
		}
	}
	return out, nil
}

// ownersIn lists the maintainer indices owning at least one position in
// [lo, hi] under the current placement.
func (c *Client) ownersIn(lo, hi uint64) []int {
	p := c.placement
	n := uint64(p.NumMaintainers)
	first := (lo - 1) / p.BatchSize
	last := (hi - 1) / p.BatchSize
	if last-first+1 >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, 0, last-first+1)
	for chunk := first; chunk <= last; chunk++ {
		owner := int(chunk % n)
		dup := false
		for _, o := range out {
			if o == owner {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, owner)
		}
	}
	return out
}

// rangeFromOwner drains owner's share of [lo, hi] into out (position lid at
// out[lid-lo]), following CoveredHi continuations until the range is
// covered. Under replication each RPC fails over across the owning group; a
// response that makes no progress (a lagging follower serving an evicted
// owner's range) stops the worker and leaves the holes to readRange's
// single-record safety net rather than reporting a healthy-but-behind
// member as failed.
func (c *Client) rangeFromOwner(ctx context.Context, tc trace.Ctx, owner int, lo, hi uint64, out []*core.Record) error {
	cursor := lo
	for cursor <= hi {
		if err := ctx.Err(); err != nil {
			return err
		}
		q := RangeQuery{Lo: cursor, Hi: hi, Range: owner, Trace: tc}
		var res RangeResult
		if c.session != nil {
			err := c.session.ReadWith(owner, func(mem replica.Member) error {
				rr, ok := mem.(RangeReadAPI)
				if !ok {
					return errNoRangeRead
				}
				var e error
				res, e = rr.ReadRange(q)
				return e
			})
			if err != nil {
				return err
			}
		} else {
			rr, ok := c.maintainers[owner].(RangeReadAPI)
			if !ok {
				return errNoRangeRead
			}
			var err error
			if res, err = rr.ReadRange(q); err != nil {
				return err
			}
		}
		for _, r := range res.Records {
			if r.LId >= lo && r.LId <= hi {
				out[r.LId-lo] = r
			}
		}
		if res.CoveredHi >= hi || res.CoveredHi < cursor {
			return nil
		}
		cursor = res.CoveredHi + 1
	}
	return nil
}

// ReadRangeOwned returns the records owned by maintainer owner within
// [lo, hi] (hi clamped to the head of the log; 0 = head), ascending — the
// per-partition surface partitioned consumers (stream reader groups) use.
// One range-read RPC per continuation goes to the owning group; every owned
// position at or below the clamped hi is guaranteed present in the result.
func (c *Client) ReadRangeOwned(owner int, lo, hi uint64) ([]*core.Record, error) {
	if owner < 0 || owner >= c.placement.NumMaintainers {
		return nil, fmt.Errorf("flstore: partition %d out of range", owner)
	}
	if lo == 0 {
		lo = 1
	}
	head, err := c.HeadExact()
	if err != nil {
		return nil, err
	}
	if hi == 0 || hi > head {
		hi = head
	}
	if hi < lo {
		return nil, nil
	}
	window := make([]*core.Record, hi-lo+1)
	if c.rangeOK() {
		if err := c.rangeFromOwner(context.Background(), trace.Ctx{}, owner, lo, hi, window); err != nil {
			return nil, err
		}
	} else {
		// Legacy wiring: one partition scan at the owner's handle.
		recs, err := c.maintainers[owner].Scan(core.Rule{MinLId: lo, MaxLId: hi})
		if err != nil {
			return nil, err
		}
		for _, r := range recs {
			if r.LId >= lo && r.LId <= hi {
				window[r.LId-lo] = r
			}
		}
	}
	// Walk the owner's blocks in [lo, hi]; any owned position still
	// missing is fetched through the single-record path.
	p := c.placement
	n := uint64(p.NumMaintainers)
	out := make([]*core.Record, 0, len(window)/int(n)+int(p.BatchSize))
	for chunk := (lo - 1) / p.BatchSize; chunk <= (hi-1)/p.BatchSize; chunk++ {
		if int(chunk%n) != owner {
			continue
		}
		blockLo, blockHi := chunk*p.BatchSize+1, (chunk+1)*p.BatchSize
		if blockLo < lo {
			blockLo = lo
		}
		if blockHi > hi {
			blockHi = hi
		}
		for lid := blockLo; lid <= blockHi; lid++ {
			rec := window[lid-lo]
			if rec == nil {
				if rec, err = c.ReadLId(lid); err != nil {
					return nil, err
				}
			}
			out = append(out, rec)
		}
	}
	return out, nil
}

// readRangeScan is the legacy fallback for readRange: a merged scan across
// maintainers, placed into out by position.
func (c *Client) readRangeScan(lo, hi uint64, out []*core.Record) error {
	recs, err := c.scanMerged(core.Rule{MinLId: lo, MaxLId: hi})
	if err != nil {
		return err
	}
	for _, r := range recs {
		if r.LId >= lo && r.LId <= hi {
			out[r.LId-lo] = r
		}
	}
	return nil
}

// ReadLIds returns the records at the given positions, in input order — the
// retrieval half of an indexer-resolved tag read. Positions are grouped by
// owning maintainer and fetched with one MultiRead RPC per owner,
// concurrently; anything an owner's response omits (not yet replicated at
// the member that answered) falls back to the single-record path.
func (c *Client) ReadLIds(lids []uint64) ([]*core.Record, error) {
	return c.ReadLIdsCtx(context.Background(), lids)
}

// ReadLIdsCtx is ReadLIds with cancellation: ctx aborts the single-record
// fallback loop (and its past-head backoff) between round trips, returning
// ctx.Err().
func (c *Client) ReadLIdsCtx(ctx context.Context, lids []uint64) ([]*core.Record, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]*core.Record, len(lids))
	if c.rangeOK() && len(lids) > 1 {
		byOwner := make(map[int][]uint64)
		for _, lid := range lids {
			if lid != 0 {
				owner := c.placement.Owner(lid)
				byOwner[owner] = append(byOwner[owner], lid)
			}
		}
		var wg sync.WaitGroup
		var mu sync.Mutex
		got := make(map[uint64]*core.Record, len(lids))
		for owner, group := range byOwner {
			wg.Add(1)
			go func(owner int, group []uint64) {
				defer wg.Done()
				recs, err := c.multiReadOwner(owner, group)
				if err != nil {
					return // the single-record fallback covers the group
				}
				mu.Lock()
				for _, r := range recs {
					got[r.LId] = r
				}
				mu.Unlock()
			}(owner, group)
		}
		wg.Wait()
		for i, lid := range lids {
			out[i] = got[lid]
		}
	}
	for i, lid := range lids {
		if out[i] == nil {
			rec, err := c.ReadLIdCtx(ctx, lid)
			if err != nil {
				return nil, err
			}
			out[i] = rec
		}
	}
	return out, nil
}

// multiReadOwner issues one MultiRead against owner's group with read
// failover.
func (c *Client) multiReadOwner(owner int, lids []uint64) ([]*core.Record, error) {
	if c.session != nil {
		var recs []*core.Record
		err := c.session.ReadWith(owner, func(mem replica.Member) error {
			rr, ok := mem.(RangeReadAPI)
			if !ok {
				return errNoRangeRead
			}
			var e error
			recs, e = rr.MultiRead(lids)
			return e
		})
		return recs, err
	}
	rr, ok := c.maintainers[owner].(RangeReadAPI)
	if !ok {
		return nil, errNoRangeRead
	}
	return rr.MultiRead(lids)
}

// frontiersVec returns every range's next-unfilled position (group-wide
// maximum under replication) — the vector Head() folds.
func (c *Client) frontiersVec() ([]uint64, error) {
	if c.session != nil {
		return c.session.Frontiers()
	}
	next := make([]uint64, len(c.maintainers))
	for i, m := range c.maintainers {
		n, err := m.NextUnfilled()
		if err != nil {
			return nil, err
		}
		next[i] = n
	}
	return next, nil
}

// tailWaitRange parks at rangeIdx's group until the range's local frontier
// passes cursor or maxWait elapses, with read failover across the group.
func (c *Client) tailWaitRange(rangeIdx int, cursor uint64, maxWait time.Duration) error {
	if c.session != nil {
		return c.session.ReadWith(rangeIdx, func(mem replica.Member) error {
			rr, ok := mem.(RangeReadAPI)
			if !ok {
				return errNoRangeRead
			}
			_, err := rr.TailWait(rangeIdx, cursor, maxWait)
			return err
		})
	}
	rr, ok := c.maintainers[rangeIdx].(RangeReadAPI)
	if !ok {
		return errNoRangeRead
	}
	_, err := rr.TailWait(rangeIdx, cursor, maxWait)
	return err
}

// waitHead blocks until the head of the log reaches cursor, ctx is
// cancelled, or deadline passes (zero deadline = unbounded), and returns
// the last head observed. The head advances exactly when the laggard
// range's frontier does, so each round parks on that range's TailWait
// long-poll instead of sleeping a fixed tick; legacy wiring without the
// batched read surface degrades to a bounded sleep poll.
func (c *Client) waitHead(ctx context.Context, cursor uint64, deadline time.Time) (uint64, error) {
	for {
		next, err := c.frontiersVec()
		if err != nil {
			return 0, err
		}
		head := Head(next)
		if cursor == 0 || head >= cursor {
			return head, nil
		}
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return head, err
			}
		}
		wait := clientTailWait
		if !deadline.IsZero() {
			remain := time.Until(deadline)
			if remain <= 0 {
				return head, nil
			}
			if remain < wait {
				wait = remain
			}
		}
		if c.rangeOK() {
			// Park at the first range whose frontier hasn't passed the
			// cursor; when it has, the loop recomputes the head (other
			// ranges kept advancing concurrently).
			lag := 0
			for r, n := range next {
				if n <= cursor {
					lag = r
					break
				}
			}
			if err := c.tailWaitRange(lag, cursor, wait); err != nil {
				return head, err
			}
			continue
		}
		poll := c.RetryBackoff
		if poll <= 0 {
			poll = time.Millisecond
		}
		if poll > wait {
			poll = wait
		}
		if ctx != nil {
			if err := sleepCtx(ctx, poll); err != nil {
				return head, err
			}
		} else {
			time.Sleep(poll)
		}
	}
}

// WaitHead blocks until the head of the log reaches at least lid or the
// timeout elapses (timeout 0 = unbounded), returning the last head
// observed — callers compare it against lid. It subscribes to frontier
// advances (TailWait) rather than polling, so the wake-up latency is the
// append-to-notify path, not a poll interval.
func (c *Client) WaitHead(lid uint64, timeout time.Duration) (uint64, error) {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	return c.waitHead(nil, lid, deadline)
}

// WaitHeadCtx is WaitHead with cancellation: ctx aborts the frontier
// subscription loop between long-poll rounds, returning the last head
// observed alongside ctx.Err().
func (c *Client) WaitHeadCtx(ctx context.Context, lid uint64, timeout time.Duration) (uint64, error) {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	return c.waitHead(ctx, lid, deadline)
}
