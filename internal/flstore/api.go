package flstore

import (
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// MaintainerAPI is the operation surface of one log maintainer. Components
// program against this interface; it is implemented both by *Maintainer
// (in-process) and by maintainerClient (over RPC), so deployments can mix
// direct, loopback-TCP, and cross-machine wiring without code changes.
type MaintainerAPI interface {
	// Append stores the records with post-assigned LIds (§5.2) and
	// returns the assigned LIds in order. Records must not carry LIds.
	Append(recs []*core.Record) ([]uint64, error)

	// AppendAssigned stores records that already carry LIds owned by
	// this maintainer — the path used by Chariots' queues, which assign
	// LIds centrally-by-token before forwarding (§6.2).
	AppendAssigned(recs []*core.Record) error

	// AppendAfter appends records with the constraint that their LIds
	// exceed minLId — the cross-maintainer explicit-order mechanism of
	// §5.4. The records are buffered until the constraint is satisfiable.
	AppendAfter(minLId uint64, recs []*core.Record) ([]uint64, error)

	// Read returns the record at lid. It fails with core.ErrNoSuchRecord
	// for unknown positions and core.ErrPastHead for positions beyond
	// the head of the log unless the maintainer is configured otherwise.
	Read(lid uint64) (*core.Record, error)

	// Scan returns this maintainer's records matching the rule, in
	// ascending LId order (descending if rule.MostRecent), capped at
	// rule.Limit.
	Scan(rule core.Rule) ([]*core.Record, error)

	// Head returns this maintainer's current estimate of the head of
	// the log (HL): every position ≤ Head is readable somewhere.
	Head() (uint64, error)

	// NextUnfilled returns the next LId this maintainer will fill.
	NextUnfilled() (uint64, error)

	// Gossip delivers another maintainer's next-unfilled value (§5.4)
	// and returns this maintainer's own, so gossip doubles as exchange.
	Gossip(from int, next uint64) (uint64, error)
}

// ReplicaAPI is the additional surface a replication-aware maintainer
// exposes. It is kept separate from MaintainerAPI so unreplicated
// deployments (and older fakes) keep compiling; callers type-assert, and
// ServeMaintainer registers these handlers only when the implementation
// provides them. Together with MaintainerAPI's Append and Read this is a
// superset of replica.Member.
type ReplicaAPI interface {
	// AppendFor post-assigns positions in a hosted range other than the
	// maintainer's own — the acting-primary failover path.
	AppendFor(rangeIdx int, recs []*core.Record) ([]uint64, error)
	// ReplicaAppend ingests copies of records already positioned by the
	// range's acting primary. Idempotent per LId.
	ReplicaAppend(recs []*core.Record) error
	// RangeFrontier returns the locally known next-unfilled LId of a
	// hosted range.
	RangeFrontier(rangeIdx int) (uint64, error)
	// PullRange streams stored records of a hosted range for catch-up.
	PullRange(rangeIdx int, fromLId uint64, limit int) ([]*core.Record, error)
	// GossipVec exchanges whole next-unfilled vectors so replicated
	// progress for a dead owner's range spreads.
	GossipVec(vec []uint64) ([]uint64, error)
}

// DurableGossipAPI is the durability-aware gossip surface. It is kept
// separate from ReplicaAPI so pre-durability fakes and deployments keep
// compiling: the gossiper type-asserts and falls back to GossipVec, and
// ServeMaintainer registers the handler only when the implementation
// provides it.
type DurableGossipAPI interface {
	// GossipVecs exchanges the next-unfilled vector together with the
	// durable-watermark vector (highest LId per range known quorum-fsynced).
	// Both merge element-wise max; the durable vector is advisory and never
	// gates appends.
	GossipVecs(next, dur []uint64) ([]uint64, []uint64, error)
}

// InvalidationAPI is the Hermes-style invalidation surface of a
// replication-aware maintainer. Like ReplicaAPI it is kept separate so
// unreplicated deployments and older fakes keep compiling: callers
// type-assert (the replica session probes for replica.Invalidator /
// replica.WatermarkReporter, which this satisfies), and ServeMaintainer
// registers the handlers only when the implementation provides them.
type InvalidationAPI interface {
	// Invalidate announces that every position of rangeIdx strictly below
	// upTo has been assigned by the range's acting primary; positions
	// between the local frontier and the bound become locally invalid
	// (reads block or fail over instead of reporting them absent).
	// Idempotent and monotone.
	Invalidate(rangeIdx int, upTo uint64) error
	// ValidityWatermark returns a hosted range's validity watermark (the
	// dense-prefix frontier LId: reads below it are served locally) and
	// its announced assignment bound; the span between them is the
	// invalidation backlog.
	ValidityWatermark(rangeIdx int) (watermark, announced uint64, err error)
}

// RangeQuery asks a maintainer for its hosted records in an LId interval.
type RangeQuery struct {
	// Lo and Hi bound the interval, inclusive. Lo 0 is treated as 1.
	Lo, Hi uint64
	// Range restricts the response to one hosted range (a maintainer
	// index); negative serves every hosted range. The scatter-gather
	// client pins it so replica followers don't re-ship blocks their
	// group peers already serve.
	Range int
	// MaxRecords/MaxBytes bound the response batch; 0 applies the
	// server's defaults. The server may truncate below either bound.
	MaxRecords int
	MaxBytes   int
	// Trace is the read's trace context — transient, not serialized by
	// the wire codec (cross-process propagation rides the RPC envelope;
	// the server-side handler restamps it); the zero Ctx for unsampled
	// reads.
	Trace trace.Ctx
}

// RangeResult is one maintainer's answer to a RangeQuery.
type RangeResult struct {
	// Records are the hosted records in [Lo, CoveredHi], ascending.
	Records []*core.Record
	// CoveredHi states how far the response got: every queried position
	// at or below it that this maintainer hosts is present in Records.
	// CoveredHi < Hi means the response was cut short — by the
	// count/byte budget or by the hosted range's local frontier — and
	// the client resumes from CoveredHi+1.
	CoveredHi uint64
}

// RangeReadAPI is the batched read surface of a maintainer. Like
// ReplicaAPI it is kept out of MaintainerAPI so legacy fakes keep
// compiling: callers type-assert, ServeMaintainer registers its handlers
// only when the implementation provides them, and the client falls back to
// the single-record/scan paths when any wired maintainer lacks it.
type RangeReadAPI interface {
	// ReadRange returns every hosted record in [q.Lo, q.Hi] as one batch,
	// ascending, within the query's budgets.
	ReadRange(q RangeQuery) (RangeResult, error)
	// MultiRead returns the hosted records at the given LIds in input
	// order; positions not yet stored here are absent from the result.
	MultiRead(lids []uint64) ([]*core.Record, error)
	// TailWait parks until hosted range rangeIdx's local frontier (its
	// next-unfilled LId) passes cursor or maxWait elapses (0 = server
	// default), returning the current frontier either way — the push half
	// of tail subscriptions. The head of the log advances exactly when
	// the laggard range's frontier does, so a tailing client parks at
	// that range's group instead of polling.
	TailWait(rangeIdx int, cursor uint64, maxWait time.Duration) (uint64, error)
}

// Posting is one index entry streamed from a maintainer to an indexer:
// the record at LId carries tag Key with value Value.
type Posting struct {
	Key   string
	Value string
	LId   uint64
}

// LookupQuery asks an indexer for the LIds of records carrying a tag.
type LookupQuery struct {
	Key   string
	Cmp   core.CmpOp // CmpAny = no value constraint
	Value string

	// MaxLIdExclusive restricts results to LIds < bound (0 = unbounded);
	// get-transactions pass the pinned head here (Algorithm 1).
	MaxLIdExclusive uint64
	// Limit caps results; MostRecent returns the highest LIds first.
	Limit      int
	MostRecent bool
}

// IndexerAPI is the operation surface of one distributed indexer (§5.3).
type IndexerAPI interface {
	Post(entries []Posting) error
	Lookup(q LookupQuery) ([]uint64, error)
}

// ControllerAPI is the stateless control/meta-data oracle (§5.1): clients
// call it once at session start (and after communication problems) to learn
// the cluster layout.
type ControllerAPI interface {
	GetConfig() (*Config, error)
}

// Config describes one FLStore deployment as served by the controller.
type Config struct {
	Placement Placement
	// MaintainerAddrs are "host:port" endpoints, index-aligned with
	// Placement ownership. Empty strings denote in-process wiring.
	MaintainerAddrs []string
	IndexerAddrs    []string
	// Epochs is the journal of placement changes for live elasticity
	// (§6.3); readers use it to locate records written under old
	// placements.
	Epochs []Epoch
	// Replication is the deployment's replica-group size R (0 and 1 both
	// mean unreplicated); clients derive group membership from it and the
	// placement alone.
	Replication int
	// AckPolicy is the append durability policy ("one", "majority",
	// "all"); empty means "majority".
	AckPolicy string
}

// Epoch is one entry of the elasticity journal: from FirstLId onward, the
// log is laid out under the given placement. Earlier positions use the
// preceding epoch's placement.
type Epoch struct {
	FirstLId  uint64
	Placement Placement
	// MaintainerAddrs are the epoch's own maintainer endpoints,
	// index-aligned with its placement — the epoch-carried topology that
	// replaces the mutable top-level address list for elastic deployments.
	// Empty means the epoch inherits Config.MaintainerAddrs (static
	// deployments that never switch epochs).
	MaintainerAddrs []string
}
