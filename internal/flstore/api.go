package flstore

import (
	"repro/internal/core"
)

// MaintainerAPI is the operation surface of one log maintainer. Components
// program against this interface; it is implemented both by *Maintainer
// (in-process) and by maintainerClient (over RPC), so deployments can mix
// direct, loopback-TCP, and cross-machine wiring without code changes.
type MaintainerAPI interface {
	// Append stores the records with post-assigned LIds (§5.2) and
	// returns the assigned LIds in order. Records must not carry LIds.
	Append(recs []*core.Record) ([]uint64, error)

	// AppendAssigned stores records that already carry LIds owned by
	// this maintainer — the path used by Chariots' queues, which assign
	// LIds centrally-by-token before forwarding (§6.2).
	AppendAssigned(recs []*core.Record) error

	// AppendAfter appends records with the constraint that their LIds
	// exceed minLId — the cross-maintainer explicit-order mechanism of
	// §5.4. The records are buffered until the constraint is satisfiable.
	AppendAfter(minLId uint64, recs []*core.Record) ([]uint64, error)

	// Read returns the record at lid. It fails with core.ErrNoSuchRecord
	// for unknown positions and core.ErrPastHead for positions beyond
	// the head of the log unless the maintainer is configured otherwise.
	Read(lid uint64) (*core.Record, error)

	// Scan returns this maintainer's records matching the rule, in
	// ascending LId order (descending if rule.MostRecent), capped at
	// rule.Limit.
	Scan(rule core.Rule) ([]*core.Record, error)

	// Head returns this maintainer's current estimate of the head of
	// the log (HL): every position ≤ Head is readable somewhere.
	Head() (uint64, error)

	// NextUnfilled returns the next LId this maintainer will fill.
	NextUnfilled() (uint64, error)

	// Gossip delivers another maintainer's next-unfilled value (§5.4)
	// and returns this maintainer's own, so gossip doubles as exchange.
	Gossip(from int, next uint64) (uint64, error)
}

// ReplicaAPI is the additional surface a replication-aware maintainer
// exposes. It is kept separate from MaintainerAPI so unreplicated
// deployments (and older fakes) keep compiling; callers type-assert, and
// ServeMaintainer registers these handlers only when the implementation
// provides them. Together with MaintainerAPI's Append and Read this is a
// superset of replica.Member.
type ReplicaAPI interface {
	// AppendFor post-assigns positions in a hosted range other than the
	// maintainer's own — the acting-primary failover path.
	AppendFor(rangeIdx int, recs []*core.Record) ([]uint64, error)
	// ReplicaAppend ingests copies of records already positioned by the
	// range's acting primary. Idempotent per LId.
	ReplicaAppend(recs []*core.Record) error
	// RangeFrontier returns the locally known next-unfilled LId of a
	// hosted range.
	RangeFrontier(rangeIdx int) (uint64, error)
	// PullRange streams stored records of a hosted range for catch-up.
	PullRange(rangeIdx int, fromLId uint64, limit int) ([]*core.Record, error)
	// GossipVec exchanges whole next-unfilled vectors so replicated
	// progress for a dead owner's range spreads.
	GossipVec(vec []uint64) ([]uint64, error)
}

// Posting is one index entry streamed from a maintainer to an indexer:
// the record at LId carries tag Key with value Value.
type Posting struct {
	Key   string
	Value string
	LId   uint64
}

// LookupQuery asks an indexer for the LIds of records carrying a tag.
type LookupQuery struct {
	Key   string
	Cmp   core.CmpOp // CmpAny = no value constraint
	Value string

	// MaxLIdExclusive restricts results to LIds < bound (0 = unbounded);
	// get-transactions pass the pinned head here (Algorithm 1).
	MaxLIdExclusive uint64
	// Limit caps results; MostRecent returns the highest LIds first.
	Limit      int
	MostRecent bool
}

// IndexerAPI is the operation surface of one distributed indexer (§5.3).
type IndexerAPI interface {
	Post(entries []Posting) error
	Lookup(q LookupQuery) ([]uint64, error)
}

// ControllerAPI is the stateless control/meta-data oracle (§5.1): clients
// call it once at session start (and after communication problems) to learn
// the cluster layout.
type ControllerAPI interface {
	GetConfig() (*Config, error)
}

// Config describes one FLStore deployment as served by the controller.
type Config struct {
	Placement Placement
	// MaintainerAddrs are "host:port" endpoints, index-aligned with
	// Placement ownership. Empty strings denote in-process wiring.
	MaintainerAddrs []string
	IndexerAddrs    []string
	// Epochs is the journal of placement changes for live elasticity
	// (§6.3); readers use it to locate records written under old
	// placements.
	Epochs []Epoch
	// Replication is the deployment's replica-group size R (0 and 1 both
	// mean unreplicated); clients derive group membership from it and the
	// placement alone.
	Replication int
	// AckPolicy is the append durability policy ("one", "majority",
	// "all"); empty means "majority".
	AckPolicy string
}

// Epoch is one entry of the elasticity journal: from FirstLId onward, the
// log is laid out under the given placement. Earlier positions use the
// preceding epoch's placement.
type Epoch struct {
	FirstLId  uint64
	Placement Placement
}
