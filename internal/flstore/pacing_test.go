package flstore

import (
	"testing"
	"time"
)

func TestPacerAIMD(t *testing.T) {
	p := &pacer{}
	if p.currentRate() != 0 {
		t.Fatalf("fresh pacer rate = %v, want 0 (inert)", p.currentRate())
	}
	if d := p.delay(1000); d != 0 {
		t.Fatalf("inert pacer delay = %v, want 0", d)
	}

	// First overload seeds from the server's implied admission rate:
	// 100 records were too many for 100ms of refill → 1000 rec/s.
	p.onOverload(100, 100*time.Millisecond)
	if r := p.currentRate(); r != 1000 {
		t.Fatalf("seeded rate = %v, want 1000", r)
	}

	// Further overloads halve (multiplicative decrease).
	p.onOverload(100, 100*time.Millisecond)
	if r := p.currentRate(); r != 500 {
		t.Fatalf("halved rate = %v, want 500", r)
	}

	// Success creeps the allowance back up additively.
	p.onSuccess(100)
	if r := p.currentRate(); r != 500+paceIncrement {
		t.Fatalf("increased rate = %v, want %v", r, 500+paceIncrement)
	}

	// Decrease is floored: a dead server is still probed.
	for i := 0; i < 64; i++ {
		p.onOverload(1, time.Millisecond)
	}
	if r := p.currentRate(); r != paceFloor {
		t.Fatalf("floored rate = %v, want %v", r, paceFloor)
	}
}

func TestPacerDelaysWhenOverBudget(t *testing.T) {
	p := &pacer{}
	p.onOverload(10, 10*time.Millisecond) // seed 1000 rec/s, tokens drained
	d := p.delay(100)                     // 100 records at 1000/s ≈ 100ms owed
	if d < 50*time.Millisecond || d > 200*time.Millisecond {
		t.Fatalf("delay = %v, want ≈100ms", d)
	}
}

func TestPacerNoOverloadNoDelay(t *testing.T) {
	p := &pacer{}
	for i := 0; i < 100; i++ {
		if d := p.delay(1 << 20); d != 0 {
			t.Fatalf("inert pacer delayed %v", d)
		}
		p.onSuccess(1 << 20)
	}
	if p.currentRate() != 0 {
		t.Fatalf("success alone set a rate: %v", p.currentRate())
	}
}

func TestPacerNilSafe(t *testing.T) {
	var p *pacer
	if p.delay(10) != 0 || p.currentRate() != 0 {
		t.Fatal("nil pacer not inert")
	}
	p.onSuccess(1)
	p.onOverload(1, time.Millisecond)
}
