package flstore

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/rpc"
)

func TestSealAtValidation(t *testing.T) {
	m := newTestMaintainer(t, 0, 2, 4) // round length 8
	if err := m.SealAt(10); err == nil {
		t.Error("non-round-aligned boundary accepted")
	}
	if err := m.SealAt(1); err == nil {
		t.Error("boundary 1 accepted")
	}
	// Fill past the first round so a low boundary is below the frontier.
	for i := 0; i < 6; i++ {
		if _, err := m.Append([]*core.Record{bodyRec(fmt.Sprint(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.SealAt(9); err == nil {
		t.Error("boundary below the fill frontier accepted")
	}
	if err := m.SealAt(17); err != nil {
		t.Fatalf("valid seal: %v", err)
	}
	if err := m.SealAt(17); err != nil {
		t.Fatalf("idempotent reseal at same boundary: %v", err)
	}
	if err := m.SealAt(25); err == nil {
		t.Error("reseal at a different boundary accepted")
	}
	if got := m.SealedAt(); got != 17 {
		t.Fatalf("SealedAt = %d, want 17", got)
	}
}

func TestSealRejectsCrossingAppends(t *testing.T) {
	m := newTestMaintainer(t, 0, 2, 4)
	if err := m.SealAt(9); err != nil { // caps own range at 4 slots
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := m.Append([]*core.Record{bodyRec(fmt.Sprint(i))}); err != nil {
			t.Fatalf("append %d below the cap: %v", i, err)
		}
	}
	_, err := m.Append([]*core.Record{bodyRec("over")})
	if err == nil {
		t.Fatal("append across the seal cap accepted")
	}
	if !errors.Is(err, ErrEpochSealed) {
		t.Fatalf("crossing append error = %v, want ErrEpochSealed", err)
	}
	var se *EpochSealedError
	if !errors.As(err, &se) || se.FirstLId != 9 {
		t.Fatalf("error %v does not carry the boundary 9", err)
	}
	if IsRetryable(err) {
		t.Error("EpochSealedError must not be retryable (clients re-poll the controller instead)")
	}
}

func TestPadClosesRangeDense(t *testing.T) {
	m := newTestMaintainer(t, 1, 2, 4) // owns 5-8, 13-16, ...
	if _, err := m.Append([]*core.Record{bodyRec("a"), bodyRec("b")}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Pad(); err == nil {
		t.Error("Pad before SealAt accepted")
	}
	if err := m.SealAt(9); err != nil {
		t.Fatal(err)
	}
	pads, err := m.Pad()
	if err != nil {
		t.Fatal(err)
	}
	if len(pads) != 2 {
		t.Fatalf("padded %d records, want 2", len(pads))
	}
	for _, r := range pads {
		if r.TOId != r.LId {
			t.Errorf("pad record %d has TOId %d, want its LId", r.LId, r.TOId)
		}
		if len(r.Tags) != 1 || r.Tags[0].Key != SealTagKey {
			t.Errorf("pad record %d not tagged %q: %v", r.LId, SealTagKey, r.Tags)
		}
	}
	if n, _ := m.NextUnfilled(); n != 13 {
		t.Fatalf("NextUnfilled after pad = %d, want 13 (next round past the boundary)", n)
	}
	// The range is dense below the boundary: every owned LId readable.
	for _, lid := range []uint64{5, 6, 7, 8} {
		if _, err := m.Read(lid); err != nil {
			t.Fatalf("read LId %d after pad: %v", lid, err)
		}
	}
	// Second pad is a no-op.
	if pads, err := m.Pad(); err != nil || pads != nil {
		t.Fatalf("re-pad = (%v, %v), want (nil, nil)", pads, err)
	}
}

func TestPadKeepsBufferedAssigned(t *testing.T) {
	m := newTestMaintainer(t, 0, 2, 4) // owns 1-4, 9-12, ...
	if _, err := m.Append([]*core.Record{bodyRec("a"), bodyRec("b")}); err != nil {
		t.Fatal(err)
	}
	// An upstream-assigned record for slot 3 (LId 4) races the seal: it
	// sits in the out-of-order buffer when the pad runs.
	race := &core.Record{LId: 4, TOId: 4, Body: []byte("raced")}
	if err := m.AppendAssigned([]*core.Record{race}); err != nil {
		t.Fatal(err)
	}
	if err := m.SealAt(9); err != nil {
		t.Fatal(err)
	}
	pads, err := m.Pad()
	if err != nil {
		t.Fatal(err)
	}
	if len(pads) != 2 { // slot 2 filler + the raced record
		t.Fatalf("padded %d records, want 2", len(pads))
	}
	rec, err := m.Read(4)
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Body) != "raced" {
		t.Fatalf("LId 4 body = %q, want the raced record, not a filler", rec.Body)
	}
	if rec3, err := m.Read(3); err != nil || len(rec3.Tags) != 1 || rec3.Tags[0].Key != SealTagKey {
		t.Fatalf("LId 3 should be a seal filler, got (%v, %v)", rec3, err)
	}
}

// TestPlacementAtConcurrentFlip is the epoch-boundary property test:
// while a flip is being announced, every configuration snapshot a client
// can observe maps every LId to exactly one placement — the old one below
// the boundary, the new one at and above it, never neither or both.
func TestPlacementAtConcurrentFlip(t *testing.T) {
	pOld := Placement{NumMaintainers: 2, BatchSize: 4}
	pNew := Placement{NumMaintainers: 4, BatchSize: 4}
	const boundary = 17
	ctrl, err := NewController(Config{Placement: pOld})
	if err != nil {
		t.Fatal(err)
	}

	start := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for iter := 0; iter < 200; iter++ {
				cfg, err := ctrl.GetConfig()
				if err != nil {
					errc <- err
					return
				}
				flipped := len(cfg.Epochs) == 2
				for lid := uint64(1); lid <= 40; lid++ {
					p, err := PlacementAt(cfg.Epochs, lid)
					if err != nil {
						errc <- fmt.Errorf("LId %d unroutable: %w", lid, err)
						return
					}
					want := pOld
					if flipped && lid >= boundary {
						want = pNew
					}
					if p != want {
						errc <- fmt.Errorf("LId %d routed to %+v, want %+v (flipped=%v)", lid, p, want, flipped)
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		if err := ctrl.AnnounceEpochTopology(boundary, pNew, nil); err != nil {
			errc <- err
		}
	}()
	close(start)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	// Post-flip the boundary itself is the first LId of the new epoch.
	cfg, _ := ctrl.GetConfig()
	if p, _ := PlacementAt(cfg.Epochs, boundary-1); p != pOld {
		t.Fatalf("LId %d = %+v, want old placement", boundary-1, p)
	}
	if p, _ := PlacementAt(cfg.Epochs, boundary); p != pNew {
		t.Fatalf("LId %d = %+v, want new placement", boundary, p)
	}
}

// growSet builds an in-process member set factory for orchestrator tests.
func growSet(t *testing.T) (func(p Placement, firstLId uint64) (MemberSet, error), *[]*Maintainer) {
	t.Helper()
	var made []*Maintainer
	holder := &made
	return func(p Placement, firstLId uint64) (MemberSet, error) {
		ms := MemberSet{Maintainers: make([]*Maintainer, p.NumMaintainers)}
		for i := 0; i < p.NumMaintainers; i++ {
			m, err := NewMaintainer(MaintainerConfig{Index: i, Placement: p, FirstLId: firstLId})
			if err != nil {
				return ms, err
			}
			ms.Maintainers[i] = m
		}
		*holder = ms.Maintainers
		return ms, nil
	}, holder
}

func TestOrchestratorGrowEndToEnd(t *testing.T) {
	pOld := Placement{NumMaintainers: 2, BatchSize: 4}
	old := MemberSet{Maintainers: []*Maintainer{
		newTestMaintainer(t, 0, 2, 4),
		newTestMaintainer(t, 1, 2, 4),
	}}
	ctrl, err := NewController(Config{Placement: pOld})
	if err != nil {
		t.Fatal(err)
	}
	grow, next := growSet(t)
	orch, err := NewOrchestrator(OrchestratorConfig{
		Controller: ctrl,
		Current:    old,
		Grow:       grow,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Live traffic on the old set before the flip.
	var bodies []uint64
	for i := 0; i < 5; i++ {
		lids, err := old.Maintainers[i%2].Append([]*core.Record{bodyRec(fmt.Sprint(i))})
		if err != nil {
			t.Fatal(err)
		}
		bodies = append(bodies, lids...)
	}

	st, err := orch.Grow(Placement{NumMaintainers: 4, BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.FirstLId == 0 || st.NumMaintainers != 4 {
		t.Fatalf("grow returned %+v", st)
	}
	if err := orch.WaitMigration(); err != nil {
		t.Fatal(err)
	}
	eps, err := orch.Epochs()
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) != 2 || !eps[0].Sealed || eps[1].Sealed {
		t.Fatalf("epoch journal %+v", eps)
	}
	boundary := eps[1].FirstLId
	if !eps[0].MigrationDone || eps[0].RecordsStreamed != boundary-1 {
		t.Fatalf("migration state %+v, want done with %d records", eps[0], boundary-1)
	}

	// The old epoch is dense to the boundary on the old members...
	for lid := uint64(1); lid < boundary; lid++ {
		if _, err := old.Maintainers[pOld.Owner(lid)].Read(lid); err != nil {
			t.Fatalf("old member read LId %d: %v", lid, err)
		}
	}
	// ...and fully migrated onto the new targets (old range j -> new j).
	for lid := uint64(1); lid < boundary; lid++ {
		target := (*next)[pOld.Owner(lid)]
		rec, err := target.Read(lid)
		if err != nil {
			t.Fatalf("migrated read LId %d: %v", lid, err)
		}
		if rec.LId != lid {
			t.Fatalf("migrated LId %d returned record %d", lid, rec.LId)
		}
	}
	// Appended bodies survived the migration verbatim.
	for i, lid := range bodies {
		rec, err := (*next)[pOld.Owner(lid)].Read(lid)
		if err != nil {
			t.Fatal(err)
		}
		if string(rec.Body) != fmt.Sprint(i) {
			t.Fatalf("LId %d body = %q, want %q", lid, rec.Body, fmt.Sprint(i))
		}
	}
	// The new set serves the new epoch: an append lands at the boundary.
	lids, err := (*next)[0].Append([]*core.Record{bodyRec("new epoch")})
	if err != nil {
		t.Fatal(err)
	}
	if lids[0] != boundary {
		t.Fatalf("first new-epoch append got LId %d, want the boundary %d", lids[0], boundary)
	}
}

// severAfter serves `after` pulls, then severs the injector link so the
// next pull fails like a killed maintainer — a deterministic mid-stream
// crash point on the seeded schedule.
type severAfter struct {
	inner RangePuller
	fi    *faultinject.Controller
	link  string
	after int
	calls int
}

func (s *severAfter) PullRange(rangeIdx int, fromLId uint64, limit int) ([]*core.Record, error) {
	s.calls++
	if s.calls > s.after {
		s.fi.Sever(s.link)
	}
	return s.inner.PullRange(rangeIdx, fromLId, limit)
}

// TestMigrationSourceFailover kills the migration's primary source
// mid-stream (the seeded fault injector severs its link after two
// successful pulls): the orchestrator must fail over to the next source
// and still converge to a complete, dense copy (the ingest path is
// idempotent, so the overlap re-pulled after the switch is harmless).
func TestMigrationSourceFailover(t *testing.T) {
	pOld := Placement{NumMaintainers: 2, BatchSize: 4}
	old := MemberSet{Maintainers: []*Maintainer{
		newTestMaintainer(t, 0, 2, 4),
		newTestMaintainer(t, 1, 2, 4),
	}}
	for i := 0; i < 6; i++ {
		if _, err := old.Maintainers[i%2].Append([]*core.Record{bodyRec(fmt.Sprint(i))}); err != nil {
			t.Fatal(err)
		}
	}
	// Old maintainer 0 behind real RPC, wrapped in a seeded lossy link:
	// its pulls start failing at a schedule-determined step.
	srv := rpc.NewServer()
	ServeMaintainer(srv, old.Maintainers[0])
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := rpc.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fi := faultinject.New(faultinject.Options{Seed: 11})
	flaky := &severAfter{
		inner: NewMaintainerClient(fi.Wrap("mig0", conn)).(RangePuller),
		fi:    fi, link: "mig0", after: 2,
	}

	ctrl, err := NewController(Config{Placement: pOld})
	if err != nil {
		t.Fatal(err)
	}
	grow, next := growSet(t)
	orch, err := NewOrchestrator(OrchestratorConfig{
		Controller:   ctrl,
		Current:      old,
		Grow:         grow,
		MigrateBatch: 4, // several pulls per range, so the kill lands mid-stream
		PullSources: func(oldRange int) []RangePuller {
			if oldRange == 0 {
				return []RangePuller{flaky, old.Maintainers[0]}
			}
			return []RangePuller{old.Maintainers[1]}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := orch.Grow(Placement{NumMaintainers: 4, BatchSize: 4}); err != nil {
		t.Fatal(err)
	}
	if err := orch.WaitMigration(); err != nil {
		t.Fatalf("migration did not converge through the source failure: %v", err)
	}
	if len(fi.Events()) == 0 {
		t.Fatal("fault injector never fired; the test exercised nothing")
	}
	eps, err := orch.Epochs()
	if err != nil {
		t.Fatal(err)
	}
	if !eps[0].MigrationDone {
		t.Fatalf("migration incomplete: %+v", eps[0])
	}
	boundary := eps[1].FirstLId
	for lid := uint64(1); lid < boundary; lid++ {
		if _, err := (*next)[pOld.Owner(lid)].Read(lid); err != nil {
			t.Fatalf("migrated read LId %d after failover: %v", lid, err)
		}
	}
}

func TestAdminRoundTrip(t *testing.T) {
	p := Placement{NumMaintainers: 2, BatchSize: 4}
	ctrl, err := NewController(Config{
		Placement:       p,
		MaintainerAddrs: []string{"old-a:1", "old-b:1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := rpc.NewServer()
	ServeController(srv, ctrl)
	ServeAdmin(srv, &ControllerAdmin{Ctrl: ctrl})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := rpc.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	admin := NewAdmin(conn)
	ctx := context.Background()

	eps, err := admin.Epochs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) != 1 || eps[0].FirstLId != 1 || eps[0].Sealed {
		t.Fatalf("initial journal %+v", eps)
	}

	// A journal-only proposal must be explicit about boundary and topology.
	if _, err := admin.ProposeEpoch(ctx, EpochProposal{NumMaintainers: 4}); err == nil {
		t.Fatal("proposal without first_lid/addrs accepted by the journal-only admin")
	}
	st, err := admin.ProposeEpoch(ctx, EpochProposal{
		FirstLId:        17,
		NumMaintainers:  4,
		MaintainerAddrs: []string{"new-a:1", "new-b:1", "new-c:1", "new-d:1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.FirstLId != 17 || st.NumMaintainers != 4 || st.BatchSize != 4 {
		t.Fatalf("proposed epoch status %+v", st)
	}
	eps, err = admin.Epochs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) != 2 || !eps[0].Sealed || eps[1].Sealed {
		t.Fatalf("journal after proposal %+v", eps)
	}
	if len(eps[0].MaintainerAddrs) != 2 || eps[0].MaintainerAddrs[0] != "old-a:1" {
		t.Fatalf("sealed epoch lost its serving addresses: %+v", eps[0])
	}

	// The typed config view picks up the flip.
	cfg, err := admin.Config(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Placement.NumMaintainers != 4 || len(cfg.Epochs) != 2 {
		t.Fatalf("config after flip %+v", cfg)
	}
	if len(cfg.MaintainerAddrs) != 4 || cfg.MaintainerAddrs[0] != "new-a:1" {
		t.Fatalf("top-level addrs after flip %v", cfg.MaintainerAddrs)
	}

	// A dead context short-circuits before the wire.
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := admin.Epochs(canceled); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled ctx error = %v", err)
	}

	// A second proposal behind the boundary is rejected remotely and the
	// error is typed, not a string blob.
	_, err = admin.ProposeEpoch(ctx, EpochProposal{
		FirstLId:        9,
		NumMaintainers:  2,
		MaintainerAddrs: []string{"x:1", "y:1"},
	})
	if err == nil {
		t.Fatal("stale boundary accepted")
	}
	if IsRetryable(err) {
		t.Fatalf("stale-boundary rejection should not be retryable: %v", err)
	}
}
