package flstore

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/rpc"
)

// The read-path benchmarks mirror the append-side allocation discipline:
// the Fig. 7/8 scaling argument needs reads to move batches, not records,
// so the gate is allocations per window — one range-read RPC with an
// arena-decoded response versus N single-record round trips.

const readBenchWindow = 64

// newReadStack builds client→rpc→maintainers over in-process RPC (real
// dispatch and codec work, deterministic allocation counts) and appends
// enough records that [1, readBenchWindow] is fully below the head.
func newReadStack(tb testing.TB, n int, batch uint64) (*Client, []*Maintainer) {
	tb.Helper()
	p := Placement{NumMaintainers: n, BatchSize: batch}
	ms := make([]*Maintainer, n)
	apis := make([]MaintainerAPI, n)
	for i := 0; i < n; i++ {
		m, err := NewMaintainer(MaintainerConfig{Index: i, Placement: p})
		if err != nil {
			tb.Fatal(err)
		}
		srv := rpc.NewServer()
		ServeMaintainer(srv, m)
		ms[i] = m
		apis[i] = NewMaintainerClient(rpc.NewLocalClient(srv))
	}
	c, err := NewDirectClient(p, apis, nil)
	if err != nil {
		tb.Fatal(err)
	}
	body := make([]byte, 128)
	for i := 0; i < readBenchWindow; i++ {
		if _, err := c.Append(body, nil); err != nil {
			tb.Fatal(err)
		}
	}
	return c, ms
}

// BenchmarkReadRangeAllocs reads a 64-record window with one scatter-gather
// range read per iteration.
func BenchmarkReadRangeAllocs(b *testing.B) {
	c, _ := newReadStack(b, 2, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs, err := c.ReadRange(1, readBenchWindow)
		if err != nil {
			b.Fatal(err)
		}
		if len(recs) != readBenchWindow {
			b.Fatalf("got %d records", len(recs))
		}
	}
}

// BenchmarkSingleReadsAllocs reads the same 64-record window one ReadLId
// round trip at a time — the pre-batching baseline.
func BenchmarkSingleReadsAllocs(b *testing.B) {
	c, _ := newReadStack(b, 2, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for lid := uint64(1); lid <= readBenchWindow; lid++ {
			if _, err := c.ReadLId(lid); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTailCachedReadAllocs reads the window at the append frontier —
// every record served from the maintainers' tail rings, no store access.
func BenchmarkTailCachedReadAllocs(b *testing.B) {
	c, ms := newReadStack(b, 2, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs, err := c.ReadRange(1, readBenchWindow)
		if err != nil {
			b.Fatal(err)
		}
		if len(recs) != readBenchWindow {
			b.Fatalf("got %d records", len(recs))
		}
	}
	b.StopTimer()
	hits := uint64(0)
	for _, m := range ms {
		hits += m.TailCacheHits.Value()
	}
	if hits == 0 {
		b.Fatal("window was not served from the tail cache")
	}
}

// TestReadRangeAllocBudget is the tier-1 gate for the batched read path:
// one scatter-gather ReadRange of a 64-record window must cost at most 10%
// of the allocations of 64 single-record reads of the same window. The
// batched path is one RPC per owner with an arena-decoded response; the
// single-record path pays a request buffer, response copy, and record
// decode per position.
func TestReadRangeAllocBudget(t *testing.T) {
	c, _ := newReadStack(t, 2, 8)
	// Warm both paths (pools, grow-only scratch).
	for i := 0; i < 3; i++ {
		if _, err := c.ReadRange(1, readBenchWindow); err != nil {
			t.Fatal(err)
		}
		for lid := uint64(1); lid <= readBenchWindow; lid++ {
			if _, err := c.ReadLId(lid); err != nil {
				t.Fatal(err)
			}
		}
	}
	ranged := testing.AllocsPerRun(30, func() {
		if _, err := c.ReadRange(1, readBenchWindow); err != nil {
			t.Fatal(err)
		}
	})
	single := testing.AllocsPerRun(30, func() {
		for lid := uint64(1); lid <= readBenchWindow; lid++ {
			if _, err := c.ReadLId(lid); err != nil {
				t.Fatal(err)
			}
		}
	})
	if ranged > 0.10*single {
		t.Fatalf("ReadRange of %d records = %.1f allocs, budget 10%% of %d single reads (%.1f allocs)",
			readBenchWindow, ranged, readBenchWindow, single)
	}
}

// TestTailCachedReadAllocBudget pins the warm-tail read: a 64-record window
// at the frontier, served entirely from the maintainers' tail rings over
// RPC, must stay within a fixed allocation budget. Measured ~19 allocs per
// window (two RPCs, arena decode, merge slice); the bound leaves ~2x
// headroom for toolchain drift while failing loudly on any per-record
// allocation (which would add ≥64 at once).
func TestTailCachedReadAllocBudget(t *testing.T) {
	const budget = 48
	c, ms := newReadStack(t, 2, 8)
	for i := 0; i < 3; i++ {
		if _, err := c.ReadRange(1, readBenchWindow); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(30, func() {
		if _, err := c.ReadRange(1, readBenchWindow); err != nil {
			t.Fatal(err)
		}
	})
	if avg > budget {
		t.Fatalf("cached tail read: %.1f allocs per %d-record window, budget %d", avg, readBenchWindow, budget)
	}
	misses := uint64(0)
	for _, m := range ms {
		misses += m.TailCacheMisses.Value()
	}
	if misses != 0 {
		t.Fatalf("warm window missed the tail cache %d times", misses)
	}
}

// BenchmarkTailPushVsPoll contrasts the two tail implementations on a
// pre-filled log: the subscription path drains it in chunked range reads;
// the legacy path (DisableRangeRead) re-derives the head and merges scans.
func BenchmarkTailPushVsPoll(b *testing.B) {
	for _, legacy := range []bool{false, true} {
		name := "push"
		if legacy {
			name = "poll"
		}
		b.Run(name, func(b *testing.B) {
			c, _ := newReadStack(b, 2, 8)
			c.DisableRangeRead = legacy
			head, err := c.HeadExact()
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				seen := uint64(0)
				err := c.Tail(ctx, 1, func(r *core.Record) bool {
					seen++
					return seen < head
				})
				if err != nil {
					b.Fatal(err)
				}
				if seen != head {
					b.Fatalf("tailed %d of %d", seen, head)
				}
			}
		})
	}
}
