package flstore

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/replica"
	"repro/internal/rpc"
)

// TestReplicatedLinearizableReadsUnderFaults is the invalidation
// protocol's linearizability check (name matches the tier-1 race gate):
// one writer appends through seeded lossy links (drops, duplicates,
// delays) while readers hammer every acknowledged position through the
// any-replica spread-read policy. The invariant under test is that an
// acknowledged append is never read stale from any replica — a lagging
// member must block or fail the read over (invalidation semantics), never
// answer "no such record" or an old body. Evicted members are readmitted
// mid-run, so the watermark invariant also survives the
// suspect/evict/catch-up/readmit lifecycle.
func TestReplicatedLinearizableReadsUnderFaults(t *testing.T) {
	const (
		n    = 3
		seed = 42
	)
	p := Placement{NumMaintainers: n, BatchSize: 2}
	ctl := faultinject.New(faultinject.Options{
		Seed:   seed,
		DropP:  0.05,
		DupP:   0.05,
		DelayP: 0.10,
		Delay:  200 * time.Microsecond,
	})
	var ms []*Maintainer
	var srvs []*rpc.Server
	for i := 0; i < n; i++ {
		m, err := NewMaintainer(MaintainerConfig{
			Index: i, Placement: p, Replication: n, EnforceHead: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := rpc.NewServer()
		ServeMaintainer(srv, m)
		ms = append(ms, m)
		srvs = append(srvs, srv)
	}
	// The writer's links are lossy; the readers' links are clean, so a
	// read failure is a protocol violation, not an injected fault.
	var faulty, clean []MaintainerAPI
	for i := 0; i < n; i++ {
		faulty = append(faulty, NewMaintainerClient(ctl.Wrap(fmt.Sprintf("w->m%d", i), rpc.NewLocalClient(srvs[i]))))
		clean = append(clean, NewMaintainerClient(rpc.NewLocalClient(srvs[i])))
	}
	writer, err := NewReplicatedDirectClientWith(p, faulty, nil, n, replica.AckMajority,
		WithAppendRetries(100), WithAppendBackoff(100*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	reader, err := NewReplicatedDirectClientWith(p, clean, nil, n, replica.AckMajority,
		WithReadPolicy(replica.SpreadReads()),
		WithReadRetries(500), WithRetryBackoff(200*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}

	// acked maps every acknowledged LId to the body the writer stored
	// there; ackedLIds is the readers' sampling population.
	var (
		mu       sync.Mutex
		acked    = map[uint64]string{}
		ackedLId []uint64
	)
	deadline := time.Now().Add(800 * time.Millisecond)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; time.Now().Before(deadline); i++ {
			body := fmt.Sprintf("rec-%d", i)
			lid, err := writer.Append([]byte(body), nil)
			if err != nil {
				// An under-acked or dropped append is an availability
				// event, not a correctness one: the record is simply not
				// registered as acknowledged. Readmit anyone the session
				// evicted and move on.
				for mi := 0; mi < n; mi++ {
					if writer.Session().Health().State(mi) == replica.Evicted {
						_, _ = writer.Session().Rejoin(mi, 0)
					}
				}
				continue
			}
			mu.Lock()
			acked[lid] = body
			ackedLId = append(ackedLId, lid)
			mu.Unlock()
			if i%64 == 63 { // periodic repair, like an operator cron
				for mi := 0; mi < n; mi++ {
					if writer.Session().Health().State(mi) == replica.Evicted {
						_, _ = writer.Session().Rejoin(mi, 0)
					}
				}
			}
		}
	}()

	readAcked := func(rnd *rand.Rand) error {
		mu.Lock()
		if len(ackedLId) == 0 {
			mu.Unlock()
			return nil
		}
		lid := ackedLId[rnd.Intn(len(ackedLId))]
		want := acked[lid]
		mu.Unlock()
		rec, err := reader.ReadLId(lid)
		if err != nil {
			return fmt.Errorf("acked LId %d unreadable: %w", lid, err)
		}
		if string(rec.Body) != want {
			return fmt.Errorf("stale read at LId %d: got %q, want %q", lid, rec.Body, want)
		}
		return nil
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(seed + r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := readAcked(rnd); err != nil {
					t.Error(err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Heal the frontier vectors (the writer's last announcements to a
	// member may have been dropped, freezing its head estimate), then
	// verify every acknowledged record one final time from every angle
	// the spread policy can take.
	var gs []*Gossiper
	for i := 0; i < n; i++ {
		peers := make([]MaintainerAPI, n)
		for j := 0; j < n; j++ {
			if j != i {
				peers[j] = clean[j]
			}
		}
		gs = append(gs, NewGossiper(ms[i], peers, 0))
	}
	for k := 0; k < 3; k++ {
		for _, g := range gs {
			g.Round()
		}
	}
	mu.Lock()
	total := len(ackedLId)
	mu.Unlock()
	if total < 30 {
		t.Fatalf("only %d acknowledged appends; the fault schedule starved the run", total)
	}
	for _, lid := range ackedLId {
		rec, err := reader.ReadLId(lid)
		if err != nil {
			t.Fatalf("final check: acked LId %d unreadable: %v", lid, err)
		}
		if string(rec.Body) != acked[lid] {
			t.Fatalf("final check: stale read at LId %d: got %q, want %q", lid, rec.Body, acked[lid])
		}
	}
	t.Logf("%d acked appends, %d spread reads served, %d blocked-read events across members",
		total, sumCounters(ms, func(m *Maintainer) uint64 { return m.LocalReadHits.Value() }),
		sumCounters(ms, func(m *Maintainer) uint64 { return m.LocalReadBlocks.Value() }))
}

func sumCounters(ms []*Maintainer, f func(*Maintainer) uint64) uint64 {
	var total uint64
	for _, m := range ms {
		total += f(m)
	}
	return total
}
