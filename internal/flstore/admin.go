package flstore

// The typed admin/reconfiguration surface. Admin is the context-first
// client for everything an operator (or the autoscaler's tooling) does to
// a running deployment — configuration, stats, replica status, the epoch
// journal, and epoch proposals — replacing the hand-rolled msgStats /
// msgReplicas dial-and-decode loops that used to live in cmd/logctl.
// AdminServer is the server half: the static ControllerAdmin adapter
// serves the journal straight from a Controller, while the Orchestrator
// (elastic.go) serves it with live drain/migration progress and accepts
// proposals that actually drive a switchover.

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/replica"
	"repro/internal/rpc"
)

// EpochStatus is one epoch journal entry as reported by the admin
// surface, annotated with switchover progress where the server tracks it
// (an Orchestrator does; a static deployment reports the bare journal).
type EpochStatus struct {
	// Epoch is the entry's position in the journal (0-based).
	Epoch    int    `json:"epoch"`
	FirstLId uint64 `json:"first_lid"`
	// NumMaintainers/BatchSize are the epoch's placement.
	NumMaintainers int    `json:"num_maintainers"`
	BatchSize      uint64 `json:"batch_size"`
	// MaintainerAddrs is the epoch-carried topology (empty when the epoch
	// inherits the deployment's top-level addresses).
	MaintainerAddrs []string `json:"maintainer_addrs,omitempty"`
	// Sealed reports that a later epoch supersedes this one: its owners
	// no longer assign positions.
	Sealed bool `json:"sealed"`
	// Migration progress for a sealed epoch's ranges moving to the next
	// epoch's owners: total ranges, ranges fully streamed, and records
	// migrated so far. Zero for the live epoch and on servers that do not
	// drive migration.
	RangesTotal     int    `json:"ranges_total"`
	RangesStreamed  int    `json:"ranges_streamed"`
	RecordsStreamed uint64 `json:"records_streamed"`
	MigrationDone   bool   `json:"migration_done"`
}

// RangesRemaining is RangesTotal − RangesStreamed.
func (s EpochStatus) RangesRemaining() int { return s.RangesTotal - s.RangesStreamed }

// EpochProposal asks the admin server to announce a new epoch.
type EpochProposal struct {
	// FirstLId pins the boundary; 0 lets the server pick the first
	// round-aligned boundary above every live frontier (the normal case —
	// only the server sees the frontiers race-free).
	FirstLId uint64 `json:"first_lid,omitempty"`
	// NumMaintainers is the proposed placement width (required).
	NumMaintainers int `json:"num_maintainers"`
	// BatchSize is the proposed placement's batch size; 0 keeps the
	// current epoch's.
	BatchSize uint64 `json:"batch_size,omitempty"`
	// MaintainerAddrs is the new set's topology, index-aligned with the
	// proposed placement. Servers that construct their own member set
	// (an Orchestrator with a grow factory) ignore it; journal-only
	// servers require it — announcing an epoch nobody serves would strand
	// clients.
	MaintainerAddrs []string `json:"maintainer_addrs,omitempty"`
}

// AdminServer is the server half of the admin surface. ServeAdmin
// registers it; *Orchestrator and *ControllerAdmin implement it.
type AdminServer interface {
	// Epochs reports the epoch journal with any switchover progress.
	Epochs() ([]EpochStatus, error)
	// ProposeEpoch announces (and, on an elastic server, executes) a new
	// epoch, returning its resulting status.
	ProposeEpoch(EpochProposal) (EpochStatus, error)
}

// Admin is the typed, context-first admin client. All methods take a
// context honored before the call and between retries (the underlying
// rpc.Client.Call carries no context, like AppendCtx's transport);
// retryable failures back off per the configured policy.
type Admin struct {
	c       rpc.Client
	retries int
	backoff time.Duration
}

// AdminOption configures an Admin.
type AdminOption func(*Admin)

// WithAdminRetries sets how many times a retryable admin call is retried
// (default 2).
func WithAdminRetries(n int) AdminOption {
	return func(a *Admin) { a.retries = n }
}

// WithAdminBackoff sets the pause between admin retries (default 25ms).
func WithAdminBackoff(d time.Duration) AdminOption {
	return func(a *Admin) { a.backoff = d }
}

// NewAdmin wraps an rpc.Client connected to a controller endpoint (one
// running ServeController/ServeStats/ServeReplicas/ServeAdmin) as the
// typed admin surface.
func NewAdmin(c rpc.Client, opts ...AdminOption) *Admin {
	a := &Admin{c: c, retries: 2, backoff: 25 * time.Millisecond}
	for _, opt := range opts {
		opt(a)
	}
	return a
}

// call runs one admin RPC under the retry policy. Errors come back
// through mapRemoteError so the package's taxonomy (typed sentinels,
// IsRetryable) applies uniformly to local and remote servers.
func (a *Admin) call(ctx context.Context, msg uint8, req []byte) ([]byte, error) {
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		resp, err := a.c.Call(msg, req)
		if err == nil {
			return resp, nil
		}
		err = mapRemoteError(err)
		if attempt >= a.retries || !IsRetryable(err) {
			return nil, err
		}
		if serr := sleepCtx(ctx, a.backoff); serr != nil {
			return nil, serr
		}
	}
}

// Config returns the deployment configuration (placement, topology,
// epoch journal, replication policy).
func (a *Admin) Config(ctx context.Context) (*Config, error) {
	resp, err := a.call(ctx, msgGetConfig, nil)
	if err != nil {
		return nil, err
	}
	return decodeConfig(resp)
}

// Stats returns a snapshot of the server's metrics registry.
func (a *Admin) Stats(ctx context.Context) (metrics.Snapshot, error) {
	var snap metrics.Snapshot
	resp, err := a.call(ctx, msgStats, nil)
	if err != nil {
		return snap, err
	}
	if err := json.Unmarshal(resp, &snap); err != nil {
		return snap, fmt.Errorf("flstore: decoding stats: %w", err)
	}
	return snap, nil
}

// Replicas returns the replica-group status view.
func (a *Admin) Replicas(ctx context.Context) (*replica.ClusterStatus, error) {
	resp, err := a.call(ctx, msgReplicas, nil)
	if err != nil {
		return nil, err
	}
	st := &replica.ClusterStatus{}
	if err := json.Unmarshal(resp, st); err != nil {
		return nil, fmt.Errorf("flstore: decoding replica status: %w", err)
	}
	return st, nil
}

// Epochs returns the epoch journal with per-epoch switchover progress.
func (a *Admin) Epochs(ctx context.Context) ([]EpochStatus, error) {
	resp, err := a.call(ctx, msgAdminEpochs, nil)
	if err != nil {
		return nil, err
	}
	var out []EpochStatus
	if err := json.Unmarshal(resp, &out); err != nil {
		return nil, fmt.Errorf("flstore: decoding epochs: %w", err)
	}
	return out, nil
}

// ProposeEpoch submits an epoch proposal and returns the new epoch's
// status. On an elastic server this drives the full switchover (seal,
// drain, pad, migration kick-off) before returning.
func (a *Admin) ProposeEpoch(ctx context.Context, prop EpochProposal) (EpochStatus, error) {
	req, err := json.Marshal(prop)
	if err != nil {
		return EpochStatus{}, err
	}
	resp, err := a.call(ctx, msgAdminPropose, req)
	if err != nil {
		return EpochStatus{}, err
	}
	var st EpochStatus
	if err := json.Unmarshal(resp, &st); err != nil {
		return st, fmt.Errorf("flstore: decoding epoch status: %w", err)
	}
	return st, nil
}

// ServeAdmin registers the epoch-journal and proposal handlers on srv.
// Admin payloads are JSON like the stats/replicas views: admin traffic is
// rare control-plane traffic, and the self-describing encoding keeps the
// surface evolvable without wire-format bumps.
func ServeAdmin(srv *rpc.Server, a AdminServer) {
	srv.Handle(msgAdminEpochs, func(p []byte) ([]byte, error) {
		eps, err := a.Epochs()
		if err != nil {
			return nil, err
		}
		return json.Marshal(eps)
	})
	srv.Handle(msgAdminPropose, func(p []byte) ([]byte, error) {
		var prop EpochProposal
		if err := json.Unmarshal(p, &prop); err != nil {
			return nil, fmt.Errorf("flstore: decoding epoch proposal: %w", err)
		}
		st, err := a.ProposeEpoch(prop)
		if err != nil {
			return nil, err
		}
		return json.Marshal(st)
	})
}

// ControllerAdmin serves the admin surface straight from a Controller for
// static deployments (no orchestrator): Epochs is the bare journal, and
// ProposeEpoch only journals operator-supplied topology — the operator
// must already be running the new maintainers (constructed with the
// boundary as their FirstLId) at the given addresses.
type ControllerAdmin struct {
	Ctrl *Controller
}

// Epochs implements AdminServer from the controller's journal.
func (ca *ControllerAdmin) Epochs() ([]EpochStatus, error) {
	cfg, err := ca.Ctrl.GetConfig()
	if err != nil {
		return nil, err
	}
	return epochStatuses(cfg), nil
}

// epochStatuses renders a config's journal as bare statuses (no
// migration progress).
func epochStatuses(cfg *Config) []EpochStatus {
	out := make([]EpochStatus, len(cfg.Epochs))
	for i, e := range cfg.Epochs {
		out[i] = EpochStatus{
			Epoch:           i,
			FirstLId:        e.FirstLId,
			NumMaintainers:  e.Placement.NumMaintainers,
			BatchSize:       e.Placement.BatchSize,
			MaintainerAddrs: e.MaintainerAddrs,
			Sealed:          i < len(cfg.Epochs)-1,
		}
	}
	return out
}

// ProposeEpoch implements AdminServer: journal-only announcement of
// operator-provided topology.
func (ca *ControllerAdmin) ProposeEpoch(prop EpochProposal) (EpochStatus, error) {
	if prop.FirstLId == 0 {
		return EpochStatus{}, fmt.Errorf("flstore: journal-only server needs an explicit boundary (first_lid)")
	}
	if len(prop.MaintainerAddrs) == 0 {
		return EpochStatus{}, fmt.Errorf("flstore: journal-only server needs the new epoch's maintainer addrs")
	}
	cfg, err := ca.Ctrl.GetConfig()
	if err != nil {
		return EpochStatus{}, err
	}
	p := Placement{NumMaintainers: prop.NumMaintainers, BatchSize: prop.BatchSize}
	if p.BatchSize == 0 {
		p.BatchSize = cfg.Placement.BatchSize
	}
	if err := ca.Ctrl.AnnounceEpochTopology(prop.FirstLId, p, prop.MaintainerAddrs); err != nil {
		return EpochStatus{}, err
	}
	cfg, err = ca.Ctrl.GetConfig()
	if err != nil {
		return EpochStatus{}, err
	}
	sts := epochStatuses(cfg)
	return sts[len(sts)-1], nil
}
