package flstore

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
)

// TestBacklogAdmission fills the maintainer's out-of-order slot buffer past
// MaxIngressBacklog and verifies client-facing appends are rejected with a
// retryable, hint-carrying OverloadError — while the assigned-record path
// (which drains holes) stays exempt, and draining reopens admission.
func TestBacklogAdmission(t *testing.T) {
	p := Placement{NumMaintainers: 1, BatchSize: 8}
	m, err := NewMaintainer(MaintainerConfig{
		Index:             0,
		Placement:         p,
		MaxIngressBacklog: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	// An assigned record for slot 2 with slots 0–1 empty parks as backlog —
	// and must be admitted regardless of the bound (it is what fills holes).
	if err := m.AppendAssigned([]*core.Record{{LId: 3, Body: []byte("c")}}); err != nil {
		t.Fatal(err)
	}
	if got := m.IngressBacklog(); got != 1 {
		t.Fatalf("IngressBacklog = %d, want 1", got)
	}

	// A client append of 2 records would put the backlog at 3 > 2: rejected.
	_, err = m.Append([]*core.Record{{Body: []byte("x")}, {Body: []byte("y")}})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("append over backlog bound = %v, want ErrOverloaded", err)
	}
	if !IsRetryable(err) {
		t.Fatalf("backlog rejection %v not retryable", err)
	}
	if d := RetryAfter(err); d < time.Millisecond {
		t.Fatalf("backlog rejection hint = %v, want >= 1ms", d)
	}
	if m.BacklogRejects.Value() == 0 {
		t.Error("BacklogRejects counter not incremented")
	}

	// Filling the hole drains the buffered slot; admission reopens.
	if err := m.AppendAssigned([]*core.Record{
		{LId: 1, Body: []byte("a")}, {LId: 2, Body: []byte("b")},
	}); err != nil {
		t.Fatal(err)
	}
	if got := m.IngressBacklog(); got != 0 {
		t.Fatalf("IngressBacklog after drain = %d, want 0", got)
	}
	if _, err := m.Append([]*core.Record{{Body: []byte("x")}, {Body: []byte("y")}}); err != nil {
		t.Fatalf("append after drain = %v, want nil", err)
	}
}

// TestBacklogDisabled pins the negative-bound escape hatch: admission never
// rejects on backlog depth.
func TestBacklogDisabled(t *testing.T) {
	p := Placement{NumMaintainers: 1, BatchSize: 8}
	m, err := NewMaintainer(MaintainerConfig{
		Index:             0,
		Placement:         p,
		MaxIngressBacklog: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Park a deep backlog of out-of-order slots.
	for lid := uint64(2); lid <= 6; lid++ {
		if err := m.AppendAssigned([]*core.Record{{LId: lid, Body: []byte("z")}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Append([]*core.Record{{Body: []byte("x")}}); err != nil {
		t.Fatalf("append with backlog bound disabled = %v, want nil", err)
	}
}
