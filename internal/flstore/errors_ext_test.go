package flstore_test

// Taxonomy tests live outside the package so they can cover the
// cross-package contract: chariots' ingress-shed error classifying through
// flstore.IsRetryable / RetryAfter without an import cycle.

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/chariots"
	"repro/internal/core"
	"repro/internal/flstore"
	"repro/internal/ratelimit"
	"repro/internal/replica"
	"repro/internal/rpc"
)

func TestIsRetryableClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"overloaded sentinel", flstore.ErrOverloaded, true},
		{"typed overload", &flstore.OverloadError{RetryAfter: time.Millisecond}, true},
		{"wrapped overload", fmt.Errorf("append: %w", flstore.ErrOverloaded), true},
		{"order backlog", flstore.ErrOrderBacklog, true},
		{"past head", core.ErrPastHead, true},
		{"insufficient acks", replica.ErrInsufficientAcks, true},
		{"chariots saturation", &chariots.SaturationError{RetryAfter: time.Millisecond}, true},
		{"wrong maintainer", flstore.ErrWrongMaintainer, false},
		{"not replica", flstore.ErrNotReplica, false},
		{"no such record", core.ErrNoSuchRecord, false},
		{"plain error", errors.New("boom"), false},
	}
	for _, tc := range cases {
		if got := flstore.IsRetryable(tc.err); got != tc.want {
			t.Errorf("IsRetryable(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestRetryAfterExtraction(t *testing.T) {
	if d := flstore.RetryAfter(&flstore.OverloadError{RetryAfter: 5 * time.Millisecond}); d != 5*time.Millisecond {
		t.Errorf("typed hint = %v, want 5ms", d)
	}
	wrapped := fmt.Errorf("append: %w", &chariots.SaturationError{RetryAfter: 3 * time.Millisecond})
	if d := flstore.RetryAfter(wrapped); d != 3*time.Millisecond {
		t.Errorf("wrapped hint = %v, want 3ms", d)
	}
	if d := flstore.RetryAfter(flstore.ErrOverloaded); d != 0 {
		t.Errorf("bare sentinel hint = %v, want 0", d)
	}
	if d := flstore.RetryAfter(nil); d != 0 {
		t.Errorf("nil hint = %v, want 0", d)
	}
}

// TestOverloadHintRoundTripRPC drives an overload rejection through the
// real wire path: maintainer → rpc server → client stub. The typed error
// must come back retryable with its hint intact.
func TestOverloadHintRoundTripRPC(t *testing.T) {
	p := flstore.Placement{NumMaintainers: 1, BatchSize: 100}
	m, err := flstore.NewMaintainer(flstore.MaintainerConfig{
		Index:     0,
		Placement: p,
		Limiter:   ratelimit.New(10, 1), // one-record budget, slow refill
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := rpc.NewServer()
	flstore.ServeMaintainer(srv, m)
	api := flstore.NewMaintainerClient(rpc.NewLocalClient(srv))

	// Burst past the one-token budget until the limiter rejects.
	var rejection error
	for i := 0; i < 10; i++ {
		if _, err := api.Append([]*core.Record{{Body: []byte("x")}}); err != nil {
			rejection = err
			break
		}
	}
	if rejection == nil {
		t.Fatal("no overload rejection after bursting a 1-token budget")
	}
	if !errors.Is(rejection, flstore.ErrOverloaded) {
		t.Fatalf("rejection = %v, want ErrOverloaded", rejection)
	}
	if !flstore.IsRetryable(rejection) {
		t.Fatalf("rejection %v not classified retryable", rejection)
	}
	if d := flstore.RetryAfter(rejection); d <= 0 {
		t.Fatalf("RetryAfter = %v, want > 0 (hint lost across the wire)", d)
	}
}

func TestRetryHelper(t *testing.T) {
	attempts := 0
	v, err := flstore.Retry(5, func() (int, error) {
		attempts++
		if attempts < 3 {
			return 0, &flstore.OverloadError{RetryAfter: time.Microsecond}
		}
		return 42, nil
	})
	if err != nil || v != 42 || attempts != 3 {
		t.Fatalf("Retry = %d, %v after %d attempts; want 42, nil, 3", v, err, attempts)
	}

	// Non-retryable errors surface immediately.
	attempts = 0
	_, err = flstore.Retry(5, func() (int, error) {
		attempts++
		return 0, flstore.ErrWrongMaintainer
	})
	if !errors.Is(err, flstore.ErrWrongMaintainer) || attempts != 1 {
		t.Fatalf("Retry on fatal = %v after %d attempts; want ErrWrongMaintainer, 1", err, attempts)
	}

	// Retries exhausted: the last error surfaces.
	attempts = 0
	_, err = flstore.Retry(2, func() (int, error) {
		attempts++
		return 0, &flstore.OverloadError{}
	})
	if !errors.Is(err, flstore.ErrOverloaded) || attempts != 3 {
		t.Fatalf("Retry exhausted = %v after %d attempts; want ErrOverloaded, 3", err, attempts)
	}
}
