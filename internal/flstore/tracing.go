package flstore

import (
	"repro/internal/core"
	"repro/internal/trace"
)

// Trace plumbing shared by the maintainer serving paths and the RPC
// adapters. A batch shares its pipeline cost (one assignment, one store
// write, one fan-out), so one context — the first sampled record's —
// stands for the whole batch; finding it is one flag test per record and
// no allocation, which keeps the untraced hot path inside its alloc
// budget.

// batchTrace returns the first sampled record's trace context, or the
// zero Ctx for an untraced batch.
func batchTrace(recs []*core.Record) trace.Ctx {
	for _, r := range recs {
		if r.Trace.Sampled() {
			return r.Trace
		}
	}
	return trace.Ctx{}
}

// stampRecords restamps decoded records with the envelope's trace
// context so in-process stages downstream of a wire hop see the caller's
// trace (the codec does not serialize Record.Trace). No-op for untraced
// requests.
func stampRecords(recs []*core.Record, tc *trace.Ctx) {
	if !tc.Sampled() {
		return
	}
	for _, r := range recs {
		r.Trace = *tc
	}
}

// appendOutcome classifies an append error for span annotation:
// retryable admission rejections are "overload", everything else
// "error".
func appendOutcome(err error) string {
	switch {
	case err == nil:
		return ""
	case IsRetryable(err):
		return "overload"
	default:
		return "error"
	}
}
