package flstore

// Client-side adaptive pacing for the append path. A maintainer that
// rejects a batch tells the client when to come back (OverloadError's
// RetryAfter, carried across the wire by the rpc layer); the pacer turns
// that per-rejection signal into a sustained send rate with AIMD dynamics:
// halve the allowance on overload, creep it back up additively on success.
// Until the first overload the pacer is inert — a client under a healthy
// cluster pays one mutex acquisition per batch and no delays.

import (
	"context"
	"sync"
	"time"
)

// pacer is a token-bucket rate governor whose rate is adapted by
// overload/success feedback. A nil *pacer is valid and imposes no pacing.
type pacer struct {
	mu     sync.Mutex
	rate   float64 // records/sec allowance; 0 until the first overload
	tokens float64
	last   time.Time
}

// paceFloor is the lowest allowance AIMD decrease can reach: even a
// persistently saturated server is probed at least this often.
const paceFloor = 1.0 // records/sec

// paceIncrement is the additive-increase step (records/sec) applied per
// successful batch: linear probing back toward the server's capacity after
// a multiplicative cut.
const paceIncrement = 16.0

// delay returns how long the caller should wait before sending n records
// under the current allowance (0 when unthrottled or within budget).
func (p *pacer) delay(n int) time.Duration {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rate <= 0 {
		return 0
	}
	now := time.Now()
	p.tokens += now.Sub(p.last).Seconds() * p.rate
	if burst := p.rate / 10; p.tokens > burst {
		p.tokens = burst
	}
	p.last = now
	p.tokens -= float64(n)
	if p.tokens >= 0 {
		return 0
	}
	return time.Duration(-p.tokens / p.rate * float64(time.Second))
}

// onSuccess applies additive increase after a batch was admitted.
func (p *pacer) onSuccess(n int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	if p.rate > 0 {
		p.rate += paceIncrement
	}
	p.mu.Unlock()
}

// onOverload applies multiplicative decrease after a rejection. The first
// overload seeds the allowance from the server's hint — n records were too
// many for hint's worth of refill, so n/hint is the server's implied
// admission rate.
func (p *pacer) onOverload(n int, hint time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	switch {
	case p.rate <= 0 && hint > 0:
		p.rate = float64(n) / hint.Seconds()
	case p.rate <= 0:
		p.rate = 1000 // no hint: start conservatively high and let AIMD find the level
	default:
		p.rate /= 2
	}
	if p.rate < paceFloor {
		p.rate = paceFloor
	}
	p.tokens = 0
	p.last = time.Now()
}

// currentRate reports the pacer's allowance (0 = unthrottled), for
// instrumentation and tests.
func (p *pacer) currentRate() float64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rate
}

// PaceRate exposes the client's current AIMD allowance in records/sec
// (0 when pacing is disabled or no overload has been observed yet).
func (c *Client) PaceRate() float64 { return c.pace.currentRate() }

// sleepCtx sleeps for d or until ctx is cancelled, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
