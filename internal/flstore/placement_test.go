package flstore

import (
	"testing"
	"testing/quick"
)

func TestPlacementValidate(t *testing.T) {
	if err := (Placement{NumMaintainers: 3, BatchSize: 1000}).Validate(); err != nil {
		t.Errorf("valid placement rejected: %v", err)
	}
	if err := (Placement{NumMaintainers: 0, BatchSize: 1}).Validate(); err == nil {
		t.Error("zero maintainers accepted")
	}
	if err := (Placement{NumMaintainers: 1, BatchSize: 0}).Validate(); err == nil {
		t.Error("zero batch accepted")
	}
}

// TestPlacementFigure4 checks the exact layout the paper draws: three
// maintainers, batch size 1000; maintainer A owns 1-1000, 3001-4000,
// 6001-7000; B owns 1001-2000, 4001-5000, 7001-8000; C the rest.
func TestPlacementFigure4(t *testing.T) {
	p := Placement{NumMaintainers: 3, BatchSize: 1000}
	cases := []struct {
		lid   uint64
		owner int
	}{
		{1, 0}, {1000, 0}, {3001, 0}, {4000, 0}, {6001, 0}, {7000, 0},
		{1001, 1}, {2000, 1}, {4001, 1}, {5000, 1}, {7001, 1}, {8000, 1},
		{2001, 2}, {3000, 2}, {5001, 2}, {6000, 2}, {8001, 2}, {9000, 2},
	}
	for _, tt := range cases {
		if got := p.Owner(tt.lid); got != tt.owner {
			t.Errorf("Owner(%d) = %d, want %d", tt.lid, got, tt.owner)
		}
	}
}

func TestPlacementRoundStart(t *testing.T) {
	p := Placement{NumMaintainers: 3, BatchSize: 1000}
	if got := p.RoundStart(0, 0); got != 1 {
		t.Errorf("RoundStart(0,0) = %d", got)
	}
	if got := p.RoundStart(1, 0); got != 1001 {
		t.Errorf("RoundStart(1,0) = %d", got)
	}
	if got := p.RoundStart(0, 1); got != 3001 {
		t.Errorf("RoundStart(0,1) = %d", got)
	}
	if got := p.RoundStart(2, 2); got != 8001 {
		t.Errorf("RoundStart(2,2) = %d", got)
	}
}

func TestPlacementSlotInverse(t *testing.T) {
	p := Placement{NumMaintainers: 4, BatchSize: 7}
	for m := 0; m < 4; m++ {
		for slot := uint64(0); slot < 100; slot++ {
			lid := p.LIdOfSlot(m, slot)
			if got := p.Owner(lid); got != m {
				t.Fatalf("Owner(LIdOfSlot(%d,%d)=%d) = %d", m, slot, lid, got)
			}
			if got := p.SlotOf(lid); got != slot {
				t.Fatalf("SlotOf(LIdOfSlot(%d,%d)=%d) = %d", m, slot, lid, got)
			}
		}
	}
}

// TestPlacementCoversAllLIds: every LId has exactly one owner, and the
// owner's slot sequence is dense: consecutive slots map to increasing LIds.
func TestPlacementCoversAllLIdsProperty(t *testing.T) {
	f := func(nm uint8, bs uint8, lidSeed uint32) bool {
		p := Placement{NumMaintainers: int(nm%8) + 1, BatchSize: uint64(bs%50) + 1}
		lid := uint64(lidSeed%100000) + 1
		m := p.Owner(lid)
		slot := p.SlotOf(lid)
		if p.LIdOfSlot(m, slot) != lid {
			return false
		}
		// Dense: next slot's LId is the next owned position, strictly
		// greater.
		return p.LIdOfSlot(m, slot+1) > lid
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestHead(t *testing.T) {
	tests := []struct {
		next []uint64
		want uint64
	}{
		{nil, 0},
		{[]uint64{1, 1001, 2001}, 0},       // nothing filled (N=3, B=1000)
		{[]uint64{1001, 1001, 2001}, 1000}, // m0 filled its first range
		{[]uint64{3001, 2001, 2001}, 2000},
		{[]uint64{3001, 2001, 3001}, 2000},
		{[]uint64{0}, 0},
	}
	for _, tt := range tests {
		if got := Head(tt.next); got != tt.want {
			t.Errorf("Head(%v) = %d, want %d", tt.next, got, tt.want)
		}
	}
}

// TestHeadNoGapsProperty: for any fill profile, every position ≤ Head is
// filled and position Head+1 is not.
func TestHeadNoGapsProperty(t *testing.T) {
	f := func(fills [3]uint16) bool {
		p := Placement{NumMaintainers: 3, BatchSize: 10}
		filled := make(map[uint64]bool)
		next := make([]uint64, 3)
		for m := 0; m < 3; m++ {
			for s := uint64(0); s < uint64(fills[m]%200); s++ {
				filled[p.LIdOfSlot(m, s)] = true
			}
			next[m] = p.LIdOfSlot(m, uint64(fills[m]%200))
		}
		h := Head(next)
		for lid := uint64(1); lid <= h; lid++ {
			if !filled[lid] {
				return false
			}
		}
		return !filled[h+1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
