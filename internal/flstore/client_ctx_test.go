package flstore_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/flstore"
)

func newCtxTestClient(t *testing.T, opts ...flstore.ClientOption) *flstore.Client {
	t.Helper()
	p := flstore.Placement{NumMaintainers: 2, BatchSize: 4}
	apis := make([]flstore.MaintainerAPI, 2)
	for i := range apis {
		m, err := flstore.NewMaintainer(flstore.MaintainerConfig{
			Index: i, Placement: p, EnforceHead: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		apis[i] = m
	}
	c, err := flstore.NewDirectClientWith(p, apis, nil, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestReadLIdCtxCancelMidWait cancels while the read is parked in its
// past-head retry loop; the call must return context.Canceled promptly
// rather than burning through the (huge) retry budget.
func TestReadLIdCtxCancelMidWait(t *testing.T) {
	c := newCtxTestClient(t, flstore.WithReadRetries(1_000_000), flstore.WithRetryBackoff(time.Millisecond))
	if _, err := c.Append([]byte("only"), nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.ReadLIdCtx(ctx, 100) // far past the head: would retry ~forever
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("cancellation took %v, want prompt return", d)
	}
}

// TestReadRangeCtxCancelled verifies a cancelled context short-circuits the
// range read (and its safety net) instead of starting round trips.
func TestReadRangeCtxCancelled(t *testing.T) {
	c := newCtxTestClient(t)
	for i := 0; i < 8; i++ {
		if _, err := c.Append([]byte("r"), nil); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.ReadRangeCtx(ctx, 1, 8); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// And the Background-wrapped legacy surface still works on the same log.
	recs, err := c.ReadRange(1, 8)
	if err != nil || len(recs) != 8 {
		t.Fatalf("ReadRange = %d recs, %v; want 8, nil", len(recs), err)
	}
}

// TestWaitHeadCtxCancelMidWait cancels while WaitHeadCtx is parked waiting
// for a head advance that never comes.
func TestWaitHeadCtxCancelMidWait(t *testing.T) {
	c := newCtxTestClient(t)
	if _, err := c.Append([]byte("one"), nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.WaitHeadCtx(ctx, 1000, 0) // unbounded wait, head stuck at 1
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("cancellation took %v, want prompt return", d)
	}
}

// TestAppendBatchCtxCancelled verifies appends respect a pre-cancelled
// context before touching the wire.
func TestAppendBatchCtxCancelled(t *testing.T) {
	c := newCtxTestClient(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.AppendBatchCtx(ctx, []*core.Record{{Body: []byte("x")}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestOptionDefaultsMatchLegacyFields pins the construction-time options to
// the documented legacy defaults so NewClientWith with no options behaves
// exactly like NewClient plus field mutation never happening.
func TestOptionDefaultsMatchLegacyFields(t *testing.T) {
	c := newCtxTestClient(t)
	if c.ReadRetries != 50 {
		t.Errorf("default ReadRetries = %d, want 50", c.ReadRetries)
	}
	if c.RetryBackoff != 2*time.Millisecond {
		t.Errorf("default RetryBackoff = %v, want 2ms", c.RetryBackoff)
	}
	if c.DisableRangeRead {
		t.Error("default DisableRangeRead = true, want false")
	}
	if c.PaceRate() != 0 {
		t.Errorf("default PaceRate = %v, want 0 (pacing off)", c.PaceRate())
	}

	opt := newCtxTestClient(t,
		flstore.WithReadRetries(7),
		flstore.WithRetryBackoff(9*time.Millisecond),
		flstore.WithRangeReadDisabled(true),
	)
	if opt.ReadRetries != 7 || opt.RetryBackoff != 9*time.Millisecond || !opt.DisableRangeRead {
		t.Errorf("options not applied: retries=%d backoff=%v disable=%v",
			opt.ReadRetries, opt.RetryBackoff, opt.DisableRangeRead)
	}
}
