package flstore

import (
	"testing"
)

func TestControllerDefaultEpoch(t *testing.T) {
	p := Placement{NumMaintainers: 3, BatchSize: 100}
	c, err := NewController(Config{Placement: p})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := c.GetConfig()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Epochs) != 1 || cfg.Epochs[0].FirstLId != 1 {
		t.Errorf("default epochs = %+v", cfg.Epochs)
	}
	if cfg.Placement != p {
		t.Errorf("placement = %+v", cfg.Placement)
	}
}

func TestControllerRejectsBadJournal(t *testing.T) {
	p := Placement{NumMaintainers: 1, BatchSize: 1}
	if _, err := NewController(Config{Placement: p, Epochs: []Epoch{{FirstLId: 5, Placement: p}}}); err == nil {
		t.Error("journal not starting at 1 accepted")
	}
	if _, err := NewController(Config{Placement: p, Epochs: []Epoch{
		{FirstLId: 1, Placement: p}, {FirstLId: 1, Placement: p},
	}}); err == nil {
		t.Error("non-increasing journal accepted")
	}
	if _, err := NewController(Config{}); err == nil {
		t.Error("invalid placement accepted")
	}
}

func TestControllerAnnounceEpoch(t *testing.T) {
	p1 := Placement{NumMaintainers: 2, BatchSize: 100}
	p2 := Placement{NumMaintainers: 4, BatchSize: 100}
	c, _ := NewController(Config{Placement: p1})
	if err := c.AnnounceEpoch(10001, p2); err != nil {
		t.Fatal(err)
	}
	if err := c.AnnounceEpoch(5000, p1); err == nil {
		t.Error("backdated epoch accepted")
	}
	cfg, _ := c.GetConfig()
	if len(cfg.Epochs) != 2 || cfg.Placement != p2 {
		t.Errorf("config after announce = %+v", cfg)
	}
}

func TestPlacementAt(t *testing.T) {
	p1 := Placement{NumMaintainers: 2, BatchSize: 100}
	p2 := Placement{NumMaintainers: 4, BatchSize: 100}
	epochs := []Epoch{{FirstLId: 1, Placement: p1}, {FirstLId: 1000, Placement: p2}}
	tests := []struct {
		lid  uint64
		want Placement
	}{
		{1, p1}, {999, p1}, {1000, p2}, {5000, p2},
	}
	for _, tt := range tests {
		got, err := PlacementAt(epochs, tt.lid)
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Errorf("PlacementAt(%d) = %+v, want %+v", tt.lid, got, tt.want)
		}
	}
	if _, err := PlacementAt(nil, 1); err == nil {
		t.Error("empty journal accepted")
	}
	if _, err := PlacementAt([]Epoch{{FirstLId: 10, Placement: p1}}, 5); err == nil {
		t.Error("LId before first epoch accepted")
	}
}

func TestControllerAddrUpdates(t *testing.T) {
	c, _ := NewController(Config{Placement: Placement{NumMaintainers: 1, BatchSize: 1}})
	c.SetMaintainerAddrs([]string{"a:1", "b:2"})
	c.SetIndexerAddrs([]string{"c:3"})
	cfg, _ := c.GetConfig()
	if len(cfg.MaintainerAddrs) != 2 || cfg.MaintainerAddrs[1] != "b:2" {
		t.Errorf("maintainer addrs = %v", cfg.MaintainerAddrs)
	}
	if len(cfg.IndexerAddrs) != 1 {
		t.Errorf("indexer addrs = %v", cfg.IndexerAddrs)
	}
	// Returned config must be a copy.
	cfg.MaintainerAddrs[0] = "mutated"
	cfg2, _ := c.GetConfig()
	if cfg2.MaintainerAddrs[0] != "a:1" {
		t.Error("GetConfig aliases controller state")
	}
}
