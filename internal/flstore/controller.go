package flstore

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Controller is the stateless control and meta-data oracle of §5.1:
// application clients poll it at session start for the addresses of the
// indexers and log maintainers, the placement parameters, and the epoch
// journal used to locate records written under older placements (§6.3).
//
// "Stateless" in the paper's sense means it holds no log data and can be
// replicated freely; here it is a small in-memory registry guarded by a
// lock, which any number of replicas could serve.
type Controller struct {
	mu  sync.RWMutex
	cfg Config
}

// NewController returns a controller serving the given configuration. The
// configuration's epoch journal is normalized: if empty, a single epoch
// starting at LId 1 with cfg.Placement is installed.
func NewController(cfg Config) (*Controller, error) {
	if err := cfg.Placement.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Epochs) == 0 {
		cfg.Epochs = []Epoch{{FirstLId: 1, Placement: cfg.Placement}}
	}
	if cfg.Epochs[0].FirstLId != 1 {
		return nil, errors.New("flstore: first epoch must start at LId 1")
	}
	for i := 1; i < len(cfg.Epochs); i++ {
		if cfg.Epochs[i].FirstLId <= cfg.Epochs[i-1].FirstLId {
			return nil, errors.New("flstore: epoch journal not strictly increasing")
		}
	}
	return &Controller{cfg: cfg}, nil
}

// GetConfig implements ControllerAPI.
func (c *Controller) GetConfig() (*Config, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	cfg := c.cfg
	cfg.MaintainerAddrs = append([]string(nil), c.cfg.MaintainerAddrs...)
	cfg.IndexerAddrs = append([]string(nil), c.cfg.IndexerAddrs...)
	cfg.Epochs = append([]Epoch(nil), c.cfg.Epochs...)
	for i := range cfg.Epochs {
		cfg.Epochs[i].MaintainerAddrs = append([]string(nil), cfg.Epochs[i].MaintainerAddrs...)
	}
	return &cfg, nil
}

// AnnounceEpochTopology appends a future-reassignment epoch (§6.3): from
// firstLId onward the log uses the new placement, served by the given
// maintainer endpoints (index-aligned with the placement; nil for
// in-process deployments whose members are wired directly). firstLId must
// exceed every existing epoch boundary — the "future mark" that gives
// batchers, queues and readers time to learn the hand-over before it
// takes effect. When addrs is non-nil the epoch journal becomes the
// topology of record: the previous epoch is stamped with the addresses it
// was serving under, so clients joining later can still reach old-epoch
// records, and the top-level address list moves to the new set.
func (c *Controller) AnnounceEpochTopology(firstLId uint64, p Placement, addrs []string) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if len(addrs) != 0 && len(addrs) != p.NumMaintainers {
		return fmt.Errorf("flstore: epoch topology has %d addrs for %d maintainers", len(addrs), p.NumMaintainers)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	last := &c.cfg.Epochs[len(c.cfg.Epochs)-1]
	if firstLId <= last.FirstLId {
		return fmt.Errorf("flstore: epoch boundary %d not after current %d", firstLId, last.FirstLId)
	}
	if len(addrs) != 0 {
		if len(last.MaintainerAddrs) == 0 {
			last.MaintainerAddrs = append([]string(nil), c.cfg.MaintainerAddrs...)
		}
		c.cfg.MaintainerAddrs = append([]string(nil), addrs...)
	}
	c.cfg.Epochs = append(c.cfg.Epochs, Epoch{
		FirstLId:        firstLId,
		Placement:       p,
		MaintainerAddrs: append([]string(nil), addrs...),
	})
	c.cfg.Placement = p
	return nil
}

// AnnounceEpoch appends a future-reassignment epoch without topology.
//
// Deprecated: use AnnounceEpochTopology (or Admin.ProposeEpoch over RPC),
// which carries the new epoch's maintainer endpoints in the journal so
// clients can route reads and writes per epoch.
func (c *Controller) AnnounceEpoch(firstLId uint64, p Placement) error {
	return c.AnnounceEpochTopology(firstLId, p, nil)
}

// SetMaintainerAddrs replaces the advertised maintainer endpoints.
//
// Deprecated: topology changes should ride the epoch journal — use
// AnnounceEpochTopology (or Admin.ProposeEpoch over RPC) so old epochs
// keep their serving addresses. This mutator only makes sense before the
// deployment serves traffic.
func (c *Controller) SetMaintainerAddrs(addrs []string) {
	c.mu.Lock()
	c.cfg.MaintainerAddrs = append([]string(nil), addrs...)
	c.mu.Unlock()
}

// SetIndexerAddrs replaces the advertised indexer endpoints.
//
// Deprecated: like SetMaintainerAddrs this mutates topology out-of-band;
// prefer wiring indexers at construction. Retained for pre-serving setup.
func (c *Controller) SetIndexerAddrs(addrs []string) {
	c.mu.Lock()
	c.cfg.IndexerAddrs = append([]string(nil), addrs...)
	c.mu.Unlock()
}

// PlacementAt returns the placement in force at the given LId according to
// an epoch journal. Readers use this to locate records written before a
// reassignment (the paper's "epoch journal" alternative to migrating old
// records, §6.3).
func PlacementAt(epochs []Epoch, lid uint64) (Placement, error) {
	if len(epochs) == 0 {
		return Placement{}, errors.New("flstore: empty epoch journal")
	}
	// Find the last epoch with FirstLId <= lid.
	i := sort.Search(len(epochs), func(i int) bool { return epochs[i].FirstLId > lid })
	if i == 0 {
		return Placement{}, fmt.Errorf("flstore: LId %d precedes first epoch", lid)
	}
	return epochs[i-1].Placement, nil
}
