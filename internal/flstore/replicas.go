package flstore

import (
	"repro/internal/replica"
)

// BuildClusterStatus assembles the replica-group standing that
// ServeReplicas ships to `logctl replicas`: for every range's group, each
// member's role, whether the frontier poll reached it, its frontier for the
// range, its catch-up lag in log positions relative to the most advanced
// group member, and — when a watermark probe is supplied — its validity
// watermark and invalidation backlog. frontier performs the poll (an
// in-process maintainer handle or an RPC client); an error marks the member
// unreachable, whose lag then reads as the whole replicated prefix — the
// worst case the catch-up protocol would have to transfer. watermark may be
// nil (pre-invalidation deployments): members then report their frontier as
// the watermark and an empty backlog. durable may be nil (volatile-store
// deployments): members then report a zero durable watermark.
func BuildClusterStatus(p Placement, layout replica.Layout, ack replica.AckPolicy,
	frontier func(member, rangeIdx int) (uint64, error),
	watermark func(member, rangeIdx int) (wm, announced uint64, err error),
	durable func(member, rangeIdx int) (uint64, error)) *replica.ClusterStatus {
	// A frontier is the range's next-unfilled LId, so its slot index is
	// exactly how many of the range's positions the member holds. The
	// announced bound is kept in the same frontier form by Invalidate, so
	// the backlog is the slot-index difference.
	slotOf := func(f uint64) uint64 {
		if f == 0 {
			return 0
		}
		return p.SlotOf(f)
	}
	st := &replica.ClusterStatus{Replication: layout.R, Ack: ack.String()}
	for ri := 0; ri < layout.N; ri++ {
		g := layout.Group(ri)
		gs := replica.GroupStatus{Range: ri}
		var maxSlot uint64
		for _, mi := range g.Members {
			ms := replica.MemberStatus{Member: mi, Role: "follower"}
			if mi == ri {
				ms.Role = "primary"
			}
			if f, err := frontier(mi, ri); err == nil {
				ms.Healthy = true
				ms.Frontier = f
				ms.ValidWatermark = f
				if s := slotOf(f); s > maxSlot {
					maxSlot = s
				}
			}
			if watermark != nil && ms.Healthy {
				if wm, ann, err := watermark(mi, ri); err == nil {
					ms.ValidWatermark = wm
					if a, w := slotOf(ann), slotOf(wm); a > w {
						ms.InvalBacklog = a - w
					}
				}
			}
			if durable != nil && ms.Healthy {
				if d, err := durable(mi, ri); err == nil {
					ms.DurableWatermark = d
				}
			}
			gs.Members = append(gs.Members, ms)
		}
		for i := range gs.Members {
			gs.Members[i].LagLIds = maxSlot - slotOf(gs.Members[i].Frontier)
		}
		st.Groups = append(st.Groups, gs)
	}
	return st
}
