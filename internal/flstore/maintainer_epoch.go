package flstore

// Maintainer-side epoch switchover mechanics (§6.3). A switchover retires
// the write authority of an old placement at a boundary LId F and hands
// every position from F up to a new placement's owners:
//
//   1. the coordinator announces the new epoch (controller journal +
//      epoch-carried topology), with F round-aligned under BOTH placements
//      and above every old frontier;
//   2. every old maintainer SealAt(F)s: hosted ranges cap their fill at
//      their slot count below F, and batches that would cross the cap are
//      rejected whole with an EpochSealedError carrying F;
//   3. after a drain window for in-flight appends, each old owner Pad()s
//      the remainder of its own range below F with tagged seal records, so
//      the old epoch's prefix is dense and its head lands exactly at F−1 —
//      which is where the new member set's head starts;
//   4. the old ranges migrate asynchronously to the new owners
//      (SetLegacy + IngestLegacy, fed by PullRange), while the epoch
//      journal keeps reads routed to the old members until retirement.
//
// The Orchestrator in elastic.go drives the sequence.

import (
	"errors"
	"fmt"

	"repro/internal/core"
)

// SealTagKey tags the filler records Pad writes below an epoch boundary.
// Seal records carry no application payload; readers that iterate a range
// spanning a switchover can skip them by tag. (Dotted, so the key can
// never collide with a metric family name.)
const SealTagKey = "log.seal"

// SealAt seals this maintainer's epoch at boundary firstLId: every hosted
// range caps its fill at its slot count below the boundary, and appends
// that would cross a cap fail with an EpochSealedError naming the
// boundary. The boundary must be round-aligned under this placement (so
// padding can close every range exactly at it) and at or above every
// hosted fill frontier. Idempotent for the same boundary.
func (m *Maintainer) SealAt(firstLId uint64) error {
	if firstLId <= 1 {
		return fmt.Errorf("flstore: seal boundary %d is not a valid epoch start", firstLId)
	}
	if rl := uint64(m.cfg.Placement.NumMaintainers) * m.cfg.Placement.BatchSize; (firstLId-1)%rl != 0 {
		return fmt.Errorf("flstore: seal boundary %d is not round-aligned (round length %d)", firstLId, rl)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.sealLId != 0 {
		if m.sealLId == firstLId {
			return nil
		}
		return fmt.Errorf("flstore: already sealed at %d, cannot reseal at %d", m.sealLId, firstLId)
	}
	caps := make(map[int]uint64, len(m.hosted))
	for r, st := range m.hosted {
		cap := slotsBelowP(m.cfg.Placement, r, firstLId)
		if st.filled > cap {
			return fmt.Errorf("flstore: seal boundary %d is below range %d's frontier (%d > %d slots)",
				firstLId, r, st.filled, cap)
		}
		caps[r] = cap
	}
	m.sealLId = firstLId
	m.sealCaps = caps
	return nil
}

// SealedAt returns the epoch boundary this maintainer is sealed at, or 0
// when unsealed.
func (m *Maintainer) SealedAt() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sealLId
}

// Pad fills the remainder of this maintainer's own range below the sealed
// boundary with seal records (TOId = LId, tagged SealTagKey), bypassing
// the seal check — it IS the sealing protocol's final write. Records that
// were assigned upstream and still sit in the out-of-order buffer keep
// their slots; only genuinely empty slots get fillers. After Pad the own
// range's frontier is exactly the boundary, so once every old owner has
// padded, the old epoch's head is F−1 with no gap below it. Returns the
// records written (for replica fan-out when R>1); nil when the range was
// already full.
func (m *Maintainer) Pad() ([]*core.Record, error) {
	m.mu.Lock()
	if m.sealLId == 0 {
		m.mu.Unlock()
		return nil, errors.New("flstore: Pad before SealAt")
	}
	rangeIdx := m.cfg.Index
	st := m.hosted[rangeIdx]
	cap := m.sealCaps[rangeIdx]
	if st.filled >= cap {
		m.mu.Unlock()
		return nil, nil
	}
	startSlot := st.filled
	lids := make([]uint64, int(cap-startSlot))
	m.cfg.Placement.LIdsOfSlots(rangeIdx, startSlot, lids)
	recs := make([]*core.Record, len(lids))
	for i, lid := range lids {
		slot := startSlot + uint64(i)
		if rs, ok := st.pending[slot]; ok {
			// An upstream-assigned record raced the seal: it owns the
			// slot, the pad only closes the gaps around it.
			recs[i] = rs[0]
			delete(st.pending, slot)
			m.pendingCount--
			continue
		}
		recs[i] = &core.Record{
			LId:  lid,
			TOId: lid,
			Tags: []core.Tag{{Key: SealTagKey, Value: "1"}},
		}
	}
	st.filled = cap
	m.advanceNextLocked(rangeIdx, st)
	m.mu.Unlock()

	if err := m.store.AppendBatch(recs); err != nil {
		return nil, err
	}
	m.markDurable(rangeIdx, startSlot, cap)
	m.cacheAppended(recs)
	m.Appended.Add(uint64(len(recs)))
	return recs, nil
}

// legacyState tracks previous-epoch ranges migrated onto a new-epoch
// maintainer: positions below cfg.FirstLId, laid out under the OLD
// placement's geometry, ingested densely per old range.
type legacyState struct {
	p      Placement // the previous epoch's placement
	bound  uint64    // the epoch boundary; legacy positions are < bound
	ranges map[int]*legacyRange
}

// legacyRange is one old range's migration state.
type legacyRange struct {
	// filled is the dense slot frontier under the legacy placement.
	filled uint64
	// target is the range's total slot count below the boundary; the
	// migration is complete when filled reaches it.
	target uint64
	// pending buffers records that arrived ahead of the dense frontier.
	pending map[uint64]*core.Record
}

// SetLegacy declares which previous-epoch ranges this maintainer is the
// migration target for, under the previous placement p. Any prefix
// already in the store (a restart mid-migration) is recovered, so
// re-driving the migration is idempotent. Must be called on a maintainer
// whose epoch starts past LId 1, at most once.
func (m *Maintainer) SetLegacy(p Placement, ranges []int) error {
	if err := p.Validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cfg.FirstLId <= 1 {
		return errors.New("flstore: SetLegacy on an epoch-0 maintainer")
	}
	if m.legacy != nil {
		return errors.New("flstore: legacy ranges already configured")
	}
	ls := &legacyState{
		p:      p,
		bound:  m.cfg.FirstLId,
		ranges: make(map[int]*legacyRange, len(ranges)),
	}
	for _, r := range ranges {
		if r < 0 || r >= p.NumMaintainers {
			return fmt.Errorf("flstore: legacy range %d out of range [0,%d)", r, p.NumMaintainers)
		}
		ls.ranges[r] = &legacyRange{
			target:  slotsBelowP(p, r, ls.bound),
			pending: make(map[uint64]*core.Record),
		}
	}
	if max := m.store.MaxLId(); max > 0 {
		seen := make(map[int]map[uint64]bool)
		err := m.store.Scan(1, ls.bound-1, func(rec *core.Record) bool {
			ri := p.Owner(rec.LId)
			if _, ok := ls.ranges[ri]; ok {
				if seen[ri] == nil {
					seen[ri] = make(map[uint64]bool)
				}
				seen[ri][p.SlotOf(rec.LId)] = true
			}
			return true
		})
		if err != nil {
			return fmt.Errorf("flstore: recovering legacy frontiers: %w", err)
		}
		for ri, slots := range seen {
			lr := ls.ranges[ri]
			for slots[lr.filled] {
				lr.filled++
			}
		}
	}
	m.legacy = ls
	return nil
}

// IngestLegacy ingests migrated previous-epoch records. Like
// ReplicaAppend it is idempotent (records at or below the dense legacy
// frontier, and duplicates of buffered slots, are silently skipped) and
// only stores the contiguous prefix, buffering the rest — so a migration
// stream that fails over to a different source mid-range is harmless.
func (m *Maintainer) IngestLegacy(recs []*core.Record) error {
	if len(recs) == 0 {
		return nil
	}
	m.mu.Lock()
	ls := m.legacy
	if ls == nil {
		m.mu.Unlock()
		return errors.New("flstore: IngestLegacy without SetLegacy")
	}
	touched := make(map[int]*legacyRange)
	for _, r := range recs {
		if r.LId == 0 || r.LId >= ls.bound {
			m.mu.Unlock()
			return fmt.Errorf("flstore: IngestLegacy LId %d outside legacy epoch [1,%d)", r.LId, ls.bound)
		}
		ri := ls.p.Owner(r.LId)
		lr, ok := ls.ranges[ri]
		if !ok {
			m.mu.Unlock()
			return fmt.Errorf("%w: legacy range %d at maintainer %d", ErrNotReplica, ri, m.cfg.Index)
		}
		slot := ls.p.SlotOf(r.LId)
		if slot < lr.filled {
			continue // already migrated
		}
		if _, dup := lr.pending[slot]; dup {
			continue
		}
		lr.pending[slot] = r
		touched[ri] = lr
	}
	var ready []*core.Record
	for _, lr := range touched {
		for {
			r, ok := lr.pending[lr.filled]
			if !ok {
				break
			}
			ready = append(ready, r)
			delete(lr.pending, lr.filled)
			lr.filled++
		}
	}
	m.mu.Unlock()

	if len(ready) == 0 {
		return nil
	}
	return m.store.AppendBatch(ready)
}

// LegacyFrontier returns the migration cursor for a previous-epoch range:
// the next legacy LId this maintainer still needs (frontier form under
// the legacy placement) and whether the range is fully migrated.
func (m *Maintainer) LegacyFrontier(rangeIdx int) (uint64, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ls := m.legacy
	if ls == nil {
		return 0, false, errors.New("flstore: no legacy ranges configured")
	}
	lr, ok := ls.ranges[rangeIdx]
	if !ok {
		return 0, false, fmt.Errorf("%w: legacy range %d at maintainer %d", ErrNotReplica, rangeIdx, m.cfg.Index)
	}
	return ls.p.LIdOfSlot(rangeIdx, lr.filled), lr.filled >= lr.target, nil
}

// legacyRead serves a position below the epoch boundary from the migrated
// copy. Positions of legacy ranges this maintainer is not the migration
// target for keep the wrong-maintainer semantics (the epoch journal
// routes them to the old members until retirement).
func (m *Maintainer) legacyRead(lid uint64) (*core.Record, error) {
	m.mu.Lock()
	ls := m.legacy
	hosted := false
	if ls != nil {
		_, hosted = ls.ranges[ls.p.Owner(lid)]
	}
	m.mu.Unlock()
	if !hosted {
		return nil, fmt.Errorf("%w: %d", ErrWrongMaintainer, lid)
	}
	rec, err := m.store.Get(lid)
	if err == nil {
		m.LocalReadHits.Inc()
	}
	return rec, err
}
