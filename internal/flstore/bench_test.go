package flstore

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/workload"
)

// BenchmarkMaintainerAppend measures the raw (unlimited) post-assignment
// append path: LId assignment + in-memory persistence.
func BenchmarkMaintainerAppend(b *testing.B) {
	m, err := NewMaintainer(MaintainerConfig{
		Index:     0,
		Placement: Placement{NumMaintainers: 1, BatchSize: 1000},
	})
	if err != nil {
		b.Fatal(err)
	}
	body := workload.NewBody(512, 1)
	b.ReportAllocs()
	b.SetBytes(512)
	for i := 0; i < b.N; i++ {
		if _, err := m.Append([]*core.Record{{Body: body}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMaintainerAppendBatch amortizes the call across batch sizes.
func BenchmarkMaintainerAppendBatch(b *testing.B) {
	for _, batch := range []int{16, 256} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			m, _ := NewMaintainer(MaintainerConfig{
				Index:     0,
				Placement: Placement{NumMaintainers: 1, BatchSize: 1000},
			})
			body := workload.NewBody(512, 1)
			b.ReportAllocs()
			b.SetBytes(int64(512 * batch))
			for i := 0; i < b.N; i++ {
				recs := make([]*core.Record, batch)
				for j := range recs {
					recs[j] = &core.Record{Body: body}
				}
				if _, err := m.Append(recs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPlacementOwner measures the pure ownership math every router
// runs per record.
func BenchmarkPlacementOwner(b *testing.B) {
	p := Placement{NumMaintainers: 10, BatchSize: 1000}
	var sink atomic.Uint64
	for i := 0; i < b.N; i++ {
		sink.Store(uint64(p.Owner(uint64(i + 1))))
	}
}

// BenchmarkIndexerPostLookup measures the tag index hot paths.
func BenchmarkIndexerPostLookup(b *testing.B) {
	ix := NewIndexer(nil)
	for i := uint64(1); i <= 100_000; i++ {
		ix.Post([]Posting{{Key: fmt.Sprintf("k%d", i%100), Value: "v", LId: i}})
	}
	b.Run("Post", func(b *testing.B) {
		b.ReportAllocs()
		lid := uint64(200_000)
		for i := 0; i < b.N; i++ {
			lid++
			ix.Post([]Posting{{Key: "k1", Value: "v", LId: lid}})
		}
	})
	b.Run("LookupMostRecent", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ix.Lookup(LookupQuery{Key: "k1", MostRecent: true, Limit: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAppendOverTCP measures the full RPC append path (client →
// loopback TCP → maintainer), the deployment configuration of cmd/flstore.
func BenchmarkAppendOverTCP(b *testing.B) {
	p := Placement{NumMaintainers: 1, BatchSize: 1000}
	m, _ := NewMaintainer(MaintainerConfig{Index: 0, Placement: p})
	srv := newBenchServer(b, m)
	client, err := NewDirectClient(p, []MaintainerAPI{srv}, nil)
	if err != nil {
		b.Fatal(err)
	}
	body := workload.NewBody(512, 1)
	b.ReportAllocs()
	b.SetBytes(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Append(body, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// newBenchServer exposes m over loopback TCP and returns a dialed
// MaintainerAPI, with cleanup registered on b.
func newBenchServer(b *testing.B, m *Maintainer) MaintainerAPI {
	b.Helper()
	srv := rpc.NewServer()
	ServeMaintainer(srv, m)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	conn, err := rpc.Dial(addr.String())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { conn.Close() })
	return NewMaintainerClient(conn)
}
