package flstore

import (
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/rpc"
)

// TestStatsRoundTrip verifies the controller-side stats RPC: a registry
// populated by a serving maintainer survives the JSON round trip with
// values, histogram buckets, and labels intact — what `logctl stats` sees
// is what the server measured.
func TestStatsRoundTrip(t *testing.T) {
	reg := metrics.NewRegistry()
	m, err := NewMaintainer(MaintainerConfig{
		Placement: Placement{NumMaintainers: 1, BatchSize: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	m.EnableMetrics(reg)

	const n = 10
	for i := 0; i < n; i++ {
		if _, err := m.Append([]*core.Record{{Body: []byte("x")}}); err != nil {
			t.Fatal(err)
		}
	}

	srv := rpc.NewServer()
	ServeStats(srv, reg)
	c := rpc.NewLocalClient(srv)
	defer c.Close()

	snap, err := FetchStats(c)
	if err != nil {
		t.Fatal(err)
	}
	lbl := map[string]string{"maintainer": "0"}
	if s := snap.Find("flstore_appends_total", lbl); s == nil || s.Value != n {
		t.Errorf("appends_total = %+v, want %d", s, n)
	}
	if s := snap.Find("flstore_head_lid", lbl); s == nil || s.Value != n {
		t.Errorf("head_lid = %+v, want %d", s, n)
	}
	h := snap.Find("flstore_append_seconds", lbl)
	if h == nil || h.Kind != "histogram" {
		t.Fatalf("append_seconds = %+v, want histogram", h)
	}
	if h.Count != n {
		t.Errorf("append latency count = %d, want %d", h.Count, n)
	}
	if q := h.Quantile(0.99); q <= 0 {
		t.Errorf("p99 = %v, want > 0", q)
	}
}
