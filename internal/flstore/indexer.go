package flstore

import (
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/ratelimit"
)

// Indexer is one partition of the distributed index of §5.3. Tag keys are
// hash-partitioned across indexers (IndexerFor); each indexer stores, per
// key, the posting list of (value, LId) pairs sorted by LId, and answers
// lookups with optional value predicates, LId bounds, and most-recent-N
// semantics.
type Indexer struct {
	mu       sync.RWMutex
	postings map[string][]Posting // per key, ascending LId
	limiter  *ratelimit.Limiter
}

// NewIndexer returns an empty indexer. limiter models the machine's
// capacity (nil = unlimited).
func NewIndexer(limiter *ratelimit.Limiter) *Indexer {
	return &Indexer{postings: make(map[string][]Posting), limiter: limiter}
}

// Post implements IndexerAPI.
func (ix *Indexer) Post(entries []Posting) error {
	if len(entries) == 0 {
		return nil
	}
	if !ix.limiter.Allow(len(entries)) {
		return ErrOverloaded
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, e := range entries {
		list := ix.postings[e.Key]
		// Fast path: appends usually arrive in ascending LId order.
		if n := len(list); n == 0 || list[n-1].LId < e.LId {
			ix.postings[e.Key] = append(list, e)
			continue
		}
		// Out-of-order insert (different maintainers progress at
		// different speeds): binary-insert to keep the list sorted.
		i := sort.Search(len(list), func(i int) bool { return list[i].LId >= e.LId })
		if i < len(list) && list[i].LId == e.LId {
			continue // duplicate posting; idempotent
		}
		list = append(list, Posting{})
		copy(list[i+1:], list[i:])
		list[i] = e
		ix.postings[e.Key] = list
	}
	return nil
}

// Lookup implements IndexerAPI.
func (ix *Indexer) Lookup(q LookupQuery) ([]uint64, error) {
	ix.mu.RLock()
	list := ix.postings[q.Key]
	// Copy under lock; filtering happens outside.
	window := make([]Posting, len(list))
	copy(window, list)
	ix.mu.RUnlock()

	var lids []uint64
	match := func(p Posting) bool {
		if q.MaxLIdExclusive != 0 && p.LId >= q.MaxLIdExclusive {
			return false
		}
		if q.Cmp != core.CmpAny {
			probe := core.Record{Tags: []core.Tag{{Key: q.Key, Value: p.Value}}}
			rule := core.Rule{TagKey: q.Key, TagCmp: q.Cmp, TagValue: q.Value}
			if !rule.Match(&probe) {
				return false
			}
		}
		return true
	}
	if q.MostRecent {
		for i := len(window) - 1; i >= 0; i-- {
			if match(window[i]) {
				lids = append(lids, window[i].LId)
				if q.Limit > 0 && len(lids) == q.Limit {
					break
				}
			}
		}
	} else {
		for _, p := range window {
			if match(p) {
				lids = append(lids, p.LId)
				if q.Limit > 0 && len(lids) == q.Limit {
					break
				}
			}
		}
	}
	return lids, nil
}

// Keys returns the number of distinct tag keys indexed (introspection).
func (ix *Indexer) Keys() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.postings)
}
