package flstore

// Orchestrator drives live elasticity (§6.3) end-to-end: given a new
// placement it computes a round-aligned future boundary, constructs the
// new member set, announces the epoch (journal + topology), seals and
// drains the old owners, pads their ranges dense to the boundary, and
// streams the old epoch's records to the new owners in the background.
// It implements AdminServer, so Admin.ProposeEpoch against an elastic
// deployment performs an actual switchover.

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/replica"
)

// RangePuller is the slice of the replica surface migration needs: a
// catch-up feed of one hosted range. *Maintainer and the RPC maintainer
// client both satisfy it.
type RangePuller interface {
	PullRange(rangeIdx int, fromLId uint64, limit int) ([]*core.Record, error)
}

// MemberSet is one epoch's maintainers with their advertised endpoints
// (index-aligned with the epoch's placement; Addrs may be nil for pure
// in-process deployments).
type MemberSet struct {
	Maintainers []*Maintainer
	Addrs       []string
}

// OrchestratorConfig wires an Orchestrator.
type OrchestratorConfig struct {
	// Controller serves (and journals) the deployment configuration.
	Controller *Controller
	// Current is the serving member set of the latest epoch.
	Current MemberSet
	// Replication is the replica-group size R of the deployment (0 and 1
	// both mean unreplicated). Pad records fan out to follower copies so
	// group peers stay gap-free through a switchover.
	Replication int
	// Grow constructs and starts the next epoch's member set: maintainers
	// built with FirstLId = firstLId under placement p, already serving
	// (listening, gossiping) by the time it returns.
	Grow func(p Placement, firstLId uint64) (MemberSet, error)
	// DrainWait is how long sealed owners wait for in-flight appends
	// before padding (default 20ms).
	DrainWait time.Duration
	// MigrateBatch caps each migration pull (default 256, the catch-up
	// batch size).
	MigrateBatch int
	// HeadroomRounds is how many extra common rounds (lcm of both epochs'
	// round lengths) the boundary is placed above the highest live
	// frontier, giving in-flight appends room to land (default 1).
	HeadroomRounds int
	// PullSources overrides where the migration of one old range pulls
	// from, in failover-preference order. Nil uses the old replica group
	// (owner first). Fault-injection tests substitute flaky sources here.
	PullSources func(oldRange int) []RangePuller
}

// epochMigration tracks one sealed epoch's background migration.
type epochMigration struct {
	firstLId        uint64 // boundary the epoch was sealed at (next epoch's first LId)
	rangesTotal     int
	rangesStreamed  int
	recordsStreamed uint64
	err             error
}

// Orchestrator executes epoch switchovers and serves the admin surface
// for an elastic deployment.
type Orchestrator struct {
	mu      sync.Mutex
	cfg     OrchestratorConfig
	current MemberSet
	history []epochMigration // index-aligned with sealed epochs, oldest first
	wg      sync.WaitGroup
}

// NewOrchestrator validates the wiring and returns an orchestrator over
// the current member set.
func NewOrchestrator(cfg OrchestratorConfig) (*Orchestrator, error) {
	if cfg.Controller == nil {
		return nil, errors.New("flstore: orchestrator needs a controller")
	}
	if len(cfg.Current.Maintainers) == 0 {
		return nil, errors.New("flstore: orchestrator needs the current member set")
	}
	if cfg.DrainWait <= 0 {
		cfg.DrainWait = 20 * time.Millisecond
	}
	if cfg.MigrateBatch <= 0 {
		cfg.MigrateBatch = 256
	}
	if cfg.HeadroomRounds <= 0 {
		cfg.HeadroomRounds = 1
	}
	if cfg.Replication < 1 {
		cfg.Replication = 1
	}
	return &Orchestrator{cfg: cfg, current: cfg.Current}, nil
}

// Current returns the serving member set of the latest epoch.
func (o *Orchestrator) Current() MemberSet {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.current
}

// gcd/lcm over uint64 for round-length alignment.
func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b uint64) uint64 { return a / gcd(a, b) * b }

// boundaryFor picks the first LId of the next epoch: round-aligned under
// BOTH placements (so every old range pads closed exactly at it and every
// new range starts on a whole round) and HeadroomRounds common rounds
// above the highest live frontier.
func (o *Orchestrator) boundaryFor(oldP, newP Placement, old MemberSet) (uint64, error) {
	rl := lcm(uint64(oldP.NumMaintainers)*oldP.BatchSize,
		uint64(newP.NumMaintainers)*newP.BatchSize)
	var maxNext uint64 = 1
	for i, m := range old.Maintainers {
		n, err := m.NextUnfilled()
		if err != nil {
			return 0, fmt.Errorf("flstore: frontier of maintainer %d: %w", i, err)
		}
		if n > maxNext {
			maxNext = n
		}
	}
	rounds := (maxNext - 1 + rl - 1) / rl // ceil to a common round
	rounds += uint64(o.cfg.HeadroomRounds)
	return rounds*rl + 1, nil
}

// Grow switches the deployment to a new placement: announce, seal, drain,
// pad, and kick off background migration. It returns once the old epoch
// is dense up to the boundary and the new epoch is serving; migration of
// old records proceeds asynchronously (track with Epochs / WaitMigration).
func (o *Orchestrator) Grow(newP Placement) (EpochStatus, error) {
	if err := newP.Validate(); err != nil {
		return EpochStatus{}, err
	}
	o.mu.Lock()
	if o.cfg.Grow == nil {
		o.mu.Unlock()
		return EpochStatus{}, errors.New("flstore: orchestrator has no grow factory")
	}
	old := o.current
	oldP := old.Maintainers[0].cfg.Placement
	o.mu.Unlock()

	firstLId, err := o.boundaryFor(oldP, newP, old)
	if err != nil {
		return EpochStatus{}, err
	}

	// Construct the new set before announcing: the journal must never
	// advertise an epoch nobody serves.
	next, err := o.cfg.Grow(newP, firstLId)
	if err != nil {
		return EpochStatus{}, fmt.Errorf("flstore: growing member set: %w", err)
	}
	if len(next.Maintainers) != newP.NumMaintainers {
		return EpochStatus{}, fmt.Errorf("flstore: grow factory returned %d maintainers for placement of %d",
			len(next.Maintainers), newP.NumMaintainers)
	}
	if err := o.cfg.Controller.AnnounceEpochTopology(firstLId, newP, next.Addrs); err != nil {
		return EpochStatus{}, err
	}

	// Seal every old owner, give in-flight appends a drain window, then
	// pad each range dense to the boundary. Pads fan out to follower
	// copies so the old groups stay mutually consistent for reads and for
	// migration pulls from any group member.
	for i, m := range old.Maintainers {
		if err := m.SealAt(firstLId); err != nil {
			return EpochStatus{}, fmt.Errorf("flstore: sealing maintainer %d: %w", i, err)
		}
	}
	time.Sleep(o.cfg.DrainWait)
	layout := replica.Layout{N: oldP.NumMaintainers, R: o.cfg.Replication}
	for i, m := range old.Maintainers {
		pads, err := m.Pad()
		if err != nil {
			return EpochStatus{}, fmt.Errorf("flstore: padding maintainer %d: %w", i, err)
		}
		if len(pads) == 0 || o.cfg.Replication <= 1 {
			continue
		}
		for _, peer := range layout.Group(i).Members[1:] {
			if err := old.Maintainers[peer].ReplicaAppend(pads); err != nil {
				return EpochStatus{}, fmt.Errorf("flstore: fanning pads of range %d to %d: %w", i, peer, err)
			}
		}
	}

	// Hand the old ranges to their migration targets (old range j lands
	// on new maintainer j mod N') and stream them in the background.
	targets := make(map[int][]int) // new maintainer index -> old ranges
	for j := 0; j < oldP.NumMaintainers; j++ {
		t := j % newP.NumMaintainers
		targets[t] = append(targets[t], j)
	}
	for t, ranges := range targets {
		if err := next.Maintainers[t].SetLegacy(oldP, ranges); err != nil {
			return EpochStatus{}, fmt.Errorf("flstore: legacy ranges on new maintainer %d: %w", t, err)
		}
	}

	o.mu.Lock()
	o.current = next
	o.history = append(o.history, epochMigration{
		firstLId:    firstLId,
		rangesTotal: oldP.NumMaintainers,
	})
	mig := len(o.history) - 1
	o.mu.Unlock()

	for j := 0; j < oldP.NumMaintainers; j++ {
		j := j
		target := next.Maintainers[j%newP.NumMaintainers]
		sources := o.sourcesFor(j, old, layout)
		o.wg.Add(1)
		go func() {
			defer o.wg.Done()
			o.migrateRange(mig, j, target, sources)
		}()
	}

	ca := &ControllerAdmin{Ctrl: o.cfg.Controller}
	sts, err := ca.Epochs()
	if err != nil {
		return EpochStatus{}, err
	}
	return sts[len(sts)-1], nil
}

// sourcesFor orders the pull sources for one old range: the override if
// configured, else the old replica group, owner first.
func (o *Orchestrator) sourcesFor(oldRange int, old MemberSet, layout replica.Layout) []RangePuller {
	if o.cfg.PullSources != nil {
		return o.cfg.PullSources(oldRange)
	}
	g := layout.Group(oldRange)
	sources := make([]RangePuller, 0, len(g.Members))
	for _, m := range g.Members {
		sources = append(sources, old.Maintainers[m])
	}
	return sources
}

// migrateRange streams one old range into its target until the target
// reports it complete, failing over across sources on pull errors. The
// ingest side is idempotent and dense-prefix, so re-pulling after a
// failover (or a restart) is harmless.
func (o *Orchestrator) migrateRange(mig, oldRange int, target *Maintainer, sources []RangePuller) {
	src := 0
	for {
		cursor, done, err := target.LegacyFrontier(oldRange)
		if err != nil {
			o.failMigration(mig, fmt.Errorf("flstore: migration frontier of range %d: %w", oldRange, err))
			return
		}
		if done {
			o.mu.Lock()
			o.history[mig].rangesStreamed++
			o.mu.Unlock()
			return
		}
		recs, err := sources[src].PullRange(oldRange, cursor, o.cfg.MigrateBatch)
		if err == nil && len(recs) == 0 {
			// The source's copy ends below the padded cap (a follower that
			// missed the pad fan-out): treat like a source failure.
			err = fmt.Errorf("flstore: source %d of range %d dry at LId %d", src, oldRange, cursor)
		}
		if err != nil {
			src++
			if src >= len(sources) {
				o.failMigration(mig, fmt.Errorf("flstore: every source of range %d failed: %w", oldRange, err))
				return
			}
			continue
		}
		if err := target.IngestLegacy(recs); err != nil {
			o.failMigration(mig, fmt.Errorf("flstore: ingesting range %d: %w", oldRange, err))
			return
		}
		o.mu.Lock()
		o.history[mig].recordsStreamed += uint64(len(recs))
		o.mu.Unlock()
	}
}

// failMigration records the first migration error of a sealed epoch.
func (o *Orchestrator) failMigration(mig int, err error) {
	o.mu.Lock()
	if o.history[mig].err == nil {
		o.history[mig].err = err
	}
	o.mu.Unlock()
}

// WaitMigration blocks until every background migration goroutine has
// finished and returns the first error any of them hit.
func (o *Orchestrator) WaitMigration() error {
	o.wg.Wait()
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, h := range o.history {
		if h.err != nil {
			return h.err
		}
	}
	return nil
}

// Epochs implements AdminServer: the controller's journal annotated with
// live migration progress for sealed epochs.
func (o *Orchestrator) Epochs() ([]EpochStatus, error) {
	cfg, err := o.cfg.Controller.GetConfig()
	if err != nil {
		return nil, err
	}
	sts := epochStatuses(cfg)
	o.mu.Lock()
	defer o.mu.Unlock()
	for i := range sts {
		if !sts[i].Sealed || i >= len(o.history) {
			continue
		}
		h := o.history[i]
		sts[i].RangesTotal = h.rangesTotal
		sts[i].RangesStreamed = h.rangesStreamed
		sts[i].RecordsStreamed = h.recordsStreamed
		sts[i].MigrationDone = h.rangesStreamed >= h.rangesTotal
	}
	return sts, nil
}

// ProposeEpoch implements AdminServer: a proposal against an elastic
// deployment executes the switchover (the orchestrator picks the
// boundary and builds the member set; the proposal's FirstLId and
// MaintainerAddrs are ignored).
func (o *Orchestrator) ProposeEpoch(prop EpochProposal) (EpochStatus, error) {
	o.mu.Lock()
	cur := o.current.Maintainers[0].cfg.Placement
	o.mu.Unlock()
	p := Placement{NumMaintainers: prop.NumMaintainers, BatchSize: prop.BatchSize}
	if p.BatchSize == 0 {
		p.BatchSize = cur.BatchSize
	}
	return o.Grow(p)
}
