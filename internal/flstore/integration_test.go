package flstore

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rpc"
)

// buildTCPDeployment stands up a full FLStore deployment over loopback
// TCP: n maintainers, k indexers, a controller, with gossip running.
func buildTCPDeployment(t *testing.T, n, k int, batch uint64) (*Client, []*Maintainer, []*Gossiper) {
	t.Helper()
	p := Placement{NumMaintainers: n, BatchSize: batch}

	// Indexers first: maintainers need their clients.
	var indexerAddrs []string
	var indexerAPIs []IndexerAPI
	for i := 0; i < k; i++ {
		ix := NewIndexer(nil)
		srv := rpc.NewServer()
		ServeIndexer(srv, ix)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		indexerAddrs = append(indexerAddrs, addr.String())
		rc, err := rpc.Dial(addr.String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { rc.Close() })
		indexerAPIs = append(indexerAPIs, NewIndexerClient(rc))
	}

	var maintainers []*Maintainer
	var maintainerAddrs []string
	for i := 0; i < n; i++ {
		m, err := NewMaintainer(MaintainerConfig{
			Index: i, Placement: p, Indexers: indexerAPIs, EnforceHead: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := rpc.NewServer()
		ServeMaintainer(srv, m)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		maintainers = append(maintainers, m)
		maintainerAddrs = append(maintainerAddrs, addr.String())
	}

	// Gossip wiring: each maintainer dials its peers.
	var gossipers []*Gossiper
	for i, m := range maintainers {
		peers := make([]MaintainerAPI, n)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			rc, err := rpc.Dial(maintainerAddrs[j])
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { rc.Close() })
			peers[j] = NewMaintainerClient(rc)
		}
		g := NewGossiper(m, peers, time.Millisecond)
		g.Start()
		t.Cleanup(g.Stop)
		gossipers = append(gossipers, g)
	}

	ctrl, err := NewController(Config{
		Placement:       p,
		MaintainerAddrs: maintainerAddrs,
		IndexerAddrs:    indexerAddrs,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrlSrv := rpc.NewServer()
	ServeController(ctrlSrv, ctrl)
	ctrlAddr, err := ctrlSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ctrlSrv.Close() })

	ctrlConn, err := rpc.Dial(ctrlAddr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ctrlConn.Close() })
	client, err := NewClient(NewControllerClient(ctrlConn))
	if err != nil {
		t.Fatal(err)
	}
	return client, maintainers, gossipers
}

func TestIntegrationAppendReadOverTCP(t *testing.T) {
	client, _, _ := buildTCPDeployment(t, 3, 2, 4)

	var lids []uint64
	for i := 0; i < 30; i++ {
		lid, err := client.Append([]byte(fmt.Sprintf("record-%d", i)),
			[]core.Tag{{Key: "seq", Value: fmt.Sprint(i)}})
		if err != nil {
			t.Fatal(err)
		}
		lids = append(lids, lid)
	}
	// LIds must be unique.
	seen := map[uint64]bool{}
	for _, lid := range lids {
		if seen[lid] {
			t.Fatalf("duplicate LId %d", lid)
		}
		seen[lid] = true
	}
	// Read back every record at or below the head of the log; positions
	// above HL are legitimately unreadable (load has stopped, so the
	// next maintainer slot below them is a permanent gap, §5.4).
	head, err := client.HeadExact()
	if err != nil {
		t.Fatal(err)
	}
	if head == 0 {
		t.Fatal("head did not advance")
	}
	client.ReadRetries = 2
	client.RetryBackoff = time.Millisecond
	readable := 0
	for i, lid := range lids {
		if lid > head {
			if _, err := client.ReadLId(lid); !errors.Is(err, core.ErrPastHead) {
				t.Errorf("ReadLId(%d) above head = %v, want ErrPastHead", lid, err)
			}
			continue
		}
		rec, err := client.ReadLId(lid)
		if err != nil {
			t.Fatalf("ReadLId(%d): %v", lid, err)
		}
		if want := fmt.Sprintf("record-%d", i); string(rec.Body) != want {
			t.Errorf("body = %q, want %q", rec.Body, want)
		}
		readable++
	}
	if readable < 20 {
		t.Errorf("only %d of 30 records below head; head math looks wrong", readable)
	}
}

func TestIntegrationHeadConvergesViaGossip(t *testing.T) {
	client, maintainers, _ := buildTCPDeployment(t, 3, 0, 4)
	// Round-robin appends fill all maintainers roughly evenly.
	for i := 0; i < 36; i++ {
		if _, err := client.Append([]byte("x"), nil); err != nil {
			t.Fatal(err)
		}
	}
	exact, err := client.HeadExact()
	if err != nil {
		t.Fatal(err)
	}
	if exact != 36 {
		t.Fatalf("HeadExact = %d, want 36 (36 appends round-robin over 3 maintainers, batch 4)", exact)
	}
	// Every maintainer's gossiped head must converge to the exact head.
	deadline := time.Now().Add(2 * time.Second)
	for _, m := range maintainers {
		for {
			h, _ := m.Head()
			if h == exact {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("maintainer %d head stuck at %d, want %d", m.Index(), h, exact)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

func TestIntegrationTagReadThroughIndexer(t *testing.T) {
	client, _, _ := buildTCPDeployment(t, 2, 2, 3)
	for v := 1; v <= 9; v++ {
		_, err := client.Append([]byte(fmt.Sprintf("v=%d", v)),
			[]core.Tag{{Key: "key-a", Value: fmt.Sprint(v)}})
		if err != nil {
			t.Fatal(err)
		}
	}
	// With 9 round-robin appends over 2 maintainers (batch 3), the head
	// is 8 and "v=9" sits at LId 8 — the most recent *readable* tagged
	// record ("v=8" is at LId 10, above the head, so it is excluded).
	recs, err := client.Read(core.Rule{TagKey: "key-a", MostRecent: true, Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0].Body) != "v=9" {
		t.Fatalf("most recent = %+v", recs)
	}
	// Value predicate through the indexer; only v=9 is below the head.
	recs, err = client.Read(core.Rule{TagKey: "key-a", TagCmp: core.CmpGE, TagValue: "8"})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0].Body) != "v=9" {
		t.Errorf("key-a >= 8 returned %d records, want just v=9 (v=8 is past the head)", len(recs))
	}
}

func TestIntegrationScanRead(t *testing.T) {
	client, _, _ := buildTCPDeployment(t, 2, 0, 3)
	for i := 0; i < 12; i++ {
		client.Append([]byte(fmt.Sprint(i)), nil)
	}
	recs, err := client.Read(core.Rule{MinLId: 4, MaxLId: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 6 {
		t.Fatalf("scan returned %d records, want 6", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].LId <= recs[i-1].LId {
			t.Fatal("scan results not ascending")
		}
	}
}

func TestIntegrationReadPastHeadRetriesThenFails(t *testing.T) {
	client, _, _ := buildTCPDeployment(t, 2, 0, 5)
	client.ReadRetries = 2
	client.RetryBackoff = time.Millisecond
	// Only maintainer 0 has records; LId 6 (owned by maintainer 1)
	// doesn't exist and the head can't pass it.
	client.Maintainers()[0].Append([]*core.Record{{Body: []byte("x")}})
	_, err := client.ReadLId(6)
	if !errors.Is(err, core.ErrPastHead) {
		t.Errorf("read of unfilled position = %v, want ErrPastHead", err)
	}
}

func TestIntegrationConcurrentAppenders(t *testing.T) {
	client, maintainers, _ := buildTCPDeployment(t, 3, 0, 10)
	const (
		goroutines = 8
		perG       = 50
	)
	var wg sync.WaitGroup
	lidCh := make(chan uint64, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				lid, err := client.Append([]byte("c"), nil)
				if err != nil {
					t.Error(err)
					return
				}
				lidCh <- lid
			}
		}()
	}
	wg.Wait()
	close(lidCh)
	seen := map[uint64]bool{}
	for lid := range lidCh {
		if seen[lid] {
			t.Fatalf("duplicate LId %d under concurrency", lid)
		}
		seen[lid] = true
	}
	if len(seen) != goroutines*perG {
		t.Fatalf("got %d unique LIds, want %d", len(seen), goroutines*perG)
	}
	total := 0
	for _, m := range maintainers {
		total += m.Store().Len()
	}
	if total != goroutines*perG {
		t.Errorf("stored %d records, want %d", total, goroutines*perG)
	}
}

func TestIntegrationTailFollowsLog(t *testing.T) {
	client, _, _ := buildTCPDeployment(t, 2, 0, 4)
	// Pre-existing records.
	for i := 0; i < 8; i++ {
		if _, err := client.Append([]byte(fmt.Sprintf("pre-%d", i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	var mu sync.Mutex
	var got []uint64
	done := make(chan error, 1)
	go func() {
		done <- client.Tail(ctx, 1, func(rec *core.Record) bool {
			mu.Lock()
			got = append(got, rec.LId)
			n := len(got)
			mu.Unlock()
			return n < 14 // stop after 14 records
		})
	}()

	// Live appends while tailing.
	for i := 0; i < 8; i++ {
		if _, err := client.Append([]byte(fmt.Sprintf("live-%d", i)), nil); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := <-done; err != nil {
		t.Fatalf("Tail: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 14 {
		t.Fatalf("tailed %d records, want 14", len(got))
	}
	for i, lid := range got {
		if lid != uint64(i+1) {
			t.Fatalf("tail out of order at %d: %v", i, got)
		}
	}
}

func TestTailCancelled(t *testing.T) {
	client, _, _ := buildTCPDeployment(t, 1, 0, 4)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	err := client.Tail(ctx, 1, func(*core.Record) bool { return true })
	if err != context.Canceled {
		t.Errorf("Tail after cancel = %v, want context.Canceled", err)
	}
}
