package flstore

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/replica"
	"repro/internal/rpc"
)

// The maintainer and its RPC client must both satisfy the replica-session
// surface; a signature drift fails compilation here rather than at a
// type-assertion inside initSession.
var (
	_ replica.Member = (*Maintainer)(nil)
	_ replica.Member = (*maintainerClient)(nil)
	_ ReplicaAPI     = (*Maintainer)(nil)
	_ ReplicaAPI     = (*maintainerClient)(nil)
)

// buildReplicatedDirect wires n in-process maintainers with replication r
// into a direct client under the given ack policy.
func buildReplicatedDirect(t *testing.T, n, r int, batch uint64, ack replica.AckPolicy) (*Client, []*Maintainer) {
	t.Helper()
	p := Placement{NumMaintainers: n, BatchSize: batch}
	var ms []*Maintainer
	var apis []MaintainerAPI
	for i := 0; i < n; i++ {
		m, err := NewMaintainer(MaintainerConfig{Index: i, Placement: p, Replication: r})
		if err != nil {
			t.Fatal(err)
		}
		ms = append(ms, m)
		apis = append(apis, m)
	}
	c, err := NewReplicatedDirectClient(p, apis, nil, r, ack)
	if err != nil {
		t.Fatal(err)
	}
	return c, ms
}

func TestReplicatedAppendFansOutToGroup(t *testing.T) {
	client, ms := buildReplicatedDirect(t, 3, 3, 4, replica.AckAll)
	var lids []uint64
	for i := 0; i < 12; i++ {
		lid, err := client.Append([]byte(fmt.Sprintf("r%d", i)), nil)
		if err != nil {
			t.Fatal(err)
		}
		lids = append(lids, lid)
	}
	// Under R = N = 3 every maintainer stores a copy of every record.
	for _, m := range ms {
		if got := m.Store().Len(); got != 12 {
			t.Errorf("maintainer %d stores %d records, want 12", m.Index(), got)
		}
		for _, lid := range lids {
			if _, err := m.Store().Get(lid); err != nil {
				t.Errorf("maintainer %d missing lid %d: %v", m.Index(), lid, err)
			}
		}
	}
	// Scans deduplicate the copies: each record is returned exactly once.
	recs, err := client.Read(core.Rule{MinLId: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(lids) {
		t.Errorf("scan returned %d records, want %d (copies must deduplicate)", len(recs), len(lids))
	}
}

func TestReplicaAppendIdempotent(t *testing.T) {
	p := Placement{NumMaintainers: 3, BatchSize: 2}
	m1, err := NewMaintainer(MaintainerConfig{Index: 1, Placement: p, Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Maintainer 1 hosts ranges 1 (own) and 0 (follower). Feed range-0
	// copies out of order and duplicated.
	mk := func(lid uint64) *core.Record { return &core.Record{LId: lid, TOId: lid, Body: []byte("x")} }
	// Range 0, batch 2: slots 0,1 → LIds 1,2; slots 2,3 → LIds 7,8.
	if err := m1.ReplicaAppend([]*core.Record{mk(7), mk(8)}); err != nil {
		t.Fatal(err)
	}
	if f, _ := m1.RangeFrontier(0); f != 1 {
		t.Errorf("frontier after out-of-order copies = %d, want 1 (buffered)", f)
	}
	if err := m1.ReplicaAppend([]*core.Record{mk(1), mk(2)}); err != nil {
		t.Fatal(err)
	}
	if f, _ := m1.RangeFrontier(0); f != 13 {
		t.Errorf("frontier after gap filled = %d, want 13 (slots 0..3 dense)", f)
	}
	// Redelivery of everything is a no-op.
	if err := m1.ReplicaAppend([]*core.Record{mk(1), mk(7)}); err != nil {
		t.Fatal(err)
	}
	if got := m1.Store().Len(); got != 4 {
		t.Errorf("store holds %d records after redelivery, want 4", got)
	}
	// A range maintainer 1 doesn't host is rejected (range 2 owns LId 5).
	if err := m1.ReplicaAppend([]*core.Record{mk(5)}); !errors.Is(err, ErrNotReplica) {
		t.Errorf("copy for unhosted range = %v, want ErrNotReplica", err)
	}
}

func TestMaintainerRecoversPerRangeFrontiers(t *testing.T) {
	p := Placement{NumMaintainers: 3, BatchSize: 2}
	cfg := MaintainerConfig{Index: 1, Placement: p, Replication: 2}
	m1, err := NewMaintainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Own range: 3 records. Followed range 0: 2 copies.
	if _, err := m1.Append([]*core.Record{{Body: []byte("a")}, {Body: []byte("b")}, {Body: []byte("c")}}); err != nil {
		t.Fatal(err)
	}
	if err := m1.ReplicaAppend([]*core.Record{{LId: 1, Body: []byte("x")}, {LId: 2, Body: []byte("y")}}); err != nil {
		t.Fatal(err)
	}
	f1, _ := m1.RangeFrontier(1)
	f0, _ := m1.RangeFrontier(0)

	// Restart on the same store: both frontiers must recover even though
	// the store mixes two ranges' records.
	cfg.Store = m1.Store()
	m1b, err := NewMaintainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g, _ := m1b.RangeFrontier(1); g != f1 {
		t.Errorf("own-range frontier after restart = %d, want %d", g, f1)
	}
	if g, _ := m1b.RangeFrontier(0); g != f0 {
		t.Errorf("followed-range frontier after restart = %d, want %d", g, f0)
	}
	next, err := m1b.NextUnfilled()
	if err != nil {
		t.Fatal(err)
	}
	if next != f1 {
		t.Errorf("NextUnfilled after restart = %d, want %d", next, f1)
	}
}

// TestReplicaStatusRPCRoundTrip covers the `logctl replicas` path: status
// assembly from frontier polls (roles, reachability, lag in log positions)
// and the JSON round-trip over the controller RPC.
func TestReplicaStatusRPCRoundTrip(t *testing.T) {
	p := Placement{NumMaintainers: 3, BatchSize: 2}
	layout := replica.Layout{N: 3, R: 2}
	var ms []*Maintainer
	for i := 0; i < 3; i++ {
		m, err := NewMaintainer(MaintainerConfig{Index: i, Placement: p, Replication: 2})
		if err != nil {
			t.Fatal(err)
		}
		ms = append(ms, m)
	}
	// Three records on maintainer 0 with no fan-out: its follower (1) now
	// lags range 0 by three positions.
	if _, err := ms[0].Append([]*core.Record{{Body: []byte("a")}, {Body: []byte("b")}, {Body: []byte("c")}}); err != nil {
		t.Fatal(err)
	}
	srv := rpc.NewServer()
	ServeReplicas(srv, func() (*replica.ClusterStatus, error) {
		return BuildClusterStatus(p, layout, replica.AckMajority, func(mi, ri int) (uint64, error) {
			if mi == 2 {
				return 0, errors.New("maintainer 2 unreachable")
			}
			return ms[mi].RangeFrontier(ri)
		}, func(mi, ri int) (uint64, uint64, error) {
			if mi == 2 {
				return 0, 0, errors.New("maintainer 2 unreachable")
			}
			return ms[mi].ValidityWatermark(ri)
		}, func(mi, ri int) (uint64, error) {
			if mi == 2 {
				return 0, errors.New("maintainer 2 unreachable")
			}
			return ms[mi].DurableWatermark(ri)
		}), nil
	})
	st, err := FetchReplicas(rpc.NewLocalClient(srv))
	if err != nil {
		t.Fatal(err)
	}
	if st.Replication != 2 || st.Ack != "majority" || len(st.Groups) != 3 {
		t.Fatalf("status shape = r%d/%s/%d groups, want 2/majority/3", st.Replication, st.Ack, len(st.Groups))
	}
	g0 := st.Groups[0]
	if g0.Members[0].Role != "primary" || !g0.Members[0].Healthy || g0.Members[0].LagLIds != 0 {
		t.Errorf("group 0 primary = %+v, want healthy primary with no lag", g0.Members[0])
	}
	if g0.Members[1].Role != "follower" || g0.Members[1].LagLIds != 3 {
		t.Errorf("group 0 follower = %+v, want follower lagging 3 positions", g0.Members[1])
	}
	// Member 2's poll failed: it must be reported unreachable, not omitted.
	g1 := st.Groups[1]
	if len(g1.Members) != 2 || g1.Members[1].Member != 2 || g1.Members[1].Healthy {
		t.Errorf("group 1 = %+v, want member 2 present and unhealthy", g1.Members)
	}
}

// buildFaultableCluster wires n maintainers (replication r) behind
// in-process RPC servers with every link — client→maintainer and
// maintainer→maintainer gossip — routed through one fault controller, so
// tests kill a maintainer by severing its links. Gossip runs manually via
// Round() for determinism.
func buildFaultableCluster(t *testing.T, n, r int, batch uint64, ack replica.AckPolicy, seed uint64) (*Client, []*Maintainer, []*Gossiper, *faultinject.Controller) {
	t.Helper()
	p := Placement{NumMaintainers: n, BatchSize: batch}
	ctl := faultinject.New(faultinject.Options{Seed: seed})
	var ms []*Maintainer
	var srvs []*rpc.Server
	for i := 0; i < n; i++ {
		m, err := NewMaintainer(MaintainerConfig{Index: i, Placement: p, Replication: r})
		if err != nil {
			t.Fatal(err)
		}
		srv := rpc.NewServer()
		ServeMaintainer(srv, m)
		ms = append(ms, m)
		srvs = append(srvs, srv)
	}
	var apis []MaintainerAPI
	for i := 0; i < n; i++ {
		apis = append(apis, NewMaintainerClient(ctl.Wrap(fmt.Sprintf("c->m%d", i), rpc.NewLocalClient(srvs[i]))))
	}
	client, err := NewReplicatedDirectClient(p, apis, nil, r, ack)
	if err != nil {
		t.Fatal(err)
	}
	var gs []*Gossiper
	for i := 0; i < n; i++ {
		peers := make([]MaintainerAPI, n)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			peers[j] = NewMaintainerClient(ctl.Wrap(fmt.Sprintf("m%d->m%d", i, j), rpc.NewLocalClient(srvs[j])))
		}
		gs = append(gs, NewGossiper(ms[i], peers, 0))
	}
	return client, ms, gs, ctl
}

// severMaintainer cuts every link to maintainer idx.
func severMaintainer(ctl *faultinject.Controller, n, idx int) {
	ctl.Sever(fmt.Sprintf("c->m%d", idx))
	for i := 0; i < n; i++ {
		if i != idx {
			ctl.Sever(fmt.Sprintf("m%d->m%d", i, idx))
		}
	}
}

// TestGossipHeadResumesAfterEviction is the head-of-log staleness
// regression: when a maintainer dies, the scalar §5.4 gossip freezes its
// next-unfilled entry at every peer and the head stops forever. With
// replica groups, the dead range's acting primary keeps assigning its
// positions and vector gossip spreads that progress, so HL resumes
// advancing once the member is evicted from its group.
func TestGossipHeadResumesAfterEviction(t *testing.T) {
	const n = 3
	client, ms, gs, ctl := buildFaultableCluster(t, n, 3, 2, replica.AckMajority, 7)
	gossipAll := func(rounds int) {
		for k := 0; k < rounds; k++ {
			for i, g := range gs {
				if !ctl.Severed(fmt.Sprintf("c->m%d", i)) {
					g.Round()
				}
			}
		}
	}
	for i := 0; i < 12; i++ {
		if _, err := client.Append([]byte("pre"), nil); err != nil {
			t.Fatal(err)
		}
	}
	gossipAll(2)
	preKill, err := ms[0].Head()
	if err != nil {
		t.Fatal(err)
	}
	if preKill == 0 {
		t.Fatal("head did not advance before the kill")
	}

	severMaintainer(ctl, n, 1)
	// Appends keep succeeding; the session evicts maintainer 1 after its
	// failure threshold and retargets range 1 to its acting primary.
	for i := 0; i < 18; i++ {
		if _, err := client.Append([]byte("post"), nil); err != nil {
			t.Fatalf("append %d after kill: %v", i, err)
		}
	}
	if st := client.Session().Health().State(1); st != replica.Evicted {
		t.Fatalf("maintainer 1 state = %v, want evicted", st)
	}
	gossipAll(3)
	// The survivors' gossip marks the dead peer silent...
	if !gs[0].PeerSilent(1) || gs[0].SilentPeers() != 1 {
		t.Errorf("gossiper 0: PeerSilent(1)=%v SilentPeers=%d, want true/1",
			gs[0].PeerSilent(1), gs[0].SilentPeers())
	}
	// ...and the head of the log resumes advancing anyway: range 1's
	// frontier moved via its acting primary, and vector gossip spread it.
	for _, i := range []int{0, 2} {
		h, err := ms[i].Head()
		if err != nil {
			t.Fatal(err)
		}
		if h <= preKill {
			t.Errorf("maintainer %d head stuck at %d (pre-kill %d) after eviction", i, h, preKill)
		}
	}
	// Reads of positions owned by the dead range fail over to survivors.
	head, err := client.HeadExact()
	if err != nil {
		t.Fatal(err)
	}
	served := 0
	for lid := uint64(1); lid <= head; lid++ {
		if client.Placement().Owner(lid) != 1 {
			continue
		}
		if _, err := client.ReadLId(lid); err != nil {
			t.Errorf("failover read of lid %d: %v", lid, err)
		}
		served++
	}
	if served == 0 {
		t.Error("no range-1 positions below head; scenario did not exercise failover reads")
	}
}
