package flstore

// This file is the package's error taxonomy: every sentinel the append and
// read paths can surface, the typed overload rejection carrying a pacing
// hint, and the IsRetryable/RetryAfter helpers the client pacing layer and
// the applications use instead of ad-hoc errors.Is chains.

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/replica"
)

// ErrOverloaded is returned when a maintainer's admission control rejects an
// append — either the capacity limiter is out of tokens or the ingestion
// backlog (explicit-order buffer + out-of-order slots) is at its bound.
// Open-loop workload generators count these as dropped offered load (the
// region past the saturation point in Figure 7); closed-loop clients honor
// the attached RetryAfter hint (see OverloadError) and pace themselves.
var ErrOverloaded = errors.New("flstore: maintainer overloaded")

// ErrWrongMaintainer is returned when an operation names an LId owned by a
// different maintainer; the client library routes by Placement, so seeing
// this indicates a stale configuration.
var ErrWrongMaintainer = errors.New("flstore: LId not owned by this maintainer")

// ErrNotReplica is returned when a replica operation names a range this
// maintainer neither owns nor follows under the configured replication
// factor.
var ErrNotReplica = errors.New("flstore: range not hosted by this maintainer")

// ErrOrderBacklog is returned when the explicit-order buffer (§5.4) would
// exceed its configured bound.
var ErrOrderBacklog = errors.New("flstore: explicit-order buffer full")

// ErrEpochSealed is returned when an append reaches a maintainer whose
// epoch has been sealed at a boundary the batch would cross: a new epoch
// (grown or shrunk placement) owns every position from the boundary up,
// so the old owner must not assign there. The condition is permanent for
// this session — NOT retryable against the same member — and the typed
// form carries the new epoch's first LId so clients can refresh their
// configuration from the controller and resume against the new owners
// (the §5.1 session model: clients re-poll the controller after
// problems).
var ErrEpochSealed = errors.New("flstore: epoch sealed")

// ErrReadBlocked is returned when a read names a position this member
// knows is assigned (an invalidation or gossip announced it) but whose
// payload has not yet resolved locally — the position is invalid here,
// not absent. The maintainer waits ReadBlockWait for the in-flight copy
// before surfacing this; the record is durably readable at a fresher
// group member, so the session fails the read over (with no health
// penalty) and clients retry with the attached pacing hint.
var ErrReadBlocked = errors.New("flstore: read blocked on invalidated range")

// ReadBlockedError is the typed form of ErrReadBlocked: it names the
// position, unwraps to the sentinel for errors.Is, self-classifies as
// retryable, and carries the pacing hint the rpc layer encodes across
// the wire.
type ReadBlockedError struct {
	LId uint64
	// RetryAfter estimates when the local copy should have resolved.
	RetryAfter time.Duration
}

func (e *ReadBlockedError) Error() string {
	return fmt.Sprintf("%s: LId %d (retry after %v)", ErrReadBlocked.Error(), e.LId, e.RetryAfter)
}

func (e *ReadBlockedError) Unwrap() error { return ErrReadBlocked }

// Retryable marks the condition transient: the record exists and will be
// served here once the payload lands, or by a group peer immediately.
func (e *ReadBlockedError) Retryable() bool { return true }

// RetryAfterHint exposes the pacing hint for RetryAfter / the rpc layer.
func (e *ReadBlockedError) RetryAfterHint() time.Duration { return e.RetryAfter }

// EpochSealedError is the typed form of ErrEpochSealed. It unwraps to the
// sentinel for errors.Is and names the first LId of the epoch that
// supersedes this maintainer's assignment authority; the LId rides the
// error string across the wire (see mapRemoteError) so remote clients
// recover the boundary without a second round trip. It deliberately does
// NOT implement Retryable: retrying the same member cannot succeed — the
// fix is a configuration refresh, not a backoff.
type EpochSealedError struct {
	// FirstLId is the new epoch's first log position: every LId >= FirstLId
	// is assigned by the new placement's owners.
	FirstLId uint64
}

func (e *EpochSealedError) Error() string {
	return fmt.Sprintf("%s: new epoch starts at LId %d", ErrEpochSealed.Error(), e.FirstLId)
}

func (e *EpochSealedError) Unwrap() error { return ErrEpochSealed }

// OverloadError is the typed form of ErrOverloaded: a rejection that also
// tells the client when retrying is likely to succeed. It unwraps to
// ErrOverloaded (so errors.Is keeps working) and implements the
// RetryAfterHint interface the rpc layer encodes across the wire.
type OverloadError struct {
	// RetryAfter is the server's estimate of how long the client should
	// wait before the rejected batch would be admitted: the limiter's
	// token deficit, or a backlog-drain guess when the limiter is not the
	// bottleneck. Zero means no estimate.
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("%s (retry after %v)", ErrOverloaded.Error(), e.RetryAfter)
	}
	return ErrOverloaded.Error()
}

func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// RetryAfterHint exposes the pacing hint; the rpc layer detects this
// interface and carries the hint across the wire as an error-string suffix.
func (e *OverloadError) RetryAfterHint() time.Duration { return e.RetryAfter }

// retryAfterHinter matches any error carrying a pacing hint — a local
// *OverloadError, a *rpc.RemoteError whose message encodes one, or a
// foreign package's typed rejection (e.g. chariots ingress shedding).
type retryAfterHinter interface {
	RetryAfterHint() time.Duration
}

// retryableMarker matches foreign typed errors that self-classify (e.g.
// chariots' ingress-shed error) without this package importing them.
type retryableMarker interface {
	Retryable() bool
}

// IsRetryable reports whether err names a transient condition that a
// client should retry (after pacing): maintainer overload, a read racing
// the head of the log, a read blocked on an unresolved invalidation, a
// full explicit-order buffer, an under-acked replicated append, or any
// error that marks itself retryable via a `Retryable() bool` method.
// Configuration and logic errors (wrong maintainer, duplicate LId,
// missing record) are not retryable.
func IsRetryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrOverloaded) ||
		errors.Is(err, ErrOrderBacklog) ||
		errors.Is(err, core.ErrPastHead) ||
		errors.Is(err, ErrReadBlocked) ||
		errors.Is(err, replica.ErrInsufficientAcks) {
		return true
	}
	var r retryableMarker
	if errors.As(err, &r) {
		return r.Retryable()
	}
	return false
}

// RetryAfter extracts the server-provided pacing hint from err, or 0 when
// none is attached. It sees through wrapping and through the rpc layer's
// wire encoding, so callers can use it uniformly on local and remote
// rejections.
func RetryAfter(err error) time.Duration {
	var h retryAfterHinter
	if errors.As(err, &h) {
		if d := h.RetryAfterHint(); d > 0 {
			return d
		}
	}
	return 0
}

// Retry runs op up to 1+retries times, retrying only errors IsRetryable
// classifies as transient and sleeping the server's RetryAfter hint (or
// 1ms when none) between attempts. It is the uniform admission-rejection
// handler for applications that want blocking semantics over a shedding
// log (hyksos, streamproc, msgfutures); clients needing cancellation or
// adaptive pacing use the Client's own retry loop instead.
func Retry[T any](retries int, op func() (T, error)) (T, error) {
	for attempt := 0; ; attempt++ {
		v, err := op()
		if err == nil || attempt >= retries || !IsRetryable(err) {
			return v, err
		}
		d := RetryAfter(err)
		if d <= 0 {
			d = time.Millisecond
		}
		time.Sleep(d)
	}
}
