package flstore

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/replica"
	"repro/internal/rpc"
)

// --- tail ring ---

func TestTailRingOverwriteReadsAsMiss(t *testing.T) {
	r := newTailRing(4)
	r.put([]*core.Record{{LId: 1}, {LId: 2}, {LId: 3}, {LId: 4}})
	for lid := uint64(1); lid <= 4; lid++ {
		if rec := r.get(lid); rec == nil || rec.LId != lid {
			t.Fatalf("get(%d) = %+v", lid, rec)
		}
	}
	// LId 5 lands on LId 1's slot (5 % 4 == 1 % 4): the old entry must
	// read as a miss, never as the wrong record.
	r.put([]*core.Record{{LId: 5}})
	if rec := r.get(1); rec != nil {
		t.Errorf("overwritten slot served stale record %+v", rec)
	}
	if rec := r.get(5); rec == nil || rec.LId != 5 {
		t.Errorf("get(5) = %+v", rec)
	}
	if rec := r.get(9); rec != nil {
		t.Errorf("never-written LId served %+v", rec)
	}
}

// --- maintainer TailWait ---

func TestMaintainerTailWaitImmediateAndTimeout(t *testing.T) {
	m := newTestMaintainer(t, 0, 1, 4)
	if _, err := m.Append([]*core.Record{{Body: []byte("a")}, {Body: []byte("b")}}); err != nil {
		t.Fatal(err)
	}
	// Frontier is 3 (two slots filled); a cursor below it returns at once.
	f, err := m.TailWait(0, 1, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if f != 3 {
		t.Fatalf("frontier = %d, want 3", f)
	}
	// cursor 0 never parks.
	if f, err = m.TailWait(0, 0, time.Second); err != nil || f != 3 {
		t.Fatalf("TailWait(0) = %d, %v", f, err)
	}
	// A cursor at the frontier parks until maxWait, then reports the
	// unchanged frontier without error.
	start := time.Now()
	f, err = m.TailWait(0, 3, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if f != 3 {
		t.Fatalf("timed-out frontier = %d, want 3", f)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("TailWait returned after %v, did not park", elapsed)
	}
	// A range this maintainer doesn't host fails.
	if _, err := m.TailWait(5, 1, time.Millisecond); err == nil {
		t.Error("TailWait on unhosted range accepted")
	}
}

func TestMaintainerTailWaitWakesOnAppend(t *testing.T) {
	m := newTestMaintainer(t, 0, 1, 4)
	if _, err := m.Append([]*core.Record{{Body: []byte("a")}}); err != nil {
		t.Fatal(err)
	}
	type res struct {
		f   uint64
		err error
	}
	done := make(chan res, 1)
	go func() {
		f, err := m.TailWait(0, 2, 5*time.Second)
		done <- res{f, err}
	}()
	// Give the waiter time to park, then append: the waiter must wake
	// well before its 5s maxWait.
	time.Sleep(5 * time.Millisecond)
	if _, err := m.Append([]*core.Record{{Body: []byte("b")}}); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.f != 3 {
			t.Errorf("woken frontier = %d, want 3", r.f)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("TailWait did not wake on append")
	}
	if m.TailWaits.Value() == 0 {
		t.Error("TailWaits counter not incremented")
	}
}

// --- maintainer ReadRange ---

func TestMaintainerReadRangeBudgetsAndResume(t *testing.T) {
	m := newTestMaintainer(t, 0, 1, 100)
	var recs []*core.Record
	for i := 0; i < 20; i++ {
		recs = append(recs, &core.Record{Body: []byte(fmt.Sprintf("r%d", i))})
	}
	if _, err := m.Append(recs); err != nil {
		t.Fatal(err)
	}
	// A record-count budget truncates the response and CoveredHi says
	// where; the continuation from CoveredHi+1 fetches the remainder.
	res, err := m.ReadRange(RangeQuery{Lo: 1, Hi: 20, Range: 0, MaxRecords: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 7 || res.CoveredHi != 7 {
		t.Fatalf("budgeted response: %d records, CoveredHi %d", len(res.Records), res.CoveredHi)
	}
	var got []*core.Record
	got = append(got, res.Records...)
	for res.CoveredHi < 20 {
		if res, err = m.ReadRange(RangeQuery{Lo: res.CoveredHi + 1, Hi: 20, Range: 0, MaxRecords: 7}); err != nil {
			t.Fatal(err)
		}
		got = append(got, res.Records...)
	}
	if len(got) != 20 {
		t.Fatalf("continuation collected %d records", len(got))
	}
	for i, r := range got {
		if r.LId != uint64(i+1) {
			t.Fatalf("record %d has LId %d", i, r.LId)
		}
	}
	// A byte budget truncates too.
	res, err = m.ReadRange(RangeQuery{Lo: 1, Hi: 20, Range: 0, MaxBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 || res.CoveredHi != 1 {
		t.Fatalf("byte-budgeted response: %d records, CoveredHi %d", len(res.Records), res.CoveredHi)
	}
	// Reads past the frontier stop at it: the response covers what exists.
	res, err = m.ReadRange(RangeQuery{Lo: 15, Hi: 500, Range: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 6 || res.CoveredHi != 20 {
		t.Fatalf("frontier-cut response: %d records, CoveredHi %d", len(res.Records), res.CoveredHi)
	}
	// A range this maintainer doesn't host fails.
	if _, err := m.ReadRange(RangeQuery{Lo: 1, Hi: 5, Range: 3}); err == nil {
		t.Error("ReadRange on unhosted range accepted")
	}
}

func TestMaintainerReadRangeSkipsForeignBlocks(t *testing.T) {
	// Two maintainers, R=1: maintainer 0 hosts only its own round-robin
	// blocks; a whole-log query against it must report the foreign blocks
	// as covered (they're trivially not here) and return only owned
	// records.
	c, ms := buildDirect(t, 2, 0, 3)
	for i := 0; i < 12; i++ {
		if _, err := c.Append([]byte(fmt.Sprintf("r%d", i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	res, err := ms[0].ReadRange(RangeQuery{Lo: 1, Hi: 12, Range: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.CoveredHi != 12 {
		t.Fatalf("CoveredHi = %d, want 12", res.CoveredHi)
	}
	p := Placement{NumMaintainers: 2, BatchSize: 3}
	for _, r := range res.Records {
		if p.Owner(r.LId) != 0 {
			t.Errorf("maintainer 0 served foreign LId %d", r.LId)
		}
	}
	if len(res.Records) != 6 {
		t.Fatalf("owned records = %d, want 6", len(res.Records))
	}
}

func TestMaintainerReadRangeColdServesFromStore(t *testing.T) {
	// A tail cache smaller than the log forces ring misses on old
	// positions; the store scan must fill them, bounded per block.
	p := Placement{NumMaintainers: 1, BatchSize: 100}
	m, err := NewMaintainer(MaintainerConfig{Index: 0, Placement: p, TailCacheSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	var recs []*core.Record
	for i := 0; i < 32; i++ {
		recs = append(recs, &core.Record{Body: []byte(fmt.Sprintf("r%d", i))})
	}
	if _, err := m.Append(recs); err != nil {
		t.Fatal(err)
	}
	res, err := m.ReadRange(RangeQuery{Lo: 1, Hi: 32, Range: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 32 || res.CoveredHi != 32 {
		t.Fatalf("cold read: %d records, CoveredHi %d", len(res.Records), res.CoveredHi)
	}
	if m.StoreScans.Value() == 0 {
		t.Error("cold read did not hit the store")
	}
	if m.ScanCalls.Value() != 0 {
		t.Error("range read used the legacy full-scan path")
	}
}

// --- maintainer MultiRead ---

func TestMaintainerMultiRead(t *testing.T) {
	c, ms := buildDirect(t, 2, 0, 2)
	for i := 0; i < 8; i++ {
		if _, err := c.Append([]byte(fmt.Sprintf("r%d", i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	// Maintainer 0 owns blocks [1,2] and [5,6].
	recs, err := ms[0].MultiRead([]uint64{5, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0].LId != 5 || recs[1].LId != 1 || recs[2].LId != 2 {
		t.Fatalf("MultiRead order = %+v", recs)
	}
	// Hosted but not yet stored positions are silently absent.
	recs, err = ms[0].MultiRead([]uint64{1, 101})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].LId != 1 {
		t.Fatalf("absent position not skipped: %+v", recs)
	}
	// Foreign positions and LId 0 fail loudly (client routing bug).
	if _, err := ms[0].MultiRead([]uint64{3}); err == nil {
		t.Error("foreign LId accepted")
	}
	if _, err := ms[0].MultiRead([]uint64{0}); err == nil {
		t.Error("LId 0 accepted")
	}
}

// --- client batched reads ---

func TestClientReadRangeMergesByPlacement(t *testing.T) {
	c, _ := buildDirect(t, 3, 0, 2)
	want := make(map[uint64]string)
	for i := 0; i < 25; i++ {
		body := fmt.Sprintf("r%d", i)
		lid, err := c.Append([]byte(body), nil)
		if err != nil {
			t.Fatal(err)
		}
		want[lid] = body
	}
	head, _ := c.HeadExact()
	recs, err := c.ReadRange(1, 0) // hi 0 = head
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(recs)) != head {
		t.Fatalf("ReadRange returned %d records, head %d", len(recs), head)
	}
	for i, r := range recs {
		if r.LId != uint64(i+1) {
			t.Fatalf("position %d holds LId %d", i, r.LId)
		}
		if string(r.Body) != want[r.LId] {
			t.Errorf("LId %d body = %q, want %q", r.LId, r.Body, want[r.LId])
		}
	}
	// Sub-windows and clamping.
	recs, err = c.ReadRange(5, 9)
	if err != nil || len(recs) != 5 || recs[0].LId != 5 || recs[4].LId != 9 {
		t.Fatalf("ReadRange(5,9) = %d recs, %v", len(recs), err)
	}
	if recs, err = c.ReadRange(head+1, head+10); err != nil || len(recs) != 0 {
		t.Fatalf("past-head range = %d recs, %v", len(recs), err)
	}
	// The legacy scan path returns the same full window.
	full, err := c.ReadRange(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.DisableRangeRead = true
	legacy, err := c.ReadRange(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != len(legacy) {
		t.Fatalf("legacy path returned %d records, batched %d", len(legacy), len(full))
	}
	for i := range legacy {
		if legacy[i].LId != full[i].LId || !bytes.Equal(legacy[i].Body, full[i].Body) {
			t.Fatalf("legacy/batched disagree at %d: %d vs %d", i, legacy[i].LId, full[i].LId)
		}
	}
}

func TestClientReadLIdsPreservesInputOrder(t *testing.T) {
	c, _ := buildDirect(t, 3, 0, 2)
	var lids []uint64
	for i := 0; i < 18; i++ {
		lid, err := c.Append([]byte(fmt.Sprintf("r%d", i)), nil)
		if err != nil {
			t.Fatal(err)
		}
		lids = append(lids, lid)
	}
	// Shuffled, cross-maintainer, with a duplicate.
	ask := []uint64{17, 2, 9, 2, 13, 1, 6}
	recs, err := c.ReadLIds(ask)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(ask) {
		t.Fatalf("got %d records for %d lids", len(recs), len(ask))
	}
	for i, lid := range ask {
		if recs[i] == nil || recs[i].LId != lid {
			t.Fatalf("slot %d = %+v, want LId %d", i, recs[i], lid)
		}
	}
}

func TestClientReadRangeOwnedPartitions(t *testing.T) {
	const n = 3
	c, _ := buildDirect(t, n, 0, 2)
	for i := 0; i < 20; i++ {
		if _, err := c.Append([]byte(fmt.Sprintf("r%d", i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	head, _ := c.HeadExact()
	p := Placement{NumMaintainers: n, BatchSize: 2}
	seen := make(map[uint64]bool)
	for owner := 0; owner < n; owner++ {
		recs, err := c.ReadRangeOwned(owner, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		var prev uint64
		for _, r := range recs {
			if p.Owner(r.LId) != owner {
				t.Errorf("partition %d returned foreign LId %d", owner, r.LId)
			}
			if r.LId <= prev {
				t.Errorf("partition %d not ascending: %d after %d", owner, r.LId, prev)
			}
			prev = r.LId
			if seen[r.LId] {
				t.Errorf("LId %d returned by two partitions", r.LId)
			}
			seen[r.LId] = true
		}
	}
	if uint64(len(seen)) != head {
		t.Errorf("partitions covered %d of %d positions", len(seen), head)
	}
	if _, err := c.ReadRangeOwned(n, 1, 0); err == nil {
		t.Error("out-of-range partition accepted")
	}
}

// --- tail subscription ---

// collectTail tails the log from LId 1 in a goroutine and sends each
// record's LId on the returned channel; cancel stops it.
func collectTail(t *testing.T, c *Client, ctx context.Context) <-chan uint64 {
	t.Helper()
	out := make(chan uint64, 1024)
	go func() {
		defer close(out)
		_ = c.Tail(ctx, 1, func(r *core.Record) bool {
			select {
			case out <- r.LId:
				return true
			case <-ctx.Done():
				return false
			}
		})
	}()
	return out
}

// TestTailZeroFullScansAfterCatchUp is the acceptance check for the
// push-style tail: once a tailing reader has caught up to the head, further
// records must reach it with zero Maintainer.Scan calls — the subscription
// path serves from range reads (ring or bounded store scans), never a
// full-log rescan. This is the instrumented replacement for the old
// poll-loop Tail, which rescanned every maintainer each tick.
func TestTailZeroFullScansAfterCatchUp(t *testing.T) {
	c, ms := buildDirect(t, 3, 0, 2)
	const warm, live = 60, 40
	for i := 0; i < warm; i++ {
		if _, err := c.Append([]byte(fmt.Sprintf("w%d", i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	got := collectTail(t, c, ctx)

	next := uint64(1)
	deadline := time.After(5 * time.Second)
	recv := func(n uint64) {
		for next <= n {
			select {
			case lid, ok := <-got:
				if !ok {
					t.Fatal("tail stopped early")
				}
				if lid != next {
					t.Fatalf("tail delivered LId %d, want %d (gap or duplicate)", lid, next)
				}
				next++
			case <-deadline:
				t.Fatalf("timed out waiting for LId %d", next)
			}
		}
	}
	head, _ := c.HeadExact()
	recv(head) // catch-up complete

	// From here on the tail is a subscription: no legacy full scans.
	scansBefore := make([]uint64, len(ms))
	for i, m := range ms {
		scansBefore[i] = m.ScanCalls.Value()
	}
	for i := 0; i < live; i++ {
		if _, err := c.Append([]byte(fmt.Sprintf("l%d", i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	head, _ = c.HeadExact()
	recv(head)
	for i, m := range ms {
		if delta := m.ScanCalls.Value() - scansBefore[i]; delta != 0 {
			t.Errorf("maintainer %d issued %d full scans after catch-up, want 0", i, delta)
		}
	}
	// The live window is served from the tail rings.
	hits := uint64(0)
	for _, m := range ms {
		hits += m.TailCacheHits.Value()
	}
	if hits == 0 {
		t.Error("no tail-cache hits while tailing at the frontier")
	}
	cancel()
}

// TestTailSurvivesMaintainerKillMidStream pins the failover behaviour of
// the subscription tail under replication: severing the client's link to
// one maintainer mid-stream must not lose, duplicate, or reorder a single
// position — range reads and tail waits fail over to the surviving members
// of the owning group.
func TestTailSurvivesMaintainerKillMidStream(t *testing.T) {
	const n, r = 3, 3
	p := Placement{NumMaintainers: n, BatchSize: 2}
	ctl := faultinject.New(faultinject.Options{Seed: 11})
	ms := make([]*Maintainer, n)
	srvs := make([]*rpc.Server, n)
	for i := 0; i < n; i++ {
		m, err := NewMaintainer(MaintainerConfig{Index: i, Placement: p, Replication: r})
		if err != nil {
			t.Fatal(err)
		}
		srv := rpc.NewServer()
		ServeMaintainer(srv, m)
		ms[i], srvs[i] = m, srv
	}
	wire := func(i int) MaintainerAPI {
		return NewMaintainerClient(ctl.Wrap(fmt.Sprintf("c->m%d", i), rpc.NewLocalClient(srvs[i])))
	}
	client, err := NewReplicatedDirectClient(p, []MaintainerAPI{wire(0), wire(1), wire(2)}, nil, r, replica.AckMajority)
	if err != nil {
		t.Fatal(err)
	}
	if !client.rangeOK() {
		t.Fatal("replicated RPC wiring lost the batched read surface")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	got := collectTail(t, client, ctx)

	appendN := func(tag string, count int) {
		t.Helper()
		for i := 0; i < count; i++ {
			if _, err := client.Append([]byte(fmt.Sprintf("%s-%d", tag, i)), nil); err != nil {
				t.Fatalf("append %s-%d: %v", tag, i, err)
			}
		}
	}
	next := uint64(1)
	deadline := time.After(15 * time.Second)
	recv := func(n uint64) {
		for next <= n {
			select {
			case lid, ok := <-got:
				if !ok {
					t.Fatalf("tail stopped early at %d", next)
				}
				if lid != next {
					t.Fatalf("tail delivered LId %d, want %d (gap or duplicate)", lid, next)
				}
				next++
			case <-deadline:
				t.Fatalf("timed out waiting for LId %d", next)
			}
		}
	}

	// Appends distribute across ranges, so the gap-free head (what Tail
	// guarantees) is what HeadExact reports, not the append count.
	headNow := func() uint64 {
		t.Helper()
		h, err := client.HeadExact()
		if err != nil {
			t.Fatal(err)
		}
		return h
	}

	appendN("pre", 12)
	preHead := headNow()
	recv(preHead) // the tail is mid-stream, caught up to the pre-kill head

	// Kill maintainer 1's link while the tail is live. Ack-majority
	// appends keep succeeding; the tail's range reads and long-polls for
	// range 1 fail over to the survivors.
	ctl.Sever("c->m1")
	appendN("during", 18)
	duringHead := headNow()
	if duringHead <= preHead {
		t.Fatalf("head did not advance under failover: %d -> %d", preHead, duringHead)
	}
	recv(duringHead)
	if st := client.Session().Health().State(1); st != replica.Evicted {
		t.Fatalf("maintainer 1 state after kill = %v, want evicted", st)
	}

	// Heal and keep streaming: the tail never noticed beyond latency.
	ctl.Heal("c->m1")
	appendN("post", 10)
	recv(headNow())
	cancel()
}

func TestWaitHeadSubscribes(t *testing.T) {
	c, _ := buildDirect(t, 2, 0, 3)
	for i := 0; i < 4; i++ {
		if _, err := c.Append([]byte("x"), nil); err != nil {
			t.Fatal(err)
		}
	}
	// Already satisfied: returns immediately with the current head.
	head, err := c.WaitHead(2, time.Second)
	if err != nil || head < 2 {
		t.Fatalf("WaitHead(2) = %d, %v", head, err)
	}
	// Bounded wait on an unreached position returns the stale head.
	head, err = c.WaitHead(1000, 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if head >= 1000 {
		t.Fatalf("head %d reached impossible target", head)
	}
	// A parked waiter wakes when appends push the head past its target.
	target := head + 3
	done := make(chan uint64, 1)
	go func() {
		h, _ := c.WaitHead(target, 5*time.Second)
		done <- h
	}()
	time.Sleep(2 * time.Millisecond)
	for i := uint64(0); i < 3; i++ {
		if _, err := c.Append([]byte("y"), nil); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case h := <-done:
		if h < target {
			t.Errorf("woken head = %d, want >= %d", h, target)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("WaitHead did not wake on append")
	}
}

// --- wire codec ---

func FuzzDecodeRangeResult(f *testing.F) {
	seed := []*core.Record{
		{LId: 1, TOId: 1, Host: 0, Body: []byte("a")},
		{LId: 2, TOId: 2, Host: 1,
			Tags: []core.Tag{{Key: "stream", Value: "orders"}},
			Deps: []core.Dep{{DC: 0, TOId: 1}},
			Body: []byte("a body that is long enough to matter")},
	}
	f.Add(appendRangeResult(nil, RangeResult{CoveredHi: 2, Records: seed}))
	f.Add(appendRangeResult(nil, RangeResult{CoveredHi: 0}))
	full := appendRangeResult(nil, RangeResult{CoveredHi: 2, Records: seed})
	f.Add(full[:7])           // short envelope
	f.Add(full[:len(full)-3]) // truncated final record
	f.Add(full[:12])          // count without records
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := decodeRangeResult(data)
		if err != nil {
			return
		}
		// Accepted input round-trips canonically: re-encoding reproduces
		// the consumed prefix.
		re := appendRangeResult(nil, res)
		if !bytes.Equal(re, data[:len(re)]) {
			t.Fatalf("re-encoded response differs from consumed input")
		}
	})
}

func TestRangeResultRoundTrip(t *testing.T) {
	res := RangeResult{CoveredHi: 42, Records: []*core.Record{
		{LId: 41, TOId: 41, Host: 2, Body: []byte("x")},
		{LId: 42, TOId: 42, Host: 0, Tags: []core.Tag{{Key: "k", Value: "v"}}},
	}}
	dec, err := decodeRangeResult(appendRangeResult(nil, res))
	if err != nil {
		t.Fatal(err)
	}
	if dec.CoveredHi != 42 || len(dec.Records) != 2 {
		t.Fatalf("decoded %+v", dec)
	}
	for i := range res.Records {
		if !reflect.DeepEqual(res.Records[i], dec.Records[i]) {
			t.Errorf("record %d: %+v vs %+v", i, res.Records[i], dec.Records[i])
		}
	}
}

// TestRangeReadOverRPC exercises the three new message types through the
// real codec path (server handlers + maintainerClient), not just the
// in-process structs.
func TestRangeReadOverRPC(t *testing.T) {
	p := Placement{NumMaintainers: 1, BatchSize: 100}
	m, err := NewMaintainer(MaintainerConfig{Index: 0, Placement: p})
	if err != nil {
		t.Fatal(err)
	}
	srv := rpc.NewServer()
	ServeMaintainer(srv, m)
	mc := NewMaintainerClient(rpc.NewLocalClient(srv))
	rr, ok := mc.(RangeReadAPI)
	if !ok {
		t.Fatal("RPC maintainer client lacks RangeReadAPI")
	}
	var recs []*core.Record
	for i := 0; i < 10; i++ {
		recs = append(recs, &core.Record{Body: []byte(fmt.Sprintf("r%d", i)),
			Tags: []core.Tag{{Key: "k", Value: fmt.Sprint(i)}}})
	}
	if _, err := m.Append(recs); err != nil {
		t.Fatal(err)
	}
	res, err := rr.ReadRange(RangeQuery{Lo: 2, Hi: 8, Range: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 7 || res.CoveredHi != 8 {
		t.Fatalf("RPC range read: %d records, CoveredHi %d", len(res.Records), res.CoveredHi)
	}
	for i, r := range res.Records {
		if r.LId != uint64(i+2) || string(r.Body) != fmt.Sprintf("r%d", i+1) {
			t.Fatalf("record %d = LId %d body %q", i, r.LId, r.Body)
		}
	}
	multi, err := rr.MultiRead([]uint64{9, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(multi) != 2 || multi[0].LId != 9 || multi[1].LId != 3 {
		t.Fatalf("RPC multi read = %+v", multi)
	}
	f, err := rr.TailWait(0, 1, time.Second)
	if err != nil || f != 11 {
		t.Fatalf("RPC TailWait = %d, %v", f, err)
	}
	// Error mapping: an unhosted range comes back as a remote error.
	if _, err := rr.ReadRange(RangeQuery{Lo: 1, Hi: 5, Range: 7}); err == nil {
		t.Error("RPC range read of unhosted range accepted")
	}
}
