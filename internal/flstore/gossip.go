package flstore

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Gossiper drives the §5.4 head-of-log gossip for one maintainer: on a
// fixed interval it pushes the maintainer's next-unfilled LId to every peer
// and absorbs each peer's value from the reply. The message size is fixed
// (one LId each way), independent of append throughput — the property the
// paper relies on for gossip not becoming a bottleneck.
type Gossiper struct {
	self     *Maintainer
	peers    []MaintainerAPI // index-aligned; entry for self may be nil
	interval time.Duration

	mu      sync.Mutex
	stop    chan struct{}
	done    chan struct{}
	started bool

	// lastRound is the wall time (UnixNano) of the most recent completed
	// Round; 0 until the first. A stalled gossip loop shows up as this
	// age growing past a few intervals — the head of the log then lags
	// real progress, stalling EnforceHead reads.
	lastRound atomic.Int64
	rounds    metrics.Counter

	// silent[j] is 1 while the last exchange with peer j failed — the
	// per-peer staleness signal: while a peer is silent its scalar gossip
	// contribution freezes, and only vector gossip through its group's
	// survivors keeps the head of the log advancing.
	silent []atomic.Int64
}

// NewGossiper returns a gossiper for m. peers must be index-aligned with
// the placement; the entry at m's own index is ignored.
func NewGossiper(m *Maintainer, peers []MaintainerAPI, interval time.Duration) *Gossiper {
	if interval <= 0 {
		interval = 5 * time.Millisecond
	}
	return &Gossiper{
		self:     m,
		peers:    peers,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		silent:   make([]atomic.Int64, len(peers)),
	}
}

// Start launches the gossip loop. Safe to call once.
func (g *Gossiper) Start() {
	g.mu.Lock()
	if g.started {
		g.mu.Unlock()
		return
	}
	g.started = true
	g.mu.Unlock()
	go g.loop()
}

func (g *Gossiper) loop() {
	defer close(g.done)
	ticker := time.NewTicker(g.interval)
	defer ticker.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-ticker.C:
			g.Round()
		}
	}
}

// Round performs one synchronous gossip exchange with every peer. Exposed
// so tests and deterministic simulations can gossip without timers. Peers
// exposing GossipVecs exchange next-unfilled and durable-watermark vectors
// together (still fixed-size: 2N LIds); peers exposing only GossipVec
// exchange the next-unfilled vector (so replicated progress for a dead
// owner's range spreads through its followers); others fall back to the
// scalar §5.4 exchange. A peer whose exchange fails is marked silent until
// one succeeds again.
func (g *Gossiper) Round() {
	vec := g.self.NextVec()
	dur := g.self.DurableVec()
	next := vec[g.self.Index()]
	for j, peer := range g.peers {
		if j == g.self.Index() || peer == nil {
			continue
		}
		if dg, ok := peer.(DurableGossipAPI); ok {
			theirNext, theirDur, err := dg.GossipVecs(vec, dur)
			if err != nil {
				g.silent[j].Store(1)
				continue // unreachable peer; retry next round
			}
			g.self.GossipVecs(theirNext, theirDur)
		} else if vg, ok := peer.(ReplicaAPI); ok {
			theirs, err := vg.GossipVec(vec)
			if err != nil {
				g.silent[j].Store(1)
				continue // unreachable peer; retry next round
			}
			g.self.GossipVec(theirs)
		} else {
			theirs, err := peer.Gossip(g.self.Index(), next)
			if err != nil {
				g.silent[j].Store(1)
				continue
			}
			g.self.Gossip(j, theirs)
		}
		g.silent[j].Store(0)
	}
	g.lastRound.Store(time.Now().UnixNano())
	g.rounds.Inc()
}

// SilentPeers returns how many peers failed their most recent exchange.
func (g *Gossiper) SilentPeers() int {
	n := 0
	for j := range g.silent {
		if g.silent[j].Load() != 0 {
			n++
		}
	}
	return n
}

// PeerSilent reports whether peer j's last exchange failed.
func (g *Gossiper) PeerSilent(j int) bool {
	return j >= 0 && j < len(g.silent) && g.silent[j].Load() != 0
}

// RoundAge returns how long ago the last gossip round completed, or a
// negative duration if none has.
func (g *Gossiper) RoundAge() time.Duration {
	ns := g.lastRound.Load()
	if ns == 0 {
		return -1
	}
	return time.Since(time.Unix(0, ns))
}

// EnableMetrics exports gossip liveness for this maintainer: the age of the
// last completed round (seconds; -1 before the first) and the total round
// count. Call before Start.
func (g *Gossiper) EnableMetrics(reg *metrics.Registry, extra ...metrics.Label) {
	lbls := append([]metrics.Label{metrics.L("maintainer", strconv.Itoa(g.self.Index()))}, extra...)
	reg.GaugeFunc("flstore_gossip_round_age_seconds", func() float64 {
		if g.lastRound.Load() == 0 {
			return -1
		}
		return g.RoundAge().Seconds()
	}, lbls...)
	reg.CounterFunc("flstore_gossip_rounds_total", func() float64 { return float64(g.rounds.Value()) }, lbls...)
	for j := range g.peers {
		if j == g.self.Index() || g.peers[j] == nil {
			continue
		}
		j := j
		reg.GaugeFunc("flstore_gossip_peer_silent", func() float64 {
			if g.PeerSilent(j) {
				return 1
			}
			return 0
		}, append([]metrics.Label{metrics.L("peer", strconv.Itoa(j))}, lbls...)...)
	}
}

// Stop halts the loop and waits for it to exit.
func (g *Gossiper) Stop() {
	g.mu.Lock()
	if !g.started {
		g.mu.Unlock()
		return
	}
	g.mu.Unlock()
	select {
	case <-g.stop:
	default:
		close(g.stop)
	}
	<-g.done
}
