package flstore

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/ratelimit"
	"repro/internal/storage"
)

func newTestMaintainer(t *testing.T, idx, n int, batch uint64) *Maintainer {
	t.Helper()
	m, err := NewMaintainer(MaintainerConfig{
		Index:     idx,
		Placement: Placement{NumMaintainers: n, BatchSize: batch},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func bodyRec(s string) *core.Record { return &core.Record{Body: []byte(s)} }

func TestMaintainerPostAssignment(t *testing.T) {
	// Maintainer 1 of 3, batch 10: owns 11-20, 41-50, 71-80, ...
	m := newTestMaintainer(t, 1, 3, 10)
	var got []uint64
	for i := 0; i < 25; i++ {
		lids, err := m.Append([]*core.Record{bodyRec(fmt.Sprint(i))})
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, lids...)
	}
	want := []uint64{11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 41, 42, 43, 44, 45, 46, 47, 48, 49, 50, 71, 72, 73, 74, 75}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("assigned LIds = %v, want %v", got, want)
		}
	}
	if n, _ := m.NextUnfilled(); n != 76 {
		t.Errorf("NextUnfilled = %d, want 76", n)
	}
}

func TestMaintainerAppendSetsTOIdAndLId(t *testing.T) {
	m := newTestMaintainer(t, 0, 1, 100)
	r := bodyRec("x")
	lids, err := m.Append([]*core.Record{r})
	if err != nil {
		t.Fatal(err)
	}
	if r.LId != lids[0] || r.TOId != lids[0] {
		t.Errorf("record LId/TOId = %d/%d, want %d", r.LId, r.TOId, lids[0])
	}
}

func TestMaintainerAppendRejectsPreassigned(t *testing.T) {
	m := newTestMaintainer(t, 0, 1, 100)
	if _, err := m.Append([]*core.Record{{LId: 5, TOId: 5}}); err == nil {
		t.Error("Append accepted a record with an LId")
	}
}

func TestMaintainerIndexBounds(t *testing.T) {
	if _, err := NewMaintainer(MaintainerConfig{Index: 3, Placement: Placement{NumMaintainers: 3, BatchSize: 1}}); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := NewMaintainer(MaintainerConfig{Index: -1, Placement: Placement{NumMaintainers: 3, BatchSize: 1}}); err == nil {
		t.Error("negative index accepted")
	}
}

func TestMaintainerReadEnforcesHead(t *testing.T) {
	p := Placement{NumMaintainers: 2, BatchSize: 5}
	m0, _ := NewMaintainer(MaintainerConfig{Index: 0, Placement: p, EnforceHead: true})
	// Fill maintainer 0's first range (LIds 1-5).
	for i := 0; i < 5; i++ {
		m0.Append([]*core.Record{bodyRec("r")})
	}
	// m0 has heard nothing from m1, so head = min(11, 6) - 1 = 5.
	if h, _ := m0.Head(); h != 5 {
		t.Fatalf("Head = %d, want 5", h)
	}
	if _, err := m0.Read(3); err != nil {
		t.Errorf("Read below head failed: %v", err)
	}
	// Advance m0 into its second range; head still pinned by m1.
	for i := 0; i < 5; i++ {
		m0.Append([]*core.Record{bodyRec("r")})
	}
	if _, err := m0.Read(11); !errors.Is(err, core.ErrPastHead) {
		t.Errorf("Read past head = %v, want ErrPastHead", err)
	}
	// Gossip from m1 raises the head; the read now succeeds.
	m0.Gossip(1, 16) // m1 filled 6-10, so its next owned position is 16
	if _, err := m0.Read(11); err != nil {
		t.Errorf("Read after gossip failed: %v", err)
	}
}

func TestMaintainerReadWrongOwner(t *testing.T) {
	m := newTestMaintainer(t, 0, 2, 5)
	if _, err := m.Read(6); !errors.Is(err, ErrWrongMaintainer) {
		t.Errorf("Read foreign LId = %v, want ErrWrongMaintainer", err)
	}
	if _, err := m.Read(0); !errors.Is(err, core.ErrNoSuchRecord) {
		t.Errorf("Read(0) = %v, want ErrNoSuchRecord", err)
	}
}

func TestMaintainerAppendAssignedInOrder(t *testing.T) {
	m := newTestMaintainer(t, 0, 2, 3) // owns 1-3, 7-9, 13-15
	recs := []*core.Record{
		{LId: 1, TOId: 1}, {LId: 2, TOId: 2}, {LId: 3, TOId: 3}, {LId: 7, TOId: 4},
	}
	if err := m.AppendAssigned(recs); err != nil {
		t.Fatal(err)
	}
	if n, _ := m.NextUnfilled(); n != 8 {
		t.Errorf("NextUnfilled = %d, want 8", n)
	}
	if m.Store().Len() != 4 {
		t.Errorf("stored %d, want 4", m.Store().Len())
	}
}

func TestMaintainerAppendAssignedOutOfOrderBuffered(t *testing.T) {
	m := newTestMaintainer(t, 0, 2, 3)
	// Slot 1 (LId 2) arrives before slot 0 (LId 1).
	if err := m.AppendAssigned([]*core.Record{{LId: 2, TOId: 2}}); err != nil {
		t.Fatal(err)
	}
	if m.Store().Len() != 0 {
		t.Fatal("out-of-order record stored before frontier reached it")
	}
	if m.PendingAssigned() != 1 {
		t.Fatalf("PendingAssigned = %d, want 1", m.PendingAssigned())
	}
	if n, _ := m.NextUnfilled(); n != 1 {
		t.Errorf("NextUnfilled = %d, want 1 (frontier must not jump the gap)", n)
	}
	if err := m.AppendAssigned([]*core.Record{{LId: 1, TOId: 1}}); err != nil {
		t.Fatal(err)
	}
	if m.Store().Len() != 2 || m.PendingAssigned() != 0 {
		t.Errorf("stored=%d pending=%d, want 2/0", m.Store().Len(), m.PendingAssigned())
	}
	if n, _ := m.NextUnfilled(); n != 3 {
		t.Errorf("NextUnfilled = %d, want 3", n)
	}
}

func TestMaintainerAppendAssignedRejectsForeignAndDuplicate(t *testing.T) {
	m := newTestMaintainer(t, 0, 2, 3)
	if err := m.AppendAssigned([]*core.Record{{LId: 4, TOId: 1}}); !errors.Is(err, ErrWrongMaintainer) {
		t.Errorf("foreign LId err = %v", err)
	}
	if err := m.AppendAssigned([]*core.Record{{LId: 1, TOId: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := m.AppendAssigned([]*core.Record{{LId: 1, TOId: 1}}); !errors.Is(err, storage.ErrDuplicate) {
		t.Errorf("duplicate err = %v", err)
	}
	if err := m.AppendAssigned([]*core.Record{{TOId: 1}}); err == nil {
		t.Error("record without LId accepted")
	}
}

func TestMaintainerAppendAfterImmediate(t *testing.T) {
	m := newTestMaintainer(t, 0, 1, 100)
	m.Append([]*core.Record{bodyRec("a")}) // LId 1
	lids, err := m.AppendAfter(0, []*core.Record{bodyRec("b")})
	if err != nil {
		t.Fatal(err)
	}
	if len(lids) != 1 || lids[0] != 2 {
		t.Errorf("AppendAfter lids = %v, want [2]", lids)
	}
}

func TestMaintainerAppendAfterBuffersUntilBoundPasses(t *testing.T) {
	// Maintainer 1 of 2, batch 5: owns 6-10, 16-20.
	m := newTestMaintainer(t, 1, 2, 5)
	// Constrain to LIds > 7; maintainer's next is 6, so buffer.
	lids, err := m.AppendAfter(7, []*core.Record{bodyRec("ordered")})
	if err != nil {
		t.Fatal(err)
	}
	if lids != nil {
		t.Fatalf("expected buffering, got lids %v", lids)
	}
	if m.OrderBuffered() != 1 {
		t.Fatalf("OrderBuffered = %d, want 1", m.OrderBuffered())
	}
	// Appends advance the frontier past 7; the buffered record releases.
	m.Append([]*core.Record{bodyRec("a"), bodyRec("b")}) // LIds 6,7 → next=8
	if m.OrderBuffered() != 0 {
		t.Fatalf("OrderBuffered = %d, want 0 after release", m.OrderBuffered())
	}
	// The released record must have an LId > 7.
	recs, _ := m.Scan(core.Rule{})
	var found *core.Record
	for _, r := range recs {
		if string(r.Body) == "ordered" {
			found = r
		}
	}
	if found == nil {
		t.Fatal("ordered record not stored after release")
	}
	if found.LId <= 7 {
		t.Errorf("ordered record LId = %d, want > 7", found.LId)
	}
}

func TestMaintainerAppendAfterBacklogBound(t *testing.T) {
	m, _ := NewMaintainer(MaintainerConfig{
		Index: 0, Placement: Placement{NumMaintainers: 1, BatchSize: 10},
		MaxOrderBuffer: 2,
	})
	if _, err := m.AppendAfter(100, []*core.Record{bodyRec("a"), bodyRec("b")}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AppendAfter(100, []*core.Record{bodyRec("c")}); !errors.Is(err, ErrOrderBacklog) {
		t.Errorf("backlog err = %v, want ErrOrderBacklog", err)
	}
}

func TestMaintainerScanRules(t *testing.T) {
	m := newTestMaintainer(t, 0, 1, 1000)
	for i := 1; i <= 20; i++ {
		rec := &core.Record{Body: []byte{byte(i)}}
		if i%2 == 0 {
			rec.Tags = []core.Tag{{Key: "even", Value: fmt.Sprint(i)}}
		}
		m.Append([]*core.Record{rec})
	}
	recs, err := m.Scan(core.Rule{TagKey: "even", Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0].LId != 2 || recs[2].LId != 6 {
		t.Errorf("ascending limited scan wrong: %d records", len(recs))
	}
	recs, _ = m.Scan(core.Rule{TagKey: "even", Limit: 2, MostRecent: true})
	if len(recs) != 2 || recs[0].LId != 20 || recs[1].LId != 18 {
		t.Errorf("most-recent scan = %v", []uint64{recs[0].LId, recs[1].LId})
	}
	recs, _ = m.Scan(core.Rule{MinLId: 5, MaxLIdExclusive: 8})
	if len(recs) != 3 {
		t.Errorf("bounded scan returned %d records, want 3", len(recs))
	}
}

func TestMaintainerLimiterRejectsAndCounts(t *testing.T) {
	lim := ratelimit.New(10, 5) // tiny capacity
	m, _ := NewMaintainer(MaintainerConfig{
		Index: 0, Placement: Placement{NumMaintainers: 1, BatchSize: 100},
		Limiter: lim, RejectPenalty: 0.25,
	})
	var ok, rejected int
	for i := 0; i < 50; i++ {
		_, err := m.Append([]*core.Record{bodyRec("x")})
		switch {
		case err == nil:
			ok++
		case errors.Is(err, ErrOverloaded):
			rejected++
		default:
			t.Fatal(err)
		}
	}
	if ok == 0 || rejected == 0 {
		t.Errorf("ok=%d rejected=%d; want both nonzero", ok, rejected)
	}
	if got := m.Rejected.Value(); got != uint64(rejected) {
		t.Errorf("Rejected counter = %d, want %d", got, rejected)
	}
	if got := m.Appended.Value(); got != uint64(ok) {
		t.Errorf("Appended counter = %d, want %d", got, ok)
	}
}

func TestMaintainerRecoversFrontierFromStore(t *testing.T) {
	st := storage.NewMemStore()
	p := Placement{NumMaintainers: 2, BatchSize: 5}
	m1, _ := NewMaintainer(MaintainerConfig{Index: 0, Placement: p, Store: st})
	for i := 0; i < 7; i++ { // fills 1-5, 11-12
		m1.Append([]*core.Record{bodyRec("x")})
	}
	// "Restart": a new maintainer over the same store must resume at the
	// next owned slot, not reassign LIds.
	m2, _ := NewMaintainer(MaintainerConfig{Index: 0, Placement: p, Store: st})
	lids, err := m2.Append([]*core.Record{bodyRec("y")})
	if err != nil {
		t.Fatal(err)
	}
	if lids[0] != 13 {
		t.Errorf("post-restart LId = %d, want 13", lids[0])
	}
}

func TestMaintainerGossipUnknownPeer(t *testing.T) {
	m := newTestMaintainer(t, 0, 2, 5)
	if _, err := m.Gossip(5, 100); err == nil {
		t.Error("gossip from unknown maintainer accepted")
	}
}
