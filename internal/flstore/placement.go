// Package flstore implements the Fractal Log Store (§5): a distributed,
// deterministic shared log that scales beyond a single machine by
// abandoning sequencer-style pre-assignment of log positions. Disjoint
// round-robin ranges of the log are owned by independent log maintainers;
// a record is assigned its position *after* it arrives at a maintainer
// (post-assignment), so the append path has no cross-machine coordination.
package flstore

import "fmt"

// Placement is the deterministic LId layout of §5.2: positions are dealt to
// maintainers round-robin in rounds of BatchSize consecutive positions.
// With 3 maintainers and BatchSize 1000, maintainer 0 owns 1–1000,
// 3001–4000, 6001–7000, …; maintainer 1 owns 1001–2000, 4001–5000, …
// (Figure 4). LIds are 1-based; 0 means "unassigned".
//
// Placement is a pure value: every component (queues, clients, readers)
// can compute ownership locally, which is what removes the sequencer.
type Placement struct {
	NumMaintainers int
	BatchSize      uint64
}

// Validate reports whether the placement parameters are usable.
func (p Placement) Validate() error {
	if p.NumMaintainers < 1 {
		return fmt.Errorf("flstore: NumMaintainers must be >= 1, got %d", p.NumMaintainers)
	}
	if p.BatchSize < 1 {
		return fmt.Errorf("flstore: BatchSize must be >= 1, got %d", p.BatchSize)
	}
	return nil
}

// Owner returns the maintainer index owning position lid.
func (p Placement) Owner(lid uint64) int {
	if lid == 0 {
		panic("flstore: Owner of unassigned LId")
	}
	chunk := (lid - 1) / p.BatchSize
	return int(chunk % uint64(p.NumMaintainers))
}

// SlotOf returns the index (0-based) of lid within the owning maintainer's
// sequence of owned positions: the k-th position maintainer Owner(lid)
// fills is SlotOf(lid) = k.
func (p Placement) SlotOf(lid uint64) uint64 {
	chunk := (lid - 1) / p.BatchSize
	round := chunk / uint64(p.NumMaintainers)
	return round*p.BatchSize + (lid-1)%p.BatchSize
}

// LIdOfSlot is the inverse of SlotOf: the LId of the slot-th position (0-
// based) owned by maintainer m.
func (p Placement) LIdOfSlot(m int, slot uint64) uint64 {
	round := slot / p.BatchSize
	within := slot % p.BatchSize
	chunk := round*uint64(p.NumMaintainers) + uint64(m)
	return chunk*p.BatchSize + within + 1
}

// LIdsOfSlots fills dst with the LIds of len(dst) consecutive slots of
// maintainer m starting at firstSlot — the batch form of LIdOfSlot the
// append hot path uses to assign a whole batch's positions in one range
// walk (incrementing within a round, jumping at round boundaries) instead
// of one divmod pair per record.
func (p Placement) LIdsOfSlots(m int, firstSlot uint64, dst []uint64) {
	if len(dst) == 0 {
		return
	}
	lid := p.LIdOfSlot(m, firstSlot)
	within := firstSlot % p.BatchSize
	for i := range dst {
		dst[i] = lid
		within++
		if within == p.BatchSize {
			within = 0
			lid += uint64(p.NumMaintainers-1)*p.BatchSize + 1
		} else {
			lid++
		}
	}
}

// RoundStart returns the first LId of maintainer m's range in the given
// round (0-based).
func (p Placement) RoundStart(m int, round uint64) uint64 {
	return (round*uint64(p.NumMaintainers)+uint64(m))*p.BatchSize + 1
}

// Head computes the head of the log (HL, §5.4) from a vector of
// next-unfilled LIds, one per maintainer: the largest LId such that no
// position at or below it is a gap. Because each maintainer fills its own
// positions densely in order, every position below every maintainer's
// next-unfilled position is filled, so HL = min(next) − 1.
func Head(nextUnfilled []uint64) uint64 {
	if len(nextUnfilled) == 0 {
		return 0
	}
	min := nextUnfilled[0]
	for _, v := range nextUnfilled[1:] {
		if v < min {
			min = v
		}
	}
	if min == 0 {
		return 0
	}
	return min - 1
}
