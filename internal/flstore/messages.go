package flstore

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/replica"
	"repro/internal/rpc"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Message types of the FLStore wire protocol.
const (
	msgAppend uint8 = iota + 1
	msgAppendAssigned
	msgAppendAfter
	msgRead
	msgScan
	msgHead
	msgNextUnfilled
	msgGossip
	msgPost
	msgLookup
	msgGetConfig
	msgStats
	msgAppendFor
	msgReplicaAppend
	msgRangeFrontier
	msgPullRange
	msgGossipVec
	msgReplicas
	msgReadRange
	msgMultiRead
	msgTailWait
	msgInvalidate
	msgWatermark
	msgGossipVecs
	msgAdminEpochs
	msgAdminPropose
)

// --- encoding helpers ---

func appendRule(dst []byte, ru core.Rule) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, ru.MinLId)
	dst = binary.LittleEndian.AppendUint64(dst, ru.MaxLId)
	dst = binary.LittleEndian.AppendUint64(dst, ru.MaxLIdExclusive)
	var hasHost byte
	if ru.HasHost {
		hasHost = 1
	}
	dst = append(dst, hasHost)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(ru.Host))
	dst = binary.LittleEndian.AppendUint64(dst, ru.MinTOId)
	dst = binary.LittleEndian.AppendUint64(dst, ru.MaxTOId)
	dst = wire.AppendString(dst, ru.TagKey)
	dst = append(dst, byte(ru.TagCmp))
	dst = wire.AppendString(dst, ru.TagValue)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(ru.Limit))
	var mr byte
	if ru.MostRecent {
		mr = 1
	}
	dst = append(dst, mr)
	return dst
}

func decodeRule(buf []byte) (core.Rule, int, error) {
	var ru core.Rule
	if len(buf) < 8*3+1+2+8*2 {
		return ru, 0, errors.New("flstore: short rule")
	}
	ru.MinLId = binary.LittleEndian.Uint64(buf)
	ru.MaxLId = binary.LittleEndian.Uint64(buf[8:])
	ru.MaxLIdExclusive = binary.LittleEndian.Uint64(buf[16:])
	ru.HasHost = buf[24] == 1
	ru.Host = core.DCID(binary.LittleEndian.Uint16(buf[25:]))
	ru.MinTOId = binary.LittleEndian.Uint64(buf[27:])
	ru.MaxTOId = binary.LittleEndian.Uint64(buf[35:])
	off := 43
	key, n, err := wire.DecodeString(buf[off:])
	if err != nil {
		return ru, 0, err
	}
	ru.TagKey = key
	off += n
	if len(buf) < off+1 {
		return ru, 0, errors.New("flstore: short rule cmp")
	}
	ru.TagCmp = core.CmpOp(buf[off])
	off++
	val, n, err := wire.DecodeString(buf[off:])
	if err != nil {
		return ru, 0, err
	}
	ru.TagValue = val
	off += n
	if len(buf) < off+5 {
		return ru, 0, errors.New("flstore: short rule tail")
	}
	ru.Limit = int(binary.LittleEndian.Uint32(buf[off:]))
	ru.MostRecent = buf[off+4] == 1
	off += 5
	return ru, off, nil
}

func appendLIds(dst []byte, lids []uint64) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(lids)))
	for _, l := range lids {
		dst = binary.LittleEndian.AppendUint64(dst, l)
	}
	return dst
}

func decodeLIds(buf []byte) ([]uint64, int, error) {
	if len(buf) < 4 {
		return nil, 0, errors.New("flstore: short lid list")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	if len(buf) < 4+8*n {
		return nil, 0, errors.New("flstore: short lid list body")
	}
	lids := make([]uint64, n)
	for i := range lids {
		lids[i] = binary.LittleEndian.Uint64(buf[4+8*i:])
	}
	return lids, 4 + 8*n, nil
}

// appendRangeResult encodes a range-read response: the covered-through
// position, then the record batch in the standard count-prefixed frame.
func appendRangeResult(dst []byte, res RangeResult) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, res.CoveredHi)
	return core.AppendRecords(dst, res.Records)
}

// decodeRangeResult decodes a range-read response envelope. The batch is
// arena-decoded (DecodeRecordsShared), so a response of N records costs
// O(1) allocations regardless of N.
func decodeRangeResult(buf []byte) (RangeResult, error) {
	var res RangeResult
	if len(buf) < 8 {
		return res, errors.New("flstore: short range-read response")
	}
	res.CoveredHi = binary.LittleEndian.Uint64(buf)
	recs, _, err := core.DecodeRecordsShared(buf[8:])
	if err != nil {
		return res, err
	}
	res.Records = recs
	return res, nil
}

func appendPostings(dst []byte, ps []Posting) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(ps)))
	for _, p := range ps {
		dst = wire.AppendString(dst, p.Key)
		dst = wire.AppendString(dst, p.Value)
		dst = binary.LittleEndian.AppendUint64(dst, p.LId)
	}
	return dst
}

func decodePostings(buf []byte) ([]Posting, error) {
	if len(buf) < 4 {
		return nil, errors.New("flstore: short postings")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	off := 4
	ps := make([]Posting, 0, n)
	for i := 0; i < n; i++ {
		key, used, err := wire.DecodeString(buf[off:])
		if err != nil {
			return nil, err
		}
		off += used
		val, used, err := wire.DecodeString(buf[off:])
		if err != nil {
			return nil, err
		}
		off += used
		if len(buf) < off+8 {
			return nil, errors.New("flstore: short posting lid")
		}
		ps = append(ps, Posting{Key: key, Value: val, LId: binary.LittleEndian.Uint64(buf[off:])})
		off += 8
	}
	return ps, nil
}

func appendConfig(dst []byte, cfg *Config) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(cfg.Placement.NumMaintainers))
	dst = binary.LittleEndian.AppendUint64(dst, cfg.Placement.BatchSize)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(cfg.MaintainerAddrs)))
	for _, a := range cfg.MaintainerAddrs {
		dst = wire.AppendString(dst, a)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(cfg.IndexerAddrs)))
	for _, a := range cfg.IndexerAddrs {
		dst = wire.AppendString(dst, a)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(cfg.Epochs)))
	for _, e := range cfg.Epochs {
		dst = binary.LittleEndian.AppendUint64(dst, e.FirstLId)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(e.Placement.NumMaintainers))
		dst = binary.LittleEndian.AppendUint64(dst, e.Placement.BatchSize)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(e.MaintainerAddrs)))
		for _, a := range e.MaintainerAddrs {
			dst = wire.AppendString(dst, a)
		}
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(cfg.Replication))
	dst = wire.AppendString(dst, cfg.AckPolicy)
	return dst
}

func decodeConfig(buf []byte) (*Config, error) {
	if len(buf) < 12 {
		return nil, errors.New("flstore: short config")
	}
	cfg := &Config{}
	cfg.Placement.NumMaintainers = int(binary.LittleEndian.Uint32(buf))
	cfg.Placement.BatchSize = binary.LittleEndian.Uint64(buf[4:])
	off := 12
	readAddrs := func() ([]string, error) {
		if len(buf) < off+4 {
			return nil, errors.New("flstore: short config addrs")
		}
		n := int(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		addrs := make([]string, 0, n)
		for i := 0; i < n; i++ {
			s, used, err := wire.DecodeString(buf[off:])
			if err != nil {
				return nil, err
			}
			addrs = append(addrs, s)
			off += used
		}
		return addrs, nil
	}
	var err error
	if cfg.MaintainerAddrs, err = readAddrs(); err != nil {
		return nil, err
	}
	if cfg.IndexerAddrs, err = readAddrs(); err != nil {
		return nil, err
	}
	if len(buf) < off+4 {
		return nil, errors.New("flstore: short config epochs")
	}
	n := int(binary.LittleEndian.Uint32(buf[off:]))
	off += 4
	for i := 0; i < n; i++ {
		if len(buf) < off+20 {
			return nil, errors.New("flstore: short config epoch")
		}
		e := Epoch{
			FirstLId: binary.LittleEndian.Uint64(buf[off:]),
			Placement: Placement{
				NumMaintainers: int(binary.LittleEndian.Uint32(buf[off+8:])),
				BatchSize:      binary.LittleEndian.Uint64(buf[off+12:]),
			},
		}
		off += 20
		if len(buf) < off+4 {
			return nil, errors.New("flstore: short config epoch addrs")
		}
		na := int(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		for j := 0; j < na; j++ {
			s, used, err := wire.DecodeString(buf[off:])
			if err != nil {
				return nil, err
			}
			e.MaintainerAddrs = append(e.MaintainerAddrs, s)
			off += used
		}
		cfg.Epochs = append(cfg.Epochs, e)
	}
	if len(buf) < off+4 {
		return nil, errors.New("flstore: short config replication")
	}
	cfg.Replication = int(binary.LittleEndian.Uint32(buf[off:]))
	off += 4
	ack, _, err := wire.DecodeString(buf[off:])
	if err != nil {
		return nil, err
	}
	cfg.AckPolicy = ack
	return cfg, nil
}

// --- server adapters ---

// ServeMaintainer registers RPC handlers exposing m on srv.
func ServeMaintainer(srv *rpc.Server, m MaintainerAPI) {
	// The append handlers decode with DecodeRecordsShared: the request
	// payload is borrowed (it aliases the connection's read scratch), and
	// the arena decode materializes retainable records in O(1) allocations
	// per batch. They register traced: the RPC envelope's trace context is
	// restamped onto the decoded records (the codec doesn't carry it), so
	// the maintainer's hops join the caller's trace; untraced requests
	// reach the same handlers with the zero context.
	srv.HandleTraced(msgAppend, func(tc *trace.Ctx, p []byte) ([]byte, error) {
		recs, _, err := core.DecodeRecordsShared(p)
		if err != nil {
			return nil, err
		}
		stampRecords(recs, tc)
		lids, err := m.Append(recs)
		if err != nil {
			return nil, err
		}
		return appendLIds(nil, lids), nil
	})
	srv.HandleTraced(msgAppendAssigned, func(tc *trace.Ctx, p []byte) ([]byte, error) {
		recs, _, err := core.DecodeRecordsShared(p)
		if err != nil {
			return nil, err
		}
		stampRecords(recs, tc)
		return nil, m.AppendAssigned(recs)
	})
	srv.HandleTraced(msgAppendAfter, func(tc *trace.Ctx, p []byte) ([]byte, error) {
		if len(p) < 8 {
			return nil, errors.New("flstore: short AppendAfter request")
		}
		minLId := binary.LittleEndian.Uint64(p)
		recs, _, err := core.DecodeRecordsShared(p[8:])
		if err != nil {
			return nil, err
		}
		stampRecords(recs, tc)
		lids, err := m.AppendAfter(minLId, recs)
		if err != nil {
			return nil, err
		}
		return appendLIds(nil, lids), nil
	})
	srv.Handle(msgRead, func(p []byte) ([]byte, error) {
		if len(p) < 8 {
			return nil, errors.New("flstore: short Read request")
		}
		rec, err := m.Read(binary.LittleEndian.Uint64(p))
		if err != nil {
			return nil, err
		}
		return core.MarshalRecord(rec), nil
	})
	srv.Handle(msgScan, func(p []byte) ([]byte, error) {
		ru, _, err := decodeRule(p)
		if err != nil {
			return nil, err
		}
		recs, err := m.Scan(ru)
		if err != nil {
			return nil, err
		}
		return core.AppendRecords(make([]byte, 0, core.EncodedSizeRecords(recs)), recs), nil
	})
	srv.Handle(msgHead, func(p []byte) ([]byte, error) {
		h, err := m.Head()
		if err != nil {
			return nil, err
		}
		return binary.LittleEndian.AppendUint64(nil, h), nil
	})
	srv.Handle(msgNextUnfilled, func(p []byte) ([]byte, error) {
		n, err := m.NextUnfilled()
		if err != nil {
			return nil, err
		}
		return binary.LittleEndian.AppendUint64(nil, n), nil
	})
	srv.Handle(msgGossip, func(p []byte) ([]byte, error) {
		if len(p) < 12 {
			return nil, errors.New("flstore: short Gossip request")
		}
		from := int(binary.LittleEndian.Uint32(p))
		next := binary.LittleEndian.Uint64(p[4:])
		mine, err := m.Gossip(from, next)
		if err != nil {
			return nil, err
		}
		return binary.LittleEndian.AppendUint64(nil, mine), nil
	})
	if r, ok := m.(ReplicaAPI); ok {
		serveReplicaOps(srv, r)
	}
	if rr, ok := m.(RangeReadAPI); ok {
		serveRangeReadOps(srv, rr)
	}
	if iv, ok := m.(InvalidationAPI); ok {
		serveInvalidationOps(srv, iv)
	}
}

// serveInvalidationOps registers the Hermes-style invalidation handlers
// for maintainers that implement InvalidationAPI. msgInvalidate is the
// fast-path control frame riding ahead of every fan-out payload: two
// fixed words, no response body, decoded in place.
func serveInvalidationOps(srv *rpc.Server, iv InvalidationAPI) {
	srv.Handle(msgInvalidate, func(p []byte) ([]byte, error) {
		if len(p) < 16 {
			return nil, errors.New("flstore: short Invalidate request")
		}
		return nil, iv.Invalidate(int(binary.LittleEndian.Uint64(p)), binary.LittleEndian.Uint64(p[8:]))
	})
	srv.Handle(msgWatermark, func(p []byte) ([]byte, error) {
		if len(p) < 8 {
			return nil, errors.New("flstore: short Watermark request")
		}
		wm, ann, err := iv.ValidityWatermark(int(binary.LittleEndian.Uint64(p)))
		if err != nil {
			return nil, err
		}
		resp := binary.LittleEndian.AppendUint64(make([]byte, 0, 16), wm)
		return binary.LittleEndian.AppendUint64(resp, ann), nil
	})
}

// serveRangeReadOps registers the batched read-path handlers for
// maintainers that implement RangeReadAPI. msgTailWait is registered
// detached: a parked long-poll must not head-of-line-block the pipelined
// requests behind it on a shared connection.
func serveRangeReadOps(srv *rpc.Server, rr RangeReadAPI) {
	srv.HandleTraced(msgReadRange, func(tc *trace.Ctx, p []byte) ([]byte, error) {
		if len(p) < 28 {
			return nil, errors.New("flstore: short ReadRange request")
		}
		q := RangeQuery{
			Lo:         binary.LittleEndian.Uint64(p),
			Hi:         binary.LittleEndian.Uint64(p[8:]),
			Range:      int(int32(binary.LittleEndian.Uint32(p[16:]))),
			MaxRecords: int(binary.LittleEndian.Uint32(p[20:])),
			MaxBytes:   int(binary.LittleEndian.Uint32(p[24:])),
			Trace:      *tc,
		}
		res, err := rr.ReadRange(q)
		if err != nil {
			return nil, err
		}
		return appendRangeResult(make([]byte, 0, 12+core.EncodedSizeRecords(res.Records)), res), nil
	})
	srv.Handle(msgMultiRead, func(p []byte) ([]byte, error) {
		lids, _, err := decodeLIds(p)
		if err != nil {
			return nil, err
		}
		recs, err := rr.MultiRead(lids)
		if err != nil {
			return nil, err
		}
		return core.AppendRecords(make([]byte, 0, core.EncodedSizeRecords(recs)), recs), nil
	})
	srv.HandleDetached(msgTailWait, func(p []byte) ([]byte, error) {
		if len(p) < 20 {
			return nil, errors.New("flstore: short TailWait request")
		}
		rangeIdx := int(int32(binary.LittleEndian.Uint32(p)))
		cursor := binary.LittleEndian.Uint64(p[4:])
		maxWait := time.Duration(int64(binary.LittleEndian.Uint64(p[12:])))
		f, err := rr.TailWait(rangeIdx, cursor, maxWait)
		if err != nil {
			return nil, err
		}
		return binary.LittleEndian.AppendUint64(nil, f), nil
	})
}

// serveReplicaOps registers the replication handlers for maintainers that
// implement ReplicaAPI.
func serveReplicaOps(srv *rpc.Server, r ReplicaAPI) {
	srv.HandleTraced(msgAppendFor, func(tc *trace.Ctx, p []byte) ([]byte, error) {
		if len(p) < 4 {
			return nil, errors.New("flstore: short AppendFor request")
		}
		rangeIdx := int(binary.LittleEndian.Uint32(p))
		recs, _, err := core.DecodeRecordsShared(p[4:])
		if err != nil {
			return nil, err
		}
		stampRecords(recs, tc)
		lids, err := r.AppendFor(rangeIdx, recs)
		if err != nil {
			return nil, err
		}
		return appendLIds(nil, lids), nil
	})
	srv.HandleTraced(msgReplicaAppend, func(tc *trace.Ctx, p []byte) ([]byte, error) {
		recs, _, err := core.DecodeRecordsShared(p)
		if err != nil {
			return nil, err
		}
		stampRecords(recs, tc)
		return nil, r.ReplicaAppend(recs)
	})
	srv.Handle(msgRangeFrontier, func(p []byte) ([]byte, error) {
		if len(p) < 4 {
			return nil, errors.New("flstore: short RangeFrontier request")
		}
		f, err := r.RangeFrontier(int(binary.LittleEndian.Uint32(p)))
		if err != nil {
			return nil, err
		}
		return binary.LittleEndian.AppendUint64(nil, f), nil
	})
	srv.Handle(msgPullRange, func(p []byte) ([]byte, error) {
		if len(p) < 16 {
			return nil, errors.New("flstore: short PullRange request")
		}
		rangeIdx := int(binary.LittleEndian.Uint32(p))
		from := binary.LittleEndian.Uint64(p[4:])
		limit := int(binary.LittleEndian.Uint32(p[12:]))
		recs, err := r.PullRange(rangeIdx, from, limit)
		if err != nil {
			return nil, err
		}
		return core.AppendRecords(make([]byte, 0, core.EncodedSizeRecords(recs)), recs), nil
	})
	srv.Handle(msgGossipVec, func(p []byte) ([]byte, error) {
		vec, _, err := decodeLIds(p)
		if err != nil {
			return nil, err
		}
		mine, err := r.GossipVec(vec)
		if err != nil {
			return nil, err
		}
		return appendLIds(nil, mine), nil
	})
	if dg, ok := r.(DurableGossipAPI); ok {
		srv.Handle(msgGossipVecs, func(p []byte) ([]byte, error) {
			next, n, err := decodeLIds(p)
			if err != nil {
				return nil, err
			}
			dur, _, err := decodeLIds(p[n:])
			if err != nil {
				return nil, err
			}
			myNext, myDur, err := dg.GossipVecs(next, dur)
			if err != nil {
				return nil, err
			}
			return appendLIds(appendLIds(nil, myNext), myDur), nil
		})
	}
}

// ServeIndexer registers RPC handlers exposing ix on srv.
func ServeIndexer(srv *rpc.Server, ix IndexerAPI) {
	srv.Handle(msgPost, func(p []byte) ([]byte, error) {
		ps, err := decodePostings(p)
		if err != nil {
			return nil, err
		}
		return nil, ix.Post(ps)
	})
	srv.Handle(msgLookup, func(p []byte) ([]byte, error) {
		q, err := decodeLookup(p)
		if err != nil {
			return nil, err
		}
		lids, err := ix.Lookup(q)
		if err != nil {
			return nil, err
		}
		return appendLIds(nil, lids), nil
	})
}

// ServeController registers RPC handlers exposing c on srv.
func ServeController(srv *rpc.Server, c ControllerAPI) {
	srv.Handle(msgGetConfig, func(p []byte) ([]byte, error) {
		cfg, err := c.GetConfig()
		if err != nil {
			return nil, err
		}
		return appendConfig(nil, cfg), nil
	})
}

// ServeStats registers the msgStats handler on srv: a JSON-encoded snapshot
// of every series in reg. The controller exposes it so ops tooling (logctl
// stats) can read a node set's metrics over the same RPC substrate the data
// path uses, without requiring the HTTP exposition endpoint.
func ServeStats(srv *rpc.Server, reg *metrics.Registry) {
	srv.Handle(msgStats, func(p []byte) ([]byte, error) {
		return json.Marshal(reg)
	})
}

// ServeReplicas registers the msgReplicas handler on srv: a JSON-encoded
// replica.ClusterStatus assembled by fn at request time. The controller
// exposes it so `logctl replicas` can render per-group membership, health,
// and catch-up lag.
func ServeReplicas(srv *rpc.Server, fn func() (*replica.ClusterStatus, error)) {
	srv.Handle(msgReplicas, func(p []byte) ([]byte, error) {
		st, err := fn()
		if err != nil {
			return nil, err
		}
		return json.Marshal(st)
	})
}

// FetchReplicas retrieves the replica-group status from a server running
// ServeReplicas.
//
// Deprecated: use NewAdmin(c).Replicas(ctx) — the typed admin client adds
// cancellation, retries, and the rest of the admin surface.
func FetchReplicas(c rpc.Client) (*replica.ClusterStatus, error) {
	return NewAdmin(c).Replicas(context.Background())
}

// FetchStats retrieves a registry snapshot from a server running
// ServeStats.
//
// Deprecated: use NewAdmin(c).Stats(ctx) — the typed admin client adds
// cancellation, retries, and the rest of the admin surface.
func FetchStats(c rpc.Client) (metrics.Snapshot, error) {
	return NewAdmin(c).Stats(context.Background())
}

func appendLookup(dst []byte, q LookupQuery) []byte {
	dst = wire.AppendString(dst, q.Key)
	dst = append(dst, byte(q.Cmp))
	dst = wire.AppendString(dst, q.Value)
	dst = binary.LittleEndian.AppendUint64(dst, q.MaxLIdExclusive)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(q.Limit))
	var mr byte
	if q.MostRecent {
		mr = 1
	}
	return append(dst, mr)
}

func decodeLookup(buf []byte) (LookupQuery, error) {
	var q LookupQuery
	key, off, err := wire.DecodeString(buf)
	if err != nil {
		return q, err
	}
	q.Key = key
	if len(buf) < off+1 {
		return q, errors.New("flstore: short lookup cmp")
	}
	q.Cmp = core.CmpOp(buf[off])
	off++
	val, used, err := wire.DecodeString(buf[off:])
	if err != nil {
		return q, err
	}
	q.Value = val
	off += used
	if len(buf) < off+13 {
		return q, errors.New("flstore: short lookup tail")
	}
	q.MaxLIdExclusive = binary.LittleEndian.Uint64(buf[off:])
	q.Limit = int(binary.LittleEndian.Uint32(buf[off+8:]))
	q.MostRecent = buf[off+12] == 1
	return q, nil
}

// --- client adapters ---

// mapRemoteError restores the identity of well-known sentinel errors that
// crossed the wire as strings, so call sites can use errors.Is uniformly
// whether the API is local or remote. Overload rejections are rebuilt as
// typed OverloadErrors carrying the retry-after hint the rpc layer decoded
// from the message suffix.
func mapRemoteError(err error) error {
	if err == nil || !rpc.IsRemote(err) {
		return err
	}
	msg := err.Error()
	switch {
	case strings.Contains(msg, core.ErrNoSuchRecord.Error()):
		return fmt.Errorf("%w (remote)", core.ErrNoSuchRecord)
	case strings.Contains(msg, core.ErrPastHead.Error()):
		return fmt.Errorf("%w: %s", core.ErrPastHead, msg)
	case strings.Contains(msg, ErrOverloaded.Error()):
		return &OverloadError{RetryAfter: RetryAfter(err)}
	case strings.Contains(msg, storage.ErrDuplicate.Error()):
		return fmt.Errorf("%w: %s", storage.ErrDuplicate, msg)
	case strings.Contains(msg, ErrWrongMaintainer.Error()):
		return fmt.Errorf("%w: %s", ErrWrongMaintainer, msg)
	case strings.Contains(msg, ErrNotReplica.Error()):
		return fmt.Errorf("%w: %s", ErrNotReplica, msg)
	case strings.Contains(msg, ErrOrderBacklog.Error()):
		return fmt.Errorf("%w (remote)", ErrOrderBacklog)
	case strings.Contains(msg, ErrEpochSealed.Error()):
		// The boundary rides the error string ("new epoch starts at LId
		// %d") so the remote client recovers it without a round trip; an
		// unparsable message still maps to the sentinel.
		var first uint64
		if i := strings.Index(msg, "new epoch starts at LId "); i >= 0 {
			fmt.Sscanf(msg[i:], "new epoch starts at LId %d", &first)
		}
		return &EpochSealedError{FirstLId: first}
	case strings.Contains(msg, ErrReadBlocked.Error()):
		hint := RetryAfter(err)
		if hint <= 0 {
			hint = readBlockHint
		}
		return &ReadBlockedError{RetryAfter: hint}
	}
	return err
}

// maintainerClient implements MaintainerAPI over an rpc.Client.
type maintainerClient struct{ c rpc.Client }

// NewMaintainerClient wraps an RPC client as a MaintainerAPI.
func NewMaintainerClient(c rpc.Client) MaintainerAPI { return &maintainerClient{c: c} }

func (mc *maintainerClient) Append(recs []*core.Record) ([]uint64, error) {
	// Encode the batch into a pooled buffer: Call only borrows the request
	// payload for the call's duration, so it can go back to the pool after.
	// The batch's trace context (if any) rides the traced envelope —
	// CallTraced degrades to a plain Call for untraced batches.
	tc := batchTrace(recs)
	req := wire.GetBuf()
	*req = core.AppendRecords(*req, recs)
	resp, err := rpc.CallTraced(mc.c, &tc, msgAppend, *req)
	wire.PutBuf(req)
	if err != nil {
		return nil, mapRemoteError(err)
	}
	lids, _, err := decodeLIds(resp)
	if err != nil {
		return nil, err
	}
	// Mirror the in-process behaviour: assign LIds onto the caller's
	// records.
	for i, r := range recs {
		if i < len(lids) {
			r.LId = lids[i]
		}
	}
	return lids, nil
}

func (mc *maintainerClient) AppendAssigned(recs []*core.Record) error {
	tc := batchTrace(recs)
	req := wire.GetBuf()
	*req = core.AppendRecords(*req, recs)
	_, err := rpc.CallTraced(mc.c, &tc, msgAppendAssigned, *req)
	wire.PutBuf(req)
	return mapRemoteError(err)
}

func (mc *maintainerClient) AppendAfter(minLId uint64, recs []*core.Record) ([]uint64, error) {
	tc := batchTrace(recs)
	req := wire.GetBuf()
	*req = binary.LittleEndian.AppendUint64(*req, minLId)
	*req = core.AppendRecords(*req, recs)
	resp, err := rpc.CallTraced(mc.c, &tc, msgAppendAfter, *req)
	wire.PutBuf(req)
	if err != nil {
		return nil, mapRemoteError(err)
	}
	lids, _, err := decodeLIds(resp)
	if err != nil {
		return nil, err
	}
	if len(lids) == 0 {
		return nil, nil
	}
	for i, r := range recs {
		if i < len(lids) {
			r.LId = lids[i]
		}
	}
	return lids, nil
}

func (mc *maintainerClient) Read(lid uint64) (*core.Record, error) {
	resp, err := mc.c.Call(msgRead, binary.LittleEndian.AppendUint64(nil, lid))
	if err != nil {
		return nil, mapRemoteError(err)
	}
	rec, _, err := core.DecodeRecord(resp)
	return rec, err
}

func (mc *maintainerClient) Scan(rule core.Rule) ([]*core.Record, error) {
	resp, err := mc.c.Call(msgScan, appendRule(nil, rule))
	if err != nil {
		return nil, mapRemoteError(err)
	}
	recs, _, err := core.DecodeRecordsShared(resp)
	return recs, err
}

func (mc *maintainerClient) Head() (uint64, error) {
	resp, err := mc.c.Call(msgHead, nil)
	if err != nil {
		return 0, mapRemoteError(err)
	}
	if len(resp) < 8 {
		return 0, errors.New("flstore: short Head response")
	}
	return binary.LittleEndian.Uint64(resp), nil
}

func (mc *maintainerClient) NextUnfilled() (uint64, error) {
	resp, err := mc.c.Call(msgNextUnfilled, nil)
	if err != nil {
		return 0, mapRemoteError(err)
	}
	if len(resp) < 8 {
		return 0, errors.New("flstore: short NextUnfilled response")
	}
	return binary.LittleEndian.Uint64(resp), nil
}

func (mc *maintainerClient) Gossip(from int, next uint64) (uint64, error) {
	req := binary.LittleEndian.AppendUint32(nil, uint32(from))
	req = binary.LittleEndian.AppendUint64(req, next)
	resp, err := mc.c.Call(msgGossip, req)
	if err != nil {
		return 0, mapRemoteError(err)
	}
	if len(resp) < 8 {
		return 0, errors.New("flstore: short Gossip response")
	}
	return binary.LittleEndian.Uint64(resp), nil
}

func (mc *maintainerClient) AppendFor(rangeIdx int, recs []*core.Record) ([]uint64, error) {
	tc := batchTrace(recs)
	req := wire.GetBuf()
	*req = binary.LittleEndian.AppendUint32(*req, uint32(rangeIdx))
	*req = core.AppendRecords(*req, recs)
	resp, err := rpc.CallTraced(mc.c, &tc, msgAppendFor, *req)
	wire.PutBuf(req)
	if err != nil {
		return nil, mapRemoteError(err)
	}
	lids, _, err := decodeLIds(resp)
	if err != nil {
		return nil, err
	}
	for i, r := range recs {
		if i < len(lids) {
			r.LId = lids[i]
		}
	}
	return lids, nil
}

func (mc *maintainerClient) ReplicaAppend(recs []*core.Record) error {
	tc := batchTrace(recs)
	req := wire.GetBuf()
	*req = core.AppendRecords(*req, recs)
	_, err := rpc.CallTraced(mc.c, &tc, msgReplicaAppend, *req)
	wire.PutBuf(req)
	return mapRemoteError(err)
}

func (mc *maintainerClient) RangeFrontier(rangeIdx int) (uint64, error) {
	req := wire.GetBuf()
	*req = binary.LittleEndian.AppendUint32(*req, uint32(rangeIdx))
	resp, err := mc.c.Call(msgRangeFrontier, *req)
	wire.PutBuf(req)
	if err != nil {
		return 0, mapRemoteError(err)
	}
	if len(resp) < 8 {
		return 0, errors.New("flstore: short RangeFrontier response")
	}
	return binary.LittleEndian.Uint64(resp), nil
}

func (mc *maintainerClient) PullRange(rangeIdx int, fromLId uint64, limit int) ([]*core.Record, error) {
	req := binary.LittleEndian.AppendUint32(nil, uint32(rangeIdx))
	req = binary.LittleEndian.AppendUint64(req, fromLId)
	req = binary.LittleEndian.AppendUint32(req, uint32(limit))
	resp, err := mc.c.Call(msgPullRange, req)
	if err != nil {
		return nil, mapRemoteError(err)
	}
	recs, _, err := core.DecodeRecordsShared(resp)
	return recs, err
}

func (mc *maintainerClient) ReadRange(q RangeQuery) (RangeResult, error) {
	req := wire.GetBuf()
	*req = binary.LittleEndian.AppendUint64(*req, q.Lo)
	*req = binary.LittleEndian.AppendUint64(*req, q.Hi)
	*req = binary.LittleEndian.AppendUint32(*req, uint32(int32(q.Range)))
	*req = binary.LittleEndian.AppendUint32(*req, uint32(q.MaxRecords))
	*req = binary.LittleEndian.AppendUint32(*req, uint32(q.MaxBytes))
	tc := q.Trace
	resp, err := rpc.CallTraced(mc.c, &tc, msgReadRange, *req)
	wire.PutBuf(req)
	if err != nil {
		return RangeResult{}, mapRemoteError(err)
	}
	return decodeRangeResult(resp)
}

func (mc *maintainerClient) MultiRead(lids []uint64) ([]*core.Record, error) {
	req := wire.GetBuf()
	*req = appendLIds(*req, lids)
	resp, err := mc.c.Call(msgMultiRead, *req)
	wire.PutBuf(req)
	if err != nil {
		return nil, mapRemoteError(err)
	}
	recs, _, err := core.DecodeRecordsShared(resp)
	return recs, err
}

func (mc *maintainerClient) TailWait(rangeIdx int, cursor uint64, maxWait time.Duration) (uint64, error) {
	req := make([]byte, 0, 20)
	req = binary.LittleEndian.AppendUint32(req, uint32(int32(rangeIdx)))
	req = binary.LittleEndian.AppendUint64(req, cursor)
	req = binary.LittleEndian.AppendUint64(req, uint64(int64(maxWait)))
	resp, err := mc.c.Call(msgTailWait, req)
	if err != nil {
		return 0, mapRemoteError(err)
	}
	if len(resp) < 8 {
		return 0, errors.New("flstore: short TailWait response")
	}
	return binary.LittleEndian.Uint64(resp), nil
}

func (mc *maintainerClient) Invalidate(rangeIdx int, upTo uint64) error {
	// The invalidation frame rides ahead of every fan-out payload, so it
	// shares the append hot path's allocation discipline: two fixed words
	// through the pooled-buffer fast path, no response body.
	_, err := rpc.CallU64s(mc.c, msgInvalidate, uint64(rangeIdx), upTo)
	return mapRemoteError(err)
}

func (mc *maintainerClient) ValidityWatermark(rangeIdx int) (uint64, uint64, error) {
	resp, err := rpc.CallU64s(mc.c, msgWatermark, uint64(rangeIdx))
	if err != nil {
		return 0, 0, mapRemoteError(err)
	}
	if len(resp) < 16 {
		return 0, 0, errors.New("flstore: short Watermark response")
	}
	return binary.LittleEndian.Uint64(resp), binary.LittleEndian.Uint64(resp[8:]), nil
}

func (mc *maintainerClient) GossipVec(vec []uint64) ([]uint64, error) {
	resp, err := mc.c.Call(msgGossipVec, appendLIds(nil, vec))
	if err != nil {
		return nil, mapRemoteError(err)
	}
	vec, _, err = decodeLIds(resp)
	return vec, err
}

func (mc *maintainerClient) GossipVecs(next, dur []uint64) ([]uint64, []uint64, error) {
	resp, err := mc.c.Call(msgGossipVecs, appendLIds(appendLIds(nil, next), dur))
	if err != nil {
		return nil, nil, mapRemoteError(err)
	}
	myNext, n, err := decodeLIds(resp)
	if err != nil {
		return nil, nil, err
	}
	myDur, _, err := decodeLIds(resp[n:])
	if err != nil {
		return nil, nil, err
	}
	return myNext, myDur, nil
}

// indexerClient implements IndexerAPI over an rpc.Client.
type indexerClient struct{ c rpc.Client }

// NewIndexerClient wraps an RPC client as an IndexerAPI.
func NewIndexerClient(c rpc.Client) IndexerAPI { return &indexerClient{c: c} }

func (ic *indexerClient) Post(entries []Posting) error {
	_, err := ic.c.Call(msgPost, appendPostings(nil, entries))
	return mapRemoteError(err)
}

func (ic *indexerClient) Lookup(q LookupQuery) ([]uint64, error) {
	resp, err := ic.c.Call(msgLookup, appendLookup(nil, q))
	if err != nil {
		return nil, mapRemoteError(err)
	}
	lids, _, err := decodeLIds(resp)
	return lids, err
}

// controllerClient implements ControllerAPI over an rpc.Client.
type controllerClient struct{ c rpc.Client }

// NewControllerClient wraps an RPC client as a ControllerAPI.
func NewControllerClient(c rpc.Client) ControllerAPI { return &controllerClient{c: c} }

func (cc *controllerClient) GetConfig() (*Config, error) {
	resp, err := cc.c.Call(msgGetConfig, nil)
	if err != nil {
		return nil, mapRemoteError(err)
	}
	return decodeConfig(resp)
}
