package flstore

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// Server-side defaults bounding one range-read response. A response the
// budget truncates reports how far it got (RangeResult.CoveredHi) and the
// client resumes from the next position, so the budgets bound memory and
// frame size without bounding the API.
const (
	defaultRangeMaxRecords = 8192
	defaultRangeMaxBytes   = 1 << 20
	defaultTailWait        = 100 * time.Millisecond
	defaultTailCacheSize   = 4096
)

// tailRing is the maintainer's in-memory cache of recently appended
// records: a fixed-capacity ring indexed by LId modulo capacity, with an
// exact-LId check on lookup so an overwritten slot reads as a miss rather
// than a wrong record. Tailing readers run close behind the append
// frontier, so they are served from here without touching the store.
type tailRing struct {
	mu   sync.RWMutex
	recs []*core.Record
}

func newTailRing(capacity int) *tailRing {
	return &tailRing{recs: make([]*core.Record, capacity)}
}

func (t *tailRing) put(recs []*core.Record) {
	n := uint64(len(t.recs))
	t.mu.Lock()
	for _, r := range recs {
		t.recs[r.LId%n] = r
	}
	t.mu.Unlock()
}

func (t *tailRing) get(lid uint64) *core.Record {
	t.mu.RLock()
	r := t.recs[lid%uint64(len(t.recs))]
	t.mu.RUnlock()
	if r == nil || r.LId != lid {
		return nil
	}
	return r
}

// cacheAppended inserts freshly persisted records into the tail ring and
// wakes parked readers: the frontier advanced (under mu) before the store
// write, so a watermark-covered read that raced the persistence window is
// parked on the progress channel waiting for exactly this moment.
func (m *Maintainer) cacheAppended(recs []*core.Record) {
	if m.tail != nil {
		m.tail.put(recs)
	}
	m.notifyProgressLocked()
}

// notifyProgressLocked wakes parked TailWait calls and blocked reads after
// a next-unfilled entry advanced (local fills, replica ingestion, gossip,
// or an invalidation announcement) or a batch persisted. Waiters re-check
// their own condition, so a broadcast that doesn't concern them is just a
// spurious wakeup. Safe with or without mu held (it takes only waitMu,
// which is ordered after mu).
func (m *Maintainer) notifyProgressLocked() {
	m.waitMu.Lock()
	if m.waitCh != nil {
		close(m.waitCh)
		m.waitCh = nil
	}
	m.waitMu.Unlock()
}

// waitChan returns the broadcast channel the next frontier advance closes.
func (m *Maintainer) waitChan() chan struct{} {
	m.waitMu.Lock()
	if m.waitCh == nil {
		m.waitCh = make(chan struct{})
	}
	ch := m.waitCh
	m.waitMu.Unlock()
	return ch
}

// TailWait implements RangeReadAPI: it parks until hosted range rangeIdx's
// local frontier (its next-unfilled LId) passes cursor, or maxWait
// elapses, and returns the current frontier either way — the long-poll
// never errors on timeout; the caller compares the returned frontier
// against its cursor. A tailing client parks here instead of polling: the
// head of the log advances exactly when the laggard range's frontier does,
// so waiting on that frontier replaces the fixed poll tick.
func (m *Maintainer) TailWait(rangeIdx int, cursor uint64, maxWait time.Duration) (uint64, error) {
	m.TailWaits.Inc()
	f, err := m.RangeFrontier(rangeIdx)
	if err != nil {
		return 0, err
	}
	if cursor == 0 || f > cursor {
		return f, nil
	}
	if maxWait <= 0 {
		maxWait = defaultTailWait
	}
	start := time.Now()
	deadline := start.Add(maxWait)
	for {
		// Grab the channel before re-checking the frontier: an advance
		// between the check and the select closes this channel, so no
		// wakeup is lost.
		ch := m.waitChan()
		if f, err = m.RangeFrontier(rangeIdx); err != nil {
			return 0, err
		}
		if f > cursor {
			if w := m.tailWake; w != nil {
				w.ObserveSince(start)
			}
			return f, nil
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return f, nil
		}
		timer := time.NewTimer(remain)
		select {
		case <-ch:
			timer.Stop()
		case <-timer.C:
			return m.RangeFrontier(rangeIdx)
		}
	}
}

// ReadRange implements RangeReadAPI: every record this maintainer hosts in
// [q.Lo, q.Hi] (restricted to one range when q.Range >= 0), ascending, as
// one batch. Records come from the tail ring when the reader is close to
// the frontier; a ring miss falls back to one bounded store scan per
// round-robin block, never a full-log scan. The response stops early at a
// count/byte budget or at a hosted range's local frontier; CoveredHi tells
// the client where to resume.
func (m *Maintainer) ReadRange(q RangeQuery) (RangeResult, error) {
	// Thin wrapper so the inner walk stays closure-free: a deferred metrics
	// closure would capture the result slice and heap-box it, costing
	// allocations on the per-window hot path the alloc-budget test pins.
	start := time.Now()
	m.RangeReads.Inc()
	res, err := m.readRange(q)
	m.RangeRecords.Add(uint64(len(res.Records)))
	if h := m.rangeBatch; h != nil {
		h.Observe(float64(len(res.Records)))
	}
	if h := m.readLatency; h != nil {
		h.ObserveSinceEx(start, uint64(q.Trace.T))
	}
	if q.Trace.Sampled() {
		tc := q.Trace
		tc.Hop(trace.Default(), "read.range", 0, trace.Outcome(err, "error"), res.CoveredHi, len(res.Records))
	}
	return res, err
}

func (m *Maintainer) readRange(q RangeQuery) (RangeResult, error) {
	lo, hi := q.Lo, q.Hi
	if lo == 0 {
		lo = 1
	}
	res := RangeResult{CoveredHi: lo - 1}
	if hi < lo {
		res.CoveredHi = hi
		return res, nil
	}
	maxRecs := q.MaxRecords
	if maxRecs <= 0 {
		maxRecs = defaultRangeMaxRecords
	}
	maxBytes := q.MaxBytes
	if maxBytes <= 0 {
		maxBytes = defaultRangeMaxBytes
	}

	// Snapshot hosted frontiers once: records strictly below a range's
	// frontier are densely present in the store (the dense-prefix
	// invariant), so the walk below needs no further coordination. Indexed
	// by range with 0 = not hosted (LIds are 1-based, so a hosted range's
	// frontier is never 0).
	p := m.cfg.Placement
	var fbuf [16]uint64
	frontiers := fbuf[:]
	if p.NumMaintainers > len(fbuf) {
		frontiers = make([]uint64, p.NumMaintainers)
	}
	hostedRanges := 0
	m.mu.Lock()
	for r, st := range m.hosted {
		if q.Range >= 0 && r != q.Range {
			continue
		}
		frontiers[r] = p.LIdOfSlot(r, st.filled)
		hostedRanges++
	}
	m.mu.Unlock()
	if hostedRanges == 0 {
		return res, fmt.Errorf("%w: range %d at maintainer %d", ErrNotReplica, q.Range, m.cfg.Index)
	}

	want := int(hi - lo + 1)
	if want > maxRecs {
		want = maxRecs
	}
	// Only a fraction of [lo,hi] is hosted here; presize for this
	// maintainer's share of the interval's blocks, not the whole window.
	chunks := (hi-1)/p.BatchSize - (lo-1)/p.BatchSize + 1
	share := (chunks*uint64(hostedRanges)/uint64(p.NumMaintainers) + 1) * p.BatchSize
	if uint64(want) > share {
		want = int(share)
	}
	out := make([]*core.Record, 0, want)
	bytes := 0

	for chunk := (lo - 1) / p.BatchSize; chunk <= (hi-1)/p.BatchSize; chunk++ {
		owner := int(chunk % uint64(p.NumMaintainers))
		blockLo := chunk*p.BatchSize + 1
		blockHi := blockLo + p.BatchSize - 1
		if blockLo < lo {
			blockLo = lo
		}
		if blockHi > hi {
			blockHi = hi
		}
		next := frontiers[owner]
		if next == 0 {
			// Another maintainer's block: trivially covered from this
			// maintainer's point of view.
			res.CoveredHi = blockHi
			continue
		}
		limit := blockHi
		frontierCut := false
		if next <= limit {
			if next <= blockLo {
				// Nothing of this block exists here yet.
				res.Records = out
				return res, nil
			}
			limit = next - 1
			frontierCut = true
		}
		// Serve the block from the tail ring while it hits, then one
		// bounded store scan for the cold remainder.
		lid := blockLo
		for m.tail != nil && lid <= limit {
			rec := m.tail.get(lid)
			if rec == nil {
				break
			}
			m.TailCacheHits.Inc()
			out = append(out, rec)
			bytes += core.EncodedSize(rec)
			res.CoveredHi = lid
			if len(out) >= maxRecs || bytes >= maxBytes {
				res.Records = out
				return res, nil
			}
			lid++
		}
		if lid <= limit {
			if m.tail != nil {
				m.TailCacheMisses.Inc()
			}
			m.StoreScans.Inc()
			var truncated bool
			var err error
			out, bytes, res.CoveredHi, truncated, err = m.scanBlock(lid, limit, out, bytes, maxRecs, maxBytes, res.CoveredHi)
			if err != nil {
				return res, err
			}
			if truncated {
				res.Records = out
				return res, nil
			}
			res.CoveredHi = limit
		}
		if frontierCut {
			res.Records = out
			return res, nil
		}
	}
	res.Records = out
	res.CoveredHi = hi
	return res, nil
}

// scanBlock runs the cold-path store scan for one block. It lives in its
// own function because the scan callback escapes through the store
// interface: a closure declared inside readRange would heap-box every
// captured local on every call, including the warm calls the tail ring
// serves without ever scanning.
func (m *Maintainer) scanBlock(lo, hi uint64, out []*core.Record, bytes, maxRecs, maxBytes int, covered uint64) ([]*core.Record, int, uint64, bool, error) {
	truncated := false
	err := m.store.Scan(lo, hi, func(r *core.Record) bool {
		out = append(out, r)
		bytes += core.EncodedSize(r)
		covered = r.LId
		if len(out) >= maxRecs || bytes >= maxBytes {
			truncated = true
			return false
		}
		return true
	})
	return out, bytes, covered, truncated, err
}

// MultiRead implements RangeReadAPI: the hosted records at the given LIds,
// in input order, as one batch — the retrieval half of an indexer-resolved
// tag read. Positions this maintainer does not host fail the call (the
// client routes by placement); positions it hosts but does not (yet) store
// are silently absent from the response, and the client falls back to the
// single-record path — with its past-head waiting — for them.
func (m *Maintainer) MultiRead(lids []uint64) ([]*core.Record, error) {
	if h := m.readLatency; h != nil {
		defer h.ObserveSince(time.Now())
	}
	m.MultiReads.Inc()
	out := make([]*core.Record, 0, len(lids))
	bytes := 0
	for _, lid := range lids {
		if lid == 0 {
			return nil, core.ErrNoSuchRecord
		}
		if !m.layout.Replicas(m.cfg.Index, m.cfg.Placement.Owner(lid)) {
			return nil, fmt.Errorf("%w: %d", ErrWrongMaintainer, lid)
		}
		var rec *core.Record
		if m.tail != nil {
			rec = m.tail.get(lid)
		}
		if rec != nil {
			m.TailCacheHits.Inc()
		} else {
			if m.tail != nil {
				m.TailCacheMisses.Inc()
			}
			var err error
			if rec, err = m.store.Get(lid); err != nil {
				continue // absent here; the client's fallback handles it
			}
		}
		out = append(out, rec)
		if bytes += core.EncodedSize(rec); bytes >= defaultRangeMaxBytes {
			break // budget; the client fetches the rest on fallback
		}
	}
	return out, nil
}
