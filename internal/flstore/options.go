package flstore

// Functional options for Client construction. These supersede mutating the
// exported knob fields (ReadRetries, RetryBackoff, DisableRangeRead) after
// construction: options are applied once, before the client serves calls,
// so there is no window where a concurrent reader sees a half-configured
// client. The old fields keep working for existing callers.

import (
	"time"

	"repro/internal/replica"
)

// ClientOption configures a Client at construction time.
type ClientOption func(*Client)

// WithReadRetries bounds how many attempts reads make while the requested
// position is past the head of the log (default 50).
func WithReadRetries(n int) ClientOption {
	return func(c *Client) { c.ReadRetries = n }
}

// WithRetryBackoff sets the base of the capped-exponential schedule read
// retries sleep on, and the legacy tail/poll tick (default 2ms; 0 disables
// sleeping between read retries).
func WithRetryBackoff(d time.Duration) ClientOption {
	return func(c *Client) { c.RetryBackoff = d }
}

// WithRangeReadDisabled forces the legacy single-record/scan read paths
// even when every maintainer supports batched reads — the comparison knob
// the read-path experiment and benchmarks flip.
func WithRangeReadDisabled(v bool) ClientOption {
	return func(c *Client) { c.DisableRangeRead = v }
}

// WithAppendRetries lets the append path retry a retryable rejection
// (maintainer overload, insufficient acks) up to n times, honoring the
// server's RetryAfter hint between attempts. Default 0: rejections surface
// immediately, which is what open-loop load generators rely on to measure
// dropped offered load.
func WithAppendRetries(n int) ClientOption {
	return func(c *Client) { c.appendRetries = n }
}

// WithAppendBackoff sets the base of the capped-jittered backoff between
// append retries (default 2ms). The actual wait per attempt is the larger
// of this schedule and the server's RetryAfter hint.
func WithAppendBackoff(d time.Duration) ClientOption {
	return func(c *Client) { c.appendBackoff = d }
}

// WithAdaptivePacing enables the AIMD send-rate governor: after the first
// overload rejection the client spaces appends at the server's implied
// admission rate, halving the allowance on each further rejection and
// creeping it back up on success. Off by default.
func WithAdaptivePacing() ClientOption {
	return func(c *Client) { c.pace = &pacer{} }
}

// WithQuorumFanout lets replicated appends return as soon as the ack
// policy's quorum of copies is stored (fsynced on durable members),
// detaching the remaining fan-out — a degraded follower's disk stops
// sitting on the append p99. No-op on unreplicated clients; see
// replica.SessionConfig.QuorumFanout for the trade-off.
func WithQuorumFanout() ClientOption {
	return func(c *Client) {
		if c.session != nil {
			c.session.SetQuorumFanout(true)
		}
	}
}

// WithReadPolicy sets the replica read-placement policy on a replicated
// client (replica.OwnerFirst, replica.SpreadReads, replica.NearestFirst).
// Reads still fail over across the group in policy order when the picked
// member is down or behind. No-op on unreplicated clients.
func WithReadPolicy(p replica.ReadPolicy) ClientOption {
	return func(c *Client) {
		if c.session != nil {
			c.session.SetReadPolicy(p)
		}
	}
}

// NewClientWith is NewClient plus construction-time options.
func NewClientWith(ctrl ControllerAPI, opts ...ClientOption) (*Client, error) {
	c, err := NewClient(ctrl)
	if err != nil {
		return nil, err
	}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// NewDirectClientWith is NewDirectClient plus construction-time options —
// the wiring simulations and tests use.
func NewDirectClientWith(p Placement, maintainers []MaintainerAPI, indexers []IndexerAPI, opts ...ClientOption) (*Client, error) {
	c, err := NewDirectClient(p, maintainers, indexers)
	if err != nil {
		return nil, err
	}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// NewReplicatedDirectClientWith is NewReplicatedDirectClient plus
// construction-time options.
func NewReplicatedDirectClientWith(p Placement, maintainers []MaintainerAPI, indexers []IndexerAPI, r int, ack replica.AckPolicy, opts ...ClientOption) (*Client, error) {
	c, err := NewReplicatedDirectClient(p, maintainers, indexers, r, ack)
	if err != nil {
		return nil, err
	}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}
