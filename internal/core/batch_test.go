package core

import (
	"reflect"
	"testing"
)

func batchSample() []*Record {
	return []*Record{
		{LId: 1, TOId: 11, Host: 0, Body: []byte("alpha")},
		{LId: 2, TOId: 12, Host: 1, Deps: []Dep{{DC: 0, TOId: 11}},
			Tags: []Tag{{Key: "k", Value: "v"}, {Key: "stream", Value: "orders"}}},
		{LId: 3, TOId: 13, Host: 2},
		{LId: 4, TOId: 14, Host: 0,
			Deps: []Dep{{DC: 1, TOId: 12}, {DC: 2, TOId: 13}},
			Tags: []Tag{{Key: "empty", Value: ""}},
			Body: []byte("a longer body payload for the fourth record")},
	}
}

func TestBatchEncoderRoundTrip(t *testing.T) {
	recs := batchSample()
	var e BatchEncoder
	for _, r := range recs {
		e.Add(r)
	}
	if e.Count() != len(recs) {
		t.Fatalf("Count = %d, want %d", e.Count(), len(recs))
	}
	buf := e.Bytes()
	if want := EncodedSizeRecords(recs); len(buf) != want {
		t.Fatalf("encoded %d bytes, EncodedSizeRecords says %d", len(buf), want)
	}
	if !reflect.DeepEqual(buf, AppendRecords(nil, recs)) {
		t.Fatal("BatchEncoder bytes differ from AppendRecords")
	}
	got, used, err := DecodeRecords(buf)
	if err != nil {
		t.Fatal(err)
	}
	if used != len(buf) {
		t.Fatalf("used %d, want %d", used, len(buf))
	}
	for i := range recs {
		if !reflect.DeepEqual(got[i], recs[i]) {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], recs[i])
		}
	}
}

func TestBatchEncoderResetReuses(t *testing.T) {
	recs := batchSample()
	var e BatchEncoder
	e.AddAll(recs)
	first := append([]byte(nil), e.Bytes()...)
	e.Reset()
	if e.Count() != 0 {
		t.Fatalf("Count after Reset = %d", e.Count())
	}
	e.AddAll(recs)
	if !reflect.DeepEqual(e.Bytes(), first) {
		t.Fatal("re-encoded batch differs after Reset")
	}
	// An empty batch must still decode as a valid zero-record batch.
	e.Reset()
	got, _, err := DecodeRecords(e.Bytes())
	if err != nil || len(got) != 0 {
		t.Fatalf("empty batch decode: got %v, err %v", got, err)
	}
}

func TestDecodeRecordsShared(t *testing.T) {
	recs := batchSample()
	buf := AppendRecords(nil, recs)
	got, used, err := DecodeRecordsShared(buf)
	if err != nil {
		t.Fatal(err)
	}
	if used != len(buf) {
		t.Fatalf("used %d, want %d", used, len(buf))
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !reflect.DeepEqual(got[i], recs[i]) {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], recs[i])
		}
	}
	// The records must not alias the input buffer: scribbling over buf
	// must not change a decoded body.
	body := string(got[3].Body)
	for i := range buf {
		buf[i] = 0xEE
	}
	if string(got[3].Body) != body {
		t.Fatal("DecodeRecordsShared body aliases the input buffer")
	}
}

func TestDecodeRecordsSharedEmpty(t *testing.T) {
	got, used, err := DecodeRecordsShared(AppendRecords(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if used != 4 || len(got) != 0 {
		t.Fatalf("got %d records, used %d", len(got), used)
	}
}

func TestDecodeBatchCountGuard(t *testing.T) {
	// A count prefix claiming more records than the buffer could hold
	// must fail fast instead of preallocating count-proportional memory.
	buf := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, _, err := DecodeRecords(buf); err == nil {
		t.Fatal("DecodeRecords accepted an impossible count")
	}
	if _, _, err := DecodeRecordsShared(buf); err == nil {
		t.Fatal("DecodeRecordsShared accepted an impossible count")
	}
}

func TestDecodeRecordsSharedTruncated(t *testing.T) {
	full := AppendRecords(nil, batchSample())
	for n := 4; n < len(full); n++ {
		if _, _, err := DecodeRecordsShared(full[:n]); err == nil {
			// Some truncations still hold a valid prefix batch only
			// if the count said fewer records; with the true count
			// they must all fail.
			t.Fatalf("truncated batch of %d bytes decoded", n)
		}
	}
}

func TestDecodeRecordView(t *testing.T) {
	want := batchSample()[3]
	buf := MarshalRecord(want)
	var view Record
	used, err := DecodeRecordView(&view, buf)
	if err != nil {
		t.Fatal(err)
	}
	if used != len(buf) {
		t.Fatalf("used %d, want %d", used, len(buf))
	}
	if !reflect.DeepEqual(&view, want) {
		t.Fatalf("view %+v, want %+v", &view, want)
	}
	// The view's body aliases buf.
	buf[len(buf)-1] ^= 0xFF
	if view.Body[len(view.Body)-1] == want.Body[len(want.Body)-1] {
		t.Fatal("DecodeRecordView body does not alias the buffer")
	}
	buf[len(buf)-1] ^= 0xFF

	// Decoding another record into the same view must reuse Deps/Tags
	// capacity and fully overwrite the previous contents.
	plain := &Record{LId: 9, TOId: 99, Host: 1}
	buf2 := MarshalRecord(plain)
	if _, err := DecodeRecordView(&view, buf2); err != nil {
		t.Fatal(err)
	}
	if view.LId != 9 || view.TOId != 99 || len(view.Deps) != 0 || len(view.Tags) != 0 || view.Body != nil {
		t.Fatalf("reused view not overwritten: %+v", view)
	}
	// Materializing a view for retention is Clone.
	if _, err := DecodeRecordView(&view, buf); err != nil {
		t.Fatal(err)
	}
	kept := view.Clone()
	for i := range buf {
		buf[i] = 0
	}
	if !reflect.DeepEqual(kept, want) {
		t.Fatal("Clone of a view still aliases the buffer")
	}
}
