// Package core defines the record model of the Chariots shared log: log
// positions (LIds), per-datacenter total order ids (TOIds), causal
// dependency vectors, tags, and the read-rule language used by clients.
//
// The model follows §3 of the paper. A record is immutable once appended.
// Each record has one copy per datacenter; every copy shares the same
// (Host, TOId) identity but carries a datacenter-local LId reflecting its
// position in that datacenter's log.
package core

import (
	"errors"
	"fmt"

	"repro/internal/trace"
)

// DCID identifies a datacenter. Datacenters are numbered densely from 0 so
// dependency vectors can be plain slices.
type DCID uint16

// String returns a short human-readable datacenter name ("DC0", "DC1", ...).
func (d DCID) String() string { return fmt.Sprintf("DC%d", d) }

// Tag is an application-supplied key (and optional value) attached to a
// record at append time. Unlike the record body, tags are visible to the
// system and indexed by the distributed indexers (§5.3).
type Tag struct {
	Key   string
	Value string
}

// Dep is one entry of a record's causal dependency set: the appending
// client had observed all records of datacenter DC with total-order id up
// to and including TOId.
type Dep struct {
	DC   DCID
	TOId uint64
}

// Record is a single immutable entry in the shared log.
//
// LId is the position of this copy in its datacenter's log (1-based; 0
// means "not yet assigned"). TOId is the total-order id with respect to the
// host datacenter: copies of the same record at every datacenter share the
// same (Host, TOId) pair. Deps captures the causal context under which the
// record was appended (§3, "happened-before" plus transitivity): the record
// may only be applied at a remote datacenter once, for every Dep, that
// datacenter has applied the named prefix.
type Record struct {
	LId  uint64
	TOId uint64
	Host DCID
	Deps []Dep
	Tags []Tag
	Body []byte

	// Trace is the record's in-process trace context — transient pipeline
	// metadata, NOT part of the record's identity: the codec does not
	// serialize it (cross-process propagation rides the RPC envelope, see
	// internal/rpc), and it is zero for unsampled records. Stages that
	// carry a record across an async boundary hop this context; handlers
	// that decode records off the wire restamp it from the envelope's
	// context before handing the batch onward.
	Trace trace.Ctx
}

// ID returns the global identity of the record, which is shared by all of
// its copies.
func (r *Record) ID() GlobalID { return GlobalID{Host: r.Host, TOId: r.TOId} }

// HasTag reports whether the record carries a tag with the given key.
func (r *Record) HasTag(key string) bool {
	for _, t := range r.Tags {
		if t.Key == key {
			return true
		}
	}
	return false
}

// TagValue returns the value of the first tag with the given key, and
// whether such a tag exists.
func (r *Record) TagValue(key string) (string, bool) {
	for _, t := range r.Tags {
		if t.Key == key {
			return t.Value, true
		}
	}
	return "", false
}

// DepOn returns the TOId this record depends on for datacenter dc, or 0 if
// the record carries no dependency on dc.
func (r *Record) DepOn(dc DCID) uint64 {
	for _, d := range r.Deps {
		if d.DC == dc {
			return d.TOId
		}
	}
	return 0
}

// Clone returns a deep copy of the record. Components that hand records
// across stage boundaries use Clone when they must mutate metadata (for
// example, assigning the local LId to an external copy) without aliasing
// the sender's buffers.
func (r *Record) Clone() *Record {
	c := &Record{LId: r.LId, TOId: r.TOId, Host: r.Host, Trace: r.Trace}
	if len(r.Deps) > 0 {
		c.Deps = append([]Dep(nil), r.Deps...)
	}
	if len(r.Tags) > 0 {
		c.Tags = append([]Tag(nil), r.Tags...)
	}
	if len(r.Body) > 0 {
		c.Body = append([]byte(nil), r.Body...)
	}
	return c
}

// GlobalID identifies a record independently of any datacenter's log
// position: the host datacenter plus the record's total-order id there.
type GlobalID struct {
	Host DCID
	TOId uint64
}

// String formats the id the way the paper draws records: "<A,1>".
func (g GlobalID) String() string { return fmt.Sprintf("<%s,%d>", g.Host, g.TOId) }

// Less orders GlobalIDs by (Host, TOId); used only for deterministic
// iteration, not for causal ordering.
func (g GlobalID) Less(o GlobalID) bool {
	if g.Host != o.Host {
		return g.Host < o.Host
	}
	return g.TOId < o.TOId
}

// ErrNoSuchRecord is returned by reads that name a log position that does
// not exist (or has been garbage collected).
var ErrNoSuchRecord = errors.New("core: no such record")

// ErrPastHead is returned by reads of positions beyond the current head of
// the log (HL): the position may be filled at some maintainer but cannot
// yet be exposed because an earlier gap remains (§5.4).
var ErrPastHead = errors.New("core: read past head of log")

// Validate performs structural sanity checks on a record about to enter the
// pipeline. It does not check causal consistency, only well-formedness.
func (r *Record) Validate() error {
	if r == nil {
		return errors.New("core: nil record")
	}
	if r.TOId == 0 {
		return errors.New("core: record TOId must be >= 1")
	}
	seen := make(map[DCID]bool, len(r.Deps))
	for _, d := range r.Deps {
		if seen[d.DC] {
			return fmt.Errorf("core: duplicate dependency on %s", d.DC)
		}
		seen[d.DC] = true
	}
	for _, t := range r.Tags {
		if t.Key == "" {
			return errors.New("core: empty tag key")
		}
	}
	return nil
}
