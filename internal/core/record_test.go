package core

import (
	"testing"
)

func TestGlobalIDString(t *testing.T) {
	g := GlobalID{Host: 1, TOId: 7}
	if got, want := g.String(), "<DC1,7>"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestGlobalIDLess(t *testing.T) {
	tests := []struct {
		a, b GlobalID
		want bool
	}{
		{GlobalID{0, 1}, GlobalID{0, 2}, true},
		{GlobalID{0, 2}, GlobalID{0, 1}, false},
		{GlobalID{0, 9}, GlobalID{1, 1}, true},
		{GlobalID{1, 1}, GlobalID{0, 9}, false},
		{GlobalID{1, 1}, GlobalID{1, 1}, false},
	}
	for _, tt := range tests {
		if got := tt.a.Less(tt.b); got != tt.want {
			t.Errorf("%v.Less(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestRecordTagAccessors(t *testing.T) {
	r := &Record{Tags: []Tag{{Key: "k", Value: "v"}, {Key: "k2", Value: ""}}}
	if !r.HasTag("k") || !r.HasTag("k2") {
		t.Error("HasTag failed for present tags")
	}
	if r.HasTag("absent") {
		t.Error("HasTag reported absent tag")
	}
	if v, ok := r.TagValue("k"); !ok || v != "v" {
		t.Errorf("TagValue(k) = %q, %v", v, ok)
	}
	if _, ok := r.TagValue("absent"); ok {
		t.Error("TagValue reported absent tag")
	}
}

func TestRecordDepOn(t *testing.T) {
	r := &Record{Deps: []Dep{{DC: 0, TOId: 5}, {DC: 2, TOId: 9}}}
	if got := r.DepOn(0); got != 5 {
		t.Errorf("DepOn(0) = %d, want 5", got)
	}
	if got := r.DepOn(2); got != 9 {
		t.Errorf("DepOn(2) = %d, want 9", got)
	}
	if got := r.DepOn(1); got != 0 {
		t.Errorf("DepOn(1) = %d, want 0", got)
	}
}

func TestRecordClone(t *testing.T) {
	r := &Record{
		LId: 3, TOId: 4, Host: 1,
		Deps: []Dep{{DC: 0, TOId: 1}},
		Tags: []Tag{{Key: "a", Value: "b"}},
		Body: []byte("hello"),
	}
	c := r.Clone()
	if c.LId != r.LId || c.TOId != r.TOId || c.Host != r.Host {
		t.Fatal("clone header mismatch")
	}
	c.Deps[0].TOId = 99
	c.Tags[0].Value = "x"
	c.Body[0] = 'X'
	if r.Deps[0].TOId != 1 || r.Tags[0].Value != "b" || r.Body[0] != 'h' {
		t.Error("Clone aliases original buffers")
	}
}

func TestRecordValidate(t *testing.T) {
	valid := &Record{TOId: 1, Tags: []Tag{{Key: "k"}}}
	if err := valid.Validate(); err != nil {
		t.Errorf("valid record rejected: %v", err)
	}
	tests := []struct {
		name string
		r    *Record
	}{
		{"nil", nil},
		{"zero TOId", &Record{TOId: 0}},
		{"duplicate dep", &Record{TOId: 1, Deps: []Dep{{DC: 1, TOId: 1}, {DC: 1, TOId: 2}}}},
		{"empty tag key", &Record{TOId: 1, Tags: []Tag{{Key: ""}}}},
	}
	for _, tt := range tests {
		if err := tt.r.Validate(); err == nil {
			t.Errorf("%s: Validate() = nil, want error", tt.name)
		}
	}
}
