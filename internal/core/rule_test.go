package core

import "testing"

func TestRuleMatchLIdBounds(t *testing.T) {
	r := &Record{LId: 10, TOId: 1}
	tests := []struct {
		name string
		rule Rule
		want bool
	}{
		{"unconstrained", Rule{}, true},
		{"min below", Rule{MinLId: 5}, true},
		{"min equal", Rule{MinLId: 10}, true},
		{"min above", Rule{MinLId: 11}, false},
		{"max inclusive equal", Rule{MaxLId: 10}, true},
		{"max inclusive below", Rule{MaxLId: 9}, false},
		{"max exclusive equal", Rule{MaxLIdExclusive: 10}, false},
		{"max exclusive above", Rule{MaxLIdExclusive: 11}, true},
	}
	for _, tt := range tests {
		if got := tt.rule.Match(r); got != tt.want {
			t.Errorf("%s: Match = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestRuleMatchHostAndTOId(t *testing.T) {
	r := &Record{LId: 1, TOId: 20, Host: 2}
	tests := []struct {
		name string
		rule Rule
		want bool
	}{
		{"host match", Rule{HasHost: true, Host: 2}, true},
		{"host mismatch", Rule{HasHost: true, Host: 1}, false},
		{"host zero value without HasHost", Rule{Host: 1}, true},
		{"toid range in", Rule{MinTOId: 20, MaxTOId: 20}, true},
		{"toid below min", Rule{MinTOId: 21}, false},
		{"toid above max", Rule{MaxTOId: 19}, false},
	}
	for _, tt := range tests {
		if got := tt.rule.Match(r); got != tt.want {
			t.Errorf("%s: Match = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestRuleMatchTags(t *testing.T) {
	r := &Record{TOId: 1, Tags: []Tag{{Key: "key", Value: "balance"}, {Key: "n", Value: "42"}}}
	tests := []struct {
		name string
		rule Rule
		want bool
	}{
		{"tag present", Rule{TagKey: "key"}, true},
		{"tag absent", Rule{TagKey: "nope"}, false},
		{"eq string", Rule{TagKey: "key", TagCmp: CmpEQ, TagValue: "balance"}, true},
		{"ne string", Rule{TagKey: "key", TagCmp: CmpNE, TagValue: "balance"}, false},
		{"numeric gt true", Rule{TagKey: "n", TagCmp: CmpGT, TagValue: "7"}, true},
		{"numeric gt false", Rule{TagKey: "n", TagCmp: CmpGT, TagValue: "42"}, false},
		{"numeric ge", Rule{TagKey: "n", TagCmp: CmpGE, TagValue: "42"}, true},
		{"numeric lt", Rule{TagKey: "n", TagCmp: CmpLT, TagValue: "100"}, true},
		{"numeric le", Rule{TagKey: "n", TagCmp: CmpLE, TagValue: "41"}, false},
		// "9" > "42" lexicographically but 9 < 42 numerically; both
		// sides parse, so comparison must be numeric.
		{"numeric not lexicographic", Rule{TagKey: "n", TagCmp: CmpLT, TagValue: "9"}, false},
		{"lexicographic fallback", Rule{TagKey: "key", TagCmp: CmpLT, TagValue: "zzz"}, true},
	}
	for _, tt := range tests {
		if got := tt.rule.Match(r); got != tt.want {
			t.Errorf("%s: Match = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestRuleEffectiveMaxLId(t *testing.T) {
	tests := []struct {
		rule Rule
		want uint64
	}{
		{Rule{}, 0},
		{Rule{MaxLId: 10}, 10},
		{Rule{MaxLIdExclusive: 10}, 9},
		{Rule{MaxLId: 5, MaxLIdExclusive: 10}, 5},
		{Rule{MaxLId: 20, MaxLIdExclusive: 10}, 9},
	}
	for _, tt := range tests {
		if got := tt.rule.EffectiveMaxLId(); got != tt.want {
			t.Errorf("EffectiveMaxLId(%+v) = %d, want %d", tt.rule, got, tt.want)
		}
	}
}

func TestCmpOpString(t *testing.T) {
	ops := map[CmpOp]string{CmpAny: "any", CmpEQ: "==", CmpNE: "!=", CmpLT: "<", CmpLE: "<=", CmpGT: ">", CmpGE: ">=", CmpOp(99): "?"}
	for op, want := range ops {
		if got := op.String(); got != want {
			t.Errorf("CmpOp(%d).String() = %q, want %q", op, got, want)
		}
	}
}
