package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleRecord() *Record {
	return &Record{
		LId:  42,
		TOId: 7,
		Host: 3,
		Deps: []Dep{{DC: 0, TOId: 11}, {DC: 1, TOId: 0}},
		Tags: []Tag{{Key: "key", Value: "x"}, {Key: "idx", Value: "42"}},
		Body: []byte("payload bytes"),
	}
}

func TestRecordRoundTrip(t *testing.T) {
	r := sampleRecord()
	buf := MarshalRecord(r)
	if len(buf) != EncodedSize(r) {
		t.Errorf("EncodedSize = %d, marshal produced %d bytes", EncodedSize(r), len(buf))
	}
	got, used, err := DecodeRecord(buf)
	if err != nil {
		t.Fatalf("DecodeRecord: %v", err)
	}
	if used != len(buf) {
		t.Errorf("consumed %d of %d bytes", used, len(buf))
	}
	if !reflect.DeepEqual(got, r) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, r)
	}
}

func TestRecordRoundTripMinimal(t *testing.T) {
	r := &Record{TOId: 1}
	got, _, err := DecodeRecord(MarshalRecord(r))
	if err != nil {
		t.Fatalf("DecodeRecord: %v", err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Errorf("round trip mismatch: got %+v want %+v", got, r)
	}
}

func TestDecodeRecordNoAlias(t *testing.T) {
	r := sampleRecord()
	buf := MarshalRecord(r)
	got, _, err := DecodeRecord(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		buf[i] = 0xFF
	}
	if !bytes.Equal(got.Body, r.Body) {
		t.Error("decoded body aliases input buffer")
	}
	if got.Tags[0].Key != "key" {
		t.Error("decoded tag aliases input buffer")
	}
}

func TestDecodeRecordTruncated(t *testing.T) {
	full := MarshalRecord(sampleRecord())
	for n := 0; n < len(full); n++ {
		if _, _, err := DecodeRecord(full[:n]); err == nil {
			t.Fatalf("DecodeRecord accepted truncation to %d of %d bytes", n, len(full))
		}
	}
}

func TestRecordsBatchRoundTrip(t *testing.T) {
	recs := []*Record{sampleRecord(), {TOId: 2, Host: 1, Body: []byte("b")}, {TOId: 3}}
	buf := AppendRecords(nil, recs)
	got, used, err := DecodeRecords(buf)
	if err != nil {
		t.Fatalf("DecodeRecords: %v", err)
	}
	if used != len(buf) {
		t.Errorf("consumed %d of %d", used, len(buf))
	}
	if !reflect.DeepEqual(got, recs) {
		t.Error("batch round trip mismatch")
	}
}

func TestRecordsBatchEmpty(t *testing.T) {
	buf := AppendRecords(nil, nil)
	got, _, err := DecodeRecords(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("got %d records, want 0", len(got))
	}
}

// quickRecord builds a pseudo-random well-formed record for property tests.
func quickRecord(rng *rand.Rand) *Record {
	r := &Record{
		LId:  rng.Uint64() % 1e9,
		TOId: 1 + rng.Uint64()%1e9,
		Host: DCID(rng.Intn(8)),
	}
	for i, n := 0, rng.Intn(4); i < n; i++ {
		r.Deps = append(r.Deps, Dep{DC: DCID(i), TOId: rng.Uint64() % 1e6})
	}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		key := make([]byte, 1+rng.Intn(12))
		val := make([]byte, rng.Intn(20))
		rng.Read(key)
		rng.Read(val)
		r.Tags = append(r.Tags, Tag{Key: string(key), Value: string(val)})
	}
	body := make([]byte, rng.Intn(600))
	rng.Read(body)
	if len(body) > 0 {
		r.Body = body
	}
	return r
}

func TestRecordRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := quickRecord(rng)
		got, used, err := DecodeRecord(MarshalRecord(r))
		if err != nil || used != EncodedSize(r) {
			return false
		}
		return reflect.DeepEqual(got, r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMarshalRecord(b *testing.B) {
	r := sampleRecord()
	r.Body = make([]byte, 512)
	b.SetBytes(int64(EncodedSize(r)))
	b.ReportAllocs()
	buf := make([]byte, 0, EncodedSize(r))
	for i := 0; i < b.N; i++ {
		buf = AppendRecord(buf[:0], r)
	}
}

func BenchmarkDecodeRecord(b *testing.B) {
	r := sampleRecord()
	r.Body = make([]byte, 512)
	buf := MarshalRecord(r)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeRecord(buf); err != nil {
			b.Fatal(err)
		}
	}
}
