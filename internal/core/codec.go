package core

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary record encoding. Records cross machine boundaries at every
// pipeline stage, so the codec is a hand-rolled little-endian format rather
// than reflection-based encoding: append-path cost is dominated by this
// marshal/unmarshal pair.
//
// Layout (all integers little-endian):
//
//	u64 LId | u64 TOId | u16 Host |
//	u16 nDeps  { u16 DC, u64 TOId }*
//	u16 nTags  { u16 lenKey, key, u32 lenVal, val }*
//	u32 lenBody, body

const recordHeaderSize = 8 + 8 + 2 + 2 // through nDeps

// minEncodedRecordSize is the smallest possible record encoding (empty
// deps, tags, and body); batch count prefixes are sanity-checked against
// it so a corrupt count cannot drive a giant preallocation.
const minEncodedRecordSize = recordHeaderSize + 2 + 4

var errShortBuffer = errors.New("core: short buffer decoding record")

// EncodedSize returns the exact number of bytes MarshalRecord will produce.
func EncodedSize(r *Record) int {
	n := recordHeaderSize + len(r.Deps)*10 + 2
	for _, t := range r.Tags {
		n += 2 + len(t.Key) + 4 + len(t.Value)
	}
	n += 4 + len(r.Body)
	return n
}

// AppendRecord appends the binary encoding of r to dst and returns the
// extended slice.
func AppendRecord(dst []byte, r *Record) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, r.LId)
	dst = binary.LittleEndian.AppendUint64(dst, r.TOId)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(r.Host))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(r.Deps)))
	for _, d := range r.Deps {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(d.DC))
		dst = binary.LittleEndian.AppendUint64(dst, d.TOId)
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(r.Tags)))
	for _, t := range r.Tags {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(t.Key)))
		dst = append(dst, t.Key...)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(t.Value)))
		dst = append(dst, t.Value...)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Body)))
	dst = append(dst, r.Body...)
	return dst
}

// MarshalRecord returns the binary encoding of r in a freshly allocated
// buffer sized exactly.
func MarshalRecord(r *Record) []byte {
	return AppendRecord(make([]byte, 0, EncodedSize(r)), r)
}

// DecodeRecord decodes one record from the front of buf, returning the
// record and the number of bytes consumed. The returned record's Tags,
// Deps and Body are copies; it does not alias buf.
func DecodeRecord(buf []byte) (*Record, int, error) {
	r := &Record{}
	used, err := decodeRecordInto(r, buf, true)
	if err != nil {
		return nil, 0, err
	}
	return r, used, nil
}

// DecodeRecordView decodes one record from the front of buf into *r,
// reusing r's Deps and Tags capacity across calls. The decoded Body
// ALIASES buf: the view is valid only while buf is, and a component that
// retains the record past that point must Clone it first (see the
// ownership rules in DESIGN.md "Hot path & memory discipline"). Tag
// strings are copies (Go strings are immutable), so only Body aliases.
func DecodeRecordView(r *Record, buf []byte) (int, error) {
	return decodeRecordInto(r, buf, false)
}

// decodeRecordInto is the single decode implementation: it fills *r,
// reusing Deps/Tags capacity, copying the body iff copyBody.
func decodeRecordInto(r *Record, buf []byte, copyBody bool) (int, error) {
	if len(buf) < recordHeaderSize {
		return 0, errShortBuffer
	}
	r.LId = binary.LittleEndian.Uint64(buf[0:])
	r.TOId = binary.LittleEndian.Uint64(buf[8:])
	r.Host = DCID(binary.LittleEndian.Uint16(buf[16:]))
	nDeps := int(binary.LittleEndian.Uint16(buf[18:]))
	off := recordHeaderSize
	r.Deps = r.Deps[:0]
	if nDeps > 0 {
		if len(buf) < off+nDeps*10 {
			return 0, errShortBuffer
		}
		if cap(r.Deps) < nDeps {
			r.Deps = make([]Dep, 0, nDeps)
		}
		for i := 0; i < nDeps; i++ {
			r.Deps = append(r.Deps, Dep{
				DC:   DCID(binary.LittleEndian.Uint16(buf[off:])),
				TOId: binary.LittleEndian.Uint64(buf[off+2:]),
			})
			off += 10
		}
	} else if cap(r.Deps) == 0 {
		r.Deps = nil
	}
	if len(buf) < off+2 {
		return 0, errShortBuffer
	}
	nTags := int(binary.LittleEndian.Uint16(buf[off:]))
	off += 2
	r.Tags = r.Tags[:0]
	if nTags > 0 {
		if cap(r.Tags) < nTags {
			r.Tags = make([]Tag, 0, nTags)
		}
		for i := 0; i < nTags; i++ {
			if len(buf) < off+2 {
				return 0, errShortBuffer
			}
			lk := int(binary.LittleEndian.Uint16(buf[off:]))
			off += 2
			if len(buf) < off+lk+4 {
				return 0, errShortBuffer
			}
			key := string(buf[off : off+lk])
			off += lk
			lv := int(binary.LittleEndian.Uint32(buf[off:]))
			off += 4
			if len(buf) < off+lv {
				return 0, errShortBuffer
			}
			r.Tags = append(r.Tags, Tag{Key: key, Value: string(buf[off : off+lv])})
			off += lv
		}
	} else if cap(r.Tags) == 0 {
		r.Tags = nil
	}
	if len(buf) < off+4 {
		return 0, errShortBuffer
	}
	lb := int(binary.LittleEndian.Uint32(buf[off:]))
	off += 4
	if len(buf) < off+lb {
		return 0, errShortBuffer
	}
	switch {
	case lb == 0:
		r.Body = nil
	case copyBody:
		r.Body = append([]byte(nil), buf[off:off+lb]...)
	default:
		r.Body = buf[off : off+lb : off+lb]
	}
	off += lb
	return off, nil
}

// EncodedSizeRecords returns the exact number of bytes AppendRecords will
// produce for recs, for single-allocation buffer sizing.
func EncodedSizeRecords(recs []*Record) int {
	n := 4
	for _, r := range recs {
		n += EncodedSize(r)
	}
	return n
}

// AppendRecords encodes a batch of records preceded by a u32 count.
func AppendRecords(dst []byte, recs []*Record) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(recs)))
	for _, r := range recs {
		dst = AppendRecord(dst, r)
	}
	return dst
}

// decodeBatchCount reads and sanity-checks a batch's u32 count prefix: a
// count that could not possibly fit in the remaining bytes (each record
// encodes to at least minEncodedRecordSize) is rejected before any
// count-proportional allocation happens.
func decodeBatchCount(buf []byte) (int, error) {
	if len(buf) < 4 {
		return 0, errShortBuffer
	}
	n := int(binary.LittleEndian.Uint32(buf))
	if n > (len(buf)-4)/minEncodedRecordSize {
		return 0, fmt.Errorf("core: batch count %d exceeds buffer capacity: %w", n, errShortBuffer)
	}
	return n, nil
}

// DecodeRecords decodes a batch encoded by AppendRecords, returning the
// records and bytes consumed. Every record is an independent deep copy;
// for the O(1)-allocation hot-path variant see DecodeRecordsShared.
func DecodeRecords(buf []byte) ([]*Record, int, error) {
	n, err := decodeBatchCount(buf)
	if err != nil {
		return nil, 0, err
	}
	off := 4
	recs := make([]*Record, 0, n)
	for i := 0; i < n; i++ {
		r, used, err := DecodeRecord(buf[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("core: decoding record %d/%d: %w", i, n, err)
		}
		recs = append(recs, r)
		off += used
	}
	return recs, off, nil
}
