package core

import (
	"strconv"
)

// CmpOp is a comparison operator used by tag-value predicates in read
// rules.
type CmpOp uint8

// Comparison operators for Rule.TagCmp.
const (
	CmpAny CmpOp = iota // no value constraint
	CmpEQ
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

func (op CmpOp) String() string {
	switch op {
	case CmpAny:
		return "any"
	case CmpEQ:
		return "=="
	case CmpNE:
		return "!="
	case CmpLT:
		return "<"
	case CmpLE:
		return "<="
	case CmpGT:
		return ">"
	case CmpGE:
		return ">="
	}
	return "?"
}

// Rule selects records from the shared log. Per §3, a rule may involve
// TOIds, LIds, and tag information. Zero values mean "unconstrained".
//
// LId bounds are inclusive except MaxLIdExclusive, which when nonzero
// excludes its value — Hyksos' get-transactions use "LId < i" (Algorithm 1).
type Rule struct {
	// LId constraints (positions in the local datacenter's log).
	MinLId          uint64
	MaxLId          uint64 // inclusive; 0 = unbounded
	MaxLIdExclusive uint64 // exclusive upper bound; 0 = unbounded

	// Host/TOId constraints.
	HasHost bool
	Host    DCID
	MinTOId uint64
	MaxTOId uint64 // inclusive; 0 = unbounded

	// Tag constraints: records must carry a tag with key TagKey. If
	// TagCmp != CmpAny the tag's value must satisfy the comparison
	// against TagValue (numeric when both sides parse as integers,
	// lexicographic otherwise).
	TagKey   string
	TagCmp   CmpOp
	TagValue string

	// Limit caps the number of records returned; 0 means no cap.
	// MostRecent makes the rule return the highest-LId matches (the
	// "most recent x records" lookups of §5.3) rather than the lowest.
	Limit      int
	MostRecent bool
}

// Match reports whether the record satisfies every constraint of the rule.
func (ru *Rule) Match(r *Record) bool {
	if r.LId < ru.MinLId {
		return false
	}
	if ru.MaxLId != 0 && r.LId > ru.MaxLId {
		return false
	}
	if ru.MaxLIdExclusive != 0 && r.LId >= ru.MaxLIdExclusive {
		return false
	}
	if ru.HasHost && r.Host != ru.Host {
		return false
	}
	if r.TOId < ru.MinTOId {
		return false
	}
	if ru.MaxTOId != 0 && r.TOId > ru.MaxTOId {
		return false
	}
	if ru.TagKey != "" {
		v, ok := r.TagValue(ru.TagKey)
		if !ok {
			return false
		}
		if !compareValues(v, ru.TagCmp, ru.TagValue) {
			return false
		}
	}
	return true
}

// EffectiveMaxLId returns the tightest inclusive LId upper bound implied by
// the rule, or 0 if unbounded. Log maintainers use it to prune scans.
func (ru *Rule) EffectiveMaxLId() uint64 {
	max := ru.MaxLId
	if ru.MaxLIdExclusive != 0 {
		ex := ru.MaxLIdExclusive - 1
		if max == 0 || ex < max {
			max = ex
		}
	}
	return max
}

// compareValues applies op between the record's tag value (lhs) and the
// rule's reference value (rhs). If both parse as signed integers the
// comparison is numeric; otherwise it is lexicographic, matching the "values
// greater than i" lookups of §5.3 for integer-valued tags.
func compareValues(lhs string, op CmpOp, rhs string) bool {
	if op == CmpAny {
		return true
	}
	var c int
	li, lerr := strconv.ParseInt(lhs, 10, 64)
	ri, rerr := strconv.ParseInt(rhs, 10, 64)
	if lerr == nil && rerr == nil {
		switch {
		case li < ri:
			c = -1
		case li > ri:
			c = 1
		}
	} else {
		switch {
		case lhs < rhs:
			c = -1
		case lhs > rhs:
			c = 1
		}
	}
	switch op {
	case CmpEQ:
		return c == 0
	case CmpNE:
		return c != 0
	case CmpLT:
		return c < 0
	case CmpLE:
		return c <= 0
	case CmpGT:
		return c > 0
	case CmpGE:
		return c >= 0
	}
	return false
}
