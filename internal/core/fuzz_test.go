package core

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
)

// The fuzz targets pin two properties of the record codec against
// adversarial input: no decoder may panic or over-read, and the three
// decode paths (materializing, zero-copy view, shared-arena batch) must
// agree byte-for-byte on both acceptance and result.

func fuzzSeedRecords() []*Record {
	return []*Record{
		{LId: 1, TOId: 2, Host: 1, Body: []byte("body")},
		{LId: 7, TOId: 9, Host: 2,
			Deps: []Dep{{DC: 0, TOId: 3}, {DC: 1, TOId: 4}},
			Tags: []Tag{{Key: "stream", Value: "orders"}, {Key: "empty", Value: ""}},
			Body: []byte("a body that is long enough to matter")},
		{LId: 3, TOId: 3, Host: 0},
	}
}

func FuzzDecodeRecord(f *testing.F) {
	for _, r := range fuzzSeedRecords() {
		f.Add(MarshalRecord(r))
	}
	full := MarshalRecord(fuzzSeedRecords()[1])
	f.Add(full[:len(full)/2]) // truncated mid-record
	f.Add([]byte{})
	// Tag-count overflow: header claims 0xFFFF tags with no bytes behind it.
	over := MarshalRecord(fuzzSeedRecords()[2])
	binary.LittleEndian.PutUint16(over[recordHeaderSize:], 0xFFFF)
	f.Add(over)

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, used, err := DecodeRecord(data)
		var view Record
		usedV, errV := DecodeRecordView(&view, data)
		if (err == nil) != (errV == nil) {
			t.Fatalf("DecodeRecord err=%v but DecodeRecordView err=%v", err, errV)
		}
		if err != nil {
			return
		}
		if used != usedV {
			t.Fatalf("consumed %d vs view %d", used, usedV)
		}
		if used > len(data) {
			t.Fatalf("consumed %d > input %d", used, len(data))
		}
		if !reflect.DeepEqual(rec, view.Clone()) {
			t.Fatalf("view disagrees: %+v vs %+v", rec, &view)
		}
		// The encoding is canonical: re-encoding reproduces the consumed
		// prefix exactly.
		if !bytes.Equal(MarshalRecord(rec), data[:used]) {
			t.Fatal("re-encoded record differs from consumed input")
		}
	})
}

func FuzzDecodeRecords(f *testing.F) {
	f.Add(AppendRecords(nil, fuzzSeedRecords()))
	f.Add(AppendRecords(nil, nil))
	full := AppendRecords(nil, fuzzSeedRecords())
	f.Add(full[:len(full)-3])              // truncated final record
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})  // impossible count prefix
	f.Add([]byte{2, 0, 0, 0})              // count says 2, no records
	f.Add(append(full[:4:4], full[8:]...)) // corrupted record boundary

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, used, err := DecodeRecords(data)
		recsS, usedS, errS := DecodeRecordsShared(data)
		if (err == nil) != (errS == nil) {
			t.Fatalf("DecodeRecords err=%v but DecodeRecordsShared err=%v", err, errS)
		}
		if err != nil {
			return
		}
		if used != usedS || used > len(data) {
			t.Fatalf("consumed %d vs shared %d (input %d)", used, usedS, len(data))
		}
		if len(recs) != len(recsS) {
			t.Fatalf("decoded %d vs shared %d records", len(recs), len(recsS))
		}
		for i := range recs {
			if !reflect.DeepEqual(recs[i], recsS[i]) {
				t.Fatalf("record %d disagrees: %+v vs %+v", i, recs[i], recsS[i])
			}
		}
		if !bytes.Equal(AppendRecords(nil, recs), data[:used]) {
			t.Fatal("re-encoded batch differs from consumed input")
		}
	})
}
