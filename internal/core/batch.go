package core

import (
	"encoding/binary"
	"fmt"
)

// This file is the batch-granular side of the codec: the unit the append
// and replication hot paths move is a record *batch*, and the goal is O(1)
// buffer allocations per batch rather than O(records).
//
//   - BatchEncoder builds the AppendRecords wire format in a grow-only
//     buffer that is reused across batches (steady-state: zero allocations
//     per batch).
//   - DecodeRecordsShared is the decode dual: it materializes a batch into
//     records backed by shared arenas (one record array, one dep arena,
//     one body arena), so the records are individually retainable — safe
//     to hand to a store or pipeline stage — at a constant number of
//     allocations per batch.
//
// Ownership rules for the zero-copy variants live in DESIGN.md, "Hot path
// & memory discipline".

// BatchEncoder incrementally builds an encoded record batch
// (count-prefixed AppendRecords format) in a reusable buffer. The zero
// value is ready; Reset makes the encoder reusable for the next batch
// while keeping the grown buffer.
type BatchEncoder struct {
	buf   []byte
	count uint32
}

// Reset discards the current batch but keeps the underlying buffer.
func (e *BatchEncoder) Reset() {
	if cap(e.buf) < 4 {
		e.buf = make([]byte, 4, 512)
	}
	e.buf = e.buf[:4]
	e.count = 0
}

// ensureHeader makes the zero value usable: the count prefix is reserved
// lazily on first use and patched in Bytes.
func (e *BatchEncoder) ensureHeader() {
	if len(e.buf) < 4 {
		e.Reset()
	}
}

// Grow reserves capacity for at least n more bytes of encoded records
// (use EncodedSize/EncodedSizeRecords to presize exactly).
func (e *BatchEncoder) Grow(n int) {
	e.ensureHeader()
	if rem := cap(e.buf) - len(e.buf); rem < n {
		grown := make([]byte, len(e.buf), len(e.buf)+n)
		copy(grown, e.buf)
		e.buf = grown
	}
}

// Add appends one record to the batch.
func (e *BatchEncoder) Add(r *Record) {
	e.ensureHeader()
	e.buf = AppendRecord(e.buf, r)
	e.count++
}

// AddAll appends every record of recs, presizing the buffer in one step.
func (e *BatchEncoder) AddAll(recs []*Record) {
	e.Grow(EncodedSizeRecords(recs) - 4)
	for _, r := range recs {
		e.buf = AppendRecord(e.buf, r)
	}
	e.count += uint32(len(recs))
}

// Count returns how many records the batch holds.
func (e *BatchEncoder) Count() int { return int(e.count) }

// Len returns the encoded size of the batch so far.
func (e *BatchEncoder) Len() int {
	if len(e.buf) < 4 {
		return 4
	}
	return len(e.buf)
}

// Bytes patches the count prefix and returns the encoded batch. The slice
// aliases the encoder's buffer: it is valid until the next Reset/Add.
func (e *BatchEncoder) Bytes() []byte {
	e.ensureHeader()
	binary.LittleEndian.PutUint32(e.buf[0:4], e.count)
	return e.buf
}

// batchStats is the skim-pass measurement used to size decode arenas.
type batchStats struct {
	deps      int
	tags      int
	bodyBytes int
	consumed  int // bytes consumed by the n records (excluding count prefix)
}

// skimRecords walks n encoded records in buf without allocating, returning
// totals for arena sizing. It validates exactly the structure the decode
// pass will read, so the decode pass cannot fail after arenas are sized.
func skimRecords(buf []byte, n int) (batchStats, error) {
	var st batchStats
	off := 0
	for i := 0; i < n; i++ {
		if len(buf) < off+recordHeaderSize {
			return st, errShortBuffer
		}
		nDeps := int(binary.LittleEndian.Uint16(buf[off+18:]))
		off += recordHeaderSize
		if len(buf) < off+nDeps*10 {
			return st, errShortBuffer
		}
		st.deps += nDeps
		off += nDeps * 10
		if len(buf) < off+2 {
			return st, errShortBuffer
		}
		nTags := int(binary.LittleEndian.Uint16(buf[off:]))
		off += 2
		st.tags += nTags
		for t := 0; t < nTags; t++ {
			if len(buf) < off+2 {
				return st, errShortBuffer
			}
			lk := int(binary.LittleEndian.Uint16(buf[off:]))
			off += 2
			if len(buf) < off+lk+4 {
				return st, errShortBuffer
			}
			off += lk
			lv := int(binary.LittleEndian.Uint32(buf[off:]))
			off += 4
			if len(buf) < off+lv {
				return st, errShortBuffer
			}
			off += lv
		}
		if len(buf) < off+4 {
			return st, errShortBuffer
		}
		lb := int(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		if len(buf) < off+lb {
			return st, errShortBuffer
		}
		st.bodyBytes += lb
		off += lb
	}
	st.consumed = off
	return st, nil
}

// DecodeRecordsShared decodes a batch encoded by AppendRecords into
// records backed by shared arenas: one []Record, one []Dep arena, one
// []Tag arena, one body byte arena, and (per tagged record) one string
// span — a constant number of allocations per batch instead of several
// per record. The records do NOT alias buf; each is safe to retain
// individually. Retaining any record keeps its batch's arenas reachable,
// which is the intended trade for batches that travel the pipeline
// together; callers that cherry-pick one record from a huge batch for
// long-term retention should Clone it instead.
func DecodeRecordsShared(buf []byte) ([]*Record, int, error) {
	n, err := decodeBatchCount(buf)
	if err != nil {
		return nil, 0, err
	}
	st, err := skimRecords(buf[4:], n)
	if err != nil {
		return nil, 0, fmt.Errorf("core: decoding record batch: %w", err)
	}
	recs := make([]Record, n)
	ptrs := make([]*Record, n)
	var depArena []Dep
	if st.deps > 0 {
		depArena = make([]Dep, st.deps)
	}
	var tagArena []Tag
	if st.tags > 0 {
		tagArena = make([]Tag, st.tags)
	}
	var bodyArena []byte
	if st.bodyBytes > 0 {
		bodyArena = make([]byte, st.bodyBytes)
	}
	off := 4
	depOff, tagOff, bodyOff := 0, 0, 0
	for i := 0; i < n; i++ {
		r := &recs[i]
		ptrs[i] = r
		b := buf[off:]
		r.LId = binary.LittleEndian.Uint64(b[0:])
		r.TOId = binary.LittleEndian.Uint64(b[8:])
		r.Host = DCID(binary.LittleEndian.Uint16(b[16:]))
		nDeps := int(binary.LittleEndian.Uint16(b[18:]))
		o := recordHeaderSize
		if nDeps > 0 {
			ds := depArena[depOff : depOff+nDeps : depOff+nDeps]
			depOff += nDeps
			for d := 0; d < nDeps; d++ {
				ds[d].DC = DCID(binary.LittleEndian.Uint16(b[o:]))
				ds[d].TOId = binary.LittleEndian.Uint64(b[o+2:])
				o += 10
			}
			r.Deps = ds
		}
		nTags := int(binary.LittleEndian.Uint16(b[o:]))
		o += 2
		if nTags > 0 {
			// One string conversion covers the record's whole tag
			// region (lengths included — a few wasted bytes); keys
			// and values are substrings sharing that backing.
			tagStart := o
			for t := 0; t < nTags; t++ {
				lk := int(binary.LittleEndian.Uint16(b[o:]))
				o += 2 + lk
				lv := int(binary.LittleEndian.Uint32(b[o:]))
				o += 4 + lv
			}
			span := string(b[tagStart:o])
			ts := tagArena[tagOff : tagOff+nTags : tagOff+nTags]
			tagOff += nTags
			p := 0
			for t := 0; t < nTags; t++ {
				lk := int(binary.LittleEndian.Uint16(b[tagStart+p:]))
				p += 2
				ts[t].Key = span[p : p+lk]
				p += lk
				lv := int(binary.LittleEndian.Uint32(b[tagStart+p:]))
				p += 4
				ts[t].Value = span[p : p+lv]
				p += lv
			}
			r.Tags = ts
		}
		lb := int(binary.LittleEndian.Uint32(b[o:]))
		o += 4
		if lb > 0 {
			body := bodyArena[bodyOff : bodyOff+lb : bodyOff+lb]
			copy(body, b[o:o+lb])
			r.Body = body
			bodyOff += lb
			o += lb
		}
		off += o
	}
	return ptrs, 4 + st.consumed, nil
}
