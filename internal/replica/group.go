// Package replica adds intra-datacenter fault tolerance to FLStore's log
// maintainers: every deterministic LId range is hosted by a k-way replica
// group instead of a single machine. Group membership is itself a pure
// function of the placement (range i is replicated on maintainers
// i, i+1, …, i+R−1 mod N), so clients compute replica locations with no
// lookup service — the same property that lets FLStore drop the sequencer.
//
// The package is deliberately below flstore in the import graph: it defines
// its own Member interface (implemented by *flstore.Maintainer and by the
// flstore RPC client) and never imports flstore, so flstore can embed
// replica types in its configuration and client.
//
// What this is not: a consensus protocol. Replica groups here inherit the
// paper's crash-stop model — position assignment stays with one acting
// primary per range at a time, the ack policy controls how many copies
// exist before an append is acknowledged, and failover adopts the largest
// replicated frontier among live members. Under AckMajority two live
// members of a 3-group always intersect in at least one holder of every
// acknowledged record, which is what the catch-up protocol relies on.
//
// Reads follow the Hermes model (invalidation-based, broadcast-write
// replication): the acting primary announces each batch's assignment to
// the group ahead of the payload (Invalidator), every member derives a
// validity watermark from its dense-prefix frontier, and any member
// serves reads below its watermark locally — no owner round trip. Reads
// between the watermark and the announced bound are *invalid* at that
// member: they block briefly for the in-flight payload, then fail over
// to a fresher replica via a retryable error. Which member a read tries
// first is a pluggable ReadPolicy (owner-first, load-spreading, or
// proximity-ordered), so replication factor multiplies aggregate read
// throughput instead of only buying failover.
package replica

import (
	"fmt"
	"strings"
)

// Layout describes the replica-group shape of one placement: N maintainers,
// each LId range replicated on R consecutive members (wrapping). R = 1
// degenerates to the unreplicated system.
type Layout struct {
	N int // maintainers in the placement
	R int // copies of every range (replication factor)
}

// Validate reports whether the layout parameters are usable.
func (l Layout) Validate() error {
	if l.N < 1 {
		return fmt.Errorf("replica: N must be >= 1, got %d", l.N)
	}
	if l.R < 1 {
		return fmt.Errorf("replica: R must be >= 1, got %d", l.R)
	}
	if l.R > l.N {
		return fmt.Errorf("replica: R (%d) exceeds maintainer count (%d)", l.R, l.N)
	}
	return nil
}

// Group is the replica set of one LId range. Members are maintainer
// indices in failover-preference order: Members[0] is the range owner (the
// preferred primary, identical to Placement.Owner), and on its failure the
// acting-primary role falls to the next live member in order.
type Group struct {
	Range   int
	Members []int
}

// Group returns the replica group of rangeIdx (the maintainer index that
// owns the range in the unreplicated placement).
func (l Layout) Group(rangeIdx int) Group {
	members := make([]int, l.R)
	for k := 0; k < l.R; k++ {
		members[k] = (rangeIdx + k) % l.N
	}
	return Group{Range: rangeIdx, Members: members}
}

// Hosts returns the ranges maintainer m stores, in decreasing preference:
// its own range first, then the ranges it follows (m−1, m−2, … mod N).
func (l Layout) Hosts(m int) []int {
	ranges := make([]int, l.R)
	for k := 0; k < l.R; k++ {
		ranges[k] = ((m-k)%l.N + l.N) % l.N
	}
	return ranges
}

// Replicas reports whether maintainer m hosts rangeIdx (as owner or
// follower).
func (l Layout) Replicas(m, rangeIdx int) bool {
	d := ((m-rangeIdx)%l.N + l.N) % l.N
	return d < l.R
}

// AckPolicy selects how many replica-group members must durably hold an
// append before it is acknowledged to the application.
type AckPolicy int

const (
	// AckOne acknowledges after the acting primary alone persists the
	// batch (lowest latency; an unlucky crash loses the tail).
	AckOne AckPolicy = iota
	// AckMajority acknowledges after ⌈(R+1)/2⌉ members persist — the
	// smallest count whose groups always intersect, so any live majority
	// holds every acknowledged record.
	AckMajority
	// AckAll acknowledges only when every group member holds the batch
	// (strongest durability; one dead member blocks appends to the group).
	AckAll
)

// Required returns the number of members that must ack under the policy
// for a group of r copies.
func (p AckPolicy) Required(r int) int {
	switch p {
	case AckOne:
		return 1
	case AckAll:
		return r
	default:
		return r/2 + 1
	}
}

// String implements fmt.Stringer.
func (p AckPolicy) String() string {
	switch p {
	case AckOne:
		return "one"
	case AckAll:
		return "all"
	default:
		return "majority"
	}
}

// ParseAckPolicy parses "one", "majority", or "all".
func ParseAckPolicy(s string) (AckPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "one", "1":
		return AckOne, nil
	case "majority", "quorum":
		return AckMajority, nil
	case "all":
		return AckAll, nil
	}
	return AckMajority, fmt.Errorf("replica: unknown ack policy %q (want one|majority|all)", s)
}
