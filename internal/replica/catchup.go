package replica

import (
	"fmt"
)

// DefaultCatchUpBatch is the per-pull record cap used when a caller passes
// batchLimit <= 0.
const DefaultCatchUpBatch = 256

// CatchUpRange streams rangeIdx records the target is missing from peer
// into the target, batch by batch, until the target's frontier reaches the
// peer's. Records land through ReplicaAppend, so they pass the same
// dense-frontier ingestion (and duplicate rejection) as live fan-out, and
// the target's segment store persists them before the member rejoins.
// Returns the number of records transferred.
func CatchUpRange(target, peer Member, rangeIdx int, batchLimit int) (int, error) {
	if batchLimit <= 0 {
		batchLimit = DefaultCatchUpBatch
	}
	total := 0
	for {
		have, err := target.RangeFrontier(rangeIdx)
		if err != nil {
			return total, fmt.Errorf("replica: catch-up target frontier (range %d): %w", rangeIdx, err)
		}
		want, err := peer.RangeFrontier(rangeIdx)
		if err != nil {
			return total, fmt.Errorf("replica: catch-up peer frontier (range %d): %w", rangeIdx, err)
		}
		if have >= want {
			replayInvalidations(target, peer, rangeIdx)
			return total, nil
		}
		recs, err := peer.PullRange(rangeIdx, have, batchLimit)
		if err != nil {
			return total, fmt.Errorf("replica: pulling range %d from %d: %w", rangeIdx, have, err)
		}
		if len(recs) == 0 {
			// The peer's frontier says more exists but the pull came back
			// empty — its store lost the window (e.g. GC). Surface it
			// rather than spinning.
			return total, fmt.Errorf("replica: catch-up stalled: range %d frontier %d < %d but peer returned no records",
				rangeIdx, have, want)
		}
		if err := target.ReplicaAppend(recs); err != nil {
			return total, fmt.Errorf("replica: ingesting catch-up batch (range %d): %w", rangeIdx, err)
		}
		total += len(recs)
	}
}

// replayInvalidations forwards the peer's announced-assignment bound to a
// freshly caught-up target. The peer may know of assignments it has not
// resolved itself (announcements outrun payloads by design); without the
// replay, a rejoined member would treat those positions as nonexistent
// and could serve a stale no-such-record the moment it is readmitted.
// Best-effort by construction: members that predate the invalidation
// protocol simply skip it, and the next live fan-out re-announces.
func replayInvalidations(target, peer Member, rangeIdx int) {
	inv, ok := target.(Invalidator)
	if !ok {
		return
	}
	wr, ok := peer.(WatermarkReporter)
	if !ok {
		return
	}
	if _, announced, err := wr.ValidityWatermark(rangeIdx); err == nil && announced > 0 {
		_ = inv.Invalidate(rangeIdx, announced)
	}
}

// CatchUp brings member idx up to date on every range it hosts, pulling
// each range from the usable group member with the largest frontier (the
// member guaranteed — under AckMajority — to hold every acknowledged
// record). Call it after a restarted maintainer is reachable again and
// before Readmit. Returns the total records transferred.
func (s *Session) CatchUp(idx int, batchLimit int) (int, error) {
	target := s.Member(idx)
	total := 0
	for _, rangeIdx := range s.cfg.Layout.Hosts(idx) {
		peer, ok := s.bestPeer(idx, rangeIdx)
		if !ok {
			return total, fmt.Errorf("replica: no usable peer hosts range %d", rangeIdx)
		}
		n, err := CatchUpRange(target, s.Member(peer), rangeIdx, batchLimit)
		total += n
		s.catchupRecords.Add(uint64(n))
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Rejoin is the full re-admission sequence for a restarted member: catch
// up every hosted range, then restore the member to Healthy so it resumes
// serving reads and receiving fan-out.
func (s *Session) Rejoin(idx int, batchLimit int) (int, error) {
	n, err := s.CatchUp(idx, batchLimit)
	if err != nil {
		return n, err
	}
	s.health.Readmit(idx)
	return n, nil
}

// bestPeer picks the usable member (≠ idx) of rangeIdx's group with the
// largest frontier for that range.
func (s *Session) bestPeer(idx, rangeIdx int) (int, bool) {
	g := s.cfg.Layout.Group(rangeIdx)
	best, bestFrontier, found := 0, uint64(0), false
	for _, mi := range g.Members {
		if mi == idx || !s.health.Usable(mi) {
			continue
		}
		f, err := s.Member(mi).RangeFrontier(rangeIdx)
		if err != nil {
			if s.fatal(err) {
				continue
			}
			s.health.ReportFailure(mi)
			continue
		}
		if !found || f > bestFrontier {
			best, bestFrontier, found = mi, f, true
		}
	}
	return best, found
}
