package replica

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// invalidatingFake is a fakeMember that also records invalidation
// announcements, standing in for a maintainer that implements the
// optional Invalidator/WatermarkReporter surface.
type invalidatingFake struct {
	*fakeMember
	mu    sync.Mutex
	bound map[int]uint64 // rangeIdx -> highest announced assignment bound
}

func newInvalidatingFake(idx int, l Layout) *invalidatingFake {
	return &invalidatingFake{fakeMember: newFakeMember(idx, l), bound: map[int]uint64{}}
}

func (f *invalidatingFake) Invalidate(rangeIdx int, upTo uint64) error {
	if err := f.gate(); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if upTo > f.bound[rangeIdx] {
		f.bound[rangeIdx] = upTo
	}
	return nil
}

func (f *invalidatingFake) ValidityWatermark(rangeIdx int) (uint64, uint64, error) {
	if err := f.gate(); err != nil {
		return 0, 0, err
	}
	f.fakeMember.mu.Lock()
	wm := f.lidOfSlot(rangeIdx, f.frontier[rangeIdx])
	f.fakeMember.mu.Unlock()
	f.mu.Lock()
	ann := f.bound[rangeIdx]
	f.mu.Unlock()
	if ann < wm {
		ann = wm
	}
	return wm, ann, nil
}

// TestAppendBroadcastsInvalidations: the fan-out announces the assigned
// bound to every invalidation-capable follower ahead of the payload copy,
// and the session counts the deliveries.
func TestAppendBroadcastsInvalidations(t *testing.T) {
	l := Layout{N: 3, R: 3}
	fakes := make([]*invalidatingFake, 3)
	members := make([]Member, 3)
	for i := range fakes {
		fakes[i] = newInvalidatingFake(i, l)
		members[i] = fakes[i]
	}
	s, err := NewSession(members, SessionConfig{
		Layout: l,
		Ack:    AckAll,
		Owner:  func(lid uint64) int { return int((lid - 1) % 3) },
	})
	if err != nil {
		t.Fatal(err)
	}
	lids, err := s.Append([]*core.Record{{Body: []byte("a")}, {Body: []byte("b")}})
	if err != nil {
		t.Fatal(err)
	}
	upTo := lids[len(lids)-1] + 1
	// Both followers of range 0 (members 1 and 2) saw the announcement;
	// the acting primary itself is not re-announced to.
	for _, i := range []int{1, 2} {
		fakes[i].mu.Lock()
		got := fakes[i].bound[0]
		fakes[i].mu.Unlock()
		if got != upTo {
			t.Errorf("member %d announced bound = %d, want %d", i, got, upTo)
		}
	}
	if n := s.Invalidations(); n != 2 {
		t.Errorf("session invalidations = %d, want 2", n)
	}
}

// TestCatchUpReplaysInvalidations: after a catch-up converges, the target
// learns the peer's announced bound so positions assigned-but-unresolved
// elsewhere stay invalid rather than reading as absent.
func TestCatchUpReplaysInvalidations(t *testing.T) {
	l := Layout{N: 2, R: 2}
	fakes := []*invalidatingFake{newInvalidatingFake(0, l), newInvalidatingFake(1, l)}
	s, err := NewSession([]Member{fakes[0], fakes[1]}, SessionConfig{
		Layout: l,
		Ack:    AckAll,
		Owner:  func(lid uint64) int { return int((lid - 1) % 2) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append([]*core.Record{{Body: []byte("a")}}); err != nil {
		t.Fatal(err)
	}
	// The peer knows of assignments past what it stores.
	if err := fakes[1].Invalidate(0, 9); err != nil {
		t.Fatal(err)
	}
	if _, err := CatchUpRange(fakes[0], fakes[1], 0, 0); err != nil {
		t.Fatal(err)
	}
	_ = s // the session only wires the fakes; the replay is member-to-member
	fakes[0].mu.Lock()
	got := fakes[0].bound[0]
	fakes[0].mu.Unlock()
	if got != 9 {
		t.Errorf("catch-up target bound = %d, want 9 replayed from peer", got)
	}
}

func TestReadPolicyPicks(t *testing.T) {
	l := Layout{N: 3, R: 3}
	owner := OwnerFirst()
	for k, want := range []int{1, 2, 0} {
		if got := owner.Pick(l, 1, k, 42); got != want {
			t.Errorf("OwnerFirst.Pick(range 1, k=%d) = %d, want %d", k, got, want)
		}
	}
	spread := SpreadReads()
	// token rotates the starting member; the failover walk still covers
	// the whole group exactly once.
	for token := uint64(0); token < 3; token++ {
		seen := map[int]bool{}
		for k := 0; k < l.R; k++ {
			seen[spread.Pick(l, 0, k, token)] = true
		}
		if len(seen) != 3 {
			t.Errorf("SpreadReads token %d covered %d members, want 3", token, len(seen))
		}
	}
	if a, b := spread.Pick(l, 0, 0, 1), spread.Pick(l, 0, 0, 2); a == b {
		t.Error("SpreadReads did not rotate the first pick across tokens")
	}
	near, err := NearestFirst(l, func(m int) int { return []int{10, 0, 5}[m] })
	if err != nil {
		t.Fatal(err)
	}
	for k, want := range []int{1, 2, 0} {
		if got := near.Pick(l, 0, k, 7); got != want {
			t.Errorf("NearestFirst.Pick(range 0, k=%d) = %d, want %d", k, got, want)
		}
	}
	// Equal costs: the owner wins the tie so the default stays local.
	flat, err := NearestFirst(l, func(int) int { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	if got := flat.Pick(l, 2, 0, 0); got != 2 {
		t.Errorf("NearestFirst flat-cost first pick = %d, want owner 2", got)
	}
}

func TestAckErrorClassification(t *testing.T) {
	err := &AckError{Acked: 1, Required: 2, Range: 0, RetryAfter: 2 * time.Millisecond}
	if !errors.Is(err, ErrInsufficientAcks) {
		t.Error("AckError does not unwrap to ErrInsufficientAcks")
	}
	if !err.Retryable() {
		t.Error("AckError not retryable")
	}
	if err.RetryAfterHint() != 2*time.Millisecond {
		t.Errorf("RetryAfterHint = %v, want 2ms", err.RetryAfterHint())
	}
}

// TestSessionUnderAckedAppendReturnsTypedError: an under-acked append
// surfaces the typed AckError (with pacing hint) rather than a bare
// sentinel, so flstore.IsRetryable/RetryAfter can classify it.
func TestSessionUnderAckedAppendReturnsTypedError(t *testing.T) {
	s, fakes := buildSession(t, 3, 3, AckAll, 10)
	fakes[1].setDown(true)
	fakes[2].setDown(true)
	_, err := s.Append([]*core.Record{{Body: []byte("x")}})
	var ae *AckError
	if !errors.As(err, &ae) {
		t.Fatalf("append error = %v, want *AckError", err)
	}
	if ae.Acked != 1 || ae.Required != 3 || ae.RetryAfter <= 0 {
		t.Errorf("AckError = %+v, want acked 1 of 3 with a pacing hint", ae)
	}
}
