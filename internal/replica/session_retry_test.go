package replica

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// flakyMember rejects the first N ReplicaAppend calls with a transient,
// hint-carrying admission error, then behaves like its embedded fake.
type flakyMember struct {
	*fakeMember
	mu      sync.Mutex
	rejects int
	seen    int
}

type testOverload struct{ hint time.Duration }

func (e *testOverload) Error() string                 { return "test: follower overloaded" }
func (e *testOverload) Retryable() bool               { return true }
func (e *testOverload) RetryAfterHint() time.Duration { return e.hint }

func (f *flakyMember) ReplicaAppend(recs []*core.Record) error {
	f.mu.Lock()
	f.seen++
	reject := f.seen <= f.rejects
	f.mu.Unlock()
	if reject {
		return &testOverload{hint: time.Millisecond}
	}
	return f.fakeMember.ReplicaAppend(recs)
}

// TestFanOutRetriesTransientOverload: a follower shedding one copy under
// load is retried after its pacing hint — the append still fully acks and
// the member is NOT treated as failed (no eviction progress).
func TestFanOutRetriesTransientOverload(t *testing.T) {
	l := Layout{N: 3, R: 3}
	fakes := make([]*fakeMember, 3)
	members := make([]Member, 3)
	for i := range fakes {
		fakes[i] = newFakeMember(i, l)
		members[i] = fakes[i]
	}
	flaky := &flakyMember{fakeMember: fakes[1], rejects: 1}
	members[1] = flaky

	s, err := NewSession(members, SessionConfig{
		Layout:     l,
		Ack:        AckAll, // a lost follower ack would fail the append
		Owner:      func(lid uint64) int { return int((lid - 1) % 3) },
		EvictAfter: 1, // a single failure report would evict
		IsRetryable: func(err error) bool {
			var m interface{ Retryable() bool }
			return errors.As(err, &m) && m.Retryable()
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	lids, err := s.Append([]*core.Record{{Body: []byte("a")}})
	if err != nil {
		t.Fatalf("Append with one transient follower shed = %v, want nil", err)
	}
	if len(lids) != 1 {
		t.Fatalf("lids = %v, want 1", lids)
	}
	if got := s.fanoutRetries.Value(); got < 1 {
		t.Fatalf("fanoutRetries = %d, want >= 1", got)
	}
	if !s.health.Usable(1) {
		t.Fatal("member evicted after a retryable overload rejection")
	}
	// The copy actually landed on the flaky member via the retry.
	if _, err := fakes[1].Read(lids[0]); err != nil {
		t.Fatalf("record missing on retried follower: %v", err)
	}
}

// TestFanOutRetryExhaustedDoesNotEvict: even when the single retry also
// sheds, overload still must not count toward eviction — the member is
// loaded, not dead. With AckMajority the append still succeeds on 2/3.
func TestFanOutRetryExhaustedDoesNotEvict(t *testing.T) {
	l := Layout{N: 3, R: 3}
	fakes := make([]*fakeMember, 3)
	members := make([]Member, 3)
	for i := range fakes {
		fakes[i] = newFakeMember(i, l)
		members[i] = fakes[i]
	}
	flaky := &flakyMember{fakeMember: fakes[1], rejects: 1 << 30}
	members[1] = flaky

	s, err := NewSession(members, SessionConfig{
		Layout:     l,
		Ack:        AckMajority,
		Owner:      func(lid uint64) int { return int((lid - 1) % 3) },
		EvictAfter: 1,
		IsRetryable: func(err error) bool {
			var m interface{ Retryable() bool }
			return errors.As(err, &m) && m.Retryable()
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := s.Append([]*core.Record{{Body: []byte("a")}}); err != nil {
		t.Fatalf("quorum append = %v, want nil (2 of 3 acks)", err)
	}
	if s.fanoutFailures.Value() < 1 {
		t.Fatalf("fanoutFailures = %d, want >= 1 (retry exhausted)", s.fanoutFailures.Value())
	}
	if !s.health.Usable(1) {
		t.Fatal("overloaded member evicted; overload must not count as failure")
	}
}
