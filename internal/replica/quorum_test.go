package replica

import (
	"testing"
	"time"

	"repro/internal/core"
)

// stallMember delays ReplicaAppend (the follower copy path) until released
// — a member whose disk is arbitrarily slow, not down.
type stallMember struct {
	*fakeMember
	release chan struct{}
}

func (s *stallMember) ReplicaAppend(recs []*core.Record) error {
	<-s.release
	return s.fakeMember.ReplicaAppend(recs)
}

func quorumFixture(t *testing.T, quorum bool) (*Session, *stallMember) {
	t.Helper()
	l := Layout{N: 3, R: 3}
	stalled := &stallMember{fakeMember: newFakeMember(2, l), release: make(chan struct{})}
	members := []Member{newFakeMember(0, l), newFakeMember(1, l), stalled}
	s, err := NewSession(members, SessionConfig{
		Layout:       l,
		Ack:          AckMajority,
		Owner:        func(lid uint64) int { return int((lid - 1) % uint64(l.N)) },
		QuorumFanout: quorum,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, stalled
}

// TestQuorumFanoutDetachesStraggler: with QuorumFanout, an append is done
// when a majority stored it — a follower with an arbitrarily slow disk
// does not sit on the append path. The straggler's copy still lands once
// its disk catches up.
func TestQuorumFanoutDetachesStraggler(t *testing.T) {
	s, stalled := quorumFixture(t, true)
	done := make(chan error, 1)
	var lids []uint64
	go func() {
		var err error
		lids, err = s.AppendRange(0, []*core.Record{{TOId: 1, Host: 0, Body: []byte("q")}})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("quorum append: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("quorum append still waiting on the stalled member")
	}
	if len(lids) != 1 {
		t.Fatalf("lids = %v", lids)
	}
	// The detached straggler finishes once the slow disk completes.
	close(stalled.release)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := stalled.fakeMember.Read(lids[0]); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("straggler copy never landed after release")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWaitAllFanoutBlocksOnStraggler: the default (deterministic) mode
// waits for every member — the behavior the seeded fault-replay tests
// depend on — so the same stalled member holds the append.
func TestWaitAllFanoutBlocksOnStraggler(t *testing.T) {
	s, stalled := quorumFixture(t, false)
	done := make(chan error, 1)
	go func() {
		_, err := s.AppendRange(0, []*core.Record{{TOId: 1, Host: 0, Body: []byte("w")}})
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("wait-all append returned (%v) while a member was stalled", err)
	case <-time.After(100 * time.Millisecond):
		// Still blocked on the straggler: expected.
	}
	close(stalled.release)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("append after release: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("append never completed after release")
	}
}

// TestAppendRangePinsRange: AppendRange assigns positions only in the
// named range.
func TestAppendRangePinsRange(t *testing.T) {
	l := Layout{N: 3, R: 2}
	members := []Member{newFakeMember(0, l), newFakeMember(1, l), newFakeMember(2, l)}
	s, err := NewSession(members, SessionConfig{
		Layout: l,
		Ack:    AckAll,
		Owner:  func(lid uint64) int { return int((lid - 1) % uint64(l.N)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		lids, err := s.AppendRange(1, []*core.Record{{TOId: uint64(i + 1), Host: 0, Body: []byte("p")}})
		if err != nil {
			t.Fatal(err)
		}
		if got := int((lids[0] - 1) % uint64(l.N)); got != 1 {
			t.Fatalf("append %d landed in range %d, want 1 (lid %d)", i, got, lids[0])
		}
	}
	if _, err := s.AppendRange(5, []*core.Record{{TOId: 9}}); err == nil {
		t.Fatal("out-of-bounds range accepted")
	}
}
