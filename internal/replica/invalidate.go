package replica

import (
	"fmt"
	"time"
)

// Invalidator is the optional invalidation surface of a Member. A member
// that implements it participates in Hermes-style invalidation
// replication: the acting primary announces each batch's assignment
// (range plus exclusive upper LId bound) ahead of the record payload, so
// every group member knows which positions exist before it holds their
// bytes. Positions that are announced but not yet resolved locally are
// *invalid* — a member must not answer reads for them with "no such
// record"; it blocks briefly for the in-flight payload or tells the
// caller to retry. Members that do not implement Invalidator keep the
// PR-3 failover-only behavior.
type Invalidator interface {
	// Invalidate announces that every position of rangeIdx strictly below
	// upTo has been assigned by the range's acting primary. Idempotent and
	// monotone: stale or duplicate announcements are no-ops.
	Invalidate(rangeIdx int, upTo uint64) error
}

// WatermarkReporter is the optional status surface of an invalidating
// member: the validity watermark (the dense-prefix frontier LId — every
// position below it is resolved and served locally) and the announced
// assignment bound for a hosted range. The span between the two is the
// member's invalidation backlog.
type WatermarkReporter interface {
	ValidityWatermark(rangeIdx int) (watermark, announced uint64, err error)
}

// ReadPolicy orders the members of a replica group for one read. Pick
// returns the member index to try at attempt k (0 ≤ k < l.R) against
// rangeIdx's group; token is drawn once per read, so a policy that
// spreads load still presents a stable failover order within a single
// read. Implementations must be allocation-free and safe for concurrent
// use — Pick sits on the per-RPC read path.
type ReadPolicy interface {
	Pick(l Layout, rangeIdx, k int, token uint64) int
}

// ownerFirst is the PR-3 default: owner, then followers in group order.
type ownerFirst struct{}

func (ownerFirst) Pick(l Layout, rangeIdx, k int, _ uint64) int {
	return (rangeIdx + k) % l.N
}

// OwnerFirst returns the default read policy: the range owner first, then
// the followers in group order. Reads concentrate on owners but never pay
// a watermark wait while the owner is healthy.
func OwnerFirst() ReadPolicy { return ownerFirst{} }

// spreadReads rotates the starting member by a per-read token.
type spreadReads struct{}

func (spreadReads) Pick(l Layout, rangeIdx, k int, token uint64) int {
	return (rangeIdx + (int(token%uint64(l.R))+k)%l.R) % l.N
}

// SpreadReads returns a policy that rotates each read's starting member
// across the whole group, spreading read load over all R valid replicas —
// the policy that converts replication factor into aggregate read
// throughput once invalidations keep followers readable.
func SpreadReads() ReadPolicy { return spreadReads{} }

// nearestFirst serves each range from the cheapest member by a static
// cost function, falling back in ascending-cost order.
type nearestFirst struct {
	order [][]int // order[rangeIdx][k] = member index of the k-th cheapest
}

func (p *nearestFirst) Pick(l Layout, rangeIdx, k int, _ uint64) int {
	return p.order[rangeIdx][k]
}

// NearestFirst returns a proximity policy: for each range, group members
// sorted by cost(member) ascending (ties broken in group order, so the
// owner wins ties). cost models datacenter distance — a multi-DC
// deployment passes RTT classes and every read lands on the local
// replica unless it is evicted or invalid.
func NearestFirst(l Layout, cost func(member int) int) (ReadPolicy, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if cost == nil {
		return nil, fmt.Errorf("replica: NearestFirst requires a cost function")
	}
	p := &nearestFirst{order: make([][]int, l.N)}
	for r := 0; r < l.N; r++ {
		order := make([]int, l.R)
		for k := range order {
			order[k] = (r + k) % l.N
		}
		// Insertion sort by cost; R is small and stability keeps the
		// owner ahead of equal-cost followers.
		for i := 1; i < len(order); i++ {
			for j := i; j > 0 && cost(order[j]) < cost(order[j-1]); j-- {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}
		p.order[r] = order
	}
	return p, nil
}

// ackRetryHint is the pacing hint attached to under-acked appends: long
// enough for a follower hiccup to clear, short enough that AIMD pacing —
// not this constant — governs sustained backoff.
const ackRetryHint = 2 * time.Millisecond

// AckError is the typed form of ErrInsufficientAcks: the append's records
// are durably assigned at the acting primary, but fewer members than the
// ack policy requires confirmed copies. It unwraps to ErrInsufficientAcks
// for errors.Is, self-classifies as retryable, and carries a pacing hint
// so client retry loops (flstore.RetryAfter, PR-5 AIMD pacing) back off
// instead of hammering a degraded group.
type AckError struct {
	Acked, Required int
	Range           int
	RetryAfter      time.Duration
}

func (e *AckError) Error() string {
	return fmt.Sprintf("%v: %d of %d (range %d)", ErrInsufficientAcks, e.Acked, e.Required, e.Range)
}

func (e *AckError) Unwrap() error { return ErrInsufficientAcks }

// Retryable marks the error transient: the records exist, a retry is an
// idempotent re-replication attempt.
func (e *AckError) Retryable() bool { return true }

// RetryAfterHint returns the suggested pause before retrying.
func (e *AckError) RetryAfterHint() time.Duration { return e.RetryAfter }
