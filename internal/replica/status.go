package replica

// Status types describe a deployment's replica groups for operator
// tooling (`logctl replicas`). They are assembled server-side — the
// controller process polls each maintainer's RangeFrontier and reports
// reachability — and shipped as JSON over the controller RPC, like the
// stats snapshot.

// MemberStatus is one maintainer's standing within one replica group.
type MemberStatus struct {
	Member int `json:"member"`
	// Role is "primary" for the range owner, "follower" otherwise.
	Role string `json:"role"`
	// Healthy reports whether the status poll reached the member.
	Healthy bool `json:"healthy"`
	// Frontier is the member's next-unfilled LId for the group's range
	// (0 when unreachable).
	Frontier uint64 `json:"frontier"`
	// LagLIds is how many of the range's positions the member is missing
	// relative to the most advanced group member — the catch-up debt.
	LagLIds uint64 `json:"lag_lids"`
	// ValidWatermark is the member's validity watermark for the range:
	// the dense-prefix frontier LId below which every position is
	// resolved locally and served without an owner round trip.
	ValidWatermark uint64 `json:"valid_watermark"`
	// InvalBacklog is how many of the range's positions the member knows
	// are assigned (announced by invalidation or gossip) but has not yet
	// resolved — reads there block or fail over until the payload lands.
	InvalBacklog uint64 `json:"inval_backlog"`
	// DurableWatermark is the highest LId of the range the member knows
	// fsynced to stable storage locally (next-unfilled form, like
	// Frontier); 0 when the member's store is volatile or the probe is
	// unsupported. The span between it and Frontier is the group-commit
	// window in flight.
	DurableWatermark uint64 `json:"durable_watermark"`
}

// GroupStatus is one range's replica group.
type GroupStatus struct {
	Range   int            `json:"range"`
	Members []MemberStatus `json:"members"`
}

// ClusterStatus is the whole deployment's replication standing.
type ClusterStatus struct {
	Replication int           `json:"replication"`
	Ack         string        `json:"ack"`
	Groups      []GroupStatus `json:"groups"`
}
