package replica

import (
	"reflect"
	"testing"
)

func TestLayoutValidate(t *testing.T) {
	cases := []struct {
		l  Layout
		ok bool
	}{
		{Layout{N: 3, R: 1}, true},
		{Layout{N: 3, R: 3}, true},
		{Layout{N: 1, R: 1}, true},
		{Layout{N: 3, R: 4}, false},
		{Layout{N: 0, R: 1}, false},
		{Layout{N: 3, R: 0}, false},
	}
	for _, c := range cases {
		if err := c.l.Validate(); (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.l, err, c.ok)
		}
	}
}

func TestGroupDerivation(t *testing.T) {
	l := Layout{N: 5, R: 3}
	if got := l.Group(0).Members; !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("Group(0) = %v", got)
	}
	if got := l.Group(4).Members; !reflect.DeepEqual(got, []int{4, 0, 1}) {
		t.Errorf("Group(4) = %v (want wrap)", got)
	}
	// Hosts is the inverse: m hosts exactly the ranges whose groups
	// contain m.
	for m := 0; m < l.N; m++ {
		hosts := l.Hosts(m)
		if len(hosts) != l.R {
			t.Fatalf("Hosts(%d) = %v, want %d entries", m, hosts, l.R)
		}
		if hosts[0] != m {
			t.Errorf("Hosts(%d)[0] = %d, want own range first", m, hosts[0])
		}
		for _, r := range hosts {
			found := false
			for _, gm := range l.Group(r).Members {
				if gm == m {
					found = true
				}
			}
			if !found {
				t.Errorf("Hosts(%d) contains %d but Group(%d) lacks %d", m, r, r, m)
			}
			if !l.Replicas(m, r) {
				t.Errorf("Replicas(%d, %d) = false, want true", m, r)
			}
		}
	}
	if l.Replicas(0, 1) {
		t.Error("Replicas(0, 1) = true; member 0 does not follow range 1 under R=3,N=5")
	}
}

func TestGroupR1Degenerate(t *testing.T) {
	l := Layout{N: 4, R: 1}
	for i := 0; i < 4; i++ {
		if got := l.Group(i).Members; !reflect.DeepEqual(got, []int{i}) {
			t.Errorf("Group(%d) = %v under R=1", i, got)
		}
	}
}

func TestAckPolicyRequired(t *testing.T) {
	cases := []struct {
		p    AckPolicy
		r    int
		want int
	}{
		{AckOne, 3, 1},
		{AckMajority, 3, 2},
		{AckMajority, 5, 3},
		{AckMajority, 1, 1},
		{AckAll, 3, 3},
	}
	for _, c := range cases {
		if got := c.p.Required(c.r); got != c.want {
			t.Errorf("%v.Required(%d) = %d, want %d", c.p, c.r, got, c.want)
		}
	}
}

func TestParseAckPolicy(t *testing.T) {
	for _, s := range []string{"one", "majority", "all", "Quorum", " ALL "} {
		if _, err := ParseAckPolicy(s); err != nil {
			t.Errorf("ParseAckPolicy(%q): %v", s, err)
		}
	}
	if _, err := ParseAckPolicy("paxos"); err == nil {
		t.Error("ParseAckPolicy(paxos) succeeded")
	}
	p, _ := ParseAckPolicy("majority")
	if p.String() != "majority" {
		t.Errorf("round trip = %q", p.String())
	}
}

func TestHealthTransitions(t *testing.T) {
	h := NewHealth(2, 3)
	if h.State(0) != Healthy {
		t.Fatal("initial state not healthy")
	}
	h.ReportFailure(0)
	if h.State(0) != Suspect {
		t.Fatalf("after 1 failure = %v, want suspect", h.State(0))
	}
	h.ReportOK(0)
	if h.State(0) != Healthy {
		t.Fatal("success did not restore healthy")
	}
	// Three consecutive failures evict.
	for i := 0; i < 3; i++ {
		h.ReportFailure(0)
	}
	if h.State(0) != Evicted {
		t.Fatalf("after 3 failures = %v, want evicted", h.State(0))
	}
	if h.Evictions.Value() != 1 {
		t.Errorf("evictions = %d", h.Evictions.Value())
	}
	// Eviction is sticky under plain successes.
	h.ReportOK(0)
	if h.State(0) != Evicted {
		t.Fatal("ReportOK readmitted an evicted member")
	}
	if h.Usable(0) {
		t.Fatal("evicted member reported usable")
	}
	h.Readmit(0)
	if h.State(0) != Healthy || h.Readmissions.Value() != 1 {
		t.Fatalf("readmit: state=%v readmissions=%d", h.State(0), h.Readmissions.Value())
	}
	// Readmit of a healthy member is a no-op.
	h.Readmit(1)
	if h.Readmissions.Value() != 1 {
		t.Error("Readmit of healthy member counted")
	}
	snap := h.Snapshot()
	if len(snap) != 2 || snap[0] != Healthy {
		t.Errorf("snapshot = %v", snap)
	}
}
