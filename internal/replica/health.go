package replica

import (
	"sync"

	"repro/internal/metrics"
)

// State is a replica member's health as seen by one session.
type State int

const (
	// Healthy members serve reads and receive write fan-out.
	Healthy State = iota
	// Suspect members have failed recently (timeout or transport error)
	// but not often enough to evict; they still receive traffic, and a
	// single success restores them to Healthy.
	Suspect
	// Evicted members have failed EvictAfter consecutive times. They
	// receive no traffic and do not count toward ack quorums until they
	// are re-admitted (after catch-up), so a dead maintainer cannot pin
	// the head of the log or stall appends.
	Evicted
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Evicted:
		return "evicted"
	}
	return "unknown"
}

// Health tracks per-member failure state for a replica session: suspect on
// the first failure, evict after EvictAfter consecutive failures, restore
// on success. Eviction is sticky — an evicted member rejoins only through
// Readmit, which callers invoke after the catch-up protocol has refilled
// the member's missing ranges (a freshly restarted maintainer answering
// RPCs again is reachable but not yet safe to read from).
type Health struct {
	mu         sync.Mutex
	states     []State
	fails      []int
	evictAfter int

	// Evictions and Readmissions count state transitions (exported for
	// metrics and experiment instrumentation).
	Evictions    metrics.Counter
	Readmissions metrics.Counter
}

// NewHealth tracks n members, evicting after evictAfter consecutive
// failures (<= 0 uses 3).
func NewHealth(n, evictAfter int) *Health {
	if evictAfter <= 0 {
		evictAfter = 3
	}
	return &Health{
		states:     make([]State, n),
		fails:      make([]int, n),
		evictAfter: evictAfter,
	}
}

// ReportOK records a successful call to member i. Healthy/Suspect members
// return to Healthy; Evicted members stay evicted (see Readmit).
func (h *Health) ReportOK(i int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.states[i] == Evicted {
		return
	}
	h.states[i] = Healthy
	h.fails[i] = 0
}

// ReportFailure records a failed call to member i and returns the
// resulting state.
func (h *Health) ReportFailure(i int) State {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.states[i] == Evicted {
		return Evicted
	}
	h.fails[i]++
	if h.fails[i] >= h.evictAfter {
		h.states[i] = Evicted
		h.Evictions.Inc()
	} else {
		h.states[i] = Suspect
	}
	return h.states[i]
}

// Readmit restores an evicted member to Healthy. Call it once the member
// is reachable again and its hosted ranges have been caught up.
func (h *Health) Readmit(i int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.states[i] != Evicted {
		return
	}
	h.states[i] = Healthy
	h.fails[i] = 0
	h.Readmissions.Inc()
}

// State returns member i's current state.
func (h *Health) State(i int) State {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.states[i]
}

// Usable reports whether member i should receive traffic.
func (h *Health) Usable(i int) bool {
	return h.State(i) != Evicted
}

// Snapshot returns a copy of every member's state.
func (h *Health) Snapshot() []State {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]State, len(h.states))
	copy(out, h.states)
	return out
}
