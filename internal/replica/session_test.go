package replica

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
)

// fakeMember is a deterministic in-memory Member for session unit tests:
// it mimics the maintainer's per-range dense slot assignment over a
// round-robin placement of batch size 1 (range i owns LIds i+1, i+1+N, …).
type fakeMember struct {
	mu     sync.Mutex
	idx    int
	layout Layout
	// frontier[r] = slots filled for range r.
	frontier map[int]uint64
	recs     map[uint64]*core.Record
	down     bool
	calls    int
}

func newFakeMember(idx int, l Layout) *fakeMember {
	f := &fakeMember{idx: idx, layout: l, frontier: map[int]uint64{}, recs: map[uint64]*core.Record{}}
	for _, r := range l.Hosts(idx) {
		f.frontier[r] = 0
	}
	return f
}

// lidOfSlot mirrors Placement.LIdOfSlot with BatchSize 1.
func (f *fakeMember) lidOfSlot(r int, slot uint64) uint64 {
	return slot*uint64(f.layout.N) + uint64(r) + 1
}

var errDown = errors.New("fake: member down")

func (f *fakeMember) gate() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.down {
		return errDown
	}
	return nil
}

func (f *fakeMember) Append(recs []*core.Record) ([]uint64, error) {
	return f.AppendFor(f.idx, recs)
}

func (f *fakeMember) AppendFor(rangeIdx int, recs []*core.Record) ([]uint64, error) {
	if err := f.gate(); err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.frontier[rangeIdx]; !ok {
		return nil, fmt.Errorf("fake: member %d does not host range %d", f.idx, rangeIdx)
	}
	lids := make([]uint64, len(recs))
	for i, r := range recs {
		lid := f.lidOfSlot(rangeIdx, f.frontier[rangeIdx])
		f.frontier[rangeIdx]++
		r.LId = lid
		f.recs[lid] = r
		lids[i] = lid
	}
	return lids, nil
}

func (f *fakeMember) ReplicaAppend(recs []*core.Record) error {
	if err := f.gate(); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, r := range recs {
		rangeIdx := int((r.LId - 1) % uint64(f.layout.N))
		if _, ok := f.frontier[rangeIdx]; !ok {
			return fmt.Errorf("fake: member %d does not host range %d", f.idx, rangeIdx)
		}
		if _, dup := f.recs[r.LId]; dup {
			continue
		}
		f.recs[r.LId] = r
		if want := f.lidOfSlot(rangeIdx, f.frontier[rangeIdx]); r.LId == want {
			f.frontier[rangeIdx]++
			// Drain any buffered successors (fakes receive in order, so
			// a simple forward walk suffices).
			for {
				next := f.lidOfSlot(rangeIdx, f.frontier[rangeIdx])
				if _, ok := f.recs[next]; !ok {
					break
				}
				f.frontier[rangeIdx]++
			}
		}
	}
	return nil
}

func (f *fakeMember) Read(lid uint64) (*core.Record, error) {
	if err := f.gate(); err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	r, ok := f.recs[lid]
	if !ok {
		return nil, core.ErrNoSuchRecord
	}
	return r, nil
}

func (f *fakeMember) RangeFrontier(rangeIdx int) (uint64, error) {
	if err := f.gate(); err != nil {
		return 0, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	slots, ok := f.frontier[rangeIdx]
	if !ok {
		return 0, fmt.Errorf("fake: member %d does not host range %d", f.idx, rangeIdx)
	}
	return f.lidOfSlot(rangeIdx, slots), nil
}

func (f *fakeMember) PullRange(rangeIdx int, fromLId uint64, limit int) ([]*core.Record, error) {
	if err := f.gate(); err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var lids []uint64
	for lid := range f.recs {
		if int((lid-1)%uint64(f.layout.N)) == rangeIdx && lid >= fromLId {
			lids = append(lids, lid)
		}
	}
	sort.Slice(lids, func(i, j int) bool { return lids[i] < lids[j] })
	if limit > 0 && len(lids) > limit {
		lids = lids[:limit]
	}
	out := make([]*core.Record, len(lids))
	for i, lid := range lids {
		out[i] = f.recs[lid]
	}
	return out, nil
}

func (f *fakeMember) setDown(d bool) {
	f.mu.Lock()
	f.down = d
	f.mu.Unlock()
}

func buildSession(t *testing.T, n, r int, ack AckPolicy, evictAfter int) (*Session, []*fakeMember) {
	t.Helper()
	l := Layout{N: n, R: r}
	fakes := make([]*fakeMember, n)
	members := make([]Member, n)
	for i := range fakes {
		fakes[i] = newFakeMember(i, l)
		members[i] = fakes[i]
	}
	s, err := NewSession(members, SessionConfig{
		Layout:     l,
		Ack:        ack,
		Owner:      func(lid uint64) int { return int((lid - 1) % uint64(n)) },
		EvictAfter: evictAfter,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, fakes
}

func TestSessionAppendReplicatesToGroup(t *testing.T) {
	s, fakes := buildSession(t, 3, 3, AckAll, 2)
	lids, err := s.Append([]*core.Record{{Body: []byte("a")}, {Body: []byte("b")}})
	if err != nil {
		t.Fatal(err)
	}
	if len(lids) != 2 {
		t.Fatalf("lids = %v", lids)
	}
	// Every member of the owning group holds both records.
	for _, lid := range lids {
		for _, f := range fakes {
			if _, ok := f.recs[lid]; !ok {
				t.Errorf("member %d missing lid %d", f.idx, lid)
			}
		}
	}
}

func TestSessionAckMajoritySurvivesOneDown(t *testing.T) {
	s, fakes := buildSession(t, 3, 3, AckMajority, 2)
	fakes[1].setDown(true)
	// Appends keep succeeding: ranges 0 and 2 have live primaries, and
	// when round-robin lands on range 1 the session fails over to its
	// next group member.
	for i := 0; i < 12; i++ {
		if _, err := s.Append([]*core.Record{{Body: []byte("x")}}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if st := s.Health().State(1); st != Evicted {
		t.Fatalf("member 1 state = %v, want evicted", st)
	}
	// Range 1's acting primary is member 2 (group [1 2 0]).
	ap, ok := s.ActingPrimary(1)
	if !ok || ap != 2 {
		t.Fatalf("ActingPrimary(1) = %d,%v, want 2,true", ap, ok)
	}
	if s.appendFailovers.Value() == 0 {
		t.Error("no append failovers recorded")
	}
}

func TestSessionAckAllFailsWithMemberDown(t *testing.T) {
	s, fakes := buildSession(t, 3, 3, AckOne, 2)
	_ = fakes
	// Sanity under AckOne first: one down member doesn't matter.
	fakes[2].setDown(true)
	if _, err := s.Append([]*core.Record{{Body: []byte("x")}}); err != nil {
		t.Fatalf("ack-one append with a down member: %v", err)
	}

	s2, fakes2 := buildSession(t, 3, 3, AckAll, 10)
	fakes2[2].setDown(true)
	// Member 2 is down but not yet evicted (high threshold): the fan-out
	// misses it and ack-all cannot be satisfied.
	_, err := s2.Append([]*core.Record{{Body: []byte("x")}})
	if !errors.Is(err, ErrInsufficientAcks) {
		t.Fatalf("ack-all append = %v, want ErrInsufficientAcks", err)
	}
}

func TestSessionReadFailsOver(t *testing.T) {
	s, fakes := buildSession(t, 3, 2, AckAll, 2)
	lids, err := s.Append([]*core.Record{{Body: []byte("payload")}})
	if err != nil {
		t.Fatal(err)
	}
	lid := lids[0]
	owner := int((lid - 1) % 3)
	fakes[owner].setDown(true)
	rec, err := s.Read(lid)
	if err != nil {
		t.Fatalf("failover read: %v", err)
	}
	if string(rec.Body) != "payload" {
		t.Errorf("body = %q", rec.Body)
	}
	if s.readFailovers.Value() != 1 {
		t.Errorf("read failovers = %d, want 1", s.readFailovers.Value())
	}
	// A missing record is a logic error from the freshest member, but the
	// session keeps trying followers before giving up; with all up it
	// surfaces ErrNoSuchRecord.
	fakes[owner].setDown(false)
	if _, err := s.Read(999_999); !errors.Is(err, core.ErrNoSuchRecord) {
		t.Errorf("read of absent lid = %v", err)
	}
}

func TestSessionFrontiersComputedOverGroups(t *testing.T) {
	s, fakes := buildSession(t, 3, 3, AckMajority, 1)
	for i := 0; i < 9; i++ {
		if _, err := s.Append([]*core.Record{{Body: []byte("x")}}); err != nil {
			t.Fatal(err)
		}
	}
	before, err := s.Frontiers()
	if err != nil {
		t.Fatal(err)
	}
	// Kill member 0: the group max for range 0 must still be reported by
	// its followers.
	fakes[0].setDown(true)
	s.Health().ReportFailure(0) // evict (threshold 1)
	after, err := s.Frontiers()
	if err != nil {
		t.Fatal(err)
	}
	for r := range before {
		if after[r] < before[r] {
			t.Errorf("range %d frontier regressed: %d -> %d", r, before[r], after[r])
		}
	}
}

func TestSessionCatchUpAndRejoin(t *testing.T) {
	s, fakes := buildSession(t, 3, 3, AckMajority, 1)
	appendN := func(n int) {
		for i := 0; i < n; i++ {
			if _, err := s.Append([]*core.Record{{Body: []byte(fmt.Sprintf("r%d", i))}}); err != nil {
				t.Fatal(err)
			}
		}
	}
	appendN(6)
	// Member 1 dies; appends continue without it.
	fakes[1].setDown(true)
	s.Health().ReportFailure(1)
	appendN(9)
	missing := len(fakes[0].recs) - len(fakes[1].recs)
	if missing <= 0 {
		t.Fatalf("member 1 unexpectedly kept up (missing=%d)", missing)
	}
	// Restart: reachable again, then rejoin = catch-up + readmit.
	fakes[1].setDown(false)
	n, err := s.Rejoin(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if n != missing {
		t.Errorf("catch-up transferred %d records, want %d", n, missing)
	}
	if s.Health().State(1) != Healthy {
		t.Error("member 1 not readmitted")
	}
	// Every record the group holds is now at member 1 too (it hosts all
	// ranges under R=3).
	if len(fakes[1].recs) != len(fakes[0].recs) {
		t.Errorf("member 1 has %d records, member 0 has %d", len(fakes[1].recs), len(fakes[0].recs))
	}
	if s.catchupRecords.Value() != uint64(missing) {
		t.Errorf("catchup counter = %d, want %d", s.catchupRecords.Value(), missing)
	}
}

func TestSessionNoUsableGroup(t *testing.T) {
	s, fakes := buildSession(t, 2, 1, AckOne, 1)
	for _, f := range fakes {
		f.setDown(true)
	}
	s.Health().ReportFailure(0)
	s.Health().ReportFailure(1)
	if _, err := s.Append([]*core.Record{{Body: []byte("x")}}); !errors.Is(err, ErrNoUsableGroup) {
		t.Fatalf("append with all evicted = %v, want ErrNoUsableGroup", err)
	}
	if _, err := s.Read(1); !errors.Is(err, ErrNoUsableGroup) {
		t.Fatalf("read with all evicted = %v, want ErrNoUsableGroup", err)
	}
}
