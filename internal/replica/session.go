package replica

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// ErrInsufficientAcks is returned when an append reached the acting
// primary but too few group members acknowledged the copy to satisfy the
// ack policy. The records exist in the log (position assignment is not
// undone); the caller may retry idempotently via AppendAssigned semantics
// or surface the degraded durability.
var ErrInsufficientAcks = errors.New("replica: insufficient acks")

// ErrNoUsableGroup is returned when no range has a usable acting primary.
var ErrNoUsableGroup = errors.New("replica: no usable replica group")

// Member is the surface a replica session needs from one maintainer. It is
// implemented by *flstore.Maintainer in process and by flstore's RPC
// maintainer client across machines.
type Member interface {
	// Append post-assigns positions in the member's own range (§5.2).
	Append(recs []*core.Record) ([]uint64, error)
	// AppendFor post-assigns positions in another hosted range — the
	// failover path an acting primary uses while the range owner is down.
	AppendFor(rangeIdx int, recs []*core.Record) ([]uint64, error)
	// ReplicaAppend ingests copies of records whose LIds were assigned by
	// the range's acting primary; the member derives the range from each
	// record's LId. Idempotent per LId at the dense-frontier level.
	ReplicaAppend(recs []*core.Record) error
	// Read serves any hosted position (owned or followed).
	Read(lid uint64) (*core.Record, error)
	// RangeFrontier returns the next-unfilled LId of a hosted range as
	// known locally (for followers: the replicated frontier).
	RangeFrontier(rangeIdx int) (uint64, error)
	// PullRange streams up to limit stored records of rangeIdx with
	// LId >= fromLId in ascending LId order — the catch-up feed.
	PullRange(rangeIdx int, fromLId uint64, limit int) ([]*core.Record, error)
}

// SessionConfig configures a replica session.
type SessionConfig struct {
	Layout Layout
	Ack    AckPolicy
	// Owner maps an LId to its range (Placement.Owner).
	Owner func(lid uint64) int
	// EvictAfter is the consecutive-failure threshold (default 3).
	EvictAfter int
	// IsFatal classifies an error as a logic error to propagate (true)
	// rather than a member failure to fail over from (false). nil treats
	// every error as a member failure.
	IsFatal func(error) bool
	// IsRetryable classifies an error as a transient admission rejection
	// (e.g. maintainer overload) worth one paced retry during replica
	// fan-out before the copy is counted as failed. nil disables the
	// retry. A rejection is not a member failure: the member is healthy,
	// just saturated, so it is never reported to the health tracker. On
	// the read side a retryable error (a member blocked on an unresolved
	// invalidation, or saturated) fails over to the next member without a
	// health penalty.
	IsRetryable func(error) bool
	// ReadPolicy orders group members for reads (nil = OwnerFirst).
	ReadPolicy ReadPolicy
	// QuorumFanout, when true, lets Append return as soon as the ack
	// policy is satisfied instead of waiting for every group member's
	// copy: the remaining fan-out goroutines detach and finish in the
	// background (still reporting health and counters). This decouples
	// append latency from the slowest member's disk — a degraded follower
	// stops sitting on the p99 — at the cost of a possibly-undercounted
	// ack total and less deterministic failure sequencing, which is why
	// the seeded fault-replay harnesses leave it off (the default).
	QuorumFanout bool
}

// Session is the replication layer clients drive: it routes appends to an
// acting primary per range, fans copies out to the rest of the group under
// the configured ack policy, fails reads over across the group, and tracks
// per-member health. It is safe for concurrent use.
type Session struct {
	cfg    SessionConfig
	health *Health

	mu      sync.RWMutex
	members []Member
	policy  ReadPolicy // guarded by mu; never nil

	rr        atomic.Uint64 // round-robin range cursor for appends
	readToken atomic.Uint64 // per-read draw for load-spreading policies
	quorum    atomic.Bool   // QuorumFanout, toggleable after construction

	// Counters are always maintained; EnableMetrics additionally exports
	// them (plus the ack-latency histogram) to a registry.
	appends         metrics.Counter
	appendFailovers metrics.Counter
	readFailovers   metrics.Counter
	fanoutFailures  metrics.Counter
	fanoutRetries   metrics.Counter
	catchupRecords  metrics.Counter
	invalidations   metrics.Counter
	ackLatency      *metrics.BucketHistogram
}

// NewSession builds a session over index-aligned members.
func NewSession(members []Member, cfg SessionConfig) (*Session, error) {
	if err := cfg.Layout.Validate(); err != nil {
		return nil, err
	}
	if len(members) != cfg.Layout.N {
		return nil, fmt.Errorf("replica: %d members for layout of %d", len(members), cfg.Layout.N)
	}
	if cfg.Owner == nil {
		return nil, errors.New("replica: SessionConfig.Owner is required")
	}
	ms := make([]Member, len(members))
	copy(ms, members)
	pol := cfg.ReadPolicy
	if pol == nil {
		pol = OwnerFirst()
	}
	s := &Session{
		cfg:     cfg,
		health:  NewHealth(cfg.Layout.N, cfg.EvictAfter),
		members: ms,
		policy:  pol,
	}
	s.quorum.Store(cfg.QuorumFanout)
	return s, nil
}

// SetQuorumFanout toggles quorum-return fan-out (see
// SessionConfig.QuorumFanout) after construction — the hook clients use to
// enable it without plumbing a new constructor. Safe to call concurrently
// with appends; in-flight fan-outs pick the mode up on their next wait.
func (s *Session) SetQuorumFanout(v bool) { s.quorum.Store(v) }

// QuorumFanout reports whether quorum-return fan-out is enabled.
func (s *Session) QuorumFanout() bool { return s.quorum.Load() }

// SetReadPolicy swaps the policy ordering group members for reads.
// Intended for configuration before the session sees traffic; concurrent
// reads pick up the new policy on their next attempt sequence.
func (s *Session) SetReadPolicy(p ReadPolicy) {
	if p == nil {
		p = OwnerFirst()
	}
	s.mu.Lock()
	s.policy = p
	s.mu.Unlock()
}

// ReadPolicy returns the active read policy.
func (s *Session) ReadPolicy() ReadPolicy {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.policy
}

// Invalidations returns how many invalidation announcements the session
// has delivered ahead of fan-out payloads.
func (s *Session) Invalidations() uint64 { return s.invalidations.Value() }

// EnableMetrics exports the session's replication instrumentation: append
// ack latency (observed per successful quorum), append/read failovers,
// fan-out copy failures, catch-up volume, eviction/readmission totals, and
// a per-member health-state gauge (0 healthy, 1 suspect, 2 evicted).
func (s *Session) EnableMetrics(reg *metrics.Registry, extra ...metrics.Label) {
	lbls := append([]metrics.Label{metrics.L("ack", s.cfg.Ack.String())}, extra...)
	s.ackLatency = reg.Histogram("replica_ack_seconds", metrics.LatencyBuckets, lbls...)
	reg.CounterFunc("replica_appends_total", func() float64 { return float64(s.appends.Value()) }, extra...)
	reg.CounterFunc("replica_append_failovers_total", func() float64 { return float64(s.appendFailovers.Value()) }, extra...)
	reg.CounterFunc("replica_read_failovers_total", func() float64 { return float64(s.readFailovers.Value()) }, extra...)
	reg.CounterFunc("replica_fanout_failures_total", func() float64 { return float64(s.fanoutFailures.Value()) }, extra...)
	reg.CounterFunc("replica_fanout_retries_total", func() float64 { return float64(s.fanoutRetries.Value()) }, extra...)
	reg.CounterFunc("replica_invalidations_total", func() float64 { return float64(s.invalidations.Value()) }, extra...)
	reg.CounterFunc("replica_catchup_records_total", func() float64 { return float64(s.catchupRecords.Value()) }, extra...)
	reg.CounterFunc("replica_evictions_total", func() float64 { return float64(s.health.Evictions.Value()) }, extra...)
	reg.CounterFunc("replica_readmissions_total", func() float64 { return float64(s.health.Readmissions.Value()) }, extra...)
	for i := 0; i < s.cfg.Layout.N; i++ {
		i := i
		reg.GaugeFunc("replica_member_state", func() float64 { return float64(s.health.State(i)) },
			append([]metrics.Label{metrics.L("member", fmt.Sprint(i))}, extra...)...)
	}
}

// Health exposes the session's member-health tracker.
func (s *Session) Health() *Health { return s.health }

// Layout returns the session's replica layout.
func (s *Session) Layout() Layout { return s.cfg.Layout }

// Member returns the current handle for member i.
func (s *Session) Member(i int) Member {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.members[i]
}

// SetMember replaces the handle for member i — the rewiring a client does
// after a maintainer restarts on a fresh connection.
func (s *Session) SetMember(i int, m Member) {
	s.mu.Lock()
	s.members[i] = m
	s.mu.Unlock()
}

// fatal reports whether err should propagate rather than trigger failover.
func (s *Session) fatal(err error) bool {
	return s.cfg.IsFatal != nil && s.cfg.IsFatal(err)
}

// retryable reports whether err is a transient admission rejection.
func (s *Session) retryable(err error) bool {
	return s.cfg.IsRetryable != nil && s.cfg.IsRetryable(err)
}

// retryAfterHinter matches errors carrying a server pacing hint (flstore's
// OverloadError locally, rpc.RemoteError across the wire) without this
// package importing either.
type retryAfterHinter interface {
	RetryAfterHint() time.Duration
}

// maxFanoutRetryWait caps how long a fan-out goroutine honors a saturated
// follower's hint — fan-out is synchronous with the append, so an
// excessive hint must not stall the quorum wait.
const maxFanoutRetryWait = 100 * time.Millisecond

// fanoutRetryDelay converts a rejection into the pause before the single
// fan-out retry.
func fanoutRetryDelay(err error) time.Duration {
	d := time.Millisecond
	var h retryAfterHinter
	if errors.As(err, &h) {
		if hint := h.RetryAfterHint(); hint > d {
			d = hint
		}
	}
	if d > maxFanoutRetryWait {
		d = maxFanoutRetryWait
	}
	return d
}

// ActingPrimary returns the member currently responsible for assigning
// positions in rangeIdx: the first non-evicted member of its group.
func (s *Session) ActingPrimary(rangeIdx int) (int, bool) {
	g := s.cfg.Layout.Group(rangeIdx)
	for _, m := range g.Members {
		if s.health.Usable(m) {
			return m, true
		}
	}
	return 0, false
}

// Append replicates one batch: it picks a range round-robin among ranges
// with a usable acting primary, has the acting primary assign positions
// and persist, fans copies out to the rest of the group, and returns once
// the ack policy is satisfied. A failed primary is reported to the health
// tracker and the append retargets — appends keep succeeding as long as
// any range has a usable group.
func (s *Session) Append(recs []*core.Record) ([]uint64, error) {
	if len(recs) == 0 {
		return nil, nil
	}
	start := time.Now()
	tc := batchCtx(recs)
	n := s.cfg.Layout.N
	// Up to N ranges × R members worth of retargets before giving up: a
	// kill mid-append costs a few failed calls, never a failed append.
	var lastErr error
	attempts := n * s.cfg.Layout.R
	rangeIdx := int(s.rr.Add(1)-1) % n
	for a := 0; a < attempts; a++ {
		lids, err, retarget := s.appendAttempt(rangeIdx, recs, start, tc)
		if !retarget {
			return lids, err
		}
		if err != nil {
			// Primary failed: same range first (the next member in its
			// group becomes acting primary); once the whole group is
			// evicted the ActingPrimary miss advances the range.
			lastErr = err
			continue
		}
		rangeIdx = (rangeIdx + 1) % n
	}
	if lastErr != nil {
		return nil, fmt.Errorf("%w: last error: %v", ErrNoUsableGroup, lastErr)
	}
	return nil, ErrNoUsableGroup
}

// AppendRange replicates one batch into a specific range's group, with the
// same acting-primary failover, fan-out, and ack semantics as Append but
// no cross-range retargeting. Range-pinned workloads (and the durability
// experiment, which needs appends that avoid a deliberately degraded
// primary) use it; most clients want Append.
func (s *Session) AppendRange(rangeIdx int, recs []*core.Record) ([]uint64, error) {
	if len(recs) == 0 {
		return nil, nil
	}
	if rangeIdx < 0 || rangeIdx >= s.cfg.Layout.N {
		return nil, fmt.Errorf("replica: range %d out of [0,%d)", rangeIdx, s.cfg.Layout.N)
	}
	start := time.Now()
	tc := batchCtx(recs)
	var lastErr error
	for a := 0; a < s.cfg.Layout.R; a++ {
		lids, err, retarget := s.appendAttempt(rangeIdx, recs, start, tc)
		if !retarget {
			return lids, err
		}
		if err != nil {
			lastErr = err
			continue
		}
		break // no usable acting primary in this group; retargeting is the caller's call
	}
	if lastErr != nil {
		return nil, fmt.Errorf("%w: last error: %v", ErrNoUsableGroup, lastErr)
	}
	return nil, fmt.Errorf("%w: range %d", ErrNoUsableGroup, rangeIdx)
}

// appendAttempt runs one acting-primary append plus fan-out against
// rangeIdx. retarget reports that the attempt failed in a way the caller
// should respond to by retrying (same range on a primary failure — err is
// set — or another range on an ActingPrimary miss — err is nil).
func (s *Session) appendAttempt(rangeIdx int, recs []*core.Record, start time.Time, tc trace.Ctx) (lids []uint64, err error, retarget bool) {
	ap, ok := s.ActingPrimary(rangeIdx)
	if !ok {
		return nil, nil, true
	}
	lids, err = s.primaryAppend(ap, rangeIdx, recs)
	if err != nil {
		if s.fatal(err) {
			return nil, err, false
		}
		s.health.ReportFailure(ap)
		s.appendFailovers.Inc()
		return nil, err, true
	}
	s.health.ReportOK(ap)
	// The ack span covers the synchronous fan-out wait — the replication
	// cost a client-visible append pays beyond the primary's assignment
	// and store.
	fo := trace.Begin(tc, "replica.ack")
	acks := 1 + s.fanOut(rangeIdx, ap, lids[len(lids)-1]+1, recs)
	if acks < s.cfg.Ack.Required(s.cfg.Layout.R) {
		fo.End(trace.Default(), "acks", lids[0], len(recs))
		return lids, &AckError{Acked: acks, Required: s.cfg.Ack.Required(s.cfg.Layout.R),
			Range: rangeIdx, RetryAfter: ackRetryHint}, false
	}
	fo.End(trace.Default(), "", lids[0], len(recs))
	s.appends.Inc()
	if h := s.ackLatency; h != nil {
		h.ObserveSinceEx(start, uint64(tc.T))
	}
	return lids, nil, false
}

// batchCtx returns the first sampled record's trace context (the zero
// Ctx for an untraced batch) — one flag test per record, no allocation.
// A batch shares its pipeline cost, so one context stands for all.
func batchCtx(recs []*core.Record) trace.Ctx {
	for _, r := range recs {
		if r.Trace.Sampled() {
			return r.Trace
		}
	}
	return trace.Ctx{}
}

// primaryAppend routes the position-assigning append to member ap for
// rangeIdx, using the owner fast path when ap is the range owner.
func (s *Session) primaryAppend(ap, rangeIdx int, recs []*core.Record) ([]uint64, error) {
	m := s.Member(ap)
	if ap == rangeIdx {
		return m.Append(recs)
	}
	return m.AppendFor(rangeIdx, recs)
}

// fanOut sends copies to every usable group member except the acting
// primary and returns how many succeeded. By default fan-out waits for all
// members (R is small), which keeps failure sequences deterministic under
// a seeded fault schedule and reports precise ack counts; with
// QuorumFanout it returns as soon as enough copies landed to satisfy the
// ack policy, leaving stragglers to finish detached — an ack from a member
// means the copy is *stored* there (fsynced when the member's store is
// durable), so a quorum return is a durability quorum, not a buffer
// quorum. Members that implement Invalidator first receive the batch's
// assignment announcement (upTo is the exclusive LId bound: one past the
// batch's last assigned position), so a follower knows the positions
// exist — and stops serving stale no-such-record for them — before the
// payload lands.
func (s *Session) fanOut(rangeIdx, actingPrimary int, upTo uint64, recs []*core.Record) int {
	g := s.cfg.Layout.Group(rangeIdx)
	// Buffered to the fan-out width so detached stragglers never block.
	results := make(chan bool, len(g.Members))
	launched := 0
	for _, mi := range g.Members {
		if mi == actingPrimary || !s.health.Usable(mi) {
			continue
		}
		mi := mi
		launched++
		go func() {
			results <- s.fanOutOne(mi, rangeIdx, upTo, recs)
		}()
	}
	// The acting primary's own store counts as the first ack.
	need := s.cfg.Ack.Required(s.cfg.Layout.R) - 1
	acked := 0
	quorum := s.quorum.Load()
	for done := 0; done < launched; done++ {
		if quorum && acked >= need {
			break // quorum reached; stragglers detach
		}
		if <-results {
			acked++
		}
	}
	return acked
}

// fanOutOne delivers the invalidation announcement and the record copies
// to member mi, reporting health and counters; it returns whether the
// member acked (stored) the copy.
func (s *Session) fanOutOne(mi, rangeIdx int, upTo uint64, recs []*core.Record) bool {
	m := s.Member(mi)
	if inv, ok := m.(Invalidator); ok && upTo > 0 {
		// Best-effort: the copy that follows carries the same
		// information; a dropped invalidation only delays local
		// readability, never correctness.
		if err := inv.Invalidate(rangeIdx, upTo); err == nil {
			s.invalidations.Inc()
		}
	}
	err := m.ReplicaAppend(recs)
	if err != nil && s.retryable(err) {
		// A saturated follower rejected the copy; wait out its
		// pacing hint (capped) and try once more before giving the
		// ack up — overload is load, not failure.
		s.fanoutRetries.Inc()
		time.Sleep(fanoutRetryDelay(err))
		err = s.Member(mi).ReplicaAppend(recs)
	}
	if err != nil {
		if !s.fatal(err) && !s.retryable(err) {
			s.health.ReportFailure(mi)
		}
		s.fanoutFailures.Inc()
		return false
	}
	s.health.ReportOK(mi)
	return true
}

// Read returns the record at lid, failing over across the owning group:
// acting-primary order, skipping evicted members. Logic errors (past-head,
// no-such-record from the freshest member) propagate; transport errors
// mark the member and move on.
func (s *Session) Read(lid uint64) (*core.Record, error) {
	var rec *core.Record
	err := s.ReadWith(s.cfg.Owner(lid), func(m Member) error {
		var e error
		rec, e = m.Read(lid)
		return e
	})
	if err != nil {
		return nil, err
	}
	return rec, nil
}

// ReadWith runs a read-side operation against rangeIdx's group with the
// session's failover discipline: members in read-policy order (OwnerFirst
// unless configured otherwise), evicted members skipped, logic errors
// propagated, transport errors reported to the health tracker before
// moving to the next member. Retryable errors — a member blocked on an
// unresolved invalidation, or one shedding load — also fail over, but
// without a health penalty: the member is healthy, just momentarily
// behind or saturated. fn returns its result through its closure. This is
// the hook the batched read path (range reads, tail waits) shares with
// single-record reads.
func (s *Session) ReadWith(rangeIdx int, fn func(m Member) error) error {
	var lastErr error
	tried := 0
	pol := s.ReadPolicy()
	// One token per read: a spreading policy rotates the starting member
	// across reads but keeps the failover order stable within this one.
	token := s.readToken.Add(1)
	for k := 0; k < s.cfg.Layout.R; k++ {
		mi := pol.Pick(s.cfg.Layout, rangeIdx, k, token)
		if !s.health.Usable(mi) {
			continue
		}
		err := fn(s.Member(mi))
		if err == nil {
			s.health.ReportOK(mi)
			if tried > 0 {
				s.readFailovers.Inc()
			}
			return nil
		}
		if s.fatal(err) {
			return err
		}
		if s.retryable(err) {
			lastErr = err
			tried++
			continue
		}
		s.health.ReportFailure(mi)
		lastErr = err
		tried++
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("%w: range %d", ErrNoUsableGroup, rangeIdx)
	}
	return lastErr
}

// Frontiers returns the per-range next-unfilled LIds computed over groups:
// for each range, the maximum frontier any usable group member reports.
// Taking the max makes a dead owner invisible — its group's survivors know
// everything that was acknowledged — which is what lets the head of the
// log keep advancing through a failure.
func (s *Session) Frontiers() ([]uint64, error) {
	n := s.cfg.Layout.N
	out := make([]uint64, n)
	for r := 0; r < n; r++ {
		found := false
		var lastErr error
		// Group membership inline (owner, then the R−1 followers) rather
		// than Layout.Group: Frontiers sits on the head-wait hot path and
		// a per-range members slice is a measurable allocation there.
		for k := 0; k < s.cfg.Layout.R; k++ {
			mi := (r + k) % n
			if !s.health.Usable(mi) {
				continue
			}
			f, err := s.Member(mi).RangeFrontier(r)
			if err != nil {
				if s.fatal(err) {
					return nil, err
				}
				s.health.ReportFailure(mi)
				lastErr = err
				continue
			}
			s.health.ReportOK(mi)
			found = true
			if f > out[r] {
				out[r] = f
			}
		}
		if !found {
			if lastErr == nil {
				lastErr = fmt.Errorf("%w: range %d", ErrNoUsableGroup, r)
			}
			return nil, lastErr
		}
	}
	return out, nil
}
