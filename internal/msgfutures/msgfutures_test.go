package msgfutures

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/chariots"
	"repro/internal/core"
)

func txnCfg(self core.DCID, numDCs int) chariots.Config {
	return chariots.Config{
		Self:           self,
		NumDCs:         numDCs,
		Maintainers:    2,
		PlacementBatch: 4,
		FlushThreshold: 1,
		FlushInterval:  100 * time.Microsecond,
		SendThreshold:  1,
		SendInterval:   100 * time.Microsecond,
		TokenIdleWait:  50 * time.Microsecond,
	}
}

func startManager(t *testing.T, self core.DCID, numDCs int) (*Manager, *chariots.Datacenter) {
	t.Helper()
	dc, err := chariots.New(txnCfg(self, numDCs))
	if err != nil {
		t.Fatal(err)
	}
	dc.Start()
	t.Cleanup(dc.Stop)
	m := NewManager(dc)
	t.Cleanup(m.Stop)
	return m, dc
}

func TestTxnCodecRoundTrip(t *testing.T) {
	txn := TxnRecord{
		Reads:  []string{"a", "b"},
		Writes: []KV{{Key: "x", Value: "1"}, {Key: "y", Value: ""}},
	}
	got, err := decodeTxn(encodeTxn(txn))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, txn) {
		t.Errorf("round trip: %+v != %+v", got, txn)
	}
	empty, err := decodeTxn(encodeTxn(TxnRecord{}))
	if err != nil || empty.Reads != nil || empty.Writes != nil {
		t.Errorf("empty round trip: %+v, %v", empty, err)
	}
	buf := encodeTxn(txn)
	for n := 0; n < len(buf); n++ {
		if _, err := decodeTxn(buf[:n]); err == nil && n < len(buf)-1 {
			// Some prefixes decode to shorter valid records only if
			// counts allow; require an error for clearly-short ones.
			_ = n
		}
	}
}

func TestSingleDCCommit(t *testing.T) {
	m, _ := startManager(t, 0, 1)
	tx := m.Begin()
	if _, ok := tx.Read("balance"); ok {
		t.Error("read of unset key returned a value")
	}
	tx.Write("balance", "100")
	if v, ok := tx.Read("balance"); !ok || v != "100" {
		t.Error("read-own-write failed")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, ok := m.ReadCommitted("balance"); !ok || v != "100" {
		t.Errorf("committed state = %q,%v", v, ok)
	}
	if m.Committed.Value() != 1 {
		t.Errorf("Committed = %d", m.Committed.Value())
	}
}

func TestSequentialTxnsNoConflict(t *testing.T) {
	m, _ := startManager(t, 0, 1)
	for i := 0; i < 10; i++ {
		tx := m.Begin()
		tx.Read("counter")
		tx.Write("counter", fmt.Sprint(i))
		if err := tx.Commit(); err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}
	if v, _ := m.ReadCommitted("counter"); v != "9" {
		t.Errorf("counter = %q, want 9", v)
	}
	if m.Aborted.Value() != 0 {
		t.Errorf("sequential txns aborted: %d", m.Aborted.Value())
	}
}

func TestReadOnlyCommitsImmediately(t *testing.T) {
	m, _ := startManager(t, 0, 1)
	tx := m.Begin()
	tx.Read("anything")
	start := time.Now()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Error("read-only commit was not local")
	}
	if err := tx.Commit(); err == nil {
		t.Error("double commit accepted")
	}
}

func connect(a, b *chariots.Datacenter) {
	a.ConnectTo(b.Self(), b.Receivers())
	b.ConnectTo(a.Self(), a.Receivers())
}

// connectLatent wires two datacenters through latency links so that
// appends issued within the one-way delay are genuinely concurrent.
func connectLatent(t *testing.T, a, b *chariots.Datacenter, oneWay time.Duration) {
	t.Helper()
	wrap := func(rxs []chariots.ReceiverAPI) []chariots.ReceiverAPI {
		out := make([]chariots.ReceiverAPI, len(rxs))
		for i, rx := range rxs {
			l := chariots.NewLatencyLink(rx, oneWay)
			t.Cleanup(l.Close)
			out[i] = l
		}
		return out
	}
	a.ConnectTo(b.Self(), wrap(b.Receivers()))
	b.ConnectTo(a.Self(), wrap(a.Receivers()))
}

func TestTwoDCCommitNoConflict(t *testing.T) {
	mA, dcA := startManager(t, 0, 2)
	mB, dcB := startManager(t, 1, 2)
	connect(dcA, dcB)

	txA := mA.Begin()
	txA.Write("x", "fromA")
	txB := mB.Begin()
	txB.Write("y", "fromB")

	var wg sync.WaitGroup
	var errA, errB error
	wg.Add(2)
	go func() { defer wg.Done(); errA = txA.Commit() }()
	go func() { defer wg.Done(); errB = txB.Commit() }()
	wg.Wait()
	if errA != nil || errB != nil {
		t.Fatalf("disjoint txns failed: %v / %v", errA, errB)
	}
	// Both replicas converge to both writes.
	deadline := time.Now().Add(10 * time.Second)
	for {
		xa, _ := mA.ReadCommitted("x")
		ya, _ := mA.ReadCommitted("y")
		xb, _ := mB.ReadCommitted("x")
		yb, _ := mB.ReadCommitted("y")
		if xa == "fromA" && ya == "fromB" && xb == "fromA" && yb == "fromB" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("states did not converge: A(x=%q y=%q) B(x=%q y=%q)", xa, ya, xb, yb)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTwoDCWriteWriteConflictOneAborts(t *testing.T) {
	mA, dcA := startManager(t, 0, 2)
	mB, dcB := startManager(t, 1, 2)
	// A real WAN delay guarantees the two writes are concurrent: neither
	// datacenter can have seen the other's record when it appends.
	connectLatent(t, dcA, dcB, 10*time.Millisecond)

	// Both write the same key concurrently.
	txA := mA.Begin()
	txA.Write("hot", "A")
	txB := mB.Begin()
	txB.Write("hot", "B")

	var wg sync.WaitGroup
	var errA, errB error
	wg.Add(2)
	go func() { defer wg.Done(); errA = txA.Commit() }()
	go func() { defer wg.Done(); errB = txB.Commit() }()
	wg.Wait()

	aborted := 0
	if errors.Is(errA, ErrAborted) {
		aborted++
	} else if errA != nil {
		t.Fatalf("A: %v", errA)
	}
	if errors.Is(errB, ErrAborted) {
		aborted++
	} else if errB != nil {
		t.Fatalf("B: %v", errB)
	}
	if aborted != 1 {
		t.Fatalf("aborted = %d, want exactly 1 (errA=%v errB=%v)", aborted, errA, errB)
	}
	// Both replicas agree on the surviving value.
	winner := "A"
	if errors.Is(errA, ErrAborted) {
		winner = "B"
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		va, okA := mA.ReadCommitted("hot")
		vb, okB := mB.ReadCommitted("hot")
		if okA && okB && va == winner && vb == winner {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas disagree: A=%q B=%q want %q", va, vb, winner)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTwoDCReadWriteConflict(t *testing.T) {
	mA, dcA := startManager(t, 0, 2)
	mB, dcB := startManager(t, 1, 2)
	connectLatent(t, dcA, dcB, 10*time.Millisecond)

	// Seed a value and let it replicate.
	seed := mA.Begin()
	seed.Write("acct", "100")
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if v, ok := mB.ReadCommitted("acct"); ok && v == "100" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("seed never replicated")
		}
		time.Sleep(time.Millisecond)
	}

	// A reads acct and writes dest; B overwrites acct. Concurrent and
	// RW-conflicting: exactly one survives.
	txA := mA.Begin()
	txA.Read("acct")
	txA.Write("dest", "100")
	txB := mB.Begin()
	txB.Write("acct", "0")

	var wg sync.WaitGroup
	var errA, errB error
	wg.Add(2)
	go func() { defer wg.Done(); errA = txA.Commit() }()
	go func() { defer wg.Done(); errB = txB.Commit() }()
	wg.Wait()
	abortedCount := 0
	for _, err := range []error{errA, errB} {
		if errors.Is(err, ErrAborted) {
			abortedCount++
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if abortedCount != 1 {
		t.Fatalf("aborted = %d, want 1 (errA=%v errB=%v)", abortedCount, errA, errB)
	}
}

// TestCommitLatencyBoundedByRTT is the Message Futures headline: commit
// latency is governed by the log-exchange round trip, not by extra
// coordination. With a one-way WAN delay d, commit needs >= 2d (our record
// travels out; evidence of the peer seeing it travels back).
func TestCommitLatencyBoundedByRTT(t *testing.T) {
	mA, dcA := startManager(t, 0, 2)
	_, dcB := startManager(t, 1, 2)

	const oneWay = 25 * time.Millisecond
	wrap := func(rxs []chariots.ReceiverAPI) []chariots.ReceiverAPI {
		out := make([]chariots.ReceiverAPI, len(rxs))
		for i, rx := range rxs {
			l := chariots.NewLatencyLink(rx, oneWay)
			t.Cleanup(l.Close)
			out[i] = l
		}
		return out
	}
	dcA.ConnectTo(1, wrap(dcB.Receivers()))
	dcB.ConnectTo(0, wrap(dcA.Receivers()))

	tx := mA.Begin()
	tx.Write("k", "v")
	start := time.Now()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 2*oneWay {
		t.Errorf("commit in %v, below the 2×%v RTT bound", elapsed, oneWay)
	}
	if elapsed > 20*oneWay {
		t.Errorf("commit took %v, far above the RTT bound — protocol stalling", elapsed)
	}
}

func TestCommitTimesOutWhenPartitioned(t *testing.T) {
	mA, dcA := startManager(t, 0, 2)
	_, dcB := startManager(t, 1, 2)
	// A can reach B, but B's shipments to A are blackholed: A never
	// learns that B saw its record.
	dcA.ConnectTo(1, dcB.Receivers())
	dcB.ConnectTo(0, []chariots.ReceiverAPI{blackhole{}})

	mA.CommitWaitTimeout = 150 * time.Millisecond
	tx := mA.Begin()
	tx.Write("k", "v")
	if err := tx.Commit(); !errors.Is(err, ErrTimeout) {
		t.Errorf("partitioned commit = %v, want ErrTimeout", err)
	}
}

type blackhole struct{}

func (blackhole) Deliver(chariots.Snapshot) error { return nil }

func TestConflictPredicates(t *testing.T) {
	a := TxnRecord{Reads: []string{"r"}, Writes: []KV{{Key: "w", Value: "1"}}}
	tests := []struct {
		name string
		b    TxnRecord
		want bool
	}{
		{"disjoint", TxnRecord{Writes: []KV{{Key: "other"}}}, false},
		{"WW", TxnRecord{Writes: []KV{{Key: "w"}}}, true},
		{"B writes A's read", TxnRecord{Writes: []KV{{Key: "r"}}}, true},
		{"B reads A's write", TxnRecord{Reads: []string{"w"}}, true},
		{"read-read only", TxnRecord{Reads: []string{"r"}}, false},
	}
	for _, tt := range tests {
		if got := conflicts(a, tt.b); got != tt.want {
			t.Errorf("%s: conflicts = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestConcurrentPredicate(t *testing.T) {
	r1 := &core.Record{Host: 0, TOId: 5}
	r2 := &core.Record{Host: 1, TOId: 3, Deps: []core.Dep{{DC: 0, TOId: 5}}}
	if concurrent(r1, r2) {
		t.Error("r2 depends on r1; not concurrent")
	}
	r3 := &core.Record{Host: 1, TOId: 3, Deps: []core.Dep{{DC: 0, TOId: 4}}}
	if !concurrent(r1, r3) {
		t.Error("r3 saw only TOId 4; concurrent with r1")
	}
	r4 := &core.Record{Host: 0, TOId: 6}
	if concurrent(r1, r4) {
		t.Error("same host records are never concurrent")
	}
}

func BenchmarkSingleDCTxnCommit(b *testing.B) {
	dc, err := chariots.New(txnCfg(0, 1))
	if err != nil {
		b.Fatal(err)
	}
	dc.Start()
	defer dc.Stop()
	m := NewManager(dc)
	defer m.Stop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := m.Begin()
		tx.Read("k")
		tx.Write("k", "v")
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBankInvariantUnderConcurrency is a serializability stress test: many
// concurrent transfer transactions between accounts at two datacenters.
// Committed transfers conserve the total balance; because conflicting
// concurrent transactions abort, the sum across accounts never drifts.
func TestBankInvariantUnderConcurrency(t *testing.T) {
	mA, dcA := startManager(t, 0, 2)
	mB, dcB := startManager(t, 1, 2)
	connectLatent(t, dcA, dcB, 3*time.Millisecond)

	// Seed 4 accounts with 100 each (total 400).
	const accounts = 4
	const initial = 100
	seed := mA.Begin()
	for i := 0; i < accounts; i++ {
		seed.Write(fmt.Sprintf("acct%d", i), fmt.Sprint(initial))
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}
	waitConverged := func(m *Manager) {
		deadline := time.Now().Add(10 * time.Second)
		for {
			ok := true
			for i := 0; i < accounts; i++ {
				if _, has := m.ReadCommitted(fmt.Sprintf("acct%d", i)); !has {
					ok = false
				}
			}
			if ok {
				return
			}
			if time.Now().After(deadline) {
				t.Fatal("seed never converged")
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitConverged(mB)

	// Concurrent transfers at both sites.
	var wg sync.WaitGroup
	transfer := func(m *Manager, from, to int, amount int) {
		defer wg.Done()
		tx := m.Begin()
		fv, _ := tx.Read(fmt.Sprintf("acct%d", from))
		tv, _ := tx.Read(fmt.Sprintf("acct%d", to))
		var f, v int
		fmt.Sscanf(fv, "%d", &f)
		fmt.Sscanf(tv, "%d", &v)
		tx.Write(fmt.Sprintf("acct%d", from), fmt.Sprint(f-amount))
		tx.Write(fmt.Sprintf("acct%d", to), fmt.Sprint(v+amount))
		tx.Commit() // commit or abort; both are fine, the invariant must hold
	}
	for round := 0; round < 6; round++ {
		wg.Add(2)
		go transfer(mA, round%accounts, (round+1)%accounts, 10)
		go transfer(mB, (round+2)%accounts, (round+3)%accounts, 5)
		wg.Wait() // rounds sequential; the two in-round txns race
	}

	// Both replicas converge to identical states conserving the total.
	deadline := time.Now().Add(15 * time.Second)
	for {
		sum := func(m *Manager) (int, bool) {
			total := 0
			for i := 0; i < accounts; i++ {
				v, ok := m.ReadCommitted(fmt.Sprintf("acct%d", i))
				if !ok {
					return 0, false
				}
				var n int
				fmt.Sscanf(v, "%d", &n)
				total += n
			}
			return total, true
		}
		same := true
		for i := 0; i < accounts; i++ {
			k := fmt.Sprintf("acct%d", i)
			va, _ := mA.ReadCommitted(k)
			vb, _ := mB.ReadCommitted(k)
			if va != vb {
				same = false
			}
		}
		sa, okA := sum(mA)
		sb, okB := sum(mB)
		if same && okA && okB {
			if sa != accounts*initial || sb != accounts*initial {
				t.Fatalf("balance not conserved: A=%d B=%d want %d", sa, sb, accounts*initial)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas never converged identically")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestManagerPrunesDecidedHistory: decided transactions known everywhere
// are dropped from the manager's memory, so long-running managers stay
// bounded.
func TestManagerPrunesDecidedHistory(t *testing.T) {
	mA, dcA := startManager(t, 0, 2)
	mB, dcB := startManager(t, 1, 2)
	connect(dcA, dcB)

	for i := 0; i < 20; i++ {
		tx := mA.Begin()
		tx.Write("k", fmt.Sprint(i))
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	_ = mB
	// Once the awareness frontier covers the transactions at both
	// replicas, polling prunes them.
	deadline := time.Now().Add(10 * time.Second)
	for mA.PendingTxns() > 2 {
		if time.Now().After(deadline) {
			t.Fatalf("manager retains %d transactions (frontier %v)",
				mA.PendingTxns(), dcA.ATable().GCFrontier())
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The committed state survives pruning.
	if v, ok := mA.ReadCommitted("k"); !ok || v != "19" {
		t.Errorf("state after prune = %q,%v", v, ok)
	}
}
