// Package msgfutures implements the Message Futures commit protocol
// (§4.3, Nawab et al. CIDR'13) on top of Chariots: strongly consistent
// (serializable) multi-key transactions on geo-replicated data, using the
// causally ordered replicated log as the only communication medium.
//
// A transaction executes optimistically: reads go to the local committed
// state, writes are buffered. Commit appends the transaction's read and
// write sets to the log and then waits until every other datacenter's
// history is known to cover the transaction — the awareness table entry
// T[j][self] reaching the transaction's TOId proves datacenter j has seen
// it, and by causal transitivity everything j appended *before* seeing it
// has arrived here. At that point the set of transactions concurrent with
// ours is complete and fixed, and a deterministic conflict rule — shared
// by every datacenter — decides commit or abort identically everywhere,
// with no extra coordination round.
package msgfutures

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/chariots"
	"repro/internal/core"
	"repro/internal/flstore"
	"repro/internal/metrics"
)

const txnTag = "msgfutures-txn"

// commitRetries bounds how many shed rejections (the datacenter's
// admission control under Config.ShedOnSaturation) Commit absorbs before
// surfacing the error; waits honor the server's retry hint.
const commitRetries = 8

// ErrAborted is returned by Commit when the transaction lost a conflict.
var ErrAborted = errors.New("msgfutures: transaction aborted")

// ErrTimeout is returned when remote histories do not arrive in time
// (e.g. a partitioned datacenter — strong consistency gives up
// availability, exactly the CAP trade the paper discusses).
var ErrTimeout = errors.New("msgfutures: commit timed out waiting for remote histories")

// TxnRecord is the payload of a transaction's log record.
type TxnRecord struct {
	Reads  []string
	Writes []KV
}

// KV is one buffered write.
type KV struct {
	Key   string
	Value string
}

// Manager is the per-datacenter transaction manager. It applies committed
// transactions from the log to its key-value state in log order, deciding
// each transaction's fate with the deterministic conflict rule.
type Manager struct {
	dc *chariots.Datacenter

	mu    sync.Mutex
	state map[string]string
	// applied are all transaction records seen so far, by LId order.
	applied []*txnEntry
	cursor  uint64 // highest LId folded into state

	// CommitWaitTimeout bounds how long Commit waits for remote
	// histories (default 30s).
	CommitWaitTimeout time.Duration

	// Committed and Aborted count transaction outcomes at this replica.
	Committed metrics.Counter
	Aborted   metrics.Counter

	stop chan struct{}
	done chan struct{}
}

type txnEntry struct {
	rec  *core.Record
	txn  TxnRecord
	fate fate
	// consumed marks a local transaction whose fate was delivered to its
	// committer; only then may pruning drop it (Commit polls fateOf).
	consumed bool
}

type fate int

const (
	fateUnknown fate = iota
	fateCommitted
	fateAborted
)

// NewManager returns a transaction manager over a running datacenter and
// starts its log-application loop.
func NewManager(dc *chariots.Datacenter) *Manager {
	m := &Manager{
		dc:                dc,
		state:             make(map[string]string),
		CommitWaitTimeout: 30 * time.Second,
		stop:              make(chan struct{}),
		done:              make(chan struct{}),
	}
	go m.applyLoop()
	return m
}

// Stop halts the application loop.
func (m *Manager) Stop() {
	select {
	case <-m.stop:
	default:
		close(m.stop)
	}
	<-m.done
}

// applyLoop folds new log records into the manager's transaction list.
func (m *Manager) applyLoop() {
	defer close(m.done)
	for {
		select {
		case <-m.stop:
			return
		case <-time.After(300 * time.Microsecond):
		}
		m.poll()
	}
}

// poll scans the log past the cursor and ingests transaction records.
func (m *Manager) poll() {
	head, err := m.dc.Head()
	if err != nil {
		return
	}
	m.mu.Lock()
	cursor := m.cursor
	m.mu.Unlock()
	if head <= cursor {
		// No new records, but decidability can still change: the
		// awareness table advances on heartbeats alone.
		m.mu.Lock()
		m.decideLocked()
		m.mu.Unlock()
		return
	}
	// One scatter-gather range read replaces the per-maintainer window
	// scans; the result is already in LId order (merged by placement).
	recs, err := m.dc.Reader().ReadRange(cursor+1, head)
	if err != nil {
		return
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	for _, rec := range recs {
		if rec.LId <= m.cursor {
			continue
		}
		m.cursor = rec.LId
		if !rec.HasTag(txnTag) {
			continue
		}
		txn, err := decodeTxn(rec.Body)
		if err != nil {
			continue
		}
		m.applied = append(m.applied, &txnEntry{rec: rec, txn: txn})
	}
	m.decideLocked()
	m.pruneLocked()
}

// pruneLocked drops decided transactions that every datacenter is known to
// have seen (the log's own GC rule): any future record's dependency vector
// will cover them, so they can never again be concurrent with — and thus
// never conflict with — a new transaction. This bounds the manager's
// memory the same way §6.1 bounds the log's. Caller holds mu.
func (m *Manager) pruneLocked() {
	frontier := m.dc.ATable().GCFrontier()
	self := m.dc.Self()
	keep := m.applied[:0]
	for _, e := range m.applied {
		droppable := e.fate != fateUnknown && frontier.Get(e.rec.Host) >= e.rec.TOId
		if e.rec.Host == self && !e.consumed {
			// A local committer may still be waiting on this fate.
			droppable = false
		}
		if droppable {
			continue
		}
		keep = append(keep, e)
	}
	// Zero the tail so dropped entries are collectable.
	for i := len(keep); i < len(m.applied); i++ {
		m.applied[i] = nil
	}
	m.applied = keep
}

// PendingTxns returns how many transaction records the manager retains
// (introspection; bounded by the awareness frontier).
func (m *Manager) PendingTxns() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.applied)
}

// decidableLocked reports whether e's concurrent set is complete here:
// every datacenter is known to have seen e (T[j][host(e)] >= TOId(e)).
func (m *Manager) decidableLocked(e *txnEntry) bool {
	at := m.dc.ATable()
	for j := 0; j < at.N(); j++ {
		if at.Get(core.DCID(j), e.rec.Host) < e.rec.TOId {
			return false
		}
	}
	return true
}

// concurrent reports whether two transaction records are causally
// concurrent: neither's dependency vector covers the other.
func concurrent(a, b *core.Record) bool {
	if a.Host == b.Host {
		return false // same host: totally ordered
	}
	aSawB := a.DepOn(b.Host) >= b.TOId
	bSawA := b.DepOn(a.Host) >= a.TOId
	return !aSawB && !bSawA
}

// conflicts reports whether two transactions have intersecting write-write
// or read-write sets.
func conflicts(a, b TxnRecord) bool {
	aw := make(map[string]bool, len(a.Writes))
	for _, w := range a.Writes {
		aw[w.Key] = true
	}
	for _, w := range b.Writes {
		if aw[w.Key] {
			return true // WW
		}
	}
	for _, r := range b.Reads {
		if aw[r] {
			return true // A writes what B read
		}
	}
	bw := make(map[string]bool, len(b.Writes))
	for _, w := range b.Writes {
		bw[w.Key] = true
	}
	for _, r := range a.Reads {
		if bw[r] {
			return true // B writes what A read
		}
	}
	return false
}

// precedes is the deterministic tiebreak among concurrent conflicting
// transactions: lower (TOId, Host) wins. Identical at every datacenter.
func precedes(a, b *core.Record) bool {
	if a.TOId != b.TOId {
		return a.TOId < b.TOId
	}
	return a.Host < b.Host
}

// decideLocked fixes the fate of every decidable transaction in LId order
// and folds committed writes into the state. Caller holds mu.
func (m *Manager) decideLocked() {
	for _, e := range m.applied {
		if e.fate != fateUnknown {
			continue
		}
		if !m.decidableLocked(e) {
			// Later entries may still be decidable, but state must
			// fold in LId order; stop here.
			return
		}
		e.fate = fateCommitted
		for _, other := range m.applied {
			if other == e {
				continue
			}
			if !concurrent(e.rec, other.rec) {
				continue
			}
			if !conflicts(e.txn, other.txn) {
				continue
			}
			if precedes(other.rec, e.rec) {
				e.fate = fateAborted
				break
			}
		}
		if e.fate == fateCommitted {
			m.Committed.Inc()
			for _, w := range e.txn.Writes {
				m.state[w.Key] = w.Value
			}
		} else {
			m.Aborted.Inc()
		}
	}
}

// fateOf returns the decided fate of the transaction record, if decided,
// marking it consumed so pruning may drop it.
func (m *Manager) fateOf(host core.DCID, toid uint64) fate {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, e := range m.applied {
		if e.rec.Host == host && e.rec.TOId == toid {
			if e.fate != fateUnknown {
				e.consumed = true
			}
			return e.fate
		}
	}
	return fateUnknown
}

// ReadCommitted returns the committed value of key at this replica.
func (m *Manager) ReadCommitted(key string) (string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.state[key]
	return v, ok
}

// Txn is one optimistic transaction.
type Txn struct {
	m      *Manager
	reads  []string
	writes []KV
	rmap   map[string]bool
	wmap   map[string]string
	done   bool
}

// Begin starts a transaction.
func (m *Manager) Begin() *Txn {
	return &Txn{m: m, rmap: make(map[string]bool), wmap: make(map[string]string)}
}

// Read reads a key (from the transaction's own writes, else the committed
// state) and records it in the read set.
func (t *Txn) Read(key string) (string, bool) {
	if v, ok := t.wmap[key]; ok {
		return v, true
	}
	if !t.rmap[key] {
		t.rmap[key] = true
		t.reads = append(t.reads, key)
	}
	return t.m.ReadCommitted(key)
}

// Write buffers a write.
func (t *Txn) Write(key, value string) {
	if _, ok := t.wmap[key]; !ok {
		t.writes = append(t.writes, KV{Key: key, Value: value})
	} else {
		for i := range t.writes {
			if t.writes[i].Key == key {
				t.writes[i].Value = value
			}
		}
	}
	t.wmap[key] = value
}

// Commit runs the Message Futures protocol: append the transaction to the
// log, wait until every datacenter has provably seen it (its concurrent
// set is then complete everywhere), and return the deterministic verdict.
func (t *Txn) Commit() error {
	if t.done {
		return errors.New("msgfutures: transaction already finished")
	}
	t.done = true
	if len(t.writes) == 0 {
		return nil // read-only transactions commit locally (snapshot reads)
	}
	body := encodeTxn(TxnRecord{Reads: t.reads, Writes: t.writes})
	// A shed rejection (datacenter admission control) is not a verdict on
	// the transaction — it never reached the log — so retry it paced.
	ack, err := flstore.Retry(commitRetries, func() (chariots.AppendAck, error) {
		return t.m.dc.Append(body, []core.Tag{{Key: txnTag, Value: "1"}})
	})
	if err != nil {
		return err
	}
	self := t.m.dc.Self()
	deadline := time.Now().Add(t.m.CommitWaitTimeout)
	for {
		// Wait for global visibility of our record...
		at := t.m.dc.ATable()
		visible := true
		for j := 0; j < at.N(); j++ {
			if at.Get(core.DCID(j), self) < ack.TOId {
				visible = false
				break
			}
		}
		if visible {
			// ...then for the local manager to decide it.
			t.m.poll()
			switch t.m.fateOf(self, ack.TOId) {
			case fateCommitted:
				return nil
			case fateAborted:
				return fmt.Errorf("%w: conflict at <%s,%d>", ErrAborted, self, ack.TOId)
			}
		}
		if time.Now().After(deadline) {
			return ErrTimeout
		}
		time.Sleep(500 * time.Microsecond)
	}
}

// --- codec ---

func encodeTxn(txn TxnRecord) []byte {
	var buf []byte
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(txn.Reads)))
	for _, r := range txn.Reads {
		buf = appendString(buf, r)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(txn.Writes)))
	for _, w := range txn.Writes {
		buf = appendString(buf, w.Key)
		buf = appendString(buf, w.Value)
	}
	return buf
}

func decodeTxn(body []byte) (TxnRecord, error) {
	var txn TxnRecord
	off := 0
	readString := func() (string, error) {
		if len(body) < off+2 {
			return "", errors.New("msgfutures: short txn record")
		}
		n := int(binary.LittleEndian.Uint16(body[off:]))
		off += 2
		if len(body) < off+n {
			return "", errors.New("msgfutures: short txn string")
		}
		s := string(body[off : off+n])
		off += n
		return s, nil
	}
	if len(body) < 4 {
		return txn, errors.New("msgfutures: short txn record")
	}
	nr := int(binary.LittleEndian.Uint32(body[off:]))
	off += 4
	for i := 0; i < nr; i++ {
		s, err := readString()
		if err != nil {
			return txn, err
		}
		txn.Reads = append(txn.Reads, s)
	}
	if len(body) < off+4 {
		return txn, errors.New("msgfutures: short txn writes")
	}
	nw := int(binary.LittleEndian.Uint32(body[off:]))
	off += 4
	for i := 0; i < nw; i++ {
		k, err := readString()
		if err != nil {
			return txn, err
		}
		v, err := readString()
		if err != nil {
			return txn, err
		}
		txn.Writes = append(txn.Writes, KV{Key: k, Value: v})
	}
	return txn, nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}
