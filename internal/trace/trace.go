// Package trace is the record-lifecycle distributed-tracing layer of
// Chariots: a 24-byte sampled trace context created at the client API
// edge (Client.AppendCtx / ReadRangeCtx / Datacenter.Append), carried
// through the RPC wire framing as an optional header and on the records
// themselves through the pipeline stages, with every hop recording a
// named span — stage, queue-wait vs. service time, outcome — into a
// per-process ring-buffer flight recorder instead of an external
// collector.
//
// Design constraints (DESIGN.md §5.4):
//
//   - The untraced hot path stays allocation-free: the sampling decision
//     is one branch on a context flag, and every instrumentation site is
//     guarded by `if tc.Sampled()`.
//   - Span recording is lock-cheap: the flight recorder is striped into
//     shards, each a fixed ring guarded by its own mutex; a recorded span
//     is one short critical section copying a small struct.
//   - No clocks beyond time.Now: span times are unix nanos, joined across
//     processes by trace id (clock skew shows up as overlap, which the
//     renderer tolerates).
package trace

import (
	"strconv"
	"sync/atomic"
	"time"
)

// TraceID identifies one record lifecycle end to end across processes.
type TraceID uint64

// SpanID identifies one span within a trace.
type SpanID uint64

// String renders the id the way /debug/trace and logctl accept it.
func (t TraceID) String() string { return strconv.FormatUint(uint64(t), 16) }

// ParseTraceID parses the hex form produced by TraceID.String.
func ParseTraceID(s string) (TraceID, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	return TraceID(v), err
}

// Ctx flags.
const (
	// FlagSampled marks a context whose hops record spans.
	FlagSampled uint8 = 1 << 0
	// FlagForced marks a context sampled by the slow-op detector or an
	// operator override rather than the probabilistic sampler.
	FlagForced uint8 = 1 << 1
)

// Ctx is the trace context carried by a record (or an RPC envelope)
// through the pipeline. The zero value is "untraced" and every operation
// on it is a no-op, so unsampled traffic pays exactly one flag test per
// instrumentation site.
//
// T and S name the trace and the parent span for the next hop; At is the
// unix-nano timestamp of the previous hop's hand-off, which lets each
// stage attribute the gap since then as its queue wait without the
// channels carrying timestamps. Only T, S, and F cross the wire (the
// receiver restarts At at arrival, so transit time lands in the first
// server-side hop's queue component).
type Ctx struct {
	T  TraceID
	S  SpanID
	F  uint8
	At int64
}

// Sampled reports whether hops on this context should record spans.
func (c Ctx) Sampled() bool { return c.F&FlagSampled != 0 }

// Child returns the context a hop hands downstream: same trace, the
// hop's span as the parent, stamped at now.
func (c Ctx) Child(s SpanID, now int64) Ctx {
	return Ctx{T: c.T, S: s, F: c.F, At: now}
}

// --- id generation and sampling ---

// idState seeds the splitmix64 stream behind NewID; package init makes
// ids distinct across processes, the mix makes them distinct within one.
var idState atomic.Uint64

func init() { idState.Store(uint64(time.Now().UnixNano()) | 1) }

// nextID returns a non-zero pseudo-random 64-bit id (splitmix64,
// lock-free, allocation-free).
func nextID() uint64 {
	for {
		z := idState.Add(0x9E3779B97F4A7C15)
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		if z != 0 {
			return z
		}
	}
}

// sampleEvery is the global sampling rate: 0 disables tracing entirely,
// N samples one in N new contexts. The counter-based decision keeps the
// cost of an unsampled New at one atomic add.
var (
	sampleEvery atomic.Uint32
	sampleCtr   atomic.Uint32
)

// SetSampling sets the process-wide sampling rate: one traced context
// per every `everyN` created; 0 disables, 1 traces everything.
func SetSampling(everyN uint32) { sampleEvery.Store(everyN) }

// SamplingRate returns the current 1-in-N sampling rate (0 = off).
func SamplingRate() uint32 { return sampleEvery.Load() }

// New makes the sampling decision for a fresh operation: it returns a
// sampled context (new trace id, no parent span, stamped now) one time
// in N per SetSampling, and the zero Ctx otherwise. The unsampled path
// is one atomic load, at most one atomic add, and no allocation or
// clock read.
func New() Ctx {
	n := sampleEvery.Load()
	if n == 0 {
		return Ctx{}
	}
	if n > 1 && sampleCtr.Add(1)%n != 0 {
		return Ctx{}
	}
	return Ctx{T: TraceID(nextID()), F: FlagSampled, At: time.Now().UnixNano()}
}

// Forced returns a sampled context with the forced flag — operator
// overrides (logctl, debug endpoints) and tests use it to trace a
// specific operation regardless of the sampling rate.
func Forced() Ctx {
	return Ctx{T: TraceID(nextID()), F: FlagSampled | FlagForced, At: time.Now().UnixNano()}
}

// --- span recording ---

// Span is one recorded hop of a trace: the stage name, the covered
// interval, how much of it was queue wait vs. service, and the outcome.
// Spans are fixed-size values so the flight recorder ring holds them
// without per-span allocation.
type Span struct {
	Trace  TraceID `json:"trace"`
	ID     SpanID  `json:"id"`
	Parent SpanID  `json:"parent,omitempty"`
	// Stage names the hop ("client.append", "batcher.queue", "store.fsync",
	// "rpc.append", ...). Sites pass string constants so recording does
	// not allocate.
	Stage string `json:"stage"`
	// Node names the process (or simulated node) that recorded the span.
	Node string `json:"node,omitempty"`
	// Start is unix nanos; Dur the covered nanoseconds; Queue the part of
	// Dur attributed to waiting (channel, admission, park) rather than
	// service.
	Start int64 `json:"start"`
	Dur   int64 `json:"dur"`
	Queue int64 `json:"queue,omitempty"`
	// Outcome is "" for success, otherwise a short error class
	// ("overload", "drop", "error", ...).
	Outcome string `json:"outcome,omitempty"`
	// LId is the log position, once assigned (0 before assignment).
	LId uint64 `json:"lid,omitempty"`
	// Count is the number of records the span covered (batch spans).
	Count int32 `json:"count,omitempty"`
	// Forced marks slow-op force-sampled spans.
	Forced bool `json:"forced,omitempty"`
}

// End returns the span's end time in unix nanos.
func (s Span) End() int64 { return s.Start + s.Dur }

// Hop records one pipeline hop on a sampled context: a span covering the
// interval since the context's previous hand-off ([c.At, now)), with
// queueNs of it attributed to queue wait, then advances the context so
// the next hop parents to this span. No-op on unsampled contexts.
//
// Hop is the building block for stages that hand a record onward; paths
// that wrap a call (RPC client, store fsync) use Begin/End instead,
// which do not advance the chain.
func (c *Ctx) Hop(r *Recorder, stage string, queueNs int64, outcome string, lid uint64, count int) SpanID {
	if !c.Sampled() {
		return 0
	}
	now := time.Now().UnixNano()
	start := c.At
	if start == 0 || start > now {
		start = now
	}
	if queueNs < 0 {
		queueNs = 0
	}
	if queueNs > now-start {
		queueNs = now - start
	}
	id := SpanID(nextID())
	r.Record(Span{
		Trace:   c.T,
		ID:      id,
		Parent:  c.S,
		Stage:   stage,
		Start:   start,
		Dur:     now - start,
		Queue:   queueNs,
		Outcome: outcome,
		LId:     lid,
		Count:   int32(count),
		Forced:  c.F&FlagForced != 0,
	})
	c.S = id
	c.At = now
	return id
}

// Started is an in-flight service span opened by Begin. It is a value —
// keeping it on the stack keeps the traced path allocation-free.
type Started struct {
	c     Ctx
	stage string
	start int64
}

// Begin opens a service span under the context's current parent without
// advancing the hop chain (the caller's context continues to parent
// subsequent hops to the same span). Use for calls that wrap downstream
// work: RPC client calls, store writes, replica fan-out.
func Begin(c Ctx, stage string) Started {
	if !c.Sampled() {
		return Started{}
	}
	return Started{c: c, stage: stage, start: time.Now().UnixNano()}
}

// Active reports whether the span will record on End (i.e. the context
// it was opened under was sampled).
func (s Started) Active() bool { return s.stage != "" }

// End records the span. No-op when the opening context was unsampled.
func (s Started) End(r *Recorder, outcome string, lid uint64, count int) SpanID {
	if s.stage == "" {
		return 0
	}
	id := SpanID(nextID())
	r.Record(Span{
		Trace:   s.c.T,
		ID:      id,
		Parent:  s.c.S,
		Stage:   s.stage,
		Start:   s.start,
		Dur:     time.Now().UnixNano() - s.start,
		Outcome: outcome,
		LId:     lid,
		Count:   int32(count),
		Forced:  s.c.F&FlagForced != 0,
	})
	return id
}

// EndQueued is End with part of the interval attributed to queue wait.
func (s Started) EndQueued(r *Recorder, queueNs int64, outcome string, lid uint64, count int) SpanID {
	if s.stage == "" {
		return 0
	}
	now := time.Now().UnixNano()
	if queueNs < 0 {
		queueNs = 0
	}
	if queueNs > now-s.start {
		queueNs = now - s.start
	}
	id := SpanID(nextID())
	r.Record(Span{
		Trace:   s.c.T,
		ID:      id,
		Parent:  s.c.S,
		Stage:   s.stage,
		Start:   s.start,
		Dur:     now - s.start,
		Queue:   queueNs,
		Outcome: outcome,
		LId:     lid,
		Count:   int32(count),
		Forced:  s.c.F&FlagForced != 0,
	})
	return id
}

// Outcome classifies an error for span annotation: "" for nil, the
// given class otherwise. Helper so call sites stay one line.
func Outcome(err error, class string) string {
	if err == nil {
		return ""
	}
	return class
}
