package trace

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// This file joins flight-recorder snapshots — possibly from several
// processes — into per-trace span trees, renders them for operators
// (logctl trace), and computes the per-stage latency budget used by
// repro -exp tracelat and the trace smoke test.

// Node is one span plus its children in a joined trace tree.
type Node struct {
	Span
	Children []*Node
}

// BuildTree joins spans (any order, any number of nodes) into trees
// keyed by trace id. Within a trace, spans whose parent is absent from
// the set become roots; children sort by start time. Duplicate span ids
// (a span fetched from two snapshots) are collapsed.
func BuildTree(spans []Span) map[TraceID][]*Node {
	byID := make(map[SpanID]*Node, len(spans))
	for _, s := range spans {
		if s.ID == 0 {
			continue
		}
		if _, dup := byID[s.ID]; dup {
			continue
		}
		byID[s.ID] = &Node{Span: s}
	}
	out := make(map[TraceID][]*Node)
	for _, n := range byID {
		if p, ok := byID[n.Parent]; ok && n.Parent != n.ID {
			p.Children = append(p.Children, n)
		} else {
			out[n.Trace] = append(out[n.Trace], n)
		}
	}
	sortNodes := func(ns []*Node) {
		sort.Slice(ns, func(i, j int) bool {
			if ns[i].Start != ns[j].Start {
				return ns[i].Start < ns[j].Start
			}
			return ns[i].ID < ns[j].ID
		})
	}
	for _, roots := range out {
		sortNodes(roots)
	}
	for _, n := range byID {
		sortNodes(n.Children)
	}
	return out
}

// Walk visits the node and its descendants depth-first in start order.
func (n *Node) Walk(fn func(depth int, n *Node)) { n.walk(0, fn) }

func (n *Node) walk(depth int, fn func(int, *Node)) {
	fn(depth, n)
	for _, c := range n.Children {
		c.walk(depth+1, fn)
	}
}

// Stages returns the distinct stage names reached by the tree rooted at
// n, in visit order — the smoke test asserts the append pipeline's
// stages all appear.
func (n *Node) Stages() []string {
	seen := make(map[string]bool)
	var out []string
	n.Walk(func(_ int, nd *Node) {
		if !seen[nd.Stage] {
			seen[nd.Stage] = true
			out = append(out, nd.Stage)
		}
	})
	return out
}

// RenderText writes an indented per-trace span-tree listing, the output
// of `logctl trace`. Times are relative to the trace's first span.
func RenderText(w io.Writer, spans []Span) {
	trees := BuildTree(spans)
	ids := make([]TraceID, 0, len(trees))
	for id := range trees {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		return traceStart(trees[ids[i]]) < traceStart(trees[ids[j]])
	})
	for _, id := range ids {
		roots := trees[id]
		t0 := traceStart(roots)
		fmt.Fprintf(w, "trace %s\n", id)
		for _, root := range roots {
			root.Walk(func(depth int, n *Node) {
				pad := ""
				for i := 0; i < depth; i++ {
					pad += "  "
				}
				fmt.Fprintf(w, "  %s%-24s +%-10s dur=%-10s", pad, n.Stage,
					time.Duration(n.Start-t0), time.Duration(n.Dur))
				if n.Queue > 0 {
					fmt.Fprintf(w, " queue=%s", time.Duration(n.Queue))
				}
				if n.Outcome != "" {
					fmt.Fprintf(w, " outcome=%s", n.Outcome)
				}
				if n.LId != 0 {
					fmt.Fprintf(w, " lid=%d", n.LId)
				}
				if n.Count > 1 {
					fmt.Fprintf(w, " n=%d", n.Count)
				}
				if n.Span.Node != "" {
					fmt.Fprintf(w, " node=%s", n.Span.Node)
				}
				if n.Forced {
					fmt.Fprintf(w, " forced")
				}
				fmt.Fprintln(w)
			})
		}
	}
}

func traceStart(roots []*Node) int64 {
	if len(roots) == 0 {
		return 0
	}
	return roots[0].Start
}

// Budget is the per-stage latency attribution for a set of traces: for
// each trace's timeline, every covered instant is attributed to exactly
// one stage (the innermost — latest-starting — span open at that
// instant), so stage sums never double-count nested or chained spans.
type Budget struct {
	// StageNs sums attributed nanoseconds per stage across the traces.
	StageNs map[string]int64 `json:"stage_ns"`
	// QueueNs sums the reported queue-wait portion per stage.
	QueueNs map[string]int64 `json:"queue_ns"`
	// CoveredNs is total attributed time; SpanNs the total trace
	// wall-time (last span end − first span start, summed per trace).
	CoveredNs int64 `json:"covered_ns"`
	SpanNs    int64 `json:"span_ns"`
	// Traces is the number of traces aggregated.
	Traces int `json:"traces"`
}

// Coverage returns CoveredNs/SpanNs in [0,1] — the fraction of observed
// end-to-end latency the recorded spans account for.
func (b Budget) Coverage() float64 {
	if b.SpanNs <= 0 {
		return 0
	}
	return float64(b.CoveredNs) / float64(b.SpanNs)
}

// ComputeBudget aggregates the per-stage latency budget across all
// traces present in spans.
func ComputeBudget(spans []Span) Budget {
	b := Budget{StageNs: make(map[string]int64), QueueNs: make(map[string]int64)}
	byTrace := make(map[TraceID][]Span)
	for _, s := range spans {
		if s.Trace == 0 || s.Dur < 0 {
			continue
		}
		byTrace[s.Trace] = append(byTrace[s.Trace], s)
	}
	for _, ts := range byTrace {
		attributeTrace(ts, &b)
		b.Traces++
	}
	return b
}

// attributeTrace sweeps one trace's timeline attributing each covered
// instant to the innermost open span. O(n²) in spans-per-trace, which
// is tens at most.
func attributeTrace(ts []Span, b *Budget) {
	var lo, hi int64
	for i, s := range ts {
		if i == 0 || s.Start < lo {
			lo = s.Start
		}
		if e := s.End(); i == 0 || e > hi {
			hi = e
		}
		b.QueueNs[s.Stage] += s.Queue
	}
	b.SpanNs += hi - lo

	// Boundary points: every span start and end.
	pts := make([]int64, 0, 2*len(ts))
	for _, s := range ts {
		pts = append(pts, s.Start, s.End())
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i] < pts[j] })
	for i := 0; i+1 < len(pts); i++ {
		a, z := pts[i], pts[i+1]
		if z <= a {
			continue
		}
		// Innermost open span over (a, z): latest start wins, ties to
		// shortest duration (more specific).
		best := -1
		for j, s := range ts {
			if s.Start <= a && s.End() >= z {
				if best == -1 || s.Start > ts[best].Start ||
					(s.Start == ts[best].Start && s.Dur < ts[best].Dur) {
					best = j
				}
			}
		}
		if best >= 0 {
			b.StageNs[ts[best].Stage] += z - a
			b.CoveredNs += z - a
		}
	}
}
