package trace

import (
	"sort"
	"sync"
)

// Recorder is the per-process flight recorder: a striped ring buffer of
// recently recorded spans. Writers hash their span's trace id onto one
// of a small number of shards and take only that shard's mutex for a
// copy of one fixed-size struct — cheap enough for every sampled hop on
// the append path, with no allocation per record.
//
// The ring overwrites oldest-first per shard; Snapshot reassembles a
// time-ordered view. Spans of one trace always land on the same shard,
// so a trace is either wholly present or wholly evicted per shard ring.
type Recorder struct {
	node   string
	shards []shard
	mask   uint64
}

type shard struct {
	mu    sync.Mutex
	ring  []Span
	next  int  // next write index
	wrap  bool // ring has wrapped at least once
	total uint64
}

const defaultShards = 8

// NewRecorder returns a flight recorder retaining roughly `capacity`
// spans (rounded up to a multiple of the shard count), tagged with the
// process/node name stamped onto every span it serves.
func NewRecorder(capacity int, node string) *Recorder {
	if capacity < defaultShards {
		capacity = defaultShards
	}
	per := (capacity + defaultShards - 1) / defaultShards
	r := &Recorder{node: node, shards: make([]shard, defaultShards), mask: defaultShards - 1}
	for i := range r.shards {
		r.shards[i].ring = make([]Span, per)
	}
	return r
}

// Node returns the node name stamped on spans.
func (r *Recorder) Node() string { return r.node }

// SetNode renames the recorder (used by binaries once the listen address
// is known, before traffic starts).
func (r *Recorder) SetNode(node string) { r.node = node }

// Record stores one span. The span's Node field is stamped from the
// recorder. Safe for concurrent use.
func (r *Recorder) Record(s Span) {
	if r == nil {
		return
	}
	s.Node = r.node
	sh := &r.shards[uint64(s.Trace)&r.mask]
	sh.mu.Lock()
	sh.ring[sh.next] = s
	sh.next++
	sh.total++
	if sh.next == len(sh.ring) {
		sh.next = 0
		sh.wrap = true
	}
	sh.mu.Unlock()
}

// Filter selects spans from a snapshot. Zero values match everything.
type Filter struct {
	// Trace, when non-zero, keeps only spans of that trace.
	Trace TraceID
	// Stage, when non-empty, keeps only spans of that stage.
	Stage string
	// MinDur (nanoseconds), when positive, keeps only spans at least that long.
	MinDur int64
	// Limit, when positive, caps the result to the most recent N spans.
	Limit int
}

// Match reports whether the span passes the filter.
func (f Filter) Match(s Span) bool {
	if f.Trace != 0 && s.Trace != f.Trace {
		return false
	}
	if f.Stage != "" && s.Stage != f.Stage {
		return false
	}
	if f.MinDur > 0 && s.Dur < f.MinDur {
		return false
	}
	return true
}

// Snapshot copies the matching retained spans, oldest first by start
// time. The result is freshly allocated and safe to retain.
func (r *Recorder) Snapshot(f Filter) []Span {
	if r == nil {
		return nil
	}
	var out []Span
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		n := sh.next
		if sh.wrap {
			for _, s := range sh.ring[n:] {
				if f.Match(s) {
					out = append(out, s)
				}
			}
		}
		for _, s := range sh.ring[:n] {
			if f.Match(s) {
				out = append(out, s)
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[len(out)-f.Limit:]
	}
	return out
}

// Total returns the number of spans ever recorded (including evicted).
func (r *Recorder) Total() uint64 {
	var t uint64
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		t += sh.total
		sh.mu.Unlock()
	}
	return t
}

// Reset drops all retained spans (tests and benchmarks).
func (r *Recorder) Reset() {
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for j := range sh.ring {
			sh.ring[j] = Span{}
		}
		sh.next = 0
		sh.wrap = false
		sh.total = 0
		sh.mu.Unlock()
	}
}

// defaultRecorder is the process-wide flight recorder used by every
// instrumentation site that does not plumb its own.
var defaultRecorder = NewRecorder(4096, "")

// Default returns the process-wide flight recorder.
func Default() *Recorder { return defaultRecorder }

// SetNodeName renames the process-wide recorder (one call at startup).
func SetNodeName(node string) { defaultRecorder.SetNode(node) }
