package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSamplingRates(t *testing.T) {
	defer SetSampling(0)

	SetSampling(0)
	for i := 0; i < 100; i++ {
		if New().Sampled() {
			t.Fatal("sampling disabled but New returned a sampled ctx")
		}
	}

	SetSampling(1)
	for i := 0; i < 100; i++ {
		c := New()
		if !c.Sampled() {
			t.Fatal("1-in-1 sampling but New returned an unsampled ctx")
		}
		if c.T == 0 || c.At == 0 {
			t.Fatal("sampled ctx missing trace id or timestamp")
		}
	}

	SetSampling(4)
	sampled := 0
	for i := 0; i < 400; i++ {
		if New().Sampled() {
			sampled++
		}
	}
	if sampled != 100 {
		t.Fatalf("1-in-4 sampling over 400 ops: got %d sampled, want 100", sampled)
	}
}

func TestHopChainAndTree(t *testing.T) {
	r := NewRecorder(128, "n1")
	tc := Forced()
	root := tc.S // zero: first hop has no parent

	id1 := tc.Hop(r, "stage.a", 0, "", 0, 1)
	time.Sleep(time.Millisecond)
	id2 := tc.Hop(r, "stage.b", int64(time.Millisecond)/2, "", 7, 1)
	if id1 == 0 || id2 == 0 || id1 == id2 {
		t.Fatalf("hop ids: %d, %d", id1, id2)
	}
	if tc.S != id2 {
		t.Fatal("ctx did not advance to last hop span")
	}

	spans := r.Snapshot(Filter{Trace: tc.T})
	if len(spans) != 2 {
		t.Fatalf("snapshot: got %d spans, want 2", len(spans))
	}
	if spans[0].Parent != root || spans[1].Parent != id1 {
		t.Fatalf("parent chain broken: %+v", spans)
	}
	if spans[1].Queue <= 0 || spans[1].Queue > spans[1].Dur {
		t.Fatalf("queue attribution out of range: queue=%d dur=%d", spans[1].Queue, spans[1].Dur)
	}
	if spans[0].Node != "n1" {
		t.Fatalf("node not stamped: %+v", spans[0])
	}

	trees := BuildTree(spans)
	roots := trees[tc.T]
	if len(roots) != 1 || roots[0].Stage != "stage.a" {
		t.Fatalf("tree roots: %+v", roots)
	}
	if len(roots[0].Children) != 1 || roots[0].Children[0].Stage != "stage.b" {
		t.Fatalf("tree children: %+v", roots[0].Children)
	}
	got := roots[0].Stages()
	if strings.Join(got, ",") != "stage.a,stage.b" {
		t.Fatalf("stages: %v", got)
	}
}

func TestUnsampledIsNoOp(t *testing.T) {
	r := NewRecorder(64, "n")
	var tc Ctx
	if id := tc.Hop(r, "x", 0, "", 0, 0); id != 0 {
		t.Fatal("unsampled hop recorded a span")
	}
	st := Begin(tc, "y")
	if st.Active() {
		t.Fatal("unsampled Begin returned an active span")
	}
	if id := st.End(r, "", 0, 0); id != 0 {
		t.Fatal("unsampled End recorded a span")
	}
	if n := len(r.Snapshot(Filter{})); n != 0 {
		t.Fatalf("recorder holds %d spans after unsampled ops", n)
	}
}

func TestBeginEnd(t *testing.T) {
	r := NewRecorder(64, "n")
	tc := Forced()
	anchor := tc.Hop(r, "outer", 0, "", 0, 1)
	st := Begin(tc, "inner.call")
	time.Sleep(time.Millisecond)
	id := st.End(r, "error", 42, 3)
	if id == 0 {
		t.Fatal("sampled End recorded nothing")
	}
	spans := r.Snapshot(Filter{Stage: "inner.call"})
	if len(spans) != 1 {
		t.Fatalf("got %d inner.call spans", len(spans))
	}
	s := spans[0]
	if s.Parent != anchor || s.Outcome != "error" || s.LId != 42 || s.Count != 3 {
		t.Fatalf("span fields: %+v", s)
	}
	if s.Dur < int64(time.Millisecond) {
		t.Fatalf("duration too short: %d", s.Dur)
	}
}

func TestRecorderRingEviction(t *testing.T) {
	r := NewRecorder(16, "n") // 8 shards × 2 per ring
	// All spans on one trace land on one shard; ring per shard is 2.
	tc := Forced()
	for i := 0; i < 10; i++ {
		tc.Hop(r, "s", 0, "", uint64(i+1), 1)
	}
	spans := r.Snapshot(Filter{Trace: tc.T})
	if len(spans) != 2 {
		t.Fatalf("ring retained %d spans, want 2", len(spans))
	}
	if spans[0].LId != 9 || spans[1].LId != 10 {
		t.Fatalf("ring did not keep newest spans: %+v", spans)
	}
	if r.Total() != 10 {
		t.Fatalf("total: %d", r.Total())
	}
	r.Reset()
	if len(r.Snapshot(Filter{})) != 0 || r.Total() != 0 {
		t.Fatal("reset did not clear recorder")
	}
}

func TestSnapshotFilters(t *testing.T) {
	r := NewRecorder(256, "n")
	a := Forced()
	a.Hop(r, "fast", 0, "", 0, 1)
	time.Sleep(2 * time.Millisecond)
	a.Hop(r, "slow", 0, "", 0, 1)
	b := Forced()
	b.Hop(r, "fast", 0, "", 0, 1)

	if got := len(r.Snapshot(Filter{Trace: a.T})); got != 2 {
		t.Fatalf("trace filter: %d", got)
	}
	if got := len(r.Snapshot(Filter{Stage: "fast"})); got != 2 {
		t.Fatalf("stage filter: %d", got)
	}
	if got := len(r.Snapshot(Filter{MinDur: int64(time.Millisecond)})); got != 1 {
		t.Fatalf("mindur filter: %d", got)
	}
	if got := len(r.Snapshot(Filter{Limit: 1})); got != 1 {
		t.Fatalf("limit: %d", got)
	}
}

func TestRecorderConcurrency(t *testing.T) {
	r := NewRecorder(1024, "n")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tc := Forced()
			for i := 0; i < 200; i++ {
				tc.Hop(r, "concurrent", 0, "", 0, 1)
				r.Snapshot(Filter{Limit: 4})
			}
		}()
	}
	wg.Wait()
	if r.Total() != 8*200 {
		t.Fatalf("total: %d", r.Total())
	}
}

func TestSlowCheck(t *testing.T) {
	r := NewRecorder(64, "n")
	resetSlowLog()
	old := SlowOpThreshold()
	defer SetSlowOpThreshold(old)

	SetSlowOpThreshold(time.Millisecond)
	start := time.Now().Add(-5 * time.Millisecond)
	// Unsampled ctx: slow op must still be force-recorded.
	if !SlowCheck(r, Ctx{}, "slow.stage", start, 0, "timeout", 3, 2) {
		t.Fatal("slow op not classified slow")
	}
	spans := r.Snapshot(Filter{Stage: "slow.stage"})
	if len(spans) != 1 || !spans[0].Forced || spans[0].Trace == 0 {
		t.Fatalf("forced span: %+v", spans)
	}
	if spans[0].Outcome != "timeout" || spans[0].LId != 3 {
		t.Fatalf("span fields: %+v", spans[0])
	}

	// Fast op: no record.
	if SlowCheck(r, Ctx{}, "fast.stage", time.Now(), 0, "", 0, 1) {
		t.Fatal("fast op classified slow")
	}
	if len(r.Snapshot(Filter{Stage: "fast.stage"})) != 0 {
		t.Fatal("fast op recorded a span")
	}

	// Disabled: nothing happens regardless of duration.
	SetSlowOpThreshold(0)
	if SlowCheck(r, Ctx{}, "slow.stage", start, 0, "", 0, 1) {
		t.Fatal("slow-op log disabled but op classified slow")
	}
}

func TestRenderText(t *testing.T) {
	r := NewRecorder(64, "node-a")
	tc := Forced()
	tc.Hop(r, "client.append", 0, "", 0, 1)
	tc.Hop(r, "maint.store", int64(time.Microsecond), "", 12, 1)
	var sb strings.Builder
	RenderText(&sb, r.Snapshot(Filter{}))
	out := sb.String()
	for _, want := range []string{"trace " + tc.T.String(), "client.append", "maint.store", "lid=12", "node=node-a"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestComputeBudget(t *testing.T) {
	// Hand-built trace: root covers [0,100]; child "store" covers
	// [40,70] nested inside. Innermost-wins attribution: root gets 70,
	// store gets 30, coverage 100%.
	spans := []Span{
		{Trace: 1, ID: 10, Stage: "append", Start: 0, Dur: 100, Queue: 20},
		{Trace: 1, ID: 11, Parent: 10, Stage: "store", Start: 40, Dur: 30},
	}
	b := ComputeBudget(spans)
	if b.Traces != 1 {
		t.Fatalf("traces: %d", b.Traces)
	}
	if b.StageNs["append"] != 70 || b.StageNs["store"] != 30 {
		t.Fatalf("attribution: %+v", b.StageNs)
	}
	if b.QueueNs["append"] != 20 {
		t.Fatalf("queue: %+v", b.QueueNs)
	}
	if b.Coverage() < 0.999 {
		t.Fatalf("coverage: %v", b.Coverage())
	}

	// A gap: spans [0,40] and [60,100] → coverage 0.8.
	gap := []Span{
		{Trace: 2, ID: 20, Stage: "a", Start: 0, Dur: 40},
		{Trace: 2, ID: 21, Parent: 20, Stage: "b", Start: 60, Dur: 40},
	}
	g := ComputeBudget(gap)
	if c := g.Coverage(); c < 0.79 || c > 0.81 {
		t.Fatalf("gap coverage: %v", c)
	}
}

func TestHopChainBudgetCoversEndToEnd(t *testing.T) {
	// A realistic chain of contiguous hops must attribute ~100% of the
	// trace wall time — this property is what the tracelat acceptance
	// bar (≥90% coverage) rests on.
	r := NewRecorder(64, "n")
	tc := Forced()
	stages := []string{"client.append", "batcher.flush", "queue.assign", "maint.store", "client.ack"}
	for _, st := range stages {
		time.Sleep(time.Millisecond)
		tc.Hop(r, st, 0, "", 0, 1)
	}
	b := ComputeBudget(r.Snapshot(Filter{Trace: tc.T}))
	if c := b.Coverage(); c < 0.99 {
		t.Fatalf("contiguous hop chain coverage %v < 0.99", c)
	}
	for _, st := range stages {
		if b.StageNs[st] <= 0 {
			t.Fatalf("stage %s got no attribution: %+v", st, b.StageNs)
		}
	}
}

func TestParseTraceID(t *testing.T) {
	id := TraceID(0xdeadbeef)
	got, err := ParseTraceID(id.String())
	if err != nil || got != id {
		t.Fatalf("roundtrip: %v %v", got, err)
	}
	if _, err := ParseTraceID("zzz"); err == nil {
		t.Fatal("parse of garbage succeeded")
	}
}

func TestOutcomeHelper(t *testing.T) {
	if Outcome(nil, "x") != "" {
		t.Fatal("nil error produced outcome")
	}
	if Outcome(errFake{}, "overload") != "overload" {
		t.Fatal("error did not produce class")
	}
}

type errFake struct{}

func (errFake) Error() string { return "fake" }

func BenchmarkNewUnsampled(b *testing.B) {
	SetSampling(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := New()
		if c.Sampled() {
			b.Fatal("sampled")
		}
	}
}

func BenchmarkHopSampled(b *testing.B) {
	r := NewRecorder(4096, "bench")
	tc := Forced()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc.Hop(r, "bench.stage", 0, "", 0, 1)
	}
}
