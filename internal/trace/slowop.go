package trace

import (
	"log"
	"sync"
	"sync/atomic"
	"time"
)

// Slow-op log: operations whose span exceeds a process-wide threshold
// are force-sampled (recorded into the flight recorder with the forced
// flag even if the originating context was unsampled) and logged once
// with their breakdown, rate-limited per stage so a systemic stall does
// not flood the log.

var (
	// slowThreshold in nanoseconds; 0 disables the slow-op log.
	slowThreshold atomic.Int64

	slowMu   sync.Mutex
	slowLast map[string]time.Time
)

// slowLogInterval is the minimum gap between slow-op log lines per stage.
const slowLogInterval = time.Second

func init() {
	slowThreshold.Store(int64(50 * time.Millisecond))
	slowLast = make(map[string]time.Time)
}

// SetSlowOpThreshold sets the duration past which an operation is
// force-sampled and logged. Zero or negative disables the slow-op log.
func SetSlowOpThreshold(d time.Duration) { slowThreshold.Store(int64(d)) }

// SlowOpThreshold returns the current threshold (0 = disabled).
func SlowOpThreshold() time.Duration { return time.Duration(slowThreshold.Load()) }

// SlowCheck inspects a finished operation: if it ran at least the
// slow-op threshold, the span is recorded into r with the forced flag
// (even when the context was unsampled — tc may be the zero Ctx) and,
// subject to per-stage rate limiting, logged with its breakdown. The
// fast path for a sub-threshold operation is one atomic load and one
// comparison. Returns true when the operation was classified slow.
func SlowCheck(r *Recorder, tc Ctx, stage string, start time.Time, queueNs int64, outcome string, lid uint64, count int) bool {
	thr := slowThreshold.Load()
	if thr <= 0 {
		return false
	}
	dur := time.Since(start)
	if int64(dur) < thr {
		return false
	}
	// Force-sample: slow operations are always worth a flight-recorder
	// entry, sampled or not.
	if tc.T == 0 {
		tc.T = TraceID(nextID())
	}
	sp := Span{
		Trace:   tc.T,
		ID:      SpanID(nextID()),
		Parent:  tc.S,
		Stage:   stage,
		Start:   start.UnixNano(),
		Dur:     int64(dur),
		Queue:   queueNs,
		Outcome: outcome,
		LId:     lid,
		Count:   int32(count),
		Forced:  true,
	}
	r.Record(sp)
	maybeLogSlow(sp, dur)
	return true
}

// maybeLogSlow emits one rate-limited log line for a slow span — at most
// one per stage per slowLogInterval, so a systemic stall produces a
// heartbeat rather than a flood.
func maybeLogSlow(sp Span, dur time.Duration) {
	slowMu.Lock()
	last := slowLast[sp.Stage]
	now := time.Now()
	allowed := now.Sub(last) >= slowLogInterval
	if allowed {
		slowLast[sp.Stage] = now
	}
	slowMu.Unlock()
	if allowed {
		log.Printf("trace: slow op stage=%s trace=%s dur=%s queue=%s outcome=%q lid=%d n=%d",
			sp.Stage, sp.Trace, dur, time.Duration(sp.Queue), sp.Outcome, sp.LId, sp.Count)
	}
}

// resetSlowLog clears the per-stage rate-limit state (tests).
func resetSlowLog() {
	slowMu.Lock()
	slowLast = make(map[string]time.Time)
	slowMu.Unlock()
}
