package trace

import "time"

// Root is the top-level span of one client-visible operation (an append,
// a range read, a tail wait). Unlike Hop spans — which are recorded at
// hand-off time, after the fact — the root span's id must exist *before*
// the operation runs so that every downstream hop can parent to it; the
// span itself is only recorded when the operation finishes. BeginRoot
// pre-allocates the id and returns the child context to propagate.
//
// Root is a value kept on the caller's stack: the traced path allocates
// nothing for it. On the unsampled path Root still notes the start time
// when the slow-op log is armed, so a stalled unsampled operation is
// force-sampled at Finish.
type Root struct {
	c     Ctx // T/S/F of the pre-allocated root span; zero when unsampled
	stage string
	start time.Time
}

// BeginRoot opens the root span of an operation under tc. When tc is
// sampled it returns the Root and the child context downstream hops
// should carry (parented at the root's pre-allocated span id). When tc
// is unsampled it returns a zero child context; the Root still arms
// slow-op detection if a threshold is set, and is otherwise inert.
func BeginRoot(tc Ctx, stage string) (Root, Ctx) {
	if !tc.Sampled() {
		if slowThreshold.Load() <= 0 {
			return Root{}, Ctx{}
		}
		return Root{stage: stage, start: time.Now()}, Ctx{}
	}
	start := time.Now()
	id := SpanID(nextID())
	root := Root{
		c:     Ctx{T: tc.T, S: id, F: tc.F},
		stage: stage,
		start: start,
	}
	child := Ctx{T: tc.T, S: id, F: tc.F, At: start.UnixNano()}
	return root, child
}

// Active reports whether Finish will do anything (sampled, or slow-op
// armed).
func (r Root) Active() bool { return r.stage != "" }

// Sampled reports whether the root belongs to a sampled trace.
func (r Root) Sampled() bool { return r.c.Sampled() }

// Trace returns the root's trace id (0 when unsampled).
func (r Root) Trace() TraceID { return r.c.T }

// Finish closes the root span. Sampled roots are recorded into rec under
// their pre-allocated id (and logged if they crossed the slow-op
// threshold); unsampled roots run the slow-op check, force-sampling the
// operation when it stalled. No-op on an inert Root.
func (r Root) Finish(rec *Recorder, outcome string, lid uint64, count int) {
	if r.stage == "" {
		return
	}
	if !r.c.Sampled() {
		SlowCheck(rec, Ctx{}, r.stage, r.start, 0, outcome, lid, count)
		return
	}
	dur := time.Since(r.start)
	sp := Span{
		Trace:   r.c.T,
		ID:      r.c.S,
		Stage:   r.stage,
		Start:   r.start.UnixNano(),
		Dur:     int64(dur),
		Outcome: outcome,
		LId:     lid,
		Count:   int32(count),
		Forced:  r.c.F&FlagForced != 0,
	}
	rec.Record(sp)
	if thr := slowThreshold.Load(); thr > 0 && int64(dur) >= thr {
		maybeLogSlow(sp, dur)
	}
}
