package chariots

// Credit-based pipeline flow control. The datacenter ingress (Inject)
// acquires one credit per record; the credit is returned when the queue
// stage applies the record to the log (queue.persist). Between those two
// points the record occupies stage inboxes, batcher buffers, and the
// queue's token work list — so the gate bounds exactly the memory the
// pipeline can accumulate when a downstream stage (maintainer, store,
// cross-DC replication) is slower than the offered load. When credits run
// out, ingress either blocks (backpressure, the default) or sheds with a
// retryable SaturationError, per Config.ShedOnSaturation.

import "sync"

// creditGate is a counting semaphore over in-flight records. A capacity of
// 0 or less makes the gate counting-only: it never blocks or sheds but
// still tracks in-flight and high-water marks for observability (the
// admission-disabled arm of the overload experiment).
type creditGate struct {
	mu       sync.Mutex
	cond     *sync.Cond
	capacity int
	inUse    int
	maxInUse int
	closed   bool
	waits    uint64 // acquisitions that had to block
	sheds    uint64 // records refused by tryAcquire
}

func newCreditGate(capacity int) *creditGate {
	g := &creditGate{capacity: capacity}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// acquire blocks until n credits are free (or the gate closes) and takes
// them. Returns false only when the gate closed while waiting. A batch
// larger than the whole capacity is admitted once the pipeline is empty —
// oversized batches make progress instead of deadlocking.
func (g *creditGate) acquire(n int) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	waited := false
	for !g.closed && g.capacity > 0 && g.inUse > 0 && g.inUse+n > g.capacity {
		if !waited {
			waited = true
			g.waits++
		}
		g.cond.Wait()
	}
	if g.closed {
		return false
	}
	g.take(n)
	return true
}

// tryAcquire takes n credits without blocking and reports whether it could.
func (g *creditGate) tryAcquire(n int) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return false
	}
	if g.capacity > 0 && g.inUse > 0 && g.inUse+n > g.capacity {
		g.sheds += uint64(n)
		return false
	}
	g.take(n)
	return true
}

// take records n credits as in use. Caller holds mu.
func (g *creditGate) take(n int) {
	g.inUse += n
	if g.inUse > g.maxInUse {
		g.maxInUse = g.inUse
	}
}

// release returns n credits and wakes waiting acquirers.
func (g *creditGate) release(n int) {
	g.mu.Lock()
	g.inUse -= n
	if g.inUse < 0 {
		g.inUse = 0
	}
	g.mu.Unlock()
	g.cond.Broadcast()
}

// close wakes every blocked acquirer (shutdown); subsequent acquires fail.
func (g *creditGate) close() {
	g.mu.Lock()
	g.closed = true
	g.mu.Unlock()
	g.cond.Broadcast()
}

// snapshot returns the gate's counters for metrics and experiments.
func (g *creditGate) snapshot() (inUse, maxInUse int, waits, sheds uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inUse, g.maxInUse, g.waits, g.sheds
}

// CreditStats is the observable state of the datacenter's credit gate.
type CreditStats struct {
	Capacity int    // 0 = unbounded (counting-only)
	InUse    int    // records currently between ingress and apply
	MaxInUse int    // high-water mark since start
	Waits    uint64 // ingress calls that blocked for credits
	Sheds    uint64 // records rejected under the shed policy
}

// CreditStats reports the pipeline credit gate's current state.
func (dc *Datacenter) CreditStats() CreditStats {
	g := dc.state.credits
	if g == nil {
		return CreditStats{}
	}
	inUse, maxInUse, waits, sheds := g.snapshot()
	cap := dc.cfg.PipelineCredits
	if cap < 0 {
		cap = 0
	}
	return CreditStats{Capacity: cap, InUse: inUse, MaxInUse: maxInUse, Waits: waits, Sheds: sheds}
}
