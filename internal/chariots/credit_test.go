package chariots

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/flstore"
	"repro/internal/rpc"
)

func TestCreditGateBounds(t *testing.T) {
	g := newCreditGate(4)
	if !g.acquire(3) {
		t.Fatal("acquire(3) on empty gate failed")
	}
	if g.tryAcquire(2) {
		t.Fatal("tryAcquire(2) admitted past the 4-credit bound")
	}
	if _, _, _, sheds := g.snapshot(); sheds != 2 {
		t.Fatalf("sheds = %d, want 2 (records)", sheds)
	}

	// A blocked acquire proceeds once credits come back.
	done := make(chan struct{})
	go func() {
		g.acquire(2)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("acquire(2) did not block at 3/4 in use")
	case <-time.After(20 * time.Millisecond):
	}
	g.release(3)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("release did not wake the blocked acquire")
	}

	inUse, maxInUse, waits, _ := g.snapshot()
	if inUse != 2 || maxInUse != 3 || waits != 1 {
		t.Fatalf("snapshot = inUse %d maxInUse %d waits %d, want 2, 3, 1", inUse, maxInUse, waits)
	}
}

func TestCreditGateOversizedBatch(t *testing.T) {
	g := newCreditGate(4)
	// A batch larger than the whole capacity must be admitted when the
	// pipeline is empty (progress over deadlock), and counted.
	if !g.acquire(10) {
		t.Fatal("oversized batch deadlocked on an empty gate")
	}
	g.release(10)
	if !g.tryAcquire(10) {
		t.Fatal("oversized tryAcquire refused on an empty gate")
	}
}

func TestCreditGateCloseWakesBlockers(t *testing.T) {
	g := newCreditGate(1)
	if !g.acquire(1) {
		t.Fatal("acquire failed")
	}
	var wg sync.WaitGroup
	wg.Add(1)
	ok := true
	go func() {
		defer wg.Done()
		ok = g.acquire(1)
	}()
	time.Sleep(10 * time.Millisecond)
	g.close()
	wg.Wait()
	if ok {
		t.Fatal("acquire returned true after close")
	}
}

func TestCountingOnlyGateNeverBlocks(t *testing.T) {
	g := newCreditGate(0)
	for i := 0; i < 100; i++ {
		if !g.tryAcquire(1 << 10) {
			t.Fatal("counting-only gate refused records")
		}
	}
	if inUse, maxInUse, _, _ := func() (int, int, uint64, uint64) { return g.snapshot() }(); inUse != 100<<10 || maxInUse != 100<<10 {
		t.Fatalf("counting-only gate lost count: inUse %d maxInUse %d", inUse, maxInUse)
	}
}

// TestShedPolicyEndToEnd saturates a tiny-credit pipeline whose maintainer
// stage is rate-capped and verifies ingress sheds with the typed,
// retryable, hint-carrying error — and that credits drain back to zero once
// the pipeline empties (no leaks).
func TestShedPolicyEndToEnd(t *testing.T) {
	dc, err := New(Config{
		Self:             0,
		NumDCs:           1,
		PipelineCredits:  64,
		ShedOnSaturation: true,
		Rates:            StageRates{Maintainer: 2000},
	})
	if err != nil {
		t.Fatal(err)
	}
	dc.Start()
	defer dc.Stop()

	var shedErr error
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		recs := make([]*core.Record, 16)
		for i := range recs {
			recs[i] = &core.Record{Host: 0, Body: []byte("x")}
		}
		if err := dc.TryInject(recs); err != nil {
			shedErr = err
			break
		}
	}
	if shedErr == nil {
		t.Fatal("no shed rejection while flooding a 64-credit pipeline")
	}
	if !errors.Is(shedErr, ErrPipelineSaturated) {
		t.Fatalf("shed error = %v, want ErrPipelineSaturated", shedErr)
	}
	if !flstore.IsRetryable(shedErr) {
		t.Fatalf("shed error %v not retryable via flstore.IsRetryable", shedErr)
	}
	if d := flstore.RetryAfter(shedErr); d <= 0 {
		t.Fatalf("shed error hint = %v, want > 0", d)
	}
	if stats := dc.CreditStats(); stats.MaxInUse > 64 {
		t.Fatalf("in-flight high water %d exceeded the 64-credit bound", stats.MaxInUse)
	}

	// Every admitted record eventually applies and returns its credit.
	dc.Quiesce(50*time.Millisecond, 10*time.Second)
	waitUntil := time.Now().Add(5 * time.Second)
	for dc.CreditStats().InUse != 0 && time.Now().Before(waitUntil) {
		time.Sleep(5 * time.Millisecond)
	}
	if stats := dc.CreditStats(); stats.InUse != 0 {
		t.Fatalf("credits leaked: %d still in use after quiesce", stats.InUse)
	}
}

// TestAppendDepsShedRetryable verifies the waiting append surface under the
// shed policy: a rejection is typed, and flstore.Retry absorbs it.
func TestAppendDepsShedRetryable(t *testing.T) {
	dc, err := New(Config{
		Self:             0,
		NumDCs:           1,
		PipelineCredits:  32,
		ShedOnSaturation: true,
		Rates:            StageRates{Maintainer: 2000},
	})
	if err != nil {
		t.Fatal(err)
	}
	dc.Start()
	defer dc.Stop()

	// Fill the gate, then show Append* sheds and that a paced retry lands.
	deadline := time.Now().Add(5 * time.Second)
	sawShed := false
	for time.Now().Before(deadline) && !sawShed {
		_, err := dc.Append([]byte("y"), nil)
		if err != nil {
			var sat *SaturationError
			if !errors.As(err, &sat) {
				t.Fatalf("Append error = %v, want *SaturationError", err)
			}
			sawShed = true
		}
	}
	if !sawShed {
		t.Skip("pipeline drained faster than the generator; shed not reachable on this machine")
	}
	if _, err := flstore.Retry(50, func() (AppendAck, error) {
		return dc.Append([]byte("z"), nil)
	}); err != nil {
		t.Fatalf("flstore.Retry over shed policy = %v, want success", err)
	}
}

func TestMapIngestError(t *testing.T) {
	if err := mapIngestError(nil); err != nil {
		t.Fatalf("nil → %v", err)
	}
	remote := &rpc.RemoteError{Message: ErrPipelineSaturated.Error() + " (retry after 2ms) [retry-after-ns=2000000]"}
	err := mapIngestError(remote)
	var sat *SaturationError
	if !errors.As(err, &sat) {
		t.Fatalf("mapped = %v, want *SaturationError", err)
	}
	if sat.RetryAfter != 2*time.Millisecond {
		t.Fatalf("hint = %v, want 2ms", sat.RetryAfter)
	}
	if got := mapIngestError(&rpc.RemoteError{Message: ErrStopped.Error()}); !errors.Is(got, ErrStopped) {
		t.Fatalf("stopped mapping = %v, want ErrStopped", got)
	}
	plain := errors.New("unrelated")
	if got := mapIngestError(plain); got != plain {
		t.Fatalf("unrelated error rewritten: %v", got)
	}
}
