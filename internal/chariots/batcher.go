package chariots

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ratelimit"
)

// Batcher is one machine of the batching stage (§6.2): it buffers records
// received from application clients and receivers, one buffer per filter
// (records are mapped to filters by the shared FilterRouting), and sends a
// buffer downstream once it exceeds the flush threshold or the flush
// interval elapses. Batchers are completely independent of each other —
// adding one requires no coordination.
type Batcher struct {
	StageMachine
	in       chan []*core.Record
	routing  *FilterRouting
	thresh   int
	interval time.Duration

	// filters and the per-filter buffers may grow while the batcher
	// runs (AddFilter); guarded by filterMu.
	filterMu sync.Mutex
	filters  []chan<- []*core.Record
	bufs     [][]*core.Record
	// nics, when non-nil, are the destination filters' shared NIC
	// limiters (index-aligned with filters): transmitting a batch to a
	// filter charges that filter's ingress.
	nics []*ratelimit.Limiter
	// stopC aborts downstream sends during shutdown so a full filter
	// inbox cannot wedge the batcher.
	stopC <-chan struct{}
}

// NewBatcher builds a batcher machine. in is its ingress; filters are the
// downstream filter inboxes, index-aligned with the routing.
func NewBatcher(name string, limiter *ratelimit.Limiter, in chan []*core.Record, routing *FilterRouting, filters []chan<- []*core.Record, threshold int, interval time.Duration) *Batcher {
	if threshold < 1 {
		threshold = 1
	}
	if interval <= 0 {
		interval = time.Millisecond
	}
	return &Batcher{
		StageMachine: StageMachine{Name: name, Limiter: limiter},
		in:           in,
		routing:      routing,
		filters:      filters,
		thresh:       threshold,
		interval:     interval,
		bufs:         make([][]*core.Record, len(filters)),
	}
}

// In returns the batcher's ingress channel.
func (b *Batcher) In() chan []*core.Record { return b.in }

// run consumes the ingress until stop closes, then flushes what remains.
func (b *Batcher) run(stop <-chan struct{}) {
	ticker := time.NewTicker(b.interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			// Drain whatever is already queued, then flush.
			for {
				select {
				case recs := <-b.in:
					b.absorb(recs)
				default:
					b.flushAll()
					return
				}
			}
		case recs := <-b.in:
			b.absorb(recs)
		case <-ticker.C:
			b.flushAll()
		}
	}
}

// absorb charges the batch against the machine's capacity, distributes the
// records to per-filter buffers, and flushes any buffer past the threshold.
func (b *Batcher) absorb(recs []*core.Record) {
	if len(recs) == 0 {
		return
	}
	b.work(len(recs))
	b.filterMu.Lock()
	for _, r := range recs {
		f := b.routing.Route(r.Host, r.TOId)
		if f >= len(b.bufs) {
			// Routing grew before this batcher learned of the new
			// filter; park on the last known one (the reassignment
			// mark is chosen far enough ahead that this is only a
			// transient during hand-over).
			f = len(b.bufs) - 1
		}
		if b.bufs[f] == nil {
			// Flushing hands the buffer downstream, so each round
			// starts fresh; size it for a full batch up front.
			b.bufs[f] = make([]*core.Record, 0, b.thresh)
		}
		b.bufs[f] = append(b.bufs[f], r)
	}
	var full []int
	for f := range b.bufs {
		if len(b.bufs[f]) >= b.thresh {
			full = append(full, f)
		}
	}
	b.filterMu.Unlock()
	for _, f := range full {
		b.flush(f)
	}
}

// addFilter publishes a new filter inbox to a (possibly running) batcher.
func (b *Batcher) addFilter(in chan<- []*core.Record) {
	b.filterMu.Lock()
	b.filters = append(b.filters, in)
	b.bufs = append(b.bufs, nil)
	b.filterMu.Unlock()
}

func (b *Batcher) flush(f int) {
	b.filterMu.Lock()
	batch := b.bufs[f]
	b.bufs[f] = nil
	dst := b.filters[f]
	var nic *ratelimit.Limiter
	if f < len(b.nics) {
		nic = b.nics[f]
	}
	b.filterMu.Unlock()
	if len(batch) == 0 {
		return
	}
	// Buffer wait plus batching shows up as the pipe.batch span: the hop
	// covers ingress → flush for each sampled record.
	hopRecords(batch, "pipe.batch")
	// Transmit, then charge the destination filter's NIC: a transfer
	// that blocks on a full inbox must not consume NIC tokens, or the
	// filter's egress share starves while records sit undelivered.
	if b.stopC == nil {
		dst <- batch
	} else {
		select {
		case dst <- batch:
		case <-b.stopC:
			return
		}
	}
	nic.WaitN(len(batch))
}

func (b *Batcher) flushAll() {
	b.filterMu.Lock()
	n := len(b.bufs)
	b.filterMu.Unlock()
	for f := 0; f < n; f++ {
		b.flush(f)
	}
}
