package chariots

// The package's error taxonomy for the ingress path. SaturationError
// implements both the Retryable marker and the RetryAfterHint interface,
// so flstore.IsRetryable / flstore.RetryAfter classify it without either
// package importing the other.

import (
	"errors"
	"fmt"
	"time"
)

// ErrStopped is returned by appends racing datacenter shutdown.
var ErrStopped = errors.New("chariots: datacenter stopped")

// ErrPipelineSaturated is returned at the DC ingress when the pipeline's
// credit gate is exhausted and the shed policy is active: the offered load
// exceeds what the slowest stage is draining, and the record was rejected
// instead of queued. Retryable.
var ErrPipelineSaturated = errors.New("chariots: pipeline saturated")

// SaturationError is the typed form of ErrPipelineSaturated carrying a
// pacing hint.
type SaturationError struct {
	// RetryAfter estimates when enough credits will have drained for a
	// retry to be admitted.
	RetryAfter time.Duration
}

func (e *SaturationError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("%s (retry after %v)", ErrPipelineSaturated.Error(), e.RetryAfter)
	}
	return ErrPipelineSaturated.Error()
}

func (e *SaturationError) Unwrap() error { return ErrPipelineSaturated }

// Retryable marks the rejection transient (flstore.IsRetryable contract).
func (e *SaturationError) Retryable() bool { return true }

// RetryAfterHint exposes the pacing hint (flstore.RetryAfter contract; the
// rpc layer encodes it across the wire).
func (e *SaturationError) RetryAfterHint() time.Duration { return e.RetryAfter }
