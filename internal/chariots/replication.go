package chariots

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/ratelimit"
	"repro/internal/vclock"
)

// ReceiverAPI is the ingress surface one datacenter exposes to the senders
// of other datacenters. It is implemented by *Receiver (in-process), by
// receiverClient (over RPC), and by LatencyLink (a WAN-delay-injecting
// wrapper used by the multi-datacenter simulation).
type ReceiverAPI interface {
	// Deliver hands over a propagation snapshot: new records of the
	// sending datacenter plus its Awareness Table.
	Deliver(snap Snapshot) error
}

// Receiver is one machine of the reception stage (§6.2): it accepts
// snapshots from remote senders, merges the shipped Awareness Table, and
// forwards the record copies (cloned, LIds cleared — LIds are per-
// datacenter) to the local batchers.
type Receiver struct {
	StageMachine
	state    *dcState
	batchers []chan<- []*core.Record
	mu       sync.Mutex
	rr       uint64
	// stopC aborts batcher pushes during shutdown.
	stopC <-chan struct{}
}

// NewReceiver builds a receiver machine feeding the given batcher inboxes.
func NewReceiver(name string, limiter *ratelimit.Limiter, state *dcState, batchers []chan<- []*core.Record) *Receiver {
	return &Receiver{StageMachine: StageMachine{Name: name, Limiter: limiter}, state: state, batchers: batchers}
}

// Deliver implements ReceiverAPI.
func (r *Receiver) Deliver(snap Snapshot) error {
	if len(snap.Records) > 0 {
		r.work(len(snap.Records))
		var out []*core.Record
		if snap.Owned {
			// The snapshot's records are ours to keep (RPC arena decode
			// or a resync's clones): adopt them, clearing LIds in place.
			out = snap.Records
			for _, rec := range out {
				rec.LId = 0 // LIds are per-datacenter; ours is assigned by a queue
			}
		} else {
			out = make([]*core.Record, 0, len(snap.Records))
			for _, rec := range snap.Records {
				c := rec.Clone()
				c.LId = 0
				out = append(out, c)
			}
		}
		// The receiving datacenter owns out (clones or adopted copies), so
		// its pipeline stages chain spans onto the originating trace.
		hopRecords(out, "pipe.recv")
		r.mu.Lock()
		dst := r.batchers[int(r.rr%uint64(len(r.batchers)))]
		r.rr++
		r.mu.Unlock()
		if r.stopC == nil {
			dst <- out
		} else {
			select {
			case dst <- out:
			case <-r.stopC:
			}
		}
	}
	if snap.ATable != nil {
		r.state.atable.MergeSnapshot(snap.ATable)
	}
	return nil
}

// Sender is one machine of the propagation stage (§6.2): it consumes the
// shared feed of applied local records, batches them, and ships each batch
// — with an Awareness Table snapshot — to every remote datacenter. Each
// sender is bounded by its own capacity limiter, so higher replication
// throughput is reached by adding senders.
type Sender struct {
	StageMachine
	state     *dcState
	threshold int
	interval  time.Duration

	mu    sync.Mutex
	dests map[core.DCID][]ReceiverAPI
	rr    map[core.DCID]uint64

	// Shipped counts records propagated (once per remote datacenter).
	Shipped metrics.Counter
	// Errors counts failed deliveries (the records are NOT lost: the
	// awareness table never advanced, so Resync re-ships them).
	Errors metrics.Counter
}

// NewSender builds a sender machine.
func NewSender(name string, limiter *ratelimit.Limiter, state *dcState, threshold int, interval time.Duration) *Sender {
	if threshold < 1 {
		threshold = 1
	}
	if interval <= 0 {
		interval = time.Millisecond
	}
	return &Sender{
		StageMachine: StageMachine{Name: name, Limiter: limiter},
		state:        state,
		threshold:    threshold,
		interval:     interval,
		dests:        make(map[core.DCID][]ReceiverAPI),
		rr:           make(map[core.DCID]uint64),
	}
}

// Connect registers the receivers of a remote datacenter. Shipments to
// that datacenter round-robin across its receivers.
func (s *Sender) Connect(dc core.DCID, receivers []ReceiverAPI) {
	s.mu.Lock()
	s.dests[dc] = append([]ReceiverAPI(nil), receivers...)
	s.mu.Unlock()
}

func (s *Sender) run(stop <-chan struct{}) {
	buf := make([]*core.Record, 0, s.threshold)
	ticker := time.NewTicker(s.interval)
	defer ticker.Stop()
	flush := func() {
		if len(buf) == 0 {
			// Heartbeat: ship the table alone so awareness (and
			// therefore GC) converges even when idle.
			s.ship(nil)
			return
		}
		s.ship(buf)
		buf = buf[:0]
	}
	for {
		select {
		case <-stop:
			for {
				select {
				case rec := <-s.state.localFeed:
					buf = append(buf, rec)
				default:
					if len(buf) > 0 {
						s.ship(buf)
					}
					return
				}
			}
		case rec := <-s.state.localFeed:
			buf = append(buf, rec)
			if len(buf) >= s.threshold {
				s.ship(buf)
				buf = buf[:0]
			}
		case <-ticker.C:
			flush()
		}
	}
}

// ship sends one snapshot (records may be nil for a pure table heartbeat)
// to every connected datacenter.
func (s *Sender) ship(recs []*core.Record) {
	if len(recs) > 0 {
		s.work(len(recs))
	}
	var table []vclock.Vector = s.state.atable.Snapshot()

	s.mu.Lock()
	type dest struct {
		dc core.DCID
		rx ReceiverAPI
	}
	var targets []dest
	for dc, rxs := range s.dests {
		if len(rxs) == 0 {
			continue
		}
		i := int(s.rr[dc] % uint64(len(rxs)))
		s.rr[dc]++
		targets = append(targets, dest{dc: dc, rx: rxs[i]})
	}
	s.mu.Unlock()

	// Applied records are immutable, so the snapshot borrows them
	// read-only instead of cloning: an RPC receiver encodes them onto the
	// wire, and an in-process receiver clones before mutating (Owned is
	// false). Only the slice header is copied — the sender's batch buffer
	// is reused after ship returns, and a LatencyLink may still hold the
	// snapshot then.
	var shipped []*core.Record
	if len(recs) > 0 {
		shipped = make([]*core.Record, len(recs))
		copy(shipped, recs)
		// Applied records are immutable here, so the span is recorded off
		// a context copy without advancing the records' chains.
		spanRecords(shipped, "pipe.send")
	}
	snap := Snapshot{From: s.state.self, Records: shipped, ATable: table}
	for _, t := range targets {
		if err := t.rx.Deliver(snap); err != nil {
			s.Errors.Inc()
			continue
		}
		s.Shipped.Add(uint64(len(shipped)))
	}
}

// LatencyLink wraps a ReceiverAPI with a one-way propagation delay,
// standing in for the WAN between datacenters. Delivery order is
// preserved (FIFO), matching a TCP connection between sites.
type LatencyLink struct {
	delay time.Duration
	dst   ReceiverAPI
	ch    chan Snapshot
	once  sync.Once
	stop  chan struct{}
	done  chan struct{}
}

// NewLatencyLink returns a link that delays every Deliver by delay.
func NewLatencyLink(dst ReceiverAPI, delay time.Duration) *LatencyLink {
	l := &LatencyLink{
		delay: delay,
		dst:   dst,
		ch:    make(chan Snapshot, 1<<12),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go l.pump()
	return l
}

type timedSnap struct {
	at   time.Time
	snap Snapshot
}

func (l *LatencyLink) pump() {
	defer close(l.done)
	var queue []timedSnap
	for {
		var timerC <-chan time.Time
		var timer *time.Timer
		if len(queue) > 0 {
			wait := time.Until(queue[0].at)
			timer = time.NewTimer(wait)
			timerC = timer.C
		}
		select {
		case <-l.stop:
			if timer != nil {
				timer.Stop()
			}
			return
		case snap := <-l.ch:
			queue = append(queue, timedSnap{at: time.Now().Add(l.delay), snap: snap})
			if timer != nil {
				timer.Stop()
			}
		case <-timerC:
			l.dst.Deliver(queue[0].snap)
			queue = queue[1:]
		}
	}
}

// Deliver implements ReceiverAPI: enqueue for delayed delivery.
func (l *LatencyLink) Deliver(snap Snapshot) error {
	select {
	case l.ch <- snap:
		return nil
	case <-l.stop:
		return nil
	}
}

// Close stops the link, dropping undelivered snapshots (a partition).
func (l *LatencyLink) Close() {
	l.once.Do(func() { close(l.stop) })
	<-l.done
}
