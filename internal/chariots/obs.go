package chariots

import (
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/storage"
)

// Observability for the Chariots pipeline (§6.2). EnableMetrics exports the
// state every stage already tracks — processed counts, inbox depths,
// awareness-table rows — as registry series, plus batch-size histograms and
// the per-remote replication lag described below. Everything is registered
// as scrape-time callbacks (GaugeFunc/CounterFunc), so the pipeline's hot
// paths pay nothing beyond the counters they already maintain; only the
// batch-size histograms and the apply-time ring add per-batch work.
//
// Metric names and label conventions are documented in DESIGN.md
// ("Observability").

// applyRingSize bounds the apply-time ring. With 64Ki entries a remote may
// lag up to 64Ki records before ring slots are overwritten; beyond that the
// reported wall-time lag is an underestimate (the slot holds a newer
// record's apply time). The records-lag gauge has no such bound, so the
// pair together still exposes pathological lag.
const applyRingSize = 1 << 16

// applyTimeRing records the wall time at which each local TOId was applied,
// indexed by TOId modulo the ring size. It backs the
// chariots_replication_lag_seconds gauge: the age of the oldest local
// record a remote datacenter has not yet acknowledged.
type applyTimeRing struct {
	times []atomic.Int64 // UnixNano at apply; 0 = never recorded
}

func newApplyTimeRing() *applyTimeRing {
	return &applyTimeRing{times: make([]atomic.Int64, applyRingSize)}
}

func (r *applyTimeRing) record(toid uint64, unixNano int64) {
	r.times[toid%applyRingSize].Store(unixNano)
}

func (r *applyTimeRing) at(toid uint64) int64 {
	return r.times[toid%applyRingSize].Load()
}

// enableMetrics exports one stage machine's throughput counter and observes
// its batch sizes. Must run before the machine starts working (the
// batch-size histogram pointer is read without synchronization).
func (s *StageMachine) enableMetrics(reg *metrics.Registry, stage string, extra ...metrics.Label) {
	lbls := append([]metrics.Label{metrics.L("stage", stage), metrics.L("machine", s.Name)}, extra...)
	reg.CounterFunc("chariots_stage_processed_total", func() float64 { return float64(s.Processed.Value()) }, lbls...)
	s.batchSize = reg.Histogram("chariots_stage_batch_records", metrics.BatchBuckets, lbls...)
}

// EnableMetrics registers the datacenter's pipeline instrumentation with
// reg. Every series carries dc=<self>; per-machine series add stage= and
// machine= labels. Call after New and before Start — stage hooks are
// installed without synchronization against running goroutines.
//
// Exported state, per §6.2 stage:
//   - every machine: processed counter, batch-size histogram, inbox depth
//   - queues: applied counter, token-drainable buffer depth
//   - filters: duplicate drops, reorder-buffer overflows and depth
//   - senders: shipped/error counters, local-feed depth
//   - maintainers and gossipers: the flstore_* series (EnableMetrics there)
//   - segment stores: the storage_* series, when disk-backed
//   - awareness: per-host applied TOId, per-remote replication lag in
//     records and in seconds (apply-time ring)
func (dc *Datacenter) EnableMetrics(reg *metrics.Registry) {
	dcLbl := metrics.L("dc", strconv.Itoa(int(dc.cfg.Self)))
	// Inter-stage channels carry batches, so depth is reported in batches
	// in flight (the batch-size histograms give the records-per-batch
	// distribution to convert with).
	inboxDepth := func(stage string, name string, ch chan []*core.Record) {
		reg.GaugeFunc("chariots_stage_inbox_batches", func() float64 { return float64(len(ch)) },
			metrics.L("stage", stage), metrics.L("machine", name), dcLbl)
	}

	for _, b := range dc.batchers {
		b.enableMetrics(reg, "batcher", dcLbl)
		inboxDepth("batcher", b.Name, b.in)
	}
	for _, f := range dc.filters {
		f := f
		f.enableMetrics(reg, "filter", dcLbl)
		inboxDepth("filter", f.Name, f.in)
		mLbl := metrics.L("machine", f.Name)
		reg.CounterFunc("chariots_filter_dropped_total", func() float64 { return float64(f.Dropped.Value()) }, mLbl, dcLbl)
		reg.CounterFunc("chariots_filter_overflow_total", func() float64 { return float64(f.Overflow.Value()) }, mLbl, dcLbl)
	}
	for _, q := range dc.queues {
		q := q
		q.enableMetrics(reg, "queue", dcLbl)
		inboxDepth("queue", q.Name, q.in)
		mLbl := metrics.L("machine", q.Name)
		reg.GaugeFunc("chariots_queue_buffered_batches", func() float64 { return float64(len(q.buffered)) }, mLbl, dcLbl)
		reg.CounterFunc("chariots_queue_applied_total", func() float64 { return float64(q.Applied.Value()) }, mLbl, dcLbl)
	}
	for _, sm := range dc.maintainerMachines {
		sm.enableMetrics(reg, "maintainer", dcLbl)
	}
	for _, cs := range dc.stores {
		cs.sm.enableMetrics(reg, "store", dcLbl)
		if seg, ok := cs.Store.(*storage.SegmentStore); ok {
			seg.EnableMetrics(reg, metrics.L("machine", cs.sm.Name), dcLbl)
		}
	}
	for _, s := range dc.senders {
		s := s
		s.enableMetrics(reg, "sender", dcLbl)
		mLbl := metrics.L("machine", s.Name)
		reg.CounterFunc("chariots_sender_shipped_total", func() float64 { return float64(s.Shipped.Value()) }, mLbl, dcLbl)
		reg.CounterFunc("chariots_sender_errors_total", func() float64 { return float64(s.Errors.Value()) }, mLbl, dcLbl)
	}
	for _, r := range dc.receivers {
		r.enableMetrics(reg, "receiver", dcLbl)
	}
	for i, m := range dc.maintainers {
		m.EnableMetrics(reg, dcLbl)
		dc.gossipers[i].EnableMetrics(reg, dcLbl)
	}

	reg.GaugeFunc("chariots_feed_records", func() float64 { return float64(len(dc.state.localFeed)) }, dcLbl)
	reg.CounterFunc("chariots_applied_records_total", func() float64 { return float64(dc.AppliedCount()) }, dcLbl)

	// Pipeline credit gate (DESIGN.md §8): capacity, records between
	// ingress and apply, its high-water mark, and how often ingress blocked
	// or shed.
	reg.GaugeFunc("chariots_credit_capacity_records", func() float64 {
		return float64(dc.CreditStats().Capacity)
	}, dcLbl)
	reg.GaugeFunc("chariots_credit_in_use_records", func() float64 {
		return float64(dc.CreditStats().InUse)
	}, dcLbl)
	reg.GaugeFunc("chariots_credit_high_water_records", func() float64 {
		return float64(dc.CreditStats().MaxInUse)
	}, dcLbl)
	reg.CounterFunc("chariots_credit_waits_total", func() float64 {
		return float64(dc.CreditStats().Waits)
	}, dcLbl)
	reg.CounterFunc("chariots_credit_shed_total", func() float64 {
		return float64(dc.CreditStats().Sheds)
	}, dcLbl)

	// Awareness: what this datacenter has applied of each host's records.
	for host := 0; host < dc.cfg.NumDCs; host++ {
		host := core.DCID(host)
		reg.GaugeFunc("chariots_applied_toid", func() float64 {
			return float64(dc.state.atable.Get(dc.cfg.Self, host))
		}, metrics.L("host", strconv.Itoa(int(host))), dcLbl)
	}

	// Replication lag toward each remote, from the awareness table: how far
	// the remote's acknowledged prefix of OUR records trails what we have
	// applied locally — in records (exact) and in wall time (apply-time
	// ring; see applyRingSize for the approximation bound).
	ring := newApplyTimeRing()
	dc.state.applyTimes.Store(ring)
	self := dc.cfg.Self
	for remote := 0; remote < dc.cfg.NumDCs; remote++ {
		remote := core.DCID(remote)
		if remote == self {
			continue
		}
		rLbl := metrics.L("remote", strconv.Itoa(int(remote)))
		reg.GaugeFunc("chariots_replication_lag_records", func() float64 {
			ours := dc.state.atable.Get(self, self)
			acked := dc.state.atable.Get(remote, self)
			if acked >= ours {
				return 0
			}
			return float64(ours - acked)
		}, rLbl, dcLbl)
		reg.GaugeFunc("chariots_replication_lag_seconds", func() float64 {
			ours := dc.state.atable.Get(self, self)
			acked := dc.state.atable.Get(remote, self)
			if acked >= ours {
				return 0
			}
			ns := ring.at(acked + 1)
			if ns == 0 {
				return 0 // applied before metrics were enabled
			}
			lag := time.Since(time.Unix(0, ns)).Seconds()
			if lag < 0 {
				return 0
			}
			return lag
		}, rLbl, dcLbl)
	}
}

// EnableMetrics exports the GC runner's reclaim progress: the prefix
// frontier (highest reclaimed LId) and total records collected.
func (g *GCRunner) EnableMetrics(reg *metrics.Registry) {
	dcLbl := metrics.L("dc", strconv.Itoa(int(g.dc.cfg.Self)))
	reg.GaugeFunc("chariots_gc_frontier_lid", func() float64 { return float64(g.Frontier()) }, dcLbl)
	reg.CounterFunc("chariots_gc_collected_total", func() float64 { return float64(g.Collected.Value()) }, dcLbl)
}
