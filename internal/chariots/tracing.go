package chariots

import (
	"repro/internal/core"
	"repro/internal/trace"
)

// hopRecords records one stage span per sampled record in the batch and
// advances each record's context, so the next stage's span starts where
// this one ends. Records in a pipeline batch come from independent appends
// and carry independent sampling decisions; under 1-in-N sampling the loop
// is a flag test per record and touches almost none of them. Callers must
// own the records (no concurrent reader of rec.Trace yet).
func hopRecords(recs []*core.Record, stage string) {
	for _, r := range recs {
		if r.Trace.Sampled() {
			r.Trace.Hop(trace.Default(), stage, 0, "", r.LId, 1)
		}
	}
}

// spanRecords records one stage span per sampled record without advancing
// the records' contexts — for stages that borrow applied records read-only
// (the sender ships pointers into the local log) and must not mutate them.
func spanRecords(recs []*core.Record, stage string) {
	for _, r := range recs {
		if r.Trace.Sampled() {
			tc := r.Trace
			tc.Hop(trace.Default(), stage, 0, "", r.LId, 1)
		}
	}
}
